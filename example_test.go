package manetp2p_test

import (
	"fmt"

	"manetp2p"
)

// The default scenario is Table 2 of the paper: 100 m × 100 m arena,
// 10 m radio range, 75% of nodes in the overlay, 3600 s, 33 runs.
func ExampleDefaultScenario() {
	sc := manetp2p.DefaultScenario(50, manetp2p.Regular)
	fmt.Println(sc.Name, sc.NumNodes, sc.Replications, sc.Params.MaxNConn, sc.Params.QueryTTL)
	// Output: Regular-50 50 33 3 6
}

// Run executes a scenario's replications concurrently and aggregates
// the paper's metrics.
func ExampleRun() {
	sc := manetp2p.DefaultScenario(20, manetp2p.Basic)
	sc.Duration = manetp2p.Seconds(120)
	sc.Replications = 1
	sc.SnapshotEvery = 0
	res, err := manetp2p.Run(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(res.PerFile), len(res.ConnectSeries))
	// Output: 20 15
}

// NewSimulation gives step-by-step control over a single replication.
func ExampleNewSimulation() {
	sc := manetp2p.DefaultScenario(10, manetp2p.Regular)
	s, err := manetp2p.NewSimulation(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	s.Step(manetp2p.Seconds(60))
	fmt.Println(s.Now() == manetp2p.Seconds(60), len(s.Net.Members()))
	// Output: true 8
}

// GiniCoefficient quantifies load concentration across nodes.
func ExampleGiniCoefficient() {
	even := manetp2p.GiniCoefficient([]float64{10, 10, 10, 10})
	skewed := manetp2p.GiniCoefficient([]float64{1, 1, 1, 37})
	fmt.Printf("%.2f %.2f\n", even, skewed)
	// Output: 0.00 0.68
}
