package manetp2p

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"manetp2p/internal/checkpoint"
	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/workload"
)

// This file wires internal/checkpoint into the runner: a scenario run
// can persist its progress to one checkpoint file and a later process
// can resume it, producing a report byte-identical to the uninterrupted
// run (DESIGN.md §11).
//
// Restore is replay-based: completed replications are serialized in
// full (their measurement payloads travel in the file), while an
// in-flight replication is recorded as a cursor — its boundary time
// plus a state digest — and is deterministically re-executed from its
// seed up to that boundary on resume. The digest must match before the
// resumed process is allowed to continue past the cursor; any
// determinism drift (the class of bug the peer-cache eviction fix in
// this PR removed) fails the resume loudly instead of silently forking
// the results.

// ErrHalted is returned by RunCheckpointed and ResumeCheckpoint when
// the run stopped at CheckpointConfig.HaltAt with work remaining; the
// checkpoint file holds everything needed to resume.
var ErrHalted = errors.New("manetp2p: run halted at checkpoint boundary (resume to continue)")

// CheckpointConfig parameterizes a checkpointed run.
type CheckpointConfig struct {
	// Path is the checkpoint file, written atomically at every boundary.
	Path string
	// Every is the boundary spacing; 0 falls back to
	// Scenario.CheckpointEvery, then Duration/8. Boundaries land on
	// multiples of Every from t=0, so an interrupted and a restarted run
	// agree about where checkpoints live.
	Every Duration
	// HaltAt > 0 stops every replication at that simulated time (after
	// persisting a cursor) and makes the run return ErrHalted — the
	// programmatic form of being preempted, used by -halt and the
	// round-trip tests.
	HaltAt Duration
	// Sink, when non-nil, receives the streamed telemetry time series
	// once the run completes, exactly as RunWithMetrics would emit it.
	// Not closed; nothing is streamed on a halt.
	Sink MetricsSink
}

// replicationRecord mirrors repResult with exported fields so a
// completed replication's measurements can travel through gob into the
// checkpoint file and back without loss.
type replicationRecord struct {
	Requests   []telemetry.Request
	Series     [telemetry.NumClasses][]float64
	Totals     [telemetry.NumClasses][]float64
	RxFrames   []float64
	TxFrames   []float64
	Clust      []float64
	PathLen    []float64
	Largest    []float64
	MeanDeg    []float64
	Alive      []float64
	DegSeries  []float64
	ConnRate   []float64
	QueryRate  []float64
	Deaths     float64
	Energy     []float64
	Lifetimes  []float64
	Health     []telemetry.HealthSample
	Routing    []netif.Stats
	Members    int
	Checked    bool
	ViolTotal  int
	Violations []InvariantViolation
	Workload   *workload.Telemetry
	Churnit    float64
}

func recordOf(rr repResult) replicationRecord {
	return replicationRecord{
		Requests: rr.requests, Series: rr.series, Totals: rr.totals,
		RxFrames: rr.rxFrames, TxFrames: rr.txFrames,
		Clust: rr.clust, PathLen: rr.pathLen, Largest: rr.largest, MeanDeg: rr.meanDeg,
		Alive: rr.alive, DegSeries: rr.degSeries,
		ConnRate: rr.connRate, QueryRate: rr.queryRate,
		Deaths: rr.deaths, Energy: rr.energy, Lifetimes: rr.lifetimes,
		Health: rr.health, Routing: rr.routing, Members: rr.members,
		Checked: rr.checked, ViolTotal: rr.violTotal, Violations: rr.violations,
		Workload: rr.workload, Churnit: rr.churnit,
	}
}

func (rec replicationRecord) repResult() repResult {
	return repResult{
		requests: rec.Requests, series: rec.Series, totals: rec.Totals,
		rxFrames: rec.RxFrames, txFrames: rec.TxFrames,
		clust: rec.Clust, pathLen: rec.PathLen, largest: rec.Largest, meanDeg: rec.MeanDeg,
		alive: rec.Alive, degSeries: rec.DegSeries,
		connRate: rec.ConnRate, queryRate: rec.QueryRate,
		deaths: rec.Deaths, energy: rec.Energy, lifetimes: rec.Lifetimes,
		health: rec.Health, routing: rec.Routing, members: rec.Members,
		checked: rec.Checked, violTotal: rec.ViolTotal, violations: rec.Violations,
		workload: rec.Workload, churnit: rec.Churnit,
	}
}

func encodeRecord(rec replicationRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("manetp2p: encoding replication record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRecord(data []byte) (replicationRecord, error) {
	var rec replicationRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return rec, fmt.Errorf("manetp2p: decoding replication record: %w", err)
	}
	return rec, nil
}

// ckptCursor pins one in-flight replication: resume re-executes it from
// its seed to At and must reproduce Fired and Digest exactly.
type ckptCursor struct {
	Rep    int    `json:"rep"`
	At     int64  `json:"at"` // sim.Time ticks
	Fired  uint64 `json:"fired"`
	Digest string `json:"digest"` // %016x state fingerprint
}

// ckptHeader is the checkpoint file's JSON header — self-describing
// enough for tooling (and cmd/sweep's done/mismatch probes) without
// decoding any section.
type ckptHeader struct {
	Kind      string          `json:"kind"`
	Scenario  json.RawMessage `json:"scenario"`
	Total     int             `json:"replications"`
	Completed []int           `json:"completed"`
	Cursors   []ckptCursor    `json:"cursors,omitempty"`
	Done      bool            `json:"done"`
}

const ckptKind = "manetp2p-run"

// ckptState is the mutable, mutex-guarded progress shared by the
// replication workers of one checkpointed run; persist snapshots it to
// disk atomically.
type ckptState struct {
	mu       sync.Mutex
	path     string
	scenario json.RawMessage
	total    int
	records  map[int][]byte // gob-encoded completed replications
	cursors  map[int]ckptCursor
	done     bool
}

func newCkptState(path string, scenario []byte, total int) *ckptState {
	return &ckptState{
		path: path, scenario: scenario, total: total,
		records: map[int][]byte{}, cursors: map[int]ckptCursor{},
	}
}

// persist writes the current progress to the checkpoint file.
func (st *ckptState) persist() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	hdr := ckptHeader{
		Kind: ckptKind, Scenario: st.scenario, Total: st.total, Done: st.done,
		Completed: make([]int, 0, len(st.records)),
	}
	f := &checkpoint.File{Sections: make(map[string][]byte, len(st.records)+1)}
	// The telemetry plane's shape travels with the run: resume refuses a
	// checkpoint whose section registry differs from this binary's.
	f.Sections[telemetrySectionName] = sections.Manifest()
	for rep, data := range st.records { // sorted below: byte-stable headers
		hdr.Completed = append(hdr.Completed, rep)
		f.Sections[sectionName(rep)] = data
	}
	sort.Ints(hdr.Completed)
	for _, c := range st.cursors {
		hdr.Cursors = append(hdr.Cursors, c)
	}
	sort.Slice(hdr.Cursors, func(i, j int) bool { return hdr.Cursors[i].Rep < hdr.Cursors[j].Rep })
	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("manetp2p: encoding checkpoint header: %w", err)
	}
	f.Header = hb
	return checkpoint.Write(st.path, f)
}

func (st *ckptState) setCursor(c ckptCursor) error {
	st.mu.Lock()
	st.cursors[c.Rep] = c
	st.mu.Unlock()
	return st.persist()
}

func (st *ckptState) complete(rep int, data []byte) error {
	st.mu.Lock()
	st.records[rep] = data
	delete(st.cursors, rep)
	st.mu.Unlock()
	return st.persist()
}

func sectionName(rep int) string { return "rep/" + strconv.Itoa(rep) }

// telemetrySectionName is the checkpoint section holding the telemetry
// registry's manifest (section names in registration order).
const telemetrySectionName = "telemetry/manifest"

// checkpointEvery resolves the boundary spacing: explicit config, then
// the scenario default, then an eighth of the horizon.
func checkpointEvery(sc Scenario, cfg CheckpointConfig) Duration {
	switch {
	case cfg.Every > 0:
		return cfg.Every
	case sc.CheckpointEvery > 0:
		return sc.CheckpointEvery
	default:
		return sc.Duration / 8
	}
}

// nextStop returns the first stop after now: the next multiple of
// every, HaltAt, or the horizon, whichever comes first.
func nextStop(now, every, haltAt, horizon sim.Time) sim.Time {
	next := horizon
	if every > 0 {
		if b := (now/every + 1) * every; b < next {
			next = b
		}
	}
	if haltAt > now && haltAt < next {
		next = haltAt
	}
	return next
}

// RunCheckpointed executes the scenario like Run while persisting
// progress to cfg.Path at every boundary. With a zero cfg.HaltAt it
// returns exactly what Run returns (checkpoint boundaries only segment
// Sim.Run, which is behavior-neutral); with HaltAt set it stops there
// and returns (nil, ErrHalted) once every replication has either
// finished or written its cursor.
func (p *Pool) RunCheckpointed(sc Scenario, cfg CheckpointConfig) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Path == "" {
		return nil, errors.New("manetp2p: CheckpointConfig.Path is empty")
	}
	scJSON, err := MarshalJSONScenario(sc)
	if err != nil {
		return nil, err
	}
	st := newCkptState(cfg.Path, scJSON, sc.Replications)
	return p.driveCheckpointed(sc, cfg, st, nil, nil)
}

// ResumeCheckpoint picks a checkpointed run back up from path: the
// scenario comes from the file, completed replications are loaded
// without re-execution, and each in-flight replication is replayed from
// its seed to its cursor — where the state digest must match the
// recorded one — before running on to the horizon. cfg.Path is ignored
// (progress keeps going to the same file); cfg.Every and cfg.HaltAt
// work as in RunCheckpointed.
func (p *Pool) ResumeCheckpoint(path string, cfg CheckpointConfig) (*Result, error) {
	f, err := checkpoint.Read(path)
	if err != nil {
		return nil, err
	}
	sc, hdr, err := decodeCkptHeader(path, f.Header)
	if err != nil {
		return nil, err
	}
	manifest, ok := f.Sections[telemetrySectionName]
	if !ok {
		return nil, fmt.Errorf("manetp2p: checkpoint %s: no %q section — written by a binary without the telemetry plane", path, telemetrySectionName)
	}
	if err := sections.CheckManifest(manifest); err != nil {
		return nil, fmt.Errorf("manetp2p: checkpoint %s: %w — the telemetry plane changed between the writing and resuming binaries", path, err)
	}
	st := newCkptState(path, hdr.Scenario, hdr.Total)
	preloaded := make(map[int]repResult, len(hdr.Completed))
	for _, rep := range hdr.Completed {
		data, ok := f.Sections[sectionName(rep)]
		if !ok {
			return nil, fmt.Errorf("manetp2p: checkpoint %s: header lists replication %d complete but section %q is missing", path, rep, sectionName(rep))
		}
		rec, err := decodeRecord(data)
		if err != nil {
			return nil, fmt.Errorf("manetp2p: checkpoint %s: replication %d: %w", path, rep, err)
		}
		preloaded[rep] = rec.repResult()
		st.records[rep] = data
	}
	cursors := make(map[int]ckptCursor, len(hdr.Cursors))
	for _, c := range hdr.Cursors {
		if c.Rep < 0 || c.Rep >= hdr.Total {
			return nil, fmt.Errorf("manetp2p: checkpoint %s: cursor for out-of-range replication %d", path, c.Rep)
		}
		cursors[c.Rep] = c
		st.cursors[c.Rep] = c
	}
	return p.driveCheckpointed(sc, cfg, st, preloaded, cursors)
}

// driveCheckpointed is the shared engine under RunCheckpointed and
// ResumeCheckpoint: it runs every replication not already in preloaded
// under the pool's worker budget, persisting boundaries through st.
func (p *Pool) driveCheckpointed(sc Scenario, cfg CheckpointConfig, st *ckptState, preloaded map[int]repResult, cursors map[int]ckptCursor) (*Result, error) {
	every := checkpointEvery(sc, cfg)
	var local chan struct{}
	if sc.Workers > 0 {
		local = make(chan struct{}, sc.Workers)
	}
	reps := make([]repResult, sc.Replications)
	halted := make([]bool, sc.Replications)
	var wg sync.WaitGroup
	for r := 0; r < sc.Replications; r++ {
		if rr, ok := preloaded[r]; ok {
			reps[r] = rr
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if local != nil {
				local <- struct{}{}
				defer func() { <-local }()
			}
			p.slots <- struct{}{}
			defer func() { <-p.slots }()
			cur, resume := cursors[r]
			reps[r], halted[r] = runRepCheckpointed(sc, r, st, every, cfg.HaltAt, cur, resume)
		}(r)
	}
	wg.Wait()

	for _, rr := range reps {
		if rr.err != nil {
			return nil, rr.err
		}
	}
	for _, h := range halted {
		if h {
			return nil, fmt.Errorf("%w: %s", ErrHalted, st.path)
		}
	}
	st.mu.Lock()
	st.done = true
	st.mu.Unlock()
	if err := st.persist(); err != nil {
		return nil, err
	}
	res := aggregate(sc, reps)
	streamMetrics(sc, reps, cfg.Sink)
	return res, nil
}

// runRepCheckpointed executes one replication in boundary-sized
// segments. With a resume cursor it first replays to the cursor and
// verifies the state digest; a mismatch means the replay diverged from
// the run that wrote the checkpoint — a determinism bug, not a
// recoverable condition — and fails the replication.
func runRepCheckpointed(sc Scenario, rep int, st *ckptState, every, haltAt Duration, cur ckptCursor, resume bool) (repResult, bool) {
	r, err := startReplication(sc, rep)
	if err != nil {
		return repResult{err: err}, false
	}
	now := sim.Time(0)
	if resume {
		at := sim.Time(cur.At)
		r.runTo(at)
		now = at
		fp := checkpoint.Fingerprint(r.net)
		if got := fmt.Sprintf("%016x", fp); got != cur.Digest || r.net.Sim.Fired() != cur.Fired {
			return repResult{err: fmt.Errorf(
				"manetp2p: resume: replication %d diverged from its checkpoint at t=%v: digest %s (%d events fired) vs recorded %s (%d) — the replay is not reproducing the original run; the binary, scenario or an undetected nondeterminism changed",
				rep, at, got, r.net.Sim.Fired(), cur.Digest, cur.Fired)}, false
		}
	}
	for now < sc.Duration {
		t := nextStop(now, every, haltAt, sc.Duration)
		r.runTo(t)
		now = t
		if now >= sc.Duration {
			break
		}
		c := ckptCursor{
			Rep: rep, At: int64(now), Fired: r.net.Sim.Fired(),
			Digest: fmt.Sprintf("%016x", checkpoint.Fingerprint(r.net)),
		}
		if err := st.setCursor(c); err != nil {
			return repResult{err: err}, false
		}
		if haltAt > 0 && now == haltAt {
			return repResult{}, true
		}
	}
	rr := r.finish()
	if rr.err != nil {
		return rr, false
	}
	data, err := encodeRecord(recordOf(rr))
	if err != nil {
		rr.err = err
		return rr, false
	}
	if err := st.complete(rep, data); err != nil {
		rr.err = err
		return rr, false
	}
	return rr, false
}

// CheckpointInfo summarizes a checkpoint file without decoding its
// payload sections — what tooling and the sweep driver need to decide
// whether a grid point is done, resumable, or belongs to a different
// scenario.
type CheckpointInfo struct {
	Scenario  Scenario
	Done      bool
	Total     int          // replications in the scenario
	Completed []int        // replication indices finished and stored
	Cursors   []ckptCursor // in-flight replications, ascending rep
}

// InspectCheckpoint reads only the header of the checkpoint at path.
func InspectCheckpoint(path string) (*CheckpointInfo, error) {
	hb, err := checkpoint.ReadHeader(path)
	if err != nil {
		return nil, err
	}
	sc, hdr, err := decodeCkptHeader(path, hb)
	if err != nil {
		return nil, err
	}
	return &CheckpointInfo{
		Scenario: sc, Done: hdr.Done, Total: hdr.Total,
		Completed: hdr.Completed, Cursors: hdr.Cursors,
	}, nil
}

func decodeCkptHeader(path string, raw []byte) (Scenario, ckptHeader, error) {
	var hdr ckptHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return Scenario{}, hdr, fmt.Errorf("manetp2p: checkpoint %s: header: %w", path, err)
	}
	if hdr.Kind != ckptKind {
		return Scenario{}, hdr, fmt.Errorf("manetp2p: checkpoint %s: kind %q, want %q", path, hdr.Kind, ckptKind)
	}
	sc, err := UnmarshalJSONScenario(hdr.Scenario)
	if err != nil {
		return Scenario{}, hdr, fmt.Errorf("manetp2p: checkpoint %s: scenario: %w", path, err)
	}
	if hdr.Total != sc.Replications {
		return Scenario{}, hdr, fmt.Errorf("manetp2p: checkpoint %s: header says %d replications, scenario says %d", path, hdr.Total, sc.Replications)
	}
	return sc, hdr, nil
}
