package manetp2p

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
)

// quickScenario returns a small, fast scenario for tests.
func quickScenario(alg Algorithm, nodes int) Scenario {
	sc := DefaultScenario(nodes, alg)
	sc.Duration = 300 * sim.Second
	sc.Replications = 2
	sc.SnapshotEvery = 100 * sim.Second
	return sc
}

func TestScenarioValidate(t *testing.T) {
	if err := DefaultScenario(50, Regular).Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	bads := []func(*Scenario){
		func(s *Scenario) { s.NumNodes = 0 },
		func(s *Scenario) { s.MemberFraction = 0 },
		func(s *Scenario) { s.AreaSide = 0 },
		func(s *Scenario) { s.Range = -1 },
		func(s *Scenario) { s.MaxSpeed = 0 },
		func(s *Scenario) { s.Duration = 0 },
		func(s *Scenario) { s.Replications = 0 },
		func(s *Scenario) { s.Params.QueryTTL = 0 },
		func(s *Scenario) { s.Files.MaxFreq = 2 },
	}
	for i, mutate := range bads {
		sc := DefaultScenario(50, Regular)
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestRunProducesPaperMetrics(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(quickScenario(alg, 24))
			if err != nil {
				t.Fatal(err)
			}
			n := 24.0
			members := int(n*0.75 + 0.5)
			if len(res.ConnectSeries) != members {
				t.Errorf("ConnectSeries length = %d, want %d members", len(res.ConnectSeries), members)
			}
			if len(res.PerFile) != res.Scenario.Files.NumFiles {
				t.Errorf("PerFile length = %d, want %d", len(res.PerFile), res.Scenario.Files.NumFiles)
			}
			if res.Totals[telemetry.Connect].Mean <= 0 {
				t.Error("no connect messages recorded")
			}
			// Series must be nonincreasing (they are rank-wise means of
			// sorted series).
			for i := 1; i < len(res.ConnectSeries); i++ {
				if res.ConnectSeries[i] > res.ConnectSeries[i-1]+1e-9 {
					t.Errorf("ConnectSeries not nonincreasing at %d", i)
					break
				}
			}
			reqs := 0
			for _, fc := range res.PerFile {
				reqs += fc.Requests
			}
			if reqs == 0 {
				t.Error("no query requests recorded")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := quickScenario(Random, 20)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ConnectSeries {
		if a.ConnectSeries[i] != b.ConnectSeries[i] {
			t.Fatalf("ConnectSeries diverged at rank %d: %v vs %v", i, a.ConnectSeries[i], b.ConnectSeries[i])
		}
	}
	if a.Totals[telemetry.Ping].Mean != b.Totals[telemetry.Ping].Mean {
		t.Error("ping totals diverged between identical runs")
	}
}

func TestWorkerCountDoesNotAffectResults(t *testing.T) {
	// Replications are independently seeded, so results must not depend
	// on how they are scheduled across workers.
	base := quickScenario(Random, 18)
	base.Replications = 4
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 4
	a, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ConnectSeries {
		if a.ConnectSeries[i] != b.ConnectSeries[i] {
			t.Fatalf("worker count changed results at rank %d: %v vs %v",
				i, a.ConnectSeries[i], b.ConnectSeries[i])
		}
	}
	if len(a.PerFile) != len(b.PerFile) {
		t.Fatal("PerFile lengths differ")
	}
	for f := range a.PerFile {
		if a.PerFile[f].Requests != b.PerFile[f].Requests {
			t.Fatalf("file %d request counts differ across worker counts", f)
		}
	}
}

func TestBasicFloodsMoreThanRegular(t *testing.T) {
	// Figure 7's headline at the paper's own scale (50 nodes, 3600 s):
	// Basic's indiscriminate fixed-radius broadcasts cost more connect
	// and ping messages per node than Regular's progressive scheme.
	scB := DefaultScenario(50, Basic)
	scB.Replications = 2
	scR := scB
	scR.Algorithm = Regular
	basic, err := Run(scB)
	if err != nil {
		t.Fatal(err)
	}
	regular, err := Run(scR)
	if err != nil {
		t.Fatal(err)
	}
	b := basic.Totals[telemetry.Connect].Mean
	r := regular.Totals[telemetry.Connect].Mean
	if b <= r {
		t.Errorf("connect msgs per node: Basic %.1f <= Regular %.1f; paper's Figure 7 shape violated", b, r)
	}
	bp := basic.Totals[telemetry.Ping].Mean
	rp := regular.Totals[telemetry.Ping].Mean
	if bp <= rp {
		t.Errorf("ping msgs per node: Basic %.1f <= Regular %.1f; paper's Figure 9 shape violated", bp, rp)
	}
}

func TestAliveSeriesTracksChurnAndDeath(t *testing.T) {
	sc := quickScenario(Regular, 20)
	sc.Duration = 900 * sim.Second
	sc.SnapshotEvery = 60 * sim.Second
	sc.Replications = 1
	sc.Energy = DefaultEnergy(0.3) // tiny budget: nodes die mid-run
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AliveSeries) == 0 {
		t.Fatal("no alive series with snapshots on")
	}
	first, last := res.AliveSeries[0], res.AliveSeries[len(res.AliveSeries)-1]
	if last >= first {
		t.Errorf("alive fraction did not decay under battery death: %.2f -> %.2f", first, last)
	}
	if len(res.DegreeSeries) != len(res.AliveSeries) {
		t.Errorf("series lengths differ: %d vs %d", len(res.DegreeSeries), len(res.AliveSeries))
	}
	for _, v := range res.AliveSeries {
		if v < 0 || v > 1 {
			t.Fatalf("alive fraction %v outside [0,1]", v)
		}
	}
	// The summary covers the energy branch for finite-battery runs.
	var buf bytes.Buffer
	WriteSummary(&buf, res)
	if !strings.Contains(buf.String(), "energy:") {
		t.Error("summary omitted energy for a finite-battery scenario")
	}
}

func TestSimulationStepAPI(t *testing.T) {
	sc := quickScenario(Regular, 16)
	s, err := NewSimulation(sc)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(60 * sim.Second)
	if s.Now() != 60*sim.Second {
		t.Errorf("Now = %v, want 60s", s.Now())
	}
	if s.Net.AliveMembers() == 0 {
		t.Error("no members alive")
	}
}

func TestConnLifetimeRecorded(t *testing.T) {
	sc := quickScenario(Regular, 24)
	sc.Duration = 900 * sim.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Mobility at 1 m/s over a 100 m arena breaks links within the run.
	if res.ConnLifetime.N == 0 {
		t.Fatal("no connection lifetimes recorded in 15 mobile minutes")
	}
	if res.ConnLifetime.Mean <= 0 || res.ConnLifetime.Mean > 900 {
		t.Errorf("mean lifetime %.1f s out of range", res.ConnLifetime.Mean)
	}
	if res.ConnLifetime.Min < 0 {
		t.Errorf("negative lifetime recorded")
	}
}

func TestTrafficSeriesShowsFormationBurst(t *testing.T) {
	sc := quickScenario(Regular, 20)
	sc.Duration = 1200 * sim.Second
	sc.Replications = 2
	sc.TrafficBucket = 120 * sim.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConnectTraffic) == 0 {
		t.Fatal("no connect traffic series with bucketing on")
	}
	if len(res.ConnectTraffic) > 12 {
		t.Errorf("series length %d exceeds duration/bucket", len(res.ConnectTraffic))
	}
	// Network formation concentrates connect traffic early: the first
	// two buckets should outweigh the last two (nodes back off or fill
	// up as the overlay settles).
	early := res.ConnectTraffic[0] + res.ConnectTraffic[1]
	n := len(res.ConnectTraffic)
	late := res.ConnectTraffic[n-1] + res.ConnectTraffic[n-2]
	if early <= late {
		t.Errorf("no formation burst: early %.1f <= late %.1f", early, late)
	}
	var buf bytes.Buffer
	if err := WriteTrafficSeries(&buf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n+2 {
		t.Errorf("traffic series lines = %d, want %d", lines, n+2)
	}
	if err := WriteTrafficSeries(io.Discard, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioRoutingAndMobilityMapping(t *testing.T) {
	// Every routing substrate and mobility model must build and run
	// through the public Scenario API.
	for _, routing := range []RoutingKind{RoutingAODV, RoutingDSR, RoutingDSDV, RoutingFlood} {
		sc := quickScenario(Regular, 12)
		sc.Duration = 120 * sim.Second
		sc.Replications = 1
		sc.Routing = routing
		if _, err := Run(sc); err != nil {
			t.Errorf("routing %v: %v", routing, err)
		}
	}
	for _, mob := range []MobilityKind{MobilityWaypoint, MobilityStationary, MobilityWalk, MobilityDirection, MobilityGaussMarkov} {
		sc := quickScenario(Regular, 12)
		sc.Duration = 120 * sim.Second
		sc.Replications = 1
		sc.Mobility = mob
		if _, err := Run(sc); err != nil {
			t.Errorf("mobility %v: %v", mob, err)
		}
	}
	// The Stationary flag overrides the mobility kind.
	sc := quickScenario(Regular, 4)
	sc.Mobility = MobilityWalk
	sc.Stationary = true
	s, err := NewSimulation(sc)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Net.Medium.Pos(0)
	s.Step(5 * sim.Minute)
	if s.Net.Medium.Pos(0) != before {
		t.Error("Stationary flag did not freeze movement")
	}
}

func TestGiniCoefficient(t *testing.T) {
	if g := GiniCoefficient([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("uniform gini = %v, want 0", g)
	}
	g := GiniCoefficient([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Errorf("concentrated gini = %v, want high", g)
	}
	if GiniCoefficient(nil) != 0 || GiniCoefficient([]float64{0, 0}) != 0 {
		t.Error("degenerate gini not 0")
	}
	// More even distributions score lower.
	if GiniCoefficient([]float64{1, 2, 3, 4}) >= GiniCoefficient([]float64{0, 0, 1, 9}) {
		t.Error("gini ordering violated")
	}
}

func TestReportWriters(t *testing.T) {
	res, err := Run(quickScenario(Regular, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFileCurves(&buf, []*Result{res}, 10); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 12 { // header x2 + 10 files
		t.Errorf("file curves lines = %d, want 12:\n%s", lines, buf.String())
	}
	buf.Reset()
	if err := WriteNodeSeries(&buf, SeriesConnect, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "connect") {
		t.Error("node series missing header")
	}
	buf.Reset()
	WriteTable1(&buf)
	for _, want := range []string{"Manageable", "Lawsuit-proof", "apparently"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	buf.Reset()
	WriteTable2(&buf, res.Scenario)
	for _, want := range []string{"MAXNCONN", "40%", "TTL for queries"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	buf.Reset()
	WriteSummary(&buf, res)
	if !strings.Contains(buf.String(), "Regular") {
		t.Error("summary missing algorithm name")
	}
}

func TestSeriesKindString(t *testing.T) {
	for k, want := range map[SeriesKind]string{SeriesConnect: "connect", SeriesPing: "ping", SeriesQuery: "query"} {
		if k.String() != want {
			t.Errorf("String() = %q, want %q", k.String(), want)
		}
	}
}

func TestWriteNodeSeriesAllKinds(t *testing.T) {
	res, err := Run(quickScenario(Regular, 12))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SeriesKind{SeriesConnect, SeriesPing, SeriesQuery} {
		var buf bytes.Buffer
		if err := WriteNodeSeries(&buf, kind, []*Result{res, res}); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), kind.String()) {
			t.Errorf("%v series output missing header", kind)
		}
		// Two results -> three columns per data row (rank + 2 values).
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		last := strings.Split(lines[len(lines)-1], "\t")
		if len(last) != 3 {
			t.Errorf("%v row has %d columns, want 3", kind, len(last))
		}
	}
	// Writers tolerate empty input.
	if err := WriteNodeSeries(io.Discard, SeriesConnect, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileCurves(io.Discard, nil, 10); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceClassesSumToSensibleWeights(t *testing.T) {
	q := DeviceClasses()
	if len(q.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(q.Classes))
	}
	total := 0.0
	prev := -1.0
	for _, c := range q.Classes {
		total += c.Weight
		if c.Value <= prev {
			// Classes are listed from least to most capable.
			t.Errorf("class values not increasing: %v", q.Classes)
		}
		prev = c.Value
	}
	if total <= 0 {
		t.Error("non-positive total weight")
	}
}
