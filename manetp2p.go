// Package manetp2p reproduces "Peer-to-Peer over Ad-hoc Networks:
// (Re)Configuration Algorithms" (Franciscani, Vasconcelos, Couto,
// Loureiro — IPDPS 2003): four algorithms that build and maintain a p2p
// overlay on a mobile ad-hoc network, evaluated on a discrete-event
// MANET simulator with AODV routing, Random Waypoint mobility and a
// Gnutella-style query workload.
//
// The public API is scenario-oriented:
//
//	sc := manetp2p.DefaultScenario(50, manetp2p.Regular)
//	res, err := manetp2p.Run(sc)
//	fmt.Println(res.ConnectSeries) // Figure 7's curve
//
// Run executes the scenario's replications concurrently (one goroutine
// per replication up to GOMAXPROCS) and aggregates the paper's metrics:
// per-file distance/answer curves (Figures 5–6) and per-node
// descending message-count series (Figures 7–12).
package manetp2p

import (
	"fmt"

	"manetp2p/internal/aodv"
	"manetp2p/internal/fault"
	"manetp2p/internal/geom"
	"manetp2p/internal/invariant"
	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
	"manetp2p/internal/workload"
)

// Algorithm selects one of the paper's four (re)configuration
// algorithms.
type Algorithm = p2p.Algorithm

// The four algorithms of §6.
const (
	Basic   = p2p.Basic
	Regular = p2p.Regular
	Random  = p2p.Random
	Hybrid  = p2p.Hybrid
)

// Algorithms lists all four in the paper's order.
func Algorithms() []Algorithm { return p2p.Algorithms() }

// Params re-exports the protocol constants of Table 2.
type Params = p2p.Params

// DefaultParams returns Table 2 plus this reproduction's timing
// defaults.
func DefaultParams() Params { return p2p.DefaultParams() }

// FileConfig re-exports the Zipf content model of §7.2.
type FileConfig = p2p.FileConfig

// Duration is simulated time; use FromSeconds or the sim package units.
type Duration = sim.Time

// Seconds converts a float seconds value into a Duration.
func Seconds(s float64) Duration { return sim.FromSeconds(s) }

// QualifierConfig re-exports the hybrid qualifier assignment model.
type QualifierConfig = manet.QualifierConfig

// ChurnConfig re-exports the death/birth process configuration.
type ChurnConfig = manet.ChurnConfig

// EnergyConfig re-exports the battery model configuration.
type EnergyConfig = radio.EnergyConfig

// DeviceClasses returns the heterogeneous phone/PDA/notebook population
// the paper motivates for the Hybrid algorithm.
func DeviceClasses() QualifierConfig { return manet.DeviceClasses() }

// RoutingKind selects the network-layer protocol under the overlay.
type RoutingKind = manet.RoutingKind

// The available routing substrates.
const (
	RoutingAODV  = manet.RoutingAODV
	RoutingDSR   = manet.RoutingDSR
	RoutingFlood = manet.RoutingFlood
	RoutingDSDV  = manet.RoutingDSDV
)

// MobilityKind selects the movement model.
type MobilityKind = manet.MobilityKind

// The available mobility models.
const (
	MobilityWaypoint    = manet.MobilityWaypoint
	MobilityStationary  = manet.MobilityStationary
	MobilityWalk        = manet.MobilityWalk
	MobilityDirection   = manet.MobilityDirection
	MobilityGaussMarkov = manet.MobilityGaussMarkov
)

// DefaultEnergy returns a finite battery profile with the given capacity
// in joules.
func DefaultEnergy(capacityJ float64) EnergyConfig { return radio.DefaultEnergy(capacityJ) }

// FaultPlan re-exports the scripted fault-injection timeline: a list of
// typed events executed deterministically during every replication.
type FaultPlan = fault.Plan

// FaultEvent is one entry of a FaultPlan.
type FaultEvent = fault.Event

// FaultKind identifies a fault event type.
type FaultKind = fault.Kind

// The fault event types.
const (
	FaultPartition  = fault.Partition
	FaultJam        = fault.Jam
	FaultLossBurst  = fault.LossBurst
	FaultCrashGroup = fault.CrashGroup
	FaultLinkFlap   = fault.LinkFlap
)

// FaultAxis selects a partition cut orientation.
type FaultAxis = fault.Axis

// Partition cut orientations.
const (
	AxisX = fault.AxisX
	AxisY = fault.AxisY
)

// PartitionFault scripts an arena split along axis = pos for dur
// starting at at: no frame crosses the line while it is active.
func PartitionFault(at, dur Duration, axis FaultAxis, pos float64) FaultEvent {
	return fault.PartitionEvent(at, dur, axis, pos)
}

// JamFault scripts a circular jammed region centred at (x, y) whose
// deliveries suffer the added loss probability.
func JamFault(at, dur Duration, x, y, radius, loss float64) FaultEvent {
	return fault.JamEvent(at, dur, geom.Point{X: x, Y: y}, radius, loss)
}

// LossBurstFault scripts a global loss spike of the given probability.
func LossBurstFault(at, dur Duration, loss float64) FaultEvent {
	return fault.LossBurstEvent(at, dur, loss)
}

// CrashGroupFault scripts a correlated crash of count members,
// restarted when the event clears.
func CrashGroupFault(at, dur Duration, count int) FaultEvent {
	return fault.CrashGroupEvent(at, dur, count)
}

// CrashFractionFault scripts a correlated crash of a fraction of the
// membership, restarted when the event clears.
func CrashFractionFault(at, dur Duration, fraction float64) FaultEvent {
	return fault.CrashFractionEvent(at, dur, fraction)
}

// LinkFlapFault scripts periodic link outages: within [at, at+dur),
// every period starts with downFor of dead air.
func LinkFlapFault(at, dur, period, downFor Duration) FaultEvent {
	return fault.LinkFlapEvent(at, dur, period, downFor)
}

// WorkloadPlan re-exports the scriptable demand model
// (internal/workload): arrival process, evolving content popularity,
// session classes and a phase timeline. A nil plan keeps the paper's
// built-in query loop byte-identically.
type WorkloadPlan = workload.Plan

// WorkloadArrival configures the demand arrival process.
type WorkloadArrival = workload.Arrival

// WorkloadProcess identifies an arrival process.
type WorkloadProcess = workload.Process

// The arrival processes.
const (
	ArrivalUniform = workload.Uniform
	ArrivalPoisson = workload.Poisson
	ArrivalOnOff   = workload.OnOff
	ArrivalDiurnal = workload.Diurnal
)

// WorkloadPopularity configures the evolving Zipf content popularity.
type WorkloadPopularity = workload.Popularity

// WorkloadSessions configures the per-node session-class mix.
type WorkloadSessions = workload.Sessions

// WorkloadSessionClass is one session class (seeder, free-rider, ...).
type WorkloadSessionClass = workload.SessionClass

// WorkloadPhase is one entry of the phase timeline (ramp, steady,
// flash crowd, drain).
type WorkloadPhase = workload.Phase

// DefaultWorkloadSessions returns the seeder / free-rider / transient
// population mix.
func DefaultWorkloadSessions() WorkloadSessions { return workload.DefaultSessions() }

// InvariantConfig re-exports the runtime invariant checker
// configuration (internal/invariant): sampling period, grace window for
// in-flight cross-node inconsistencies, and the violation recording cap.
type InvariantConfig = invariant.Config

// InvariantViolation is one detected cross-layer invariant breach,
// stamped with the simulated time and the node(s) involved.
type InvariantViolation = invariant.Violation

// Scenario describes one experiment: a node population, an algorithm,
// the protocol parameters and the measurement horizon.
type Scenario struct {
	Name      string    // label used in reports
	Algorithm Algorithm // which (re)configuration algorithm the servents run

	NumNodes       int     // ad-hoc nodes (paper: 50 and 150)
	MemberFraction float64 // fraction in the p2p overlay (paper: 0.75)
	AreaSide       float64 // square arena side, metres (paper: 100)
	Range          float64 // radio range, metres (paper: 10)

	Params Params     // Table 2 protocol constants
	Files  FileConfig // Zipf content model
	Quals  manet.QualifierConfig

	MaxSpeed   float64            // Random Waypoint max speed, m/s (paper: 1.0)
	MaxPause   Duration           // Random Waypoint max pause (paper: 100 s)
	Stationary bool               // freeze all nodes (isolates mobility effects)
	Mobility   manet.MobilityKind // movement model (default: Random Waypoint)

	Duration     Duration // simulated time per replication (paper: 3600 s)
	Replications int      // independent runs (paper: 33)
	Seed         int64    // base seed; replication r uses Seed + r

	// Optional extensions (paper §8 future work).
	Churn    manet.ChurnConfig  // death/birth process; zero = disabled
	Energy   radio.EnergyConfig // battery model; zero = infinite
	LossProb float64            // link-layer loss probability

	// Routing substrate (paper: AODV; DSR and flooding enable the
	// routing comparison its companion study [13] performed).
	Routing manet.RoutingKind

	// Overlay-graph sampling for the small-world analysis.
	SnapshotEvery Duration // 0 = no snapshots

	// TrafficBucket > 0 collects network-wide message-rate series
	// (Result.ConnectTraffic / QueryTraffic), e.g. 60 s buckets.
	TrafficBucket Duration

	// Faults optionally scripts targeted failures — partitions,
	// regional jamming, loss bursts, correlated crashes, link flaps —
	// executed identically (same seed ⇒ same failures) in every
	// replication. Recovery metrics land in Result.Resilience.
	Faults FaultPlan

	// HealthEvery sets the resilience-telemetry sampling period
	// (largest-component fraction, link count, message rates). Zero
	// defaults to 10 s whenever Faults is non-empty; telemetry stays
	// off in fault-free runs unless set explicitly.
	HealthEvery Duration

	// TraceCapacity > 0 enables structured event tracing in
	// single-Simulation use (NewSimulation); Run ignores it because
	// traces from 33 replications are rarely what anyone wants.
	TraceCapacity int

	// Workload optionally replaces the paper's built-in query loop with
	// the scriptable demand engine (internal/workload). Nil (the
	// default) keeps every existing scenario bit-identical; a set plan
	// adds the Result.Workload telemetry block.
	Workload *WorkloadPlan `json:",omitempty"`

	// Invariants optionally arms the runtime invariant checker in every
	// replication; findings land in Result.Invariants. Nil (the default)
	// disables it entirely — the checker is strictly opt-in and costs
	// nothing when off. Enabling it does not change measured results:
	// the checker only observes and draws no randomness.
	Invariants *InvariantConfig `json:",omitempty"`

	// CheckpointEvery sets the default spacing of checkpoint boundaries
	// for Pool.RunCheckpointed (DESIGN.md §11); zero falls back to
	// Duration/8. It has no effect on plain Run, and omitempty keeps
	// every pre-checkpoint fixture byte-identical.
	CheckpointEvery Duration `json:",omitempty"`

	// Concurrency: 0 = GOMAXPROCS.
	Workers int
}

// DefaultScenario returns the paper's Table 2 setup for n nodes running
// alg, with the full 3600 s × 33 replications horizon.
func DefaultScenario(n int, alg Algorithm) Scenario {
	return Scenario{
		Name:           fmt.Sprintf("%s-%d", alg, n),
		Algorithm:      alg,
		NumNodes:       n,
		MemberFraction: 0.75,
		AreaSide:       100,
		Range:          10,
		Params:         DefaultParams(),
		Files:          p2p.DefaultFileConfig(),
		Quals:          manet.DefaultQualifiers(),
		MaxSpeed:       1.0,
		MaxPause:       100 * sim.Second,
		Duration:       3600 * sim.Second,
		Replications:   33,
		Seed:           1,
		SnapshotEvery:  300 * sim.Second,
	}
}

// Validate reports a descriptive error for inconsistent scenarios.
func (sc Scenario) Validate() error {
	switch {
	case sc.NumNodes < 1:
		return fmt.Errorf("manetp2p: NumNodes %d < 1", sc.NumNodes)
	case sc.MemberFraction <= 0 || sc.MemberFraction > 1:
		return fmt.Errorf("manetp2p: MemberFraction %v outside (0,1]", sc.MemberFraction)
	case sc.AreaSide <= 0:
		return fmt.Errorf("manetp2p: AreaSide %v not positive", sc.AreaSide)
	case sc.Range <= 0:
		return fmt.Errorf("manetp2p: Range %v not positive", sc.Range)
	case sc.MaxSpeed <= 0:
		return fmt.Errorf("manetp2p: MaxSpeed %v not positive", sc.MaxSpeed)
	case sc.Duration <= 0:
		return fmt.Errorf("manetp2p: Duration %v not positive", sc.Duration)
	case sc.Replications < 1:
		return fmt.Errorf("manetp2p: Replications %d < 1", sc.Replications)
	case sc.HealthEvery < 0:
		return fmt.Errorf("manetp2p: HealthEvery %v negative", sc.HealthEvery)
	case sc.CheckpointEvery < 0:
		return fmt.Errorf("manetp2p: CheckpointEvery %v negative", sc.CheckpointEvery)
	}
	if err := sc.Faults.Validate(); err != nil {
		return fmt.Errorf("manetp2p: fault plan: %w", err)
	}
	if err := sc.Params.Validate(); err != nil {
		return err
	}
	if sc.Invariants != nil {
		if err := sc.Invariants.Validate(); err != nil {
			return fmt.Errorf("manetp2p: %w", err)
		}
	}
	if sc.Workload != nil {
		if err := sc.Workload.Validate(); err != nil {
			return fmt.Errorf("manetp2p: workload plan: %w", err)
		}
	}
	return sc.Files.Validate()
}

// manetConfig translates a Scenario into one replication's config.
func (sc Scenario) manetConfig(rep int) manet.Config {
	mob := manet.DefaultMobility()
	mob.MaxSpeed = sc.MaxSpeed
	if mob.MinSpeed > sc.MaxSpeed {
		mob.MinSpeed = sc.MaxSpeed / 10
	}
	mob.MaxPause = sc.MaxPause
	mob.Kind = sc.Mobility
	if sc.Stationary {
		mob.Kind = manet.MobilityStationary
	}
	cfg := manet.Config{
		Seed:           sc.Seed + int64(rep),
		NumNodes:       sc.NumNodes,
		MemberFraction: sc.MemberFraction,
		Arena:          geom.Rect{W: sc.AreaSide, H: sc.AreaSide},
		Range:          sc.Range,
		Algorithm:      sc.Algorithm,
		Params:         sc.Params,
		Files:          sc.Files,
		Mobility:       mob,
		Qualifiers:     sc.Quals,
		Churn:          sc.Churn,
		Latency:        2 * sim.Millisecond,
		Jitter:         sim.Millisecond,
		LossProb:       sc.LossProb,
		Energy:         sc.Energy,
		Routing:        sc.Routing,
		AODV:           aodv.Config{},
		TrafficBucket:  sc.TrafficBucket,
		Faults:         sc.Faults,
		HealthEvery:    sc.healthEvery(),
	}
	if sc.Invariants != nil {
		cfg.Invariants = *sc.Invariants
	}
	cfg.Workload = sc.Workload
	return cfg
}

// healthEvery resolves the effective telemetry period: explicit value,
// else 10 s whenever faults are scripted, else off.
func (sc Scenario) healthEvery() sim.Time {
	if sc.HealthEvery > 0 {
		return sc.HealthEvery
	}
	if !sc.Faults.Empty() {
		return 10 * sim.Second
	}
	return 0
}

// Simulation is a single live replication, exposed for interactive use
// (examples, visual tools). For measurements use Run instead.
type Simulation struct {
	Net *manet.Network
}

// NewSimulation builds one replication of the scenario (replication
// index 0) without running it.
func NewSimulation(sc Scenario) (*Simulation, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := sc.manetConfig(0)
	cfg.TraceCapacity = sc.TraceCapacity
	net, err := manet.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{Net: net}, nil
}

// Step advances the simulation by d.
func (s *Simulation) Step(d Duration) { s.Net.Run(d) }

// Now returns the current simulated time.
func (s *Simulation) Now() Duration { return s.Net.Sim.Now() }
