#!/bin/sh
# Repository health check: format, vet, full tests, quick bench smoke.
set -e
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "needs gofmt:"
	echo "$unformatted"
	exit 1
fi
echo ok

echo "== go vet =="
go vet ./...
echo ok

echo "== go build =="
go build ./...
echo ok

echo "== go test =="
go test ./...

echo "== go test -race (sim core, fault injection, root) =="
go test -race ./internal/sim ./internal/fault .

echo "== bench smoke (micro benches only) =="
go test -run xxx -bench 'Table1|GridNear|SimEventQueue|AODVDiscovery' -benchtime 10x .

echo "all checks passed"
