#!/bin/sh
# Repository health check: format, vet, full tests, quick bench smoke.
#
# `./check.sh bench` instead runs the tracked benchmark suite, writes
# the machine-readable report (see cmd/bench), and gates it against the
# committed baseline (BENCH_7.json): >20% ns/op regressions on
# comparable hardware or any allocs/op increase on a 0-alloc benchmark
# fail. Pass an output path as the second argument to override the
# default BENCH.json; writing the baseline path itself skips the gate.
#
# `./check.sh selfcheck` runs the runtime invariant suite and the
# determinism self-audit (p2psim -selfcheck) across all four algorithms:
# fault-free, under the scripted partition+crash plan in
# testdata/selfcheck_faults.json, and under the full workload plan in
# testdata/selfcheck_workload.json (which arms the demand-conservation
# rules). Exits nonzero on any violation.
set -e
cd "$(dirname "$0")"

if [ "$1" = "bench" ]; then
	out="${2:-BENCH.json}"
	echo "== tracked benchmarks -> $out (gated against BENCH_7.json) =="
	go run ./cmd/bench -o "$out" -baseline BENCH_7.json
	exit 0
fi

if [ "$1" = "selfcheck" ]; then
	for alg in basic regular random hybrid; do
		echo "== selfcheck $alg (no faults) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2
		echo "== selfcheck $alg (partition + crash) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2 \
			-faults testdata/selfcheck_faults.json
		echo "== selfcheck $alg (scripted workload) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2 \
			-workload testdata/selfcheck_workload.json
	done
	echo "selfcheck passed"
	exit 0
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "needs gofmt:"
	echo "$unformatted"
	exit 1
fi
echo ok

echo "== go vet =="
go vet ./...
echo ok

echo "== go build =="
go build ./...
echo ok

echo "== go test =="
go test ./...

echo "== go test -race (sim core, fault injection, workload, root) =="
go test -race ./internal/sim ./internal/fault ./internal/workload .

echo "== bench smoke (micro benches only) =="
go test -run xxx -bench 'Table1|GridNear|SimEventQueue|AODVDiscovery' -benchtime 10x .

echo "all checks passed"
