#!/bin/sh
# Repository health check: format, vet, full tests, quick bench smoke.
#
# `./check.sh bench` instead runs the tracked benchmark suite, writes
# the machine-readable report (see cmd/bench), and gates it against the
# committed baseline (BENCH_10.json): >20% ns/op regressions on
# comparable hardware or any allocs/op increase on a 0-alloc benchmark
# fail. Pass an output path as the second argument to override the
# default BENCH.json; writing the baseline path itself skips the gate.
#
# `./check.sh selfcheck` runs the runtime invariant suite and the
# determinism self-audit (p2psim -selfcheck) across all four algorithms:
# fault-free, under the scripted partition+crash plan in
# testdata/selfcheck_faults.json, under the full workload plan in
# testdata/selfcheck_workload.json (which arms the demand-conservation
# rules), and once more with the peer-cache extension enabled. Exits
# nonzero on any violation.
#
# `./check.sh checkpoint` runs the full golden-fixture checkpoint
# round-trip: every committed fixture (including testdata/golden/
# workload.json) is checkpointed at its midpoint, resumed in a fresh
# process, and the resumed report must match the fixture byte for byte.
# Set MANETP2P_CKPT_ARTIFACT to a directory to keep the mid-run workload
# checkpoint (CI uploads it as an artifact).
set -e
cd "$(dirname "$0")"

if [ "$1" = "bench" ]; then
	out="${2:-BENCH.json}"
	echo "== tracked benchmarks -> $out (gated against BENCH_10.json) =="
	go run ./cmd/bench -o "$out" -baseline BENCH_10.json
	exit 0
fi

if [ "$1" = "selfcheck" ]; then
	for alg in basic regular random hybrid; do
		echo "== selfcheck $alg (no faults) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2
		echo "== selfcheck $alg (partition + crash) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2 \
			-faults testdata/selfcheck_faults.json
		echo "== selfcheck $alg (scripted workload) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2 \
			-workload testdata/selfcheck_workload.json
		echo "== selfcheck $alg (peer cache) =="
		go run ./cmd/p2psim -selfcheck -alg "$alg" -nodes 30 -duration 600 -reps 2 \
			-peercache -faults testdata/selfcheck_faults.json
	done
	echo "selfcheck passed"
	exit 0
fi

if [ "$1" = "checkpoint" ]; then
	echo "== golden checkpoint/resume round-trip (fresh-process) =="
	go test -run TestCheckpointGoldenFixtures -ckpt-golden -count=1 .
	echo "checkpoint round-trip passed"
	exit 0
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "needs gofmt:"
	echo "$unformatted"
	exit 1
fi
echo ok

echo "== go vet =="
go vet ./...
echo ok

# Go randomizes map iteration order per range statement, so a bare
# range over a servent map is a determinism bug waiting to happen (the
# peer-cache eviction tie-break was exactly this). Every such loop must
# either sort before acting or carry a one-line justification that the
# body is order-insensitive.
echo "== map-iteration lint (servent maps) =="
unjustified=$(grep -rn -E 'range +[A-Za-z_.[]+\.(conns|pending|seen|peerCache)\b' \
	internal/p2p internal/manet --include='*.go' |
	grep -vE '// *(sorted|commutative)' || true)
if [ -n "$unjustified" ]; then
	echo "range over a servent map without a '// sorted' or '// commutative' justification:"
	echo "$unjustified"
	exit 1
fi
echo ok

echo "== go build =="
go build ./...
echo ok

echo "== go test =="
go test ./...

echo "== go test -race (sim core, fault injection, workload, root) =="
go test -race ./internal/sim ./internal/fault ./internal/workload .

echo "== bench smoke (micro benches only) =="
go test -run xxx -bench 'Table1|GridNear|SimEventQueue|AODVDiscovery|ServentSend|BcastRelay' -benchtime 10x .

echo "all checks passed"
