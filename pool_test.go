package manetp2p

import (
	"encoding/json"
	"sync"
	"testing"
)

// resultJSON renders a Result for whole-value comparison; any field
// that diverges shows up as a byte difference.
func resultJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPoolRunMatchesRun pins the refactor invariant: Run is now a
// throwaway-pool wrapper, so running a scenario through an explicit
// Pool must reproduce Run's results exactly.
func TestPoolRunMatchesRun(t *testing.T) {
	sc := quickScenario(Regular, 18)
	sc.Replications = 3
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPool(2).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := resultJSON(t, want), resultJSON(t, got); string(w) != string(g) {
		t.Error("Pool.Run diverged from Run on the same scenario")
	}
}

// TestPoolSharedAcrossPointsMatchesSequential exercises cmd/sweep's
// mode of operation: several scenario points running concurrently under
// one shared worker budget. Replications are independently seeded, so
// every point must produce exactly the results it produces sequentially
// no matter how the shared pool interleaves them.
func TestPoolSharedAcrossPointsMatchesSequential(t *testing.T) {
	points := []Scenario{
		quickScenario(Basic, 16),
		quickScenario(Regular, 16),
		quickScenario(Random, 16),
	}
	want := make([][]byte, len(points))
	for i, sc := range points {
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultJSON(t, res)
	}

	pool := NewPool(2)
	got := make([][]byte, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pool.Run(points[i])
			if err != nil {
				errs[i] = err
				return
			}
			// json.Marshal directly: t.Fatal is off-limits off the
			// test goroutine.
			got[i], errs[i] = json.Marshal(res)
		}(i)
	}
	wg.Wait()
	for i := range points {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if string(want[i]) != string(got[i]) {
			t.Errorf("point %d diverged under the shared pool", i)
		}
	}
}
