package manetp2p

// Determinism golden test: one fixed-seed 50-node scenario per
// algorithm, with snapshots, traffic buckets, health telemetry and a
// scripted partition fault all enabled, asserting the full Result —
// totals, every series, resilience — is byte-identical to a committed
// fixture. The fixtures were generated before the zero-allocation event
// engine landed, so this test proves the pooling/batching refactor
// changed performance, not behavior. Regenerate (only after an
// intentional behavior change) with:
//
//	go test -run TestGoldenResults -update-golden .
//
// and review the fixture diff like any other code change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the determinism golden fixtures")

// goldenScenario is deliberately busy: every optional subsystem that
// feeds the Result is on, so a behavior drift anywhere shows up here.
func goldenScenario(alg Algorithm) Scenario {
	sc := DefaultScenario(50, alg)
	sc.Duration = 600 * sim.Second
	sc.Replications = 2
	sc.Seed = 7
	sc.SnapshotEvery = 120 * sim.Second
	sc.TrafficBucket = 60 * sim.Second
	sc.HealthEvery = 10 * sim.Second
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(120*sim.Second, 90*sim.Second, AxisX, 50),
	}}
	return sc
}

// goldenMarshal renders a Result in the fixtures' canonical form. The
// fixtures predate the unified routing telemetry, so Routing is stripped
// from a shallow clone before marshalling (json omitempty then elides
// it); routing-counter determinism is still pinned by
// TestGoldenRunRepeatable and TestRoutingTelemetry.
func goldenMarshal(t *testing.T, res *Result) []byte {
	t.Helper()
	clone := *res
	clone.Routing = nil
	got, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(got, '\n')
}

// checkGolden compares the marshalled result against the fixture at
// path, rewriting it under -update-golden.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fixed-seed result drifted from the committed fixture %s\n"+
			"(if the behavior change is intentional, regenerate with -update-golden and review the diff)",
			path)
	}
}

func TestGoldenResults(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(goldenScenario(alg))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", strings.ToLower(alg.String())+".json")
			checkGolden(t, path, goldenMarshal(t, res))
		})
	}
}

// goldenRoutingScenario is the substrate-matrix variant of
// goldenScenario: the same busy subsystem mix, sized down so the full
// four-algorithms-by-four-substrates matrix stays cheap to run.
func goldenRoutingScenario(alg Algorithm, routing RoutingKind) Scenario {
	sc := DefaultScenario(50, alg)
	sc.Duration = 300 * sim.Second
	sc.Replications = 1
	sc.Seed = 11
	sc.Routing = routing
	sc.SnapshotEvery = 120 * sim.Second
	sc.TrafficBucket = 60 * sim.Second
	sc.HealthEvery = 10 * sim.Second
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(100*sim.Second, 60*sim.Second, AxisX, 50),
	}}
	return sc
}

// TestGoldenRouting pins fixed-seed results for every algorithm on
// every routing substrate. These fixtures were generated from the
// pre-consolidation routers (each with its own private duplicate cache,
// pending buffer and dispatch path), so byte-identity here proves the
// shared internal/route control plane changed structure, not behavior.
func TestGoldenRouting(t *testing.T) {
	substrates := []struct {
		name string
		kind RoutingKind
	}{
		{"aodv", RoutingAODV},
		{"dsr", RoutingDSR},
		{"flood", RoutingFlood},
		{"dsdv", RoutingDSDV},
	}
	for _, sub := range substrates {
		for _, alg := range Algorithms() {
			sub, alg := sub, alg
			t.Run(sub.name+"/"+alg.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Run(goldenRoutingScenario(alg, sub.kind))
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", "golden",
					"routing_"+sub.name+"_"+strings.ToLower(alg.String())+".json")
				checkGolden(t, path, goldenMarshal(t, res))
			})
		}
	}
}

// goldenWorkloadScenario layers the full workload engine — bursty
// arrivals, drifting Zipf popularity, session classes with their own
// churn, and a flash-crowd phase timeline — on top of the busy golden
// scenario, pinning the demand telemetry byte-for-byte.
func goldenWorkloadScenario() Scenario {
	sc := goldenScenario(Regular)
	sc.Workload = &WorkloadPlan{
		Arrival:    WorkloadArrival{Process: ArrivalOnOff, Rate: 0.1},
		Popularity: WorkloadPopularity{Skew: 1.2, DriftPerHour: -0.4, RotateEvery: 120 * sim.Second},
		Sessions:   DefaultWorkloadSessions(),
		Phases: []WorkloadPhase{
			{Name: "ramp", RateScale: 0.5},
			{Name: "steady", Start: 120 * sim.Second},
			{Name: "flash", Start: 240 * sim.Second, RateScale: 3, HotFiles: 3, HotBoost: 0.8},
			{Name: "drain", Start: 480 * sim.Second, RateScale: 0.25},
		},
	}
	return sc
}

// TestGoldenWorkload pins a fixed-seed workload-driven run: the ledger,
// latency summaries and per-class stats in Result.Workload must stay
// byte-identical across refactors of the arrival/popularity engine.
func TestGoldenWorkload(t *testing.T) {
	t.Parallel()
	res, err := Run(goldenWorkloadScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload == nil {
		t.Fatal("workload scenario produced no workload telemetry")
	}
	path := filepath.Join("testdata", "golden", "workload.json")
	checkGolden(t, path, goldenMarshal(t, res))
}

// goldenDownloadScenario turns on the transfer extension so the fetch
// and chunk messages — the only wire kinds the other fixtures never
// exercise — flow through the value-typed message plane under a fixed
// seed.
func goldenDownloadScenario() Scenario {
	sc := goldenScenario(Regular)
	sc.Params.Download = p2p.DownloadConfig{Enabled: true}
	return sc
}

// TestGoldenDownload pins a fixed-seed run with downloads enabled: found
// files are fetched chunk-by-chunk and replicated, so the fixture covers
// the transfer path end to end (request, chunks, replication counts in
// the totals) byte-for-byte.
func TestGoldenDownload(t *testing.T) {
	t.Parallel()
	res, err := Run(goldenDownloadScenario())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "download.json")
	checkGolden(t, path, goldenMarshal(t, res))
}

// TestGoldenRunRepeatable guards the weaker property independently of
// the fixtures: two in-process runs of the same scenario are identical,
// whatever the fixture says.
func TestGoldenRunRepeatable(t *testing.T) {
	sc := goldenScenario(Regular)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("same scenario produced different results in the same process")
	}
}

// TestGoldenReportText pins the full rendered text report — the
// registry-driven WriteSummary walk plus the resilience and workload
// section reports — for one fixed-seed scenario with every render path
// live (faults, health telemetry, workload plan, finite energy,
// traffic buckets, snapshots). The telemetry plane renders summaries
// generically off the section registry, so this fixture is what pins
// the report layout itself, independent of the JSON fixtures.
func TestGoldenReportText(t *testing.T) {
	t.Parallel()
	sc := goldenWorkloadScenario()
	sc.Energy = DefaultEnergy(5)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteSummary(&buf, res)
	buf.WriteByte('\n')
	if err := WriteResilience(&buf, res); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	if err := WriteWorkload(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "report.txt"), buf.Bytes())
}
