package manetp2p

// Determinism golden test: one fixed-seed 50-node scenario per
// algorithm, with snapshots, traffic buckets, health telemetry and a
// scripted partition fault all enabled, asserting the full Result —
// totals, every series, resilience — is byte-identical to a committed
// fixture. The fixtures were generated before the zero-allocation event
// engine landed, so this test proves the pooling/batching refactor
// changed performance, not behavior. Regenerate (only after an
// intentional behavior change) with:
//
//	go test -run TestGoldenResults -update-golden .
//
// and review the fixture diff like any other code change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the determinism golden fixtures")

// goldenScenario is deliberately busy: every optional subsystem that
// feeds the Result is on, so a behavior drift anywhere shows up here.
func goldenScenario(alg Algorithm) Scenario {
	sc := DefaultScenario(50, alg)
	sc.Duration = 600 * sim.Second
	sc.Replications = 2
	sc.Seed = 7
	sc.SnapshotEvery = 120 * sim.Second
	sc.TrafficBucket = 60 * sim.Second
	sc.HealthEvery = 10 * sim.Second
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(120*sim.Second, 90*sim.Second, AxisX, 50),
	}}
	return sc
}

func TestGoldenResults(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(goldenScenario(alg))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", strings.ToLower(alg.String())+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("fixed-seed result for %v drifted from the committed fixture %s\n"+
					"(if the behavior change is intentional, regenerate with -update-golden and review the diff)",
					alg, path)
			}
		})
	}
}

// TestGoldenRunRepeatable guards the weaker property independently of
// the fixtures: two in-process runs of the same scenario are identical,
// whatever the fixture says.
func TestGoldenRunRepeatable(t *testing.T) {
	sc := goldenScenario(Regular)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("same scenario produced different results in the same process")
	}
}
