package manetp2p

import (
	"bytes"
	"encoding/json"
	"testing"

	"manetp2p/internal/sim"
)

// checkedScenario arms the invariant checker on a quick scenario.
func checkedScenario(alg Algorithm, nodes int) Scenario {
	sc := quickScenario(alg, nodes)
	sc.Invariants = &InvariantConfig{Enabled: true}
	return sc
}

func TestInvariantsCleanMatrix(t *testing.T) {
	plans := map[string]FaultPlan{
		"nofault": {},
		"partition": {Events: []FaultEvent{
			PartitionFault(60*sim.Second, 60*sim.Second, AxisX, 50),
			CrashGroupFault(150*sim.Second, 60*sim.Second, 15),
		}},
	}
	for _, alg := range Algorithms() {
		for name, plan := range plans {
			alg, plan := alg, plan
			t.Run(alg.String()+"/"+name, func(t *testing.T) {
				t.Parallel()
				sc := checkedScenario(alg, 24)
				sc.Faults = plan
				res, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if res.Invariants == nil {
					t.Fatal("checker armed but Result.Invariants is nil")
				}
				if !res.Invariants.OK() {
					for _, pr := range res.Invariants.PerReplication {
						for _, v := range pr.Violations {
							t.Errorf("rep %d (seed %d): %s", pr.Replication, pr.Seed, v.String())
						}
					}
					t.Fatalf("clean run reported %d violations", res.Invariants.Violations)
				}
				if res.Invariants.Replications != sc.Replications {
					t.Errorf("checked %d replications, want %d", res.Invariants.Replications, sc.Replications)
				}
			})
		}
	}
}

func TestInvariantsNilWhenDisabled(t *testing.T) {
	res, err := Run(quickScenario(Regular, 20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariants != nil {
		t.Fatalf("checker off but Result.Invariants = %+v", res.Invariants)
	}
	// Nil report reads as passing: callers can always write report.OK().
	var nilReport *InvariantReport
	if !nilReport.OK() {
		t.Error("nil InvariantReport must report OK")
	}
}

func TestInvariantsDoNotPerturbResults(t *testing.T) {
	// The checker only observes: measured metrics with it armed must be
	// byte-identical to the unchecked run (golden-compatibility depends
	// on this).
	plain := quickScenario(Random, 20)
	checked := plain
	checked.Invariants = &InvariantConfig{Enabled: true, Every: 10 * sim.Second}

	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(checked)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Invariants.OK() {
		t.Fatalf("checked run has violations: %+v", b.Invariants)
	}
	// Compare everything except the two fields that legitimately differ.
	b.Invariants = nil
	b.Scenario.Invariants = nil
	aj, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("arming the checker changed measured results")
	}
}

func TestSelfAuditPasses(t *testing.T) {
	sc := quickScenario(Hybrid, 20)
	sc.Workers = 2
	rep, err := SelfAudit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic {
		t.Errorf("determinism audit failed: %s", rep.Detail)
	}
	if !rep.ScheduleIndependent {
		t.Errorf("schedule-independence audit failed: %s", rep.Detail)
	}
	if !rep.PooledN {
		t.Errorf("pooled-N conservation audit failed: %s", rep.Detail)
	}
	if !rep.Invariants.OK() {
		t.Errorf("invariant violations during self-audit: %+v", rep.Invariants)
	}
	if !rep.OK() {
		t.Error("self-audit did not pass overall")
	}
}

// TestAuditPooledN pins the telemetry plane's pooled-sample
// conservation law: a clean aggregated Result passes, and corrupting
// any pooled sample count — per-node, per-replication, or the
// cross-class member population — is caught and named.
func TestAuditPooledN(t *testing.T) {
	sc := quickScenario(Regular, 20)
	sc.Workload = &WorkloadPlan{}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if detail := auditPooledN(res); detail != "" {
		t.Fatalf("clean result fails pooled-N audit: %s", detail)
	}
	cases := []struct {
		name    string
		corrupt func(*Result)
	}{
		{"per-node", func(r *Result) { r.RxFrames.N-- }},
		{"per-replication", func(r *Result) { r.Deaths.N++ }},
		{"cross-class", func(r *Result) { r.Totals[1].N++ }},
		{"routing", func(r *Result) { r.Routing.Delivered.N-- }},
		{"workload", func(r *Result) { r.Workload.Offered.N++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clone := *res
			routing := *res.Routing
			clone.Routing = &routing
			workload := *res.Workload
			clone.Workload = &workload
			tc.corrupt(&clone)
			if detail := auditPooledN(&clone); detail == "" {
				t.Error("corrupted pooled N not detected")
			}
		})
	}
}

func TestScenarioJSONInvariantsRoundTrip(t *testing.T) {
	sc := DefaultScenario(50, Regular)
	sc.Invariants = &InvariantConfig{Enabled: true, Every: 15 * sim.Second, MaxViolations: 8}
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Invariants == nil || !got.Invariants.Enabled ||
		got.Invariants.Every != 15*sim.Second || got.Invariants.MaxViolations != 8 {
		t.Fatalf("Invariants lost in round trip: %+v", got.Invariants)
	}

	// Scenarios that never arm the checker must serialize exactly as
	// before the field existed — golden fixtures depend on the key being
	// absent, not null.
	plain, err := MarshalJSONScenario(DefaultScenario(50, Regular))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("Invariants")) {
		t.Fatal("unarmed scenario serializes an Invariants key")
	}
}

func TestScenarioValidateRejectsBadProtocolTiming(t *testing.T) {
	bads := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"odd MaxNHops", func(s *Scenario) { s.Params.MaxNHops = 5 }},
		{"odd NHopsInitial", func(s *Scenario) { s.Params.NHopsInitial = 3; s.Params.MaxNHops = 6 }},
		{"zero HandshakeWait", func(s *Scenario) { s.Params.HandshakeWait = 0 }},
		{"zero OfferWindow", func(s *Scenario) { s.Params.OfferWindow = 0 }},
		{"zero MasterIdle", func(s *Scenario) { s.Params.MasterIdle = 0 }},
		{"negative JoinStaggerMax", func(s *Scenario) { s.Params.JoinStaggerMax = -1 }},
		{"negative checker interval", func(s *Scenario) { s.Invariants = &InvariantConfig{Every: -1} }},
	}
	for _, bad := range bads {
		sc := DefaultScenario(50, Regular)
		bad.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", bad.name)
		}
	}
}
