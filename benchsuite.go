package manetp2p

// The tracked benchmark suite: the tier-1 benchmarks whose trajectory is
// recorded machine-readably (BENCH_<n>.json) by cmd/bench on every perf
// PR. The functions live here, in a non-test file, so that both `go test
// -bench` (via the delegating Benchmark* wrappers in bench_test.go) and
// the cmd/bench binary (via testing.Benchmark) run the identical code.

import (
	"testing"

	"manetp2p/internal/aodv"
	"manetp2p/internal/flood"
	"manetp2p/internal/geom"
	"manetp2p/internal/graphs"
	"manetp2p/internal/manet"
	"manetp2p/internal/netif"
	"manetp2p/internal/p2p"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/workload"
)

// BenchSpec names one tracked benchmark.
type BenchSpec struct {
	Name string
	Fn   func(*testing.B)
}

// TrackedBenchmarks returns the benchmarks recorded in BENCH_<n>.json,
// cheapest first.
func TrackedBenchmarks() []BenchSpec {
	return []BenchSpec{
		{Name: "TelemetryProbe", Fn: benchTelemetryProbe},
		{Name: "SimEventQueue", Fn: benchSimEventQueue},
		{Name: "GridNear", Fn: benchGridNear},
		{Name: "AODVDiscovery", Fn: benchAODVDiscovery},
		{Name: "BcastRelay", Fn: benchBcastRelay},
		{Name: "ServentSend", Fn: benchServentSend},
		{Name: "QueryFlood", Fn: benchQueryFlood},
		{Name: "WorkloadArrivals", Fn: benchWorkloadArrivals},
		{Name: "PathLength", Fn: benchPathLength},
		{Name: "OverlaySnapshot", Fn: benchOverlaySnapshot},
		{Name: "OverlaySnapshotNaive", Fn: benchOverlaySnapshotNaive},
		{Name: "FullReplication", Fn: func(b *testing.B) { benchFullReplication(b, false) }},
		{Name: "FullReplicationChecked", Fn: func(b *testing.B) { benchFullReplication(b, true) }},
	}
}

// benchTelemetryProbe measures the telemetry plane's record hot path —
// counter, gauge, bounded series, ledger and collector — which every
// layer hits on every message. The contract is 0 allocs/op: cmd/bench
// gates AllocsPerOp for this benchmark at exactly zero.
func benchTelemetryProbe(b *testing.B) {
	var counter telemetry.Counter
	var gauge telemetry.Gauge
	series := telemetry.NewSeries(1024)
	var ledger telemetry.Ledger
	id := ledger.Define("probe")
	col := telemetry.NewCollector(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counter.Inc()
		gauge.Set(float64(i))
		series.Append(float64(i), float64(i))
		ledger.Inc(id)
		col.Recv(i&7, telemetry.Query)
	}
}

// benchSimEventQueue measures the simulator's schedule+fire hot path.
func benchSimEventQueue(b *testing.B) {
	s := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(sim.Time(i%1000)*sim.Millisecond, func() {})
		if s.Pending() > 1024 {
			s.Run(sim.MaxTime)
		}
	}
	s.Run(sim.MaxTime)
}

// benchGridNear measures one range query on the spatial index.
func benchGridNear(b *testing.B) {
	arena := geom.Rect{W: 100, H: 100}
	g := geom.NewGrid(arena, 10, 150)
	s := sim.New(2)
	rng := s.NewRand()
	for i := 0; i < 150; i++ {
		g.Insert(i, arena.RandomPoint(rng))
	}
	buf := make([]int, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Near(buf[:0], arena.RandomPoint(rng), 10, -1)
	}
}

// benchAODVDiscovery measures one cold route discovery over a 10-hop
// chain.
func benchAODVDiscovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := sim.New(int64(i))
		med, err := radio.NewMedium(s, radio.Config{
			Arena: geom.Rect{W: 200, H: 50}, Range: 10, NumNodes: 11,
			Latency: 2 * sim.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		routers := make([]*aodv.Router, 11)
		delivered := false
		for n := 0; n < 11; n++ {
			routers[n] = aodv.NewRouter(n, s, med, aodv.Config{})
			med.Join(n, geom.Point{X: 5 + 8*float64(n), Y: 25}, routers[n].HandleFrame)
		}
		routers[10].OnUnicast(func(aodv.Delivery) { delivered = true })
		b.StartTimer()
		routers[0].Send(10, 64, netif.TestMsg(1))
		s.Run(30 * sim.Second)
		if !delivered {
			b.Fatal("discovery failed")
		}
	}
}

// benchBcastRelay measures the shared controlled-broadcast relay path
// (route.Bcaster, used by all four routing substrates): one TTL-bounded
// broadcast flooded down a 16-node line, including every relay
// re-transmission and duplicate-cache suppression along the way. The
// network persists across iterations, so the duplicate caches work at
// steady state and their pruning cost is included.
func benchBcastRelay(b *testing.B) {
	const nodes = 16
	s := sim.New(7)
	med, err := radio.NewMedium(s, radio.Config{
		Arena: geom.Rect{W: 200, H: 50}, Range: 10, NumNodes: nodes,
		Latency: 2 * sim.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	routers := make([]*flood.Router, nodes)
	for n := 0; n < nodes; n++ {
		routers[n] = flood.NewRouter(n, s, med, flood.Config{})
		med.Join(n, geom.Point{X: 5 + 8*float64(n), Y: 25}, routers[n].HandleFrame)
	}
	delivered := 0
	routers[nodes-1].OnBroadcast(func(netif.Delivery) { delivered++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routers[0].Broadcast(nodes-1, 64, netif.TestMsg(uint32(i)))
		s.Run(sim.MaxTime)
	}
	if delivered != b.N {
		b.Fatalf("far end delivered %d of %d broadcasts", delivered, b.N)
	}
}

// benchServentSend measures the overlay unicast send hot path between
// two linked servents: the kind-indexed size lookup, the router
// handoff, the radio round trip and the receive-side classification —
// the exact journey every keepalive, handshake and query message makes.
// The contract is 0 allocs/op once warm: cmd/bench gates it at zero.
func benchServentSend(b *testing.B) {
	s := sim.New(11)
	med, err := radio.NewMedium(s, radio.Config{
		Arena: geom.Rect{W: 50, H: 50}, Range: 10, NumNodes: 2,
		Latency: 2 * sim.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	par := p2p.DefaultParams()
	col := telemetry.NewCollector(2)
	svs := make([]*p2p.Servent, 2)
	for n := 0; n < 2; n++ {
		rt := flood.NewRouter(n, s, med, flood.Config{})
		med.Join(n, geom.Point{X: 10 + 5*float64(n), Y: 25}, rt.HandleFrame)
		sv := p2p.NewServent(n, s, rt, par, p2p.Regular, p2p.Options{
			Collector: col, RNG: s.NewRand(), NoQueries: true, NoEstablish: true,
		})
		rt.OnUnicast(sv.HandleUnicast)
		rt.OnBroadcast(sv.HandleBroadcast)
		svs[n] = sv
		sv.Join()
	}
	p2p.BenchLink(svs[0], svs[1])
	for i := 0; i < 64; i++ { // warm the event pool, dup caches, map buckets
		svs[0].BenchSend(1)
		s.Run(s.Now() + 10*sim.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svs[0].BenchSend(1)
		s.Run(s.Now() + 10*sim.Millisecond)
	}
	if got := col.Received(1, telemetry.Pong); got == 0 {
		b.Fatal("no messages delivered")
	}
}

// benchQueryFlood measures one Gnutella-style query flooded down an
// 8-servent overlay chain: per-hop duplicate suppression, the
// forwarding fan-out, the query hit unicast back from the far-end
// holder, and the requester's answer accounting.
func benchQueryFlood(b *testing.B) {
	const nodes = 8
	s := sim.New(12)
	med, err := radio.NewMedium(s, radio.Config{
		Arena: geom.Rect{W: 200, H: 50}, Range: 10, NumNodes: nodes,
		Latency: 2 * sim.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	par := p2p.DefaultParams()
	par.PingInterval = 1 << 55
	par.QueryTTL = nodes // let the flood span the whole chain
	col := telemetry.NewCollector(nodes)
	svs := make([]*p2p.Servent, nodes)
	for n := 0; n < nodes; n++ {
		rt := flood.NewRouter(n, s, med, flood.Config{})
		med.Join(n, geom.Point{X: 5 + 8*float64(n), Y: 25}, rt.HandleFrame)
		sv := p2p.NewServent(n, s, rt, par, p2p.Regular, p2p.Options{
			Files:     []bool{n == nodes-1}, // only the far end holds file 0
			Collector: col, RNG: s.NewRand(), NoQueries: true, NoEstablish: true,
		})
		rt.OnUnicast(sv.HandleUnicast)
		rt.OnBroadcast(sv.HandleBroadcast)
		svs[n] = sv
		sv.Join()
	}
	for n := 0; n < nodes-1; n++ {
		p2p.BenchLink(svs[n], svs[n+1])
	}
	run := func() {
		svs[0].BenchQuery(0)
		s.Run(s.Now() + 200*sim.Millisecond)
		if svs[0].BenchAnswers() != 1 {
			b.Fatalf("query collected %d answers, want 1", svs[0].BenchAnswers())
		}
		for _, sv := range svs {
			sv.BenchResetQuery()
		}
	}
	for i := 0; i < 8; i++ { // warm pools and caches before timing
		run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// benchWorkloadArrivals measures the workload engine's per-query hot
// path — one NextGap draw plus one PickFile draw — under the busiest
// configuration (bursty arrivals, rotating Zipf popularity, session
// classes, an active flash-crowd phase). The engine is called once per
// query per servent for the whole horizon, so this path must stay at
// zero allocations per operation.
func benchWorkloadArrivals(b *testing.B) {
	plan := workload.Plan{
		Arrival:    workload.Arrival{Process: workload.OnOff, Rate: 0.2},
		Popularity: workload.Popularity{Skew: 1.2, DriftPerHour: -0.4, RotateEvery: 120 * sim.Second},
		Sessions:   workload.DefaultSessions(),
		Phases: []workload.Phase{
			{Name: "flash", Start: 0, RateScale: 3, HotFiles: 3, HotBoost: 0.8},
		},
	}
	s := sim.New(1)
	e := workload.New(s, s.NewRand(), plan, 50, 20, nil)
	held := make([]bool, 20)
	held[3] = true
	e.NextGap(0) // cross the phase transition before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.NextGap(i % 50)
		e.PickFile(i%50, held)
	}
}

// benchSink keeps the compiler from eliding benchmarked metric math.
var benchSink float64

// benchSnapshotNetwork builds the shared overlay-snapshot workload: a
// 150-node Regular overlay run to steady state, the densest
// configuration the paper's snapshot ticker faces.
func benchSnapshotNetwork(b *testing.B) *manet.Network {
	cfg := manet.DefaultConfig(150, p2p.Regular)
	cfg.Seed = 42
	cfg.NoQueries = true
	net, err := manet.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	net.Run(900 * sim.Second)
	return net
}

// benchOverlaySnapshot measures one full overlay snapshot through the
// analytics engine — adjacency fill plus clustering, pathlength,
// components and edge count — exactly what the SnapshotEvery ticker and
// the health sampler run. Must report 0 allocs/op at steady state.
func benchOverlaySnapshot(b *testing.B) {
	net := benchSnapshotNetwork(b)
	an := new(graphs.Analyzer)
	isMember := net.IsMember
	net.AppendOverlayAdjacency(&an.S)
	an.Analyze(isMember) // warm the scratch before timing
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		net.AppendOverlayAdjacency(&an.S)
		m := an.Analyze(isMember)
		sink += m.Clustering + m.PathLength + m.Largest + float64(m.Edges)
	}
	benchSink = sink
}

// benchOverlaySnapshotNaive is the same snapshot through the reference
// graphs.Graph path (rebuild adjacency slices, maps, per-source
// allocations) — the baseline BenchmarkOverlaySnapshot is compared
// against.
func benchOverlaySnapshotNaive(b *testing.B) {
	net := benchSnapshotNetwork(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		g := graphs.New(net.OverlayAdjacency())
		c := g.ClusteringCoefficient()
		l, _ := g.CharacteristicPathLength()
		f := g.LargestComponentFraction(net.IsMember)
		sink += c + l + f + float64(g.NumEdges())
	}
	benchSink = sink
}

// benchPathLength measures the naive all-pairs BFS on a fixed 256-node
// random graph — it tracks the Graph.bfsFrom queue-reuse behavior that
// the analytics work depends on.
func benchPathLength(b *testing.B) {
	const n = 256
	s := sim.New(9)
	rng := s.NewRand()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			j := rng.Intn(n)
			if j != i {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	g := graphs.New(adj)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		l, pairs := g.CharacteristicPathLength()
		sink += l + float64(pairs)
	}
	benchSink = sink
}

// benchFullReplication measures one end-to-end paper replication
// (50 nodes, 3600 s, Regular): the unit of work the runner parallelizes.
// With checked, the runtime invariant checker is armed at its default
// 30 s sweep — the delta against the unchecked bench is the checker's
// whole cost (EXPERIMENTS.md quotes it).
func benchFullReplication(b *testing.B, checked bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := manet.DefaultConfig(50, p2p.Regular)
		cfg.Seed = int64(i)
		cfg.Invariants.Enabled = checked
		net, err := manet.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(3600 * sim.Second)
		if checked {
			net.Checker.Finalize()
			if !net.Checker.OK() {
				b.Fatalf("invariant violations during bench: %d", net.Checker.Total())
			}
		}
	}
}
