package manetp2p

import (
	"fmt"
	"io"

	"manetp2p/internal/netif"
	"manetp2p/internal/stats"
	"manetp2p/internal/telemetry"
)

// This file is the telemetry plane's registration block: every layer of
// the simulator registers one named section with the shared registry,
// and per-replication collection (repRun.finish), cross-replication
// pooling (aggregate), summary rendering (WriteSummary), detailed
// reports (WriteWorkload/WriteResilience) and time-series streaming
// (RunWithMetrics) are all registry walks over these sections — there
// is no per-subsystem aggregation code anywhere else.
//
// Registration order is the contract: it fixes the collect order (the
// invariant checker finalizes first, as finish() always did), the
// summary render order (must reproduce the historical WriteSummary
// layout byte for byte — the golden fixtures and testdata/golden/
// report.txt pin this) and the sink's point order.

// section is the telemetry plane instantiated on the root types: a
// live replication as source, the Scenario as configuration, repResult
// as the per-replication record and Result as the pooled output.
type section = telemetry.Section[*repRun, Scenario, *repResult, *Result]

// sections is the process-wide registry, assembled once at init.
var sections = newSectionRegistry()

func newSectionRegistry() *telemetry.Registry[*repRun, Scenario, *repResult, *Result] {
	g := &telemetry.Registry[*repRun, Scenario, *repResult, *Result]{}

	// Runtime invariant checker. Registered first so Finalize's closing
	// sweeps run before any other section harvests (the order finish()
	// historically used); renders nothing — findings are reported via
	// Result.Invariants.
	g.Register(section{
		Name: "invariants",
		Collect: func(r *repRun, rr *repResult) {
			if net := r.net; net.Checker != nil {
				net.Checker.Finalize()
				rr.checked = true
				rr.violTotal = net.Checker.Total()
				rr.violations = net.Checker.Violations()
			}
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			res.Invariants = invariantReport(sc, reps)
		},
	})

	// P2p servent layer: per-member received-message counts by class
	// (Figures 7–12) and the time-bucketed message-rate series.
	g.Register(section{
		Name: "servent",
		Collect: func(r *repRun, rr *repResult) {
			net := r.net
			members := net.Members()
			rr.members = len(members)
			counts := make([]uint64, 0, len(members)) // reused across classes
			for class := 0; class < telemetry.NumClasses; class++ {
				counts = counts[:0]
				for _, id := range members {
					counts = append(counts, net.Collector.Received(id, telemetry.Class(class)))
				}
				rr.series[class] = stats.DescendingSeries(counts)
				totals := make([]float64, len(counts))
				for i, c := range counts {
					totals[i] = float64(c)
				}
				rr.totals[class] = totals
			}
			if r.sc.TrafficBucket > 0 {
				perMember := func(series []uint64) []float64 {
					out := make([]float64, len(series))
					for i, v := range series {
						out[i] = float64(v) / float64(len(members))
					}
					return out
				}
				rr.connRate = perMember(net.Collector.Series(telemetry.Connect))
				rr.queryRate = perMember(net.Collector.Series(telemetry.Query))
			}
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			// Figures 7–12: rank-wise mean of descending per-node series.
			collect := func(class telemetry.Class) []float64 {
				series := make([][]float64, 0, len(reps))
				for _, rr := range reps {
					series = append(series, rr.series[class])
				}
				return stats.MeanSeries(series)
			}
			res.ConnectSeries = collect(telemetry.Connect)
			res.PingSeries = collect(telemetry.Ping)
			res.PongSeries = collect(telemetry.Pong)
			res.QuerySeries = collect(telemetry.Query)
			res.HitSeries = collect(telemetry.QueryHit)

			for class := 0; class < telemetry.NumClasses; class++ {
				var pooled []float64
				for _, rr := range reps {
					pooled = append(pooled, rr.totals[class]...)
				}
				res.Totals[class] = stats.Summarize(pooled)
			}

			connRates := make([][]float64, 0, len(reps))
			queryRates := make([][]float64, 0, len(reps))
			for _, rr := range reps {
				if len(rr.connRate) > 0 {
					connRates = append(connRates, rr.connRate)
				}
				if len(rr.queryRate) > 0 {
					queryRates = append(queryRates, rr.queryRate)
				}
			}
			res.ConnectTraffic = stats.MeanSeries(connRates)
			res.QueryTraffic = stats.MeanSeries(queryRates)
		},
		Render: func(w io.Writer, r *Result) {
			fmt.Fprintf(w, "received per member: connect %s, ping %s, pong %s, query %s\n",
				r.Totals[telemetry.Connect], r.Totals[telemetry.Ping],
				r.Totals[telemetry.Pong], r.Totals[telemetry.Query])
		},
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			bucket := sc.TrafficBucket.Seconds()
			for i, v := range rr.connRate {
				emit(telemetry.Point{Rep: rep, T: float64(i) * bucket, Section: "servent", Name: "connect-rate", Value: v})
			}
			for i, v := range rr.queryRate {
				emit(telemetry.Point{Rep: rep, T: float64(i) * bucket, Section: "servent", Name: "query-rate", Value: v})
			}
		},
	})

	// Radio layer: frames on the air per node.
	g.Register(section{
		Name: "radio",
		Collect: func(r *repRun, rr *repResult) {
			for i := 0; i < r.sc.NumNodes; i++ {
				st := r.net.Medium.Stats(i)
				rr.rxFrames = append(rr.rxFrames, float64(st.RxFrames))
				rr.txFrames = append(rr.txFrames, float64(st.TxFrames))
			}
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			var rx, tx []float64
			for _, rr := range reps {
				rx = append(rx, rr.rxFrames...)
				tx = append(tx, rr.txFrames...)
			}
			res.RxFrames = stats.Summarize(rx)
			res.TxFrames = stats.Summarize(tx)
		},
		Render: func(w io.Writer, r *Result) {
			fmt.Fprintf(w, "radio frames per node: rx %s, tx %s\n", r.RxFrames, r.TxFrames)
		},
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			var rx, tx float64
			for _, v := range rr.rxFrames {
				rx += v
			}
			for _, v := range rr.txFrames {
				tx += v
			}
			t := sc.Duration.Seconds()
			emit(telemetry.Point{Rep: rep, T: t, Section: "radio", Name: "rx-frames", Value: rx})
			emit(telemetry.Point{Rep: rep, T: t, Section: "radio", Name: "tx-frames", Value: tx})
		},
	})

	// Routing layer: the unified netif.Stats effort counters.
	g.Register(section{
		Name: "route",
		Collect: func(r *repRun, rr *repResult) {
			rr.routing = r.net.RoutingStats()
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			pool := func(pick func(netif.Stats) uint64) stats.Summary {
				var vals []float64
				for _, rr := range reps {
					for _, st := range rr.routing {
						vals = append(vals, float64(pick(st)))
					}
				}
				return stats.Summarize(vals)
			}
			res.Routing = &RoutingStats{
				Protocol:       sc.Routing.String(),
				CtrlOrig:       pool(func(s netif.Stats) uint64 { return s.CtrlOrig }),
				CtrlRelayed:    pool(func(s netif.Stats) uint64 { return s.CtrlRelayed }),
				BcastOrig:      pool(func(s netif.Stats) uint64 { return s.BcastOrig }),
				BcastRelayed:   pool(func(s netif.Stats) uint64 { return s.BcastRelayed }),
				DataSent:       pool(func(s netif.Stats) uint64 { return s.DataSent }),
				DataForwarded:  pool(func(s netif.Stats) uint64 { return s.DataForwarded }),
				DataDropped:    pool(func(s netif.Stats) uint64 { return s.DataDropped }),
				Delivered:      pool(func(s netif.Stats) uint64 { return s.Delivered }),
				Discoveries:    pool(func(s netif.Stats) uint64 { return s.Discoveries }),
				DiscoverFailed: pool(func(s netif.Stats) uint64 { return s.DiscoverFailed }),
				SendFailed:     pool(func(s netif.Stats) uint64 { return s.SendFailed }),
				DupHits:        pool(func(s netif.Stats) uint64 { return s.DupHits }),
			}
		},
		Render: func(w io.Writer, r *Result) {
			if rt := r.Routing; rt != nil {
				fmt.Fprintf(w, "routing (%s): ctrl %.1f+%.1f, bcast %.1f+%.1f per node (orig+relay), %.2f ctrl/delivered, %.1f%% send failures\n",
					rt.Protocol, rt.CtrlOrig.Mean, rt.CtrlRelayed.Mean,
					rt.BcastOrig.Mean, rt.BcastRelayed.Mean,
					rt.ControlPerDelivered(), 100*rt.SendFailRate())
			}
		},
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			sum := func(pick func(netif.Stats) uint64) float64 {
				var s float64
				for _, st := range rr.routing {
					s += float64(pick(st))
				}
				return s
			}
			t := sc.Duration.Seconds()
			for _, c := range []struct {
				name string
				pick func(netif.Stats) uint64
			}{
				{"ctrl-orig", func(s netif.Stats) uint64 { return s.CtrlOrig }},
				{"ctrl-relayed", func(s netif.Stats) uint64 { return s.CtrlRelayed }},
				{"bcast-orig", func(s netif.Stats) uint64 { return s.BcastOrig }},
				{"bcast-relayed", func(s netif.Stats) uint64 { return s.BcastRelayed }},
				{"delivered", func(s netif.Stats) uint64 { return s.Delivered }},
				{"send-failed", func(s netif.Stats) uint64 { return s.SendFailed }},
			} {
				emit(telemetry.Point{Rep: rep, T: t, Section: "route", Name: c.name, Value: sum(c.pick)})
			}
		},
	})

	// Overlay graph snapshots (filled by the snapshot ticker during the
	// run, so there is nothing to collect at the horizon).
	g.Register(section{
		Name: "overlay",
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			var clust, pl, largest, deg []float64
			for _, rr := range reps {
				clust = append(clust, rr.clust...)
				pl = append(pl, rr.pathLen...)
				largest = append(largest, rr.largest...)
				deg = append(deg, rr.meanDeg...)
			}
			res.Overlay = OverlayStats{
				Samples:          len(clust),
				Clustering:       stats.Summarize(clust),
				PathLength:       stats.Summarize(pl),
				LargestComponent: stats.Summarize(largest),
				MeanDegree:       stats.Summarize(deg),
			}

			aliveSeries := make([][]float64, 0, len(reps))
			degSeries := make([][]float64, 0, len(reps))
			for _, rr := range reps {
				if len(rr.alive) > 0 {
					aliveSeries = append(aliveSeries, rr.alive)
				}
				if len(rr.degSeries) > 0 {
					degSeries = append(degSeries, rr.degSeries)
				}
			}
			res.AliveSeries = stats.MeanSeries(aliveSeries)
			res.DegreeSeries = stats.MeanSeries(degSeries)
		},
		Render: func(w io.Writer, r *Result) {
			if r.Overlay.Samples > 0 {
				fmt.Fprintf(w, "overlay: clustering %s, pathlength %s, largest component %s, degree %s\n",
					r.Overlay.Clustering, r.Overlay.PathLength,
					r.Overlay.LargestComponent, r.Overlay.MeanDegree)
			}
		},
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			period := sc.SnapshotEvery.Seconds()
			at := func(i int) float64 { return float64(i+1) * period }
			for i, v := range rr.largest {
				emit(telemetry.Point{Rep: rep, T: at(i), Section: "overlay", Name: "largest-comp", Value: v})
			}
			for i, v := range rr.clust {
				emit(telemetry.Point{Rep: rep, T: at(i), Section: "overlay", Name: "clustering", Value: v})
			}
			for i, v := range rr.alive {
				emit(telemetry.Point{Rep: rep, T: at(i), Section: "overlay", Name: "alive", Value: v})
			}
			for i, v := range rr.degSeries {
				emit(telemetry.Point{Rep: rep, T: at(i), Section: "overlay", Name: "mean-degree", Value: v})
			}
		},
	})

	// Energy model: per-node joules and battery deaths.
	g.Register(section{
		Name: "energy",
		Collect: func(r *repRun, rr *repResult) {
			for i := 0; i < r.sc.NumNodes; i++ {
				tx, rx := r.net.Medium.Battery(i).Spent()
				rr.energy = append(rr.energy, tx+rx)
			}
			if r.sc.Energy.Capacity > 0 {
				for i := 0; i < r.sc.NumNodes; i++ {
					if r.net.Medium.Battery(i).Empty() {
						rr.deaths++
					}
				}
			}
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			var deaths, energy []float64
			for _, rr := range reps {
				deaths = append(deaths, rr.deaths)
				energy = append(energy, rr.energy...)
			}
			res.Deaths = stats.Summarize(deaths)
			res.EnergySpent = stats.Summarize(energy)
		},
		Render: func(w io.Writer, r *Result) {
			if r.Scenario.Energy.Capacity > 0 {
				fmt.Fprintf(w, "energy: spent/node %s J, deaths/rep %s\n", r.EnergySpent, r.Deaths)
			}
		},
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			if sc.Energy.Capacity <= 0 {
				return
			}
			var spent float64
			for _, v := range rr.energy {
				spent += v
			}
			t := sc.Duration.Seconds()
			emit(telemetry.Point{Rep: rep, T: t, Section: "energy", Name: "spent-joules", Value: spent})
			emit(telemetry.Point{Rep: rep, T: t, Section: "energy", Name: "deaths", Value: rr.deaths})
		},
	})

	// Overlay connection sessions: lifetimes of closed links.
	g.Register(section{
		Name: "sessions",
		Collect: func(r *repRun, rr *repResult) {
			rr.lifetimes = r.net.Collector.Lifetimes()
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			var lifetimes []float64
			for _, rr := range reps {
				lifetimes = append(lifetimes, rr.lifetimes...)
			}
			res.ConnLifetime = stats.Summarize(lifetimes)
		},
		Render: func(w io.Writer, r *Result) {
			if r.ConnLifetime.N > 0 {
				fmt.Fprintf(w, "connection lifetime: %s s over %d closed links\n",
					r.ConnLifetime, r.ConnLifetime.N)
			}
		},
	})

	// Fault resilience: the periodic health telemetry and per-fault
	// recovery metrics.
	g.Register(section{
		Name: "resilience",
		Collect: func(r *repRun, rr *repResult) {
			rr.health = r.net.Collector.Health()
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			res.Resilience = computeResilience(sc, reps)
		},
		Render: func(w io.Writer, r *Result) {
			if res := r.Resilience; res != nil {
				for _, ev := range res.Events {
					fmt.Fprintf(w, "fault %s: baseline %.2f, trough %.2f, reheal %.1f s (%.0f%% of reps), residual %.3f, cost %.1f msgs/member\n",
						ev.Label, ev.Baseline.Mean, ev.Trough.Mean,
						ev.RehealSeconds.Mean, 100*ev.RehealedFraction,
						ev.ResidualDisconnect.Mean, ev.RecoveryMessages.Mean)
				}
			}
		},
		Report: reportResilience,
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			for _, h := range rr.health {
				t := h.At.Seconds()
				emit(telemetry.Point{Rep: rep, T: t, Section: "resilience", Name: "largest-comp", Value: h.LargestComp})
				emit(telemetry.Point{Rep: rep, T: t, Section: "resilience", Name: "links", Value: float64(h.Links)})
				emit(telemetry.Point{Rep: rep, T: t, Section: "resilience", Name: "connect-received", Value: float64(h.Received[telemetry.Connect])})
			}
		},
	})

	// Workload demand engine: the conservation ledger and latency
	// distributions.
	g.Register(section{
		Name: "workload",
		Collect: func(r *repRun, rr *repResult) {
			if net := r.net; net.Demand != nil {
				t := net.Demand.Snapshot()
				rr.workload = &t
			}
			rr.churnit = float64(r.net.ChurnEvents())
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			res.Workload = aggregateWorkload(reps)
		},
		Render: func(w io.Writer, r *Result) {
			if ws := r.Workload; ws != nil {
				fmt.Fprintf(w, "workload: offered %.0f/rep, issued %.0f, %.1f%% success, ttfr %.2f s, completion %.2f s\n",
					ws.Offered.Mean, ws.Issued.Mean, 100*ws.SuccessRate,
					ws.TTFR.Mean, ws.Completion.Mean)
				if ws.ChurnEvents.Mean > 0 {
					fmt.Fprintf(w, "workload churn: %.1f departures/rep, repair cost %.1f connect msgs/event\n",
						ws.ChurnEvents.Mean, ws.RepairPerChurn)
				}
			}
		},
		Report: reportWorkload,
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			t := rr.workload
			if t == nil {
				return
			}
			at := sc.Duration.Seconds()
			for _, c := range []struct {
				name string
				v    float64
			}{
				{"offered", float64(t.Offered)},
				{"retries", float64(t.Retries)},
				{"issued", float64(t.Issued)},
				{"resolved", float64(t.Resolved)},
				{"expired", float64(t.Expired)},
				{"aborted", float64(t.Aborted)},
				{"in-flight", float64(t.InFlight)},
				{"churn-events", rr.churnit},
			} {
				emit(telemetry.Point{Rep: rep, T: at, Section: "workload", Name: c.name, Value: c.v})
			}
		},
	})

	// File search outcomes: the per-file distance/answer curves of
	// Figures 5–6. Renders last: the closing "queries:" line.
	g.Register(section{
		Name: "search",
		Collect: func(r *repRun, rr *repResult) {
			rr.requests = r.net.Collector.Requests()
		},
		Pool: func(sc Scenario, reps []*repResult, res *Result) {
			// Figures 5–6: group requests by file rank.
			type fileAcc struct {
				dist, adhoc, answers []float64
				requests, found      int
			}
			accs := make([]fileAcc, sc.Files.NumFiles)
			for _, rr := range reps {
				for _, q := range rr.requests {
					if q.File < 0 || q.File >= len(accs) {
						continue
					}
					a := &accs[q.File]
					a.requests++
					a.answers = append(a.answers, float64(q.Answers))
					if q.Found {
						a.found++
						a.dist = append(a.dist, float64(q.MinP2P))
						a.adhoc = append(a.adhoc, float64(q.MinAdhoc))
					}
				}
			}
			for f, a := range accs {
				fc := FileCurve{
					File:      f,
					Requests:  a.requests,
					Distance:  stats.Summarize(a.dist),
					AdhocDist: stats.Summarize(a.adhoc),
					Answers:   stats.Summarize(a.answers),
				}
				if a.requests > 0 {
					fc.FoundRate = float64(a.found) / float64(a.requests)
				}
				res.PerFile = append(res.PerFile, fc)
			}
		},
		Render: func(w io.Writer, r *Result) {
			found, reqs := 0.0, 0
			for _, fc := range r.PerFile {
				reqs += fc.Requests
				found += fc.FoundRate * float64(fc.Requests)
			}
			if reqs > 0 {
				fmt.Fprintf(w, "queries: %d requests, %.1f%% found\n", reqs, 100*found/float64(reqs))
			}
		},
		Stream: func(sc Scenario, rep int, rr *repResult, emit func(telemetry.Point)) {
			found := 0
			for _, q := range rr.requests {
				if q.Found {
					found++
				}
			}
			t := sc.Duration.Seconds()
			emit(telemetry.Point{Rep: rep, T: t, Section: "search", Name: "requests", Value: float64(len(rr.requests))})
			emit(telemetry.Point{Rep: rep, T: t, Section: "search", Name: "found", Value: float64(found)})
		},
	})

	return g
}

// aggregateWorkload pools the demand telemetry: one sample per
// replication for each ledger counter, pooled latency distributions,
// and the repair-cost-per-churn-event ratio derived from connect-class
// message totals. Nil when no replication ran a workload plan.
func aggregateWorkload(reps []*repResult) *WorkloadStats {
	var any bool
	for _, rr := range reps {
		if rr.workload != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	var offered, retries, issued, resolved, expired, aborted, inflight []float64
	var ttfr, completion, churn []float64
	var totOffered, totResolved, totConnect, totChurn float64
	classNodes := map[string][]float64{}
	classIssued := map[string][]float64{}
	var classOrder []string
	for _, rr := range reps {
		t := rr.workload
		if t == nil {
			continue
		}
		offered = append(offered, float64(t.Offered))
		retries = append(retries, float64(t.Retries))
		issued = append(issued, float64(t.Issued))
		resolved = append(resolved, float64(t.Resolved))
		expired = append(expired, float64(t.Expired))
		aborted = append(aborted, float64(t.Aborted))
		inflight = append(inflight, float64(t.InFlight))
		ttfr = append(ttfr, t.TTFR...)
		completion = append(completion, t.Completion...)
		churn = append(churn, rr.churnit)
		totOffered += float64(t.Offered)
		totResolved += float64(t.Resolved)
		totChurn += rr.churnit
		for _, v := range rr.totals[telemetry.Connect] {
			totConnect += v
		}
		for _, c := range t.Classes {
			if _, seen := classNodes[c.Name]; !seen {
				classOrder = append(classOrder, c.Name)
			}
			classNodes[c.Name] = append(classNodes[c.Name], float64(c.Nodes))
			classIssued[c.Name] = append(classIssued[c.Name], float64(c.Issued))
		}
	}
	ws := &WorkloadStats{
		Offered:        stats.Summarize(offered),
		Retries:        stats.Summarize(retries),
		Issued:         stats.Summarize(issued),
		Resolved:       stats.Summarize(resolved),
		Expired:        stats.Summarize(expired),
		Aborted:        stats.Summarize(aborted),
		InFlight:       stats.Summarize(inflight),
		SuccessRate:    safeRatio(totResolved, totOffered),
		TTFR:           stats.Summarize(ttfr),
		Completion:     stats.Summarize(completion),
		ChurnEvents:    stats.Summarize(churn),
		RepairPerChurn: safeRatio(totConnect, totChurn),
	}
	for _, name := range classOrder {
		ws.Classes = append(ws.Classes, WorkloadClassStats{
			Name:   name,
			Nodes:  stats.Summarize(classNodes[name]),
			Issued: stats.Summarize(classIssued[name]),
		})
	}
	return ws
}

// reportWorkload is the workload section's detailed report: the demand
// ledger, derived rates and per-class breakdown as TSV (the body of the
// exported WriteWorkload).
func reportWorkload(w io.Writer, r *Result) error {
	ws := r.Workload
	if ws == nil {
		return nil
	}
	fmt.Fprintf(w, "# demand telemetry (%s): per-replication ledger\n", r.Scenario.Algorithm)
	fmt.Fprintln(w, "counter\tmean\tstddev\tmin\tmax")
	for _, row := range []struct {
		name               string
		mean, sd, min, max float64
	}{
		{"offered", ws.Offered.Mean, ws.Offered.StdDev, ws.Offered.Min, ws.Offered.Max},
		{"retries", ws.Retries.Mean, ws.Retries.StdDev, ws.Retries.Min, ws.Retries.Max},
		{"issued", ws.Issued.Mean, ws.Issued.StdDev, ws.Issued.Min, ws.Issued.Max},
		{"resolved", ws.Resolved.Mean, ws.Resolved.StdDev, ws.Resolved.Min, ws.Resolved.Max},
		{"expired", ws.Expired.Mean, ws.Expired.StdDev, ws.Expired.Min, ws.Expired.Max},
		{"aborted", ws.Aborted.Mean, ws.Aborted.StdDev, ws.Aborted.Min, ws.Aborted.Max},
		{"in-flight", ws.InFlight.Mean, ws.InFlight.StdDev, ws.InFlight.Min, ws.InFlight.Max},
	} {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.0f\t%.0f\n", row.name, row.mean, row.sd, row.min, row.max)
	}
	fmt.Fprintf(w, "\nsuccess-rate\t%.3f\n", ws.SuccessRate)
	fmt.Fprintf(w, "ttfr-s\t%s\t(n=%d)\n", ws.TTFR, ws.TTFR.N)
	fmt.Fprintf(w, "completion-s\t%s\t(n=%d)\n", ws.Completion, ws.Completion.N)
	fmt.Fprintf(w, "churn-events/rep\t%.1f\n", ws.ChurnEvents.Mean)
	fmt.Fprintf(w, "repair-msgs/churn\t%.1f\n", ws.RepairPerChurn)
	if len(ws.Classes) > 0 {
		fmt.Fprintln(w, "\n# session classes")
		fmt.Fprintln(w, "class\tnodes\tissued")
		for _, c := range ws.Classes {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", c.Name, c.Nodes.Mean, c.Issued.Mean)
		}
	}
	return nil
}

// reportResilience is the resilience section's detailed report: the
// health time series and per-fault recovery rows as TSV (the body of
// the exported WriteResilience).
func reportResilience(w io.Writer, r *Result) error {
	res := r.Resilience
	if res == nil {
		return nil
	}
	fmt.Fprintf(w, "# overlay health sampled every %.0fs (%s)\n",
		res.SampleEvery, r.Scenario.Algorithm)
	fmt.Fprintln(w, "time\tlargest-comp\tlinks\tconnect/member/s")
	for i, t := range res.Times {
		fmt.Fprintf(w, "%.0f\t%.3f\t%.1f\t%.3f\n",
			t, res.LargestComp[i], res.Links[i], res.ConnectRate[i])
	}
	if len(res.Events) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "# recovery per scripted fault")
	fmt.Fprintln(w, "fault\tcleared\tbaseline\ttrough\treheal-s\trehealed%\tresidual\trecovery-msgs")
	for _, ev := range res.Events {
		fmt.Fprintf(w, "%s\t%.0f\t%.3f\t%.3f\t%.1f\t%.0f\t%.3f\t%.1f\n",
			ev.Label, ev.ClearSeconds, ev.Baseline.Mean, ev.Trough.Mean,
			ev.RehealSeconds.Mean, 100*ev.RehealedFraction,
			ev.ResidualDisconnect.Mean, ev.RecoveryMessages.Mean)
	}
	return nil
}
