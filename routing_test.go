package manetp2p

// Tests for the unified routing-effort telemetry: every routing
// substrate must populate Result.Routing from the shared netif.Stats
// counter block, and the derived overhead ratios must stay sane.

import (
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

func routingTelemetryScenario(kind RoutingKind) Scenario {
	sc := DefaultScenario(30, Regular)
	sc.Duration = 200 * sim.Second
	sc.Replications = 2
	sc.Seed = 23
	sc.Routing = kind
	return sc
}

// TestRoutingTelemetry runs each substrate and asserts the pooled
// counter block is present and plausible: frames were put on the air,
// payloads were delivered, and no derived ratio degenerates.
func TestRoutingTelemetry(t *testing.T) {
	kinds := []RoutingKind{RoutingAODV, RoutingDSR, RoutingFlood, RoutingDSDV}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(routingTelemetryScenario(kind))
			if err != nil {
				t.Fatal(err)
			}
			rt := res.Routing
			if rt == nil {
				t.Fatal("Result.Routing not populated")
			}
			if !strings.EqualFold(rt.Protocol, kind.String()) {
				t.Errorf("Protocol = %q, want %q", rt.Protocol, kind.String())
			}
			if rt.DataSent.Mean <= 0 {
				t.Error("no data sends recorded")
			}
			if rt.Delivered.Mean <= 0 {
				t.Error("no deliveries recorded")
			}
			if rt.BcastOrig.Mean <= 0 {
				t.Error("no broadcast originations recorded (overlay pings ride Broadcast)")
			}
			if cpd := rt.ControlPerDelivered(); cpd < 0 {
				t.Errorf("ControlPerDelivered = %v, want >= 0", cpd)
			}
			if fr := rt.SendFailRate(); fr < 0 || fr > 1 {
				t.Errorf("SendFailRate = %v, want within [0,1]", fr)
			}
			if rt.SendFailed.Mean > rt.DataSent.Mean {
				t.Errorf("mean SendFailed %v exceeds mean DataSent %v",
					rt.SendFailed.Mean, rt.DataSent.Mean)
			}
		})
	}
}

// TestRoutingRatioGuards pins the zero-guard behavior of the derived
// ratios so report columns never render NaN for an idle run.
func TestRoutingRatioGuards(t *testing.T) {
	var rt RoutingStats
	if got := rt.ControlPerDelivered(); got != 0 {
		t.Errorf("zero-value ControlPerDelivered = %v, want 0", got)
	}
	if got := rt.SendFailRate(); got != 0 {
		t.Errorf("zero-value SendFailRate = %v, want 0", got)
	}
}
