package manetp2p

import (
	"fmt"
	"io"
	"sort"

	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
)

// This file renders results in the paper's shapes: Figures 5–6 as
// per-file curves, Figures 7–12 as per-node descending series, and
// Tables 1–2. All emitters write TSV so the series can be piped into
// any plotting tool.

// WriteFileCurves emits the Figure 5/6 series for several algorithm
// results side by side: one row per file rank with distance and answer
// columns per algorithm.
func WriteFileCurves(w io.Writer, results []*Result, maxFiles int) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# avg minimum distance (p2p hops) and avg answers per request, by file rank\n")
	fmt.Fprintf(w, "file")
	for _, r := range results {
		a := r.Scenario.Algorithm
		fmt.Fprintf(w, "\tdist:%s\tansw:%s", a, a)
	}
	fmt.Fprintln(w)
	n := maxFiles
	for _, r := range results {
		if len(r.PerFile) < n {
			n = len(r.PerFile)
		}
	}
	for f := 0; f < n; f++ {
		fmt.Fprintf(w, "%d", f+1) // the paper labels files 1..10
		for _, r := range results {
			fc := r.PerFile[f]
			fmt.Fprintf(w, "\t%.3f\t%.3f", fc.Distance.Mean, fc.Answers.Mean)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SeriesKind selects which Figure 7–12 series to render.
type SeriesKind int

// The counted message series of the paper's figures.
const (
	SeriesConnect SeriesKind = iota // Figures 7–8
	SeriesPing                      // Figures 9–10
	SeriesQuery                     // Figures 11–12
)

// String names the series as the paper does.
func (k SeriesKind) String() string {
	switch k {
	case SeriesConnect:
		return "connect"
	case SeriesPing:
		return "ping"
	case SeriesQuery:
		return "query"
	default:
		return fmt.Sprintf("series(%d)", int(k))
	}
}

func (r *Result) series(k SeriesKind) []float64 {
	switch k {
	case SeriesConnect:
		return r.ConnectSeries
	case SeriesPing:
		return r.PingSeries
	case SeriesQuery:
		return r.QuerySeries
	default:
		return nil
	}
}

// WriteNodeSeries emits a Figure 7–12 style table: per node rank
// (decreasingly ordered by received messages), the mean count for each
// algorithm.
func WriteNodeSeries(w io.Writer, kind SeriesKind, results []*Result) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# number of %s messages received; nodes decreasingly ordered\n", kind)
	fmt.Fprintf(w, "rank")
	for _, r := range results {
		fmt.Fprintf(w, "\t%s", r.Scenario.Algorithm)
	}
	fmt.Fprintln(w)
	n := 0
	for _, r := range results {
		if s := r.series(kind); len(s) > n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d", i)
		for _, r := range results {
			s := r.series(kind)
			if i < len(s) {
				fmt.Fprintf(w, "\t%.2f", s[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteTrafficSeries emits the time-bucketed message-rate series (per
// member per bucket) for several results side by side. Results without
// bucketing contribute empty columns.
func WriteTrafficSeries(w io.Writer, results []*Result) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# connect and query messages received per member per bucket\n")
	fmt.Fprintf(w, "bucket")
	for _, r := range results {
		a := r.Scenario.Algorithm
		fmt.Fprintf(w, "\tconn:%s\tquery:%s", a, a)
	}
	fmt.Fprintln(w)
	n := 0
	for _, r := range results {
		if len(r.ConnectTraffic) > n {
			n = len(r.ConnectTraffic)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d", i)
		for _, r := range results {
			if i < len(r.ConnectTraffic) {
				fmt.Fprintf(w, "\t%.2f", r.ConnectTraffic[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
			if i < len(r.QueryTraffic) {
				fmt.Fprintf(w, "\t%.2f", r.QueryTraffic[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteResilience emits the resilience telemetry of a fault-injected
// run: the health time series as TSV followed by one row per scripted
// fault with its recovery telemetry. No-op for runs without telemetry.
// The body is the resilience section's Report hook (telemetry_sections.go).
func WriteResilience(w io.Writer, r *Result) error {
	return sections.Report(w, "resilience", r)
}

// WriteWorkload emits the demand telemetry of a workload-driven run as
// TSV: the conservation ledger per replication, the derived success
// rate, the pooled latency distributions, the churn-repair cost and the
// per-class breakdown. No-op for runs without a workload plan. The body
// is the workload section's Report hook (telemetry_sections.go).
func WriteWorkload(w io.Writer, r *Result) error {
	return sections.Report(w, "workload", r)
}

// WriteTable1 renders the paper's Table 1.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: topologies and their characteristics")
	fmt.Fprintf(w, "%-16s%-14s%-15s%s\n", "", "Centralized", "Decentralized", "Hybrid")
	for _, row := range p2p.Table1() {
		fmt.Fprintf(w, "%-16s%-14s%-15s%s\n", row.Property, row.Values[0], row.Values[1], row.Values[2])
	}
}

// WriteTable2 renders the paper's Table 2 from a scenario's actual
// parameters.
func WriteTable2(w io.Writer, sc Scenario) {
	fmt.Fprintln(w, "# Table 2: parameters used and their typical values")
	rows := []struct {
		name  string
		value string
	}{
		{"transmission range", fmt.Sprintf("%g m", sc.Range)},
		{"number of distinct searchable files", fmt.Sprintf("%d", sc.Files.NumFiles)},
		{"frequency of the most popular file", fmt.Sprintf("%g%%", sc.Files.MaxFreq*100)},
		{"NHOPS_INITIAL", fmt.Sprintf("%d ad-hoc hops", sc.Params.NHopsInitial)},
		{"MAXNHOPS", fmt.Sprintf("%d ad-hoc hops", sc.Params.MaxNHops)},
		{"NHOPS (Basic Algorithm)", fmt.Sprintf("%d ad-hoc hops", sc.Params.NHopsBasic)},
		{"MAXDIST", fmt.Sprintf("%d ad-hoc hops", sc.Params.MaxDist)},
		{"MAXNCONN", fmt.Sprintf("%d", sc.Params.MaxNConn)},
		{"MAXNSLAVES", fmt.Sprintf("%d", sc.Params.MaxNSlaves)},
		{"TTL for queries", fmt.Sprintf("%d p2p hops", sc.Params.QueryTTL)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-40s%s\n", r.name, r.value)
	}
}

// WriteSummary prints a human-readable digest of one result: the
// scenario header followed by every registered telemetry section's
// Render hook, in registration order (telemetry_sections.go).
func WriteSummary(w io.Writer, r *Result) {
	sc := r.Scenario
	fmt.Fprintf(w, "== %s: %s, %d nodes (%.0f%% p2p), %s x %d reps ==\n",
		sc.Name, sc.Algorithm, sc.NumNodes, sc.MemberFraction*100,
		sim.Time(sc.Duration), sc.Replications)
	sections.Render(w, r)
}

// GiniCoefficient measures how unevenly a per-node series distributes
// load (0 = perfectly even, →1 = concentrated). The paper argues the
// uniform distributions of Regular/Random suit homogeneous networks
// while Hybrid deliberately skews load onto masters; this makes that
// argument quantitative.
func GiniCoefficient(series []float64) float64 {
	n := len(series)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), series...)
	sort.Float64s(xs)
	var cum, total float64
	for i, x := range xs {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}
