package manetp2p

import (
	"fmt"
	"io"
	"sort"

	"manetp2p/internal/metrics"
	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
)

// This file renders results in the paper's shapes: Figures 5–6 as
// per-file curves, Figures 7–12 as per-node descending series, and
// Tables 1–2. All emitters write TSV so the series can be piped into
// any plotting tool.

// WriteFileCurves emits the Figure 5/6 series for several algorithm
// results side by side: one row per file rank with distance and answer
// columns per algorithm.
func WriteFileCurves(w io.Writer, results []*Result, maxFiles int) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# avg minimum distance (p2p hops) and avg answers per request, by file rank\n")
	fmt.Fprintf(w, "file")
	for _, r := range results {
		a := r.Scenario.Algorithm
		fmt.Fprintf(w, "\tdist:%s\tansw:%s", a, a)
	}
	fmt.Fprintln(w)
	n := maxFiles
	for _, r := range results {
		if len(r.PerFile) < n {
			n = len(r.PerFile)
		}
	}
	for f := 0; f < n; f++ {
		fmt.Fprintf(w, "%d", f+1) // the paper labels files 1..10
		for _, r := range results {
			fc := r.PerFile[f]
			fmt.Fprintf(w, "\t%.3f\t%.3f", fc.Distance.Mean, fc.Answers.Mean)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SeriesKind selects which Figure 7–12 series to render.
type SeriesKind int

// The counted message series of the paper's figures.
const (
	SeriesConnect SeriesKind = iota // Figures 7–8
	SeriesPing                      // Figures 9–10
	SeriesQuery                     // Figures 11–12
)

// String names the series as the paper does.
func (k SeriesKind) String() string {
	switch k {
	case SeriesConnect:
		return "connect"
	case SeriesPing:
		return "ping"
	case SeriesQuery:
		return "query"
	default:
		return fmt.Sprintf("series(%d)", int(k))
	}
}

func (r *Result) series(k SeriesKind) []float64 {
	switch k {
	case SeriesConnect:
		return r.ConnectSeries
	case SeriesPing:
		return r.PingSeries
	case SeriesQuery:
		return r.QuerySeries
	default:
		return nil
	}
}

// WriteNodeSeries emits a Figure 7–12 style table: per node rank
// (decreasingly ordered by received messages), the mean count for each
// algorithm.
func WriteNodeSeries(w io.Writer, kind SeriesKind, results []*Result) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# number of %s messages received; nodes decreasingly ordered\n", kind)
	fmt.Fprintf(w, "rank")
	for _, r := range results {
		fmt.Fprintf(w, "\t%s", r.Scenario.Algorithm)
	}
	fmt.Fprintln(w)
	n := 0
	for _, r := range results {
		if s := r.series(kind); len(s) > n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d", i)
		for _, r := range results {
			s := r.series(kind)
			if i < len(s) {
				fmt.Fprintf(w, "\t%.2f", s[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteTrafficSeries emits the time-bucketed message-rate series (per
// member per bucket) for several results side by side. Results without
// bucketing contribute empty columns.
func WriteTrafficSeries(w io.Writer, results []*Result) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# connect and query messages received per member per bucket\n")
	fmt.Fprintf(w, "bucket")
	for _, r := range results {
		a := r.Scenario.Algorithm
		fmt.Fprintf(w, "\tconn:%s\tquery:%s", a, a)
	}
	fmt.Fprintln(w)
	n := 0
	for _, r := range results {
		if len(r.ConnectTraffic) > n {
			n = len(r.ConnectTraffic)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d", i)
		for _, r := range results {
			if i < len(r.ConnectTraffic) {
				fmt.Fprintf(w, "\t%.2f", r.ConnectTraffic[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
			if i < len(r.QueryTraffic) {
				fmt.Fprintf(w, "\t%.2f", r.QueryTraffic[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteResilience emits the resilience telemetry of a fault-injected
// run: the health time series as TSV followed by one row per scripted
// fault with its recovery metrics. No-op for runs without telemetry.
func WriteResilience(w io.Writer, r *Result) error {
	res := r.Resilience
	if res == nil {
		return nil
	}
	fmt.Fprintf(w, "# overlay health sampled every %.0fs (%s)\n",
		res.SampleEvery, r.Scenario.Algorithm)
	fmt.Fprintln(w, "time\tlargest-comp\tlinks\tconnect/member/s")
	for i, t := range res.Times {
		fmt.Fprintf(w, "%.0f\t%.3f\t%.1f\t%.3f\n",
			t, res.LargestComp[i], res.Links[i], res.ConnectRate[i])
	}
	if len(res.Events) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "# recovery per scripted fault")
	fmt.Fprintln(w, "fault\tcleared\tbaseline\ttrough\treheal-s\trehealed%\tresidual\trecovery-msgs")
	for _, ev := range res.Events {
		fmt.Fprintf(w, "%s\t%.0f\t%.3f\t%.3f\t%.1f\t%.0f\t%.3f\t%.1f\n",
			ev.Label, ev.ClearSeconds, ev.Baseline.Mean, ev.Trough.Mean,
			ev.RehealSeconds.Mean, 100*ev.RehealedFraction,
			ev.ResidualDisconnect.Mean, ev.RecoveryMessages.Mean)
	}
	return nil
}

// WriteWorkload emits the demand telemetry of a workload-driven run as
// TSV: the conservation ledger per replication, the derived success
// rate, the pooled latency distributions, the churn-repair cost and the
// per-class breakdown. No-op for runs without a workload plan.
func WriteWorkload(w io.Writer, r *Result) error {
	ws := r.Workload
	if ws == nil {
		return nil
	}
	fmt.Fprintf(w, "# demand telemetry (%s): per-replication ledger\n", r.Scenario.Algorithm)
	fmt.Fprintln(w, "counter\tmean\tstddev\tmin\tmax")
	for _, row := range []struct {
		name               string
		mean, sd, min, max float64
	}{
		{"offered", ws.Offered.Mean, ws.Offered.StdDev, ws.Offered.Min, ws.Offered.Max},
		{"retries", ws.Retries.Mean, ws.Retries.StdDev, ws.Retries.Min, ws.Retries.Max},
		{"issued", ws.Issued.Mean, ws.Issued.StdDev, ws.Issued.Min, ws.Issued.Max},
		{"resolved", ws.Resolved.Mean, ws.Resolved.StdDev, ws.Resolved.Min, ws.Resolved.Max},
		{"expired", ws.Expired.Mean, ws.Expired.StdDev, ws.Expired.Min, ws.Expired.Max},
		{"aborted", ws.Aborted.Mean, ws.Aborted.StdDev, ws.Aborted.Min, ws.Aborted.Max},
		{"in-flight", ws.InFlight.Mean, ws.InFlight.StdDev, ws.InFlight.Min, ws.InFlight.Max},
	} {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.0f\t%.0f\n", row.name, row.mean, row.sd, row.min, row.max)
	}
	fmt.Fprintf(w, "\nsuccess-rate\t%.3f\n", ws.SuccessRate)
	fmt.Fprintf(w, "ttfr-s\t%s\t(n=%d)\n", ws.TTFR, ws.TTFR.N)
	fmt.Fprintf(w, "completion-s\t%s\t(n=%d)\n", ws.Completion, ws.Completion.N)
	fmt.Fprintf(w, "churn-events/rep\t%.1f\n", ws.ChurnEvents.Mean)
	fmt.Fprintf(w, "repair-msgs/churn\t%.1f\n", ws.RepairPerChurn)
	if len(ws.Classes) > 0 {
		fmt.Fprintln(w, "\n# session classes")
		fmt.Fprintln(w, "class\tnodes\tissued")
		for _, c := range ws.Classes {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", c.Name, c.Nodes.Mean, c.Issued.Mean)
		}
	}
	return nil
}

// WriteTable1 renders the paper's Table 1.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: topologies and their characteristics")
	fmt.Fprintf(w, "%-16s%-14s%-15s%s\n", "", "Centralized", "Decentralized", "Hybrid")
	for _, row := range p2p.Table1() {
		fmt.Fprintf(w, "%-16s%-14s%-15s%s\n", row.Property, row.Values[0], row.Values[1], row.Values[2])
	}
}

// WriteTable2 renders the paper's Table 2 from a scenario's actual
// parameters.
func WriteTable2(w io.Writer, sc Scenario) {
	fmt.Fprintln(w, "# Table 2: parameters used and their typical values")
	rows := []struct {
		name  string
		value string
	}{
		{"transmission range", fmt.Sprintf("%g m", sc.Range)},
		{"number of distinct searchable files", fmt.Sprintf("%d", sc.Files.NumFiles)},
		{"frequency of the most popular file", fmt.Sprintf("%g%%", sc.Files.MaxFreq*100)},
		{"NHOPS_INITIAL", fmt.Sprintf("%d ad-hoc hops", sc.Params.NHopsInitial)},
		{"MAXNHOPS", fmt.Sprintf("%d ad-hoc hops", sc.Params.MaxNHops)},
		{"NHOPS (Basic Algorithm)", fmt.Sprintf("%d ad-hoc hops", sc.Params.NHopsBasic)},
		{"MAXDIST", fmt.Sprintf("%d ad-hoc hops", sc.Params.MaxDist)},
		{"MAXNCONN", fmt.Sprintf("%d", sc.Params.MaxNConn)},
		{"MAXNSLAVES", fmt.Sprintf("%d", sc.Params.MaxNSlaves)},
		{"TTL for queries", fmt.Sprintf("%d p2p hops", sc.Params.QueryTTL)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-40s%s\n", r.name, r.value)
	}
}

// WriteSummary prints a human-readable digest of one result.
func WriteSummary(w io.Writer, r *Result) {
	sc := r.Scenario
	fmt.Fprintf(w, "== %s: %s, %d nodes (%.0f%% p2p), %s x %d reps ==\n",
		sc.Name, sc.Algorithm, sc.NumNodes, sc.MemberFraction*100,
		sim.Time(sc.Duration), sc.Replications)
	fmt.Fprintf(w, "received per member: connect %s, ping %s, pong %s, query %s\n",
		r.Totals[metrics.Connect], r.Totals[metrics.Ping],
		r.Totals[metrics.Pong], r.Totals[metrics.Query])
	fmt.Fprintf(w, "radio frames per node: rx %s, tx %s\n", r.RxFrames, r.TxFrames)
	if rt := r.Routing; rt != nil {
		fmt.Fprintf(w, "routing (%s): ctrl %.1f+%.1f, bcast %.1f+%.1f per node (orig+relay), %.2f ctrl/delivered, %.1f%% send failures\n",
			rt.Protocol, rt.CtrlOrig.Mean, rt.CtrlRelayed.Mean,
			rt.BcastOrig.Mean, rt.BcastRelayed.Mean,
			rt.ControlPerDelivered(), 100*rt.SendFailRate())
	}
	if r.Overlay.Samples > 0 {
		fmt.Fprintf(w, "overlay: clustering %s, pathlength %s, largest component %s, degree %s\n",
			r.Overlay.Clustering, r.Overlay.PathLength,
			r.Overlay.LargestComponent, r.Overlay.MeanDegree)
	}
	if sc.Energy.Capacity > 0 {
		fmt.Fprintf(w, "energy: spent/node %s J, deaths/rep %s\n", r.EnergySpent, r.Deaths)
	}
	if r.ConnLifetime.N > 0 {
		fmt.Fprintf(w, "connection lifetime: %s s over %d closed links\n",
			r.ConnLifetime, r.ConnLifetime.N)
	}
	if res := r.Resilience; res != nil {
		for _, ev := range res.Events {
			fmt.Fprintf(w, "fault %s: baseline %.2f, trough %.2f, reheal %.1f s (%.0f%% of reps), residual %.3f, cost %.1f msgs/member\n",
				ev.Label, ev.Baseline.Mean, ev.Trough.Mean,
				ev.RehealSeconds.Mean, 100*ev.RehealedFraction,
				ev.ResidualDisconnect.Mean, ev.RecoveryMessages.Mean)
		}
	}
	if ws := r.Workload; ws != nil {
		fmt.Fprintf(w, "workload: offered %.0f/rep, issued %.0f, %.1f%% success, ttfr %.2f s, completion %.2f s\n",
			ws.Offered.Mean, ws.Issued.Mean, 100*ws.SuccessRate,
			ws.TTFR.Mean, ws.Completion.Mean)
		if ws.ChurnEvents.Mean > 0 {
			fmt.Fprintf(w, "workload churn: %.1f departures/rep, repair cost %.1f connect msgs/event\n",
				ws.ChurnEvents.Mean, ws.RepairPerChurn)
		}
	}
	found, reqs := 0.0, 0
	for _, fc := range r.PerFile {
		reqs += fc.Requests
		found += fc.FoundRate * float64(fc.Requests)
	}
	if reqs > 0 {
		fmt.Fprintf(w, "queries: %d requests, %.1f%% found\n", reqs, 100*found/float64(reqs))
	}
}

// GiniCoefficient measures how unevenly a per-node series distributes
// load (0 = perfectly even, →1 = concentrated). The paper argues the
// uniform distributions of Regular/Random suit homogeneous networks
// while Hybrid deliberately skews load onto masters; this makes that
// argument quantitative.
func GiniCoefficient(series []float64) float64 {
	n := len(series)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), series...)
	sort.Float64s(xs)
	var cum, total float64
	for i, x := range xs {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}
