package manetp2p

import (
	"bytes"
	"encoding/json"
	"fmt"

	"manetp2p/internal/stats"
	"manetp2p/internal/telemetry"
)

// This file holds the scenario-level half of the invariant tentpole: the
// aggregation of per-replication checker findings into Result.Invariants
// and the determinism self-audit — the reproducibility claim every
// figure in the paper reproduction rests on, turned into a checkable
// property: the same seed must yield a byte-identical Result, and the
// result must not depend on how replications were scheduled across the
// worker pool.

// ReplicationViolations is one replication's invariant breaches.
type ReplicationViolations struct {
	Replication int   // replication index within the scenario
	Seed        int64 // the replication's effective seed
	Total       int   // breaches detected, including past the recording cap
	Violations  []InvariantViolation
}

// InvariantReport aggregates the invariant checker's findings across a
// scenario's replications.
type InvariantReport struct {
	Replications int // replications validated
	Violations   int // total breaches across all of them
	// PerReplication lists only the offending replications.
	PerReplication []ReplicationViolations `json:",omitempty"`
}

// OK reports whether every validated replication was clean.
func (r *InvariantReport) OK() bool { return r == nil || r.Violations == 0 }

// invariantReport folds the per-replication checker findings, or nil
// when the checker never ran.
func invariantReport(sc Scenario, reps []*repResult) *InvariantReport {
	rep := &InvariantReport{}
	for i, rr := range reps {
		if !rr.checked {
			continue
		}
		rep.Replications++
		rep.Violations += rr.violTotal
		if rr.violTotal > 0 {
			rep.PerReplication = append(rep.PerReplication, ReplicationViolations{
				Replication: i,
				Seed:        sc.Seed + int64(i),
				Total:       rr.violTotal,
				Violations:  rr.violations,
			})
		}
	}
	if rep.Replications == 0 {
		return nil
	}
	return rep
}

// SelfAuditReport is the outcome of SelfAudit.
type SelfAuditReport struct {
	// Deterministic: rerunning the scenario with the same seed produced
	// a byte-identical Result.
	Deterministic bool
	// ScheduleIndependent: a serial (Workers=1) run matched the pooled
	// run — replication results do not depend on worker scheduling.
	ScheduleIndependent bool
	// PooledN: every pooled summary's sample count obeyed the telemetry
	// plane's conservation law (one sample per replication, or per node
	// per replication, depending on the section).
	PooledN bool
	// Invariants carries the instrumented base run's checker findings.
	Invariants *InvariantReport
	// Detail describes the first fingerprint or pooled-N mismatch, when
	// any.
	Detail string
}

// OK reports whether the audit passed outright.
func (r *SelfAuditReport) OK() bool {
	return r.Deterministic && r.ScheduleIndependent && r.PooledN && r.Invariants.OK()
}

// SelfAudit runs the scenario's invariant suite and determinism audit:
// the scenario executes three times — instrumented base run, identical
// rerun, serial (Workers=1) run — and the Results are compared as
// canonical JSON with the Workers knob normalized out. The invariant
// checker is forced on for all three. Expect three full scenario runs'
// worth of wall-clock; size the scenario accordingly.
func SelfAudit(sc Scenario) (*SelfAuditReport, error) {
	inv := InvariantConfig{Enabled: true}
	if sc.Invariants != nil {
		inv = *sc.Invariants
		inv.Enabled = true
	}
	sc.Invariants = &inv

	base, err := Run(sc)
	if err != nil {
		return nil, err
	}
	again, err := Run(sc)
	if err != nil {
		return nil, err
	}
	serial := sc
	serial.Workers = 1
	one, err := Run(serial)
	if err != nil {
		return nil, err
	}

	fpBase, err := fingerprint(base)
	if err != nil {
		return nil, err
	}
	fpAgain, err := fingerprint(again)
	if err != nil {
		return nil, err
	}
	fpOne, err := fingerprint(one)
	if err != nil {
		return nil, err
	}

	pooledN := auditPooledN(base)
	rep := &SelfAuditReport{
		Deterministic:       bytes.Equal(fpBase, fpAgain),
		ScheduleIndependent: bytes.Equal(fpBase, fpOne),
		PooledN:             pooledN == "",
		Invariants:          base.Invariants,
	}
	switch {
	case !rep.Deterministic:
		rep.Detail = diffDetail("rerun", fpBase, fpAgain)
	case !rep.ScheduleIndependent:
		rep.Detail = diffDetail("serial run", fpBase, fpOne)
	case !rep.PooledN:
		rep.Detail = pooledN
	}
	return rep, nil
}

// auditPooledN checks the telemetry plane's pooled-sample conservation
// law on an aggregated Result: a summary pooled one-sample-per-
// replication must report N equal to the replication count, a summary
// pooled one-sample-per-node must report N equal to NumNodes ×
// replications, and the per-class received totals must all pool the
// same member population. Returns "" on success or a description of
// the first violation.
func auditPooledN(res *Result) string {
	reps := res.Scenario.Replications
	perNode := reps * res.Scenario.NumNodes
	type check struct {
		name    string
		n, want int
	}
	checks := []check{
		{"radio.RxFrames", res.RxFrames.N, perNode},
		{"radio.TxFrames", res.TxFrames.N, perNode},
		{"energy.EnergySpent", res.EnergySpent.N, perNode},
		{"energy.Deaths", res.Deaths.N, reps},
	}
	for class := 1; class < telemetry.NumClasses; class++ {
		checks = append(checks, check{
			name: fmt.Sprintf("servent.Totals[%v]", telemetry.Class(class)),
			n:    res.Totals[class].N,
			want: res.Totals[telemetry.Connect].N,
		})
	}
	if rt := res.Routing; rt != nil {
		for _, c := range []struct {
			name string
			s    stats.Summary
		}{
			{"CtrlOrig", rt.CtrlOrig}, {"CtrlRelayed", rt.CtrlRelayed},
			{"BcastOrig", rt.BcastOrig}, {"BcastRelayed", rt.BcastRelayed},
			{"DataSent", rt.DataSent}, {"DataForwarded", rt.DataForwarded},
			{"DataDropped", rt.DataDropped}, {"Delivered", rt.Delivered},
			{"Discoveries", rt.Discoveries}, {"DiscoverFailed", rt.DiscoverFailed},
			{"SendFailed", rt.SendFailed}, {"DupHits", rt.DupHits},
		} {
			checks = append(checks, check{"route." + c.name, c.s.N, perNode})
		}
	}
	if ws := res.Workload; ws != nil {
		for _, c := range []struct {
			name string
			s    stats.Summary
		}{
			{"Offered", ws.Offered}, {"Retries", ws.Retries},
			{"Issued", ws.Issued}, {"Resolved", ws.Resolved},
			{"Expired", ws.Expired}, {"Aborted", ws.Aborted},
			{"InFlight", ws.InFlight}, {"ChurnEvents", ws.ChurnEvents},
		} {
			checks = append(checks, check{"workload." + c.name, c.s.N, reps})
		}
	}
	for _, c := range checks {
		if c.n != c.want {
			return fmt.Sprintf("telemetry pooled-N conservation: %s pooled N=%d, want %d", c.name, c.n, c.want)
		}
	}
	return ""
}

// fingerprint canonicalizes a Result for comparison: the Workers knob is
// pure execution policy, so it is normalized out before marshalling.
func fingerprint(res *Result) ([]byte, error) {
	clone := *res
	clone.Scenario.Workers = 0
	return json.Marshal(&clone)
}

// diffDetail locates the first divergence between two fingerprints and
// quotes it with some context.
func diffDetail(what string, a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	ctx := func(s []byte) string {
		lo, hi := i-30, i+30
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("%s diverges at byte %d: %q vs %q", what, i, ctx(a), ctx(b))
}
