package manetp2p

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// This file holds the scenario-level half of the invariant tentpole: the
// aggregation of per-replication checker findings into Result.Invariants
// and the determinism self-audit — the reproducibility claim every
// figure in the paper reproduction rests on, turned into a checkable
// property: the same seed must yield a byte-identical Result, and the
// result must not depend on how replications were scheduled across the
// worker pool.

// ReplicationViolations is one replication's invariant breaches.
type ReplicationViolations struct {
	Replication int   // replication index within the scenario
	Seed        int64 // the replication's effective seed
	Total       int   // breaches detected, including past the recording cap
	Violations  []InvariantViolation
}

// InvariantReport aggregates the invariant checker's findings across a
// scenario's replications.
type InvariantReport struct {
	Replications int // replications validated
	Violations   int // total breaches across all of them
	// PerReplication lists only the offending replications.
	PerReplication []ReplicationViolations `json:",omitempty"`
}

// OK reports whether every validated replication was clean.
func (r *InvariantReport) OK() bool { return r == nil || r.Violations == 0 }

// invariantReport folds the per-replication checker findings, or nil
// when the checker never ran.
func invariantReport(sc Scenario, reps []repResult) *InvariantReport {
	rep := &InvariantReport{}
	for i, rr := range reps {
		if !rr.checked {
			continue
		}
		rep.Replications++
		rep.Violations += rr.violTotal
		if rr.violTotal > 0 {
			rep.PerReplication = append(rep.PerReplication, ReplicationViolations{
				Replication: i,
				Seed:        sc.Seed + int64(i),
				Total:       rr.violTotal,
				Violations:  rr.violations,
			})
		}
	}
	if rep.Replications == 0 {
		return nil
	}
	return rep
}

// SelfAuditReport is the outcome of SelfAudit.
type SelfAuditReport struct {
	// Deterministic: rerunning the scenario with the same seed produced
	// a byte-identical Result.
	Deterministic bool
	// ScheduleIndependent: a serial (Workers=1) run matched the pooled
	// run — replication results do not depend on worker scheduling.
	ScheduleIndependent bool
	// Invariants carries the instrumented base run's checker findings.
	Invariants *InvariantReport
	// Detail describes the first fingerprint mismatch, when any.
	Detail string
}

// OK reports whether the audit passed outright.
func (r *SelfAuditReport) OK() bool {
	return r.Deterministic && r.ScheduleIndependent && r.Invariants.OK()
}

// SelfAudit runs the scenario's invariant suite and determinism audit:
// the scenario executes three times — instrumented base run, identical
// rerun, serial (Workers=1) run — and the Results are compared as
// canonical JSON with the Workers knob normalized out. The invariant
// checker is forced on for all three. Expect three full scenario runs'
// worth of wall-clock; size the scenario accordingly.
func SelfAudit(sc Scenario) (*SelfAuditReport, error) {
	inv := InvariantConfig{Enabled: true}
	if sc.Invariants != nil {
		inv = *sc.Invariants
		inv.Enabled = true
	}
	sc.Invariants = &inv

	base, err := Run(sc)
	if err != nil {
		return nil, err
	}
	again, err := Run(sc)
	if err != nil {
		return nil, err
	}
	serial := sc
	serial.Workers = 1
	one, err := Run(serial)
	if err != nil {
		return nil, err
	}

	fpBase, err := fingerprint(base)
	if err != nil {
		return nil, err
	}
	fpAgain, err := fingerprint(again)
	if err != nil {
		return nil, err
	}
	fpOne, err := fingerprint(one)
	if err != nil {
		return nil, err
	}

	rep := &SelfAuditReport{
		Deterministic:       bytes.Equal(fpBase, fpAgain),
		ScheduleIndependent: bytes.Equal(fpBase, fpOne),
		Invariants:          base.Invariants,
	}
	switch {
	case !rep.Deterministic:
		rep.Detail = diffDetail("rerun", fpBase, fpAgain)
	case !rep.ScheduleIndependent:
		rep.Detail = diffDetail("serial run", fpBase, fpOne)
	}
	return rep, nil
}

// fingerprint canonicalizes a Result for comparison: the Workers knob is
// pure execution policy, so it is normalized out before marshalling.
func fingerprint(res *Result) ([]byte, error) {
	clone := *res
	clone.Scenario.Workers = 0
	return json.Marshal(&clone)
}

// diffDetail locates the first divergence between two fingerprints and
// quotes it with some context.
func diffDetail(what string, a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	ctx := func(s []byte) string {
		lo, hi := i-30, i+30
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("%s diverges at byte %d: %q vs %q", what, i, ctx(a), ctx(b))
}
