// Command p2psim runs one scenario of the paper's simulation study and
// prints a summary plus (optionally) the per-figure series.
//
// Usage:
//
//	p2psim -nodes 50 -alg regular -duration 3600 -reps 33
//	p2psim -nodes 150 -alg hybrid -series connect
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"manetp2p"
	"manetp2p/internal/prof"
)

func parseAlg(s string) (manetp2p.Algorithm, error) {
	for _, a := range manetp2p.Algorithms() {
		if strings.EqualFold(a.String(), s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (basic|regular|random|hybrid)", s)
}

func main() {
	var (
		nodes      = flag.Int("nodes", 50, "number of ad-hoc nodes")
		algName    = flag.String("alg", "regular", "algorithm: basic|regular|random|hybrid")
		duration   = flag.Float64("duration", 3600, "simulated seconds per replication")
		reps       = flag.Int("reps", 33, "replications")
		seed       = flag.Int64("seed", 1, "base random seed")
		fraction   = flag.Float64("p2p", 0.75, "fraction of nodes in the p2p overlay")
		speed      = flag.Float64("speed", 1.0, "max node speed, m/s")
		area       = flag.Float64("area", 100, "square arena side, metres")
		rng        = flag.Float64("range", 10, "radio range, metres")
		series     = flag.String("series", "", "also print a node series: connect|ping|query")
		curves     = flag.Bool("curves", false, "also print the per-file distance/answer curves")
		quals      = flag.Bool("classes", false, "use phone/PDA/notebook device classes (hybrid)")
		traceOut   = flag.String("trace", "", "run a single replication and write a JSON-lines event trace to this file ('-' = stdout)")
		routing    = flag.String("routing", "aodv", "routing substrate: aodv|dsr|dsdv|flood")
		traffic    = flag.Float64("traffic", 0, "also print message-rate series with this bucket width in seconds")
		faults     = flag.String("faults", "", "load a fault-injection plan from this JSON file ('-' = stdin) and print recovery metrics")
		workload   = flag.String("workload", "", "load a workload plan from this JSON file ('-' = stdin) and print demand telemetry")
		health     = flag.Float64("health", 0, "resilience-telemetry sampling period in seconds (default 10 when -faults is set)")
		config     = flag.String("config", "", "load the scenario from a JSON file ('-' = stdin); other scenario flags are ignored")
		saveCfg    = flag.String("save-config", "", "write the effective scenario as JSON to this file and exit")
		selfcheck  = flag.Bool("selfcheck", false, "run the invariant suite and determinism self-audit on the scenario and exit nonzero on any violation")
		peercache  = flag.Bool("peercache", false, "enable the peer-cache extension (cached rendezvous before flooding)")
		ckptPath   = flag.String("checkpoint", "", "persist run state to this checkpoint file at periodic boundaries")
		ckptEvery  = flag.Float64("checkpoint-every", 0, "checkpoint period in simulated seconds (default: duration/8)")
		halt       = flag.Float64("halt", 0, "stop at this simulated time after checkpointing (exit code 3); resume later with -resume")
		resume     = flag.String("resume", "", "resume a run from this checkpoint file; scenario flags are ignored")
		metricsOut = flag.String("metrics", "", "stream the per-replication telemetry time series as JSON lines to this file ('-' = stdout)")
	)
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Profiles flush on the normal return path; error paths os.Exit and
	// deliberately drop them rather than report half a run as a profile.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *resume != "" {
		runResume(*resume, manetp2p.Seconds(*halt), *metricsOut)
		return
	}

	var sc manetp2p.Scenario
	if *config != "" {
		loaded, err := manetp2p.LoadScenario(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc = loaded
	} else {
		alg, err := parseAlg(*algName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc = manetp2p.DefaultScenario(*nodes, alg)
		sc.Duration = manetp2p.Seconds(*duration)
		sc.Replications = *reps
		sc.Seed = *seed
		sc.MemberFraction = *fraction
		sc.MaxSpeed = *speed
		sc.AreaSide = *area
		sc.Range = *rng
	}
	if *config == "" {
		if *quals {
			sc.Quals = manetp2p.DeviceClasses()
		}
		switch strings.ToLower(*routing) {
		case "aodv":
			sc.Routing = manetp2p.RoutingAODV
		case "dsr":
			sc.Routing = manetp2p.RoutingDSR
		case "dsdv":
			sc.Routing = manetp2p.RoutingDSDV
		case "flood":
			sc.Routing = manetp2p.RoutingFlood
		default:
			fmt.Fprintf(os.Stderr, "unknown routing %q\n", *routing)
			os.Exit(2)
		}
		if *traffic > 0 {
			sc.TrafficBucket = manetp2p.Seconds(*traffic)
		}
	}
	if *faults != "" {
		plan, err := manetp2p.LoadFaultPlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc.Faults = plan
	}
	if *workload != "" {
		plan, err := manetp2p.LoadWorkloadPlan(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc.Workload = plan
	}
	if *health > 0 {
		sc.HealthEvery = manetp2p.Seconds(*health)
	}
	if *peercache {
		sc.Params.PeerCache.Enabled = true
	}
	if *saveCfg != "" {
		if err := manetp2p.SaveScenario(*saveCfg, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *selfcheck {
		runSelfcheck(sc)
		return
	}
	if *traceOut != "" {
		runTraced(sc, *traceOut)
		return
	}

	sink, closeSink := openMetricsSink(*metricsOut)
	var res *manetp2p.Result
	if *ckptPath != "" {
		res, err = manetp2p.NewPool(0).RunCheckpointed(sc, manetp2p.CheckpointConfig{
			Path:   *ckptPath,
			Every:  manetp2p.Seconds(*ckptEvery),
			HaltAt: manetp2p.Seconds(*halt),
			Sink:   sink,
		})
		exitIfHalted(err, *ckptPath)
	} else if sink != nil {
		res, err = manetp2p.NewPool(0).RunWithMetrics(sc, sink)
	} else {
		res, err = manetp2p.Run(sc)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	closeSink()
	manetp2p.WriteSummary(os.Stdout, res)

	if res.Resilience != nil {
		fmt.Println()
		if err := manetp2p.WriteResilience(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if res.Workload != nil {
		fmt.Println()
		if err := manetp2p.WriteWorkload(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *curves {
		fmt.Println()
		if err := manetp2p.WriteFileCurves(os.Stdout, []*manetp2p.Result{res}, 10); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traffic > 0 {
		fmt.Println()
		if err := manetp2p.WriteTrafficSeries(os.Stdout, []*manetp2p.Result{res}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *series != "" {
		kinds := map[string]manetp2p.SeriesKind{
			"connect": manetp2p.SeriesConnect,
			"ping":    manetp2p.SeriesPing,
			"query":   manetp2p.SeriesQuery,
		}
		kind, ok := kinds[strings.ToLower(*series)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown series %q\n", *series)
			os.Exit(2)
		}
		fmt.Println()
		if err := manetp2p.WriteNodeSeries(os.Stdout, kind, []*manetp2p.Result{res}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// exitIfHalted turns ErrHalted into the documented exit code 3 plus a
// resume hint, so scripts can tell "paused" from "failed".
func exitIfHalted(err error, path string) {
	if !errors.Is(err, manetp2p.ErrHalted) {
		return
	}
	fmt.Fprintf(os.Stderr, "halted with state saved to %s; continue with: p2psim -resume %s\n", path, path)
	os.Exit(3)
}

// openMetricsSink opens the -metrics target ("" = none, "-" = stdout)
// and returns the sink plus a close function that flushes it and exits
// nonzero on a write error.
func openMetricsSink(path string) (manetp2p.MetricsSink, func()) {
	if path == "" {
		return nil, func() {}
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		w = f
	}
	sink := manetp2p.NewJSONLSink(w)
	return sink, func() {
		if err := sink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics stream: %v\n", err)
			os.Exit(1)
		}
	}
}

// runResume continues a checkpointed run in a fresh process and prints
// the same report a plain run would have produced.
func runResume(path string, haltAt manetp2p.Duration, metricsOut string) {
	info, err := manetp2p.InspectCheckpoint(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "resuming %s: %d/%d replications complete, %d in flight\n",
		path, len(info.Completed), info.Total, len(info.Cursors))
	sink, closeSink := openMetricsSink(metricsOut)
	res, err := manetp2p.NewPool(0).ResumeCheckpoint(path, manetp2p.CheckpointConfig{HaltAt: haltAt, Sink: sink})
	exitIfHalted(err, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	closeSink()
	manetp2p.WriteSummary(os.Stdout, res)
	if res.Resilience != nil {
		fmt.Println()
		if err := manetp2p.WriteResilience(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if res.Workload != nil {
		fmt.Println()
		if err := manetp2p.WriteWorkload(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runSelfcheck runs the invariant suite plus determinism audit and
// reports the outcome, exiting nonzero when anything is violated.
func runSelfcheck(sc manetp2p.Scenario) {
	fmt.Printf("selfcheck %s: %d nodes, %v x %d reps\n",
		sc.Name, sc.NumNodes, sc.Duration, sc.Replications)
	rep, err := manetp2p.SelfAudit(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pass := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Printf("  determinism (same seed, same result): %s\n", pass(rep.Deterministic))
	fmt.Printf("  scheduling independence (serial == pooled): %s\n", pass(rep.ScheduleIndependent))
	fmt.Printf("  telemetry pooled-N conservation: %s\n", pass(rep.PooledN))
	if rep.Invariants != nil {
		fmt.Printf("  invariants (%d replications): %s\n",
			rep.Invariants.Replications, pass(rep.Invariants.OK()))
		for _, rv := range rep.Invariants.PerReplication {
			fmt.Printf("    replication %d (seed %d): %d violations\n", rv.Replication, rv.Seed, rv.Total)
			for _, v := range rv.Violations {
				fmt.Printf("      %s\n", v)
			}
		}
	}
	if rep.Detail != "" {
		fmt.Printf("  detail: %s\n", rep.Detail)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// runTraced executes one replication with tracing on and dumps the
// event log.
func runTraced(sc manetp2p.Scenario, path string) {
	sc.TraceCapacity = 1 << 20
	s, err := manetp2p.NewSimulation(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Step(sc.Duration)
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := s.Net.Tracer.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if lost := s.Net.Tracer.Lost(); lost > 0 {
		fmt.Fprintf(os.Stderr, "note: %d events dropped (buffer full)\n", lost)
	}
}
