// Command topoviz runs a scenario for a while and writes an SVG snapshot
// of the network: node positions, radio adjacency (optional), overlay
// connections (random links highlighted) and hybrid roles.
//
// Usage:
//
//	topoviz -nodes 50 -alg random -at 1800 > topo.svg
//	topoviz -alg hybrid -labels -radio > topo.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"manetp2p"
	"manetp2p/internal/viz"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 50, "number of ad-hoc nodes")
		algName = flag.String("alg", "regular", "algorithm: basic|regular|random|hybrid")
		at      = flag.Float64("at", 1800, "snapshot time, simulated seconds")
		seed    = flag.Int64("seed", 1, "random seed")
		radio   = flag.Bool("radio", false, "draw radio adjacency")
		labels  = flag.Bool("labels", false, "draw node ids")
		scale   = flag.Float64("scale", 6, "pixels per metre")
	)
	flag.Parse()

	var alg manetp2p.Algorithm
	found := false
	for _, a := range manetp2p.Algorithms() {
		if strings.EqualFold(a.String(), *algName) {
			alg, found = a, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	sc := manetp2p.DefaultScenario(*nodes, alg)
	sc.Seed = *seed
	if alg == manetp2p.Hybrid {
		sc.Quals = manetp2p.DeviceClasses()
	}
	s, err := manetp2p.NewSimulation(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Step(manetp2p.Seconds(*at))
	if err := viz.WriteSVG(os.Stdout, s.Net, viz.Options{
		Scale: *scale, ShowRadio: *radio, ShowLabels: *labels,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
