// Command sweep runs the parameter studies from the paper's future-work
// list (§8): node density, wireless coverage (radio range), mobility
// speed, death/birth churn, energy budget, scripted fault regimes and
// scripted workload regimes. Each sweep prints one TSV row per
// parameter point with the headline metrics for the selected
// algorithms; axes registered with extra columns (faults, routing,
// workload) append them to every row.
//
// All scenario points run concurrently under one shared
// replication-worker budget (-jobs, default GOMAXPROCS); rows print in
// grid order, so the output matches a sequential sweep byte for byte.
//
// Usage:
//
//	sweep -axis density
//	sweep -axis range -algs basic,regular -jobs 4
//	sweep -axis energy -reps 10
//	sweep -axis faults -seed 7
//	sweep -axis workload -reps 3 -duration 1200
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"manetp2p"
	"manetp2p/internal/telemetry"
)

type point struct {
	label string
	mod   func(*manetp2p.Scenario)
}

// axisSpec is one registered sweep axis: its parameter points plus the
// axis-specific extra columns (nil cells = none). All axis knowledge —
// the flag help, the unknown-axis error, the per-row extras — derives
// from this registry, so adding an axis is one map entry.
type axisSpec struct {
	points  []point
	headers []string
	cells   func(*manetp2p.Result) []string
}

func registry() map[string]axisSpec {
	return map[string]axisSpec{
		"density": {points: []point{
			{"25", func(sc *manetp2p.Scenario) { sc.NumNodes = 25 }},
			{"50", func(sc *manetp2p.Scenario) { sc.NumNodes = 50 }},
			{"100", func(sc *manetp2p.Scenario) { sc.NumNodes = 100 }},
			{"150", func(sc *manetp2p.Scenario) { sc.NumNodes = 150 }},
		}},
		"range": {points: []point{
			{"5m", func(sc *manetp2p.Scenario) { sc.Range = 5 }},
			{"10m", func(sc *manetp2p.Scenario) { sc.Range = 10 }},
			{"20m", func(sc *manetp2p.Scenario) { sc.Range = 20 }},
			{"30m", func(sc *manetp2p.Scenario) { sc.Range = 30 }},
		}},
		"speed": {points: []point{
			{"0.5m/s", func(sc *manetp2p.Scenario) { sc.MaxSpeed = 0.5 }},
			{"1m/s", func(sc *manetp2p.Scenario) { sc.MaxSpeed = 1.0 }},
			{"2m/s", func(sc *manetp2p.Scenario) { sc.MaxSpeed = 2.0 }},
			{"5m/s", func(sc *manetp2p.Scenario) { sc.MaxSpeed = 5.0 }},
		}},
		"churn": {points: []point{
			{"none", func(sc *manetp2p.Scenario) {}},
			{"mild", func(sc *manetp2p.Scenario) {
				sc.Churn = manetp2p.ChurnConfig{MeanUptime: manetp2p.Seconds(1200), MeanDowntime: manetp2p.Seconds(120)}
			}},
			{"moderate", func(sc *manetp2p.Scenario) {
				sc.Churn = manetp2p.ChurnConfig{MeanUptime: manetp2p.Seconds(600), MeanDowntime: manetp2p.Seconds(120)}
			}},
			{"heavy", func(sc *manetp2p.Scenario) {
				sc.Churn = manetp2p.ChurnConfig{MeanUptime: manetp2p.Seconds(300), MeanDowntime: manetp2p.Seconds(120)}
			}},
		}},
		"energy": {points: []point{
			{"infinite", func(sc *manetp2p.Scenario) {}},
			{"5J", func(sc *manetp2p.Scenario) { sc.Energy = manetp2p.DefaultEnergy(5) }},
			{"2J", func(sc *manetp2p.Scenario) { sc.Energy = manetp2p.DefaultEnergy(2) }},
			{"1J", func(sc *manetp2p.Scenario) { sc.Energy = manetp2p.DefaultEnergy(1) }},
		}},
		"mobility": {points: []point{
			{"stationary", func(sc *manetp2p.Scenario) { sc.Mobility = manetp2p.MobilityStationary }},
			{"waypoint", func(sc *manetp2p.Scenario) { sc.Mobility = manetp2p.MobilityWaypoint }},
			{"walk", func(sc *manetp2p.Scenario) { sc.Mobility = manetp2p.MobilityWalk }},
			{"direction", func(sc *manetp2p.Scenario) { sc.Mobility = manetp2p.MobilityDirection }},
			{"gaussmarkov", func(sc *manetp2p.Scenario) { sc.Mobility = manetp2p.MobilityGaussMarkov }},
		}},
		"routing": {
			points: []point{
				{"aodv", func(sc *manetp2p.Scenario) { sc.Routing = manetp2p.RoutingAODV }},
				{"dsr", func(sc *manetp2p.Scenario) { sc.Routing = manetp2p.RoutingDSR }},
				{"flood", func(sc *manetp2p.Scenario) { sc.Routing = manetp2p.RoutingFlood }},
				{"dsdv", func(sc *manetp2p.Scenario) { sc.Routing = manetp2p.RoutingDSDV }},
			},
			headers: []string{"ctrl/delivered", "sendfail%"},
			cells:   routingCells,
		},
		// Fault regimes: scripted failures relative to the run length,
		// executed by internal/fault. Telemetry (10 s sampling) switches
		// on automatically with a non-empty plan.
		"faults": {
			points: []point{
				{"none", func(sc *manetp2p.Scenario) {}},
				{"partition", func(sc *manetp2p.Scenario) {
					sc.Faults = manetp2p.FaultPlan{Events: []manetp2p.FaultEvent{
						manetp2p.PartitionFault(sc.Duration/3, manetp2p.Seconds(120), manetp2p.AxisX, sc.AreaSide/2),
					}}
				}},
				{"jam", func(sc *manetp2p.Scenario) {
					sc.Faults = manetp2p.FaultPlan{Events: []manetp2p.FaultEvent{
						manetp2p.JamFault(sc.Duration/3, manetp2p.Seconds(180),
							sc.AreaSide/2, sc.AreaSide/2, sc.AreaSide/4, 0.9),
					}}
				}},
				{"crash", func(sc *manetp2p.Scenario) {
					sc.Faults = manetp2p.FaultPlan{Events: []manetp2p.FaultEvent{
						manetp2p.CrashFractionFault(sc.Duration/3, manetp2p.Seconds(180), 0.25),
					}}
				}},
				{"combined", func(sc *manetp2p.Scenario) {
					sc.Faults = manetp2p.FaultPlan{Events: []manetp2p.FaultEvent{
						manetp2p.PartitionFault(sc.Duration/4, manetp2p.Seconds(120), manetp2p.AxisX, sc.AreaSide/2),
						manetp2p.CrashFractionFault(sc.Duration/2, manetp2p.Seconds(180), 0.25),
						manetp2p.LossBurstFault(3*sc.Duration/4, manetp2p.Seconds(60), 0.5),
					}}
				}},
			},
			headers: []string{"reheal-s", "residual-disc"},
			cells:   resilienceCells,
		},
		// Workload regimes: scripted demand executed by
		// internal/workload. "none" keeps the paper's built-in query
		// loop as the baseline row.
		"workload": {
			points: []point{
				{"none", func(sc *manetp2p.Scenario) {}},
				{"uniform", func(sc *manetp2p.Scenario) {
					sc.Workload = &manetp2p.WorkloadPlan{} // defaults = paper's 15-45 s gaps
				}},
				{"poisson", func(sc *manetp2p.Scenario) {
					sc.Workload = &manetp2p.WorkloadPlan{
						Arrival:    manetp2p.WorkloadArrival{Process: manetp2p.ArrivalPoisson, Rate: 1.0 / 30},
						Popularity: manetp2p.WorkloadPopularity{Skew: 1.0},
					}
				}},
				{"bursty", func(sc *manetp2p.Scenario) {
					sc.Workload = &manetp2p.WorkloadPlan{
						Arrival:    manetp2p.WorkloadArrival{Process: manetp2p.ArrivalOnOff, Rate: 0.1},
						Popularity: manetp2p.WorkloadPopularity{Skew: 1.0},
					}
				}},
				{"diurnal", func(sc *manetp2p.Scenario) {
					sc.Workload = &manetp2p.WorkloadPlan{
						Arrival: manetp2p.WorkloadArrival{
							Process: manetp2p.ArrivalDiurnal, Rate: 1.0 / 30,
							Period: sc.Duration / 2, Amplitude: 0.8,
						},
						Popularity: manetp2p.WorkloadPopularity{Skew: 1.0},
					}
				}},
				{"flash", func(sc *manetp2p.Scenario) {
					sc.Workload = &manetp2p.WorkloadPlan{
						Popularity: manetp2p.WorkloadPopularity{Skew: 1.2},
						Sessions:   manetp2p.DefaultWorkloadSessions(),
						Phases: []manetp2p.WorkloadPhase{
							{Name: "ramp", Start: 0, RateScale: 0.5},
							{Name: "steady", Start: sc.Duration / 4},
							{Name: "flash", Start: sc.Duration / 2, RateScale: 3, HotFiles: 3, HotBoost: 0.8},
							{Name: "drain", Start: 3 * sc.Duration / 4, RateScale: 0.25},
						},
					}
				}},
			},
			headers: []string{"offered", "success%", "ttfr-s"},
			cells:   workloadCells,
		},
	}
}

// resilienceCells renders the faults-axis extra columns: mean
// time-to-reheal and residual disconnect over the regime's events, "-"
// when the regime injected nothing.
func resilienceCells(res *manetp2p.Result) []string {
	r := res.Resilience
	if r == nil || len(r.Events) == 0 {
		return []string{"-", "-"}
	}
	rehealSum, residualSum, n := 0.0, 0.0, 0
	for _, ev := range r.Events {
		rehealSum += ev.RehealSeconds.Mean
		residualSum += ev.ResidualDisconnect.Mean
		n++
	}
	if n == 0 || math.IsNaN(rehealSum) {
		return []string{"-", "-"}
	}
	return []string{
		fmt.Sprintf("%.1f", rehealSum/float64(n)),
		fmt.Sprintf("%.3f", residualSum/float64(n)),
	}
}

// routingCells renders the routing-axis extra columns: control frames
// spent per delivered payload and the percentage of locally originated
// sends that were abandoned, "-" when telemetry is absent.
func routingCells(res *manetp2p.Result) []string {
	rt := res.Routing
	if rt == nil {
		return []string{"-", "-"}
	}
	return []string{
		fmt.Sprintf("%.2f", rt.ControlPerDelivered()),
		fmt.Sprintf("%.1f", 100*rt.SendFailRate()),
	}
}

// workloadCells renders the workload-axis extra columns: offered demand
// per replication, the success rate and mean time-to-first-result, "-"
// for the built-in baseline row (no engine, no telemetry).
func workloadCells(res *manetp2p.Result) []string {
	ws := res.Workload
	if ws == nil {
		return []string{"-", "-", "-"}
	}
	return []string{
		fmt.Sprintf("%.0f", ws.Offered.Mean),
		fmt.Sprintf("%.1f", 100*ws.SuccessRate),
		fmt.Sprintf("%.2f", ws.TTFR.Mean),
	}
}

// axisNames returns the registered axis names, sorted.
func axisNames(reg map[string]axisSpec) []string {
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func main() {
	reg := registry()
	var (
		axis       = flag.String("axis", "density", "sweep axis: "+strings.Join(axisNames(reg), "|"))
		algsF      = flag.String("algs", "basic,regular,random,hybrid", "comma-separated algorithms")
		reps       = flag.Int("reps", 5, "replications per point")
		nodes      = flag.Int("nodes", 50, "base node count (non-density sweeps)")
		dur        = flag.Float64("duration", 3600, "simulated seconds")
		seed       = flag.Int64("seed", 1, "base random seed")
		jobs       = flag.Int("jobs", 0, "shared replication-worker budget across all scenario points (0 = GOMAXPROCS)")
		ckpt       = flag.String("checkpoint", "", "checkpoint directory: each grid cell persists to <dir>/<axis>_<point>_<alg>.ckpt; finished cells load without recomputation, interrupted ones resume")
		metricsDir = flag.String("metrics", "", "metrics directory: each grid cell streams its telemetry time series to <dir>/<axis>_<point>_<alg>.jsonl")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line on stderr")
	)
	flag.Parse()

	axisName := strings.ToLower(*axis)
	spec, ok := reg[axisName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown axis %q (valid: %s)\n", *axis, strings.Join(axisNames(reg), "|"))
		os.Exit(2)
	}
	var algs []manetp2p.Algorithm
	for _, name := range strings.Split(*algsF, ",") {
		found := false
		for _, a := range manetp2p.Algorithms() {
			if strings.EqualFold(a.String(), strings.TrimSpace(name)) {
				algs = append(algs, a)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", name)
			os.Exit(2)
		}
	}

	fmt.Printf("# sweep axis=%s, %d reps/point, %gs simulated\n", axisName, *reps, *dur)
	header := "point\talg\tconnect/node\tping/node\tquery/node\tfound%\tdist\tanswers\tdeaths\tlargest-comp"
	for _, h := range spec.headers {
		header += "\t" + h
	}
	fmt.Println(header)
	// Every (point, algorithm) cell of the grid runs concurrently, all
	// drawing replication slots from one shared pool so the whole sweep
	// never exceeds the -jobs budget. Replications are deterministic
	// (fixed seeds, one result slot each) and rows print in grid order,
	// so the output is byte-identical to a sequential sweep.
	type cell struct {
		label string
		sc    manetp2p.Scenario
	}
	var cells []cell
	for _, pt := range spec.points {
		for _, alg := range algs {
			sc := manetp2p.DefaultScenario(*nodes, alg)
			sc.Duration = manetp2p.Seconds(*dur)
			sc.Replications = *reps
			sc.Seed = *seed
			pt.mod(&sc)
			cells = append(cells, cell{label: pt.label, sc: sc})
		}
	}
	pool := manetp2p.NewPool(*jobs)
	type outcome struct {
		res *manetp2p.Result
		err error
	}
	for _, dir := range []string{*ckpt, *metricsDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	// The progress line goes to stderr only (stdout stays diff-clean vs.
	// a sequential sweep); cells finish in scheduling order, so the line
	// shows the most recently completed cell, not the grid cursor.
	var progressMu sync.Mutex
	cellsDone := 0
	progress := func(label string, alg manetp2p.Algorithm) {
		if *quiet {
			return
		}
		progressMu.Lock()
		cellsDone++
		fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells (done %s/%s)", cellsDone, len(cells), label, alg)
		if cellsDone == len(cells) {
			fmt.Fprintln(os.Stderr)
		}
		progressMu.Unlock()
	}
	results := make([]chan outcome, len(cells))
	for i := range cells {
		results[i] = make(chan outcome, 1)
		go func(i int) {
			var sink manetp2p.MetricsSink
			if *metricsDir != "" {
				path := cellFilePath(*metricsDir, axisName, cells[i].label, cells[i].sc.Algorithm, "jsonl")
				f, err := os.Create(path)
				if err != nil {
					results[i] <- outcome{err: err}
					return
				}
				sink = manetp2p.NewJSONLSink(f)
			}
			var res *manetp2p.Result
			var err error
			if *ckpt != "" {
				path := cellFilePath(*ckpt, axisName, cells[i].label, cells[i].sc.Algorithm, "ckpt")
				res, err = runCellCheckpointed(pool, cells[i].sc, path, sink)
			} else if sink != nil {
				res, err = pool.RunWithMetrics(cells[i].sc, sink)
			} else {
				res, err = pool.Run(cells[i].sc)
			}
			if sink != nil {
				if cerr := sink.Close(); err == nil && cerr != nil {
					err = fmt.Errorf("sweep: writing metrics stream: %w", cerr)
				}
			}
			if err == nil {
				progress(cells[i].label, cells[i].sc.Algorithm)
			}
			results[i] <- outcome{res: res, err: err}
		}(i)
	}
	for i := range cells {
		out := <-results[i]
		if out.err != nil {
			fmt.Fprintln(os.Stderr, out.err)
			os.Exit(1)
		}
		fmt.Println(formatRow(cells[i].label, cells[i].sc.Algorithm, out.res, spec))
	}
}

// cellFilePath names one grid cell's per-cell file (checkpoint or
// metrics stream). Point labels may contain characters that are hostile
// to filenames ("/", "."); everything outside [a-zA-Z0-9_-] maps to "-".
func cellFilePath(dir, axis, label string, alg manetp2p.Algorithm, ext string) string {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
				return r
			default:
				return '-'
			}
		}, s)
	}
	name := fmt.Sprintf("%s_%s_%s.%s", sanitize(axis), sanitize(label), sanitize(strings.ToLower(alg.String())), ext)
	return filepath.Join(dir, name)
}

// runCellCheckpointed runs one grid cell with persistence: a finished
// checkpoint loads its stored records without recomputation, a partial
// one resumes, an absent one starts fresh. A checkpoint written for a
// different scenario (changed flags between invocations) is an error,
// not a silent recompute: the stale file would otherwise shadow the
// requested grid.
func runCellCheckpointed(pool *manetp2p.Pool, sc manetp2p.Scenario, path string, sink manetp2p.MetricsSink) (*manetp2p.Result, error) {
	if _, err := os.Stat(path); err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		return pool.RunCheckpointed(sc, manetp2p.CheckpointConfig{Path: path, Sink: sink})
	}
	info, err := manetp2p.InspectCheckpoint(path)
	if err != nil {
		return nil, err
	}
	want, err := manetp2p.MarshalJSONScenario(sc)
	if err != nil {
		return nil, err
	}
	have, err := manetp2p.MarshalJSONScenario(info.Scenario)
	if err != nil {
		return nil, err
	}
	if string(want) != string(have) {
		return nil, fmt.Errorf("sweep: %s holds a checkpoint for a different scenario; delete it or change -checkpoint", path)
	}
	return pool.ResumeCheckpoint(path, manetp2p.CheckpointConfig{Sink: sink})
}

// formatRow renders one TSV result row: the headline metrics plus the
// axis-specific extra cells.
func formatRow(label string, alg manetp2p.Algorithm, res *manetp2p.Result, spec axisSpec) string {
	found, reqs, answers := 0.0, 0, 0.0
	var dists []float64
	for _, fc := range res.PerFile {
		reqs += fc.Requests
		found += fc.FoundRate * float64(fc.Requests)
		answers += fc.Answers.Mean * float64(fc.Requests)
		if fc.Distance.N > 0 {
			dists = append(dists, fc.Distance.Mean)
		}
	}
	foundPct, dist, answ := 0.0, 0.0, 0.0
	if reqs > 0 {
		foundPct = 100 * found / float64(reqs)
		answ = answers / float64(reqs)
	}
	if len(dists) > 0 {
		for _, d := range dists {
			dist += d
		}
		dist /= float64(len(dists))
	}
	row := fmt.Sprintf("%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\t%.1f\t%.2f",
		label, alg,
		res.Totals[telemetry.Connect].Mean,
		res.Totals[telemetry.Ping].Mean,
		res.Totals[telemetry.Query].Mean,
		foundPct, dist, answ,
		res.Deaths.Mean,
		res.Overlay.LargestComponent.Mean)
	if spec.cells != nil {
		for _, cell := range spec.cells(res) {
			row += "\t" + cell
		}
	}
	return row
}
