// Command repro regenerates every table and figure of the paper's
// evaluation (§7): Tables 1–2 and Figures 5–12. Output is TSV, one
// block per experiment, in the same row/series structure the paper
// plots.
//
// Usage:
//
//	repro                     # everything, paper-fidelity (33 reps) — slow
//	repro -fast               # everything at 5 replications
//	repro -exp fig7           # a single experiment
//	repro -exp fig5,fig7,table2
//
// Figures 5/7/9/11 share the 50-node runs (one per algorithm), and
// Figures 6/8/10/12 share the 150-node runs, so each population is
// simulated once per algorithm regardless of how many figures are
// requested.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"manetp2p"
	"manetp2p/internal/prof"
)

// experiment maps a paper artifact to the runs and renderer it needs.
type experiment struct {
	nodes int // 0 = no simulation needed (tables)
	print func(results []*manetp2p.Result)
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments: table1,table2,fig5..fig12 or all")
		reps    = flag.Int("reps", 33, "replications per scenario (paper: 33)")
		fast    = flag.Bool("fast", false, "shortcut for -reps 5")
		seed    = flag.Int64("seed", 1, "base random seed")
		quiet   = flag.Bool("q", false, "suppress progress messages on stderr")
	)
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()
	if *fast {
		*reps = 5
	}

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Flushed on the normal return path; error paths os.Exit and drop
	// the partial profile.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	experiments := map[string]experiment{
		"table1": {print: func([]*manetp2p.Result) { manetp2p.WriteTable1(os.Stdout) }},
		"table2": {print: func([]*manetp2p.Result) {
			manetp2p.WriteTable2(os.Stdout, manetp2p.DefaultScenario(50, manetp2p.Regular))
		}},
		"fig5": {nodes: 50, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 5: distance to find the file and # of answers per request (50 nodes, 75% p2p)")
			check(manetp2p.WriteFileCurves(os.Stdout, rs, 10))
		}},
		"fig6": {nodes: 150, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 6: distance to find the file and # of answers per request (150 nodes, 75% p2p)")
			check(manetp2p.WriteFileCurves(os.Stdout, rs, 10))
		}},
		"fig7": {nodes: 50, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 7: connect messages (50 nodes, 75% p2p)")
			check(manetp2p.WriteNodeSeries(os.Stdout, manetp2p.SeriesConnect, rs))
		}},
		"fig8": {nodes: 150, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 8: connect messages (150 nodes, 75% p2p)")
			check(manetp2p.WriteNodeSeries(os.Stdout, manetp2p.SeriesConnect, rs))
		}},
		"fig9": {nodes: 50, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 9: pings (50 nodes, 75% p2p)")
			check(manetp2p.WriteNodeSeries(os.Stdout, manetp2p.SeriesPing, rs))
		}},
		"fig10": {nodes: 150, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 10: pings (150 nodes, 75% p2p)")
			check(manetp2p.WriteNodeSeries(os.Stdout, manetp2p.SeriesPing, rs))
		}},
		"fig11": {nodes: 50, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 11: queries (50 nodes, 75% p2p)")
			check(manetp2p.WriteNodeSeries(os.Stdout, manetp2p.SeriesQuery, rs))
		}},
		"fig12": {nodes: 150, print: func(rs []*manetp2p.Result) {
			fmt.Println("# Figure 12: queries (150 nodes, 75% p2p)")
			check(manetp2p.WriteNodeSeries(os.Stdout, manetp2p.SeriesQuery, rs))
		}},
	}
	order := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}

	var wanted []string
	if *expFlag == "all" {
		wanted = order
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
			wanted = append(wanted, name)
		}
	}

	// Figures with the same node count share one set of runs.
	cache := map[int][]*manetp2p.Result{}
	runsFor := func(nodes int) []*manetp2p.Result {
		if rs, ok := cache[nodes]; ok {
			return rs
		}
		var rs []*manetp2p.Result
		for _, alg := range manetp2p.Algorithms() {
			sc := manetp2p.DefaultScenario(nodes, alg)
			sc.Replications = *reps
			sc.Seed = *seed
			if !*quiet {
				fmt.Fprintf(os.Stderr, "running %s x%d reps...", sc.Name, *reps)
			}
			start := time.Now()
			res, err := manetp2p.Run(sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, " done in %v\n", time.Since(start).Round(time.Millisecond))
			}
			rs = append(rs, res)
		}
		cache[nodes] = rs
		return rs
	}

	for i, name := range wanted {
		if i > 0 {
			fmt.Println()
		}
		exp := experiments[name]
		var rs []*manetp2p.Result
		if exp.nodes > 0 {
			rs = runsFor(exp.nodes)
		}
		exp.print(rs)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
