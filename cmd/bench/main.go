// Command bench runs the tracked benchmark suite (benchsuite.go) and
// writes the results as machine-readable JSON, so the repository's perf
// trajectory is recorded per PR instead of living in commit messages.
//
// Usage:
//
//	bench                      # writes BENCH.json
//	bench -o BENCH_2.json      # explicit output path ('-' = stdout)
//	bench -benchtime 3s -run FullReplication
//	bench -baseline BENCH_7.json   # gate against the committed baseline
//
// Each benchmark runs -rounds times (default 3) and the fastest round
// is reported: the minimum is the round least disturbed by scheduler
// preemption or VM CPU steal, which keeps the ns/op gate meaningful on
// noisy CI hardware.
//
// With -baseline, the run is compared against the committed baseline
// after writing the report: any allocs/op increase on a benchmark the
// baseline holds at 0 allocs/op fails, and a >20% ns/op regression
// fails when the baseline was recorded on comparable hardware (same
// GOOS/GOARCH/CPU count — ns/op across different machines is noise, so
// those comparisons are skipped with a warning). A missing baseline
// file or -o equal to the baseline (regenerating it) skips the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"manetp2p"
)

// benchResult is one benchmark's measurement, mirroring the columns of
// `go test -bench -benchmem` output.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Timestamp  string        `json:"timestamp"`
	BenchTime  string        `json:"bench_time"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	// Register the testing flags first so -benchtime can be forwarded to
	// testing.Benchmark below.
	testing.Init()
	var (
		out       = flag.String("o", "BENCH.json", "output path for the JSON report ('-' = stdout)")
		benchtime = flag.String("benchtime", "1s", "per-benchmark time budget (forwarded to the testing package)")
		rounds    = flag.Int("rounds", 3, "runs per benchmark; the fastest is reported (min-of-N rejects scheduler/VM noise)")
		run       = flag.String("run", "", "only run benchmarks whose name contains this substring")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against: fail on >20% ns/op regression (comparable hardware only) or any allocs/op increase on 0-alloc benchmarks")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		BenchTime: *benchtime,
	}
	for _, spec := range manetp2p.TrackedBenchmarks() {
		if *run != "" && !strings.Contains(spec.Name, *run) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
		// Min-of-N: the minimum is the run least disturbed by scheduler
		// preemption and (on virtualized CI boxes) CPU steal, so it is a
		// far more stable statistic than any single run — one quiet round
		// suffices for a faithful number. allocs/op is deterministic
		// across rounds; ns/op is what the extra rounds stabilize.
		var best testing.BenchmarkResult
		for i := 0; i < *rounds; i++ {
			r := testing.Benchmark(spec.Fn)
			if i == 0 || float64(r.T.Nanoseconds())/float64(r.N) < float64(best.T.Nanoseconds())/float64(best.N) {
				best = r
			}
		}
		r := best
		res := benchResult{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "  %d iterations, %.1f ns/op, %d B/op, %d allocs/op\n",
			res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *baseline != "" && *baseline != *out {
		if !gate(rep, *baseline) {
			os.Exit(1)
		}
	}
}

// maxRegression is the ns/op slack against the baseline before the
// gate fails: 20% absorbs run-to-run noise while still catching real
// hot-path regressions.
const maxRegression = 1.20

// gate compares the fresh report against the committed baseline and
// reports whether it passes. Allocation counts are machine-independent
// and gate unconditionally: a benchmark the baseline holds at 0
// allocs/op must stay at 0. ns/op gates only when the baseline was
// recorded in a comparable environment.
func gate(rep report, path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gate: no baseline %s (%v); skipping comparison\n", path, err)
		return true
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "gate: unreadable baseline %s: %v\n", path, err)
		return false
	}
	comparable := base.GOOS == rep.GOOS && base.GOARCH == rep.GOARCH && base.NumCPU == rep.NumCPU
	if !comparable {
		fmt.Fprintf(os.Stderr, "gate: baseline environment %s/%s/%d CPUs differs from %s/%s/%d; ns/op not compared\n",
			base.GOOS, base.GOARCH, base.NumCPU, rep.GOOS, rep.GOARCH, rep.NumCPU)
	}
	byName := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	ok := true
	for _, cur := range rep.Benchmarks {
		b, found := byName[cur.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "gate: %s has no baseline entry (new benchmark); skipping\n", cur.Name)
			continue
		}
		if b.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "gate: FAIL %s allocates %d/op; baseline holds it at 0\n",
				cur.Name, cur.AllocsPerOp)
			ok = false
		}
		if comparable && cur.NsPerOp > b.NsPerOp*maxRegression {
			fmt.Fprintf(os.Stderr, "gate: FAIL %s %.1f ns/op exceeds baseline %.1f by more than %d%%\n",
				cur.Name, cur.NsPerOp, b.NsPerOp, int(maxRegression*100)-100)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(os.Stderr, "gate: pass against %s\n", path)
	}
	return ok
}
