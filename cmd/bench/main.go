// Command bench runs the tracked benchmark suite (benchsuite.go) and
// writes the results as machine-readable JSON, so the repository's perf
// trajectory is recorded per PR instead of living in commit messages.
//
// Usage:
//
//	bench                      # writes BENCH.json
//	bench -o BENCH_2.json      # explicit output path ('-' = stdout)
//	bench -benchtime 3s -run FullReplication
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"manetp2p"
)

// benchResult is one benchmark's measurement, mirroring the columns of
// `go test -bench -benchmem` output.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Timestamp  string        `json:"timestamp"`
	BenchTime  string        `json:"bench_time"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	// Register the testing flags first so -benchtime can be forwarded to
	// testing.Benchmark below.
	testing.Init()
	var (
		out       = flag.String("o", "BENCH.json", "output path for the JSON report ('-' = stdout)")
		benchtime = flag.String("benchtime", "1s", "per-benchmark time budget (forwarded to the testing package)")
		run       = flag.String("run", "", "only run benchmarks whose name contains this substring")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		BenchTime: *benchtime,
	}
	for _, spec := range manetp2p.TrackedBenchmarks() {
		if *run != "" && !strings.Contains(spec.Name, *run) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
		r := testing.Benchmark(spec.Fn)
		res := benchResult{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "  %d iterations, %.1f ns/op, %d B/op, %d allocs/op\n",
			res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
