package manetp2p

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := DefaultScenario(150, Hybrid)
	sc.Seed = 42
	sc.Quals = DeviceClasses()
	sc.Routing = RoutingDSR
	sc.Churn = ChurnConfig{MeanUptime: 600 * sim.Second, MeanDowntime: 60 * sim.Second}
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 150 || got.Algorithm != Hybrid || got.Seed != 42 {
		t.Errorf("round trip lost scalars: %+v", got)
	}
	if got.Routing != RoutingDSR {
		t.Errorf("Routing = %v, want DSR", got.Routing)
	}
	if got.Churn.MeanUptime != 600*sim.Second {
		t.Errorf("Churn lost: %+v", got.Churn)
	}
	if len(got.Quals.Classes) != 3 {
		t.Errorf("qualifier classes lost: %+v", got.Quals)
	}
}

func TestScenarioJSONPartialFillsDefaults(t *testing.T) {
	got, err := UnmarshalJSONScenario([]byte(`{"NumNodes": 80, "Replications": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 80 || got.Replications != 7 {
		t.Errorf("explicit fields lost: %+v", got)
	}
	if got.Range != 10 || got.Params.MaxNConn != 3 {
		t.Errorf("defaults not filled: Range=%v MaxNConn=%d", got.Range, got.Params.MaxNConn)
	}
}

func TestScenarioJSONRejectsInvalid(t *testing.T) {
	if _, err := UnmarshalJSONScenario([]byte(`{"NumNodes": -3}`)); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := UnmarshalJSONScenario([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestSaveAndLoadScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	sc := DefaultScenario(30, Random)
	sc.Seed = 9
	if err := SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"Seed\": 9") {
		t.Errorf("file content unexpected:\n%s", data)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 30 || got.Algorithm != Random || got.Seed != 9 {
		t.Errorf("loaded scenario = %+v", got)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	sc := quickScenario(Regular, 12)
	sc.Duration = 120 * sim.Second
	sc.Replications = 1
	if err := SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(loaded); err != nil {
		t.Fatal(err)
	}
}
