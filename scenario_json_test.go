package manetp2p

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := DefaultScenario(150, Hybrid)
	sc.Seed = 42
	sc.Quals = DeviceClasses()
	sc.Routing = RoutingDSR
	sc.Churn = ChurnConfig{MeanUptime: 600 * sim.Second, MeanDowntime: 60 * sim.Second}
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 150 || got.Algorithm != Hybrid || got.Seed != 42 {
		t.Errorf("round trip lost scalars: %+v", got)
	}
	if got.Routing != RoutingDSR {
		t.Errorf("Routing = %v, want DSR", got.Routing)
	}
	if got.Churn.MeanUptime != 600*sim.Second {
		t.Errorf("Churn lost: %+v", got.Churn)
	}
	if len(got.Quals.Classes) != 3 {
		t.Errorf("qualifier classes lost: %+v", got.Quals)
	}
}

func TestScenarioJSONFaultsRoundTrip(t *testing.T) {
	sc := DefaultScenario(50, Regular)
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(600*sim.Second, 60*sim.Second, AxisY, 50),
		JamFault(900*sim.Second, 120*sim.Second, 25, 75, 20, 0.9),
		LossBurstFault(1200*sim.Second, 30*sim.Second, 0.5),
		CrashGroupFault(1500*sim.Second, 300*sim.Second, 10),
		LinkFlapFault(1800*sim.Second, 240*sim.Second, 20*sim.Second, 5*sim.Second),
	}}
	sc.HealthEvery = 5 * sim.Second
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Faults, sc.Faults) {
		t.Errorf("fault plan changed in round trip:\n got %+v\nwant %+v", got.Faults, sc.Faults)
	}
	if got.HealthEvery != 5*sim.Second {
		t.Errorf("HealthEvery = %v, want 5s", got.HealthEvery)
	}
	// Every event type survives with its kind-specific fields.
	evs := got.Faults.Events
	if evs[0].Kind != FaultPartition || evs[0].Axis != AxisY || evs[0].Pos != 50 {
		t.Errorf("partition fields lost: %+v", evs[0])
	}
	if evs[1].Kind != FaultJam || evs[1].Radius != 20 || evs[1].Loss != 0.9 ||
		evs[1].Center.X != 25 || evs[1].Center.Y != 75 {
		t.Errorf("jam fields lost: %+v", evs[1])
	}
	if evs[2].Kind != FaultLossBurst || evs[2].Loss != 0.5 {
		t.Errorf("lossburst fields lost: %+v", evs[2])
	}
	if evs[3].Kind != FaultCrashGroup || evs[3].Count != 10 {
		t.Errorf("crashgroup fields lost: %+v", evs[3])
	}
	if evs[4].Kind != FaultLinkFlap || evs[4].Period != 20*sim.Second || evs[4].DownFor != 5*sim.Second {
		t.Errorf("linkflap fields lost: %+v", evs[4])
	}
}

func TestScenarioJSONRejectsUnknownFaultType(t *testing.T) {
	_, err := UnmarshalJSONScenario([]byte(
		`{"Faults": {"events": [{"type": "meteor", "at": 1, "duration": 1}]}}`))
	if err == nil {
		t.Fatal("unknown fault event type accepted")
	}
	msg := err.Error()
	for _, want := range []string{"meteor", "partition", "jam", "lossburst", "crashgroup", "linkflap"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestScenarioJSONRejectsInvalidFaultPlan(t *testing.T) {
	// Well-formed JSON, semantically invalid plan: duration missing.
	_, err := UnmarshalJSONScenario([]byte(
		`{"Faults": {"events": [{"type": "partition", "at": 10}]}}`))
	if err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

func TestScenarioJSONWorkloadRoundTrip(t *testing.T) {
	sc := DefaultScenario(50, Regular)
	sc.Workload = &WorkloadPlan{
		Arrival:    WorkloadArrival{Process: ArrivalDiurnal, Rate: 0.05, Period: 1200 * sim.Second, Amplitude: 0.6},
		Popularity: WorkloadPopularity{Skew: 1.3, DriftPerHour: -0.2, RotateEvery: 300 * sim.Second, RotateStep: 2},
		Sessions:   DefaultWorkloadSessions(),
		Phases: []WorkloadPhase{
			{Name: "steady"},
			{Name: "flash", Start: 900 * sim.Second, RateScale: 4, HotFiles: 2, HotBoost: 0.9},
		},
	}
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload == nil {
		t.Fatal("workload plan dropped in round trip")
	}
	if !reflect.DeepEqual(got.Workload, sc.Workload) {
		t.Errorf("workload plan changed in round trip:\n got %+v\nwant %+v", got.Workload, sc.Workload)
	}
}

func TestScenarioJSONAbsentWorkloadStaysNil(t *testing.T) {
	got, err := UnmarshalJSONScenario([]byte(`{"NumNodes": 40}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != nil {
		t.Fatalf("absent workload decoded as %+v, want nil (built-in demand model)", got.Workload)
	}
	data, err := MarshalJSONScenario(got)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Workload") {
		t.Error("nil workload plan serialized instead of being omitted")
	}
}

func TestScenarioJSONRejectsUnknownWorkloadProcess(t *testing.T) {
	_, err := UnmarshalJSONScenario([]byte(
		`{"Workload": {"arrival": {"process": "pareto"}}}`))
	if err == nil {
		t.Fatal("unknown arrival process accepted")
	}
	msg := err.Error()
	for _, want := range []string{"pareto", "uniform", "poisson", "onoff", "diurnal"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestScenarioJSONRejectsInvalidWorkload(t *testing.T) {
	// Well-formed JSON, semantically invalid plan: poisson with no rate.
	_, err := UnmarshalJSONScenario([]byte(
		`{"Workload": {"arrival": {"process": "poisson"}}}`))
	if err == nil {
		t.Fatal("invalid workload plan accepted")
	}
}

func TestScenarioJSONRejectsUnknownField(t *testing.T) {
	_, err := UnmarshalJSONScenario([]byte(`{"NumNodes": 40, "NumNodez": 50}`))
	if err == nil {
		t.Fatal("misspelled scenario field silently ignored")
	}
	if !strings.Contains(err.Error(), "NumNodez") {
		t.Errorf("error %q does not name the unknown field", err)
	}
}

func TestSaveAndLoadWorkloadPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	plan := &WorkloadPlan{
		Arrival:  WorkloadArrival{Process: ArrivalPoisson, Rate: 0.1},
		Sessions: DefaultWorkloadSessions(),
	}
	if err := SaveWorkloadPlan(path, plan); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorkloadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plan) {
		t.Errorf("plan changed in save/load:\n got %+v\nwant %+v", got, plan)
	}
	if _, err := LoadWorkloadPlan(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing plan file accepted")
	}
}

func TestScenarioJSONPartialFillsDefaults(t *testing.T) {
	got, err := UnmarshalJSONScenario([]byte(`{"NumNodes": 80, "Replications": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 80 || got.Replications != 7 {
		t.Errorf("explicit fields lost: %+v", got)
	}
	if got.Range != 10 || got.Params.MaxNConn != 3 {
		t.Errorf("defaults not filled: Range=%v MaxNConn=%d", got.Range, got.Params.MaxNConn)
	}
}

func TestScenarioJSONRejectsInvalid(t *testing.T) {
	if _, err := UnmarshalJSONScenario([]byte(`{"NumNodes": -3}`)); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := UnmarshalJSONScenario([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestSaveAndLoadScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	sc := DefaultScenario(30, Random)
	sc.Seed = 9
	if err := SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"Seed\": 9") {
		t.Errorf("file content unexpected:\n%s", data)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 30 || got.Algorithm != Random || got.Seed != 9 {
		t.Errorf("loaded scenario = %+v", got)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	sc := quickScenario(Regular, 12)
	sc.Duration = 120 * sim.Second
	sc.Replications = 1
	if err := SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(loaded); err != nil {
		t.Fatal(err)
	}
}
