package manetp2p

import (
	"runtime"
	"sync"

	"manetp2p/internal/graphs"
	"manetp2p/internal/manet"
	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
	"manetp2p/internal/stats"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/workload"
)

// FileCurve is one point of Figures 5–6: per file rank, the average
// minimum distance to a holder and the average number of answers.
type FileCurve struct {
	File      int           // rank, 0 = most popular
	Requests  int           // requests issued for this file (all reps)
	FoundRate float64       // fraction of requests answered at all
	Distance  stats.Summary // min p2p hops to a holder, found requests
	AdhocDist stats.Summary // min ad-hoc hops to a holder, found requests
	Answers   stats.Summary // answers per request, all requests
}

// OverlayStats aggregates overlay-graph snapshots for the small-world
// analysis (§6.1.2 and the paper's closing discussion).
type OverlayStats struct {
	Samples          int
	Clustering       stats.Summary
	PathLength       stats.Summary
	LargestComponent stats.Summary // fraction of members
	MeanDegree       stats.Summary
}

// RoutingStats pools the per-node routing-effort counters — the unified
// netif.Stats contract every routing substrate implements — over all
// replications: one Summary per counter, with NumNodes × Replications
// samples behind each. This is what lets `sweep -axis routing` compare
// what the routing layer spent, not just what the overlay received.
type RoutingStats struct {
	Protocol       string        // routing substrate name (AODV, DSR, ...)
	CtrlOrig       stats.Summary // protocol control frames originated per node
	CtrlRelayed    stats.Summary // protocol control frames re-forwarded
	BcastOrig      stats.Summary // controlled broadcasts originated
	BcastRelayed   stats.Summary // controlled broadcasts re-forwarded
	DataSent       stats.Summary // locally originated data attempts
	DataForwarded  stats.Summary // transit data relayed
	DataDropped    stats.Summary // data abandoned
	Delivered      stats.Summary // upper-layer deliveries dispatched
	Discoveries    stats.Summary // route discoveries started
	DiscoverFailed stats.Summary // discoveries abandoned
	SendFailed     stats.Summary // payloads reported undeliverable
	DupHits        stats.Summary // duplicate-cache suppressions
}

// safeRatio divides a by b, returning 0 for a zero denominator so every
// derived ratio stays finite — no NaN or ±Inf ever reaches a report,
// however degenerate the replications (nothing delivered, nothing
// offered, no churn). One shared guard (telemetry.SafeRatio) backs all
// derived ratios: routing overhead, workload success, churn repair.
func safeRatio(a, b float64) float64 { return telemetry.SafeRatio(a, b) }

// ControlPerDelivered derives the headline overhead ratio: control-plane
// frames (protocol signalling + controlled-broadcast relays) per
// upper-layer delivery. Zero when nothing was delivered.
func (r *RoutingStats) ControlPerDelivered() float64 {
	if r == nil {
		return 0
	}
	ctrl := r.CtrlOrig.Mean + r.CtrlRelayed.Mean + r.BcastOrig.Mean + r.BcastRelayed.Mean
	return safeRatio(ctrl, r.Delivered.Mean)
}

// SendFailRate derives the fraction of locally originated data attempts
// reported undeliverable. Zero when nothing was sent.
func (r *RoutingStats) SendFailRate() float64 {
	if r == nil {
		return 0
	}
	return safeRatio(r.SendFailed.Mean, r.DataSent.Mean)
}

// WorkloadClassStats is one session class's pooled outcome.
type WorkloadClassStats struct {
	Name   string
	Nodes  stats.Summary // class population per replication
	Issued stats.Summary // queries issued by the class per replication
}

// WorkloadStats aggregates the demand engine's telemetry over all
// replications: the conservation ledger (one Summary per counter, one
// sample per replication), the derived success rate, pooled latency
// distributions, and the churn-repair cost.
type WorkloadStats struct {
	Offered  stats.Summary // demand arrivals (first offers, not retries)
	Retries  stats.Summary // arrivals while earlier demand was unserved
	Issued   stats.Summary // queries actually sent
	Resolved stats.Summary // demands answered
	Expired  stats.Summary // query windows closed unanswered
	Aborted  stats.Summary // windows cut short by churn/crash/death
	InFlight stats.Summary // windows still open at the horizon

	// SuccessRate is resolved demand over offered demand across all
	// replications — the success rate under churn.
	SuccessRate float64

	TTFR       stats.Summary // seconds from query issue to first answer
	Completion stats.Summary // seconds from demand arrival to first answer

	ChurnEvents stats.Summary // churn departures per replication
	// RepairPerChurn is the overlay repair cost: connect-class messages
	// received per churn departure, across all replications. Zero when
	// nothing churned.
	RepairPerChurn float64

	Classes []WorkloadClassStats
}

// Result aggregates a scenario's replications.
type Result struct {
	Scenario Scenario

	// Figures 5–6: indexed by file rank.
	PerFile []FileCurve

	// Figures 7–12: per-member received-message counts, decreasingly
	// ordered within each replication, then averaged rank-wise.
	ConnectSeries []float64
	PingSeries    []float64
	PongSeries    []float64
	QuerySeries   []float64
	HitSeries     []float64

	// Per-node totals pooled over replications.
	Totals [telemetry.NumClasses]stats.Summary

	// Network-layer effort.
	RxFrames stats.Summary // radio frames received per node
	TxFrames stats.Summary // radio frames transmitted per node

	// Extensions.
	Overlay      OverlayStats
	Deaths       stats.Summary // battery deaths per replication
	EnergySpent  stats.Summary // joules per node (tx+rx), finite-energy runs
	ConnLifetime stats.Summary // seconds a connection survives (closed ones)

	// Time series sampled every SnapshotEvery (empty when snapshots are
	// off): fraction of members alive, mean overlay degree — the
	// network-lifetime curves of the churn/energy studies.
	AliveSeries  []float64
	DegreeSeries []float64

	// Message-rate series per TrafficBucket (empty when off): messages
	// received per member per bucket — shows the reconfiguration burst
	// at network formation and the steady state after it.
	ConnectTraffic []float64
	QueryTraffic   []float64

	// Resilience telemetry and per-fault recovery metrics (nil when
	// sampling is off — no Faults plan and no HealthEvery).
	Resilience *Resilience

	// Routing pools the routing-layer effort counters of every node
	// over all replications. Omitted from fixtures generated before the
	// unified netif.Stats contract existed (goldenMarshal strips it);
	// populated for every routing substrate since.
	Routing *RoutingStats `json:",omitempty"`

	// Invariants reports the runtime invariant checker's findings (nil
	// when Scenario.Invariants is off).
	Invariants *InvariantReport `json:",omitempty"`

	// Workload reports the demand engine's telemetry (nil when
	// Scenario.Workload is unset, keeping older fixtures byte-identical).
	Workload *WorkloadStats `json:",omitempty"`
}

// repResult carries one replication's raw measurements to aggregation.
type repResult struct {
	requests   []telemetry.Request
	series     [telemetry.NumClasses][]float64
	totals     [telemetry.NumClasses][]float64
	rxFrames   []float64
	txFrames   []float64
	clust      []float64
	pathLen    []float64
	largest    []float64
	meanDeg    []float64
	alive      []float64 // per snapshot: fraction of members joined
	degSeries  []float64 // per snapshot: mean overlay degree
	connRate   []float64 // per bucket: connect msgs per member
	queryRate  []float64 // per bucket: query msgs per member
	deaths     float64
	energy     []float64
	lifetimes  []float64
	health     []telemetry.HealthSample // resilience telemetry samples
	routing    []netif.Stats            // per-node routing-effort counters
	members    int                      // overlay membership size
	checked    bool                     // the invariant checker validated this replication
	violTotal  int                      // invariant breaches detected (including past the cap)
	violations []InvariantViolation     // recorded breaches, detection order
	workload   *workload.Telemetry      // demand telemetry (nil without a plan)
	churnit    float64                  // churn departures executed
	err        error
}

// Pool is a shared replication-worker budget. Every scenario run
// draws its parallelism from the pool's slots, so several scenarios
// running concurrently (the sweep grid) together never exceed the
// budget — instead of each claiming its own GOMAXPROCS workers. A Pool
// is safe for concurrent use by multiple goroutines.
type Pool struct {
	slots chan struct{}
}

// NewPool creates a pool with the given number of worker slots;
// workers <= 0 defaults to GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Run executes all replications of the scenario under the pool's
// budget and aggregates the paper's telemetry. Replications are
// deterministic regardless of scheduling (each seeds its own RNG
// streams and lands in its own result slot), so a pooled run returns
// exactly what a sequential one does. A positive Scenario.Workers
// additionally caps this scenario's own concurrency below the pool's.
func (p *Pool) Run(sc Scenario) (*Result, error) {
	reps, err := p.runReps(sc)
	if err != nil {
		return nil, err
	}
	return aggregate(sc, reps), nil
}

// runReps executes all replications under the pool's budget and returns
// their raw per-replication records.
func (p *Pool) runReps(sc Scenario) ([]repResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var local chan struct{}
	if sc.Workers > 0 {
		local = make(chan struct{}, sc.Workers)
	}
	reps := make([]repResult, sc.Replications)
	var wg sync.WaitGroup
	for r := 0; r < sc.Replications; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if local != nil {
				local <- struct{}{}
				defer func() { <-local }()
			}
			p.slots <- struct{}{}
			defer func() { <-p.slots }()
			reps[r] = runReplication(sc, r)
		}(r)
	}
	wg.Wait()

	for _, rr := range reps {
		if rr.err != nil {
			return nil, rr.err
		}
	}
	return reps, nil
}

// Run executes all replications of the scenario concurrently and
// aggregates the paper's telemetry.
func Run(sc Scenario) (*Result, error) {
	return NewPool(sc.Workers).Run(sc)
}

// runReplication builds, instruments and runs one replication.
func runReplication(sc Scenario, rep int) repResult {
	r, err := startReplication(sc, rep)
	if err != nil {
		return repResult{err: err}
	}
	r.runTo(sc.Duration)
	return r.finish()
}

// repRun is one in-flight replication: built and instrumented, but not
// yet (fully) executed. The checkpoint machinery drives it in segments
// — runTo at each boundary, digest, persist — where the plain path runs
// it in one piece; segmenting Sim.Run is behavior-neutral, so both
// produce identical results.
type repRun struct {
	sc  Scenario
	rep int
	net *manet.Network
	rr  repResult
}

// startReplication builds and instruments one replication, advanced to
// t=0 (nothing executed yet).
func startReplication(sc Scenario, rep int) (*repRun, error) {
	net, err := manet.Build(sc.manetConfig(rep))
	if err != nil {
		return nil, err
	}
	r := &repRun{sc: sc, rep: rep, net: net}

	if sc.SnapshotEvery > 0 {
		// One Analyzer per replication: after the first tick warms its
		// scratch, each snapshot is allocation-free (vs. rebuilding a
		// graphs.Graph — maps, per-node slices — every tick). The method
		// value is bound outside the closure so ticks don't re-allocate it.
		an := new(graphs.Analyzer)
		isMember := net.IsMember
		sim.NewTicker(net.Sim, sc.SnapshotEvery, func() {
			net.AppendOverlayAdjacency(&an.S)
			m := an.Analyze(isMember)
			r.rr.clust = append(r.rr.clust, m.Clustering)
			if m.Pairs > 0 {
				r.rr.pathLen = append(r.rr.pathLen, m.PathLength)
			}
			r.rr.largest = append(r.rr.largest, m.Largest)
			deg, members := 0, 0
			for _, id := range net.Members() {
				if sv := net.Servents[id]; sv != nil && sv.Joined() {
					deg += sv.ConnCount()
					members++
				}
			}
			if members > 0 {
				r.rr.meanDeg = append(r.rr.meanDeg, float64(deg)/float64(members))
				r.rr.degSeries = append(r.rr.degSeries, float64(deg)/float64(members))
			} else {
				r.rr.degSeries = append(r.rr.degSeries, 0)
			}
			r.rr.alive = append(r.rr.alive, float64(net.AliveMembers())/float64(len(net.Members())))
		})
	}
	return r, nil
}

// runTo advances the replication to absolute simulation time t.
func (r *repRun) runTo(t sim.Time) { r.net.Sim.Run(t) }

// finish extracts the measurements after the replication has run to its
// horizon: one registry walk over every layer's Collect hook (see
// telemetry_sections.go). Call exactly once.
func (r *repRun) finish() repResult {
	sections.Collect(r, &r.rr)
	return r.rr
}

// aggregate folds replication results into a Result: one registry walk
// over every layer's Pool hook (see telemetry_sections.go) — there is
// no per-subsystem aggregation code here.
func aggregate(sc Scenario, reps []repResult) *Result {
	res := &Result{Scenario: sc}
	sections.Pool(sc, repPtrs(reps), res)
	return res
}

// repPtrs is the pointer view of the replication slots the section
// hooks operate on.
func repPtrs(reps []repResult) []*repResult {
	ptrs := make([]*repResult, len(reps))
	for i := range reps {
		ptrs[i] = &reps[i]
	}
	return ptrs
}
