package route

import (
	"testing"

	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
)

func testCore(seed int64) (*Core, *sim.Sim) {
	s := sim.New(seed)
	return NewCore(0, s), s
}

func TestDupCacheSeenRespectsTimeout(t *testing.T) {
	c, s := testCore(1)
	dc := NewDupCache(c, CacheConfig{Timeout: 10 * sim.Second})
	k := Key{Origin: 3, ID: 7}
	if dc.Seen(k) {
		t.Fatal("unmarked key reported seen")
	}
	dc.Mark(k)
	if !dc.Seen(k) {
		t.Fatal("fresh mark not seen")
	}
	s.Run(10 * sim.Second) // clock stands at the horizon even with no events
	if dc.Seen(k) {
		t.Fatal("entry still seen at exactly its timeout")
	}
}

func TestDupCacheSoftCapSweepsExpiredOnly(t *testing.T) {
	c, s := testCore(2)
	dc := NewDupCache(c, CacheConfig{Timeout: 5 * sim.Second, SoftCap: 8, HardCap: 1 << 20})
	for i := 0; i < 8; i++ {
		dc.Mark(Key{Origin: 1, ID: uint32(i)})
	}
	s.Run(6 * sim.Second)
	dc.Mark(Key{Origin: 2, ID: 0}) // 9th entry: no sweep yet (len was at cap)
	dc.Mark(Key{Origin: 2, ID: 1}) // len now past SoftCap: sweeps expired
	if got := dc.Len(); got != 2 {
		t.Fatalf("Len = %d after sweep, want 2 (only the fresh marks)", got)
	}
	if !dc.Seen(Key{Origin: 2, ID: 0}) || !dc.Seen(Key{Origin: 2, ID: 1}) {
		t.Fatal("sweep evicted a fresh entry")
	}
}

func TestDupCacheHardCapEvictsOldestDeterministically(t *testing.T) {
	c, _ := testCore(3)
	dc := NewDupCache(c, CacheConfig{Timeout: 60 * sim.Minute, SoftCap: 4, HardCap: 8})
	// All marks at t=0: nothing ever expires, so crossing the hard cap
	// must evict fresh entries down to 3/4 of the cap.
	for i := 0; i < 100; i++ {
		dc.Mark(Key{Origin: 1, ID: uint32(i)})
	}
	if got := dc.Len(); got > 8 {
		t.Fatalf("Len = %d, want <= HardCap 8", got)
	}
	// Same-timestamp eviction breaks ties by (origin, id), so the
	// surviving set is exactly the highest IDs — rerunning is identical.
	if !dc.Seen(Key{Origin: 1, ID: 99}) {
		t.Fatal("newest-ranked entry evicted")
	}
	if dc.Seen(Key{Origin: 1, ID: 0}) {
		t.Fatal("oldest-ranked entry survived eviction")
	}
}

func TestPendingPushRespectsCap(t *testing.T) {
	p := NewPending[int](2)
	d := p.Start(5)
	if !p.Push(d, 10) || !p.Push(d, 11) {
		t.Fatal("pushes under cap rejected")
	}
	if p.Push(d, 12) {
		t.Fatal("push over cap accepted")
	}
	if len(d.Queue) != 2 {
		t.Fatalf("queue = %v, want 2 entries", d.Queue)
	}
}

func TestPendingCurrentDetectsSupersession(t *testing.T) {
	p := NewPending[int](4)
	d1 := p.Start(5)
	if !p.Current(5, d1) {
		t.Fatal("live entry not current")
	}
	p.Drop(5)
	d2 := p.Start(5)
	if p.Current(5, d1) {
		t.Fatal("dropped entry still current")
	}
	if !p.Current(5, d2) {
		t.Fatal("replacement entry not current")
	}
}

func TestPendingTakeCancelsTimer(t *testing.T) {
	c, s := testCore(4)
	_ = c
	p := NewPending[int](4)
	d := p.Start(5)
	fired := false
	d.Timer = s.ScheduleArg(sim.Second, func(sim.Arg) { fired = true }, sim.Arg{})
	got, ok := p.Take(5)
	if !ok || got != d {
		t.Fatal("Take did not return the live entry")
	}
	s.Run(2 * sim.Second)
	if fired {
		t.Fatal("Take left the retry timer armed")
	}
	if _, ok := p.Get(5); ok {
		t.Fatal("entry still registered after Take")
	}
}

func TestCoreSelfDeliverIsAsynchronous(t *testing.T) {
	c, s := testCore(5)
	var got []int
	c.OnUnicast(func(d netif.Delivery) { got = append(got, d.Hops) })
	c.SelfDeliver(netif.TestMsg(1))
	if len(got) != 0 {
		t.Fatal("self delivery ran synchronously")
	}
	s.Run(sim.Second)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("deliveries = %v, want one at 0 hops", got)
	}
	if c.Stats().Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", c.Stats().Delivered)
	}
}
