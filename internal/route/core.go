// Package route is the shared control-plane core under the four routing
// substrates (aodv, dsr, dsdv, flood). Before it existed each router
// privately reimplemented the same four mechanisms; they now live here
// exactly once:
//
//   - Core: the delivery-dispatch path — upper-layer hooks, asynchronous
//     self-delivery, send-failure reporting — plus the netif.Stats
//     counter block.
//   - DupCache: the TTL-bounded duplicate-suppression cache with one
//     uniform pruning policy (age sweep past a soft cap, deterministic
//     oldest-first eviction past a hard cap).
//   - Bcaster: the paper's controlled broadcast (§5/§7): TTL-limited
//     flood relay with per-node duplicate suppression, protocol side
//     effects delegated to small hooks.
//   - Pending: the per-destination pending-send buffer that parks
//     payloads while a route is discovered (or, for DSDV, settles).
//
// Everything here is deterministic and draws no randomness: map
// iteration only ever deletes provably-stale entries or feeds a sorted
// eviction, so a replication built on this package is bit-identical to
// one built on the four private copies it replaced (golden fixtures
// prove it).
package route

import (
	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
)

// Core is the per-node dispatch half of the control plane. Routers embed
// *Core and inherit the netif.Protocol hook surface (ID, OnUnicast,
// OnBroadcast, OnSendFailed, Stats) plus the delivery helpers.
type Core struct {
	id  int
	sim *sim.Sim

	// Count is the unified routing-effort counter block. Shared
	// mechanisms (dispatch, duplicate caches) maintain their counters
	// here; protocol code increments the protocol-specific ones.
	Count netif.Stats

	caches []*DupCache // registered for SeenEntries/SeenBound

	onUnicast    func(netif.Delivery)
	onBroadcast  func(netif.Delivery)
	onSendFailed func(dst int, payload netif.Msg)

	// Bound once at construction so self-delivery schedules without a
	// per-call closure allocation; selfQ carries the payloads in FIFO
	// order (one Schedule per SelfDeliver, so queue position and event
	// order agree).
	selfDeliverFn func()
	selfQ         []netif.Msg
	selfHead      int
}

// NewCore creates the dispatch core for node id.
func NewCore(id int, s *sim.Sim) *Core {
	c := &Core{id: id, sim: s}
	c.selfDeliverFn = c.selfDeliver
	return c
}

// ID returns the node this control plane belongs to.
func (c *Core) ID() int { return c.id }

// Now returns the current simulated time.
func (c *Core) Now() sim.Time { return c.sim.Now() }

// Stats returns the routing-effort counters accumulated so far.
func (c *Core) Stats() netif.Stats { return c.Count }

// OnUnicast installs the hook for data addressed to this node.
func (c *Core) OnUnicast(fn func(netif.Delivery)) { c.onUnicast = fn }

// OnBroadcast installs the hook for controlled-broadcast deliveries.
func (c *Core) OnBroadcast(fn func(netif.Delivery)) { c.onBroadcast = fn }

// OnSendFailed installs the hook invoked when a payload is abandoned
// undeliverable.
func (c *Core) OnSendFailed(fn func(dst int, payload netif.Msg)) { c.onSendFailed = fn }

// DeliverUnicast dispatches a unicast arrival to the upper layer.
func (c *Core) DeliverUnicast(from, hops int, payload netif.Msg) {
	c.Count.Delivered++
	if c.onUnicast != nil {
		c.onUnicast(netif.Delivery{From: from, Hops: hops, Payload: payload})
	}
}

// DeliverBroadcast dispatches a controlled-broadcast arrival.
func (c *Core) DeliverBroadcast(from, hops int, payload netif.Msg) {
	c.Count.Delivered++
	if c.onBroadcast != nil {
		c.onBroadcast(netif.Delivery{From: from, Hops: hops, Payload: payload})
	}
}

// FailSend reports a payload abandoned undeliverable. Every fail path in
// every protocol funnels through here, which is what makes the
// fires-exactly-once conformance property and the SendFailed counter
// trustworthy.
func (c *Core) FailSend(dst int, payload netif.Msg) {
	c.Count.SendFailed++
	if c.onSendFailed != nil {
		c.onSendFailed(dst, payload)
	}
}

// SelfDeliver completes a Send addressed to this node on the next
// event-loop turn, like every remote delivery: asynchronously. The
// payload parks in the node's own FIFO instead of boxing into the
// event, so the schedule-and-fire round trip allocates nothing once
// the queue's backing array is warm.
func (c *Core) SelfDeliver(payload netif.Msg) {
	c.selfQ = append(c.selfQ, payload)
	c.sim.Schedule(0, c.selfDeliverFn)
}

func (c *Core) selfDeliver() {
	m := c.selfQ[c.selfHead]
	c.selfQ[c.selfHead] = netif.Msg{}
	c.selfHead++
	if c.selfHead == len(c.selfQ) {
		c.selfQ = c.selfQ[:0]
		c.selfHead = 0
	}
	c.DeliverUnicast(c.id, 0, m)
}

// SeenEntries sums the live entry counts of every duplicate cache this
// node registered — the observable the cache-bounding tests assert on.
func (c *Core) SeenEntries() int {
	n := 0
	for _, dc := range c.caches {
		n += dc.Len()
	}
	return n
}

// SeenBound returns the summed hard entry cap across the node's
// duplicate caches (0 with no caches registered) — the ceiling
// SeenEntries can never exceed, whatever traffic arrives.
func (c *Core) SeenBound() int {
	b := 0
	for _, dc := range c.caches {
		b += dc.cfg.HardCap
	}
	return b
}
