package route

import (
	"manetp2p/internal/radio"
)

// Bcast is the shared controlled-broadcast carrier. Every protocol's
// broadcast frame decodes into one of these; protocol-specific extras
// ride in the optional fields (OriginSeq for AODV's table piggyback,
// Path for DSR's route accumulation).
type Bcast struct {
	Origin    int
	OriginSeq uint32 // AODV: origin's sequence number, for table updates
	ID        uint32
	HopCount  int
	TTL       int
	Size      int   // upper-layer payload size
	Path      []int // DSR: nodes traversed so far, excluding the origin
	Payload   any
}

// Bcaster is the paper's controlled broadcast (§5/§7): a TTL-limited
// flood where each node relays a given (origin, id) at most once,
// enforced by a duplicate cache. The four protocols differ only in
// framing overhead and in small per-hop side effects, which plug in as
// hooks; the relay discipline itself lives here exactly once.
type Bcaster struct {
	core  *Core
	med   *radio.Medium
	cache *DupCache

	// HdrSize is the broadcast framing overhead added to the payload
	// size; PerHop is the additional per-recorded-hop overhead (DSR's
	// 4 bytes per path entry, 0 elsewhere).
	hdrSize int
	perHop  int

	// Disable turns off duplicate suppression (the AODV ablation flag):
	// re-arrivals still count as cache hits but are processed anyway.
	Disable bool

	// Accept runs on every first arrival, before delivery: table
	// updates, route learning. It returns the hop count to report
	// upward (DSR derives it from the path). Nil means use b.HopCount.
	Accept func(prev int, b *Bcast) int

	// PrepRelay mutates b just before the relay transmission (DSR
	// appends this node to the path here — after delivery, so the
	// reported path excludes the relaying node itself).
	PrepRelay func(b *Bcast)

	nextID uint32
}

// NewBcaster creates the broadcast relay for core's node with the given
// framing overheads and duplicate-cache bounds.
func NewBcaster(core *Core, med *radio.Medium, hdrSize, perHop int, cfg CacheConfig) *Bcaster {
	return &Bcaster{
		core:    core,
		med:     med,
		cache:   NewDupCache(core, cfg),
		hdrSize: hdrSize,
		perHop:  perHop,
	}
}

// Cache exposes the duplicate cache (the AODV RREQ path shares its
// pruning policy but keeps a separate cache; tests inspect bounds).
func (bc *Bcaster) Cache() *DupCache { return bc.cache }

// frameSize is the on-air size of b.
func (bc *Bcaster) frameSize(b *Bcast) int {
	return b.Size + bc.hdrSize + bc.perHop*len(b.Path)
}

// Originate floods a new broadcast from this node.
func (bc *Bcaster) Originate(ttl, size int, payload any, originSeq uint32) {
	bc.nextID++
	b := Bcast{
		Origin:    bc.core.id,
		OriginSeq: originSeq,
		ID:        bc.nextID,
		TTL:       ttl,
		Size:      size,
		Payload:   payload,
	}
	bc.cache.Mark(Key{Origin: b.Origin, ID: b.ID})
	bc.core.Count.BcastOrig++
	bc.med.Send(radio.Frame{Src: bc.core.id, Dst: radio.BroadcastAddr, Size: bc.frameSize(&b), Payload: b})
}

// Handle processes a broadcast arrival from neighbor prev: suppress
// duplicates, deliver upward, relay while TTL remains.
func (bc *Bcaster) Handle(prev int, b Bcast) {
	if b.Origin == bc.core.id {
		return
	}
	k := Key{Origin: b.Origin, ID: b.ID}
	if bc.cache.Seen(k) {
		bc.core.Count.DupHits++
		if !bc.Disable {
			return
		}
	}
	bc.cache.Mark(k)
	b.HopCount++
	hops := b.HopCount
	if bc.Accept != nil {
		hops = bc.Accept(prev, &b)
	}
	bc.core.DeliverBroadcast(b.Origin, hops, b.Payload)
	if b.TTL <= 1 {
		return
	}
	b.TTL--
	bc.core.Count.BcastRelayed++
	if bc.PrepRelay != nil {
		bc.PrepRelay(&b)
	}
	bc.med.Send(radio.Frame{Src: bc.core.id, Dst: radio.BroadcastAddr, Size: bc.frameSize(&b), Payload: b})
}
