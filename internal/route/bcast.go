package route

import (
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
)

// Bcaster is the paper's controlled broadcast (§5/§7): a TTL-limited
// flood where each node relays a given (origin, id) at most once,
// enforced by a duplicate cache. The four protocols differ only in
// framing overhead and in small per-hop side effects, which plug in as
// hooks; the relay discipline itself lives here exactly once.
//
// Broadcast frames are netif.Packet values of Kind PktBcast; the
// protocol-specific extras ride in the shared fields (OriginSeq for
// AODV's table piggyback, Path for DSR's route accumulation).
type Bcaster struct {
	core  *Core
	med   *radio.Medium
	cache *DupCache

	// HdrSize is the broadcast framing overhead added to the payload
	// size; PerHop is the additional per-recorded-hop overhead (DSR's
	// 4 bytes per path entry, 0 elsewhere).
	hdrSize int
	perHop  int

	// Disable turns off duplicate suppression (the AODV ablation flag):
	// re-arrivals still count as cache hits but are processed anyway.
	Disable bool

	// Accept runs on every first arrival, before delivery: table
	// updates, route learning. It returns the hop count to report
	// upward (DSR derives it from the path). Nil means use b.HopCount.
	Accept func(prev int, b *netif.Packet) int

	// PrepRelay mutates b just before the relay transmission (DSR
	// appends this node to the path here — after delivery, so the
	// reported path excludes the relaying node itself).
	PrepRelay func(b *netif.Packet)

	nextID uint32

	// scratch is the in-flight copy Handle mutates and hands to the
	// hooks. Routing it through a struct field instead of the stack
	// keeps the packet from escaping to the heap at every relay (the
	// hooks take a pointer); safe because frame deliveries never nest —
	// a Send from inside a delivery hook is queued, not delivered
	// synchronously (the conformance suite pins this).
	scratch netif.Packet
}

// NewBcaster creates the broadcast relay for core's node with the given
// framing overheads and duplicate-cache bounds.
func NewBcaster(core *Core, med *radio.Medium, hdrSize, perHop int, cfg CacheConfig) *Bcaster {
	return &Bcaster{
		core:    core,
		med:     med,
		cache:   NewDupCache(core, cfg),
		hdrSize: hdrSize,
		perHop:  perHop,
	}
}

// Cache exposes the duplicate cache (the AODV RREQ path shares its
// pruning policy but keeps a separate cache; tests inspect bounds).
func (bc *Bcaster) Cache() *DupCache { return bc.cache }

// frameSize is the on-air size of b.
func (bc *Bcaster) frameSize(b *netif.Packet) int {
	return b.Size + bc.hdrSize + bc.perHop*len(b.Path)
}

// Originate floods a new broadcast from this node.
func (bc *Bcaster) Originate(ttl, size int, payload netif.Msg, originSeq uint32) {
	bc.nextID++
	b := netif.Packet{
		Kind:      netif.PktBcast,
		Origin:    bc.core.id,
		OriginSeq: originSeq,
		ID:        bc.nextID,
		TTL:       ttl,
		Size:      size,
		Msg:       payload,
	}
	bc.cache.Mark(Key{Origin: b.Origin, ID: b.ID})
	bc.core.Count.BcastOrig++
	bc.med.Send(radio.Frame{Src: bc.core.id, Dst: radio.BroadcastAddr, Size: bc.frameSize(&b), Payload: b})
}

// Handle processes a broadcast arrival from neighbor prev: suppress
// duplicates, deliver upward, relay while TTL remains.
func (bc *Bcaster) Handle(prev int, b netif.Packet) {
	if b.Origin == bc.core.id {
		return
	}
	k := Key{Origin: b.Origin, ID: b.ID}
	if bc.cache.Seen(k) {
		bc.core.Count.DupHits++
		if !bc.Disable {
			return
		}
	}
	bc.cache.Mark(k)
	bc.scratch = b
	p := &bc.scratch
	p.HopCount++
	hops := p.HopCount
	if bc.Accept != nil {
		hops = bc.Accept(prev, p)
	}
	bc.core.DeliverBroadcast(p.Origin, hops, p.Msg)
	if p.TTL <= 1 {
		return
	}
	p.TTL--
	bc.core.Count.BcastRelayed++
	if bc.PrepRelay != nil {
		bc.PrepRelay(p)
	}
	bc.med.Send(radio.Frame{Src: bc.core.id, Dst: radio.BroadcastAddr, Size: bc.frameSize(p), Payload: *p})
}
