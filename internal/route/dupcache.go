package route

import (
	"sort"

	"manetp2p/internal/sim"
)

// Key identifies one broadcast (or one discovery round) in a duplicate
// cache: who originated it and its per-origin sequence number.
type Key struct {
	Origin int
	ID     uint32
}

// CacheConfig bounds one duplicate cache. An entry is a duplicate while
// it is younger than Timeout. Past SoftCap entries, Mark sweeps out
// expired entries; past HardCap live entries, Mark deterministically
// evicts the oldest down to three quarters of the hard cap, so memory
// stays bounded even under a broadcast storm that never lets anything
// expire.
type CacheConfig struct {
	Timeout sim.Time
	SoftCap int
	HardCap int
}

// Default pruning bounds, shared by every protocol. The soft cap only
// triggers an expired-entry sweep (behavior-neutral by construction:
// expired entries already fail Seen's freshness check), so one value
// fits all; the hard cap is sized above anything the paper-scale
// scenarios reach, making fresh-entry eviction a storm-only safety net.
const (
	DefaultSoftCap = 4096
	DefaultHardCap = 2 * DefaultSoftCap
)

// withDefaults fills unset bounds.
func (c CacheConfig) withDefaults() CacheConfig {
	if c.SoftCap == 0 {
		c.SoftCap = DefaultSoftCap
	}
	if c.HardCap == 0 {
		c.HardCap = 2 * c.SoftCap
	}
	return c
}

// DupCache is the per-node duplicate-suppression cache behind the
// paper's controlled broadcast (§5): remember each (origin, id) for a
// while, drop re-arrivals. One cache, one pruning policy, shared by all
// four protocols — previously each router grew (or failed to bound) its
// own copy.
type DupCache struct {
	cfg  CacheConfig
	sim  *sim.Sim
	seen map[Key]sim.Time
}

// NewDupCache creates a cache owned by core's node and registers it for
// the core's SeenEntries/SeenBound accounting.
func NewDupCache(core *Core, cfg CacheConfig) *DupCache {
	dc := &DupCache{
		cfg:  cfg.withDefaults(),
		sim:  core.sim,
		seen: make(map[Key]sim.Time),
	}
	core.caches = append(core.caches, dc)
	return dc
}

// Seen reports whether k was marked within the cache timeout.
func (dc *DupCache) Seen(k Key) bool {
	t, ok := dc.seen[k]
	return ok && dc.sim.Now()-t < dc.cfg.Timeout
}

// Mark records k as seen now, pruning first if the cache has grown past
// its bounds.
func (dc *DupCache) Mark(k Key) {
	if len(dc.seen) > dc.cfg.SoftCap {
		dc.prune()
	}
	dc.seen[k] = dc.sim.Now()
}

// prune drops expired entries, then — only if the cache is still at the
// hard cap, i.e. under a storm of still-fresh broadcasts — evicts the
// oldest live entries down to 3/4 of the cap. Eviction sorts candidates
// by (time, origin, id) so it is deterministic despite map iteration.
func (dc *DupCache) prune() {
	now := dc.sim.Now()
	for k, t := range dc.seen {
		if now-t >= dc.cfg.Timeout {
			delete(dc.seen, k)
		}
	}
	if len(dc.seen) < dc.cfg.HardCap {
		return
	}
	type entry struct {
		k Key
		t sim.Time
	}
	live := make([]entry, 0, len(dc.seen))
	for k, t := range dc.seen {
		live = append(live, entry{k, t})
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i], live[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.k.Origin != b.k.Origin {
			return a.k.Origin < b.k.Origin
		}
		return a.k.ID < b.k.ID
	})
	for _, e := range live[:len(live)-dc.cfg.HardCap*3/4] {
		delete(dc.seen, e.k)
	}
}

// Len returns the number of entries currently held (live or expired but
// not yet swept).
func (dc *DupCache) Len() int { return len(dc.seen) }
