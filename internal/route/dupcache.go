package route

import (
	"slices"

	"manetp2p/internal/sim"
)

// Key identifies one broadcast (or one discovery round) in a duplicate
// cache: who originated it and its per-origin sequence number.
type Key struct {
	Origin int
	ID     uint32
}

// CacheConfig bounds one duplicate cache. An entry is a duplicate while
// it is younger than Timeout. Past SoftCap entries, Mark sweeps out
// expired entries; past HardCap live entries, Mark deterministically
// evicts the oldest down to three quarters of the hard cap, so memory
// stays bounded even under a broadcast storm that never lets anything
// expire.
type CacheConfig struct {
	Timeout sim.Time
	SoftCap int
	HardCap int
}

// Default pruning bounds, shared by every protocol. The soft cap only
// triggers an expired-entry sweep (behavior-neutral by construction:
// expired entries already fail Seen's freshness check), so one value
// fits all; the hard cap is sized above anything the paper-scale
// scenarios reach, making fresh-entry eviction a storm-only safety net.
const (
	DefaultSoftCap = 4096
	DefaultHardCap = 2 * DefaultSoftCap
)

// withDefaults fills unset bounds.
func (c CacheConfig) withDefaults() CacheConfig {
	if c.SoftCap == 0 {
		c.SoftCap = DefaultSoftCap
	}
	if c.HardCap == 0 {
		c.HardCap = 2 * c.SoftCap
	}
	return c
}

// DupCache is the per-node duplicate-suppression cache behind the
// paper's controlled broadcast (§5): remember each (origin, id) for a
// while, drop re-arrivals. One cache, one pruning policy, shared by all
// four protocols — previously each router grew (or failed to bound) its
// own copy.
//
// Entries live in an open-addressed table kept at most half full, with
// the expiry sweep rebuilding it in place from a reused scratch slice.
// A delete-heavy Go map keeps allocating bucket arrays under churn
// (same-size grows to shed tombstones), and this cache is exactly that
// workload — the table version holds FullReplication's biggest single
// allocation source at zero steady-state allocations.
type DupCache struct {
	cfg     CacheConfig
	sim     *sim.Sim
	slots   []dupSlot
	mask    uint32
	n       int        // occupied slots
	scratch []dupEntry // prune's live-entry buffer, reused across sweeps
}

// dupSlot is one table cell; used distinguishes occupancy so the zero
// Key stays a valid entry.
type dupSlot struct {
	key  Key
	t    sim.Time
	used bool
}

type dupEntry struct {
	k Key
	t sim.Time
}

// NewDupCache creates a cache owned by core's node and registers it for
// the core's SeenEntries/SeenBound accounting.
func NewDupCache(core *Core, cfg CacheConfig) *DupCache {
	dc := &DupCache{
		cfg:   cfg.withDefaults(),
		sim:   core.sim,
		slots: make([]dupSlot, 16),
		mask:  15,
	}
	core.caches = append(core.caches, dc)
	return dc
}

// hash spreads a key over the table. The table is a power of two, so
// the multiply-xor finisher keeps low bits well mixed.
func hash(k Key) uint32 {
	h := uint64(uint32(k.Origin))<<32 | uint64(k.ID)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h)
}

// find locates k's slot by linear probing: its position if present, the
// insertion point otherwise. The ≤1/2 load invariant guarantees an
// empty slot terminates every probe.
func (dc *DupCache) find(k Key) (int, bool) {
	i := hash(k) & dc.mask
	for {
		s := &dc.slots[i]
		if !s.used {
			return int(i), false
		}
		if s.key == k {
			return int(i), true
		}
		i = (i + 1) & dc.mask
	}
}

// insert records (k, t), keeping the table at most half full. Before
// paying for a bigger table it sweeps expired entries — a sweep never
// changes what Seen reports (expired entries already fail its freshness
// check), and it keeps the table sized to the live working set instead
// of the unswept backlog.
func (dc *DupCache) insert(k Key, t sim.Time) {
	i, ok := dc.find(k)
	if !ok && 2*(dc.n+1) > len(dc.slots) {
		dc.sweep()
		if 2*(dc.n+1) > len(dc.slots) {
			dc.grow()
		}
		i, _ = dc.find(k)
	}
	if !ok {
		dc.n++
	}
	dc.slots[i] = dupSlot{key: k, t: t, used: true}
}

// grow doubles the table and rehashes every entry. Growth stops at the
// cache's peak occupancy (bounded by HardCap), after which the cache
// never allocates again.
func (dc *DupCache) grow() {
	old := dc.slots
	dc.slots = make([]dupSlot, 2*len(old))
	dc.mask = uint32(len(dc.slots) - 1)
	for _, s := range old {
		if !s.used {
			continue
		}
		i := hash(s.key) & dc.mask
		for dc.slots[i].used {
			i = (i + 1) & dc.mask
		}
		dc.slots[i] = s
	}
}

// Seen reports whether k was marked within the cache timeout.
func (dc *DupCache) Seen(k Key) bool {
	i, ok := dc.find(k)
	return ok && dc.sim.Now()-dc.slots[i].t < dc.cfg.Timeout
}

// Mark records k as seen now, pruning first if the cache has grown past
// its bounds.
func (dc *DupCache) Mark(k Key) {
	if dc.n > dc.cfg.SoftCap {
		dc.prune()
	}
	dc.insert(k, dc.sim.Now())
}

// collectLive gathers the unexpired entries into the reusable scratch
// buffer, in table order (deterministic: layout is a pure function of
// the insert/delete history).
func (dc *DupCache) collectLive() []dupEntry {
	now := dc.sim.Now()
	live := dc.scratch[:0]
	for _, s := range dc.slots {
		if s.used && now-s.t < dc.cfg.Timeout {
			live = append(live, dupEntry{s.key, s.t})
		}
	}
	dc.scratch = live[:0]
	return live
}

// rebuild repopulates the cleared table from live. Rebuilding removes
// expired entries exactly (an in-place backward-shift delete could
// slide an unswept entry behind a scan cursor). The inserts can never
// re-enter sweep — live holds at most the pre-sweep count, which the
// unchanged-size table already fit at ≤1/2 load — so live (an alias of
// the scratch buffer) is never overwritten mid-iteration.
func (dc *DupCache) rebuild(live []dupEntry) {
	clear(dc.slots)
	dc.n = 0
	for _, e := range live {
		dc.insert(e.k, e.t)
	}
}

// sweep drops expired entries only — always behavior-neutral.
func (dc *DupCache) sweep() {
	dc.rebuild(dc.collectLive())
}

// prune drops expired entries, then — only if the cache is still at the
// hard cap, i.e. under a storm of still-fresh broadcasts — evicts the
// oldest live entries down to 3/4 of the cap. Eviction sorts candidates
// by (time, origin, id), a total order on unique keys, so the surviving
// set is deterministic.
func (dc *DupCache) prune() {
	live := dc.collectLive()
	if len(live) >= dc.cfg.HardCap {
		slices.SortFunc(live, func(a, b dupEntry) int {
			if a.t != b.t {
				if a.t < b.t {
					return -1
				}
				return 1
			}
			if a.k.Origin != b.k.Origin {
				return a.k.Origin - b.k.Origin
			}
			if a.k.ID != b.k.ID {
				if a.k.ID < b.k.ID {
					return -1
				}
				return 1
			}
			return 0
		})
		live = live[len(live)-dc.cfg.HardCap*3/4:]
	}
	dc.rebuild(live)
}

// Len returns the number of entries currently held (live or expired but
// not yet swept).
func (dc *DupCache) Len() int { return dc.n }
