package route

import (
	"manetp2p/internal/sim"
)

// Discovery is the per-destination pending-send state: the packets
// parked awaiting a route plus whatever search is underway for it. The
// on-demand protocols use TTL/Retries/Repair/Timer to drive their
// expanding-ring or fixed-TTL searches; DSDV parks packets with no
// search at all (advertisements bring the route or the settling window
// lapses), so for it only Queue is live — the zero Timer's Cancel is a
// safe no-op.
type Discovery[P any] struct {
	TTL     int
	Retries int
	Repair  bool // bounded transit-packet repair: no ring escalation
	Timer   sim.Handle
	Queue   []P
}

// Pending is the per-node pending-send buffer: one Discovery per
// destination, with a shared per-destination queue cap. The three
// protocols that buffer (aodv, dsr, dsdv) previously each kept their
// own map-plus-cap logic; the overflow/flush/abandon choreography now
// lives here once, while the protocol decides what each outcome means
// (fail the send, emit an RERR, count a drop).
type Pending[P any] struct {
	m   map[int]*Discovery[P]
	cap int
}

// NewPending creates a buffer holding at most bufferCap packets per
// destination.
func NewPending[P any](bufferCap int) *Pending[P] {
	return &Pending[P]{m: make(map[int]*Discovery[P]), cap: bufferCap}
}

// Get returns the in-progress entry for dst, if any.
func (p *Pending[P]) Get(dst int) (*Discovery[P], bool) {
	d, ok := p.m[dst]
	return d, ok
}

// Start creates and registers a fresh entry for dst. The caller kicks
// whatever search it implies (AODV's first ring, DSR's RREQ) — ordering
// matters to some protocols, so Pending stays out of it.
func (p *Pending[P]) Start(dst int) *Discovery[P] {
	d := &Discovery[P]{}
	p.m[dst] = d
	return d
}

// Push appends pkt to d's queue; false means the queue is at cap and
// the packet must be abandoned.
func (p *Pending[P]) Push(d *Discovery[P], pkt P) bool {
	if len(d.Queue) >= p.cap {
		return false
	}
	d.Queue = append(d.Queue, pkt)
	return true
}

// Current reports whether d is still the live entry for dst — the
// identity check retry timers use to detect they were superseded.
func (p *Pending[P]) Current(dst int, d *Discovery[P]) bool {
	return p.m[dst] == d
}

// Drop abandons dst's entry without touching its timer (the caller is
// the timer).
func (p *Pending[P]) Drop(dst int) {
	delete(p.m, dst)
}

// Take removes and returns dst's entry with its retry timer cancelled,
// ready for the caller to flush the queue.
func (p *Pending[P]) Take(dst int) (*Discovery[P], bool) {
	d, ok := p.m[dst]
	if !ok {
		return nil, false
	}
	delete(p.m, dst)
	d.Timer.Cancel()
	return d, true
}

// Len returns the number of destinations with pending entries.
func (p *Pending[P]) Len() int { return len(p.m) }
