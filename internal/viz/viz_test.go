package viz

import (
	"bytes"
	"strings"
	"testing"

	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
)

func buildNet(t *testing.T, alg p2p.Algorithm) *manet.Network {
	t.Helper()
	cfg := manet.DefaultConfig(20, alg)
	cfg.Seed = 5
	if alg == p2p.Hybrid {
		cfg.Qualifiers = manet.DeviceClasses()
	}
	n, err := manet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5 * sim.Minute)
	return n
}

func TestWriteSVGWellFormed(t *testing.T) {
	n := buildNet(t, p2p.Regular)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, n, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("output is not a complete SVG document")
	}
	// One circle per up node.
	up := 0
	for i := 0; i < n.Cfg.NumNodes; i++ {
		if n.Medium.Up(i) {
			up++
		}
	}
	if got := strings.Count(out, "<circle"); got != up {
		t.Errorf("circles = %d, want %d (one per up node)", got, up)
	}
}

func TestWriteSVGOverlayLinesMatchConnections(t *testing.T) {
	n := buildNet(t, p2p.Regular)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, n, Options{}); err != nil {
		t.Fatal(err)
	}
	// Count drawn overlay lines (each link once, from the lower id).
	want := 0
	for i, sv := range n.Servents {
		if sv == nil || !sv.Joined() {
			continue
		}
		for _, peer := range sv.Peers() {
			if peer > i {
				want++
			}
		}
	}
	if got := strings.Count(buf.String(), `stroke="#2a6fdb"`) + strings.Count(buf.String(), `stroke="#d33682"`); got != want {
		t.Errorf("overlay lines = %d, want %d", got, want)
	}
}

func TestWriteSVGOptions(t *testing.T) {
	n := buildNet(t, p2p.Hybrid)
	var plain, full bytes.Buffer
	if err := WriteSVG(&plain, n, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSVG(&full, n, Options{ShowRadio: true, ShowLabels: true, Scale: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), "<text") {
		t.Error("labels requested but no text elements emitted")
	}
	if strings.Contains(plain.String(), "<text") {
		t.Error("labels emitted without being requested")
	}
	if strings.Count(full.String(), `stroke="#ddd"`) == 0 {
		t.Error("radio adjacency requested but not drawn")
	}
	// Hybrid roles must color at least one master.
	if !strings.Contains(full.String(), "#cb4b16") {
		t.Error("no master-colored node in a hybrid snapshot")
	}
}
