// Package viz renders simulation snapshots as SVG: node positions,
// radio adjacency, overlay connections and hybrid roles. Used by
// cmd/topoviz to eyeball what the metrics aggregate away.
package viz

import (
	"fmt"
	"io"
	"strings"

	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
)

// Options tunes the rendering.
type Options struct {
	Scale      float64 // pixels per metre (default 6)
	ShowRadio  bool    // draw the radio-adjacency graph
	ShowLabels bool    // draw node ids
}

// WriteSVG renders the network's current state.
func WriteSVG(w io.Writer, n *manet.Network, opt Options) error {
	if opt.Scale <= 0 {
		opt.Scale = 6
	}
	var b strings.Builder
	width := n.Cfg.Arena.W * opt.Scale
	height := n.Cfg.Arena.H * opt.Scale
	const margin = 20.0
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="%.0f %.0f %.0f %.0f">`+"\n",
		width+2*margin, height+2*margin, -margin, -margin, width+2*margin, height+2*margin)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#fcfcfc" stroke="#888"/>`+"\n", width, height)

	px := func(x float64) float64 { return x * opt.Scale }

	// Radio adjacency (faint).
	if opt.ShowRadio {
		var nbs []int
		for i := 0; i < n.Cfg.NumNodes; i++ {
			if !n.Medium.Up(i) {
				continue
			}
			nbs = n.Medium.Neighbors(nbs[:0], i)
			pi := n.Medium.Pos(i)
			for _, j := range nbs {
				if j < i {
					continue // draw each link once
				}
				pj := n.Medium.Pos(j)
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd" stroke-width="1"/>`+"\n",
					px(pi.X), px(pi.Y), px(pj.X), px(pj.Y))
			}
		}
	}

	// Overlay links.
	for i, sv := range n.Servents {
		if sv == nil || !sv.Joined() {
			continue
		}
		pi := n.Medium.Pos(i)
		for _, peer := range sv.Peers() {
			if peer < i {
				continue
			}
			pj := n.Medium.Pos(peer)
			color, width := "#2a6fdb", 1.6
			if sv.ConnIsRandom(peer) {
				color = "#d33682" // the Random algorithm's long link
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
				px(pi.X), px(pi.Y), px(pj.X), px(pj.Y), color, width)
		}
	}

	// Nodes.
	for i := 0; i < n.Cfg.NumNodes; i++ {
		if !n.Medium.Up(i) {
			continue
		}
		p := n.Medium.Pos(i)
		fill, r := "#bbb", 3.0 // plain ad-hoc relay
		if sv := n.Servents[i]; sv != nil && sv.Joined() {
			switch {
			case n.Cfg.Algorithm == p2p.Hybrid && sv.State() == p2p.StateMaster:
				fill, r = "#cb4b16", 5
			case n.Cfg.Algorithm == p2p.Hybrid && sv.State() == p2p.StateSlave:
				fill, r = "#859900", 3.5
			default:
				fill, r = "#268bd2", 4
			}
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
			px(p.X), px(p.Y), r, fill)
		if opt.ShowLabels {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" fill="#333">%d</text>`+"\n",
				px(p.X)+5, px(p.Y)-3, i)
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
