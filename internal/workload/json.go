package workload

import (
	"encoding/json"
	"fmt"

	"manetp2p/internal/sim"
)

// Plan JSON is hand-authored (cmd/p2psim -workload plan.json), so like
// the fault plans — and unlike the rest of the scenario JSON, which
// serializes sim.Time as integer microseconds — every time field here
// is floating-point *seconds*, and the arrival block carries a
// "process" tag:
//
//	{
//	  "arrival": {"process": "onoff", "rate": 0.1,
//	              "meanOn": 60, "meanOff": 180},
//	  "popularity": {"skew": 1.2, "driftPerHour": -0.2,
//	                 "rotateEvery": 900},
//	  "sessions": {"classes": [
//	    {"name": "seeder", "weight": 0.2, "rateScale": 0.3},
//	    {"name": "transient", "weight": 0.3,
//	     "meanUptime": 600, "meanDowntime": 120}]},
//	  "phases": [
//	    {"name": "ramp", "start": 0, "rateScale": 0.5},
//	    {"name": "steady", "start": 600},
//	    {"name": "flash", "start": 1800, "rateScale": 3,
//	     "hotFiles": 3, "hotBoost": 0.8},
//	    {"name": "drain", "start": 2400, "rateScale": 0.1}]
//	}
//
// Unknown process names are rejected with an error listing the valid
// ones.

// arrivalJSON is the wire shape of an Arrival; times are seconds.
type arrivalJSON struct {
	Process   string  `json:"process"`
	GapMin    float64 `json:"gapMin,omitempty"`
	GapMax    float64 `json:"gapMax,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	MeanOn    float64 `json:"meanOn,omitempty"`
	MeanOff   float64 `json:"meanOff,omitempty"`
	Period    float64 `json:"period,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
}

// MarshalJSON renders the arrival with its process tag and only the
// fields its process uses.
func (a Arrival) MarshalJSON() ([]byte, error) {
	j := arrivalJSON{Process: a.Process.String()}
	switch a.Process {
	case Uniform:
		j.GapMin = a.GapMin.Seconds()
		j.GapMax = a.GapMax.Seconds()
	case Poisson:
		j.Rate = a.Rate
	case OnOff:
		j.Rate = a.Rate
		j.MeanOn = a.MeanOn.Seconds()
		j.MeanOff = a.MeanOff.Seconds()
	case Diurnal:
		j.Rate = a.Rate
		j.Period = a.Period.Seconds()
		j.Amplitude = a.Amplitude
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the process tag and its fields, rejecting
// unknown processes with a clear error.
func (a *Arrival) UnmarshalJSON(data []byte) error {
	var j arrivalJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: parsing arrival: %w", err)
	}
	p, err := ParseProcess(j.Process)
	if err != nil {
		return err
	}
	*a = Arrival{
		Process:   p,
		GapMin:    sim.FromSeconds(j.GapMin),
		GapMax:    sim.FromSeconds(j.GapMax),
		Rate:      j.Rate,
		MeanOn:    sim.FromSeconds(j.MeanOn),
		MeanOff:   sim.FromSeconds(j.MeanOff),
		Period:    sim.FromSeconds(j.Period),
		Amplitude: j.Amplitude,
	}
	return nil
}

// popularityJSON is the wire shape of a Popularity; RotateEvery is
// seconds.
type popularityJSON struct {
	Skew         float64 `json:"skew,omitempty"`
	DriftPerHour float64 `json:"driftPerHour,omitempty"`
	RotateEvery  float64 `json:"rotateEvery,omitempty"`
	RotateStep   int     `json:"rotateStep,omitempty"`
}

// MarshalJSON renders the popularity model in seconds.
func (p Popularity) MarshalJSON() ([]byte, error) {
	return json.Marshal(popularityJSON{
		Skew:         p.Skew,
		DriftPerHour: p.DriftPerHour,
		RotateEvery:  p.RotateEvery.Seconds(),
		RotateStep:   p.RotateStep,
	})
}

// UnmarshalJSON parses the popularity model.
func (p *Popularity) UnmarshalJSON(data []byte) error {
	var j popularityJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: parsing popularity: %w", err)
	}
	*p = Popularity{
		Skew:         j.Skew,
		DriftPerHour: j.DriftPerHour,
		RotateEvery:  sim.FromSeconds(j.RotateEvery),
		RotateStep:   j.RotateStep,
	}
	return nil
}

// classJSON is the wire shape of a SessionClass; times are seconds.
type classJSON struct {
	Name          string  `json:"name"`
	Weight        float64 `json:"weight"`
	RateScale     float64 `json:"rateScale,omitempty"`
	UptimeScale   float64 `json:"uptimeScale,omitempty"`
	DowntimeScale float64 `json:"downtimeScale,omitempty"`
	MeanUptime    float64 `json:"meanUptime,omitempty"`
	MeanDowntime  float64 `json:"meanDowntime,omitempty"`
}

// MarshalJSON renders the class in seconds.
func (c SessionClass) MarshalJSON() ([]byte, error) {
	return json.Marshal(classJSON{
		Name:          c.Name,
		Weight:        c.Weight,
		RateScale:     c.RateScale,
		UptimeScale:   c.UptimeScale,
		DowntimeScale: c.DowntimeScale,
		MeanUptime:    c.MeanUptime.Seconds(),
		MeanDowntime:  c.MeanDowntime.Seconds(),
	})
}

// UnmarshalJSON parses the class.
func (c *SessionClass) UnmarshalJSON(data []byte) error {
	var j classJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: parsing session class: %w", err)
	}
	*c = SessionClass{
		Name:          j.Name,
		Weight:        j.Weight,
		RateScale:     j.RateScale,
		UptimeScale:   j.UptimeScale,
		DowntimeScale: j.DowntimeScale,
		MeanUptime:    sim.FromSeconds(j.MeanUptime),
		MeanDowntime:  sim.FromSeconds(j.MeanDowntime),
	}
	return nil
}

// phaseJSON is the wire shape of a Phase; Start is seconds.
type phaseJSON struct {
	Name      string  `json:"name"`
	Start     float64 `json:"start"`
	RateScale float64 `json:"rateScale,omitempty"`
	HotFiles  int     `json:"hotFiles,omitempty"`
	HotBoost  float64 `json:"hotBoost,omitempty"`
}

// MarshalJSON renders the phase in seconds.
func (p Phase) MarshalJSON() ([]byte, error) {
	return json.Marshal(phaseJSON{
		Name:      p.Name,
		Start:     p.Start.Seconds(),
		RateScale: p.RateScale,
		HotFiles:  p.HotFiles,
		HotBoost:  p.HotBoost,
	})
}

// UnmarshalJSON parses the phase.
func (p *Phase) UnmarshalJSON(data []byte) error {
	var j phaseJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: parsing phase: %w", err)
	}
	*p = Phase{
		Name:      j.Name,
		Start:     sim.FromSeconds(j.Start),
		RateScale: j.RateScale,
		HotFiles:  j.HotFiles,
		HotBoost:  j.HotBoost,
	}
	return nil
}
