package workload

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

func newEngine(t *testing.T, plan Plan, nodes, files int) (*sim.Sim, *Engine) {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	s := sim.New(1)
	return s, New(s, s.NewRand(), plan, nodes, files, nil)
}

func TestParseProcess(t *testing.T) {
	for p := Process(0); p < numProcesses; p++ {
		got, err := ParseProcess(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProcess(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParseProcess(""); err != nil || got != Uniform {
		t.Errorf("ParseProcess(\"\") = %v, %v; want Uniform", got, err)
	}
	_, err := ParseProcess("zipfian")
	if err == nil {
		t.Fatal("unknown process accepted")
	}
	for p := Process(0); p < numProcesses; p++ {
		if !strings.Contains(err.Error(), p.String()) {
			t.Errorf("error %q does not list process %q", err, p.String())
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative uniform gap", Plan{Arrival: Arrival{GapMin: -sim.Second}}},
		{"inverted uniform bounds", Plan{Arrival: Arrival{GapMin: 10 * sim.Second, GapMax: 5 * sim.Second}}},
		{"zero poisson rate", Plan{Arrival: Arrival{Process: Poisson}}},
		{"excessive rate", Plan{Arrival: Arrival{Process: Poisson, Rate: maxRate + 1}}},
		{"amplitude one", Plan{Arrival: Arrival{Process: Diurnal, Rate: 1, Amplitude: 1}}},
		{"unknown process", Plan{Arrival: Arrival{Process: numProcesses}}},
		{"nameless class", Plan{Sessions: Sessions{Classes: []SessionClass{{Weight: 1}}}}},
		{"zero-weight class", Plan{Sessions: Sessions{Classes: []SessionClass{{Name: "x"}}}}},
		{"uptime without downtime", Plan{Sessions: Sessions{Classes: []SessionClass{
			{Name: "x", Weight: 1, MeanUptime: sim.Second}}}}},
		{"hot boost above one", Plan{Phases: []Phase{{Name: "p", HotBoost: 1.5}}}},
		{"phases out of order", Plan{Phases: []Phase{
			{Name: "b", Start: 100 * sim.Second}, {Name: "a", Start: 50 * sim.Second}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Arrival: Arrival{Process: Poisson, Rate: 0.5}},
		{
			Arrival:    Arrival{Process: OnOff, Rate: 0.1, MeanOn: 30 * sim.Second, MeanOff: 90 * sim.Second},
			Popularity: Popularity{Skew: 1.2, DriftPerHour: -0.3, RotateEvery: 900 * sim.Second, RotateStep: 2},
			Sessions:   DefaultSessions(),
			Phases: []Phase{
				{Name: "ramp", RateScale: 0.5},
				{Name: "flash", Start: 600 * sim.Second, RateScale: 3, HotFiles: 3, HotBoost: 0.8},
			},
		},
		{Arrival: Arrival{Process: Diurnal, Rate: 0.05, Period: 1200 * sim.Second, Amplitude: 0.5}},
	}
	for i, p := range plans {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("plan %d: marshal: %v", i, err)
		}
		var back Plan
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("plan %d: unmarshal %s: %v", i, data, err)
		}
		d2, _ := json.Marshal(back)
		if string(data) != string(d2) {
			t.Errorf("plan %d: round-trip drifted:\n  %s\n  %s", i, data, d2)
		}
	}
}

func TestUnmarshalRejectsUnknownProcess(t *testing.T) {
	var p Plan
	err := json.Unmarshal([]byte(`{"arrival": {"process": "fractal"}}`), &p)
	if err == nil {
		t.Fatal("unknown process accepted")
	}
	for _, name := range []string{"uniform", "poisson", "onoff", "diurnal"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestUniformDefaultsMatchPaper(t *testing.T) {
	a := Arrival{}.withDefaults()
	if a.GapMin != 15*sim.Second || a.GapMax != 45*sim.Second {
		t.Fatalf("zero arrival defaults to [%v, %v], want [15s, 45s]", a.GapMin, a.GapMax)
	}
}

func TestNextGapBoundsPerProcess(t *testing.T) {
	plans := map[string]Plan{
		"uniform": {},
		"poisson": {Arrival: Arrival{Process: Poisson, Rate: 0.2}},
		"onoff":   {Arrival: Arrival{Process: OnOff, Rate: 0.5}},
		"diurnal": {Arrival: Arrival{Process: Diurnal, Rate: 0.2}},
	}
	for name, plan := range plans {
		_, e := newEngine(t, plan, 10, 20)
		for i := 0; i < 2000; i++ {
			g := e.NextGap(i % 10)
			if g < minGap {
				t.Fatalf("%s: gap %v below minGap", name, g)
			}
			if name == "uniform" && (g < 15*sim.Second || g > 45*sim.Second) {
				t.Fatalf("uniform gap %v outside [15s, 45s]", g)
			}
		}
		if v := e.BoundsViolations(); v != 0 {
			t.Errorf("%s: %d bounds violations on honest draws", name, v)
		}
	}
}

func TestRateScaleShortensGaps(t *testing.T) {
	slow := Plan{}
	fast := Plan{Sessions: Sessions{Classes: []SessionClass{{Name: "hot", Weight: 1, RateScale: 3}}}}
	_, es := newEngine(t, slow, 1, 20)
	_, ef := newEngine(t, fast, 1, 20)
	sum := func(e *Engine) (total sim.Time) {
		for i := 0; i < 500; i++ {
			total += e.NextGap(0)
		}
		return total
	}
	if s, f := sum(es), sum(ef); float64(f) > 0.5*float64(s) {
		t.Fatalf("RateScale 3 barely shortened gaps: slow %v, fast %v", s, f)
	}
}

func TestPhaseRateScaleApplies(t *testing.T) {
	plan := Plan{Phases: []Phase{{Name: "flash", Start: 100 * sim.Second, RateScale: 4}}}
	s, e := newEngine(t, plan, 1, 20)
	var before sim.Time
	for i := 0; i < 300; i++ {
		before += e.NextGap(0)
	}
	s.Run(200 * sim.Second)
	var during sim.Time
	for i := 0; i < 300; i++ {
		during += e.NextGap(0)
	}
	if float64(during) > 0.5*float64(before) {
		t.Fatalf("flash phase barely shortened gaps: before %v, during %v", before, during)
	}
}

func TestPickFileSkipsHeld(t *testing.T) {
	_, e := newEngine(t, Plan{}, 1, 5)
	held := []bool{true, false, true, false, true}
	for i := 0; i < 200; i++ {
		f := e.PickFile(0, held)
		if f < 0 || held[f] {
			t.Fatalf("picked held or invalid file %d", f)
		}
	}
	all := []bool{true, true, true, true, true}
	if f := e.PickFile(0, all); f != -1 {
		t.Fatalf("picked %d though everything is held", f)
	}
}

func TestPickFileZipfSkew(t *testing.T) {
	_, e := newEngine(t, Plan{Popularity: Popularity{Skew: 1.5}}, 1, 10)
	held := make([]bool, 10)
	counts := make([]int, 10)
	for i := 0; i < 5000; i++ {
		counts[e.PickFile(0, held)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("rank 0 (%d picks) not more popular than rank 9 (%d)", counts[0], counts[9])
	}
}

func TestRotationShiftsHotSet(t *testing.T) {
	plan := Plan{Popularity: Popularity{Skew: 3, RotateEvery: 60 * sim.Second, RotateStep: 1}}
	s, e := newEngine(t, plan, 1, 10)
	held := make([]bool, 10)
	top := func() int {
		counts := make([]int, 10)
		for i := 0; i < 2000; i++ {
			counts[e.PickFile(0, held)]++
		}
		best := 0
		for f, c := range counts {
			if c > counts[best] {
				best = f
			}
		}
		_ = best
		return best
	}
	first := top()
	s.Run(60 * sim.Second)
	second := top()
	if want := (first + 1) % 10; second != want {
		t.Fatalf("after one rotation hot file is %d, want %d (was %d)", second, want, first)
	}
}

func TestSkewDriftClamps(t *testing.T) {
	plan := Plan{Popularity: Popularity{Skew: 1, DriftPerHour: -4}}
	s, e := newEngine(t, plan, 1, 10)
	s.Run(2 * 3600 * sim.Second)
	if got := e.skew(s.Now()); got != 0 {
		t.Fatalf("drifted skew %v, want clamp at 0", got)
	}
	plan = Plan{Popularity: Popularity{Skew: 1, DriftPerHour: 100}}
	s, e = newEngine(t, plan, 1, 10)
	s.Run(3600 * sim.Second)
	if got := e.skew(s.Now()); got != maxSkew {
		t.Fatalf("drifted skew %v, want clamp at %v", got, maxSkew)
	}
}

func TestFlashCrowdFocusesPicks(t *testing.T) {
	plan := Plan{
		Popularity: Popularity{Skew: 0.01},
		Phases:     []Phase{{Name: "flash", Start: 0, HotFiles: 2, HotBoost: 0.9}},
	}
	_, e := newEngine(t, plan, 1, 20)
	held := make([]bool, 20)
	hot := 0
	const picks = 5000
	for i := 0; i < picks; i++ {
		if f := e.PickFile(0, held); f < 2 {
			hot++
		}
	}
	if frac := float64(hot) / picks; frac < 0.8 {
		t.Fatalf("flash crowd hit the hot set only %.0f%% of picks, want >= 80%%", 100*frac)
	}
}

func TestClassAssignmentFollowsWeights(t *testing.T) {
	const nodes = 4000
	_, e := newEngine(t, Plan{Sessions: DefaultSessions()}, nodes, 10)
	counts := make([]int, 3)
	for _, ci := range e.classOf {
		counts[ci]++
	}
	for ci, want := range []float64{0.2, 0.5, 0.3} {
		got := float64(counts[ci]) / nodes
		if math.Abs(got-want) > 0.05 {
			t.Errorf("class %d population %.3f, want ~%.1f", ci, got, want)
		}
	}
}

func TestChurnMeansComposition(t *testing.T) {
	plan := Plan{Sessions: Sessions{Classes: []SessionClass{
		{Name: "absolute", Weight: 1, MeanUptime: 100 * sim.Second, MeanDowntime: 10 * sim.Second},
	}}}
	_, e := newEngine(t, plan, 1, 10)
	up, down := e.ChurnMeans(0, 600*sim.Second, 120*sim.Second)
	if up != 100*sim.Second || down != 10*sim.Second {
		t.Fatalf("absolute means did not win: %v/%v", up, down)
	}
	if !e.SessionChurn(0) {
		t.Fatal("absolute-mean class should churn on its own")
	}

	plan = Plan{Sessions: Sessions{Classes: []SessionClass{
		{Name: "scaled", Weight: 1, UptimeScale: 2, DowntimeScale: 0.5},
	}}}
	_, e = newEngine(t, plan, 1, 10)
	up, down = e.ChurnMeans(0, 600*sim.Second, 120*sim.Second)
	if up != 1200*sim.Second || down != 60*sim.Second {
		t.Fatalf("scales did not compose: %v/%v", up, down)
	}
	if e.SessionChurn(0) {
		t.Fatal("scale-only class must not churn without a scenario churn config")
	}
	if up, down = e.ChurnMeans(0, 0, 0); up != 0 || down != 0 {
		t.Fatalf("scaling a disabled base invented churn: %v/%v", up, down)
	}
}

func TestTelemetryConservation(t *testing.T) {
	_, e := newEngine(t, Plan{}, 4, 10)
	// Node 0: offered, retried twice, issued, resolved.
	e.Offered(0)
	e.Offered(0)
	e.Offered(0)
	e.Issued(0)
	e.FirstAnswer(0)
	e.Done(0, true)
	// Node 1: offered, issued, expired.
	e.Offered(1)
	e.Issued(1)
	e.Done(1, false)
	// Node 2: offered, issued, aborted by churn.
	e.Offered(2)
	e.Issued(2)
	e.Aborted(2)
	// Node 3: offered, still waiting for a peer (never issued).
	e.Offered(3)

	ct := e.Counters()
	want := Counters{Offered: 4, Retries: 2, Issued: 3,
		Resolved: 1, Expired: 1, Aborted: 1, InFlight: 0, Pending: 1}
	if ct != want {
		t.Fatalf("counters %+v, want %+v", ct, want)
	}
	if ct.Offered != ct.Resolved+ct.Expired+ct.Aborted+ct.Pending {
		t.Fatal("offered conservation broken")
	}
	if ct.Issued != ct.Resolved+ct.Expired+ct.Aborted+ct.InFlight {
		t.Fatal("issued conservation broken")
	}

	tel := e.Snapshot()
	if tel.Offered != 4 || tel.Resolved != 1 || len(tel.TTFR) != 1 || len(tel.Completion) != 1 {
		t.Fatalf("snapshot %+v inconsistent with ledger", tel)
	}
	if len(tel.Classes) != 1 || tel.Classes[0].Nodes != 4 || tel.Classes[0].Issued != 3 {
		t.Fatalf("class stats %+v, want one class with 4 nodes, 3 issued", tel.Classes)
	}
}

func TestEngineDeterminism(t *testing.T) {
	plan := Plan{
		Arrival:    Arrival{Process: OnOff, Rate: 0.2},
		Popularity: Popularity{Skew: 1.1, RotateEvery: 30 * sim.Second},
		Sessions:   DefaultSessions(),
		Phases:     []Phase{{Name: "flash", Start: 50 * sim.Second, RateScale: 2, HotFiles: 2, HotBoost: 0.5}},
	}
	run := func() []int64 {
		s := sim.New(7)
		e := New(s, s.NewRand(), plan, 8, 15, nil)
		held := make([]bool, 15)
		var out []int64
		for i := 0; i < 400; i++ {
			out = append(out, int64(e.NextGap(i%8)), int64(e.PickFile(i%8, held)))
			if i%50 == 49 {
				s.Run(s.Now() + 10*sim.Second)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestArrivalHotPathAllocs pins the arrival hot path at zero
// allocations: NextGap and PickFile run once per query per node for the
// whole horizon, so a single boxed value here costs millions of
// allocations per sweep.
func TestArrivalHotPathAllocs(t *testing.T) {
	plan := Plan{
		Arrival:    Arrival{Process: OnOff, Rate: 0.2},
		Popularity: Popularity{Skew: 1.1, RotateEvery: 30 * sim.Second},
		Sessions:   DefaultSessions(),
		Phases:     []Phase{{Name: "flash", Start: 0, RateScale: 2, HotFiles: 2, HotBoost: 0.5}},
	}
	s := sim.New(1)
	e := New(s, s.NewRand(), plan, 4, 15, nil)
	held := make([]bool, 15)
	// Warm up: cross every phase transition and size the scratch.
	for i := 0; i < 10; i++ {
		e.NextGap(i % 4)
		e.PickFile(i%4, held)
	}
	if n := testing.AllocsPerRun(200, func() {
		e.NextGap(1)
		e.PickFile(1, held)
	}); n != 0 {
		t.Fatalf("arrival hot path allocates %v per query, want 0", n)
	}
}
