package workload

import (
	"math"
	"math/rand"

	"manetp2p/internal/sim"
	"manetp2p/internal/trace"
)

// minGap clamps every drawn inter-query gap: a Poisson burst may draw
// arbitrarily small gaps, and a gap of zero would fire queries in a
// same-instant loop.
const minGap = 10 * sim.Millisecond

// maxSkew bounds the drifting Zipf exponent; beyond this the weights
// underflow and every pick is rank 0 anyway.
const maxSkew = 8.0

// Engine drives one replication's demand. It implements the p2p.Demand
// interface structurally (NextGap/PickFile plus the telemetry hooks)
// without importing the p2p package, and draws all randomness from its
// own stream so enabling a workload never perturbs the other layers'
// draws. Not safe for concurrent use: one Engine per Sim.
type Engine struct {
	s      *sim.Sim
	rng    *rand.Rand
	plan   Plan // defaults resolved
	tracer *trace.Tracer

	classOf []int // node -> index into plan.Sessions.Classes

	// Per-node arrival state.
	on         []bool     // OnOff dwell state
	stateUntil []sim.Time // OnOff dwell boundary
	pending    []bool     // demand arrived, not yet resolved/expired/aborted
	offeredAt  []sim.Time // first arrival of the pending demand
	issuedAt   []sim.Time // last query issue

	weights []float64 // Zipf weight scratch, one per file

	phase int // index of the active phase; -1 before the first

	// Demand conservation counters (see Counters).
	offered, retries, issued   uint64
	resolved, expired, aborted uint64
	inflight, pendingN         uint64
	boundsViol                 uint64
	classIssued                []uint64

	// Latency samples, seconds.
	ttfr       []float64
	completion []float64
}

// New builds the demand engine for one replication: nodes many peers
// over numFiles file ranks. The rng must be a dedicated stream (the
// caller gates its creation on the plan being present, mirroring the
// fault injector, so plan-free runs draw identically to older builds).
// The tracer may be nil.
func New(s *sim.Sim, rng *rand.Rand, plan Plan, nodes, numFiles int, tracer *trace.Tracer) *Engine {
	e := &Engine{
		s:          s,
		rng:        rng,
		plan:       plan.withDefaults(),
		tracer:     tracer,
		classOf:    make([]int, nodes),
		on:         make([]bool, nodes),
		stateUntil: make([]sim.Time, nodes),
		pending:    make([]bool, nodes),
		offeredAt:  make([]sim.Time, nodes),
		issuedAt:   make([]sim.Time, nodes),
		weights:    make([]float64, numFiles),
		phase:      -1,
	}
	classes := e.plan.Sessions.Classes
	e.classIssued = make([]uint64, len(classes))
	total := 0.0
	for _, c := range classes {
		total += c.Weight
	}
	counts := make([]int, len(classes))
	for i := range e.classOf {
		r := e.rng.Float64() * total
		for ci, c := range classes {
			if r < c.Weight || ci == len(classes)-1 {
				e.classOf[i] = ci
				counts[ci]++
				break
			}
			r -= c.Weight
		}
	}
	if e.tracer != nil {
		for ci, c := range classes {
			e.tracer.Emit(trace.KindWorkload, -1, -1, "class %s: %d nodes", c.Name, counts[ci])
		}
	}
	return e
}

// NextGap draws node's next inter-query gap under the active arrival
// process, session class and phase — the arrival hot path, allocation
// free. Every draw is checked against the process bounds; breaches
// increment BoundsViolations for the invariant checker.
func (e *Engine) NextGap(node int) sim.Time {
	now := e.s.Now()
	scale := e.rateScale(node, now)
	a := &e.plan.Arrival
	var gap, lo, hi sim.Time
	switch a.Process {
	case Poisson:
		gap = expGap(e.rng, a.Rate*scale)
	case OnOff:
		gap = e.onOffGap(node, now, a.Rate*scale)
	case Diurnal:
		gap = e.diurnalGap(now, a.Rate*scale)
	default:
		lo, hi = scaleGap(a.GapMin, scale), scaleGap(a.GapMax, scale)
		gap = sim.UniformDuration(e.rng, lo, hi)
	}
	if gap < minGap {
		gap = minGap
	}
	if lo < minGap {
		lo = minGap
	}
	if hi > 0 && hi < minGap {
		hi = minGap // hi == 0 means unbounded (rate processes)
	}
	if gap < lo || (hi > 0 && gap > hi) {
		e.boundsViol++
	}
	return gap
}

// scaleGap divides a configured gap by the rate scale (a faster rate
// means shorter gaps). Scale 1 keeps the exact configured value.
func scaleGap(t sim.Time, scale float64) sim.Time {
	if scale == 1 || scale <= 0 {
		return t
	}
	return sim.Time(float64(t) / scale)
}

// expGap draws an exponential gap for a Poisson process at rate per
// second.
func expGap(rng *rand.Rand, rate float64) sim.Time {
	return sim.FromSeconds(rng.ExpFloat64() / rate)
}

// expDwell draws an exponential dwell with the given mean.
func expDwell(rng *rand.Rand, mean sim.Time) sim.Time {
	d := sim.FromSeconds(rng.ExpFloat64() * mean.Seconds())
	if d < sim.Second {
		d = sim.Second // dwell flapping below the sim tick helps nobody
	}
	return d
}

// onOffGap advances node's two-state dwell machine to cover now, then
// walks forward until an on-state arrival lands inside its dwell.
func (e *Engine) onOffGap(node int, now sim.Time, rate float64) sim.Time {
	a := &e.plan.Arrival
	for e.stateUntil[node] <= now {
		e.on[node] = !e.on[node]
		mean := a.MeanOff
		if e.on[node] {
			mean = a.MeanOn
		}
		e.stateUntil[node] += expDwell(e.rng, mean)
	}
	t := now
	for {
		if e.on[node] {
			g := expGap(e.rng, rate)
			if t+g <= e.stateUntil[node] {
				return t + g - now
			}
			t = e.stateUntil[node]
			e.on[node] = false
			e.stateUntil[node] = t + expDwell(e.rng, a.MeanOff)
		} else {
			t = e.stateUntil[node]
			e.on[node] = true
			e.stateUntil[node] = t + expDwell(e.rng, a.MeanOn)
		}
	}
}

// diurnalGap draws from the sinusoidally modulated Poisson process by
// thinning a homogeneous process at the peak rate. Amplitude < 1 keeps
// the instantaneous rate positive, so the loop terminates.
func (e *Engine) diurnalGap(now sim.Time, base float64) sim.Time {
	a := &e.plan.Arrival
	rmax := base * (1 + a.Amplitude)
	t := now
	for {
		t += expGap(e.rng, rmax)
		frac := float64(t%a.Period) / float64(a.Period)
		r := base * (1 + a.Amplitude*math.Sin(2*math.Pi*frac))
		if e.rng.Float64()*rmax <= r {
			return t - now
		}
	}
}

// rateScale composes the node's class scale with the active phase's.
func (e *Engine) rateScale(node int, now sim.Time) float64 {
	s := e.plan.Sessions.Classes[e.classOf[node]].RateScale
	e.advancePhase(now)
	if e.phase >= 0 {
		if ps := e.plan.Phases[e.phase].RateScale; ps != 0 {
			s *= ps
		}
	}
	return s
}

// advancePhase moves the phase cursor up to now, tracing transitions.
func (e *Engine) advancePhase(now sim.Time) {
	for e.phase+1 < len(e.plan.Phases) && e.plan.Phases[e.phase+1].Start <= now {
		e.phase++
		if e.tracer != nil {
			ph := &e.plan.Phases[e.phase]
			e.tracer.Emit(trace.KindPhase, -1, -1, "phase %s rate=%g hot=%d boost=%g",
				ph.Name, ph.RateScale, ph.HotFiles, ph.HotBoost)
		}
	}
}

// PickFile chooses the file rank node asks for next: a flash-crowd hot
// pick when the active phase scripts one, otherwise a Zipf draw at the
// current (drifted) exponent over the rotated ranking. Files the node
// holds are skipped (a peer does not search for what it has); returns
// -1 only when the node holds everything.
func (e *Engine) PickFile(node int, held []bool) int {
	nf := len(held)
	if nf == 0 {
		return -1
	}
	if nf > len(e.weights) {
		e.weights = make([]float64, nf)
	}
	now := e.s.Now()
	e.advancePhase(now)
	rot := 0
	if p := &e.plan.Popularity; p.RotateEvery > 0 {
		rot = int(now/p.RotateEvery) * p.RotateStep
	}
	if e.phase >= 0 {
		ph := &e.plan.Phases[e.phase]
		if ph.HotFiles > 0 && ph.HotBoost > 0 && e.rng.Float64() < ph.HotBoost {
			hot := ph.HotFiles
			if hot > nf {
				hot = nf
			}
			if f := rankFile(e.rng.Intn(hot), rot, nf); !held[f] {
				return f
			}
		}
	}
	skew := e.skew(now)
	total := 0.0
	for i := 0; i < nf; i++ {
		w := math.Pow(float64(i+1), -skew)
		e.weights[i] = w
		total += w
	}
	for try := 0; try < 8; try++ {
		u := e.rng.Float64() * total
		rank := nf - 1
		for i := 0; i < nf; i++ {
			u -= e.weights[i]
			if u < 0 {
				rank = i
				break
			}
		}
		if f := rankFile(rank, rot, nf); !held[f] {
			return f
		}
	}
	// Dense holdings: fall back to the first unheld rank in popularity
	// order rather than rejection-sampling forever.
	for i := 0; i < nf; i++ {
		if f := rankFile(i, rot, nf); !held[f] {
			return f
		}
	}
	return -1
}

// rankFile maps a popularity rank through the rotation offset onto a
// concrete file index.
func rankFile(rank, rot, nf int) int {
	return (rank + rot) % nf
}

// skew evaluates the drifting Zipf exponent at now.
func (e *Engine) skew(now sim.Time) float64 {
	p := &e.plan.Popularity
	s := p.Skew + p.DriftPerHour*now.Seconds()/3600
	if s < 0 {
		return 0
	}
	if s > maxSkew {
		return maxSkew
	}
	return s
}

// Offered records a demand arrival firing at node: a new pending demand
// the first time, a retry while earlier demand is still unserved (no
// peers, query window open, etc).
func (e *Engine) Offered(node int) {
	if e.pending[node] {
		e.retries++
		return
	}
	e.pending[node] = true
	e.pendingN++
	e.offered++
	e.offeredAt[node] = e.s.Now()
}

// Issued records that node actually sent a query for its pending demand.
func (e *Engine) Issued(node int) {
	e.issued++
	e.inflight++
	e.classIssued[e.classOf[node]]++
	e.issuedAt[node] = e.s.Now()
}

// FirstAnswer records the first hit of the open query: time-to-first-
// result (since issue) and completion latency (since the demand first
// arrived, so retries under churn count against it).
func (e *Engine) FirstAnswer(node int) {
	now := e.s.Now()
	e.ttfr = append(e.ttfr, (now - e.issuedAt[node]).Seconds())
	e.completion = append(e.completion, (now - e.offeredAt[node]).Seconds())
}

// Done closes node's query window: the demand resolved (found) or
// expired unanswered.
func (e *Engine) Done(node int, found bool) {
	if found {
		e.resolved++
	} else {
		e.expired++
	}
	e.inflight--
	e.pending[node] = false
	e.pendingN--
}

// Aborted records a query window cut short by the node leaving the
// overlay (churn, crash, battery death).
func (e *Engine) Aborted(node int) {
	e.aborted++
	e.inflight--
	e.pending[node] = false
	e.pendingN--
}

// SessionChurn reports whether node's class churns on its own absolute
// means, enabling the death/birth process even in scenarios without a
// global churn configuration.
func (e *Engine) SessionChurn(node int) bool {
	return e.plan.Sessions.Classes[e.classOf[node]].MeanUptime > 0
}

// ChurnMeans composes node's class with the scenario's churn means:
// absolute class means win, otherwise the class scales the base.
func (e *Engine) ChurnMeans(node int, baseUp, baseDown sim.Time) (up, down sim.Time) {
	c := &e.plan.Sessions.Classes[e.classOf[node]]
	up, down = baseUp, baseDown
	if c.MeanUptime > 0 {
		up = c.MeanUptime
	} else if up > 0 && c.UptimeScale != 1 {
		up = sim.Time(float64(up) * c.UptimeScale)
	}
	if c.MeanDowntime > 0 {
		down = c.MeanDowntime
	} else if down > 0 && c.DowntimeScale != 1 {
		down = sim.Time(float64(down) * c.DowntimeScale)
	}
	return up, down
}

// Counters is the conservation ledger the invariant checker audits:
// Offered = Resolved + Expired + Aborted + Pending, and
// Issued = Resolved + Expired + Aborted + InFlight, with InFlight equal
// to the number of servents holding an open request.
type Counters struct {
	Offered, Retries, Issued      uint64
	Resolved, Expired, Aborted    uint64
	InFlight, Pending, BoundsViol uint64
}

// Counters snapshots the conservation ledger.
func (e *Engine) Counters() Counters {
	return Counters{
		Offered: e.offered, Retries: e.retries, Issued: e.issued,
		Resolved: e.resolved, Expired: e.expired, Aborted: e.aborted,
		InFlight: e.inflight, Pending: e.pendingN, BoundsViol: e.boundsViol,
	}
}

// BoundsViolations counts gap draws that escaped the configured process
// bounds (always zero unless the engine itself regresses).
func (e *Engine) BoundsViolations() uint64 { return e.boundsViol }

// DriftForTest corrupts the in-flight counter by one — the seeded
// mutation the invariant-checker tests use to prove the conservation
// rules actually fire.
func (e *Engine) DriftForTest() { e.inflight++ }

// ClassStat is one session class's telemetry.
type ClassStat struct {
	Name   string
	Nodes  int
	Issued uint64
}

// Telemetry is one replication's demand outcome, harvested at the
// horizon.
type Telemetry struct {
	Offered, Retries, Issued   uint64
	Resolved, Expired, Aborted uint64
	InFlight                   uint64 // open windows at the horizon

	TTFR       []float64 // seconds from issue to first answer
	Completion []float64 // seconds from demand arrival to first answer

	Classes []ClassStat
}

// Snapshot harvests the telemetry (call after the run; slices are
// copies).
func (e *Engine) Snapshot() Telemetry {
	t := Telemetry{
		Offered: e.offered, Retries: e.retries, Issued: e.issued,
		Resolved: e.resolved, Expired: e.expired, Aborted: e.aborted,
		InFlight:   e.inflight,
		TTFR:       append([]float64(nil), e.ttfr...),
		Completion: append([]float64(nil), e.completion...),
	}
	counts := make([]int, len(e.plan.Sessions.Classes))
	for _, ci := range e.classOf {
		counts[ci]++
	}
	for ci, c := range e.plan.Sessions.Classes {
		t.Classes = append(t.Classes, ClassStat{
			Name: c.Name, Nodes: counts[ci], Issued: e.classIssued[ci],
		})
	}
	return t
}
