// Package workload generates the query demand a scenario puts on the
// overlay. The paper evaluates its four (re)configuration algorithms
// under one fixed model — every servent draws a uniform 15–45 s gap
// between queries over a static Zipf placement (§7.2) — but the
// algorithms exist to survive changing conditions, so this package
// makes demand scriptable while keeping every draw deterministic:
//
//   - arrival processes: the paper's uniform-gap baseline, Poisson,
//     bursty on/off (MMPP-style), and a diurnal sinusoid;
//   - evolving popularity: Zipf picks with a drifting exponent and
//     periodic hot-set rotation, layered over the static placement of
//     internal/p2p/files.go (what nodes HOLD never changes — what they
//     WANT does);
//   - session classes (seeder / free-rider / transient) scaling both
//     the per-node query rate and the manet churn means;
//   - a phase timeline (ramp → steady → flash crowd → drain) scaling
//     the arrival rate and optionally focusing picks on a hot set.
//
// The Engine also owns the demand telemetry: offered vs issued vs
// resolved counts, time-to-first-result and completion latencies, and
// the conservation counters the invariant checker cross-checks against
// the servents' open requests.
package workload

import (
	"fmt"
	"strings"

	"manetp2p/internal/sim"
)

// Process selects the arrival process that spaces a node's queries.
type Process int

const (
	// Uniform is the paper's baseline: a uniform gap in [GapMin, GapMax].
	Uniform Process = iota
	// Poisson spaces queries with exponential gaps at Rate per second.
	Poisson
	// OnOff is a two-state burst process: exponential on/off dwells
	// (means MeanOn/MeanOff) with Poisson arrivals at Rate while on and
	// silence while off — an MMPP-style bursty source.
	OnOff
	// Diurnal modulates a Poisson process sinusoidally over Period:
	// rate(t) = Rate·(1 + Amplitude·sin(2πt/Period)).
	Diurnal

	numProcesses
)

// String names the process as the JSON plan does.
func (p Process) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Poisson:
		return "poisson"
	case OnOff:
		return "onoff"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("process(%d)", int(p))
	}
}

// ProcessNames lists the valid process names for error messages.
func ProcessNames() string {
	names := make([]string, numProcesses)
	for p := Process(0); p < numProcesses; p++ {
		names[p] = p.String()
	}
	return strings.Join(names, ", ")
}

// ParseProcess resolves a JSON process tag; "" means Uniform so a zero
// arrival block keeps the paper's behavior.
func ParseProcess(s string) (Process, error) {
	if s == "" {
		return Uniform, nil
	}
	for p := Process(0); p < numProcesses; p++ {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown arrival process %q (valid: %s)", s, ProcessNames())
}

// Arrival configures the inter-query arrival process. The zero value is
// the paper's baseline (uniform 15–45 s gap).
type Arrival struct {
	Process Process

	// Uniform: gap bounds. Both zero defaults to the paper's 15 s/45 s.
	GapMin sim.Time
	GapMax sim.Time

	// Rate is the mean arrivals per second for Poisson, OnOff (while
	// on) and Diurnal (the base rate).
	Rate float64

	// OnOff dwell means; zero defaults to 60 s on / 180 s off.
	MeanOn  sim.Time
	MeanOff sim.Time

	// Diurnal cycle length (zero defaults to 600 s) and modulation
	// depth in [0, 1) (zero defaults to 0.8).
	Period    sim.Time
	Amplitude float64
}

// maxRate bounds configured arrival rates: beyond this the sim spends
// all its time firing query events (the engine also clamps every drawn
// gap to minGap).
const maxRate = 1000.0

// Validate reports a descriptive error for an inconsistent arrival
// configuration.
func (a Arrival) Validate() error {
	switch a.Process {
	case Uniform:
		switch {
		case a.GapMin < 0 || a.GapMax < 0:
			return fmt.Errorf("workload: negative uniform gap bounds [%v, %v]", a.GapMin, a.GapMax)
		case a.GapMax < a.GapMin:
			return fmt.Errorf("workload: uniform GapMax %v < GapMin %v", a.GapMax, a.GapMin)
		}
	case Poisson, OnOff, Diurnal:
		if a.Rate <= 0 || a.Rate > maxRate {
			return fmt.Errorf("workload: %s rate %v outside (0, %g] per second", a.Process, a.Rate, maxRate)
		}
		if a.Process == OnOff && (a.MeanOn < 0 || a.MeanOff < 0) {
			return fmt.Errorf("workload: negative on/off dwell means [%v, %v]", a.MeanOn, a.MeanOff)
		}
		if a.Process == Diurnal {
			if a.Period < 0 {
				return fmt.Errorf("workload: diurnal period %v negative", a.Period)
			}
			if a.Amplitude < 0 || a.Amplitude >= 1 {
				return fmt.Errorf("workload: diurnal amplitude %v outside [0, 1)", a.Amplitude)
			}
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %d (valid: %s)", int(a.Process), ProcessNames())
	}
	return nil
}

// withDefaults resolves the zero-value conventions.
func (a Arrival) withDefaults() Arrival {
	switch a.Process {
	case Uniform:
		if a.GapMin == 0 && a.GapMax == 0 {
			a.GapMin, a.GapMax = 15*sim.Second, 45*sim.Second
		}
	case OnOff:
		if a.MeanOn == 0 {
			a.MeanOn = 60 * sim.Second
		}
		if a.MeanOff == 0 {
			a.MeanOff = 180 * sim.Second
		}
	case Diurnal:
		if a.Period == 0 {
			a.Period = 600 * sim.Second
		}
		if a.Amplitude == 0 {
			a.Amplitude = 0.8
		}
	}
	return a
}

// Popularity evolves WHICH files are requested over time. Ranks follow
// a Zipf law with exponent Skew(t) = Skew + DriftPerHour·hours (clamped
// to ≥ 0); RotateEvery periodically shifts which concrete file holds
// rank 0 by RotateStep, modelling interest moving through the catalog.
// The zero value means Zipf with exponent 1 and no rotation.
type Popularity struct {
	Skew         float64  // Zipf exponent at t = 0; 0 defaults to 1
	DriftPerHour float64  // added to Skew per simulated hour (may be negative)
	RotateEvery  sim.Time // hot-set rotation period; 0 = no rotation
	RotateStep   int      // ranks shifted per rotation; 0 defaults to 1
}

// Validate reports a descriptive error for inconsistent popularity
// configuration.
func (p Popularity) Validate() error {
	switch {
	case p.Skew < 0:
		return fmt.Errorf("workload: popularity skew %v negative", p.Skew)
	case p.RotateEvery < 0:
		return fmt.Errorf("workload: rotate period %v negative", p.RotateEvery)
	case p.RotateStep < 0:
		return fmt.Errorf("workload: rotate step %d negative", p.RotateStep)
	}
	return nil
}

func (p Popularity) withDefaults() Popularity {
	if p.Skew == 0 {
		p.Skew = 1
	}
	if p.RotateStep == 0 {
		p.RotateStep = 1
	}
	return p
}

// SessionClass is one node population in the session mix. Every node is
// assigned a class at build time by Weight; the class scales its query
// rate and its churn behavior.
type SessionClass struct {
	Name   string
	Weight float64 // relative population share; must be > 0

	// RateScale multiplies the arrival rate (divides gaps); 0 means 1.
	RateScale float64

	// Churn composition with manet.ChurnConfig: absolute means override
	// the scenario's (enabling churn for this class even when the
	// scenario has none); otherwise the scales multiply the scenario's
	// means when churn is on. Zero scales mean 1.
	UptimeScale   float64
	DowntimeScale float64
	MeanUptime    sim.Time
	MeanDowntime  sim.Time
}

// Validate reports a descriptive error for an inconsistent class.
func (c SessionClass) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workload: session class without a name")
	case c.Weight <= 0:
		return fmt.Errorf("workload: session class %q weight %v not positive", c.Name, c.Weight)
	case c.RateScale < 0:
		return fmt.Errorf("workload: session class %q rate scale %v negative", c.Name, c.RateScale)
	case c.UptimeScale < 0 || c.DowntimeScale < 0:
		return fmt.Errorf("workload: session class %q negative churn scales", c.Name)
	case c.MeanUptime < 0 || c.MeanDowntime < 0:
		return fmt.Errorf("workload: session class %q negative churn means", c.Name)
	case c.MeanUptime > 0 && c.MeanDowntime == 0:
		return fmt.Errorf("workload: session class %q sets MeanUptime without MeanDowntime", c.Name)
	}
	return nil
}

func (c SessionClass) withDefaults() SessionClass {
	if c.RateScale == 0 {
		c.RateScale = 1
	}
	if c.UptimeScale == 0 {
		c.UptimeScale = 1
	}
	if c.DowntimeScale == 0 {
		c.DowntimeScale = 1
	}
	return c
}

// Sessions is the class mix. Empty means one homogeneous class.
type Sessions struct {
	Classes []SessionClass `json:"classes,omitempty"`
}

// DefaultSessions returns the seeder / free-rider / transient mix the
// churn experiments use: a few stable low-demand seeders, a majority of
// query-heavy free riders, and a transient population that churns even
// in scenarios without a global churn process.
func DefaultSessions() Sessions {
	return Sessions{Classes: []SessionClass{
		{Name: "seeder", Weight: 0.2, RateScale: 0.3, UptimeScale: 3},
		{Name: "freerider", Weight: 0.5, RateScale: 1.5},
		{Name: "transient", Weight: 0.3,
			MeanUptime: 600 * sim.Second, MeanDowntime: 120 * sim.Second},
	}}
}

// Phase is one segment of the demand timeline. Phases apply from Start
// until the next phase's Start; before the first phase everything runs
// at scale 1 with no hot set.
type Phase struct {
	Name  string
	Start sim.Time

	// RateScale multiplies arrival rates during the phase; 0 means 1
	// (use a small value, not 0, for a drain phase).
	RateScale float64

	// Flash crowd: with probability HotBoost a pick targets the HotFiles
	// currently most popular ranks instead of the Zipf draw.
	HotFiles int
	HotBoost float64
}

// Validate reports a descriptive error for an inconsistent phase.
func (p Phase) Validate() error {
	switch {
	case p.Start < 0:
		return fmt.Errorf("workload: phase %q start %v negative", p.Name, p.Start)
	case p.RateScale < 0:
		return fmt.Errorf("workload: phase %q rate scale %v negative", p.Name, p.RateScale)
	case p.HotFiles < 0:
		return fmt.Errorf("workload: phase %q hot files %d negative", p.Name, p.HotFiles)
	case p.HotBoost < 0 || p.HotBoost > 1:
		return fmt.Errorf("workload: phase %q hot boost %v outside [0, 1]", p.Name, p.HotBoost)
	}
	return nil
}

// Plan is one complete scripted workload. The zero value reproduces the
// paper's demand model (uniform 15–45 s gaps, Zipf-1 picks, one class,
// no phases); a scenario opts in by setting a (possibly zero) plan.
type Plan struct {
	Arrival    Arrival    `json:"arrival"`
	Popularity Popularity `json:"popularity"`
	Sessions   Sessions   `json:"sessions"`
	Phases     []Phase    `json:"phases,omitempty"`
}

// Validate reports a descriptive error for an inconsistent plan.
func (p Plan) Validate() error {
	if err := p.Arrival.Validate(); err != nil {
		return err
	}
	if err := p.Popularity.Validate(); err != nil {
		return err
	}
	for _, c := range p.Sessions.Classes {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	var last sim.Time
	for i, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return err
		}
		if i > 0 && ph.Start < last {
			return fmt.Errorf("workload: phase %q starts at %v, before the previous phase's %v",
				ph.Name, ph.Start, last)
		}
		last = ph.Start
	}
	return nil
}

// withDefaults resolves every zero-value convention into an explicit
// plan for the engine. The authored plan is kept as-is in the scenario
// so JSON round-trips exactly.
func (p Plan) withDefaults() Plan {
	p.Arrival = p.Arrival.withDefaults()
	p.Popularity = p.Popularity.withDefaults()
	if len(p.Sessions.Classes) == 0 {
		p.Sessions.Classes = []SessionClass{{Name: "peer", Weight: 1}}
	}
	classes := make([]SessionClass, len(p.Sessions.Classes))
	for i, c := range p.Sessions.Classes {
		classes[i] = c.withDefaults()
	}
	p.Sessions.Classes = classes
	return p
}
