package sim

// Event is a scheduled callback. The zero Event is not useful; events are
// created by Sim.Schedule and Sim.At. Holding the returned *Event allows
// the caller to Cancel it before it fires.
type Event struct {
	at        Time
	seq       uint64 // tie-breaker: FIFO order among same-instant events
	fn        func()
	cancelled bool
	fired     bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op. Cancellation is lazy: the
// entry stays in the queue and is discarded when popped.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e != nil && e.fired }

// eventQueue is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than wrapping container/heap to avoid the interface-call overhead
// on the simulator's hottest path.
type eventQueue struct {
	items []*Event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e *Event) {
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

func (q *eventQueue) pop() *Event {
	n := len(q.items)
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top
}

// peek returns the earliest event without removing it, or nil if empty.
func (q *eventQueue) peek() *Event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
