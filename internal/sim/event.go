package sim

// Event is a scheduled callback slot. Events are pooled: the Sim owns
// every *Event and recycles it — through an intrusive free list — when
// it fires or when its lazy cancellation is discarded. Callers never
// hold an *Event; they hold the value-type Handle returned by the
// scheduling calls, which a generation counter keeps safe against
// recycling (cancelling a stale Handle is a no-op, never a misfire of
// the slot's next tenant).
type Event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO order among same-instant events
	gen uint64 // bumped on recycle; Handles with an older gen are stale

	fn    func()    // plain callback (nil when argFn is set)
	argFn func(Arg) // typed callback, paired with arg
	arg   Arg

	cancelled bool
	fired     bool
	nextFree  *Event // intrusive free-list link, meaningful only when pooled
}

// Arg is the small value payload of the typed scheduling API
// (ScheduleArg/AtArg). It exists so hot-path components — the radio
// medium, routing-protocol timers, servent timers, churn — can schedule
// per-message or per-peer work without allocating a capturing closure
// per call: the component stores one func(Arg) for its callback and
// passes the variable state here. Ints cover ids/ranks; X carries an
// optional pointer or pre-boxed payload (storing a pointer in an
// interface does not allocate).
type Arg struct {
	I0, I1 int
	X      any
}

// Handle identifies one scheduled firing. The zero Handle is valid and
// refers to nothing: Cancel on it is a no-op and Pending reports false,
// so callers can store Handles directly in structs without nil checks.
// Handles are values — copy them freely.
type Handle struct {
	ev  *Event
	gen uint64
}

// live reports whether the handle still refers to the firing it was
// created for (the slot has not been recycled for a new event).
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Cancel prevents the event from firing. Cancelling an event that
// already fired, was already cancelled, or whose slot was recycled is a
// no-op. Cancellation is lazy: the entry stays in the queue and is
// discarded (and its slot recycled) when it reaches the head.
func (h Handle) Cancel() {
	if h.live() && !h.ev.fired {
		h.ev.cancelled = true
	}
}

// Pending reports whether the firing is still scheduled: not yet fired
// and not cancelled. A recycled slot reports false.
func (h Handle) Pending() bool {
	return h.live() && !h.ev.cancelled && !h.ev.fired
}

// eventQueue is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than wrapping container/heap to avoid the interface-call overhead
// on the simulator's hottest path.
type eventQueue struct {
	items []*Event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e *Event) {
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

func (q *eventQueue) pop() *Event {
	n := len(q.items)
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top
}

// peek returns the earliest event without removing it, or nil if empty.
func (q *eventQueue) peek() *Event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
