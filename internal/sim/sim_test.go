package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		sec  float64
		want Time
	}{
		{0, 0},
		{1, Second},
		{0.5, 500 * Millisecond},
		{3600, Hour},
		{1e-6, Microsecond},
	}
	for _, c := range cases {
		if got := FromSeconds(c.sec); got != c.want {
			t.Errorf("FromSeconds(%v) = %v, want %v", c.sec, got, c.want)
		}
		if got := c.want.Seconds(); got != c.sec {
			t.Errorf("(%v).Seconds() = %v, want %v", c.want, got, c.sec)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Errorf("String() = %q, want 1.500000s", got)
	}
	if got := Time(-1500 * Millisecond).String(); got != "-1.500000s" {
		t.Errorf("String() = %q, want -1.500000s", got)
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(3*Second, func() { order = append(order, 3) })
	s.Schedule(1*Second, func() { order = append(order, 1) })
	s.Schedule(2*Second, func() { order = append(order, 2) })
	s.Run(MaxTime)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Second, func() { order = append(order, i) })
	}
	s.Run(MaxTime)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(7*Second, func() { at = s.Now() })
	s.Run(MaxTime)
	if at != 7*Second {
		t.Errorf("Now() inside event = %v, want 7s", at)
	}
	if s.Now() != 7*Second {
		t.Errorf("final Now() = %v, want 7s", s.Now())
	}
}

func TestRunHorizonStopsClock(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(10*Second, func() { fired = true })
	s.Run(5 * Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != 5*Second {
		t.Errorf("Now() = %v, want 5s (the horizon)", s.Now())
	}
	// The event must still be deliverable by a later Run.
	s.Run(MaxTime)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestRunAdvancesClockToFiniteHorizonOnDrain(t *testing.T) {
	s := New(1)
	s.Schedule(Second, func() {})
	s.Run(10 * Second)
	if s.Now() != 10*Second {
		t.Errorf("Now() = %v after drain, want the 10s horizon", s.Now())
	}
	// An infinite horizon must NOT teleport the clock.
	s2 := New(1)
	s2.Schedule(Second, func() {})
	s2.Run(MaxTime)
	if s2.Now() != Second {
		t.Errorf("Now() = %v after Run(MaxTime), want 1s", s2.Now())
	}
	// Horizons in the past leave the clock alone.
	s.Run(5 * Second)
	if s.Now() != 10*Second {
		t.Errorf("Now() = %v after stale horizon, want 10s", s.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(Second, func() { fired = true })
	if !e.Pending() {
		t.Error("Pending() = false before Cancel")
	}
	e.Cancel()
	if e.Pending() {
		t.Error("Pending() = true after Cancel")
	}
	s.Run(MaxTime)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelFromInsideEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	var e Handle
	s.Schedule(1*Second, func() { e.Cancel() })
	e = s.Schedule(2*Second, func() { fired = true })
	s.Run(MaxTime)
	if fired {
		t.Error("event cancelled by earlier event still fired")
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	s := New(1)
	var times []Time
	s.Schedule(Second, func() {
		times = append(times, s.Now())
		s.Schedule(Second, func() { times = append(times, s.Now()) })
	})
	s.Run(MaxTime)
	if len(times) != 2 || times[0] != Second || times[1] != 2*Second {
		t.Fatalf("times = %v, want [1s 2s]", times)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(-1) did not panic")
		}
	}()
	New(1).Schedule(-1, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	s := New(1)
	s.Schedule(5*Second, func() {})
	s.Run(MaxTime)
	defer func() {
		if recover() == nil {
			t.Error("At(past) did not panic")
		}
	}()
	s.At(Second, func() {})
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i)*Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(MaxTime)
	if count != 3 {
		t.Errorf("count = %d after Stop, want 3", count)
	}
	// Run again resumes.
	s.Run(MaxTime)
	if count != 10 {
		t.Errorf("count = %d after resume, want 10", count)
	}
}

func TestStepExecutesOneEvent(t *testing.T) {
	s := New(1)
	count := 0
	s.Schedule(Second, func() { count++ })
	s.Schedule(2*Second, func() { count++ })
	if !s.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 {
		t.Fatalf("count = %d after one Step, want 1", count)
	}
	if !s.Step() || s.Step() {
		t.Fatal("Step count mismatch")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, int64(s.Now()), s.Rand().Int63n(1000))
			if len(out) < 40 {
				s.Schedule(UniformDuration(s.Rand(), Millisecond, Second), tick)
			}
		}
		s.Schedule(0, tick)
		s.Run(MaxTime)
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestNewRandStreamsIndependent(t *testing.T) {
	s := New(7)
	r1, r2 := s.NewRand(), s.NewRand()
	same := true
	for i := 0; i < 16; i++ {
		if r1.Int63() != r2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("NewRand returned correlated streams")
	}
}

// Property: for any batch of delays, events fire in nondecreasing time
// order and the set of observed times equals the set scheduled.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 500 {
			delays = delays[:500]
		}
		s := New(1)
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run(MaxTime)
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the heap never yields an element earlier than one already
// yielded even under interleaved push/pop.
func TestQuickHeapInterleaved(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var seq uint64
		last := Time(-1)
		for _, op := range ops {
			if rng.Intn(3) != 0 || q.Len() == 0 {
				seq++
				at := last
				if at < 0 {
					at = 0
				}
				q.push(&Event{at: at + Time(op), seq: seq})
			} else {
				e := q.pop()
				if e.at < last {
					return false
				}
				last = e.at
			}
		}
		for q.Len() > 0 {
			e := q.pop()
			if e.at < last {
				return false
			}
			last = e.at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformDurationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lo, hi := 15*Second, 45*Second
	seenLo, seenHi := false, false
	for i := 0; i < 20000; i++ {
		v := UniformDuration(rng, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("UniformDuration out of range: %v", v)
		}
		if v < lo+Second {
			seenLo = true
		}
		if v > hi-Second {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("UniformDuration does not cover range ends")
	}
	if got := UniformDuration(rng, lo, lo); got != lo {
		t.Errorf("degenerate range: got %v, want %v", got, lo)
	}
}

func TestUniformDurationPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on hi < lo")
		}
	}()
	UniformDuration(rand.New(rand.NewSource(1)), Second, 0)
}

func TestTimerResetAndStop(t *testing.T) {
	s := New(1)
	count := 0
	tm := NewTimer(s, func() { count++ })
	if tm.Armed() {
		t.Error("new timer reports armed")
	}
	tm.Reset(2 * Second)
	if !tm.Armed() {
		t.Error("timer not armed after Reset")
	}
	// Re-arm before firing: only one firing must happen.
	s.Run(Second)
	tm.Reset(2 * Second)
	s.Run(MaxTime)
	if count != 1 {
		t.Errorf("count = %d, want 1 (Reset must supersede prior arm)", count)
	}
	if s.Now() != 3*Second {
		t.Errorf("fired at %v, want 3s", s.Now())
	}
	tm.Reset(Second)
	tm.Stop()
	s.Run(MaxTime)
	if count != 1 {
		t.Errorf("count = %d after Stop, want 1", count)
	}
	if tm.Armed() {
		t.Error("stopped timer reports armed")
	}
}

func TestTickerRepeatsAndStops(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(s, Second, func() {
		ticks = append(ticks, s.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	s.Run(10 * Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 entries", ticks)
	}
	for i, at := range ticks {
		if at != Time(i+1)*Second {
			t.Errorf("tick %d at %v, want %v", i, at, Time(i+1)*Second)
		}
	}
}

func TestTickerSetInterval(t *testing.T) {
	s := New(1)
	var ticks []Time
	tk := NewTicker(s, Second, func() { ticks = append(ticks, s.Now()) })
	s.Run(Second)
	tk.SetInterval(3 * Second)
	s.Run(8 * Second)
	tk.Stop()
	// The tick pending at SetInterval time (2s) is not disturbed; the new
	// period applies from the tick after it.
	want := []Time{Second, 2 * Second, 5 * Second, 8 * Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var h Handle
	h.Cancel() // must not panic
	if h.Pending() {
		t.Error("zero Handle reports pending")
	}
}

// A handle to a fired (and therefore recycled) event must stay inert even
// after its slot is reused for a new event: the generation counter is
// what makes lazy cancellation safe under pooling.
func TestStaleHandleAfterRecycleIsInert(t *testing.T) {
	s := New(1)
	h1 := s.Schedule(Second, func() {})
	s.Run(MaxTime)
	if h1.Pending() {
		t.Error("handle to fired event reports pending")
	}
	fired := false
	h2 := s.Schedule(Second, func() { fired = true })
	if h1.ev != h2.ev {
		t.Fatal("expected the freed slot to be reused (pool broken?)")
	}
	h1.Cancel() // stale: must not cancel the slot's new tenant
	if !h2.Pending() {
		t.Error("stale Cancel hit the slot's new tenant")
	}
	s.Run(MaxTime)
	if !fired {
		t.Error("recycled event did not fire")
	}
}

// Satellite regression: a lazily-cancelled event sitting at the queue
// head past the Run horizon used to stay enqueued forever; peek must
// purge it.
func TestRunPurgesCancelledHeadPastHorizon(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		e := s.Schedule(10*Second, func() {})
		e.Cancel()
	}
	s.Run(5 * Second)
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0: cancelled heads past the horizon must be purged", s.Pending())
	}
	if s.Now() != 5*Second {
		t.Errorf("Now() = %v, want the 5s horizon", s.Now())
	}
}

func TestReservedSeqPreservesOrdering(t *testing.T) {
	s := New(1)
	var order []int
	seqA := s.ReserveSeq() // logical event A claims its place in line
	s.Schedule(Second, func() { order = append(order, 2) })
	// A is armed after B but with the earlier reserved seq, so it still
	// fires first — the property batched radio delivery depends on.
	s.AtReserved(Second, seqA, func() { order = append(order, 1) })
	s.Run(MaxTime)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestScheduleArgDeliversPayload(t *testing.T) {
	s := New(1)
	var got []int
	fn := func(a Arg) { got = append(got, a.I0, a.I1) }
	s.ScheduleArg(Second, fn, Arg{I0: 7, I1: 9})
	h := s.ScheduleArg(2*Second, fn, Arg{I0: 1})
	if !h.Pending() {
		t.Error("ScheduleArg handle not pending")
	}
	h.Cancel()
	s.Run(MaxTime)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("got = %v, want [7 9]", got)
	}
}

// Alloc guard (ISSUE 2): once the pool is warm, scheduling and firing an
// event — plain or typed-arg — performs zero heap allocations.
func TestScheduleFireZeroAllocs(t *testing.T) {
	s := New(1)
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run(MaxTime)

	n := 0
	fn := func() { n++ }
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(Second, fn)
		s.Run(MaxTime)
	}); allocs != 0 {
		t.Errorf("Schedule+fire allocates %.1f allocs/op, want 0", allocs)
	}

	argFn := func(a Arg) { n += a.I0 }
	if allocs := testing.AllocsPerRun(1000, func() {
		s.ScheduleArg(Second, argFn, Arg{I0: 1, X: s})
		s.Run(MaxTime)
	}); allocs != 0 {
		t.Errorf("ScheduleArg+fire allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPendingAndFiredCounters(t *testing.T) {
	s := New(1)
	s.Schedule(Second, func() {})
	s.Schedule(2*Second, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.Run(MaxTime)
	if s.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", s.Fired())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after drain, want 0", s.Pending())
	}
}

func TestTimerStopSurvivesSlotRecycle(t *testing.T) {
	s := New(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(5 * Second)
	tm.Stop() // lazily cancelled; the entry is still queued

	s.Run(6 * Second) // discards the cancelled entry, recycling its slot

	// The recycled slot's next tenant must be invisible to the timer.
	tenant := 0
	s.Schedule(2*Second, func() { tenant++ })
	if tm.Armed() {
		t.Error("stopped timer reports armed after its slot was reused")
	}
	tm.Stop() // no-op; must not touch the slot's new tenant
	tm.Reset(Second)
	if !tm.Armed() {
		t.Error("timer not armed after Reset on a recycled slot")
	}
	s.Run(MaxTime)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if tenant != 1 {
		t.Errorf("tenant fired %d times, want 1 (stale timer cancelled it?)", tenant)
	}
}

func TestTimerStaleAfterFireAndSlotReuse(t *testing.T) {
	s := New(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(Second)
	s.Run(2 * Second) // fires; the slot returns to the pool

	tenant := 0
	s.Schedule(Second, func() { tenant++ }) // reuses the slot
	if tm.Armed() {
		t.Error("fired timer reports armed through its recycled slot")
	}
	tm.Stop() // stale handle: must not cancel the new tenant
	s.Run(MaxTime)
	if tenant != 1 {
		t.Errorf("tenant fired %d times, want 1", tenant)
	}
	tm.Reset(Second) // the timer must remain reusable after going stale
	s.Run(MaxTime)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}
