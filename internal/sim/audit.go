package sim

import "fmt"

// This file implements the kernel half of the runtime invariant checker
// (internal/invariant): a structural self-validation of the pooled event
// engine introduced by the zero-allocation rewrite. It runs only when a
// caller asks for it — nothing here touches the schedule/fire hot path —
// and exists because the engine's correctness now rests on bookkeeping
// (heap order, generation counters, an intrusive free list) that golden
// fixtures exercise but never inspect directly.

// Audit validates the simulator's internal structures and reports each
// violated rule through report(rule, detail). A healthy Sim reports
// nothing. The rules:
//
//   - heap-order: the event queue satisfies the (at, seq) min-heap
//     property — the engine always fires the earliest pending event.
//   - past-event: no queued event is stamped before Now; the past is
//     immutable (peekLive discards cancelled entries before the clock
//     can move past them, so even lazily-cancelled events obey this).
//   - seq-bound / seq-dup: every queued sequence number was actually
//     issued, and no two *live* queued events share one — the FIFO
//     tie-break among same-instant events is total. Cancelled entries
//     are exempt: the radio medium re-arms its drain event under a
//     reserved seq (AtReserved) whose lazily-cancelled predecessor may
//     still sit in the queue holding the same number.
//   - callback: every queued slot carries exactly one callback (fn or
//     argFn), so firing it cannot panic or silently do nothing.
//   - free-list: recycled slots are disjoint from the queue, carry no
//     stale callback or cancellation state, and the intrusive list is
//     acyclic — a slot can never be both pending and reusable, which is
//     the structural form of "no fired-handle reuse".
//
// Audit allocates scratch maps; it is meant for periodic self-checks,
// not for per-event use.
func (s *Sim) Audit(report func(rule, detail string)) {
	n := len(s.queue.items)
	queued := make(map[*Event]int, n)
	seqs := make(map[uint64]int, n)
	for i, e := range s.queue.items {
		queued[e] = i
		if left := 2*i + 1; left < n && s.queue.less(left, i) {
			report("heap-order", fmt.Sprintf("item %d (at=%v seq=%d) orders after its child %d (at=%v seq=%d)",
				i, e.at, e.seq, left, s.queue.items[left].at, s.queue.items[left].seq))
		}
		if right := 2*i + 2; right < n && s.queue.less(right, i) {
			report("heap-order", fmt.Sprintf("item %d (at=%v seq=%d) orders after its child %d (at=%v seq=%d)",
				i, e.at, e.seq, right, s.queue.items[right].at, s.queue.items[right].seq))
		}
		if e.at < s.now {
			report("past-event", fmt.Sprintf("queued event at %v precedes now %v (seq=%d cancelled=%v)",
				e.at, s.now, e.seq, e.cancelled))
		}
		if e.seq > s.seq {
			report("seq-bound", fmt.Sprintf("queued seq %d exceeds issued high-water %d", e.seq, s.seq))
		}
		if !e.cancelled {
			if prev, dup := seqs[e.seq]; dup {
				report("seq-dup", fmt.Sprintf("seq %d held by live queue items %d and %d", e.seq, prev, i))
			}
			seqs[e.seq] = i
		}
		if (e.fn == nil) == (e.argFn == nil) {
			which := "no callback"
			if e.fn != nil {
				which = "both fn and argFn"
			}
			report("callback", fmt.Sprintf("queued event at %v seq=%d carries %s", e.at, e.seq, which))
		}
	}

	// Walk the free list with a visited set doubling as the cycle guard.
	seen := make(map[*Event]bool)
	for e := s.free; e != nil; e = e.nextFree {
		if seen[e] {
			report("free-list", "intrusive free list contains a cycle")
			break
		}
		seen[e] = true
		if i, inQueue := queued[e]; inQueue {
			report("free-list", fmt.Sprintf("slot is both free and queued as item %d (at=%v seq=%d)",
				i, e.at, e.seq))
		}
		if e.fn != nil || e.argFn != nil || e.arg.I0 != 0 || e.arg.I1 != 0 || e.arg.X != nil {
			report("free-list", "recycled slot retains a callback or argument")
		}
		if e.cancelled || e.fired {
			report("free-list", "recycled slot retains cancellation/fired state")
		}
	}
}
