package sim

// Timer is a restartable one-shot timer bound to a Sim. It exists because
// protocol code (keepalive timeouts, retry backoff) constantly re-arms
// the same conceptual timer; Timer keeps that pattern to two methods and
// guarantees at most one pending firing.
type Timer struct {
	sim   *Sim
	event Handle
	fn    func()
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(s *Sim, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{sim: s, fn: fn}
}

// Reset (re)arms the timer to fire after delay, cancelling any pending
// firing.
func (t *Timer) Reset(delay Time) {
	t.event.Cancel()
	t.event = t.sim.Schedule(delay, t.fn)
}

// Stop cancels any pending firing. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	t.event.Cancel()
	t.event = Handle{}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.event.Pending() }

// Ticker invokes fn every interval until stopped. Intervals may be
// changed between ticks via SetInterval.
type Ticker struct {
	sim      *Sim
	interval Time
	event    Handle
	fn       func()
	tick     func() // self-rescheduling wrapper, built once in NewTicker
	stopped  bool
}

// NewTicker starts a repeating callback with the given interval. The
// first firing happens one full interval from now. Interval must be
// positive: a zero-interval ticker would live-lock the event loop.
func NewTicker(s *Sim, interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: NewTicker with non-positive interval")
	}
	if fn == nil {
		panic("sim: NewTicker with nil callback")
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.event = t.sim.Schedule(t.interval, t.tick)
		}
	}
	t.event = s.Schedule(interval, t.tick)
	return t
}

// SetInterval changes the period for subsequent ticks. It does not
// disturb the currently pending tick.
func (t *Ticker) SetInterval(interval Time) {
	if interval <= 0 {
		panic("sim: SetInterval with non-positive interval")
	}
	t.interval = interval
}

// Interval reports the current period.
func (t *Ticker) Interval() Time { return t.interval }

// Stop halts the ticker; no further callbacks run.
func (t *Ticker) Stop() {
	t.stopped = true
	t.event.Cancel()
}
