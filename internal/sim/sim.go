package sim

import (
	"fmt"
	"math/rand"
)

// Sim is a deterministic discrete-event simulator. It is not safe for
// concurrent use; run one Sim per goroutine.
//
// Event slots are pooled: firing or discarding an event returns its
// *Event to an intrusive free list, so steady-state scheduling performs
// zero heap allocations. See Handle for how callers stay safe against
// slot reuse.
type Sim struct {
	now     Time
	queue   eventQueue
	seq     uint64
	free    *Event // intrusive free list of recycled event slots
	rngs    *rngSource
	rng     *rand.Rand
	stopped bool
	fired   uint64 // events executed, for diagnostics
}

// New returns a simulator whose clock starts at 0. All randomness used by
// the simulation must flow from Rand or NewRand so that equal seeds give
// equal runs.
func New(seed int64) *Sim {
	src := newRNGSource(seed)
	return &Sim{rngs: src, rng: src.next()}
}

// Now reports the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's shared random stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// NewRand returns a fresh random stream seeded deterministically from the
// run seed. Components that draw random numbers independently of each
// other should each take their own stream at setup time, so that adding a
// draw in one component does not perturb the sequence seen by another.
func (s *Sim) NewRand() *rand.Rand { return s.rngs.next() }

// Pending reports how many events are queued (including lazily-cancelled
// ones that have not been discarded yet).
func (s *Sim) Pending() int { return s.queue.Len() }

// Fired reports how many events have executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Seq reports how many queue sequence numbers have been issued. Together
// with Now, Fired and Pending it pins the scheduler's position precisely
// enough for the checkpoint digest (internal/checkpoint) to detect two
// runs disagreeing about event history.
func (s *Sim) Seq() uint64 { return s.seq }

// alloc takes an event slot from the free list (or the heap, while the
// pool is still warming up) and stamps it with a queue key.
func (s *Sim) alloc(t Time, seq uint64) *Event {
	e := s.free
	if e == nil {
		e = &Event{}
	} else {
		s.free = e.nextFree
		e.nextFree = nil
	}
	e.at = t
	e.seq = seq
	return e
}

// recycle invalidates every outstanding Handle to e and returns the slot
// to the free list.
func (s *Sim) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.argFn = nil
	e.arg = Arg{}
	e.cancelled = false
	e.fired = false
	e.nextFree = s.free
	s.free = e
}

// Schedule queues fn to run after delay and returns a handle that can
// cancel it. A negative delay panics: the past is immutable.
func (s *Sim) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, s.now))
	}
	return s.At(s.now+delay, fn)
}

// At queues fn to run at instant t (which must not precede Now) and
// returns a cancellation handle.
func (s *Sim) At(t Time, fn func()) Handle {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	s.seq++
	return s.enqueue(t, s.seq, fn, nil, Arg{})
}

// ScheduleArg queues fn(arg) to run after delay. It is the
// allocation-free flavour of Schedule for hot paths: the caller stores
// one func(Arg) for the lifetime of the component and passes per-call
// state through arg, instead of allocating a capturing closure per call.
func (s *Sim) ScheduleArg(delay Time, fn func(Arg), arg Arg) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleArg with negative delay %v at %v", delay, s.now))
	}
	return s.AtArg(s.now+delay, fn, arg)
}

// AtArg queues fn(arg) to run at instant t. See ScheduleArg.
func (s *Sim) AtArg(t Time, fn func(Arg), arg Arg) Handle {
	if fn == nil {
		panic("sim: AtArg with nil callback")
	}
	s.seq++
	return s.enqueue(t, s.seq, nil, fn, arg)
}

// ReserveSeq consumes and returns the next sequence number without
// scheduling anything. Components that batch many logical events behind
// one real queue entry (the radio medium) reserve a seq per logical
// event at the moment the old code would have scheduled it, keeping the
// global ordering — and therefore determinism — identical, then arm one
// drain event at the earliest reserved key via AtReserved.
func (s *Sim) ReserveSeq() uint64 {
	s.seq++
	return s.seq
}

// AtReserved queues fn at instant t under a previously reserved sequence
// number, consuming no new seq. The (t, seq) pair must order consistently
// with reservation time: t must not precede Now.
func (s *Sim) AtReserved(t Time, seq uint64, fn func()) Handle {
	if fn == nil {
		panic("sim: AtReserved with nil callback")
	}
	return s.enqueue(t, seq, fn, nil, Arg{})
}

func (s *Sim) enqueue(t Time, seq uint64, fn func(), argFn func(Arg), arg Arg) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	e := s.alloc(t, seq)
	e.fn = fn
	e.argFn = argFn
	e.arg = arg
	s.queue.push(e)
	return Handle{ev: e, gen: e.gen}
}

// peekLive returns the earliest non-cancelled queued event, discarding
// (and recycling) lazily-cancelled entries it finds at the head. Purging
// at peek keeps long runs with heavy Cancel traffic — retry backoff,
// re-armed keepalives — from growing the heap unboundedly, and ensures a
// cancelled entry past the Run horizon cannot sit at the head forever.
func (s *Sim) peekLive() *Event {
	for {
		next := s.queue.peek()
		if next == nil {
			return nil
		}
		if !next.cancelled {
			return next
		}
		s.queue.pop()
		s.recycle(next)
	}
}

// NextEvent reports the (instant, sequence) key of the earliest pending
// event, or ok=false when the queue is empty. Lazily-cancelled entries
// encountered at the head are discarded. The radio medium uses this to
// decide how many batched deliveries it may run back-to-back without
// reordering against independently scheduled events.
func (s *Sim) NextEvent() (at Time, seq uint64, ok bool) {
	next := s.peekLive()
	if next == nil {
		return 0, 0, false
	}
	return next.at, next.seq, true
}

// Run executes events in timestamp order until the queue drains, the
// clock passes until, or Stop is called. Afterwards the clock stands at
// until (for any finite horizon), so wall-clock-dependent state like
// route expiry observes the full elapsed interval even if the event
// queue drained early; Run(MaxTime) leaves the clock at the last
// executed event.
func (s *Sim) Run(until Time) {
	s.stopped = false
	for !s.stopped {
		next := s.peekLive()
		if next == nil {
			if until < MaxTime && until > s.now {
				s.now = until
			}
			return
		}
		if next.at > until {
			s.now = until
			return
		}
		s.queue.pop()
		s.now = next.at
		s.fired++
		s.fire(next)
	}
}

// Step executes the single earliest pending event and reports whether one
// was executed. Cancelled entries are skipped. Useful in tests.
func (s *Sim) Step() bool {
	next := s.peekLive()
	if next == nil {
		return false
	}
	s.queue.pop()
	s.now = next.at
	s.fired++
	s.fire(next)
	return true
}

// fire recycles the slot before invoking the callback, so the callback
// can immediately schedule into the same slot; the firing event's own
// Handles are already stale by then, which is exactly the "fired"
// semantics Handle.Pending reports.
func (s *Sim) fire(e *Event) {
	fn, argFn, arg := e.fn, e.argFn, e.arg
	s.recycle(e)
	if argFn != nil {
		argFn(arg)
		return
	}
	fn()
}

// Stop makes the current Run return after the in-flight event completes.
func (s *Sim) Stop() { s.stopped = true }
