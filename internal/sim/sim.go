package sim

import (
	"fmt"
	"math/rand"
)

// Sim is a deterministic discrete-event simulator. It is not safe for
// concurrent use; run one Sim per goroutine.
type Sim struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rngs    *rngSource
	rng     *rand.Rand
	stopped bool
	fired   uint64 // events executed, for diagnostics
}

// New returns a simulator whose clock starts at 0. All randomness used by
// the simulation must flow from Rand or NewRand so that equal seeds give
// equal runs.
func New(seed int64) *Sim {
	src := newRNGSource(seed)
	return &Sim{rngs: src, rng: src.next()}
}

// Now reports the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's shared random stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// NewRand returns a fresh random stream seeded deterministically from the
// run seed. Components that draw random numbers independently of each
// other should each take their own stream at setup time, so that adding a
// draw in one component does not perturb the sequence seen by another.
func (s *Sim) NewRand() *rand.Rand { return s.rngs.next() }

// Pending reports how many events are queued (including lazily-cancelled
// ones that have not been discarded yet).
func (s *Sim) Pending() int { return s.queue.Len() }

// Fired reports how many events have executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Schedule queues fn to run after delay and returns a handle that can
// cancel it. A negative delay panics: the past is immutable.
func (s *Sim) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, s.now))
	}
	return s.At(s.now+delay, fn)
}

// At queues fn to run at instant t (which must not precede Now) and
// returns a cancellation handle.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.queue.push(e)
	return e
}

// Run executes events in timestamp order until the queue drains, the
// clock passes until, or Stop is called. Afterwards the clock stands at
// until (for any finite horizon), so wall-clock-dependent state like
// route expiry observes the full elapsed interval even if the event
// queue drained early; Run(MaxTime) leaves the clock at the last
// executed event.
func (s *Sim) Run(until Time) {
	s.stopped = false
	for !s.stopped {
		next := s.queue.peek()
		if next == nil {
			if until < MaxTime && until > s.now {
				s.now = until
			}
			return
		}
		if next.at > until {
			s.now = until
			return
		}
		s.queue.pop()
		if next.cancelled {
			continue
		}
		s.now = next.at
		next.fired = true
		s.fired++
		next.fn()
	}
}

// Step executes the single earliest pending event and reports whether one
// was executed. Cancelled entries are skipped. Useful in tests.
func (s *Sim) Step() bool {
	for {
		next := s.queue.peek()
		if next == nil {
			return false
		}
		s.queue.pop()
		if next.cancelled {
			continue
		}
		s.now = next.at
		next.fired = true
		s.fired++
		next.fn()
		return true
	}
}

// Stop makes the current Run return after the in-flight event completes.
func (s *Sim) Stop() { s.stopped = true }
