package sim

import (
	"strings"
	"testing"
)

// collectAudit runs Audit and returns the reported rules.
func collectAudit(s *Sim) []string {
	var rules []string
	s.Audit(func(rule, detail string) { rules = append(rules, rule+": "+detail) })
	return rules
}

func assertRule(t *testing.T, rules []string, want string) {
	t.Helper()
	for _, r := range rules {
		if strings.HasPrefix(r, want+":") {
			return
		}
	}
	t.Fatalf("audit did not report %q; got %v", want, rules)
}

func TestAuditCleanSimReportsNothing(t *testing.T) {
	s := New(1)
	for i := 0; i < 50; i++ {
		d := Time(i%7) * Second
		if i%2 == 0 {
			s.Schedule(d, func() {})
		} else {
			h := s.ScheduleArg(d, func(Arg) {}, Arg{I0: i})
			if i%3 == 0 {
				h.Cancel()
			}
		}
	}
	s.Run(3 * Second) // fire some, recycle slots, leave the rest queued
	if rules := collectAudit(s); len(rules) != 0 {
		t.Fatalf("clean sim reported violations: %v", rules)
	}
	s.Run(MaxTime)
	if rules := collectAudit(s); len(rules) != 0 {
		t.Fatalf("drained sim reported violations: %v", rules)
	}
}

func TestAuditDetectsHeapDisorder(t *testing.T) {
	s := New(1)
	s.Schedule(1*Second, func() {})
	s.Schedule(2*Second, func() {})
	s.Schedule(3*Second, func() {})
	// Swap the root with a child: the min-heap property breaks.
	s.queue.items[0], s.queue.items[1] = s.queue.items[1], s.queue.items[0]
	assertRule(t, collectAudit(s), "heap-order")
}

func TestAuditDetectsPastEvent(t *testing.T) {
	s := New(1)
	s.Schedule(5*Second, func() {})
	s.Schedule(10*Second, func() {})
	s.Step() // clock at 5 s
	s.queue.items[0].at = 2 * Second
	assertRule(t, collectAudit(s), "past-event")
}

func TestAuditDetectsSeqCorruption(t *testing.T) {
	s := New(1)
	s.Schedule(1*Second, func() {})
	s.Schedule(2*Second, func() {})
	s.queue.items[1].seq = s.queue.items[0].seq
	rules := collectAudit(s)
	assertRule(t, rules, "seq-dup")

	// A lazily-cancelled duplicate is legal: AtReserved may re-arm the
	// radio drain under a seq whose cancelled predecessor still queues.
	s.queue.items[1].cancelled = true
	for _, r := range collectAudit(s) {
		if strings.HasPrefix(r, "seq-dup:") {
			t.Fatalf("cancelled duplicate reported: %v", r)
		}
	}
	s.queue.items[1].cancelled = false

	s.queue.items[1].seq = s.seq + 100
	assertRule(t, collectAudit(s), "seq-bound")
}

func TestAuditDetectsMissingCallback(t *testing.T) {
	s := New(1)
	s.Schedule(1*Second, func() {})
	s.queue.items[0].fn = nil
	assertRule(t, collectAudit(s), "callback")

	s.queue.items[0].fn = func() {}
	s.queue.items[0].argFn = func(Arg) {}
	assertRule(t, collectAudit(s), "callback")
}

func TestAuditDetectsFreeListCorruption(t *testing.T) {
	s := New(1)
	s.Schedule(0, func() {})
	s.Run(Second) // one recycled slot on the free list
	if s.free == nil {
		t.Fatal("expected a recycled slot")
	}

	// A recycled slot that kept its callback would fire stale work when
	// the slot is next allocated.
	s.free.fn = func() {}
	assertRule(t, collectAudit(s), "free-list")
	s.free.fn = nil

	s.free.cancelled = true
	assertRule(t, collectAudit(s), "free-list")
	s.free.cancelled = false

	// A slot both queued and free is the structural form of fired-handle
	// reuse: the queue and the pool would hand out the same memory twice.
	// (Schedule consumes the pooled slot, so point the free list at the
	// queued event directly.)
	s.Schedule(5*Second, func() {})
	s.free = s.queue.items[0]
	assertRule(t, collectAudit(s), "free-list")
}

func TestAuditDetectsFreeListCycle(t *testing.T) {
	s := New(1)
	s.Schedule(0, func() {})
	s.Schedule(0, func() {})
	s.Run(Second) // two recycled slots
	if s.free == nil || s.free.nextFree == nil {
		t.Fatal("expected two recycled slots")
	}
	s.free.nextFree.nextFree = s.free
	assertRule(t, collectAudit(s), "free-list")
}
