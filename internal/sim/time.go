// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Sim owns a virtual clock and an event queue. Events scheduled for the
// same instant fire in scheduling order, which makes runs with the same
// seed bit-for-bit reproducible. The kernel is single-threaded by design;
// parallelism in this repository comes from running many independent Sim
// instances concurrently (one per replication), never from sharing one.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulation instant or duration, measured in integer
// microseconds. Integer time gives events a total order with no
// floating-point drift across platforms.
type Time int64

// Convenient duration units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable instant; Run(MaxTime) means
// "run until the event queue drains".
const MaxTime Time = math.MaxInt64

// FromSeconds converts a duration in seconds to a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision,
// e.g. "12.000345s".
func (t Time) String() string {
	neg := ""
	v := t
	if v < 0 {
		neg, v = "-", -v
	}
	return fmt.Sprintf("%s%d.%06ds", neg, v/Second, v%Second)
}
