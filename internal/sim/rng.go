package sim

import "math/rand"

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is the standard SplitMix64 generator, used here only to derive
// independent seeds for per-component random streams from one run seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rngSource derives deterministic child seeds from a root seed.
type rngSource struct {
	state uint64
}

func newRNGSource(seed int64) *rngSource {
	return &rngSource{state: uint64(seed)}
}

// next returns a fresh *rand.Rand whose seed is derived from the root
// seed. Streams handed out in the same order are identical across runs.
func (s *rngSource) next() *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(&s.state))))
}

// UniformDuration returns a duration drawn uniformly from [lo, hi].
// It panics if hi < lo.
func UniformDuration(rng *rand.Rand, lo, hi Time) Time {
	if hi < lo {
		panic("sim: UniformDuration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Time(rng.Int63n(int64(hi-lo)+1))
}
