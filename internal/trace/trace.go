// Package trace provides structured event tracing for simulations: a
// bounded in-memory event log that components append to and tools
// render as text or JSON lines. Tracing is off by default (a nil
// *Tracer is safe to use and free), so instrumented code pays nothing
// unless a tool turns it on.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"manetp2p/internal/sim"
)

// Kind classifies trace events.
type Kind int

// Event kinds emitted by the simulation layers.
const (
	// KindConn marks overlay connection lifecycle (established/closed).
	KindConn Kind = iota
	// KindState marks hybrid role transitions.
	KindState
	// KindQuery marks query issuance and answers.
	KindQuery
	// KindRoute marks routing events (discovery, break).
	KindRoute
	// KindNode marks node lifecycle (join, leave, death).
	KindNode
	// KindWorkload marks workload-engine demand events (class assignment,
	// flash-crowd targeting).
	KindWorkload
	// KindPhase marks workload phase-timeline transitions.
	KindPhase
)

// String names the kind for renderers.
func (k Kind) String() string {
	switch k {
	case KindConn:
		return "conn"
	case KindState:
		return "state"
	case KindQuery:
		return "query"
	case KindRoute:
		return "route"
	case KindNode:
		return "node"
	case KindWorkload:
		return "wload"
	case KindPhase:
		return "phase"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one traced occurrence.
type Event struct {
	At   sim.Time `json:"at"`
	Kind Kind     `json:"kind"`
	Node int      `json:"node"`
	Peer int      `json:"peer,omitempty"` // -1 when not applicable
	What string   `json:"what"`
}

// String renders the event compactly.
func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("%v %-6s n%d->n%d %s", e.At, e.Kind, e.Node, e.Peer, e.What)
	}
	return fmt.Sprintf("%v %-6s n%d %s", e.At, e.Kind, e.Node, e.What)
}

// Tracer is a bounded append-only event log. A nil Tracer discards all
// events, so callers never need to guard their Emit calls. Not safe for
// concurrent use: one Tracer per Sim.
type Tracer struct {
	sim    *sim.Sim
	events []Event
	cap    int
	lost   uint64
	filter map[Kind]bool // nil = all kinds
}

// New creates a tracer bound to s keeping at most capacity events
// (older events are dropped once full; Lost counts them).
func New(s *sim.Sim, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{sim: s, cap: capacity}
}

// Only restricts recording to the given kinds.
func (t *Tracer) Only(kinds ...Kind) *Tracer {
	if t == nil {
		return nil
	}
	t.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		t.filter[k] = true
	}
	return t
}

// Emit records an event; nil tracers discard. peer may be -1.
func (t *Tracer) Emit(kind Kind, node, peer int, format string, args ...any) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter[kind] {
		return
	}
	if len(t.events) >= t.cap {
		// Drop the oldest half rather than one-at-a-time shifting.
		n := copy(t.events, t.events[t.cap/2:])
		t.lost += uint64(len(t.events) - n)
		t.events = t.events[:n]
	}
	t.events = append(t.events, Event{
		At:   t.sim.Now(),
		Kind: kind,
		Node: node,
		Peer: peer,
		What: fmt.Sprintf(format, args...),
	})
}

// Events returns the recorded events in order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Lost reports how many events were discarded to stay within capacity.
func (t *Tracer) Lost() uint64 {
	if t == nil {
		return 0
	}
	return t.lost
}

// WriteText renders all events line by line.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders events as JSON lines.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
