package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindConn, 1, 2, "established")
	if tr.Events() != nil || tr.Lost() != 0 {
		t.Error("nil tracer leaked state")
	}
	if tr.Only(KindConn) != nil {
		t.Error("nil Only returned non-nil")
	}
}

func TestEmitRecordsWithSimTime(t *testing.T) {
	s := sim.New(1)
	tr := New(s, 100)
	s.Schedule(5*sim.Second, func() { tr.Emit(KindQuery, 3, -1, "file %d", 7) })
	s.Run(sim.MaxTime)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.At != 5*sim.Second || e.Node != 3 || e.Peer != -1 || e.What != "file 7" {
		t.Errorf("event = %+v", e)
	}
}

func TestFilterOnly(t *testing.T) {
	s := sim.New(1)
	tr := New(s, 100).Only(KindConn, KindNode)
	tr.Emit(KindConn, 1, 2, "up")
	tr.Emit(KindQuery, 1, -1, "ignored")
	tr.Emit(KindNode, 4, -1, "join")
	if len(tr.Events()) != 2 {
		t.Errorf("events = %v, want 2 after filter", tr.Events())
	}
}

func TestCapacityDropsOldest(t *testing.T) {
	s := sim.New(1)
	tr := New(s, 10)
	for i := 0; i < 25; i++ {
		tr.Emit(KindConn, i, -1, "e")
	}
	if tr.Lost() == 0 {
		t.Error("no events reported lost")
	}
	evs := tr.Events()
	if len(evs) > 10 {
		t.Errorf("events = %d, want <= capacity 10", len(evs))
	}
	// The newest event must be retained.
	if evs[len(evs)-1].Node != 24 {
		t.Errorf("latest event node = %d, want 24", evs[len(evs)-1].Node)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	s := sim.New(1)
	tr := New(s, 10)
	tr.Emit(KindState, 2, -1, "initial->master")
	tr.Emit(KindConn, 2, 5, "established")
	var text bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "initial->master") || !strings.Contains(text.String(), "n2->n5") {
		t.Errorf("text output:\n%s", text.String())
	}
	var jsonBuf bytes.Buffer
	if err := tr.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("json lines = %d, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindState || e.Node != 2 {
		t.Errorf("decoded event = %+v", e)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindConn: "conn", KindState: "state", KindQuery: "query",
		KindRoute: "route", KindNode: "node",
	} {
		if k.String() != want {
			t.Errorf("String() = %q, want %q", k.String(), want)
		}
	}
}
