// Package dsr implements Dynamic Source Routing, the second on-demand
// protocol from the routing comparison the paper bases its AODV choice
// on ([13] in the paper; Johnson/Maltz's DSR). Routes are discovered by
// flooding route requests that accumulate the traversed path; data
// packets carry their complete source route, so relays keep no routing
// state but headers grow with path length — the classic DSR trade-off
// this reproduction's routing sweep exposes.
package dsr

import (
	"fmt"
	"sort"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/route"
	"manetp2p/internal/sim"
)

// Nominal packet sizes: fixed part + per-hop address bytes for anything
// carrying a source route.
const (
	sizeRREQBase  = 16
	sizeRREPBase  = 12
	sizeRERR      = 16
	sizeDataBase  = 12
	sizeBcastBase = 16
	sizePerHop    = 4
)

// Frames travel as netif.Packet values (no per-hop boxing). DSR uses:
//
//   - PktRREQ: Origin, ID, Dst, TTL, Path (nodes traversed so far,
//     excluding the origin).
//   - PktRREP: Origin, Dst, Path (full path origin -> ... -> dst,
//     excluding both ends), Pos (index of the current hop on the
//     reversed way back).
//   - PktRERR: Origin, BadA/BadB (upstream/downstream ends of the
//     broken link), Path (reversed prefix back to the origin), Pos.
//   - PktData: Origin, Dst, Path (intermediate hops origin -> dst),
//     Pos (next hop index into Path; len(Path) means deliver to Dst),
//     Size, Msg.
//   - PktBcast: the shared route.Bcaster carrier; DSR piggybacks the
//     traversed path so receivers learn a source route back to the
//     origin for free (see the Router's Accept/PrepRelay hooks).

// cachedRoute is one known source route.
type cachedRoute struct {
	path    []int // intermediate hops, self -> dst
	expires sim.Time
}

// Config tunes the DSR layer. Zero fields take defaults.
type Config struct {
	RouteLifetime       sim.Time
	SeenCacheTimeout    sim.Time
	SeenCacheCap        int // soft entry bound per duplicate cache
	MaxDiscoveryRetries int
	DiscoveryTTL        int
	HopTraversal        sim.Time
	BufferCap           int
}

// DefaultConfig mirrors the AODV defaults so cross-protocol sweeps are
// apples to apples.
func DefaultConfig() Config {
	return Config{
		// As with AODV, broken links are detected at forward time; the
		// lifetime only bounds silent staleness.
		RouteLifetime:       30 * sim.Second,
		SeenCacheTimeout:    30 * sim.Second,
		SeenCacheCap:        route.DefaultSoftCap,
		MaxDiscoveryRetries: 2,
		DiscoveryTTL:        20,
		HopTraversal:        10 * sim.Millisecond,
		BufferCap:           16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = d.RouteLifetime
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.SeenCacheCap <= 0 {
		c.SeenCacheCap = d.SeenCacheCap
	}
	if c.MaxDiscoveryRetries <= 0 {
		c.MaxDiscoveryRetries = d.MaxDiscoveryRetries
	}
	if c.DiscoveryTTL <= 0 {
		c.DiscoveryTTL = d.DiscoveryTTL
	}
	if c.HopTraversal <= 0 {
		c.HopTraversal = d.HopTraversal
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// Router is the per-node DSR instance; it satisfies netif.Protocol. The
// shared control-plane mechanics come from internal/route; this file is
// the source-routing state machine proper.
type Router struct {
	*route.Core
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	cache    map[int]cachedRoute
	rreqID   uint32
	seenRREQ *route.DupCache
	bcast    *route.Bcaster
	pending  *route.Pending[netif.Packet]

	// Reversal scratch for route learning: every learnRoute caller
	// copies, so the reversed view can live in one reused buffer.
	revScratch []int

	// Callback for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	discTimeoutFn func(sim.Arg)
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the DSR layer for node id; pass HandleFrame as the
// node's radio receiver.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	cfg = cfg.withDefaults()
	core := route.NewCore(id, s)
	cache := route.CacheConfig{Timeout: cfg.SeenCacheTimeout, SoftCap: cfg.SeenCacheCap}
	r := &Router{
		Core:     core,
		sim:      s,
		med:      med,
		cfg:      cfg,
		cache:    make(map[int]cachedRoute),
		seenRREQ: route.NewDupCache(core, cache),
		bcast:    route.NewBcaster(core, med, sizeBcastBase, sizePerHop, cache),
		pending:  route.NewPending[netif.Packet](cfg.BufferCap),
	}
	r.bcast.Accept = r.acceptBcast
	r.bcast.PrepRelay = r.prepBcastRelay
	r.discTimeoutFn = r.discTimeout
	return r
}

// acceptBcast learns the reverse source route a broadcast accumulated;
// the delivered hop count is the path length, not the shared carrier's
// hop counter.
func (r *Router) acceptBcast(prev int, b *netif.Packet) int {
	r.learnRoute(b.Origin, r.reversed(b.Path))
	return len(b.Path) + 1
}

// prepBcastRelay appends this node to the traversed path — after
// delivery, so the reported path excludes the relaying node itself.
func (r *Router) prepBcastRelay(b *netif.Packet) {
	b.Path = append(append([]int(nil), b.Path...), r.ID())
}

// discTimeout unpacks the typed-arg timer payload for discoveryTimeout.
func (r *Router) discTimeout(a sim.Arg) {
	r.discoveryTimeout(a.I0, a.X.(*route.Discovery[netif.Packet]))
}

// HopsTo reports the cached route length to dst.
func (r *Router) HopsTo(dst int) (int, bool) {
	cr, ok := r.route(dst)
	if !ok {
		return 0, false
	}
	return len(cr.path) + 1, true
}

func (r *Router) route(dst int) (cachedRoute, bool) {
	cr, ok := r.cache[dst]
	if !ok || cr.expires < r.sim.Now() {
		return cachedRoute{}, false
	}
	return cr, true
}

// learnRoute caches a source route self -> dst (intermediates only),
// preferring shorter paths and refreshing lifetimes.
func (r *Router) learnRoute(dst int, path []int) {
	if dst == r.ID() {
		return
	}
	// Routes through ourselves would loop.
	for _, h := range path {
		if h == r.ID() || h == dst {
			return
		}
	}
	now := r.sim.Now()
	if old, ok := r.cache[dst]; ok && old.expires >= now && len(old.path) < len(path) {
		return
	}
	cp := append([]int(nil), path...)
	r.cache[dst] = cachedRoute{path: cp, expires: now + r.cfg.RouteLifetime}
	// Prefix routes come for free.
	for i, h := range cp {
		if old, ok := r.cache[h]; ok && old.expires >= now && len(old.path) <= i {
			continue
		}
		r.cache[h] = cachedRoute{path: append([]int(nil), cp[:i]...), expires: now + r.cfg.RouteLifetime}
	}
}

// dropRoutesVia removes every cached route using the directed link a->b.
func (r *Router) dropRoutesVia(a, b int) {
	var doomed []int
	for dst, cr := range r.cache {
		full := append(append([]int{r.ID()}, cr.path...), dst)
		for i := 0; i+1 < len(full); i++ {
			if full[i] == a && full[i+1] == b {
				doomed = append(doomed, dst)
				break
			}
		}
	}
	sort.Ints(doomed)
	for _, dst := range doomed {
		delete(r.cache, dst)
	}
}

// Broadcast floods payload within ttl hops, with duplicate suppression
// and path accumulation.
func (r *Router) Broadcast(ttl, size int, payload netif.Msg) {
	if ttl <= 0 {
		panic("dsr: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.ID()) {
		return
	}
	r.bcast.Originate(ttl, size, payload, 0)
}

// Send routes payload to dst, discovering a source route on demand.
func (r *Router) Send(dst, size int, payload netif.Msg) {
	if dst == r.ID() {
		r.SelfDeliver(payload)
		return
	}
	r.Count.DataSent++
	if !r.med.Up(r.ID()) {
		return
	}
	pkt := netif.Packet{Kind: netif.PktData, Origin: r.ID(), Dst: dst, Size: size, Msg: payload}
	if cr, ok := r.route(dst); ok {
		pkt.Path = cr.path
		r.forward(pkt)
		return
	}
	r.enqueue(pkt)
}

func (r *Router) enqueue(pkt netif.Packet) {
	d, inProgress := r.pending.Get(pkt.Dst)
	if !inProgress {
		d = r.pending.Start(pkt.Dst)
		r.Count.Discoveries++
		r.sendRREQ(pkt.Dst, d)
	}
	if !r.pending.Push(d, pkt) {
		r.Count.DataDropped++
		r.FailSend(pkt.Dst, pkt.Msg)
	}
}

func (r *Router) sendRREQ(dst int, d *route.Discovery[netif.Packet]) {
	r.rreqID++
	q := netif.Packet{Kind: netif.PktRREQ, Origin: r.ID(), ID: r.rreqID, Dst: dst, TTL: r.cfg.DiscoveryTTL}
	r.seenRREQ.Mark(route.Key{Origin: r.ID(), ID: q.ID})
	r.Count.CtrlOrig++
	r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: sizeRREQBase, Payload: q})
	wait := 2 * sim.Time(r.cfg.DiscoveryTTL) * r.cfg.HopTraversal
	d.Timer = r.sim.ScheduleArg(wait, r.discTimeoutFn, sim.Arg{I0: dst, X: d})
}

func (r *Router) discoveryTimeout(dst int, d *route.Discovery[netif.Packet]) {
	if !r.pending.Current(dst, d) {
		return
	}
	if _, ok := r.route(dst); ok {
		r.completeDiscovery(dst)
		return
	}
	d.Retries++
	if d.Retries > r.cfg.MaxDiscoveryRetries {
		r.pending.Drop(dst)
		r.Count.DiscoverFailed++
		for _, pkt := range d.Queue {
			r.Count.DataDropped++
			r.FailSend(dst, pkt.Msg)
		}
		return
	}
	r.sendRREQ(dst, d)
}

func (r *Router) completeDiscovery(dst int) {
	d, ok := r.pending.Get(dst)
	if !ok {
		return
	}
	cr, haveRoute := r.route(dst)
	if !haveRoute {
		return
	}
	r.pending.Drop(dst)
	d.Timer.Cancel()
	for _, pkt := range d.Queue {
		pkt.Path = cr.path
		pkt.Pos = 0
		r.forward(pkt)
	}
}

// forward transmits pkt to its next source-route hop, raising RERR on a
// broken link.
func (r *Router) forward(pkt netif.Packet) {
	next := pkt.Dst
	if pkt.Pos < len(pkt.Path) {
		next = pkt.Path[pkt.Pos]
	}
	if !r.med.InRange(r.ID(), next) {
		r.linkBroken(pkt.Origin, r.ID(), next, pkt.Path, pkt.Pos)
		if pkt.Origin == r.ID() {
			delete(r.cache, pkt.Dst)
			pkt.Path = nil
			pkt.Pos = 0
			r.enqueue(pkt)
		} else {
			r.Count.DataDropped++
		}
		return
	}
	if pkt.Origin != r.ID() {
		r.Count.DataForwarded++
	}
	size := pkt.Size + sizeDataBase + sizePerHop*len(pkt.Path)
	r.med.Send(radio.Frame{Src: r.ID(), Dst: next, Size: size, Payload: pkt})
}

// linkBroken drops local routes over the dead link and notifies the
// packet origin along the reversed traversed prefix.
func (r *Router) linkBroken(origin, a, b int, path []int, pos int) {
	r.dropRoutesVia(a, b)
	if origin == r.ID() {
		return
	}
	// Reversed prefix back to the origin: the hops before us, reversed.
	prefix := make([]int, 0, pos)
	for i := pos - 1; i >= 0; i-- {
		if path[i] != r.ID() {
			prefix = append(prefix, path[i])
		}
	}
	e := netif.Packet{Kind: netif.PktRERR, Origin: origin, BadA: a, BadB: b, Path: prefix}
	r.sendRERR(e, false)
}

func (r *Router) sendRERR(e netif.Packet, relay bool) {
	next := e.Origin
	if e.Pos < len(e.Path) {
		next = e.Path[e.Pos]
	}
	if !r.med.InRange(r.ID(), next) {
		return // best-effort; the origin's own retry will discover
	}
	if relay {
		r.Count.CtrlRelayed++
	} else {
		r.Count.CtrlOrig++
	}
	r.med.Send(radio.Frame{Src: r.ID(), Dst: next, Size: sizeRERR + sizePerHop*len(e.Path), Payload: e})
}

// HandleFrame dispatches radio arrivals on packet kind.
func (r *Router) HandleFrame(f radio.Frame) {
	switch f.Payload.Kind {
	case netif.PktRREQ:
		r.handleRREQ(f.Payload)
	case netif.PktRREP:
		r.handleRREP(f.Payload)
	case netif.PktRERR:
		r.handleRERR(f.Payload)
	case netif.PktData:
		r.handleData(f.Payload)
	case netif.PktBcast:
		r.bcast.Handle(f.Src, f.Payload)
	default:
		panic(fmt.Sprintf("dsr: unknown packet kind %d", f.Payload.Kind))
	}
}

func (r *Router) handleRREQ(q netif.Packet) {
	if q.Origin == r.ID() {
		return
	}
	k := route.Key{Origin: q.Origin, ID: q.ID}
	if r.seenRREQ.Seen(k) {
		r.Count.DupHits++
		return
	}
	r.seenRREQ.Mark(k)
	// Learn the reverse route from the accumulated path.
	r.learnRoute(q.Origin, r.reversed(q.Path))
	if q.Dst == r.ID() {
		// Answer along the reversed accumulated path.
		p := netif.Packet{Kind: netif.PktRREP, Origin: q.Origin, Dst: r.ID(), Path: append([]int(nil), q.Path...)}
		r.sendRREP(p, false)
		return
	}
	if q.TTL <= 1 {
		return
	}
	q.TTL--
	q.Path = append(append([]int(nil), q.Path...), r.ID())
	r.Count.CtrlRelayed++
	r.med.Send(radio.Frame{
		Src: r.ID(), Dst: radio.BroadcastAddr,
		Size: sizeRREQBase + sizePerHop*len(q.Path), Payload: q,
	})
}

// sendRREP moves a route reply one hop backwards along the discovered
// path (Path holds intermediates origin->dst; the reply walks it in
// reverse: Pos counts how many reverse hops were taken).
func (r *Router) sendRREP(p netif.Packet, relay bool) {
	next := p.Origin
	if idx := len(p.Path) - 1 - p.Pos; idx >= 0 {
		next = p.Path[idx]
	}
	if !r.med.InRange(r.ID(), next) {
		return // discovery retry handles it
	}
	if relay {
		r.Count.CtrlRelayed++
	} else {
		r.Count.CtrlOrig++
	}
	r.med.Send(radio.Frame{
		Src: r.ID(), Dst: next,
		Size: sizeRREPBase + sizePerHop*len(p.Path), Payload: p,
	})
}

func (r *Router) handleRREP(p netif.Packet) {
	// Everyone on the way back learns the route to the reply's subject.
	idx := len(p.Path) - 1 - p.Pos // our position in the path
	if p.Origin == r.ID() {
		r.learnRoute(p.Dst, p.Path)
		r.completeDiscovery(p.Dst)
		return
	}
	if idx < 0 || idx >= len(p.Path) || p.Path[idx] != r.ID() {
		return // stale or misrouted reply
	}
	r.learnRoute(p.Dst, p.Path[idx+1:])
	p.Pos++
	r.sendRREP(p, true)
}

func (r *Router) handleRERR(e netif.Packet) {
	r.dropRoutesVia(e.BadA, e.BadB)
	if e.Origin == r.ID() {
		return
	}
	if e.Pos < len(e.Path) && e.Path[e.Pos] == r.ID() {
		e.Pos++
		r.sendRERR(e, true)
	}
}

func (r *Router) handleData(pkt netif.Packet) {
	if pkt.Dst == r.ID() {
		// Learn the reverse route from the traversed prefix.
		r.learnRoute(pkt.Origin, r.reversed(pkt.Path))
		r.DeliverUnicast(pkt.Origin, len(pkt.Path)+1, pkt.Msg)
		return
	}
	if pkt.Pos >= len(pkt.Path) || pkt.Path[pkt.Pos] != r.ID() {
		r.Count.DataDropped++
		return // not ours; stale source route
	}
	pkt.Pos++
	r.forward(pkt)
}

// reversed returns path back-to-front in the router's reusable scratch
// buffer. The view is only valid until the next call; every caller
// hands it straight to learnRoute, which copies what it keeps.
func (r *Router) reversed(path []int) []int {
	out := r.revScratch[:0]
	for i := len(path) - 1; i >= 0; i-- {
		out = append(out, path[i])
	}
	r.revScratch = out
	return out
}
