// Package dsr implements Dynamic Source Routing, the second on-demand
// protocol from the routing comparison the paper bases its AODV choice
// on ([13] in the paper; Johnson/Maltz's DSR). Routes are discovered by
// flooding route requests that accumulate the traversed path; data
// packets carry their complete source route, so relays keep no routing
// state but headers grow with path length — the classic DSR trade-off
// this reproduction's routing sweep exposes.
package dsr

import (
	"fmt"
	"sort"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/route"
	"manetp2p/internal/sim"
)

// Nominal packet sizes: fixed part + per-hop address bytes for anything
// carrying a source route.
const (
	sizeRREQBase  = 16
	sizeRREPBase  = 12
	sizeRERR      = 16
	sizeDataBase  = 12
	sizeBcastBase = 16
	sizePerHop    = 4
)

// rreq floods outward accumulating the path traveled.
type rreq struct {
	Origin int
	ID     uint32
	Dst    int
	TTL    int
	Path   []int // nodes traversed so far, excluding the origin
}

// rrep returns the discovered path to the origin.
type rrep struct {
	Origin int
	Dst    int
	Path   []int // full path origin -> ... -> dst, excluding both ends
	Pos    int   // index of the current hop on the reversed way back
}

// rerr tells the origin a link on its source route broke.
type rerr struct {
	Origin int
	BadA   int   // upstream end of the broken link
	BadB   int   // downstream end
	Path   []int // reversed prefix back to the origin
	Pos    int
}

// data carries its complete source route.
type data struct {
	Origin  int
	Dst     int
	Path    []int // intermediate hops origin -> dst
	Pos     int   // next hop index into Path; len(Path) means deliver to Dst
	Size    int
	Payload any
}

// The controlled broadcast is the shared route.Bcast carrier; DSR
// piggybacks the traversed path so receivers learn a source route back
// to the origin for free (see the Router's Accept/PrepRelay hooks).

// cachedRoute is one known source route.
type cachedRoute struct {
	path    []int // intermediate hops, self -> dst
	expires sim.Time
}

// Config tunes the DSR layer. Zero fields take defaults.
type Config struct {
	RouteLifetime       sim.Time
	SeenCacheTimeout    sim.Time
	SeenCacheCap        int // soft entry bound per duplicate cache
	MaxDiscoveryRetries int
	DiscoveryTTL        int
	HopTraversal        sim.Time
	BufferCap           int
}

// DefaultConfig mirrors the AODV defaults so cross-protocol sweeps are
// apples to apples.
func DefaultConfig() Config {
	return Config{
		// As with AODV, broken links are detected at forward time; the
		// lifetime only bounds silent staleness.
		RouteLifetime:       30 * sim.Second,
		SeenCacheTimeout:    30 * sim.Second,
		SeenCacheCap:        route.DefaultSoftCap,
		MaxDiscoveryRetries: 2,
		DiscoveryTTL:        20,
		HopTraversal:        10 * sim.Millisecond,
		BufferCap:           16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = d.RouteLifetime
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.SeenCacheCap <= 0 {
		c.SeenCacheCap = d.SeenCacheCap
	}
	if c.MaxDiscoveryRetries <= 0 {
		c.MaxDiscoveryRetries = d.MaxDiscoveryRetries
	}
	if c.DiscoveryTTL <= 0 {
		c.DiscoveryTTL = d.DiscoveryTTL
	}
	if c.HopTraversal <= 0 {
		c.HopTraversal = d.HopTraversal
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// Router is the per-node DSR instance; it satisfies netif.Protocol. The
// shared control-plane mechanics come from internal/route; this file is
// the source-routing state machine proper.
type Router struct {
	*route.Core
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	cache    map[int]cachedRoute
	rreqID   uint32
	seenRREQ *route.DupCache
	bcast    *route.Bcaster
	pending  *route.Pending[data]

	// Callback for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	discTimeoutFn func(sim.Arg)
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the DSR layer for node id; pass HandleFrame as the
// node's radio receiver.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	cfg = cfg.withDefaults()
	core := route.NewCore(id, s)
	cache := route.CacheConfig{Timeout: cfg.SeenCacheTimeout, SoftCap: cfg.SeenCacheCap}
	r := &Router{
		Core:     core,
		sim:      s,
		med:      med,
		cfg:      cfg,
		cache:    make(map[int]cachedRoute),
		seenRREQ: route.NewDupCache(core, cache),
		bcast:    route.NewBcaster(core, med, sizeBcastBase, sizePerHop, cache),
		pending:  route.NewPending[data](cfg.BufferCap),
	}
	r.bcast.Accept = r.acceptBcast
	r.bcast.PrepRelay = r.prepBcastRelay
	r.discTimeoutFn = r.discTimeout
	return r
}

// acceptBcast learns the reverse source route a broadcast accumulated;
// the delivered hop count is the path length, not the shared carrier's
// hop counter.
func (r *Router) acceptBcast(prev int, b *route.Bcast) int {
	r.learnRoute(b.Origin, reversed(b.Path))
	return len(b.Path) + 1
}

// prepBcastRelay appends this node to the traversed path — after
// delivery, so the reported path excludes the relaying node itself.
func (r *Router) prepBcastRelay(b *route.Bcast) {
	b.Path = append(append([]int(nil), b.Path...), r.ID())
}

// discTimeout unpacks the typed-arg timer payload for discoveryTimeout.
func (r *Router) discTimeout(a sim.Arg) {
	r.discoveryTimeout(a.I0, a.X.(*route.Discovery[data]))
}

// HopsTo reports the cached route length to dst.
func (r *Router) HopsTo(dst int) (int, bool) {
	cr, ok := r.route(dst)
	if !ok {
		return 0, false
	}
	return len(cr.path) + 1, true
}

func (r *Router) route(dst int) (cachedRoute, bool) {
	cr, ok := r.cache[dst]
	if !ok || cr.expires < r.sim.Now() {
		return cachedRoute{}, false
	}
	return cr, true
}

// learnRoute caches a source route self -> dst (intermediates only),
// preferring shorter paths and refreshing lifetimes.
func (r *Router) learnRoute(dst int, path []int) {
	if dst == r.ID() {
		return
	}
	// Routes through ourselves would loop.
	for _, h := range path {
		if h == r.ID() || h == dst {
			return
		}
	}
	now := r.sim.Now()
	if old, ok := r.cache[dst]; ok && old.expires >= now && len(old.path) < len(path) {
		return
	}
	cp := append([]int(nil), path...)
	r.cache[dst] = cachedRoute{path: cp, expires: now + r.cfg.RouteLifetime}
	// Prefix routes come for free.
	for i, h := range cp {
		if old, ok := r.cache[h]; ok && old.expires >= now && len(old.path) <= i {
			continue
		}
		r.cache[h] = cachedRoute{path: append([]int(nil), cp[:i]...), expires: now + r.cfg.RouteLifetime}
	}
}

// dropRoutesVia removes every cached route using the directed link a->b.
func (r *Router) dropRoutesVia(a, b int) {
	var doomed []int
	for dst, cr := range r.cache {
		full := append(append([]int{r.ID()}, cr.path...), dst)
		for i := 0; i+1 < len(full); i++ {
			if full[i] == a && full[i+1] == b {
				doomed = append(doomed, dst)
				break
			}
		}
	}
	sort.Ints(doomed)
	for _, dst := range doomed {
		delete(r.cache, dst)
	}
}

// Broadcast floods payload within ttl hops, with duplicate suppression
// and path accumulation.
func (r *Router) Broadcast(ttl, size int, payload any) {
	if ttl <= 0 {
		panic("dsr: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.ID()) {
		return
	}
	r.bcast.Originate(ttl, size, payload, 0)
}

// Send routes payload to dst, discovering a source route on demand.
func (r *Router) Send(dst, size int, payload any) {
	if dst == r.ID() {
		r.SelfDeliver(payload)
		return
	}
	r.Count.DataSent++
	if !r.med.Up(r.ID()) {
		return
	}
	pkt := data{Origin: r.ID(), Dst: dst, Size: size, Payload: payload}
	if cr, ok := r.route(dst); ok {
		pkt.Path = cr.path
		r.forward(pkt)
		return
	}
	r.enqueue(pkt)
}

func (r *Router) enqueue(pkt data) {
	d, inProgress := r.pending.Get(pkt.Dst)
	if !inProgress {
		d = r.pending.Start(pkt.Dst)
		r.Count.Discoveries++
		r.sendRREQ(pkt.Dst, d)
	}
	if !r.pending.Push(d, pkt) {
		r.Count.DataDropped++
		r.FailSend(pkt.Dst, pkt.Payload)
	}
}

func (r *Router) sendRREQ(dst int, d *route.Discovery[data]) {
	r.rreqID++
	q := rreq{Origin: r.ID(), ID: r.rreqID, Dst: dst, TTL: r.cfg.DiscoveryTTL}
	r.seenRREQ.Mark(route.Key{Origin: r.ID(), ID: q.ID})
	r.Count.CtrlOrig++
	r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: sizeRREQBase, Payload: q})
	wait := 2 * sim.Time(r.cfg.DiscoveryTTL) * r.cfg.HopTraversal
	d.Timer = r.sim.ScheduleArg(wait, r.discTimeoutFn, sim.Arg{I0: dst, X: d})
}

func (r *Router) discoveryTimeout(dst int, d *route.Discovery[data]) {
	if !r.pending.Current(dst, d) {
		return
	}
	if _, ok := r.route(dst); ok {
		r.completeDiscovery(dst)
		return
	}
	d.Retries++
	if d.Retries > r.cfg.MaxDiscoveryRetries {
		r.pending.Drop(dst)
		r.Count.DiscoverFailed++
		for _, pkt := range d.Queue {
			r.Count.DataDropped++
			r.FailSend(dst, pkt.Payload)
		}
		return
	}
	r.sendRREQ(dst, d)
}

func (r *Router) completeDiscovery(dst int) {
	d, ok := r.pending.Get(dst)
	if !ok {
		return
	}
	cr, haveRoute := r.route(dst)
	if !haveRoute {
		return
	}
	r.pending.Drop(dst)
	d.Timer.Cancel()
	for _, pkt := range d.Queue {
		pkt.Path = cr.path
		pkt.Pos = 0
		r.forward(pkt)
	}
}

// forward transmits pkt to its next source-route hop, raising RERR on a
// broken link.
func (r *Router) forward(pkt data) {
	next := pkt.Dst
	if pkt.Pos < len(pkt.Path) {
		next = pkt.Path[pkt.Pos]
	}
	if !r.med.InRange(r.ID(), next) {
		r.linkBroken(pkt.Origin, r.ID(), next, pkt.Path, pkt.Pos)
		if pkt.Origin == r.ID() {
			delete(r.cache, pkt.Dst)
			pkt.Path = nil
			pkt.Pos = 0
			r.enqueue(pkt)
		} else {
			r.Count.DataDropped++
		}
		return
	}
	if pkt.Origin != r.ID() {
		r.Count.DataForwarded++
	}
	size := pkt.Size + sizeDataBase + sizePerHop*len(pkt.Path)
	r.med.Send(radio.Frame{Src: r.ID(), Dst: next, Size: size, Payload: pkt})
}

// linkBroken drops local routes over the dead link and notifies the
// packet origin along the reversed traversed prefix.
func (r *Router) linkBroken(origin, a, b int, path []int, pos int) {
	r.dropRoutesVia(a, b)
	if origin == r.ID() {
		return
	}
	// Reversed prefix back to the origin: the hops before us, reversed.
	prefix := make([]int, 0, pos)
	for i := pos - 1; i >= 0; i-- {
		if path[i] != r.ID() {
			prefix = append(prefix, path[i])
		}
	}
	e := rerr{Origin: origin, BadA: a, BadB: b, Path: prefix}
	r.sendRERR(e, false)
}

func (r *Router) sendRERR(e rerr, relay bool) {
	next := e.Origin
	if e.Pos < len(e.Path) {
		next = e.Path[e.Pos]
	}
	if !r.med.InRange(r.ID(), next) {
		return // best-effort; the origin's own retry will discover
	}
	if relay {
		r.Count.CtrlRelayed++
	} else {
		r.Count.CtrlOrig++
	}
	r.med.Send(radio.Frame{Src: r.ID(), Dst: next, Size: sizeRERR + sizePerHop*len(e.Path), Payload: e})
}

// HandleFrame dispatches radio arrivals.
func (r *Router) HandleFrame(f radio.Frame) {
	switch pkt := f.Payload.(type) {
	case rreq:
		r.handleRREQ(pkt)
	case rrep:
		r.handleRREP(pkt)
	case rerr:
		r.handleRERR(pkt)
	case data:
		r.handleData(pkt)
	case route.Bcast:
		r.bcast.Handle(f.Src, pkt)
	default:
		panic(fmt.Sprintf("dsr: unknown payload type %T", f.Payload))
	}
}

func (r *Router) handleRREQ(q rreq) {
	if q.Origin == r.ID() {
		return
	}
	k := route.Key{Origin: q.Origin, ID: q.ID}
	if r.seenRREQ.Seen(k) {
		r.Count.DupHits++
		return
	}
	r.seenRREQ.Mark(k)
	// Learn the reverse route from the accumulated path.
	rev := reversed(q.Path)
	r.learnRoute(q.Origin, rev)
	if q.Dst == r.ID() {
		// Answer along the reversed accumulated path.
		p := rrep{Origin: q.Origin, Dst: r.ID(), Path: append([]int(nil), q.Path...)}
		r.sendRREP(p, false)
		return
	}
	if q.TTL <= 1 {
		return
	}
	q.TTL--
	q.Path = append(append([]int(nil), q.Path...), r.ID())
	r.Count.CtrlRelayed++
	r.med.Send(radio.Frame{
		Src: r.ID(), Dst: radio.BroadcastAddr,
		Size: sizeRREQBase + sizePerHop*len(q.Path), Payload: q,
	})
}

// sendRREP moves a route reply one hop backwards along the discovered
// path (Path holds intermediates origin->dst; the reply walks it in
// reverse: Pos counts how many reverse hops were taken).
func (r *Router) sendRREP(p rrep, relay bool) {
	next := p.Origin
	if idx := len(p.Path) - 1 - p.Pos; idx >= 0 {
		next = p.Path[idx]
	}
	if !r.med.InRange(r.ID(), next) {
		return // discovery retry handles it
	}
	if relay {
		r.Count.CtrlRelayed++
	} else {
		r.Count.CtrlOrig++
	}
	r.med.Send(radio.Frame{
		Src: r.ID(), Dst: next,
		Size: sizeRREPBase + sizePerHop*len(p.Path), Payload: p,
	})
}

func (r *Router) handleRREP(p rrep) {
	// Everyone on the way back learns the route to the reply's subject.
	idx := len(p.Path) - 1 - p.Pos // our position in the path
	if p.Origin == r.ID() {
		r.learnRoute(p.Dst, p.Path)
		r.completeDiscovery(p.Dst)
		return
	}
	if idx < 0 || idx >= len(p.Path) || p.Path[idx] != r.ID() {
		return // stale or misrouted reply
	}
	r.learnRoute(p.Dst, p.Path[idx+1:])
	p.Pos++
	r.sendRREP(p, true)
}

func (r *Router) handleRERR(e rerr) {
	r.dropRoutesVia(e.BadA, e.BadB)
	if e.Origin == r.ID() {
		return
	}
	if e.Pos < len(e.Path) && e.Path[e.Pos] == r.ID() {
		e.Pos++
		r.sendRERR(e, true)
	}
}

func (r *Router) handleData(pkt data) {
	if pkt.Dst == r.ID() {
		// Learn the reverse route from the traversed prefix.
		rev := make([]int, 0, len(pkt.Path))
		for i := len(pkt.Path) - 1; i >= 0; i-- {
			rev = append(rev, pkt.Path[i])
		}
		r.learnRoute(pkt.Origin, rev)
		r.DeliverUnicast(pkt.Origin, len(pkt.Path)+1, pkt.Payload)
		return
	}
	if pkt.Pos >= len(pkt.Path) || pkt.Path[pkt.Pos] != r.ID() {
		r.Count.DataDropped++
		return // not ours; stale source route
	}
	pkt.Pos++
	r.forward(pkt)
}

func reversed(path []int) []int {
	out := make([]int, 0, len(path))
	for i := len(path) - 1; i >= 0; i-- {
		out = append(out, path[i])
	}
	return out
}
