// Package dsr implements Dynamic Source Routing, the second on-demand
// protocol from the routing comparison the paper bases its AODV choice
// on ([13] in the paper; Johnson/Maltz's DSR). Routes are discovered by
// flooding route requests that accumulate the traversed path; data
// packets carry their complete source route, so relays keep no routing
// state but headers grow with path length — the classic DSR trade-off
// this reproduction's routing sweep exposes.
package dsr

import (
	"fmt"
	"sort"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// Nominal packet sizes: fixed part + per-hop address bytes for anything
// carrying a source route.
const (
	sizeRREQBase  = 16
	sizeRREPBase  = 12
	sizeRERR      = 16
	sizeDataBase  = 12
	sizeBcastBase = 16
	sizePerHop    = 4
)

// rreq floods outward accumulating the path traveled.
type rreq struct {
	Origin int
	ID     uint32
	Dst    int
	TTL    int
	Path   []int // nodes traversed so far, excluding the origin
}

// rrep returns the discovered path to the origin.
type rrep struct {
	Origin int
	Dst    int
	Path   []int // full path origin -> ... -> dst, excluding both ends
	Pos    int   // index of the current hop on the reversed way back
}

// rerr tells the origin a link on its source route broke.
type rerr struct {
	Origin int
	BadA   int   // upstream end of the broken link
	BadB   int   // downstream end
	Path   []int // reversed prefix back to the origin
	Pos    int
}

// data carries its complete source route.
type data struct {
	Origin  int
	Dst     int
	Path    []int // intermediate hops origin -> dst
	Pos     int   // next hop index into Path; len(Path) means deliver to Dst
	Size    int
	Payload any
}

// bcast is the same controlled broadcast as the AODV substrate, but DSR
// piggybacks the traversed path so receivers learn a source route back
// to the origin for free.
type bcast struct {
	Origin  int
	ID      uint32
	TTL     int
	Size    int
	Path    []int
	Payload any
}

// cachedRoute is one known source route.
type cachedRoute struct {
	path    []int // intermediate hops, self -> dst
	expires sim.Time
}

// Config tunes the DSR layer. Zero fields take defaults.
type Config struct {
	RouteLifetime       sim.Time
	SeenCacheTimeout    sim.Time
	MaxDiscoveryRetries int
	DiscoveryTTL        int
	HopTraversal        sim.Time
	BufferCap           int
}

// DefaultConfig mirrors the AODV defaults so cross-protocol sweeps are
// apples to apples.
func DefaultConfig() Config {
	return Config{
		// As with AODV, broken links are detected at forward time; the
		// lifetime only bounds silent staleness.
		RouteLifetime:       30 * sim.Second,
		SeenCacheTimeout:    30 * sim.Second,
		MaxDiscoveryRetries: 2,
		DiscoveryTTL:        20,
		HopTraversal:        10 * sim.Millisecond,
		BufferCap:           16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = d.RouteLifetime
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.MaxDiscoveryRetries <= 0 {
		c.MaxDiscoveryRetries = d.MaxDiscoveryRetries
	}
	if c.DiscoveryTTL <= 0 {
		c.DiscoveryTTL = d.DiscoveryTTL
	}
	if c.HopTraversal <= 0 {
		c.HopTraversal = d.HopTraversal
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// Stats counts DSR activity for one node.
type Stats struct {
	RREQSent     uint64
	RREQRelayed  uint64
	RREPSent     uint64
	RERRSent     uint64
	DataSent     uint64
	DataRelayed  uint64
	DataDropped  uint64
	Discoveries  uint64
	DiscoverFail uint64
}

type seenKey struct {
	origin int
	id     uint32
}

type discovery struct {
	retries int
	timer   sim.Handle
	queue   []data
}

// Router is the per-node DSR instance; it satisfies netif.Protocol.
type Router struct {
	id  int
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	cache     map[int]cachedRoute
	rreqID    uint32
	bcastID   uint32
	seenRREQ  map[seenKey]sim.Time
	seenBcast map[seenKey]sim.Time
	pending   map[int]*discovery
	stats     Stats

	onBroadcast  func(netif.Delivery)
	onUnicast    func(netif.Delivery)
	onSendFailed func(dst int, payload any)

	// Callbacks for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	selfDeliverFn func(sim.Arg)
	discTimeoutFn func(sim.Arg)
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the DSR layer for node id; pass HandleFrame as the
// node's radio receiver.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	r := &Router{
		id:        id,
		sim:       s,
		med:       med,
		cfg:       cfg.withDefaults(),
		cache:     make(map[int]cachedRoute),
		seenRREQ:  make(map[seenKey]sim.Time),
		seenBcast: make(map[seenKey]sim.Time),
		pending:   make(map[int]*discovery),
	}
	r.selfDeliverFn = r.selfDeliver
	r.discTimeoutFn = r.discTimeout
	return r
}

// selfDeliver completes a Send addressed to this node on the next
// event-loop turn.
func (r *Router) selfDeliver(a sim.Arg) {
	if r.onUnicast != nil {
		r.onUnicast(netif.Delivery{From: r.id, Hops: 0, Payload: a.X})
	}
}

// discTimeout unpacks the typed-arg timer payload for discoveryTimeout.
func (r *Router) discTimeout(a sim.Arg) {
	r.discoveryTimeout(a.I0, a.X.(*discovery))
}

// ID returns the node this router belongs to.
func (r *Router) ID() int { return r.id }

// Stats returns activity counters.
func (r *Router) Stats() Stats { return r.stats }

// OnBroadcast installs the flood delivery hook.
func (r *Router) OnBroadcast(fn func(netif.Delivery)) { r.onBroadcast = fn }

// OnUnicast installs the data delivery hook.
func (r *Router) OnUnicast(fn func(netif.Delivery)) { r.onUnicast = fn }

// OnSendFailed installs the undeliverable hook.
func (r *Router) OnSendFailed(fn func(dst int, payload any)) { r.onSendFailed = fn }

// HopsTo reports the cached route length to dst.
func (r *Router) HopsTo(dst int) (int, bool) {
	cr, ok := r.route(dst)
	if !ok {
		return 0, false
	}
	return len(cr.path) + 1, true
}

func (r *Router) route(dst int) (cachedRoute, bool) {
	cr, ok := r.cache[dst]
	if !ok || cr.expires < r.sim.Now() {
		return cachedRoute{}, false
	}
	return cr, true
}

// learnRoute caches a source route self -> dst (intermediates only),
// preferring shorter paths and refreshing lifetimes.
func (r *Router) learnRoute(dst int, path []int) {
	if dst == r.id {
		return
	}
	// Routes through ourselves would loop.
	for _, h := range path {
		if h == r.id || h == dst {
			return
		}
	}
	now := r.sim.Now()
	if old, ok := r.cache[dst]; ok && old.expires >= now && len(old.path) < len(path) {
		return
	}
	cp := append([]int(nil), path...)
	r.cache[dst] = cachedRoute{path: cp, expires: now + r.cfg.RouteLifetime}
	// Prefix routes come for free.
	for i, h := range cp {
		if old, ok := r.cache[h]; ok && old.expires >= now && len(old.path) <= i {
			continue
		}
		r.cache[h] = cachedRoute{path: append([]int(nil), cp[:i]...), expires: now + r.cfg.RouteLifetime}
	}
}

// dropRoutesVia removes every cached route using the directed link a->b.
func (r *Router) dropRoutesVia(a, b int) {
	var doomed []int
	for dst, cr := range r.cache {
		full := append(append([]int{r.id}, cr.path...), dst)
		for i := 0; i+1 < len(full); i++ {
			if full[i] == a && full[i+1] == b {
				doomed = append(doomed, dst)
				break
			}
		}
	}
	sort.Ints(doomed)
	for _, dst := range doomed {
		delete(r.cache, dst)
	}
}

// Broadcast floods payload within ttl hops, with duplicate suppression
// and path accumulation.
func (r *Router) Broadcast(ttl, size int, payload any) {
	if ttl <= 0 {
		panic("dsr: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.id) {
		return
	}
	r.bcastID++
	pkt := bcast{Origin: r.id, ID: r.bcastID, TTL: ttl, Size: size, Payload: payload}
	r.markSeen(r.seenBcast, seenKey{r.id, pkt.ID})
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: size + sizeBcastBase, Payload: pkt})
}

// Send routes payload to dst, discovering a source route on demand.
func (r *Router) Send(dst, size int, payload any) {
	if dst == r.id {
		r.sim.ScheduleArg(0, r.selfDeliverFn, sim.Arg{X: payload})
		return
	}
	if !r.med.Up(r.id) {
		return
	}
	r.stats.DataSent++
	pkt := data{Origin: r.id, Dst: dst, Size: size, Payload: payload}
	if cr, ok := r.route(dst); ok {
		pkt.Path = cr.path
		r.forward(pkt)
		return
	}
	r.enqueue(pkt)
}

func (r *Router) enqueue(pkt data) {
	d, inProgress := r.pending[pkt.Dst]
	if !inProgress {
		d = &discovery{}
		r.pending[pkt.Dst] = d
		r.sendRREQ(pkt.Dst, d)
	}
	if len(d.queue) >= r.cfg.BufferCap {
		r.stats.DataDropped++
		r.failSend(pkt.Dst, pkt.Payload)
		return
	}
	d.queue = append(d.queue, pkt)
}

func (r *Router) failSend(dst int, payload any) {
	if r.onSendFailed != nil {
		r.onSendFailed(dst, payload)
	}
}

func (r *Router) sendRREQ(dst int, d *discovery) {
	r.rreqID++
	q := rreq{Origin: r.id, ID: r.rreqID, Dst: dst, TTL: r.cfg.DiscoveryTTL}
	r.markSeen(r.seenRREQ, seenKey{r.id, q.ID})
	r.stats.RREQSent++
	r.stats.Discoveries++
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: sizeRREQBase, Payload: q})
	wait := 2 * sim.Time(r.cfg.DiscoveryTTL) * r.cfg.HopTraversal
	d.timer = r.sim.ScheduleArg(wait, r.discTimeoutFn, sim.Arg{I0: dst, X: d})
}

func (r *Router) discoveryTimeout(dst int, d *discovery) {
	if r.pending[dst] != d {
		return
	}
	if _, ok := r.route(dst); ok {
		r.completeDiscovery(dst)
		return
	}
	d.retries++
	if d.retries > r.cfg.MaxDiscoveryRetries {
		delete(r.pending, dst)
		r.stats.DiscoverFail++
		for _, pkt := range d.queue {
			r.stats.DataDropped++
			r.failSend(dst, pkt.Payload)
		}
		return
	}
	r.sendRREQ(dst, d)
}

func (r *Router) completeDiscovery(dst int) {
	d, ok := r.pending[dst]
	if !ok {
		return
	}
	cr, haveRoute := r.route(dst)
	if !haveRoute {
		return
	}
	delete(r.pending, dst)
	d.timer.Cancel()
	for _, pkt := range d.queue {
		pkt.Path = cr.path
		pkt.Pos = 0
		r.forward(pkt)
	}
}

// forward transmits pkt to its next source-route hop, raising RERR on a
// broken link.
func (r *Router) forward(pkt data) {
	next := pkt.Dst
	if pkt.Pos < len(pkt.Path) {
		next = pkt.Path[pkt.Pos]
	}
	if !r.med.InRange(r.id, next) {
		r.linkBroken(pkt.Origin, r.id, next, pkt.Path, pkt.Pos)
		if pkt.Origin == r.id {
			delete(r.cache, pkt.Dst)
			pkt.Path = nil
			pkt.Pos = 0
			r.enqueue(pkt)
		} else {
			r.stats.DataDropped++
		}
		return
	}
	if pkt.Origin != r.id {
		r.stats.DataRelayed++
	}
	size := pkt.Size + sizeDataBase + sizePerHop*len(pkt.Path)
	r.med.Send(radio.Frame{Src: r.id, Dst: next, Size: size, Payload: pkt})
}

// linkBroken drops local routes over the dead link and notifies the
// packet origin along the reversed traversed prefix.
func (r *Router) linkBroken(origin, a, b int, path []int, pos int) {
	r.dropRoutesVia(a, b)
	if origin == r.id {
		return
	}
	// Reversed prefix back to the origin: the hops before us, reversed.
	prefix := make([]int, 0, pos)
	for i := pos - 1; i >= 0; i-- {
		if path[i] != r.id {
			prefix = append(prefix, path[i])
		}
	}
	e := rerr{Origin: origin, BadA: a, BadB: b, Path: prefix}
	r.sendRERR(e)
}

func (r *Router) sendRERR(e rerr) {
	next := e.Origin
	if e.Pos < len(e.Path) {
		next = e.Path[e.Pos]
	}
	if !r.med.InRange(r.id, next) {
		return // best-effort; the origin's own retry will discover
	}
	r.stats.RERRSent++
	r.med.Send(radio.Frame{Src: r.id, Dst: next, Size: sizeRERR + sizePerHop*len(e.Path), Payload: e})
}

// HandleFrame dispatches radio arrivals.
func (r *Router) HandleFrame(f radio.Frame) {
	switch pkt := f.Payload.(type) {
	case rreq:
		r.handleRREQ(pkt)
	case rrep:
		r.handleRREP(pkt)
	case rerr:
		r.handleRERR(pkt)
	case data:
		r.handleData(pkt)
	case bcast:
		r.handleBcast(pkt)
	default:
		panic(fmt.Sprintf("dsr: unknown payload type %T", f.Payload))
	}
}

func (r *Router) handleRREQ(q rreq) {
	if q.Origin == r.id || r.haveSeen(r.seenRREQ, seenKey{q.Origin, q.ID}) {
		return
	}
	r.markSeen(r.seenRREQ, seenKey{q.Origin, q.ID})
	// Learn the reverse route from the accumulated path.
	rev := reversed(q.Path)
	r.learnRoute(q.Origin, rev)
	if q.Dst == r.id {
		// Answer along the reversed accumulated path.
		p := rrep{Origin: q.Origin, Dst: r.id, Path: append([]int(nil), q.Path...)}
		r.stats.RREPSent++
		r.sendRREP(p)
		return
	}
	if q.TTL <= 1 {
		return
	}
	q.TTL--
	q.Path = append(append([]int(nil), q.Path...), r.id)
	r.stats.RREQRelayed++
	r.med.Send(radio.Frame{
		Src: r.id, Dst: radio.BroadcastAddr,
		Size: sizeRREQBase + sizePerHop*len(q.Path), Payload: q,
	})
}

// sendRREP moves a route reply one hop backwards along the discovered
// path (Path holds intermediates origin->dst; the reply walks it in
// reverse: Pos counts how many reverse hops were taken).
func (r *Router) sendRREP(p rrep) {
	next := p.Origin
	if idx := len(p.Path) - 1 - p.Pos; idx >= 0 {
		next = p.Path[idx]
	}
	if !r.med.InRange(r.id, next) {
		return // discovery retry handles it
	}
	r.med.Send(radio.Frame{
		Src: r.id, Dst: next,
		Size: sizeRREPBase + sizePerHop*len(p.Path), Payload: p,
	})
}

func (r *Router) handleRREP(p rrep) {
	// Everyone on the way back learns the route to the reply's subject.
	idx := len(p.Path) - 1 - p.Pos // our position in the path
	if p.Origin == r.id {
		r.learnRoute(p.Dst, p.Path)
		r.completeDiscovery(p.Dst)
		return
	}
	if idx < 0 || idx >= len(p.Path) || p.Path[idx] != r.id {
		return // stale or misrouted reply
	}
	r.learnRoute(p.Dst, p.Path[idx+1:])
	p.Pos++
	r.stats.RREPSent++
	r.sendRREP(p)
}

func (r *Router) handleRERR(e rerr) {
	r.dropRoutesVia(e.BadA, e.BadB)
	if e.Origin == r.id {
		return
	}
	if e.Pos < len(e.Path) && e.Path[e.Pos] == r.id {
		e.Pos++
		r.sendRERR(e)
	}
}

func (r *Router) handleData(pkt data) {
	if pkt.Dst == r.id {
		// Learn the reverse route from the traversed prefix.
		rev := make([]int, 0, len(pkt.Path))
		for i := len(pkt.Path) - 1; i >= 0; i-- {
			rev = append(rev, pkt.Path[i])
		}
		r.learnRoute(pkt.Origin, rev)
		if r.onUnicast != nil {
			r.onUnicast(netif.Delivery{From: pkt.Origin, Hops: len(pkt.Path) + 1, Payload: pkt.Payload})
		}
		return
	}
	if pkt.Pos >= len(pkt.Path) || pkt.Path[pkt.Pos] != r.id {
		r.stats.DataDropped++
		return // not ours; stale source route
	}
	pkt.Pos++
	r.forward(pkt)
}

func (r *Router) handleBcast(b bcast) {
	if b.Origin == r.id || r.haveSeen(r.seenBcast, seenKey{b.Origin, b.ID}) {
		return
	}
	r.markSeen(r.seenBcast, seenKey{b.Origin, b.ID})
	r.learnRoute(b.Origin, reversed(b.Path))
	if r.onBroadcast != nil {
		r.onBroadcast(netif.Delivery{From: b.Origin, Hops: len(b.Path) + 1, Payload: b.Payload})
	}
	if b.TTL > 1 {
		b.TTL--
		b.Path = append(append([]int(nil), b.Path...), r.id)
		r.med.Send(radio.Frame{
			Src: r.id, Dst: radio.BroadcastAddr,
			Size: b.Size + sizeBcastBase + sizePerHop*len(b.Path), Payload: b,
		})
	}
}

func reversed(path []int) []int {
	out := make([]int, 0, len(path))
	for i := len(path) - 1; i >= 0; i-- {
		out = append(out, path[i])
	}
	return out
}

func (r *Router) haveSeen(cache map[seenKey]sim.Time, k seenKey) bool {
	t, ok := cache[k]
	return ok && r.sim.Now()-t < r.cfg.SeenCacheTimeout
}

func (r *Router) markSeen(cache map[seenKey]sim.Time, k seenKey) {
	if len(cache) > 4096 {
		cutoff := r.sim.Now() - r.cfg.SeenCacheTimeout
		for key, t := range cache {
			if t < cutoff {
				delete(cache, key)
			}
		}
	}
	cache[k] = r.sim.Now()
}
