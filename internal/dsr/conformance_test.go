package dsr

import (
	"testing"

	"manetp2p/internal/netif/conformance"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// TestConformance runs the shared netif.Protocol contract suite. DSR
// signals an abandoned payload once source-route discovery exhausts its
// retries.
func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Factory{
		Name: "dsr",
		New: func(id int, s *sim.Sim, med *radio.Medium) conformance.Router {
			return NewRouter(id, s, med, Config{SeenCacheCap: 512})
		},
	})
}
