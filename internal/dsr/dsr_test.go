package dsr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

type testNet struct {
	s       *sim.Sim
	med     *radio.Medium
	routers []*Router
	unicast [][]netif.Delivery
	bcasts  [][]netif.Delivery
	failed  [][]int
}

func newTestNet(t *testing.T, seed int64, pts []geom.Point, cfg Config) *testNet {
	t.Helper()
	s := sim.New(seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: len(pts),
		Latency:  2 * sim.Millisecond,
		Jitter:   sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{
		s:       s,
		med:     med,
		routers: make([]*Router, len(pts)),
		unicast: make([][]netif.Delivery, len(pts)),
		bcasts:  make([][]netif.Delivery, len(pts)),
		failed:  make([][]int, len(pts)),
	}
	for i, p := range pts {
		i := i
		r := NewRouter(i, s, med, cfg)
		r.OnUnicast(func(d netif.Delivery) { n.unicast[i] = append(n.unicast[i], d) })
		r.OnBroadcast(func(d netif.Delivery) { n.bcasts[i] = append(n.bcasts[i], d) })
		r.OnSendFailed(func(dst int, _ netif.Msg) { n.failed[i] = append(n.failed[i], dst) })
		med.Join(i, p, r.HandleFrame)
		n.routers[i] = r
	}
	return n
}

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 5 + 8*float64(i), Y: 50}
	}
	return pts
}

func TestSourceRouteDelivery(t *testing.T) {
	n := newTestNet(t, 1, line(5), Config{})
	n.routers[0].Send(4, 100, netif.TestMsg(11))
	n.s.Run(10 * sim.Second)
	got := n.unicast[4]
	if len(got) != 1 {
		t.Fatalf("deliveries = %v, want 1", got)
	}
	if got[0].From != 0 || got[0].Hops != 4 || got[0].Payload != netif.TestMsg(11) {
		t.Errorf("delivery = %+v, want from 0 over 4 hops", got[0])
	}
	// Route cached at the origin...
	if h, ok := n.routers[0].HopsTo(4); !ok || h != 4 {
		t.Errorf("HopsTo(4) = (%d,%v), want (4,true)", h, ok)
	}
	// ...and learned in reverse at the destination from the data path.
	if h, ok := n.routers[4].HopsTo(0); !ok || h != 4 {
		t.Errorf("reverse HopsTo(0) = (%d,%v), want (4,true)", h, ok)
	}
	// Second send reuses the cache: no new discovery.
	before := n.routers[0].Stats().Discoveries
	n.routers[0].Send(4, 10, netif.TestMsg(12))
	n.s.Run(12 * sim.Second)
	if len(n.unicast[4]) != 2 {
		t.Fatal("second packet lost")
	}
	if n.routers[0].Stats().Discoveries != before {
		t.Error("cached route not reused")
	}
}

func TestIntermediatePrefixRoutesLearned(t *testing.T) {
	n := newTestNet(t, 2, line(6), Config{})
	n.routers[0].Send(5, 10, netif.TestMsg(1))
	n.s.Run(10 * sim.Second)
	// The origin learned prefix routes to every intermediate hop.
	for dst := 1; dst <= 5; dst++ {
		if h, ok := n.routers[0].HopsTo(dst); !ok || h != dst {
			t.Errorf("HopsTo(%d) = (%d,%v), want (%d,true)", dst, h, ok, dst)
		}
	}
}

func TestSendToSelf(t *testing.T) {
	n := newTestNet(t, 3, line(2), Config{})
	n.routers[0].Send(0, 10, netif.TestMsg(2))
	n.s.Run(sim.Second)
	if len(n.unicast[0]) != 1 || n.unicast[0][0].Hops != 0 {
		t.Fatalf("self delivery = %v", n.unicast[0])
	}
}

func TestDiscoveryFailureNotifies(t *testing.T) {
	pts := append(line(2), geom.Point{X: 190, Y: 190})
	cfg := Config{MaxDiscoveryRetries: 1, DiscoveryTTL: 6}
	n := newTestNet(t, 4, pts, cfg)
	n.routers[0].Send(2, 10, netif.TestMsg(3))
	n.s.Run(time2min())
	if len(n.failed[0]) != 1 || n.failed[0][0] != 2 {
		t.Fatalf("failed = %v, want [2]", n.failed[0])
	}
	if n.routers[0].Stats().DiscoverFailed != 1 {
		t.Errorf("DiscoverFail = %d, want 1", n.routers[0].Stats().DiscoverFailed)
	}
}

func time2min() sim.Time { return 2 * sim.Minute }

func TestBrokenLinkRecoveryAtOrigin(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3. Establish a route, kill the relay used,
	// send again: the origin must rediscover via the other relay.
	pts := []geom.Point{
		{X: 50, Y: 50}, {X: 58, Y: 44}, {X: 58, Y: 56}, {X: 66, Y: 50},
	}
	n := newTestNet(t, 5, pts, Config{})
	n.routers[0].Send(3, 10, netif.TestMsg(4))
	n.s.Run(5 * sim.Second)
	if len(n.unicast[3]) != 1 {
		t.Fatal("first packet lost")
	}
	relay := 1
	if n.routers[2].Stats().DataForwarded > 0 {
		relay = 2
	}
	n.med.SetPos(relay, geom.Point{X: 150, Y: 150})
	// Wait out the route cache so the origin must rediscover cleanly.
	n.s.Run(30 * sim.Second)
	n.routers[0].Send(3, 10, netif.TestMsg(5))
	n.s.Run(90 * sim.Second)
	if len(n.unicast[3]) != 2 {
		t.Fatalf("deliveries = %d, want 2 (recovery)", len(n.unicast[3]))
	}
}

func TestRERRReachesOriginFromMidPath(t *testing.T) {
	// Chain 0..4; route established; node 4 moves away while the cache
	// at 0 is still fresh. A data packet breaks at node 3, which must
	// RERR back; the origin's retry then fails or rediscovers — either
	// way no stale route survives at the origin.
	n := newTestNet(t, 6, line(5), Config{})
	n.routers[0].Send(4, 10, netif.TestMsg(6))
	n.s.Run(5 * sim.Second)
	if len(n.unicast[4]) != 1 {
		t.Fatal("warmup lost")
	}
	n.med.SetPos(4, geom.Point{X: 190, Y: 190})
	n.routers[0].Send(4, 10, netif.TestMsg(7))
	n.s.Run(time2min())
	if len(n.unicast[4]) != 1 {
		t.Fatal("packet delivered to unreachable node")
	}
	if _, ok := n.routers[0].HopsTo(4); ok {
		t.Error("origin still holds a route to the unreachable node")
	}
	var rerrs uint64
	for _, r := range n.routers {
		rerrs += r.Stats().CtrlOrig
	}
	if rerrs == 0 {
		t.Error("no RERR emitted for the broken source route")
	}
}

func TestBroadcastReachAndReverseRoutes(t *testing.T) {
	n := newTestNet(t, 7, line(6), Config{})
	n.routers[0].Broadcast(3, 50, netif.TestMsg(8))
	n.s.Run(sim.Second)
	for i := 1; i <= 3; i++ {
		if len(n.bcasts[i]) != 1 || n.bcasts[i][0].Hops != i {
			t.Errorf("node %d bcasts = %+v, want one at %d hops", i, n.bcasts[i], i)
		}
	}
	for i := 4; i < 6; i++ {
		if len(n.bcasts[i]) != 0 {
			t.Errorf("node %d beyond TTL received the flood", i)
		}
	}
	// Receivers learned routes back to the origin and can reply without
	// discovery.
	n.routers[3].Send(0, 10, netif.TestMsg(9))
	n.s.Run(2 * sim.Second)
	if len(n.unicast[0]) != 1 {
		t.Fatal("reply lost")
	}
	if n.routers[3].Stats().Discoveries != 0 {
		t.Error("responder needed a discovery despite piggybacked path")
	}
}

func TestBroadcastDedup(t *testing.T) {
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Point{X: 50 + float64(i%3), Y: 50 + float64(i/3)}
	}
	n := newTestNet(t, 8, pts, Config{})
	n.routers[0].Broadcast(5, 10, netif.TestMsg(10))
	n.s.Run(sim.Second)
	for i := 1; i < 8; i++ {
		if len(n.bcasts[i]) != 1 {
			t.Errorf("node %d received %d copies, want 1", i, len(n.bcasts[i]))
		}
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := Config{RouteLifetime: 5 * sim.Second}
	n := newTestNet(t, 9, line(3), cfg)
	n.routers[0].Send(2, 10, netif.TestMsg(13))
	n.s.Run(2 * sim.Second)
	if _, ok := n.routers[0].HopsTo(2); !ok {
		t.Fatal("route not cached")
	}
	n.s.Run(10 * sim.Second)
	if _, ok := n.routers[0].HopsTo(2); ok {
		t.Error("route survived past its lifetime")
	}
}

// Property: DSR delivers between the farthest connected pair on random
// static topologies, with hop count >= BFS distance.
func TestQuickDSRRandomTopology(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 25
		arena := geom.Rect{W: 60, H: 60}
		pts := make([]geom.Point, nodes)
		for i := range pts {
			pts[i] = arena.RandomPoint(rng)
		}
		dist := bfs(adjacency(pts, 10), 0)
		target, best := -1, 0
		for i, d := range dist {
			if d > best && d < 1<<30 {
				target, best = i, d
			}
		}
		if target < 0 {
			return true
		}
		n := newTestNet(t, seed, pts, Config{})
		n.routers[0].Send(target, 10, netif.TestMsg(14))
		n.s.Run(30 * sim.Second)
		if len(n.unicast[target]) != 1 {
			return false
		}
		return n.unicast[target][0].Hops >= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func adjacency(pts []geom.Point, r float64) [][]int {
	adj := make([][]int, len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= r {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

func bfs(adj [][]int, src int) []int {
	const inf = 1 << 30
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestLearnRouteRejectsLoops(t *testing.T) {
	s := sim.New(1)
	med, err := radio.NewMedium(s, radio.Config{Arena: geom.Rect{W: 10, H: 10}, Range: 5, NumNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(0, s, med, Config{})
	r.learnRoute(3, []int{1, 0, 2}) // contains self: reject
	if _, ok := r.HopsTo(3); ok {
		t.Error("looping route accepted")
	}
	r.learnRoute(3, []int{1, 3}) // contains dst as intermediate: reject
	if _, ok := r.HopsTo(3); ok {
		t.Error("dst-as-intermediate route accepted")
	}
	r.learnRoute(0, []int{1}) // route to self: reject
	if _, ok := r.HopsTo(0); ok {
		t.Error("route to self accepted")
	}
}

func TestShorterRouteReplacesLonger(t *testing.T) {
	s := sim.New(1)
	med, err := radio.NewMedium(s, radio.Config{Arena: geom.Rect{W: 10, H: 10}, Range: 5, NumNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(0, s, med, Config{})
	r.learnRoute(5, []int{1, 2, 3})
	r.learnRoute(5, []int{4})
	if h, _ := r.HopsTo(5); h != 2 {
		t.Errorf("HopsTo = %d, want 2 (shorter route must win)", h)
	}
	// A longer route must not displace the shorter one.
	r.learnRoute(5, []int{1, 2, 3})
	if h, _ := r.HopsTo(5); h != 2 {
		t.Errorf("HopsTo = %d after longer update, want 2", h)
	}
}
