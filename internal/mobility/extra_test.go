package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

func TestDirectionStaysInArenaAndReachesWalls(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDirection(arena, geom.Point{X: 50, Y: 50}, 0.5, 1.0, 10*sim.Second, rng)
	nearWall := 0
	for ts := sim.Time(0); ts < sim.Hour; ts += sim.Second {
		p := d.Pos(ts)
		if !arena.Contains(p) {
			t.Fatalf("position %v outside arena at %v", p, ts)
		}
		if p.X < 1 || p.X > 99 || p.Y < 1 || p.Y > 99 {
			nearWall++
		}
	}
	// Random Direction travels wall to wall; it must visit the border
	// repeatedly over an hour.
	if nearWall < 5 {
		t.Errorf("only %d near-wall samples; walker never reaches boundaries", nearWall)
	}
}

func TestDirectionSpeedBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDirection(arena, geom.Point{X: 50, Y: 50}, 0.5, 2.0, 5*sim.Second, rng)
	const dt = 100 * sim.Millisecond
	prev := d.Pos(0)
	for ts := dt; ts < 10*sim.Minute; ts += dt {
		p := d.Pos(ts)
		if speed := p.Dist(prev) / dt.Seconds(); speed > 2.0+1e-6 {
			t.Fatalf("speed %.3f exceeds max", speed)
		}
		prev = p
	}
}

func TestDirectionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inside := geom.Point{X: 1, Y: 1}
	for name, bad := range map[string]func(){
		"zero speed":    func() { NewDirection(arena, inside, 0, 1, 0, rng) },
		"neg pause":     func() { NewDirection(arena, inside, 0.1, 1, -1, rng) },
		"start outside": func() { NewDirection(arena, geom.Point{X: -1, Y: 0}, 0.1, 1, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			bad()
		}()
	}
}

func TestGaussMarkovStaysInArena(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGaussMarkov(arena, geom.Point{X: 50, Y: 50}, 1.0, 0.75, sim.Second, rng)
	for ts := sim.Time(0); ts < sim.Hour; ts += 500 * sim.Millisecond {
		if p := g.Pos(ts); !arena.Contains(p) {
			t.Fatalf("position %v outside arena at %v", p, ts)
		}
	}
}

func TestGaussMarkovMovesSmoothly(t *testing.T) {
	// With high alpha the heading is correlated: successive displacement
	// vectors should mostly point the same way (positive dot product).
	rng := rand.New(rand.NewSource(4))
	g := NewGaussMarkov(arena, geom.Point{X: 50, Y: 50}, 1.0, 0.9, sim.Second, rng)
	positive, total := 0, 0
	prev := g.Pos(0)
	var pdx, pdy float64
	for ts := sim.Second; ts < 20*sim.Minute; ts += sim.Second {
		p := g.Pos(ts)
		dx, dy := p.X-prev.X, p.Y-prev.Y
		if pdx != 0 || pdy != 0 {
			total++
			if dx*pdx+dy*pdy > 0 {
				positive++
			}
		}
		pdx, pdy = dx, dy
		prev = p
	}
	if total == 0 || float64(positive)/float64(total) < 0.7 {
		t.Errorf("only %d/%d correlated steps; trajectory not smooth", positive, total)
	}
}

func TestGaussMarkovAlphaZeroStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGaussMarkov(arena, geom.Point{X: 50, Y: 50}, 1.0, 0, sim.Second, rng)
	for ts := sim.Time(0); ts < 10*sim.Minute; ts += sim.Second {
		if p := g.Pos(ts); !arena.Contains(p) {
			t.Fatalf("alpha=0 position %v outside arena", p)
		}
	}
}

func TestGaussMarkovValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inside := geom.Point{X: 1, Y: 1}
	for name, bad := range map[string]func(){
		"zero speed": func() { NewGaussMarkov(arena, inside, 0, 0.5, sim.Second, rng) },
		"bad alpha":  func() { NewGaussMarkov(arena, inside, 1, 1.5, sim.Second, rng) },
		"zero step":  func() { NewGaussMarkov(arena, inside, 1, 0.5, 0, rng) },
		"outside":    func() { NewGaussMarkov(arena, geom.Point{X: -1, Y: 0}, 1, 0.5, sim.Second, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			bad()
		}()
	}
}

// Property: all models remain in the arena at random query times.
func TestQuickExtraModelsInArena(t *testing.T) {
	f := func(seed int64, which bool) bool {
		rng := rand.New(rand.NewSource(seed))
		start := arena.RandomPoint(rng)
		var m Model
		if which {
			m = NewDirection(arena, start, 0.1, 1.5, 20*sim.Second, rng)
		} else {
			m = NewGaussMarkov(arena, start, 1.0, 0.6, sim.Second, rng)
		}
		ts := sim.Time(0)
		for i := 0; i < 150; i++ {
			ts += sim.UniformDuration(rng, 0, 20*sim.Second)
			if !arena.Contains(m.Pos(ts)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
