// Package mobility implements node movement models. The paper's scenarios
// use Random Waypoint ([Camp/Boleng/Davies 2002], cited as the "Random
// Way" model) with a maximum speed of 1.0 m/s and a maximum pause of
// 100 s over a 100 m × 100 m arena.
//
// Models are lazy functions of time: Pos(t) advances internal movement
// legs up to t and interpolates, so no events need to be scheduled. Time
// arguments must be nondecreasing across calls, which the single-threaded
// simulator guarantees.
package mobility

import (
	"math"
	"math/rand"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

// Model yields a node's position over (nondecreasing) time.
type Model interface {
	Pos(t sim.Time) geom.Point
}

// Stationary is a Model that never moves; used for static-topology tests
// and as the degenerate end of mobility sweeps.
type Stationary struct {
	P geom.Point
}

// Pos returns the fixed position.
func (s Stationary) Pos(sim.Time) geom.Point { return s.P }

// Waypoint is the Random Waypoint model: travel in a straight line to a
// uniformly chosen destination at a uniformly chosen speed, pause for a
// uniform time, repeat.
type Waypoint struct {
	arena    geom.Rect
	minSpeed float64 // m/s; > 0 to avoid the classic RWP speed-decay trap
	maxSpeed float64 // m/s
	maxPause sim.Time
	rng      *rand.Rand

	from, to geom.Point
	legStart sim.Time
	legEnd   sim.Time
	moving   bool
}

// NewWaypoint creates a Random Waypoint walker starting (paused) at
// start. Speeds are drawn uniformly from [minSpeed, maxSpeed]; pauses
// uniformly from [0, maxPause]. minSpeed must be positive: allowing
// speeds arbitrarily close to zero makes expected leg durations diverge
// (the well-known RWP harmonic-mean pathology).
func NewWaypoint(arena geom.Rect, start geom.Point, minSpeed, maxSpeed float64, maxPause sim.Time, rng *rand.Rand) *Waypoint {
	switch {
	case minSpeed <= 0:
		panic("mobility: NewWaypoint requires minSpeed > 0")
	case maxSpeed < minSpeed:
		panic("mobility: NewWaypoint requires maxSpeed >= minSpeed")
	case maxPause < 0:
		panic("mobility: NewWaypoint requires maxPause >= 0")
	case !arena.Contains(start):
		panic("mobility: NewWaypoint start outside arena")
	}
	w := &Waypoint{
		arena:    arena,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		maxPause: maxPause,
		rng:      rng,
		from:     start,
		to:       start,
		moving:   true, // so the first nextLeg starts with a pause
	}
	w.nextLeg()
	return w
}

// Pos returns the walker's position at time t >= the previous query time.
func (w *Waypoint) Pos(t sim.Time) geom.Point {
	for t >= w.legEnd {
		w.nextLeg()
	}
	if !w.moving || w.legEnd == w.legStart {
		return w.from
	}
	frac := float64(t-w.legStart) / float64(w.legEnd-w.legStart)
	return w.from.Lerp(w.to, frac)
}

// nextLeg rolls the next pause or travel leg starting where the previous
// one ended.
func (w *Waypoint) nextLeg() {
	w.legStart = w.legEnd
	if w.moving {
		// Just arrived: pause.
		w.from = w.to
		w.moving = false
		w.legEnd = w.legStart + sim.UniformDuration(w.rng, 0, w.maxPause)
		return
	}
	// Pause over: pick a destination and speed.
	w.moving = true
	w.to = w.arena.RandomPoint(w.rng)
	speed := w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
	dist := w.from.Dist(w.to)
	dur := sim.FromSeconds(dist / speed)
	if dur <= 0 {
		dur = sim.Microsecond // zero-length hop; keep time strictly advancing
	}
	w.legEnd = w.legStart + dur
}

// Walk is a random-walk (Brownian-like) model: pick a heading and speed,
// travel for a fixed epoch, reflect off arena walls, repeat. Included for
// the future-work mobility sweeps; not used by the paper's headline runs.
type Walk struct {
	arena    geom.Rect
	minSpeed float64
	maxSpeed float64
	epoch    sim.Time
	rng      *rand.Rand

	at       geom.Point
	vx, vy   float64 // m/s
	legStart sim.Time
	legEnd   sim.Time
}

// NewWalk creates a random walker starting at start that re-rolls heading
// and speed every epoch.
func NewWalk(arena geom.Rect, start geom.Point, minSpeed, maxSpeed float64, epoch sim.Time, rng *rand.Rand) *Walk {
	switch {
	case minSpeed <= 0 || maxSpeed < minSpeed:
		panic("mobility: NewWalk speed range invalid")
	case epoch <= 0:
		panic("mobility: NewWalk requires epoch > 0")
	case !arena.Contains(start):
		panic("mobility: NewWalk start outside arena")
	}
	w := &Walk{arena: arena, minSpeed: minSpeed, maxSpeed: maxSpeed, epoch: epoch, rng: rng, at: start}
	w.roll()
	return w
}

func (w *Walk) roll() {
	speed := w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
	theta := w.rng.Float64() * 2 * math.Pi
	w.vx, w.vy = speed*math.Cos(theta), speed*math.Sin(theta)
	w.legStart = w.legEnd
	w.legEnd = w.legStart + w.epoch
}

// Pos returns the walker's position at time t >= the previous query time.
func (w *Walk) Pos(t sim.Time) geom.Point {
	for t >= w.legEnd {
		w.at = w.reflect(w.at, float64(w.legEnd-w.legStart)/float64(sim.Second))
		w.roll()
	}
	return w.reflect(w.at, float64(t-w.legStart)/float64(sim.Second))
}

// reflect advances from p for dt seconds with the current velocity,
// bouncing off the arena walls.
func (w *Walk) reflect(p geom.Point, dt float64) geom.Point {
	x := p.X + w.vx*dt
	y := p.Y + w.vy*dt
	x, flipX := bounce(x, w.arena.W)
	y, flipY := bounce(y, w.arena.H)
	// Persist velocity flips only when committing a whole leg; for
	// mid-leg queries the flip is recomputed each time, which is
	// equivalent because reflection is deterministic in (p, v, dt).
	if dt == float64(w.legEnd-w.legStart)/float64(sim.Second) {
		if flipX {
			w.vx = -w.vx
		}
		if flipY {
			w.vy = -w.vy
		}
	}
	return geom.Point{X: x, Y: y}
}

// bounce folds coordinate v into [0, limit] by mirror reflection and
// reports whether an odd number of reflections occurred.
func bounce(v, limit float64) (float64, bool) {
	if limit <= 0 {
		return 0, false
	}
	period := 2 * limit
	v = math.Mod(v, period)
	if v < 0 {
		v += period
	}
	if v > limit {
		return period - v, true
	}
	return v, false
}
