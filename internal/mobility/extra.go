package mobility

import (
	"math"
	"math/rand"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

// This file adds the two further models from the mobility survey the
// paper cites (Camp/Boleng/Davies 2002): Random Direction and
// Gauss-Markov. They drive the mobility-model sensitivity sweeps; the
// paper's own scenarios use Random Waypoint.

// Direction is the Random Direction model: pick a heading, travel all
// the way to the arena boundary, pause, pick a new heading. Compared to
// Random Waypoint it avoids the density concentration in the arena
// center.
type Direction struct {
	arena    geom.Rect
	minSpeed float64
	maxSpeed float64
	maxPause sim.Time
	rng      *rand.Rand

	from, to geom.Point
	legStart sim.Time
	legEnd   sim.Time
	moving   bool
}

// NewDirection creates a Random Direction walker starting at start.
func NewDirection(arena geom.Rect, start geom.Point, minSpeed, maxSpeed float64, maxPause sim.Time, rng *rand.Rand) *Direction {
	switch {
	case minSpeed <= 0 || maxSpeed < minSpeed:
		panic("mobility: NewDirection speed range invalid")
	case maxPause < 0:
		panic("mobility: NewDirection requires maxPause >= 0")
	case !arena.Contains(start):
		panic("mobility: NewDirection start outside arena")
	}
	d := &Direction{
		arena: arena, minSpeed: minSpeed, maxSpeed: maxSpeed,
		maxPause: maxPause, rng: rng, from: start, to: start, moving: true,
	}
	d.nextLeg()
	return d
}

// Pos returns the walker's position at a nondecreasing time t.
func (d *Direction) Pos(t sim.Time) geom.Point {
	for t >= d.legEnd {
		d.nextLeg()
	}
	if !d.moving || d.legEnd == d.legStart {
		return d.from
	}
	frac := float64(t-d.legStart) / float64(d.legEnd-d.legStart)
	return d.from.Lerp(d.to, frac)
}

func (d *Direction) nextLeg() {
	d.legStart = d.legEnd
	if d.moving {
		d.from = d.to
		d.moving = false
		d.legEnd = d.legStart + sim.UniformDuration(d.rng, 0, d.maxPause)
		return
	}
	d.moving = true
	d.to = d.boundaryTarget()
	speed := d.minSpeed + d.rng.Float64()*(d.maxSpeed-d.minSpeed)
	dur := sim.FromSeconds(d.from.Dist(d.to) / speed)
	if dur <= 0 {
		dur = sim.Microsecond
	}
	d.legEnd = d.legStart + dur
}

// boundaryTarget returns where a ray from the current position with a
// uniform random heading exits the arena.
func (d *Direction) boundaryTarget() geom.Point {
	theta := d.rng.Float64() * 2 * math.Pi
	dx, dy := math.Cos(theta), math.Sin(theta)
	// Distance to each wall along the ray; take the nearest positive.
	best := math.Inf(1)
	if dx > 0 {
		best = math.Min(best, (d.arena.W-d.from.X)/dx)
	} else if dx < 0 {
		best = math.Min(best, -d.from.X/dx)
	}
	if dy > 0 {
		best = math.Min(best, (d.arena.H-d.from.Y)/dy)
	} else if dy < 0 {
		best = math.Min(best, -d.from.Y/dy)
	}
	if math.IsInf(best, 1) || best < 0 {
		return d.from // degenerate heading; stand still this leg
	}
	return d.arena.Clamp(geom.Point{X: d.from.X + dx*best, Y: d.from.Y + dy*best})
}

// GaussMarkov is the Gauss-Markov model: speed and heading evolve as
// first-order autoregressive processes, giving temporally correlated,
// smoothly turning trajectories. Alpha in [0,1] tunes memory: 0 is a
// memoryless random walk, 1 is constant-velocity motion.
type GaussMarkov struct {
	arena     geom.Rect
	meanSpeed float64
	alpha     float64
	sigma     float64 // randomness amplitude
	step      sim.Time
	rng       *rand.Rand

	at       geom.Point
	speed    float64
	heading  float64
	legStart sim.Time
	next     geom.Point
}

// NewGaussMarkov creates a Gauss-Markov walker starting at start with
// the given mean speed and memory parameter alpha, updated every step.
func NewGaussMarkov(arena geom.Rect, start geom.Point, meanSpeed, alpha float64, step sim.Time, rng *rand.Rand) *GaussMarkov {
	switch {
	case meanSpeed <= 0:
		panic("mobility: NewGaussMarkov requires meanSpeed > 0")
	case alpha < 0 || alpha > 1:
		panic("mobility: NewGaussMarkov alpha outside [0,1]")
	case step <= 0:
		panic("mobility: NewGaussMarkov requires step > 0")
	case !arena.Contains(start):
		panic("mobility: NewGaussMarkov start outside arena")
	}
	g := &GaussMarkov{
		arena: arena, meanSpeed: meanSpeed, alpha: alpha,
		sigma: meanSpeed / 2, step: step, rng: rng,
		at: start, speed: meanSpeed, heading: rng.Float64() * 2 * math.Pi,
	}
	g.next = g.advance()
	return g
}

// Pos returns the walker's position at a nondecreasing time t.
func (g *GaussMarkov) Pos(t sim.Time) geom.Point {
	for t >= g.legStart+g.step {
		g.at = g.next
		g.legStart += g.step
		g.next = g.advance()
	}
	frac := float64(t-g.legStart) / float64(g.step)
	return g.at.Lerp(g.next, frac)
}

// advance rolls the AR(1) speed/heading update and returns the position
// one step ahead, reflecting at walls.
func (g *GaussMarkov) advance() geom.Point {
	a := g.alpha
	g.speed = a*g.speed + (1-a)*g.meanSpeed + math.Sqrt(1-a*a)*g.sigma*g.rng.NormFloat64()
	if g.speed < 0 {
		g.speed = 0
	}
	meanHeading := g.heading
	// Steer away from walls so trajectories do not pile up at edges
	// (the standard Gauss-Markov boundary treatment).
	const margin = 5.0
	switch {
	case g.at.X < margin:
		meanHeading = 0
	case g.at.X > g.arena.W-margin:
		meanHeading = math.Pi
	case g.at.Y < margin:
		meanHeading = math.Pi / 2
	case g.at.Y > g.arena.H-margin:
		meanHeading = 3 * math.Pi / 2
	}
	g.heading = a*g.heading + (1-a)*meanHeading + math.Sqrt(1-a*a)*0.5*g.rng.NormFloat64()
	dt := g.step.Seconds()
	p := geom.Point{
		X: g.at.X + g.speed*math.Cos(g.heading)*dt,
		Y: g.at.Y + g.speed*math.Sin(g.heading)*dt,
	}
	return g.arena.Clamp(p)
}
