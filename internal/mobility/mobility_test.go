package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

var arena = geom.Rect{W: 100, H: 100}

func TestStationaryNeverMoves(t *testing.T) {
	m := Stationary{P: geom.Point{X: 3, Y: 4}}
	for _, tt := range []sim.Time{0, sim.Second, sim.Hour} {
		if got := m.Pos(tt); got != m.P {
			t.Errorf("Pos(%v) = %v, want %v", tt, got, m.P)
		}
	}
}

func TestWaypointStartsAtStart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	start := geom.Point{X: 50, Y: 50}
	w := NewWaypoint(arena, start, 0.1, 1.0, 100*sim.Second, rng)
	if got := w.Pos(0); got != start {
		t.Errorf("Pos(0) = %v, want %v", got, start)
	}
}

func TestWaypointStaysInArena(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWaypoint(arena, arena.RandomPoint(rng), 0.1, 1.0, 100*sim.Second, rng)
	for ts := sim.Time(0); ts < sim.Hour; ts += 500 * sim.Millisecond {
		p := w.Pos(ts)
		if !arena.Contains(p) {
			t.Fatalf("position %v outside arena at %v", p, ts)
		}
	}
}

func TestWaypointSpeedBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWaypoint(arena, arena.RandomPoint(rng), 0.1, 1.0, 10*sim.Second, rng)
	const dt = 100 * sim.Millisecond
	prev := w.Pos(0)
	for ts := dt; ts < 20*sim.Minute; ts += dt {
		p := w.Pos(ts)
		speed := p.Dist(prev) / dt.Seconds()
		if speed > 1.0+1e-6 {
			t.Fatalf("instantaneous speed %.3f m/s exceeds max 1.0 at %v", speed, ts)
		}
		prev = p
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	start := geom.Point{X: 50, Y: 50}
	w := NewWaypoint(arena, start, 0.5, 1.0, sim.Second, rng)
	moved := false
	for ts := sim.Time(0); ts < 10*sim.Minute; ts += sim.Second {
		if w.Pos(ts).Dist(start) > 5 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("waypoint walker never strayed from start")
	}
}

func TestWaypointPausesObserved(t *testing.T) {
	// With a long max pause relative to arena crossing time, there must be
	// intervals where consecutive samples coincide (the node is paused).
	rng := rand.New(rand.NewSource(5))
	w := NewWaypoint(arena, arena.RandomPoint(rng), 0.9, 1.0, 100*sim.Second, rng)
	pausedSamples := 0
	prev := w.Pos(0)
	for ts := sim.Second; ts < 30*sim.Minute; ts += sim.Second {
		p := w.Pos(ts)
		if p == prev {
			pausedSamples++
		}
		prev = p
	}
	if pausedSamples < 10 {
		t.Errorf("only %d paused samples in 30 min; pauses not happening", pausedSamples)
	}
}

func TestWaypointDeterministicPerSeed(t *testing.T) {
	sample := func(seed int64) []geom.Point {
		rng := rand.New(rand.NewSource(seed))
		w := NewWaypoint(arena, geom.Point{X: 10, Y: 10}, 0.1, 1.0, 10*sim.Second, rng)
		var out []geom.Point
		for ts := sim.Time(0); ts < 5*sim.Minute; ts += 7 * sim.Second {
			out = append(out, w.Pos(ts))
		}
		return out
	}
	a, b := sample(9), sample(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWaypointValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inside := geom.Point{X: 1, Y: 1}
	for name, bad := range map[string]func(){
		"zero minSpeed":  func() { NewWaypoint(arena, inside, 0, 1, 0, rng) },
		"max < min":      func() { NewWaypoint(arena, inside, 1, 0.5, 0, rng) },
		"negative pause": func() { NewWaypoint(arena, inside, 0.1, 1, -1, rng) },
		"start outside":  func() { NewWaypoint(arena, geom.Point{X: -1, Y: 0}, 0.1, 1, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			bad()
		}()
	}
}

func TestWalkStaysInArenaAndMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	start := geom.Point{X: 5, Y: 95} // near a corner to exercise reflection
	w := NewWalk(arena, start, 0.5, 1.0, 20*sim.Second, rng)
	moved := false
	for ts := sim.Time(0); ts < sim.Hour; ts += 250 * sim.Millisecond {
		p := w.Pos(ts)
		if !arena.Contains(p) {
			t.Fatalf("walk position %v outside arena at %v", p, ts)
		}
		if p.Dist(start) > 10 {
			moved = true
		}
	}
	if !moved {
		t.Error("random walker never moved far from start")
	}
}

func TestWalkSpeedBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWalk(arena, geom.Point{X: 50, Y: 50}, 0.5, 2.0, 10*sim.Second, rng)
	const dt = 100 * sim.Millisecond
	prev := w.Pos(0)
	for ts := dt; ts < 10*sim.Minute; ts += dt {
		p := w.Pos(ts)
		if speed := p.Dist(prev) / dt.Seconds(); speed > 2.0+1e-6 {
			t.Fatalf("walk speed %.3f m/s exceeds max 2.0", speed)
		}
		prev = p
	}
}

func TestBounceFolding(t *testing.T) {
	cases := []struct {
		v, limit float64
		want     float64
		flip     bool
	}{
		{5, 10, 5, false},
		{12, 10, 8, true},
		{-3, 10, 3, false}, // -3 mod 20 = 17 -> 20-17=3, flipped? 17>10 so flip
		{20, 10, 0, false},
		{0, 10, 0, false},
		{10, 10, 10, false},
	}
	for _, c := range cases {
		got, _ := bounce(c.v, c.limit)
		if got != c.want {
			t.Errorf("bounce(%v,%v) = %v, want %v", c.v, c.limit, got, c.want)
		}
	}
}

// Property: bounce always lands in [0, limit].
func TestQuickBounceInRange(t *testing.T) {
	f := func(v float64) bool {
		if v != v { // NaN
			return true
		}
		got, _ := bounce(v, 100)
		return got >= 0 && got <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: for any seed, a waypoint walker sampled at random increasing
// times never leaves the arena.
func TestQuickWaypointInArena(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWaypoint(arena, arena.RandomPoint(rng), 0.1, 1.5, 50*sim.Second, rng)
		ts := sim.Time(0)
		for i := 0; i < 200; i++ {
			ts += sim.UniformDuration(rng, 0, 30*sim.Second)
			if !arena.Contains(w.Pos(ts)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
