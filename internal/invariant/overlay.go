package invariant

import (
	"manetp2p/internal/p2p"
)

// This file holds the p2p-layer rules. Node-local structural rules
// (caps, flag legality, timer liveness) hold between any two events and
// report immediately. Cross-node rules (symmetry, hybrid role
// consistency) are legitimately false while a close or handshake is in
// flight — the keepalive design lets one side of a silently-closed
// connection linger up to the responder deadline window — so those go
// through observePair and only report once they persist past the grace
// window.

// checkOverlay snapshots every servent and validates the protocol
// invariants of the configured algorithm.
func (c *Checker) checkOverlay() {
	for i, sv := range c.t.Servents {
		if sv == nil {
			continue
		}
		sv.Inspect(&c.views[i])
	}
	for i, sv := range c.t.Servents {
		if sv == nil {
			continue
		}
		c.checkNode(i, &c.views[i])
	}
	if c.t.Algorithm != p2p.Basic {
		// Basic references are asymmetric by design (§6.1.1): the replier
		// holds no state, so no pairwise rule applies.
		for i, sv := range c.t.Servents {
			if sv == nil {
				continue
			}
			c.checkPairs(i, &c.views[i])
		}
	}
}

// checkNode runs the node-local rules for servent i.
func (c *Checker) checkNode(i int, v *p2p.View) {
	if !v.Joined {
		// Leave tears everything down in the same event; any residue is a
		// leak, not a transition window.
		if len(v.Conns) > 0 || len(v.Pending) > 0 {
			c.report("p2p", "left-state", i, -1,
				"left the overlay but retains %d conns and %d pending handshakes",
				len(v.Conns), len(v.Pending))
		}
		if v.State != p2p.StateInitial {
			c.report("p2p", "left-state", i, -1,
				"left the overlay in state %v", v.State)
		}
		return
	}

	regular, random, slaves, mesh, toMaster := 0, 0, 0, 0, 0
	for k := range v.Conns {
		cv := &v.Conns[k]
		switch {
		case cv.Random:
			random++
		case cv.ToSlave:
			slaves++
		case cv.Master:
			mesh++
		case cv.ToMaster:
			toMaster++
		default:
			regular++
		}
		if cv.Peer == i {
			c.report("p2p", "conn-target", i, cv.Peer, "connected to itself")
			continue
		}
		if cv.Peer < 0 || cv.Peer >= len(c.t.Servents) || c.t.Servents[cv.Peer] == nil {
			c.report("p2p", "conn-target", i, cv.Peer, "peer is not a servent")
			continue
		}
		c.checkConnFlags(i, cv)
		// Exactly one keepalive guards each live connection: the
		// initiator's ping loop or the responder's ping deadline. Both
		// dark means peer loss can never be detected — the link leaks.
		if cv.Initiator && !cv.PingArmed {
			c.report("p2p", "keepalive-dead", i, cv.Peer, "initiator with no ping timer armed")
		}
		if !cv.Initiator && !cv.DeadlineArmed {
			c.report("p2p", "keepalive-dead", i, cv.Peer, "responder with no ping deadline armed")
		}
	}

	c.checkCaps(i, v, regular, random, slaves, mesh, toMaster)
	c.checkHybridState(i, v, slaves, mesh, toMaster)

	for k := range v.Pending {
		pv := &v.Pending[k]
		if !pv.TimeoutArmed {
			// A reservation without an expiry holds its connection slot
			// forever once the handshake stalls.
			c.report("p2p", "pending-leak", i, pv.Peer, "in-flight handshake with no timeout armed")
		}
		if findConn(v, pv.Peer) != nil {
			c.observePair("pending-overlap", i, pv.Peer,
				"peer is simultaneously a live connection and a pending handshake")
		}
	}

	if pc := c.t.Params.PeerCache.WithDefaults(); pc.Enabled && v.CacheLen > pc.Size {
		c.report("p2p", "cache-cap", i, -1, "peer cache holds %d entries > cap %d", v.CacheLen, pc.Size)
	}
}

// checkConnFlags validates that a connection's role flags are legal for
// the configured algorithm.
func (c *Checker) checkConnFlags(i int, cv *p2p.ConnView) {
	if cv.Random && c.t.Algorithm != p2p.Random {
		c.report("p2p", "conn-flags", i, cv.Peer, "random link under algorithm %v", c.t.Algorithm)
	}
	hybridFlags := 0
	for _, f := range [...]bool{cv.ToMaster, cv.ToSlave, cv.Master} {
		if f {
			hybridFlags++
		}
	}
	switch {
	case c.t.Algorithm != p2p.Hybrid && hybridFlags > 0:
		c.report("p2p", "conn-flags", i, cv.Peer,
			"hybrid role flags (toMaster=%v toSlave=%v master=%v) under algorithm %v",
			cv.ToMaster, cv.ToSlave, cv.Master, c.t.Algorithm)
	case c.t.Algorithm == p2p.Hybrid && hybridFlags != 1:
		c.report("p2p", "conn-flags", i, cv.Peer,
			"hybrid connection must carry exactly one role flag, has toMaster=%v toSlave=%v master=%v",
			cv.ToMaster, cv.ToSlave, cv.Master)
	}
}

// checkCaps enforces the per-algorithm connection capacities (§6).
func (c *Checker) checkCaps(i int, v *p2p.View, regular, random, slaves, mesh, toMaster int) {
	par := c.t.Params
	switch c.t.Algorithm {
	case p2p.Basic, p2p.Regular:
		if len(v.Conns) > par.MaxNConn {
			c.report("p2p", "conn-cap", i, -1, "%d conns > MAXNCONN %d", len(v.Conns), par.MaxNConn)
		}
	case p2p.Random:
		// One slot is held back for the long-range link (§6.1.4).
		if regular > par.MaxNConn-1 {
			c.report("p2p", "conn-cap", i, -1, "%d regular conns > MAXNCONN-1 %d", regular, par.MaxNConn-1)
		}
		if random > 1 {
			c.report("p2p", "random-cap", i, -1, "%d random links > 1", random)
		}
	case p2p.Hybrid:
		if slaves > par.MaxNSlaves {
			c.report("p2p", "slave-cap", i, -1, "%d slaves > MAXNSLAVES %d", slaves, par.MaxNSlaves)
		}
		if mesh > par.MaxNConn {
			c.report("p2p", "conn-cap", i, -1, "%d master-mesh links > MAXNCONN %d", mesh, par.MaxNConn)
		}
		if toMaster > 1 {
			c.report("p2p", "role-flags", i, -1, "%d master links; a slave obeys exactly one master", toMaster)
		}
	}
}

// checkHybridState validates that a hybrid servent's connections agree
// with its role, and that the transitional reserved state cannot leak.
func (c *Checker) checkHybridState(i int, v *p2p.View, slaves, mesh, toMaster int) {
	if c.t.Algorithm != p2p.Hybrid {
		if v.State != p2p.StateInitial {
			c.report("p2p", "role-flags", i, -1, "state %v under algorithm %v", v.State, c.t.Algorithm)
		}
		return
	}
	switch v.State {
	case p2p.StateMaster:
		if toMaster > 0 {
			c.report("p2p", "role-flags", i, -1, "master holds %d links to a master of its own", toMaster)
		}
	case p2p.StateSlave:
		if slaves > 0 || mesh > 0 {
			c.report("p2p", "role-flags", i, -1,
				"slave holds %d slave links and %d mesh links", slaves, mesh)
		}
		if toMaster == 0 {
			// The enslavement installs the master link in the same event
			// that enters StateSlave, so a masterless slave is a leak.
			c.report("p2p", "role-flags", i, -1, "slave with no master link")
		}
	case p2p.StateInitial, p2p.StateReserved:
		if len(v.Conns) > 0 {
			c.report("p2p", "role-flags", i, -1,
				"state %v with %d conns; only masters and slaves hold connections", v.State, len(v.Conns))
		}
	}
	if v.State == p2p.StateReserved && !v.ReservedArmed {
		c.report("p2p", "reserved-leak", i, v.ReservedWith,
			"reserved state with no expiry armed can never resolve")
	}
}

// checkPairs runs the graced cross-node rules for servent i's
// connections.
func (c *Checker) checkPairs(i int, v *p2p.View) {
	for k := range v.Conns {
		cv := &v.Conns[k]
		b := cv.Peer
		if b == i || b < 0 || b >= len(c.t.Servents) || c.t.Servents[b] == nil {
			continue // already reported by checkNode
		}
		pv := &c.views[b]
		if !pv.Joined {
			c.observePair("dangling-conn", i, b, "peer left the overlay but the link was never torn down")
			continue
		}
		rc := findConn(pv, i)
		if rc == nil {
			c.observePair("symmetry", i, b, "connection has no counterpart on the peer")
			continue
		}
		if cv.Initiator == rc.Initiator {
			c.observePair("initiator-asym", i, b,
				"both-or-neither endpoint initiates the keepalive (initiator=%v)", cv.Initiator)
		}
		if cv.Random != rc.Random {
			c.observePair("random-asym", i, b,
				"random flag disagrees (here %v, peer %v)", cv.Random, rc.Random)
		}
		if c.t.Algorithm == p2p.Hybrid {
			if cv.ToSlave != rc.ToMaster || cv.ToMaster != rc.ToSlave || cv.Master != rc.Master {
				c.observePair("role-asym", i, b,
					"role flags disagree: here toMaster=%v toSlave=%v master=%v, peer toMaster=%v toSlave=%v master=%v",
					cv.ToMaster, cv.ToSlave, cv.Master, rc.ToMaster, rc.ToSlave, rc.Master)
			}
			if cv.ToMaster && pv.State != p2p.StateMaster {
				c.observePair("slave-master", i, b, "our master is in state %v, not a live master", pv.State)
			}
			if cv.ToSlave && pv.State != p2p.StateSlave {
				c.observePair("master-slave", i, b, "our slave is in state %v", pv.State)
			}
			if cv.Master && pv.State != p2p.StateMaster {
				c.observePair("mesh-master", i, b, "mesh peer is in state %v, not a master", pv.State)
			}
		}
	}
}

// findConn returns the peer's connection view toward node id, or nil.
// Conns is sorted by peer id (Inspect guarantees it), so binary search.
func findConn(v *p2p.View, id int) *p2p.ConnView {
	lo, hi := 0, len(v.Conns)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Conns[mid].Peer < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.Conns) && v.Conns[lo].Peer == id {
		return &v.Conns[lo]
	}
	return nil
}
