// External test package: the checker is validated against full manet
// networks, and manet itself imports invariant.
package invariant_test

import (
	"strings"
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/graphs"
	"manetp2p/internal/invariant"
	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/workload"
)

// testConfig builds a dense-enough network that overlay links actually
// form, with the checker enabled.
func testConfig(seed int64, alg p2p.Algorithm) manet.Config {
	cfg := manet.DefaultConfig(25, alg)
	cfg.Seed = seed
	cfg.Arena = geom.Rect{W: 60, H: 60}
	cfg.NoQueries = true
	cfg.Invariants = invariant.Config{Enabled: true}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  invariant.Config
		ok   bool
	}{
		{"zero", invariant.Config{}, true},
		{"enabled defaults", invariant.Config{Enabled: true}, true},
		{"explicit", invariant.Config{Enabled: true, Every: 10 * sim.Second, Grace: sim.Second, MaxViolations: 5}, true},
		{"negative every", invariant.Config{Every: -1}, false},
		{"negative grace", invariant.Config{Grace: -1}, false},
		{"negative cap", invariant.Config{MaxViolations: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestCleanNetworksPassAllAlgorithms(t *testing.T) {
	for _, alg := range p2p.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			net, err := manet.Build(testConfig(7, alg))
			if err != nil {
				t.Fatal(err)
			}
			net.Run(600 * sim.Second)
			net.Checker.Finalize()
			if !net.Checker.OK() {
				for _, v := range net.Checker.Violations() {
					t.Errorf("violation: %s", v.String())
				}
				t.Fatalf("clean %v run: %d violations", alg, net.Checker.Total())
			}
		})
	}
}

// TestDetectsSuppressedClose seeds the canonical protocol mutation —
// one servent never executes its side of closeConn toward a chosen peer
// — and requires the checker to flag the resulting one-sided link with
// the right node ids and a sim time after the mutation.
func TestDetectsSuppressedClose(t *testing.T) {
	net, err := manet.Build(testConfig(3, p2p.Regular))
	if err != nil {
		t.Fatal(err)
	}
	net.Run(300 * sim.Second)

	// Find a live overlay link (i, j).
	var view p2p.View
	i, j := -1, -1
	for idx, sv := range net.Servents {
		if sv == nil || !sv.Joined() {
			continue
		}
		sv.Inspect(&view)
		if len(view.Conns) > 0 {
			i, j = idx, view.Conns[0].Peer
			break
		}
	}
	if i < 0 {
		t.Fatal("no overlay link formed in 300 s; scenario too sparse for the test")
	}

	mutatedAt := net.Sim.Now()
	net.Servents[i].SkipCloseForTest(j)
	net.ForceDown(j) // j leaves; i can never tear down its side
	net.Run(400 * sim.Second)
	net.Checker.Finalize()

	if net.Checker.OK() {
		t.Fatalf("mutation not detected: closeConn(%d->%d) suppressed, no violations", i, j)
	}
	found := false
	for _, v := range net.Checker.Violations() {
		if v.Node == i && v.Peer == j && v.At > mutatedAt {
			found = true
			if v.String() == "" || !strings.Contains(v.String(), "node=") {
				t.Errorf("violation renders without node id: %q", v.String())
			}
		}
	}
	if !found {
		for _, v := range net.Checker.Violations() {
			t.Logf("violation: %s", v.String())
		}
		t.Fatalf("no violation names the mutated pair node=%d peer=%d after t=%v", i, j, mutatedAt)
	}
}

// TestWorkloadLedgerDrift seeds the canonical workload-accounting
// mutation — an in-flight count bumped with no matching query — and
// requires the checker's conservation rules to flag it. A clean
// workload-driven run of the same scenario must stay green, so the
// rules themselves are also exercised against honest ledgers.
func TestWorkloadLedgerDrift(t *testing.T) {
	build := func() *manet.Network {
		cfg := testConfig(5, p2p.Regular)
		cfg.NoQueries = false
		cfg.Workload = &workload.Plan{
			Arrival:  workload.Arrival{Process: workload.Poisson, Rate: 0.1},
			Sessions: workload.DefaultSessions(),
		}
		net, err := manet.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	clean := build()
	clean.Run(600 * sim.Second)
	clean.Checker.Finalize()
	if !clean.Checker.OK() {
		for _, v := range clean.Checker.Violations() {
			t.Errorf("violation: %s", v.String())
		}
		t.Fatal("clean workload-driven run reported violations")
	}

	drifted := build()
	drifted.Run(300 * sim.Second)
	drifted.Demand.DriftForTest()
	drifted.Run(600 * sim.Second)
	drifted.Checker.Finalize()
	if drifted.Checker.OK() {
		t.Fatal("in-flight drift injected but no workload violation reported")
	}
	found := false
	for _, v := range drifted.Checker.Violations() {
		if strings.Contains(v.String(), "workload") {
			found = true
		}
	}
	if !found {
		for _, v := range drifted.Checker.Violations() {
			t.Logf("violation: %s", v.String())
		}
		t.Fatal("no violation names the workload layer")
	}
}

// TestCheckerDrawsNoRandomness: enabling the checker must not perturb
// the simulation it observes — the overlay it leaves behind is
// identical to an unchecked run with the same seed.
func TestCheckerDrawsNoRandomness(t *testing.T) {
	run := func(check bool) []string {
		cfg := testConfig(11, p2p.Hybrid)
		cfg.Invariants.Enabled = check
		net, err := manet.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.Run(600 * sim.Second)
		var v p2p.View
		out := make([]string, 0, len(net.Servents))
		for _, sv := range net.Servents {
			if sv == nil {
				continue
			}
			sv.Inspect(&v)
			line := sv.Joined()
			s := make([]byte, 0, 64)
			if line {
				s = append(s, 'J')
			}
			for _, c := range v.Conns {
				s = append(s, byte('0'+c.Peer/10), byte('0'+c.Peer%10), ',')
			}
			out = append(out, string(s))
		}
		return out
	}
	with, without := run(true), run(false)
	if len(with) != len(without) {
		t.Fatalf("servent count differs: %d vs %d", len(with), len(without))
	}
	for k := range with {
		if with[k] != without[k] {
			t.Fatalf("overlay state diverges at servent %d: checked=%q unchecked=%q", k, with[k], without[k])
		}
	}
}

// TestDetectsCorruptAdjacency seeds the canonical connectivity
// mutation: an Adjacency feed that reports a ring over every node,
// joined or not. The overlay rules must flag it — ghost degrees on
// non-joined nodes, degrees past the inspected connection counts, and
// (for symmetric algorithms) broken edge conservation. A clean feed on
// the same network must stay green, which
// TestCleanNetworksPassAllAlgorithms already covers via the wired-in
// checker.
func TestDetectsCorruptAdjacency(t *testing.T) {
	cfg := testConfig(5, p2p.Regular)
	cfg.Invariants.Enabled = false // standalone checker below
	net, err := manet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(300 * sim.Second)

	chk := invariant.New(invariant.Config{Enabled: true}, invariant.Target{
		Sim:       net.Sim,
		Medium:    net.Medium,
		Collector: net.Collector,
		Servents:  net.Servents,
		Algorithm: cfg.Algorithm,
		Params:    cfg.Params,
		Adjacency: func(sc *graphs.Scratch) {
			n := len(net.Servents)
			sc.Reset(n)
			for i := 0; i < n; i++ {
				sc.AppendNeighbor((i + 1) % n)
				sc.EndRow()
			}
		},
	})
	chk.Check()

	if chk.OK() {
		t.Fatal("corrupt adjacency feed not detected")
	}
	rules := map[string]bool{}
	for _, v := range chk.Violations() {
		if v.Layer == "overlay" {
			rules[v.Rule] = true
		}
	}
	if len(rules) == 0 {
		for _, v := range chk.Violations() {
			t.Logf("violation: %s", v.String())
		}
		t.Fatal("no violation on the overlay layer")
	}
	if !rules["adjacency-ghost"] {
		t.Errorf("ghost degree on non-joined nodes not flagged; overlay rules hit: %v", rules)
	}
}

// TestDetectsHealthRegression seeds the canonical health-telemetry
// mutation — a sample recorded out of time order whose cumulative
// receive snapshot also rolls backwards — and requires the
// health-monotonic rule to flag both regressions. A run with honestly
// sampled health telemetry must stay green, which the fault-regime
// scenarios exercised by the root package's tests already cover.
func TestDetectsHealthRegression(t *testing.T) {
	cfg := testConfig(9, p2p.Regular)
	cfg.Invariants.Enabled = false // standalone checker below
	net, err := manet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(300 * sim.Second)

	good := telemetry.HealthSample{At: 100 * sim.Second, LargestComp: 1, Links: 4}
	good.Received[telemetry.Connect] = 7
	bad := telemetry.HealthSample{At: 50 * sim.Second, LargestComp: 1, Links: 4}
	bad.Received[telemetry.Connect] = 3
	net.Collector.RecordHealth(good)
	net.Collector.RecordHealth(bad)

	chk := invariant.New(invariant.Config{Enabled: true}, invariant.Target{
		Sim:       net.Sim,
		Medium:    net.Medium,
		Collector: net.Collector,
		Servents:  net.Servents,
		Algorithm: cfg.Algorithm,
		Params:    cfg.Params,
	})
	chk.Check()

	hits := 0
	for _, v := range chk.Violations() {
		if v.Layer == "metrics" && v.Rule == "health-monotonic" {
			hits++
		}
	}
	if hits != 2 {
		for _, v := range chk.Violations() {
			t.Logf("violation: %s", v.String())
		}
		t.Fatalf("health-monotonic violations = %d, want 2 (time order + counter rollback)", hits)
	}

	// Appending a clean successor sample must not re-flag the already
	// reported regression: only new samples are examined per pass.
	next := telemetry.HealthSample{At: 200 * sim.Second, LargestComp: 1, Links: 4}
	next.Received[telemetry.Connect] = 9
	net.Collector.RecordHealth(next)
	before := len(chk.Violations())
	chk.Check()
	for _, v := range chk.Violations()[before:] {
		if v.Rule == "health-monotonic" {
			t.Errorf("clean successor sample flagged: %s", v.String())
		}
	}
}
