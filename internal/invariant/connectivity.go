package invariant

import "manetp2p/internal/p2p"

// This file holds the overlay-graph connectivity rules: structural
// checks on the member-restricted adjacency the analytics pipeline
// consumes (Target.Adjacency, normally Network.AppendOverlayAdjacency).
// They guard the seam between the p2p layer and the graph analytics —
// a ghost row for a departed node, a degree exceeding the servent's
// live connections, or component sizes that fail to partition the
// overlay all mean the snapshot pipeline would publish corrupt
// metrics. The checker keeps its own graphs.Analyzer so a sweep stays
// allocation-free once warm and never touches the simulation's scratch.

// checkConnectivity fills the adjacency through the target hook and
// validates it against the servent views checkOverlay just refreshed —
// it must run after checkOverlay in the same pass.
func (c *Checker) checkConnectivity() {
	if c.t.Adjacency == nil {
		return
	}
	c.t.Adjacency(&c.an.S)
	if c.an.S.NumNodes() != len(c.t.Servents) {
		c.report("overlay", "adjacency-size", -1, -1,
			"adjacency holds %d rows for %d servents", c.an.S.NumNodes(), len(c.t.Servents))
		return
	}
	if c.memberFn == nil {
		c.memberFn = func(i int) bool { return c.t.Servents[i] != nil }
	}

	degSum, present := 0, 0
	for i, sv := range c.t.Servents {
		deg := c.an.S.Degree(i)
		if sv == nil || !c.views[i].Joined {
			if deg > 0 {
				c.report("overlay", "adjacency-ghost", i, -1,
					"node outside the overlay has %d adjacency entries", deg)
			}
			if sv != nil {
				present++
			}
			continue
		}
		present++
		if deg > len(c.views[i].Conns) {
			c.report("overlay", "degree-bound", i, -1,
				"adjacency degree %d exceeds %d live connections", deg, len(c.views[i].Conns))
		}
		degSum += deg
	}

	m := c.an.Analyze(c.memberFn)
	if m.Largest < 0 || m.Largest > 1 {
		c.report("overlay", "component-fraction", -1, -1,
			"largest-component fraction %v outside [0,1]", m.Largest)
	}
	if c.t.Algorithm != p2p.Basic {
		// Mutual filtering makes the adjacency symmetric, so the degree
		// sum is exactly twice the edge count and the components
		// partition the non-nil servents (each as at least a singleton).
		// Basic references are one-directional, so neither law applies.
		if degSum != 2*m.Edges {
			c.report("overlay", "edge-conservation", -1, -1,
				"degree sum %d != 2 x %d edges; adjacency is not symmetric", degSum, m.Edges)
		}
		sum := 0
		for _, s := range c.an.ComponentSizes() {
			sum += s
		}
		if sum != present {
			c.report("overlay", "component-partition", -1, -1,
				"component sizes sum to %d, overlay holds %d servents", sum, present)
		}
	}
}
