// Package invariant implements the opt-in runtime invariant checker: a
// structural validator that sweeps a live replication at configurable
// simulated-time intervals and at teardown, checking cross-layer
// invariants the paper's metrics silently depend on — sim-kernel
// integrity (event-time monotonicity, pooled-slot hygiene, an empty
// queue at the horizon), radio/metrics conservation (every queued
// delivery is received, lost to a down receiver, or still in flight),
// routing-layer counter conservation (frame reactions bounded by frames
// on the air, failure counters bounded by their attempt counters), and
// the per-algorithm protocol invariants of §6 (connection symmetry,
// MAXNCONN/MAXNSLAVES caps, hybrid role consistency, handshake-state
// legality).
//
// The checker is zero-cost when off: nothing in this package is touched
// by the simulation hot path, and a disabled Config wires no events and
// allocates nothing. When on, it observes through read-only snapshots
// (p2p.Servent.Inspect, radio.Medium.InFlightTo, sim.Sim.Audit) and
// draws no random numbers, so an instrumented run produces the same
// Result as an uninstrumented one.
package invariant

import (
	"fmt"

	"manetp2p/internal/graphs"
	"manetp2p/internal/netif"
	"manetp2p/internal/p2p"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/workload"
)

// Config enables and tunes the checker. The zero value is "off".
type Config struct {
	Enabled bool
	// Every is the sampling period; 0 defaults to 30 s. Teardown checks
	// run regardless via Finalize.
	Every sim.Time
	// Grace is how long a cross-node inconsistency (an asymmetric link,
	// a slave pointing at a demoted master) may persist before it is a
	// violation rather than an in-flight close or handshake. 0 derives
	// the bound from the protocol parameters: the responder keepalive
	// window — the longest a correct implementation can take to notice a
	// silent unilateral close — plus one sampling period of slack.
	Grace sim.Time
	// MaxViolations caps recorded violations per replication (the total
	// count keeps climbing past it); 0 defaults to 64.
	MaxViolations int
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	switch {
	case c.Every < 0:
		return fmt.Errorf("invariant: Every %v negative", c.Every)
	case c.Grace < 0:
		return fmt.Errorf("invariant: Grace %v negative", c.Grace)
	case c.MaxViolations < 0:
		return fmt.Errorf("invariant: MaxViolations %d negative", c.MaxViolations)
	}
	return nil
}

// Violation is one detected invariant breach, stamped with the simulated
// time and the node(s) involved so a report pinpoints the corruption.
type Violation struct {
	At     sim.Time
	Layer  string // "sim", "radio", "metrics", "route", "p2p", "overlay" or "workload"
	Rule   string
	Node   int // -1 when not node-specific
	Peer   int // -1 when not pairwise
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	who := ""
	switch {
	case v.Node >= 0 && v.Peer >= 0:
		who = fmt.Sprintf(" node=%d peer=%d", v.Node, v.Peer)
	case v.Node >= 0:
		who = fmt.Sprintf(" node=%d", v.Node)
	}
	return fmt.Sprintf("t=%v %s/%s%s: %s", v.At, v.Layer, v.Rule, who, v.Detail)
}

// Target is the replication under validation: the assembled layers the
// checker observes. Servents may hold nils for nodes outside the overlay.
type Target struct {
	Sim       *sim.Sim
	Medium    *radio.Medium
	Collector *telemetry.Collector
	Servents  []*p2p.Servent
	Algorithm p2p.Algorithm
	Params    p2p.Params
	// RoutingStats returns node i's routing-effort counters
	// (netif.Stats); nil disarms the route-layer rules.
	RoutingStats func(i int) netif.Stats
	// Demand is the scripted workload engine; nil disarms the
	// demand-conservation rules.
	Demand *workload.Engine
	// Adjacency fills the member-restricted overlay adjacency into the
	// scratch (manet.Network.AppendOverlayAdjacency); nil disarms the
	// overlay connectivity rules (connectivity.go).
	Adjacency func(*graphs.Scratch)
}

// pairKey identifies one tracked cross-node observation.
type pairKey struct {
	rule string
	a, b int
}

// pairState tracks when a cross-node inconsistency was first seen and
// whether it has already been reported (each offence reports once).
type pairState struct {
	first    sim.Time
	reported bool
	seenPass uint64
}

// Checker validates one replication. Not safe for concurrent use: one
// Checker per Sim, like every other component.
type Checker struct {
	cfg Config
	t   Target

	ticker     *sim.Ticker
	lastNow    sim.Time
	passes     uint64
	views      []p2p.View // one reusable snapshot per node
	an         graphs.Analyzer
	memberFn   func(int) bool
	inflight   []uint64
	lastRecv   [telemetry.NumClasses]uint64
	lastHealth int
	lastFrames uint64
	lastBounds uint64
	pairs      map[pairKey]*pairState

	violations []Violation
	total      int
}

// New builds a checker for the target. Call Attach to arm the periodic
// sweep, or Check/Finalize directly.
func New(cfg Config, t Target) *Checker {
	if cfg.Every <= 0 {
		cfg.Every = 30 * sim.Second
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	if cfg.Grace <= 0 {
		// The responder-side keepalive window is the longest a correct
		// node may hold its half of a silently-closed connection.
		cfg.Grace = 2*(t.Params.PingInterval+t.Params.PongTimeout) + cfg.Every
	}
	return &Checker{
		cfg:      cfg,
		t:        t,
		views:    make([]p2p.View, len(t.Servents)),
		inflight: make([]uint64, t.Medium.NumNodes()),
		pairs:    make(map[pairKey]*pairState),
	}
}

// Attach arms the periodic sweep on the target's simulator.
func (c *Checker) Attach() {
	if c.ticker != nil {
		return
	}
	c.ticker = sim.NewTicker(c.t.Sim, c.cfg.Every, c.runPass)
}

func (c *Checker) runPass() { c.Check() }

// Violations returns the recorded violations in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// Total reports how many violations were detected, including any past
// the recording cap.
func (c *Checker) Total() int { return c.total }

// OK reports whether no invariant has been violated so far.
func (c *Checker) OK() bool { return c.total == 0 }

// report records one violation, honoring the cap.
func (c *Checker) report(layer, rule string, node, peer int, format string, args ...any) {
	c.total++
	if len(c.violations) >= c.cfg.MaxViolations {
		return
	}
	c.violations = append(c.violations, Violation{
		At:     c.t.Sim.Now(),
		Layer:  layer,
		Rule:   rule,
		Node:   node,
		Peer:   peer,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Check runs one full sweep at the current simulated time.
func (c *Checker) Check() {
	now := c.t.Sim.Now()
	if now < c.lastNow {
		c.report("sim", "time-monotonic", -1, -1,
			"clock moved backwards: %v after %v", now, c.lastNow)
	}
	c.lastNow = now
	c.passes++

	c.t.Sim.Audit(func(rule, detail string) {
		c.report("sim", rule, -1, -1, "%s", detail)
	})
	c.checkRadioConservation()
	c.checkMetrics()
	c.checkRouting()
	c.checkOverlay()
	c.checkConnectivity()
	c.checkWorkload()
	c.sweepPairs()
}

// checkWorkload audits the demand engine's conservation ledger: every
// offered demand is resolved, expired, aborted or still pending; every
// issued query is resolved, expired, aborted or still in flight; the
// in-flight count matches the number of servents holding an open query
// window; queries cannot outnumber demand arrivals; and every drawn
// inter-query gap honored its configured process bounds.
func (c *Checker) checkWorkload() {
	if c.t.Demand == nil {
		return
	}
	ct := c.t.Demand.Counters()
	settled := ct.Resolved + ct.Expired + ct.Aborted
	if ct.Offered != settled+ct.Pending {
		c.report("workload", "offered-conservation", -1, -1,
			"offered %d != resolved %d + expired %d + aborted %d + pending %d",
			ct.Offered, ct.Resolved, ct.Expired, ct.Aborted, ct.Pending)
	}
	if ct.Issued != settled+ct.InFlight {
		c.report("workload", "issued-conservation", -1, -1,
			"issued %d != resolved %d + expired %d + aborted %d + in-flight %d",
			ct.Issued, ct.Resolved, ct.Expired, ct.Aborted, ct.InFlight)
	}
	if ct.Issued > ct.Offered+ct.Retries {
		c.report("workload", "issued-bound", -1, -1,
			"issued %d exceeds demand arrivals %d (offered %d + retries %d)",
			ct.Issued, ct.Offered+ct.Retries, ct.Offered, ct.Retries)
	}
	var open uint64
	for _, sv := range c.t.Servents {
		if sv != nil && sv.OpenQuery() {
			open++
		}
	}
	if ct.InFlight != open {
		c.report("workload", "inflight-open-queries", -1, -1,
			"engine in-flight %d != servents with open query windows %d", ct.InFlight, open)
	}
	if b := ct.BoundsViol; b > c.lastBounds {
		c.report("workload", "arrival-bounds", -1, -1,
			"%d gap draws escaped the configured process bounds (%d new)", b, b-c.lastBounds)
		c.lastBounds = b
	}
}

// checkRouting validates the routing layer's netif.Stats counter block:
// per-node sanity bounds plus network-wide control-frame conservation.
// Every duplicate-cache hit, control relay, broadcast relay and data
// forward is triggered by receiving a frame, and any transmitted frame
// is received by at most n-1 nodes — so the reaction counters can never
// exceed (n-1) times the frames put on the air. Frames() may overcount
// transmissions (DataSent includes attempts abandoned before the radio),
// never undercount, keeping the bound sound.
func (c *Checker) checkRouting() {
	if c.t.RoutingStats == nil {
		return
	}
	n := c.t.Medium.NumNodes()
	var total netif.Stats
	for i := 0; i < n; i++ {
		st := c.t.RoutingStats(i)
		if st.SendFailed > st.DataSent {
			c.report("route", "sendfail-bound", i, -1,
				"SendFailed %d exceeds DataSent %d", st.SendFailed, st.DataSent)
		}
		if st.DiscoverFailed > st.Discoveries {
			c.report("route", "discovery-bound", i, -1,
				"DiscoverFailed %d exceeds Discoveries %d", st.DiscoverFailed, st.Discoveries)
		}
		total.Add(st)
	}
	if n > 1 {
		reactions := total.DupHits + total.CtrlRelayed + total.BcastRelayed + total.DataForwarded
		if bound := uint64(n-1) * total.Frames(); reactions > bound {
			c.report("route", "ctrl-conservation", -1, -1,
				"frame reactions %d exceed (n-1)*frames %d (dup %d ctrl-relay %d bcast-relay %d fwd %d, frames %d)",
				reactions, bound, total.DupHits, total.CtrlRelayed,
				total.BcastRelayed, total.DataForwarded, total.Frames())
		}
	}
	if f := total.Frames(); f < c.lastFrames {
		c.report("route", "frames-monotonic", -1, -1,
			"network frame total %d below earlier %d", f, c.lastFrames)
	} else {
		c.lastFrames = f
	}
}

// Finalize runs the teardown checks after the replication's horizon: one
// last full sweep plus the kernel's empty-queue-at-horizon rule — Run
// must have fired every event stamped at or before the clock.
func (c *Checker) Finalize() {
	c.Check()
	if at, seq, ok := c.t.Sim.NextEvent(); ok && at <= c.t.Sim.Now() {
		c.report("sim", "queue-at-horizon", -1, -1,
			"live event (at=%v seq=%d) still queued at horizon %v", at, seq, c.t.Sim.Now())
	}
}

// checkRadioConservation closes the per-node frame conservation law:
// every delivery queued toward a node was received, lost to the node
// being down, or is still in flight.
func (c *Checker) checkRadioConservation() {
	c.inflight = c.t.Medium.InFlightTo(c.inflight)
	for i := 0; i < c.t.Medium.NumNodes(); i++ {
		st := c.t.Medium.Stats(i)
		if st.Queued != st.RxFrames+st.LostDown+c.inflight[i] {
			c.report("radio", "conservation", i, -1,
				"queued %d != received %d + lost-down %d + in-flight %d",
				st.Queued, st.RxFrames, st.LostDown, c.inflight[i])
		}
	}
}

// checkMetrics validates the collector: cumulative per-class receive
// totals never decrease, and when time-bucketed series are on, the
// buckets sum to the cumulative total — no message is counted into a
// bucket without the total seeing it, and vice versa.
func (c *Checker) checkMetrics() {
	for class := 0; class < telemetry.NumClasses; class++ {
		total := c.t.Collector.TotalReceived(telemetry.Class(class))
		if total < c.lastRecv[class] {
			c.report("metrics", "monotonic", -1, -1,
				"class %v total %d below earlier %d", telemetry.Class(class), total, c.lastRecv[class])
		}
		c.lastRecv[class] = total
		if series := c.t.Collector.Series(telemetry.Class(class)); series != nil {
			var sum uint64
			for _, b := range series {
				sum += b
			}
			if sum != total {
				c.report("metrics", "bucket-conservation", -1, -1,
					"class %v buckets sum to %d, cumulative total %d", telemetry.Class(class), sum, total)
			}
		}
	}
	c.checkHealthSamples()
}

// checkHealthSamples validates the health time series the resilience
// section streams: sample times strictly increase, and the cumulative
// per-class receive snapshots embedded in consecutive samples never
// decrease — a health sample is a point-in-time view of monotone
// counters, so any regression means the series was corrupted or
// recorded out of order. Only samples appended since the previous pass
// are examined.
func (c *Checker) checkHealthSamples() {
	health := c.t.Collector.Health()
	start := c.lastHealth
	if start == 0 {
		start = 1 // sample 0 has no predecessor
	}
	for i := start; i < len(health); i++ {
		prev, cur := &health[i-1], &health[i]
		if cur.At <= prev.At {
			c.report("metrics", "health-monotonic", -1, -1,
				"health sample %d at %v not after sample %d at %v", i, cur.At, i-1, prev.At)
		}
		for class := 0; class < telemetry.NumClasses; class++ {
			if cur.Received[class] < prev.Received[class] {
				c.report("metrics", "health-monotonic", -1, -1,
					"health sample %d class %v total %d below sample %d total %d",
					i, telemetry.Class(class), cur.Received[class], i-1, prev.Received[class])
			}
		}
	}
	c.lastHealth = len(health)
}

// observePair notes a cross-node inconsistency that is legal while a
// close or handshake is in flight; it becomes a violation when it
// persists past the grace window.
func (c *Checker) observePair(rule string, a, b int, format string, args ...any) {
	k := pairKey{rule: rule, a: a, b: b}
	st := c.pairs[k]
	if st == nil {
		st = &pairState{first: c.t.Sim.Now()}
		c.pairs[k] = st
	}
	st.seenPass = c.passes
	if !st.reported && c.t.Sim.Now()-st.first >= c.cfg.Grace {
		st.reported = true
		c.report("p2p", rule, a, b, "persisted %v (> grace %v): %s",
			c.t.Sim.Now()-st.first, c.cfg.Grace, fmt.Sprintf(format, args...))
	}
}

// sweepPairs forgets tracked inconsistencies that healed since the last
// pass, so a re-occurrence restarts its grace window.
func (c *Checker) sweepPairs() {
	for k, st := range c.pairs {
		if st.seenPass != c.passes {
			delete(c.pairs, k)
		}
	}
}
