package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
)

func sampleFile() *File {
	return &File{
		Header: json.RawMessage(`{"kind":"test","n":3}`),
		Sections: map[string][]byte{
			"rep/0": []byte("alpha"),
			"rep/1": []byte("beta payload"),
			"empty": nil,
		},
	}
}

func TestContainerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	want := sampleFile()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Header) != string(want.Header) {
		t.Errorf("header = %s, want %s", got.Header, want.Header)
	}
	if len(got.Sections) != len(want.Sections) {
		t.Fatalf("got %d sections, want %d", len(got.Sections), len(want.Sections))
	}
	for name, data := range want.Sections {
		if string(got.Sections[name]) != string(data) {
			t.Errorf("section %q = %q, want %q", name, got.Sections[name], data)
		}
	}
	hdr, err := ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(hdr) != string(want.Header) {
		t.Errorf("ReadHeader = %s, want %s", hdr, want.Header)
	}
}

func TestWriteIsByteStable(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := Write(a, sampleFile()); err != nil {
		t.Fatal(err)
	}
	if err := Write(b, sampleFile()); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if string(ba) != string(bb) {
		t.Error("two writes of the same File differ on disk")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := Write(path, sampleFile()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the "beta payload" section body.
	idx := strings.Index(string(raw), "beta")
	if idx < 0 {
		t.Fatal("payload not found in encoded file")
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"flipped payload byte", func(b []byte) []byte { b[idx] ^= 0xff; return b }, "CRC"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "not a checkpoint"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }, "truncated"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }, "trailing"},
		{"future version", func(b []byte) []byte { b[len(Magic)] = 99; return b }, "version"},
	} {
		mut := tc.mutate(append([]byte(nil), raw...))
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rerr := Read(path)
		if rerr == nil || !strings.Contains(rerr.Error(), tc.want) {
			t.Errorf("%s: Read err = %v, want mention of %q", tc.name, rerr, tc.want)
		}
	}
}

func TestWriteRejectsInvalidHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	err := Write(path, &File{Header: json.RawMessage(`{broken`)})
	if err == nil || !strings.Contains(err.Error(), "JSON") {
		t.Errorf("Write err = %v, want invalid-JSON error", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Error("failed Write left a file behind")
	}
}

func buildNet(t *testing.T, seed int64) *manet.Network {
	t.Helper()
	cfg := manet.DefaultConfig(16, p2p.Regular)
	cfg.Seed = seed
	cfg.HealthEvery = 30 * sim.Second
	n, err := manet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Two identically seeded replications must agree on the digest at every
// probe point, and probing must not perturb the run (Fingerprint is
// read-only): a third run probed at different times must still agree at
// the shared horizon.
func TestFingerprintDeterministicAndReadOnly(t *testing.T) {
	a, b, c := buildNet(t, 3), buildNet(t, 3), buildNet(t, 3)
	for _, horizon := range []sim.Time{0, 40 * sim.Second, 120 * sim.Second} {
		a.Sim.Run(horizon)
		b.Sim.Run(horizon)
		fa, fb := Fingerprint(a), Fingerprint(b)
		if fa != fb {
			t.Fatalf("digest at %v: %016x vs %016x on identical runs", horizon, fa, fb)
		}
		// Repeated digesting of the same state is stable.
		if again := Fingerprint(a); again != fa {
			t.Fatalf("re-digest at %v changed: %016x -> %016x", horizon, fa, again)
		}
	}
	// c runs straight to the horizon with no intermediate probes.
	c.Sim.Run(120 * sim.Second)
	if fc, fa := Fingerprint(c), Fingerprint(a); fc != fa {
		t.Errorf("segmented run digest %016x != straight run digest %016x", fa, fc)
	}
}

func TestFingerprintSeparatesStates(t *testing.T) {
	a, b := buildNet(t, 3), buildNet(t, 4)
	a.Sim.Run(60 * sim.Second)
	b.Sim.Run(60 * sim.Second)
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("different seeds produced the same digest")
	}
	before := Fingerprint(a)
	a.Sim.Run(61 * sim.Second)
	if Fingerprint(a) == before {
		t.Error("advancing the run did not change the digest")
	}
}
