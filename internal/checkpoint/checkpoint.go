// Package checkpoint implements the on-disk container and the state
// digest behind mid-flight replication checkpointing (DESIGN.md §11).
//
// The container is deliberately dumb: a versioned, length-prefixed
// binary envelope holding one caller-defined JSON header plus named,
// CRC-guarded opaque sections. All simulation-specific knowledge (what
// the header means, how sections are encoded) lives in the root
// manetp2p package; this file only guarantees that what was written is
// what is read back — or a descriptive error.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Magic identifies a checkpoint file; Version is bumped on any layout
// change. A reader refuses files whose version it does not know instead
// of guessing: a resumed run built from misread state would silently
// diverge, which is the one failure mode this subsystem exists to
// prevent.
const (
	Magic   = "MP2PCKP1"
	Version = 1
)

// File is one decoded checkpoint: a JSON header (tooling can read it
// with ReadHeader without touching the sections) plus named payloads.
type File struct {
	Header   json.RawMessage
	Sections map[string][]byte
}

// maxSane bounds every length prefix read from disk (1 GiB): a corrupt
// prefix must produce an error, not an allocation the size of the
// corruption.
const maxSane = 1 << 30

// Write atomically writes f to path: the bytes go to a temporary file
// in the same directory which is renamed over path only after a
// successful flush, so an interrupted writer leaves either the old
// checkpoint or the new one, never a torn hybrid.
func Write(path string, f *File) error {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	writeU32(&buf, Version)
	if !json.Valid(f.Header) {
		return fmt.Errorf("checkpoint: header is not valid JSON")
	}
	writeU32(&buf, uint32(len(f.Header)))
	buf.Write(f.Header)

	names := make([]string, 0, len(f.Sections))
	for name := range f.Sections { // sorted below: byte-stable files
		names = append(names, name)
	}
	sort.Strings(names)
	writeU32(&buf, uint32(len(names)))
	for _, name := range names {
		data := f.Sections[name]
		writeU32(&buf, uint32(len(name)))
		buf.WriteString(name)
		writeU64(&buf, uint64(len(data)))
		buf.Write(data)
		writeU32(&buf, crc32.ChecksumIEEE(data))
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing %s: %w", path, werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Read decodes and fully verifies the checkpoint at path.
func Read(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	r := &reader{buf: raw, path: path}
	f, err := r.file(true)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadHeader decodes only the JSON header — enough for tooling (and the
// sweep driver's is-this-point-done probe) to inspect a checkpoint
// without paying for its payload sections.
func ReadHeader(path string) (json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	r := &reader{buf: raw, path: path}
	f, err := r.file(false)
	if err != nil {
		return nil, err
	}
	return f.Header, nil
}

// reader walks the buffer with bounds-checked, error-accumulating reads.
type reader struct {
	buf  []byte
	path string
	off  int
}

func (r *reader) fail(format string, args ...any) error {
	return fmt.Errorf("checkpoint: %s: %s (offset %d)", r.path, fmt.Sprintf(format, args...), r.off)
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > maxSane {
		return nil, r.fail("implausible length %d", n)
	}
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("checkpoint: %s: truncated file: %w", r.path, io.ErrUnexpectedEOF)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) file(withSections bool) (*File, error) {
	magic, err := r.take(len(Magic))
	if err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, r.fail("not a checkpoint file (magic %q)", magic)
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, r.fail("unsupported checkpoint version %d (this build reads %d)", ver, Version)
	}
	hlen, err := r.u32()
	if err != nil {
		return nil, err
	}
	header, err := r.take(int(hlen))
	if err != nil {
		return nil, err
	}
	if !json.Valid(header) {
		return nil, r.fail("header is not valid JSON")
	}
	f := &File{Header: append(json.RawMessage(nil), header...)}
	if !withSections {
		return f, nil
	}
	nsec, err := r.u32()
	if err != nil {
		return nil, err
	}
	f.Sections = make(map[string][]byte, nsec)
	for i := uint32(0); i < nsec; i++ {
		nlen, err := r.u32()
		if err != nil {
			return nil, err
		}
		nameB, err := r.take(int(nlen))
		if err != nil {
			return nil, err
		}
		name := string(nameB)
		dlen, err := r.u64()
		if err != nil {
			return nil, err
		}
		data, err := r.take(int(dlen))
		if err != nil {
			return nil, err
		}
		sum, err := r.u32()
		if err != nil {
			return nil, err
		}
		if got := crc32.ChecksumIEEE(data); got != sum {
			return nil, r.fail("section %q fails its CRC (stored %08x, computed %08x)", name, sum, got)
		}
		if _, dup := f.Sections[name]; dup {
			return nil, r.fail("duplicate section %q", name)
		}
		f.Sections[name] = append([]byte(nil), data...)
	}
	if r.off != len(r.buf) {
		return nil, r.fail("%d trailing bytes after the last section", len(r.buf)-r.off)
	}
	return f, nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}
