package checkpoint

import (
	"math"

	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
	"manetp2p/internal/telemetry"
)

// Fingerprint folds a replication's observable state into one 64-bit
// FNV-1a digest: the scheduler position, every node's radio and energy
// state, every servent's protocol state (connections, handshakes, peer
// cache, hybrid role, counters), routing-effort counters, the collected
// measurements, the workload ledger, churn progress and the live fault
// gates.
//
// The digest is the restore-correctness oracle for replay-based resume:
// the original run records it at each checkpoint boundary, and a
// resumed process — which rebuilds the replication from its seed and
// re-executes to the same boundary — must reproduce it exactly before
// it is allowed to continue. Any source of nondeterminism (a
// map-iteration-order decision, an untracked RNG draw) lands here as a
// loud digest-mismatch error instead of a silently diverged result.
//
// Fingerprint only reads: it draws no randomness, schedules nothing,
// and iterates everything in fixed (id or insertion) order, so calling
// it cannot perturb the replication it measures.
func Fingerprint(n *manet.Network) uint64 {
	var d digest
	d.init()

	// Scheduler position. Fired+Seq pin the event history, Pending the
	// queue population (lazily-cancelled entries included — their count
	// is itself deterministic).
	d.u64(uint64(n.Sim.Now()))
	d.u64(n.Sim.Fired())
	d.u64(n.Sim.Seq())
	d.u64(uint64(n.Sim.Pending()))

	// Radio medium: per-node liveness, position, traffic and energy.
	nodes := n.Medium.NumNodes()
	d.u64(uint64(nodes))
	d.u64(uint64(n.Medium.InFlight()))
	inflight := n.Medium.InFlightTo(nil)
	for i := 0; i < nodes; i++ {
		d.bool(n.Medium.Up(i))
		p := n.Medium.Pos(i)
		d.f64(p.X)
		d.f64(p.Y)
		st := n.Medium.Stats(i)
		d.u64(st.TxFrames)
		d.u64(st.RxFrames)
		d.u64(st.TxBytes)
		d.u64(st.RxBytes)
		d.u64(st.Dropped)
		d.u64(st.Gated)
		d.u64(st.Queued)
		d.u64(st.LostDown)
		tx, rx := n.Medium.Battery(i).Spent()
		d.f64(tx)
		d.f64(rx)
		d.u64(inflight[i])
	}

	// Routing substrate: the unified effort counters.
	for i := range n.Routers {
		st := n.Routers[i].Stats()
		d.u64(st.CtrlOrig)
		d.u64(st.CtrlRelayed)
		d.u64(st.BcastOrig)
		d.u64(st.BcastRelayed)
		d.u64(st.DataSent)
		d.u64(st.DataForwarded)
		d.u64(st.DataDropped)
		d.u64(st.Delivered)
		d.u64(st.Discoveries)
		d.u64(st.DiscoverFailed)
		d.u64(st.SendFailed)
		d.u64(st.DupHits)
	}

	// Overlay: the full structural view of every servent, in id order.
	var v p2p.View
	for _, sv := range n.Servents {
		if sv == nil {
			d.u64(0xA5)
			continue
		}
		sv.Inspect(&v)
		d.bool(v.Joined)
		d.u64(uint64(v.State))
		d.i64(int64(v.ReservedWith))
		d.bool(v.ReservedArmed)
		d.i64(int64(v.NHops))
		d.u64(uint64(v.Timer))
		d.bool(v.CycleRunning)
		d.bool(v.Collecting)
		d.u64(uint64(v.Offers))
		d.u64(uint64(v.NextQID))
		d.bool(v.OpenQuery)
		d.u64(v.Established)
		d.u64(v.Closed)
		d.u64(v.Downloads)
		d.u64(uint64(v.SeenQueries))
		d.u64(uint64(len(v.Conns)))
		for _, c := range v.Conns {
			d.i64(int64(c.Peer))
			d.bool(c.Random)
			d.bool(c.Initiator)
			d.bool(c.ToMaster)
			d.bool(c.ToSlave)
			d.bool(c.Master)
			d.u64(uint64(c.Since))
			d.bool(c.PingArmed)
			d.bool(c.DeadlineArmed)
		}
		d.u64(uint64(len(v.Pending)))
		for _, h := range v.Pending {
			d.i64(int64(h.Peer))
			d.bool(h.Random)
			d.bool(h.Master)
			d.bool(h.TimeoutArmed)
		}
		d.u64(uint64(len(v.Cache)))
		for _, e := range v.Cache {
			d.i64(int64(e.Peer))
			d.u64(uint64(e.Seen))
			d.u64(uint64(e.Tried))
			d.bool(e.HasTried)
		}
	}

	// Collected measurements so far.
	col := n.Collector
	for node := 0; node < col.NumNodes(); node++ {
		for c := 0; c < telemetry.NumClasses; c++ {
			d.u64(col.Received(node, telemetry.Class(c)))
		}
	}
	for c := 0; c < telemetry.NumClasses; c++ {
		series := col.Series(telemetry.Class(c))
		d.u64(uint64(len(series)))
		for _, v := range series {
			d.u64(v)
		}
	}
	reqs := col.Requests()
	d.u64(uint64(len(reqs)))
	for _, r := range reqs {
		d.i64(int64(r.Node))
		d.i64(int64(r.File))
		d.i64(int64(r.Answers))
		d.i64(int64(r.MinP2P))
		d.i64(int64(r.MinAdhoc))
		d.bool(r.Found)
	}
	lifetimes := col.Lifetimes()
	d.u64(uint64(len(lifetimes)))
	for _, v := range lifetimes {
		d.f64(v)
	}
	health := col.Health()
	d.u64(uint64(len(health)))
	for _, h := range health {
		d.u64(uint64(h.At))
		d.f64(h.LargestComp)
		d.i64(int64(h.Links))
		for _, r := range h.Received {
			d.u64(r)
		}
	}

	// Workload ledger, churn progress, live fault gates.
	if n.Demand != nil {
		c := n.Demand.Counters()
		d.u64(c.Offered)
		d.u64(c.Retries)
		d.u64(c.Issued)
		d.u64(c.Resolved)
		d.u64(c.Expired)
		d.u64(c.Aborted)
		d.u64(c.InFlight)
		d.u64(c.Pending)
		d.u64(c.BoundsViol)
	}
	d.u64(n.ChurnEvents())
	if n.Injector != nil {
		parts, jams, bursts, flaps := n.Injector.ActiveGates()
		d.i64(int64(parts))
		d.i64(int64(jams))
		d.i64(int64(bursts))
		d.i64(int64(flaps))
	}
	return d.h
}

// digest is FNV-1a 64, fed fixed-width little-endian words so the hash
// is byte-for-byte reproducible across platforms and Go versions.
type digest struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (d *digest) init() { d.h = fnvOffset }

func (d *digest) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= fnvPrime
		v >>= 8
	}
}

func (d *digest) i64(v int64) { d.u64(uint64(v)) }

func (d *digest) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digest) bool(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}
