package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// analyzeNaive computes the reference metrics for adj through the Graph
// implementation, shaped like Analyzer.Analyze's result.
func analyzeNaive(adj [][]int, member func(int) bool) (Metrics, []int) {
	g := New(adj)
	var m Metrics
	m.Clustering = g.ClusteringCoefficient()
	m.PathLength, m.Pairs = g.CharacteristicPathLength()
	sizes := g.Components(member)
	m.Components = len(sizes)
	m.Largest = g.LargestComponentFraction(member)
	m.Edges = g.NumEdges()
	return m, sizes
}

// requireEqual compares an Analyzer run against the naive path with
// exact equality — including the floating-point metrics, which the
// Analyzer must reproduce operation for operation (the golden fixtures
// pin them byte-for-byte).
func requireEqual(t *testing.T, a *Analyzer, adj [][]int, member func(int) bool) {
	t.Helper()
	want, wantSizes := analyzeNaive(adj, member)
	a.Load(adj)
	got := a.Analyze(member)
	if got != want {
		t.Fatalf("Analyzer = %+v, naive = %+v (adj %v)", got, want, adj)
	}
	gotSizes := a.ComponentSizes()
	if len(gotSizes) != len(wantSizes) {
		t.Fatalf("component sizes %v, naive %v (adj %v)", gotSizes, wantSizes, adj)
	}
	for i := range gotSizes {
		if gotSizes[i] != wantSizes[i] {
			t.Fatalf("component sizes %v, naive %v (adj %v)", gotSizes, wantSizes, adj)
		}
	}
}

func TestAnalyzerMatchesNaiveFixedCases(t *testing.T) {
	cases := [][][]int{
		nil,                                // empty graph
		{{}},                               // single isolated node
		{{1, 2}, {0, 2}, {0, 1}},           // triangle
		{{1}, {0, 2}, {1, 3}, {2}},         // chain
		{{1, 2, 3, 4}, {0}, {0}, {0}, {0}}, // star
		{{1}, {0}, {3}, {2}, {}},           // two pairs + isolated node
		{{1}, {}},                          // one-directional edge
		{{1, 2}, {2}, {}},                  // asymmetric triangle-ish
		{{0, 1, 1, 2, 99, -1}, {0}, {0}},   // self-loop, dupes, out-of-range
	}
	an := new(Analyzer) // shared across cases: scratch reuse must not leak
	for i, adj := range cases {
		requireEqual(t, an, adj, nil)
		if i%2 == 1 {
			requireEqual(t, an, adj, func(v int) bool { return v%2 == 0 })
		}
	}
}

func TestAnalyzerMatchesNaiveRingLattice(t *testing.T) {
	an := new(Analyzer)
	requireEqual(t, an, ring(30, 2), nil)
	requireEqual(t, an, ring(64, 3), nil) // node count on a word boundary
	requireEqual(t, an, ring(65, 1), nil)
}

// TestQuickAnalyzerEquivalence is the property test: on randomized
// graphs — disconnected, with self-loops, duplicates and asymmetric
// links — Analyzer results exactly match the naive implementations for
// clustering, pathlength, pairs count, edges and component sizes, with
// and without a member filter. One Analyzer is reused throughout, so
// stale scratch from a previous (differently-sized) graph is exercised
// too.
func TestQuickAnalyzerEquivalence(t *testing.T) {
	an := new(Analyzer)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) // includes n = 0
		adj := make([][]int, n)
		symmetric := rng.Intn(2) == 0
		p := 0.05 + 0.3*rng.Float64()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < p {
					adj[i] = append(adj[i], j) // j == i: self-loop kept on purpose
					if symmetric && j != i {
						adj[j] = append(adj[j], i)
					}
				}
			}
			if n > 0 && rng.Float64() < 0.2 {
				adj[i] = append(adj[i], rng.Intn(n)) // likely duplicate
			}
		}
		var member func(int) bool
		if rng.Intn(2) == 0 {
			keep := rng.Intn(3) + 1
			member = func(v int) bool { return v%3 < keep }
		}
		want, wantSizes := analyzeNaive(adj, member)
		an.Load(adj)
		got := an.Analyze(member)
		if got != want {
			t.Logf("seed %d: Analyzer %+v, naive %+v", seed, got, want)
			return false
		}
		gotSizes := an.ComponentSizes()
		if len(gotSizes) != len(wantSizes) {
			return false
		}
		for i := range gotSizes {
			if gotSizes[i] != wantSizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAnalyzerSteadyStateAllocs pins the tentpole contract: once warm,
// a reload-and-analyze cycle performs zero allocations.
func TestAnalyzerSteadyStateAllocs(t *testing.T) {
	adj := ring(120, 3)
	an := new(Analyzer)
	an.Load(adj)
	an.Analyze(nil)
	member := func(v int) bool { return v%4 != 0 }
	if n := testing.AllocsPerRun(100, func() {
		an.Load(adj)
		an.Analyze(member)
	}); n > 0 {
		t.Fatalf("steady-state Load+Analyze allocates %.1f/op, want 0", n)
	}
}

// TestScratchManualFill exercises the external-filler contract
// (MarkLink pass, then rows with HasLink) the way
// Network.AppendOverlayAdjacency uses it.
func TestScratchManualFill(t *testing.T) {
	// Raw links: 0<->1 mutual, 1->2 one-sided, 2<->0 mutual.
	raw := [][]int{{1, 2}, {0, 2}, {0}}
	an := new(Analyzer)
	an.S.Reset(3)
	for i, row := range raw {
		for _, j := range row {
			an.S.MarkLink(i, j)
		}
	}
	for i, row := range raw {
		for _, j := range row {
			if an.S.HasLink(j, i) { // mutual only
				an.S.AppendNeighbor(j)
			}
		}
		an.S.EndRow()
	}
	got := an.Analyze(nil)
	want, _ := analyzeNaive([][]int{{1, 2}, {0}, {0}}, nil)
	if got != want {
		t.Fatalf("manual fill = %+v, want %+v", got, want)
	}
	if an.S.Degree(1) != 1 || an.S.NumNeighbors() != 4 {
		t.Fatalf("degree(1) = %d, neighbors = %d; want 1, 4", an.S.Degree(1), an.S.NumNeighbors())
	}
}
