// Package graphs analyzes overlay snapshots for the paper's small-world
// discussion (§6.1.2): average clustering coefficient, characteristic
// pathlength, and connected components, plus the reference values for
// regular and random graphs the paper quotes (n/2k and log n / log k).
package graphs

import "math"

// Graph is an undirected graph as adjacency lists over dense ids;
// entries may be nil for absent nodes.
type Graph struct {
	Adj [][]int
}

// New builds a Graph from adjacency lists, deduplicating and dropping
// self-loops so downstream metrics are well-defined.
func New(adj [][]int) *Graph {
	clean := make([][]int, len(adj))
	for i, nbrs := range adj {
		seen := map[int]bool{}
		for _, j := range nbrs {
			if j != i && j >= 0 && j < len(adj) && !seen[j] {
				seen[j] = true
				clean[i] = append(clean[i], j)
			}
		}
	}
	return &Graph{Adj: clean}
}

// NumEdges counts undirected edges (mutual pairs counted once; an edge
// present in only one direction still counts once).
func (g *Graph) NumEdges() int {
	n := 0
	for i, nbrs := range g.Adj {
		for _, j := range nbrs {
			if j > i || !g.has(j, i) {
				n++
			}
		}
	}
	return n
}

func (g *Graph) has(i, j int) bool {
	for _, k := range g.Adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.Adj))
	for i, nbrs := range g.Adj {
		out[i] = len(nbrs)
	}
	return out
}

// ClusteringCoefficient returns the average local clustering coefficient
// over nodes with degree >= 2: real connections between a node's
// neighbors divided by the possible connections between them (§6.1.2).
// Nodes with fewer than two neighbors are excluded (their coefficient is
// undefined). Returns 0 when no node qualifies.
func (g *Graph) ClusteringCoefficient() float64 {
	sum, count := 0.0, 0
	for _, nbrs := range g.Adj {
		k := len(nbrs)
		if k < 2 {
			continue
		}
		real := 0
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if g.has(nbrs[a], nbrs[b]) || g.has(nbrs[b], nbrs[a]) {
					real++
				}
			}
		}
		sum += float64(real) / float64(k*(k-1)/2)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// bfsFrom fills dist (pre-sized, -1 initialized) from src; returns the
// number of reached nodes including src, plus the queue so callers keep
// its capacity growth across sources. The frontier advances by index
// rather than popping the head, so the backing array never shrinks.
func (g *Graph) bfsFrom(src int, dist []int, queue []int) ([]int, int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue, len(queue)
}

// CharacteristicPathLength returns the mean shortest-path length over
// all connected ordered pairs, and the number of such pairs. Returns
// (0, 0) for graphs with no connected pairs.
func (g *Graph) CharacteristicPathLength() (float64, int) {
	n := len(g.Adj)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	sum, pairs := 0.0, 0
	for s := 0; s < n; s++ {
		if len(g.Adj[s]) == 0 {
			continue
		}
		queue, _ = g.bfsFrom(s, dist, queue)
		for t, d := range dist {
			if t != s && d > 0 {
				sum += float64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return sum / float64(pairs), pairs
}

// Components returns the sizes of connected components (isolated nodes
// count as size-1 components only if they have an entry in Adj with
// degree zero and appear as a member id; callers pass member-restricted
// graphs).
func (g *Graph) Components(member func(int) bool) []int {
	n := len(g.Adj)
	dist := make([]int, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	var sizes []int
	for s := 0; s < n; s++ {
		if visited[s] || (member != nil && !member(s)) {
			continue
		}
		queue, _ = g.bfsFrom(s, dist, queue)
		size := 0
		for v, d := range dist {
			if d >= 0 {
				visited[v] = true
				size++
			}
		}
		sizes = append(sizes, size)
	}
	return sizes
}

// LargestComponentFraction returns the share of members in the largest
// component.
func (g *Graph) LargestComponentFraction(member func(int) bool) float64 {
	sizes := g.Components(member)
	total, max := 0, 0
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// DegreeDistribution returns counts[d] = number of nodes with degree d
// (only counting nodes the member filter admits; nil admits all).
func (g *Graph) DegreeDistribution(member func(int) bool) []int {
	max := 0
	for i, nbrs := range g.Adj {
		if member != nil && !member(i) {
			continue
		}
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	counts := make([]int, max+1)
	for i, nbrs := range g.Adj {
		if member != nil && !member(i) {
			continue
		}
		counts[len(nbrs)]++
	}
	return counts
}

// RegularPathLength is the paper's reference pathlength for a large
// regular graph: n / (2k).
func RegularPathLength(n, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return float64(n) / (2 * float64(k))
}

// RandomPathLength is the paper's reference pathlength for a large
// random graph: log n / log k.
func RandomPathLength(n, k int) float64 {
	if k <= 1 || n <= 1 {
		return math.Inf(1)
	}
	return math.Log(float64(n)) / math.Log(float64(k))
}

// SmallWorldIndex compares a graph against same-(n,k) references: a
// small-world graph keeps clustering near the regular reference while
// its pathlength drops toward the random reference. The index is
// (C/C_regular) / (L/L_random); values well above 1 indicate
// small-world structure.
func SmallWorldIndex(c, l float64, n, k int) float64 {
	cReg := 0.75 // clustering of a ring lattice with k >> 1
	lRand := RandomPathLength(n, k)
	if l == 0 || lRand == 0 || c == 0 {
		return 0
	}
	return (c / cReg) / (l / lRand)
}
