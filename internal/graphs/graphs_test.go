package graphs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ring builds a ring lattice: n nodes, each connected to k nearest
// neighbors on each side.
func ring(n, k int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			adj[i] = append(adj[i], (i+d)%n, (i-d+n)%n)
		}
	}
	return adj
}

func TestNewDedupsAndDropsSelfLoops(t *testing.T) {
	g := New([][]int{{0, 1, 1, 2}, {0}, {0}})
	if len(g.Adj[0]) != 2 {
		t.Errorf("Adj[0] = %v, want deduped [1 2]", g.Adj[0])
	}
}

func TestTriangleClustering(t *testing.T) {
	g := New([][]int{{1, 2}, {0, 2}, {0, 1}})
	if c := g.ClusteringCoefficient(); c != 1.0 {
		t.Errorf("triangle clustering = %v, want 1", c)
	}
	l, pairs := g.CharacteristicPathLength()
	if l != 1.0 || pairs != 6 {
		t.Errorf("triangle pathlength = %v over %d pairs, want 1 over 6", l, pairs)
	}
}

func TestStarClustering(t *testing.T) {
	// Star: center 0, leaves 1..4 — no neighbor of the center is
	// connected to another, so clustering 0.
	adj := [][]int{{1, 2, 3, 4}, {0}, {0}, {0}, {0}}
	g := New(adj)
	if c := g.ClusteringCoefficient(); c != 0 {
		t.Errorf("star clustering = %v, want 0", c)
	}
	l, _ := g.CharacteristicPathLength()
	// Leaves are 2 apart, center 1 from each: (2*4*1 + 4*3*2)/(20) = 1.6.
	if math.Abs(l-1.6) > 1e-9 {
		t.Errorf("star pathlength = %v, want 1.6", l)
	}
}

func TestRingLatticeClustering(t *testing.T) {
	// Known result: ring lattice with k neighbors per side has
	// C = 3(k-1) / (2(2k-1)). For k=2: 3/6... C = 3*1/(2*3) = 0.5.
	g := New(ring(30, 2))
	if c := g.ClusteringCoefficient(); math.Abs(c-0.5) > 1e-9 {
		t.Errorf("ring lattice clustering = %v, want 0.5", c)
	}
}

func TestPathLengthChain(t *testing.T) {
	g := New([][]int{{1}, {0, 2}, {1, 3}, {2}})
	l, pairs := g.CharacteristicPathLength()
	// Chain of 4: ordered pairs distances sum = 2*(1+2+3 + 1+2 + 1) = 20
	// over 12 pairs.
	if pairs != 12 || math.Abs(l-20.0/12) > 1e-9 {
		t.Errorf("chain pathlength = %v over %d pairs", l, pairs)
	}
}

func TestComponents(t *testing.T) {
	g := New([][]int{{1}, {0}, {3}, {2}, {}})
	sizes := g.Components(nil)
	if len(sizes) != 3 {
		t.Fatalf("components = %v, want 3 components", sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 5 {
		t.Errorf("component sizes sum to %d, want 5", total)
	}
	if f := g.LargestComponentFraction(nil); math.Abs(f-0.4) > 1e-9 {
		t.Errorf("largest component fraction = %v, want 0.4", f)
	}
}

func TestComponentsWithMemberFilter(t *testing.T) {
	g := New([][]int{{1}, {0}, {}, {}})
	member := func(i int) bool { return i < 2 }
	sizes := g.Components(member)
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Errorf("filtered components = %v, want [2]", sizes)
	}
}

func TestReferencePathLengths(t *testing.T) {
	if got := RegularPathLength(100, 4); got != 12.5 {
		t.Errorf("RegularPathLength = %v, want 12.5", got)
	}
	want := math.Log(100) / math.Log(4)
	if got := RandomPathLength(100, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("RandomPathLength = %v, want %v", got, want)
	}
	if !math.IsInf(RegularPathLength(10, 0), 1) || !math.IsInf(RandomPathLength(10, 1), 1) {
		t.Error("degenerate reference pathlengths must be +Inf")
	}
}

func TestSmallWorldIndexDetectsRewiring(t *testing.T) {
	// A ring lattice rewired with a few shortcuts should score higher
	// than the pure lattice (shorter L, similar C).
	n, k := 60, 2
	lattice := New(ring(n, k))
	cL := lattice.ClusteringCoefficient()
	lL, _ := lattice.CharacteristicPathLength()

	rng := rand.New(rand.NewSource(1))
	adj := ring(n, k)
	for i := 0; i < 6; i++ { // six shortcuts
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	sw := New(adj)
	cS := sw.ClusteringCoefficient()
	lS, _ := sw.CharacteristicPathLength()

	if lS >= lL {
		t.Errorf("shortcuts did not shorten pathlength: %v >= %v", lS, lL)
	}
	if SmallWorldIndex(cS, lS, n, 2*k) <= SmallWorldIndex(cL, lL, n, 2*k) {
		t.Error("small-world index did not increase after rewiring")
	}
}

// Property: clustering coefficient is always in [0,1] and pathlength is
// >= 1 when pairs exist, on random graphs.
func TestQuickGraphMetricBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		g := New(adj)
		c := g.ClusteringCoefficient()
		if c < 0 || c > 1 {
			return false
		}
		l, pairs := g.CharacteristicPathLength()
		if pairs > 0 && l < 1 {
			return false
		}
		// Components partition the node set.
		total := 0
		for _, s := range g.Components(nil) {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDegreeDistribution(t *testing.T) {
	// Star: one degree-4 node and four degree-1 nodes.
	g := New([][]int{{1, 2, 3, 4}, {0}, {0}, {0}, {0}})
	dist := g.DegreeDistribution(nil)
	if len(dist) != 5 || dist[1] != 4 || dist[4] != 1 {
		t.Errorf("degree distribution = %v, want [0 4 0 0 1]", dist)
	}
	// Member filter excludes the hub.
	dist = g.DegreeDistribution(func(i int) bool { return i != 0 })
	if dist[1] != 4 || len(dist) != 2 {
		t.Errorf("filtered distribution = %v, want [0 4]", dist)
	}
	total := 0
	for _, c := range g.DegreeDistribution(nil) {
		total += c
	}
	if total != 5 {
		t.Errorf("distribution sums to %d, want 5", total)
	}
}

func TestDegreesAndEdges(t *testing.T) {
	g := New([][]int{{1, 2}, {0}, {0}})
	d := g.Degrees()
	if d[0] != 2 || d[1] != 1 || d[2] != 1 {
		t.Errorf("degrees = %v", d)
	}
	if e := g.NumEdges(); e != 2 {
		t.Errorf("edges = %d, want 2", e)
	}
	// One-directional edge still counts once.
	g = New([][]int{{1}, {}})
	if e := g.NumEdges(); e != 1 {
		t.Errorf("one-directional edges = %d, want 1", e)
	}
}
