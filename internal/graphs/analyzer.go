// The allocation-free analytics engine. Graph (graphs.go) is the
// reference implementation: adjacency lists, per-metric traversals, a
// fresh allocation per call — easy to audit against the paper. Analyzer
// computes the same metrics bit-for-bit from a flat CSR layout with
// scratch that persists across snapshots, so the per-tick overlay
// analysis (clustering, characteristic pathlength, components) costs
// zero allocations at steady state. The equivalence is enforced by
// property tests (analyzer_test.go) and by the golden fixtures, which
// pin every metric the Analyzer now produces.
package graphs

import "math/bits"

// Scratch is the reusable flat adjacency an Analyzer consumes: a CSR
// (compressed sparse row) neighbor array plus a per-pair link bitmap.
// Fillers (manet.Network.AppendOverlayAdjacency, Analyzer.Load) build it
// row by row in node-id order; rows must be deduplicated, self-free and
// in-range — Scratch applies no cleaning of its own.
type Scratch struct {
	n     int
	words int      // bitmap words per row: ceil(n/64)
	off   []int32  // row offsets; len n+1 once every row is closed
	nbrs  []int32  // concatenated neighbor ids
	bits  []uint64 // n rows x words link bitmap (MarkLink/HasLink)
}

// Reset prepares the scratch for a graph over n dense node ids,
// clearing the link bitmap and dropping all rows. Backing arrays are
// kept, so a steady-state refill allocates nothing.
func (s *Scratch) Reset(n int) {
	s.n = n
	s.words = (n + 63) / 64
	s.off = append(s.off[:0], 0)
	s.nbrs = s.nbrs[:0]
	need := n * s.words
	if cap(s.bits) < need {
		s.bits = make([]uint64, need)
	} else {
		s.bits = s.bits[:need]
		clear(s.bits)
	}
}

// MarkLink records a directed link i -> j in the bitmap. Fillers use it
// for the symmetric-link check: mark every raw link in one pass, then
// test the reverse direction in O(1) while building rows, instead of
// scanning the peer's neighbor list per link.
func (s *Scratch) MarkLink(i, j int) {
	s.bits[i*s.words+(j>>6)] |= 1 << (uint(j) & 63)
}

// HasLink reports whether MarkLink(i, j) was called since Reset.
func (s *Scratch) HasLink(i, j int) bool {
	return s.bits[i*s.words+(j>>6)]&(1<<(uint(j)&63)) != 0
}

// AppendNeighbor adds j to the currently open row.
func (s *Scratch) AppendNeighbor(j int) { s.nbrs = append(s.nbrs, int32(j)) }

// EndRow closes the current row; call exactly once per node id, in
// ascending order, including for nodes with no neighbors.
func (s *Scratch) EndRow() { s.off = append(s.off, int32(len(s.nbrs))) }

// NumNodes returns the node count set by the last Reset.
func (s *Scratch) NumNodes() int { return s.n }

// Degree returns the filled out-degree of node i.
func (s *Scratch) Degree(i int) int { return int(s.off[i+1] - s.off[i]) }

// Row returns node i's neighbor ids, borrowed until the next Reset.
func (s *Scratch) Row(i int) []int32 { return s.nbrs[s.off[i]:s.off[i+1]] }

// NumNeighbors returns the total directed-edge count (sum of degrees).
func (s *Scratch) NumNeighbors() int { return len(s.nbrs) }

// Metrics is one snapshot's worth of overlay analytics, everything the
// per-tick samplers read, computed in a single Analyze call.
type Metrics struct {
	Clustering float64 // average local clustering coefficient (degree >= 2 nodes)
	PathLength float64 // mean shortest path over connected ordered pairs
	Pairs      int     // connected ordered pairs behind PathLength
	Largest    float64 // largest-component share of the member population
	Components int     // component count (member-filtered, like Graph.Components)
	Edges      int     // undirected edges (either-direction pairs counted once)
}

// Analyzer computes Graph's metrics allocation-free from a Scratch. The
// zero value is ready to use; one Analyzer serves one goroutine. All
// floating-point accumulation follows the reference implementation
// operation for operation, so results are bit-identical to Graph's —
// the golden fixtures depend on that.
type Analyzer struct {
	// S is the adjacency under analysis; fill it with Load or hand it to
	// an external filler (Network.AppendOverlayAdjacency) before Analyze.
	S Scratch

	// BFS scratch: visited is version-stamped so no O(n) reset runs per
	// source, and the frontier keeps its backing array across sources.
	visit []uint32
	dist  []int32
	queue []int32
	ver   uint32

	// nbr is a one-row bitset: the current node's neighbor set during
	// clustering, the dedupe set during Load.
	nbr []uint64

	// Multi-source BFS scratch (one word per node): bit b of cur[v]
	// means source base+b's current frontier holds v; reach accumulates
	// every source that discovered v; nxt builds the new frontier.
	// frontier lists the nodes with nonzero cur so the propagate sweep
	// never visits inactive nodes; cur is consumed back to all-zero
	// every level, which keeps it valid across batches and Analyze
	// calls without O(n) clears. srcs packs the eligible source ids so
	// batches carry 64 live sources each, not 64 consecutive ids.
	cur, nxt, reach []uint64
	frontier, srcs  []int32

	// Component scratch, stamped per Analyze call.
	compSeen []uint32
	gen      uint32
	sizes    []int
}

// ensure sizes the per-node scratch for the current Scratch, keeping
// backing arrays across calls. Stale version stamps are harmless: both
// counters only move forward (with an explicit wrap reset), so a stale
// entry can never equal a fresh stamp.
func (a *Analyzer) ensure() {
	n := a.S.n
	if cap(a.visit) < n {
		a.visit = make([]uint32, n)
		a.dist = make([]int32, n)
		a.compSeen = make([]uint32, n)
		a.cur = make([]uint64, n)
		a.nxt = make([]uint64, n)
		a.reach = make([]uint64, n)
		a.frontier = make([]int32, 0, n)
		a.srcs = make([]int32, 0, n)
		if cap(a.queue) < n {
			a.queue = make([]int32, 0, n)
		}
	} else {
		a.visit = a.visit[:n]
		a.dist = a.dist[:n]
		a.compSeen = a.compSeen[:n]
		a.cur = a.cur[:n]
		a.nxt = a.nxt[:n]
		a.reach = a.reach[:n]
	}
	if cap(a.nbr) < a.S.words {
		a.nbr = make([]uint64, a.S.words)
	} else {
		a.nbr = a.nbr[:a.S.words]
	}
	if a.ver > ^uint32(0)-uint32(n)-2 {
		clear(a.visit)
		a.ver = 0
	}
	if a.gen == ^uint32(0) {
		clear(a.compSeen)
		a.gen = 0
	}
}

// Load fills the scratch from adjacency lists, applying New's cleaning
// rules: duplicates, self-loops and out-of-range ids are dropped,
// first-seen order is kept. Entries may be nil for absent nodes.
func (a *Analyzer) Load(adj [][]int) {
	a.S.Reset(len(adj))
	a.ensure()
	for i, row := range adj {
		start := len(a.S.nbrs)
		for _, j := range row {
			if j != i && j >= 0 && j < a.S.n && a.nbr[j>>6]&(1<<(uint(j)&63)) == 0 {
				a.nbr[j>>6] |= 1 << (uint(j) & 63)
				a.S.AppendNeighbor(j)
			}
		}
		a.S.EndRow()
		for _, j := range a.S.nbrs[start:] {
			a.nbr[j>>6] &^= 1 << (uint(j) & 63)
		}
	}
}

// buildSym rewrites the scratch bitmap as the symmetric closure of the
// CSR rows: bit (i,j) set iff i->j or j->i is an edge. The directed
// marks a filler left behind are consumed by then, so overwriting is
// safe.
func (a *Analyzer) buildSym() {
	s := &a.S
	clear(s.bits)
	for i := 0; i < s.n; i++ {
		for _, j := range s.Row(i) {
			s.MarkLink(i, int(j))
			s.MarkLink(int(j), i)
		}
	}
}

// bfs runs one breadth-first traversal from src using the stamped
// visited array, leaving the reached nodes (discovery order) in
// a.queue. It returns the reached count including src and the sum of
// distances to the reached nodes. Distances are small integers, so the
// int64 sum converts to float64 exactly — order of accumulation cannot
// change the result the reference implementation computes.
func (a *Analyzer) bfs(src int32) (reached int, sum int64) {
	a.ver++
	ver := a.ver
	off, nbrs := a.S.off, a.S.nbrs
	a.visit[src] = ver
	a.dist[src] = 0
	q := append(a.queue[:0], src)
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := a.dist[u]
		for _, v := range nbrs[off[u]:off[u+1]] {
			if a.visit[v] != ver {
				a.visit[v] = ver
				a.dist[v] = du + 1
				sum += int64(du) + 1
				q = append(q, v)
			}
		}
	}
	a.queue = q
	return len(q), sum
}

// Analyze computes every metric in one sweep over the filled scratch.
// The member filter (nil admits all) scopes the component metrics the
// way Graph.Components does; clustering and pathlength ignore it, like
// their Graph counterparts. Steady state allocates nothing.
func (a *Analyzer) Analyze(member func(int) bool) Metrics {
	a.ensure()
	n := a.S.n
	w := a.S.words
	var m Metrics

	a.buildSym()

	// Edges: unordered pairs with at least one direction, counted as
	// set bits in the strict upper triangle of the symmetric closure.
	for i := 0; i < n; i++ {
		row := a.S.bits[i*w : (i+1)*w]
		wi := i >> 6
		m.Edges += bits.OnesCount64(row[wi] &^ (^uint64(0) >> (63 - uint(i)&63)))
		for k := wi + 1; k < w; k++ {
			m.Edges += bits.OnesCount64(row[k])
		}
	}

	// Clustering: for each node, mark its neighbor set once, then count
	// neighbor-pair links by intersecting each neighbor's symmetric row
	// with the bitset — every linked pair is seen from both ends, so
	// halve the total. Same accumulation order and operations as
	// Graph.ClusteringCoefficient.
	csum, ccount := 0.0, 0
	for i := 0; i < n; i++ {
		row := a.S.Row(i)
		k := len(row)
		if k < 2 {
			continue
		}
		for _, j := range row {
			a.nbr[j>>6] |= 1 << (uint(j) & 63)
		}
		linked := 0
		for _, j := range row {
			sym := a.S.bits[int(j)*w : (int(j)+1)*w]
			for wd := 0; wd < w; wd++ {
				linked += bits.OnesCount64(sym[wd] & a.nbr[wd])
			}
		}
		for _, j := range row {
			a.nbr[j>>6] &^= 1 << (uint(j) & 63)
		}
		csum += float64(linked/2) / float64(k*(k-1)/2)
		ccount++
	}
	if ccount > 0 {
		m.Clustering = csum / float64(ccount)
	}

	// Pathlength: all-pairs BFS, 64 sources per wave. Bit b of cur[v]
	// says source base+b's frontier holds v; one sweep over the CSR rows
	// advances all 64 traversals a level at once, so the per-source cost
	// drops from O(n+E) to O((n+E)/64) word operations per level. Each
	// (source, target) pair is counted exactly once, at the level that
	// first reaches the target — its BFS distance — and the distances
	// are small integers summed in int64, so the total converts to
	// float64 exactly: accumulation order cannot diverge from
	// Graph.CharacteristicPathLength, whatever the batching.
	off, nbrs := a.S.off, a.S.nbrs
	a.srcs = a.srcs[:0]
	for s := 0; s < n; s++ {
		if a.S.Degree(s) > 0 {
			a.srcs = append(a.srcs, int32(s))
		}
	}
	var pathSum int64
	for base := 0; base < len(a.srcs); base += 64 {
		hi := base + 64
		if hi > len(a.srcs) {
			hi = len(a.srcs)
		}
		clear(a.reach)
		a.frontier = a.frontier[:0]
		for k := base; k < hi; k++ {
			s := a.srcs[k]
			b := uint64(1) << uint(k-base)
			a.cur[s] = b
			a.reach[s] = b
			a.frontier = append(a.frontier, s)
		}
		for level := int64(1); len(a.frontier) > 0; level++ {
			for _, u := range a.frontier {
				cu := a.cur[u]
				a.cur[u] = 0
				for _, v := range nbrs[off[u]:off[u+1]] {
					a.nxt[v] |= cu
				}
			}
			a.frontier = a.frontier[:0]
			for v := 0; v < n; v++ {
				nw := a.nxt[v] &^ a.reach[v]
				if nw != 0 {
					a.reach[v] |= nw
					a.cur[v] = nw
					a.frontier = append(a.frontier, int32(v))
					c := bits.OnesCount64(nw)
					m.Pairs += c
					pathSum += level * int64(c)
				}
			}
			clear(a.nxt)
		}
	}
	if m.Pairs > 0 {
		m.PathLength = float64(pathSum) / float64(m.Pairs)
	}

	// Components: one plain BFS per fresh admitted source, replicating
	// Graph.Components exactly — including its size accounting on
	// asymmetric graphs, where nodes already claimed by an earlier
	// component still count toward a later traversal's size.
	a.gen++
	gen := a.gen
	a.sizes = a.sizes[:0]
	for s := 0; s < n; s++ {
		if a.compSeen[s] == gen || (member != nil && !member(s)) {
			continue
		}
		if a.S.Degree(s) == 0 {
			a.compSeen[s] = gen
			a.sizes = append(a.sizes, 1)
			continue
		}
		reached, _ := a.bfs(int32(s))
		for _, v := range a.queue {
			a.compSeen[v] = gen
		}
		a.sizes = append(a.sizes, reached)
	}
	m.Components = len(a.sizes)
	total, max := 0, 0
	for _, s := range a.sizes {
		total += s
		if s > max {
			max = s
		}
	}
	if total > 0 {
		m.Largest = float64(max) / float64(total)
	}
	return m
}

// ComponentSizes returns the last Analyze's component sizes in
// start-node order, borrowed until the next Analyze.
func (a *Analyzer) ComponentSizes() []int { return a.sizes }
