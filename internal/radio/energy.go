package radio

// EnergyConfig parameterizes the linear transmit/receive energy model
// commonly used for MANET studies (cost = fixed per frame + per byte).
// The zero value disables energy accounting entirely (infinite battery),
// which is the setting for the paper's headline figures; finite budgets
// drive the network-lifetime sweeps from the paper's future-work list.
type EnergyConfig struct {
	Capacity   float64 // joules; <= 0 means infinite
	TxPerFrame float64 // joules per transmitted frame
	TxPerByte  float64 // joules per transmitted byte
	RxPerFrame float64 // joules per received frame
	RxPerByte  float64 // joules per received byte
}

// DefaultEnergy returns a finite-battery profile loosely calibrated to
// early-2000s WaveLAN measurements (tx ≈ 1.9× rx cost per byte), scaled
// so that a node relaying heavy flooding traffic for tens of simulated
// minutes exhausts its budget.
func DefaultEnergy(capacityJ float64) EnergyConfig {
	return EnergyConfig{
		Capacity:   capacityJ,
		TxPerFrame: 454e-6,
		TxPerByte:  1.9e-6,
		RxPerFrame: 356e-6,
		RxPerByte:  0.5e-6,
	}
}

// Battery tracks one node's remaining energy.
type Battery struct {
	cfg       EnergyConfig
	remaining float64
	spentTx   float64
	spentRx   float64
	infinite  bool
}

// NewBattery creates a battery from the config; Capacity <= 0 yields an
// infinite battery that still records spend totals.
func NewBattery(cfg EnergyConfig) *Battery {
	return &Battery{cfg: cfg, remaining: cfg.Capacity, infinite: cfg.Capacity <= 0}
}

// SpendTx debits a transmission of size bytes and reports whether the
// battery just became empty.
func (b *Battery) SpendTx(size int) bool {
	cost := b.cfg.TxPerFrame + b.cfg.TxPerByte*float64(size)
	b.spentTx += cost
	return b.debit(cost)
}

// SpendRx debits a reception of size bytes and reports whether the
// battery just became empty.
func (b *Battery) SpendRx(size int) bool {
	cost := b.cfg.RxPerFrame + b.cfg.RxPerByte*float64(size)
	b.spentRx += cost
	return b.debit(cost)
}

func (b *Battery) debit(cost float64) bool {
	if b.infinite {
		return false
	}
	before := b.remaining
	b.remaining -= cost
	return before > 0 && b.remaining <= 0
}

// Remaining returns joules left; meaningless (0) for infinite batteries.
func (b *Battery) Remaining() float64 {
	if b.infinite {
		return 0
	}
	if b.remaining < 0 {
		return 0
	}
	return b.remaining
}

// Empty reports whether a finite battery has been exhausted.
func (b *Battery) Empty() bool { return !b.infinite && b.remaining <= 0 }

// Spent returns total joules debited for transmit and receive.
func (b *Battery) Spent() (tx, rx float64) { return b.spentTx, b.spentRx }
