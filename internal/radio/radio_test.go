package radio

import (
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
)

// pkt wraps a tagged test message in a router frame for medium tests.
func pkt(tag uint32) netif.Packet {
	return netif.Packet{Msg: netif.TestMsg(tag)}
}

func testConfig(n int) Config {
	return Config{
		Arena:    geom.Rect{W: 100, H: 100},
		Range:    10,
		NumNodes: n,
		Latency:  2 * sim.Millisecond,
	}
}

type capture struct {
	frames []Frame
}

func (c *capture) recv(f Frame) { c.frames = append(c.frames, f) }

func newTestMedium(t *testing.T, s *sim.Sim, cfg Config) *Medium {
	t.Helper()
	m, err := NewMedium(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Arena.W = 0 },
		func(c *Config) { c.Range = 0 },
		func(c *Config) { c.NumNodes = 0 },
		func(c *Config) { c.Latency = -1 },
		func(c *Config) { c.LossProb = 1.0 },
		func(c *Config) { c.LossProb = -0.1 },
	}
	for i, mutate := range bads {
		c := testConfig(3)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUnicastInRange(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	var rx capture
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 15, Y: 10}, rx.recv)
	n := m.Send(Frame{Src: 0, Dst: 1, Size: 64, Payload: pkt(5)})
	if n != 1 {
		t.Fatalf("Send queued %d deliveries, want 1", n)
	}
	s.Run(sim.MaxTime)
	if len(rx.frames) != 1 || rx.frames[0].Payload.Msg != netif.TestMsg(5) {
		t.Fatalf("rx = %+v, want one tagged frame", rx.frames)
	}
	if s.Now() != 2*sim.Millisecond {
		t.Errorf("delivery at %v, want 2ms latency", s.Now())
	}
}

func TestUnicastOutOfRangeLost(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	var rx capture
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 30, Y: 10}, rx.recv)
	if n := m.Send(Frame{Src: 0, Dst: 1, Size: 64}); n != 0 {
		t.Fatalf("out-of-range Send queued %d, want 0", n)
	}
	s.Run(sim.MaxTime)
	if len(rx.frames) != 0 {
		t.Fatal("frame delivered beyond range")
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(4))
	var rx1, rx2, rx3 capture
	m.Join(0, geom.Point{X: 50, Y: 50}, func(Frame) {})
	m.Join(1, geom.Point{X: 55, Y: 50}, rx1.recv)
	m.Join(2, geom.Point{X: 50, Y: 58}, rx2.recv)
	m.Join(3, geom.Point{X: 80, Y: 80}, rx3.recv) // out of range
	n := m.Send(Frame{Src: 0, Dst: BroadcastAddr, Size: 32})
	if n != 2 {
		t.Fatalf("broadcast queued %d, want 2", n)
	}
	s.Run(sim.MaxTime)
	if len(rx1.frames) != 1 || len(rx2.frames) != 1 || len(rx3.frames) != 0 {
		t.Fatalf("rx counts = %d,%d,%d want 1,1,0", len(rx1.frames), len(rx2.frames), len(rx3.frames))
	}
}

func TestSenderDoesNotHearOwnBroadcast(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(1))
	var rx capture
	m.Join(0, geom.Point{X: 50, Y: 50}, rx.recv)
	m.Send(Frame{Src: 0, Dst: BroadcastAddr, Size: 32})
	s.Run(sim.MaxTime)
	if len(rx.frames) != 0 {
		t.Fatal("sender received its own broadcast")
	}
}

func TestLeaveStopsDelivery(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	var rx capture
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, rx.recv)
	m.Send(Frame{Src: 0, Dst: 1, Size: 16})
	m.Leave(1) // frame is in flight; the receiver leaves before arrival
	s.Run(sim.MaxTime)
	if len(rx.frames) != 0 {
		t.Fatal("frame delivered to departed node")
	}
	// Down nodes cannot transmit.
	if n := m.Send(Frame{Src: 1, Dst: 0, Size: 16}); n != 0 {
		t.Fatal("down node transmitted")
	}
	// Leave of a down node is a no-op.
	m.Leave(1)
}

func TestSetPosAffectsReachability(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	var rx capture
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 50, Y: 50}, rx.recv)
	if m.InRange(0, 1) {
		t.Fatal("nodes 40m+ apart reported in range")
	}
	m.SetPos(1, geom.Point{X: 17, Y: 10})
	if !m.InRange(0, 1) {
		t.Fatal("nodes 7m apart reported out of range")
	}
	m.Send(Frame{Src: 0, Dst: 1, Size: 16})
	s.Run(sim.MaxTime)
	if len(rx.frames) != 1 {
		t.Fatal("frame not delivered after move into range")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(4))
	m.Join(0, geom.Point{X: 50, Y: 50}, func(Frame) {})
	m.Join(1, geom.Point{X: 55, Y: 50}, func(Frame) {})
	m.Join(2, geom.Point{X: 50, Y: 45}, func(Frame) {})
	m.Join(3, geom.Point{X: 10, Y: 10}, func(Frame) {})
	nbs := m.Neighbors(nil, 0)
	if len(nbs) != 2 {
		t.Fatalf("Neighbors = %v, want 2 entries", nbs)
	}
	if m.Degree(0) != 2 || m.Degree(3) != 0 {
		t.Fatalf("Degree(0)=%d Degree(3)=%d, want 2,0", m.Degree(0), m.Degree(3))
	}
}

func TestStatsCounters(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, func(Frame) {})
	m.Send(Frame{Src: 0, Dst: 1, Size: 100})
	m.Send(Frame{Src: 0, Dst: 1, Size: 50})
	s.Run(sim.MaxTime)
	tx, rx := m.Stats(0), m.Stats(1)
	if tx.TxFrames != 2 || tx.TxBytes != 150 {
		t.Errorf("tx stats = %+v, want 2 frames / 150 bytes", tx)
	}
	if rx.RxFrames != 2 || rx.RxBytes != 150 {
		t.Errorf("rx stats = %+v, want 2 frames / 150 bytes", rx)
	}
}

func TestLossProbabilityDropsFrames(t *testing.T) {
	cfg := testConfig(2)
	cfg.LossProb = 0.5
	s := sim.New(42)
	m := newTestMedium(t, s, cfg)
	var rx capture
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, rx.recv)
	const total = 2000
	for i := 0; i < total; i++ {
		m.Send(Frame{Src: 0, Dst: 1, Size: 16})
	}
	s.Run(sim.MaxTime)
	got := len(rx.frames)
	if got < total/2-150 || got > total/2+150 {
		t.Errorf("with 50%% loss, delivered %d of %d; outside tolerance", got, total)
	}
	if m.Stats(1).Dropped == 0 {
		t.Error("Dropped counter not incremented")
	}
}

func TestJitterSpreadsDeliveries(t *testing.T) {
	cfg := testConfig(2)
	cfg.Jitter = 5 * sim.Millisecond
	s := sim.New(7)
	m := newTestMedium(t, s, cfg)
	var arrivals []sim.Time
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, func(Frame) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 50; i++ {
		m.Send(Frame{Src: 0, Dst: 1, Size: 16})
	}
	s.Run(sim.MaxTime)
	distinct := map[sim.Time]bool{}
	for _, a := range arrivals {
		if a < 2*sim.Millisecond || a > 7*sim.Millisecond {
			t.Fatalf("arrival %v outside [latency, latency+jitter]", a)
		}
		distinct[a] = true
	}
	if len(distinct) < 5 {
		t.Errorf("only %d distinct arrival times; jitter not applied", len(distinct))
	}
}

func TestBatteryDepletionKillsNode(t *testing.T) {
	cfg := testConfig(2)
	cfg.Energy = EnergyConfig{Capacity: 1.0, TxPerFrame: 0.3, RxPerFrame: 0.05}
	s := sim.New(1)
	m := newTestMedium(t, s, cfg)
	var died []int
	m.OnDeath(func(id int) { died = append(died, id) })
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, func(Frame) {})
	for i := 0; i < 10; i++ {
		m.Send(Frame{Src: 0, Dst: 1, Size: 1})
	}
	s.Run(sim.MaxTime)
	if len(died) != 1 || died[0] != 0 {
		t.Fatalf("died = %v, want [0] (tx-heavy node)", died)
	}
	if m.Up(0) {
		t.Error("dead node still up")
	}
	if !m.Battery(0).Empty() {
		t.Error("dead node's battery not empty")
	}
	// 4th frame kills it (3 × 0.3 = 0.9, 4th crosses 1.0): only 4 tx.
	if got := m.Stats(0).TxFrames; got != 4 {
		t.Errorf("TxFrames = %d, want 4 (transmissions stop at death)", got)
	}
}

func TestInfiniteBatteryNeverDies(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2)) // zero EnergyConfig = infinite
	m.OnDeath(func(id int) { t.Errorf("node %d died with infinite battery", id) })
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, func(Frame) {})
	for i := 0; i < 1000; i++ {
		m.Send(Frame{Src: 0, Dst: 1, Size: 1000})
	}
	s.Run(sim.MaxTime)
	if m.Battery(0).Empty() {
		t.Error("infinite battery reports empty")
	}
}

func TestBatteryAccounting(t *testing.T) {
	b := NewBattery(EnergyConfig{Capacity: 10, TxPerFrame: 1, TxPerByte: 0.01, RxPerFrame: 0.5, RxPerByte: 0.005})
	if b.SpendTx(100) {
		t.Error("first tx emptied a 10J battery")
	}
	tx, rx := b.Spent()
	if tx != 2.0 || rx != 0 {
		t.Errorf("Spent = %v,%v want 2,0", tx, rx)
	}
	b.SpendRx(100)
	_, rx = b.Spent()
	if rx != 1.0 {
		t.Errorf("rx spent = %v, want 1", rx)
	}
	if got := b.Remaining(); got != 7.0 {
		t.Errorf("Remaining = %v, want 7", got)
	}
}

func TestSendEdgeCases(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	// Destination id out of range: lost, not panicking.
	if n := m.Send(Frame{Src: 0, Dst: 99, Size: 8}); n != 0 {
		t.Error("out-of-range destination accepted")
	}
	if n := m.Send(Frame{Src: -1, Dst: 0, Size: 8}); n != 0 {
		t.Error("negative source accepted")
	}
	// Down destinations swallow frames.
	if n := m.Send(Frame{Src: 0, Dst: 1, Size: 8}); n != 0 {
		t.Error("down destination reported reachable")
	}
	// SetPos of a down node is a no-op (no panic).
	m.SetPos(1, geom.Point{X: 5, Y: 5})
	// Zero-size frames are a programming error.
	defer func() {
		if recover() == nil {
			t.Error("zero-size Send did not panic")
		}
	}()
	m.Send(Frame{Src: 0, Dst: 0, Size: 0})
}

func TestDoubleJoinPanics(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(1))
	m.Join(0, geom.Point{X: 1, Y: 1}, func(Frame) {})
	defer func() {
		if recover() == nil {
			t.Error("double Join did not panic")
		}
	}()
	m.Join(0, geom.Point{X: 2, Y: 2}, func(Frame) {})
}

func TestRejoinAfterLeave(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	var rx capture
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, rx.recv)
	m.Leave(1)
	m.Join(1, geom.Point{X: 12, Y: 10}, rx.recv)
	m.Send(Frame{Src: 0, Dst: 1, Size: 8})
	s.Run(sim.MaxTime)
	if len(rx.frames) != 1 {
		t.Fatal("rejoined node did not receive")
	}
}

// prebox is the fixed value payload for the alloc guard; frames carry
// it by value, so there is no caller-side boxing to exclude anymore.
var prebox = pkt(99)

// Alloc guard (ISSUE 2): once the delivery heap and event pool are warm,
// a unicast Send — queue, drain event, arrival — performs zero heap
// allocations.
func TestUnicastSendZeroAllocs(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	delivered := 0
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 15, Y: 10}, func(Frame) { delivered++ })
	// Warm up: a few deliveries populate the pool and the heap arrays.
	for i := 0; i < 16; i++ {
		m.Send(Frame{Src: 0, Dst: 1, Size: 8, Payload: prebox})
	}
	s.Run(sim.MaxTime)
	f := Frame{Src: 0, Dst: 1, Size: 8, Payload: prebox}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Send(f)
		s.Run(sim.MaxTime)
	})
	if allocs != 0 {
		t.Errorf("unicast Send+deliver allocates %.1f allocs/op, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no frames delivered")
	}
}

// Batched delivery must preserve the exact interleaving between frame
// arrivals and independently scheduled events at the same instant.
func TestDeliveryInterleavesWithScheduledEvents(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(3))
	var order []string
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 15, Y: 10}, func(f Frame) { order = append(order, "rx:"+string(rune(f.Payload.Msg.Seq))) })
	m.Send(Frame{Src: 0, Dst: 1, Size: 8, Payload: pkt('a')})
	// An event scheduled after frame a but before frame b, landing at the
	// same 2ms instant, must run between the two arrivals.
	s.Schedule(2*sim.Millisecond, func() { order = append(order, "ev") })
	m.Send(Frame{Src: 0, Dst: 1, Size: 8, Payload: pkt('b')})
	s.Run(sim.MaxTime)
	want := []string{"rx:a", "ev", "rx:b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// A frame sent from inside a receive callback must not be delivered in
// the same drain batch out of order with its own latency.
func TestReceiveTriggeredSendDelayed(t *testing.T) {
	s := sim.New(1)
	m := newTestMedium(t, s, testConfig(2))
	var arrivals []sim.Time
	m.Join(1, geom.Point{X: 15, Y: 10}, func(Frame) { arrivals = append(arrivals, s.Now()) })
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {
		m.Send(Frame{Src: 0, Dst: 1, Size: 8, Payload: pkt(1)})
	})
	m.Send(Frame{Src: 1, Dst: 0, Size: 8, Payload: pkt(2)})
	s.Run(sim.MaxTime)
	if len(arrivals) != 1 || arrivals[0] != 4*sim.Millisecond {
		t.Fatalf("reply arrivals = %v, want [4ms] (two hops of 2ms latency)", arrivals)
	}
}

// conservationOK asserts the per-node frame conservation law the
// invariant checker relies on: every delivery queued toward a node was
// received, lost while the node was down, or is still in flight.
func conservationOK(t *testing.T, m *Medium, when string) {
	t.Helper()
	inflight := m.InFlightTo(nil)
	for i := 0; i < m.NumNodes(); i++ {
		st := m.Stats(i)
		if st.Queued != st.RxFrames+st.LostDown+inflight[i] {
			t.Errorf("%s: node %d: queued %d != rx %d + lostdown %d + inflight %d",
				when, i, st.Queued, st.RxFrames, st.LostDown, inflight[i])
		}
	}
}

func TestFrameConservation(t *testing.T) {
	s := sim.New(7)
	m := newTestMedium(t, s, testConfig(3))
	m.Join(0, geom.Point{X: 10, Y: 10}, func(Frame) {})
	m.Join(1, geom.Point{X: 12, Y: 10}, func(Frame) {})
	m.Join(2, geom.Point{X: 14, Y: 10}, func(Frame) {})

	for i := 0; i < 10; i++ {
		m.Send(Frame{Src: 0, Dst: 1, Size: 16})
		m.Send(Frame{Src: 1, Dst: -1, Size: 16}) // broadcast
	}
	conservationOK(t, m, "frames in flight")
	if m.InFlight() == 0 {
		t.Error("expected frames in flight before delivery")
	}

	// Take node 1 down while deliveries are pending: its queued frames
	// must land in LostDown, not vanish.
	m.Leave(1)
	s.Run(sim.MaxTime)
	conservationOK(t, m, "after down-node drain")
	if m.Stats(1).LostDown == 0 {
		t.Error("LostDown not incremented for a down receiver")
	}
	if m.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain, want 0", m.InFlight())
	}

	// Back up: subsequent deliveries count as received again.
	m.Join(1, geom.Point{X: 12, Y: 10}, func(Frame) {})
	m.Send(Frame{Src: 0, Dst: 1, Size: 16})
	s.Run(sim.MaxTime)
	conservationOK(t, m, "after rejoin")
}
