// Package radio models the wireless medium as a unit-disc graph: two
// nodes can exchange link-layer frames iff their distance is at most the
// transmission range (the paper uses 10 m). Frames are delivered after a
// small per-hop latency with optional jitter and loss, and every transmit
// and receive debits the sender's/receiver's battery, which is what makes
// the paper's message-count metrics proxies for network lifetime.
//
// The medium deliberately omits MAC-level contention and capture effects:
// the paper's metrics are message counts and hop distances, which are
// insensitive to MAC timing (see EXPERIMENTS.md, substitutions).
package radio

import (
	"fmt"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
)

// BroadcastAddr addresses a frame to every node in range of the sender.
const BroadcastAddr = -1

// Frame is one link-layer transmission unit. The payload travels by
// value — relaying or queueing a frame never touches the heap.
type Frame struct {
	Src     int          // transmitting node
	Dst     int          // receiving node or BroadcastAddr
	Size    int          // bytes on air, for energy/traffic accounting
	Payload netif.Packet // upper-layer packet; never inspected by the medium
}

// Receiver is the upper-layer hook invoked on frame arrival.
type Receiver func(f Frame)

// LinkFilter vets each would-be frame delivery; returning true drops it
// (counted in the receiver's Gated stat). Installed by the fault
// injector to gate links (partitions, flaps) or to stack extra loss
// (jamming, loss bursts) on top of the medium's own LossProb.
type LinkFilter func(src, dst int) bool

// Config sets the physical parameters of the medium.
type Config struct {
	Arena    geom.Rect // simulation area
	Range    float64   // transmission range, metres
	NumNodes int       // node IDs are [0, NumNodes)
	Latency  sim.Time  // fixed per-hop delivery delay
	Jitter   sim.Time  // extra uniform [0, Jitter] per delivery
	LossProb float64   // independent per-delivery drop probability
	Energy   EnergyConfig
}

// Validate reports a descriptive error for out-of-range parameters.
func (c Config) Validate() error {
	switch {
	case c.Arena.W <= 0 || c.Arena.H <= 0:
		return fmt.Errorf("radio: arena %vx%v not positive", c.Arena.W, c.Arena.H)
	case c.Range <= 0:
		return fmt.Errorf("radio: range %v not positive", c.Range)
	case c.NumNodes <= 0:
		return fmt.Errorf("radio: NumNodes %d not positive", c.NumNodes)
	case c.Latency < 0 || c.Jitter < 0:
		return fmt.Errorf("radio: negative latency/jitter")
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("radio: loss probability %v outside [0,1)", c.LossProb)
	}
	return nil
}

// Stats aggregates per-node medium usage. The counters satisfy a
// conservation law the invariant checker validates: every delivery
// attempted toward a node is gated, dropped, or queued, and every queued
// delivery is received, lost to the receiver being down, or still in
// flight — Queued == RxFrames + LostDown + in-flight.
type Stats struct {
	TxFrames uint64
	RxFrames uint64
	TxBytes  uint64
	RxBytes  uint64
	Dropped  uint64 // deliveries lost to LossProb
	Gated    uint64 // deliveries dropped by the installed LinkFilter
	Queued   uint64 // deliveries queued toward this node (post-gate, post-loss)
	LostDown uint64 // queued deliveries that arrived while the node was down
}

// Medium is the shared wireless channel. Not safe for concurrent use;
// one Medium belongs to one Sim.
type Medium struct {
	cfg  Config
	sim  *sim.Sim
	grid *geom.Grid
	rng  interface{ Float64() float64 }
	jrng interface{ Int63n(int64) int64 }

	recv    []Receiver
	filter  LinkFilter
	up      []bool
	stats   []Stats
	battery []*Battery
	onDeath func(id int)

	scratch  []int // Neighbors/Degree query buffer
	bscratch []int // broadcast fan-out buffer; see the note in Send

	// Batched delivery engine: instead of one simulator event (and one
	// capturing closure) per in-flight frame, pending deliveries are
	// value-typed records in the medium's own min-heap, drained by a
	// single pooled event. Each record consumes a global sequence number
	// via ReserveSeq at the moment the old code would have scheduled it,
	// so the interleaving with independently scheduled events — and
	// therefore determinism — is bit-identical to the one-event-per-frame
	// design. The one observable difference: Sim.Pending/Fired counts,
	// and a Stop() landing mid-batch no longer splits same-instant
	// deliveries (both are diagnostics, not simulation state).
	pending    deliveryHeap
	frames     []Frame // slab of in-flight frames, indexed by delivery.idx
	freeIdx    []int32 // recycled slab slots
	drainFn    func()
	drainH     sim.Handle
	drainAt    sim.Time
	drainSeq   uint64
	drainArmed bool
	draining   bool
}

// delivery is one in-flight frame: it arrives at node to at instant at,
// ordered among all simulator events by the reserved seq. The record is
// deliberately a 24-byte key — the frame itself sits in the medium's
// slab under idx — so the heap's sift swaps move keys, not 200+-byte
// value-typed packets (sifting whole frames dominated the CPU profile).
type delivery struct {
	at  sim.Time
	seq uint64
	to  int32
	idx int32
}

// deliveryHeap is a value-typed binary min-heap over (at, seq).
type deliveryHeap struct {
	items []delivery
}

func (q *deliveryHeap) len() int { return len(q.items) }

func (q *deliveryHeap) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *deliveryHeap) push(d delivery) {
	q.items = append(q.items, d)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *deliveryHeap) peek() (delivery, bool) {
	if len(q.items) == 0 {
		return delivery{}, false
	}
	return q.items[0], true
}

func (q *deliveryHeap) pop() delivery {
	n := len(q.items)
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items = q.items[:n-1]
	n--
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}

// putFrame parks an in-flight frame in the slab and returns its slot.
// Slot indices are stable across slab growth, so a held index survives
// reentrant Sends from a receive callback; pointers into the slab do not.
func (m *Medium) putFrame(f Frame) int32 {
	if n := len(m.freeIdx); n > 0 {
		idx := m.freeIdx[n-1]
		m.freeIdx = m.freeIdx[:n-1]
		m.frames[idx] = f
		return idx
	}
	m.frames = append(m.frames, f)
	return int32(len(m.frames) - 1)
}

// releaseFrame recycles a slab slot, dropping the payload's slice
// references so the frame does not pin memory while the slot sits free.
func (m *Medium) releaseFrame(idx int32) {
	m.frames[idx] = Frame{}
	m.freeIdx = append(m.freeIdx, idx)
}

// NewMedium creates the medium; all nodes start down (not placed) until
// Join is called for them.
func NewMedium(s *sim.Sim, cfg Config) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Medium{
		cfg:     cfg,
		sim:     s,
		grid:    geom.NewGrid(cfg.Arena, cfg.Range, cfg.NumNodes),
		rng:     s.NewRand(),
		jrng:    s.NewRand(),
		recv:    make([]Receiver, cfg.NumNodes),
		up:      make([]bool, cfg.NumNodes),
		stats:   make([]Stats, cfg.NumNodes),
		battery: make([]*Battery, cfg.NumNodes),
	}
	for i := range m.battery {
		m.battery[i] = NewBattery(cfg.Energy)
	}
	m.drainFn = m.drainDeliveries
	return m, nil
}

// Join places node id at p and installs its receive callback. Joining a
// node that is already up panics.
func (m *Medium) Join(id int, p geom.Point, r Receiver) {
	if m.up[id] {
		panic(fmt.Sprintf("radio: Join of already-up node %d", id))
	}
	if r == nil {
		panic("radio: Join with nil receiver")
	}
	m.up[id] = true
	m.recv[id] = r
	m.grid.Insert(id, p)
}

// Leave removes node id from the air (death, churn). In-flight frames
// addressed to it are silently lost. Leaving a down node is a no-op.
func (m *Medium) Leave(id int) {
	if !m.up[id] {
		return
	}
	m.up[id] = false
	m.grid.Remove(id)
}

// Up reports whether node id is currently on the air.
func (m *Medium) Up(id int) bool { return m.up[id] }

// SetPos moves node id (driven by the mobility tick).
func (m *Medium) SetPos(id int, p geom.Point) {
	if m.up[id] {
		m.grid.Move(id, p)
	}
}

// Pos returns the last set position of node id.
func (m *Medium) Pos(id int) geom.Point { return m.grid.Pos(id) }

// InRange reports whether a and b are both up and within range.
func (m *Medium) InRange(a, b int) bool {
	return m.up[a] && m.up[b] && m.grid.Pos(a).Dist2(m.grid.Pos(b)) <= m.cfg.Range*m.cfg.Range
}

// Neighbors appends to dst the up nodes within range of id and returns
// the extended slice.
func (m *Medium) Neighbors(dst []int, id int) []int {
	if !m.up[id] {
		return dst
	}
	return m.grid.Near(dst, m.grid.Pos(id), m.cfg.Range, id)
}

// Degree reports the number of current radio neighbors of id.
func (m *Medium) Degree(id int) int {
	m.scratch = m.Neighbors(m.scratch[:0], id)
	return len(m.scratch)
}

// Stats returns medium usage counters for node id.
func (m *Medium) Stats(id int) Stats { return m.stats[id] }

// Battery returns node id's battery for inspection.
func (m *Medium) Battery(id int) *Battery { return m.battery[id] }

// OnDeath installs a callback invoked when a node's battery empties.
func (m *Medium) OnDeath(fn func(id int)) { m.onDeath = fn }

// SetLinkFilter installs (or, with nil, removes) the per-delivery gate.
// The filter runs at transmit time, once per receiver.
//
// Reentrancy contract: the filter runs inside Send, so it may query the
// medium (Neighbors, Degree, InRange, Pos, Up) but must not mutate it —
// no Send, Join, Leave or SetPos — and must not draw from simulation RNG
// streams it does not own.
func (m *Medium) SetLinkFilter(f LinkFilter) { m.filter = f }

// InFlight reports how many deliveries are currently queued in the air.
func (m *Medium) InFlight() int { return m.pending.len() }

// InFlightTo fills dst with the per-destination counts of in-flight
// deliveries and returns it, growing dst to NumNodes if needed (pass nil
// for a fresh slice). Used by the invariant checker to close the
// per-node conservation law.
func (m *Medium) InFlightTo(dst []uint64) []uint64 {
	if len(dst) < m.cfg.NumNodes {
		dst = make([]uint64, m.cfg.NumNodes)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := range m.pending.items {
		dst[m.pending.items[i].to]++
	}
	return dst
}

// Range returns the configured transmission range in metres.
func (m *Medium) Range() float64 { return m.cfg.Range }

// NumNodes returns the node-ID space size.
func (m *Medium) NumNodes() int { return m.cfg.NumNodes }

// Send transmits a frame. For unicast the destination must be in range at
// transmit time or the frame is lost (returns 0). For Dst ==
// BroadcastAddr the frame is delivered to every in-range node. It returns
// the number of receivers the frame was queued for (pre-loss). Sending
// from a down node is a silent no-op returning 0: protocol timers can
// race with churn, and that race is real in a MANET.
func (m *Medium) Send(f Frame) int {
	if f.Src < 0 || f.Src >= m.cfg.NumNodes || !m.up[f.Src] {
		return 0
	}
	if f.Size <= 0 {
		panic("radio: Send with non-positive frame size")
	}
	m.stats[f.Src].TxFrames++
	m.stats[f.Src].TxBytes += uint64(f.Size)
	m.spendTx(f.Src, f.Size)

	if f.Dst == BroadcastAddr {
		// The fan-out iterates its own buffer, not m.scratch: deliver runs
		// the installed LinkFilter, which (fault injector) may legally call
		// Neighbors or Degree and would clobber the shared query buffer
		// mid-iteration. The reentrancy contract is documented on
		// SetLinkFilter.
		m.bscratch = m.Neighbors(m.bscratch[:0], f.Src)
		n := 0
		for _, nb := range m.bscratch {
			m.deliver(f, nb)
			n++
		}
		return n
	}
	if f.Dst < 0 || f.Dst >= m.cfg.NumNodes || !m.InRange(f.Src, f.Dst) {
		return 0
	}
	m.deliver(f, f.Dst)
	return 1
}

// deliver queues the frame for arrival at node to after latency+jitter,
// applying the loss probability. The pending record reserves its global
// sequence number here — exactly where the per-frame event used to be
// scheduled — so batching cannot reorder it against anything else.
func (m *Medium) deliver(f Frame, to int) {
	if m.filter != nil && m.filter(f.Src, to) {
		m.stats[to].Gated++
		return
	}
	if m.cfg.LossProb > 0 && m.rng.Float64() < m.cfg.LossProb {
		m.stats[to].Dropped++
		return
	}
	delay := m.cfg.Latency
	if m.cfg.Jitter > 0 {
		delay += sim.Time(m.jrng.Int63n(int64(m.cfg.Jitter) + 1))
	}
	m.stats[to].Queued++
	m.pending.push(delivery{at: m.sim.Now() + delay, seq: m.sim.ReserveSeq(), to: int32(to), idx: m.putFrame(f)})
	m.syncDrain()
}

// syncDrain keeps exactly one simulator event armed at the earliest
// pending record's (at, seq) key. Re-arming on a changed head lazily
// cancels the previous drain event; the sim purges it at peek.
func (m *Medium) syncDrain() {
	if m.draining {
		return // drainDeliveries re-syncs once the batch is done
	}
	head, ok := m.pending.peek()
	if !ok {
		if m.drainArmed {
			m.drainH.Cancel()
			m.drainArmed = false
		}
		return
	}
	if m.drainArmed {
		if head.at == m.drainAt && head.seq == m.drainSeq {
			return
		}
		m.drainH.Cancel()
	}
	m.drainH = m.sim.AtReserved(head.at, head.seq, m.drainFn)
	m.drainAt, m.drainSeq, m.drainArmed = head.at, head.seq, true
}

// drainDeliveries fires at the head record's reserved key and completes
// every pending delivery that would have run back-to-back anyway: same
// instant, and ordered before the simulator's next independent event.
// Anything later re-arms a fresh drain, preserving the exact global
// event interleaving of the one-event-per-frame design.
func (m *Medium) drainDeliveries() {
	m.drainArmed = false
	m.draining = true
	now := m.sim.Now()
	for {
		rec, ok := m.pending.peek()
		if !ok || rec.at != now {
			break
		}
		// The first record is always safe: the drain event just fired at
		// its exact key. Later records must still precede the simulator's
		// next event to run inline without reordering.
		if qt, qs, qok := m.sim.NextEvent(); qok && qt == now && qs < rec.seq {
			break
		}
		m.pending.pop()
		m.arrive(rec)
	}
	m.draining = false
	m.syncDrain()
}

// arrive completes one delivery, with the same receiver checks the
// per-frame closure used to make at fire time. The frame is read out of
// the slab by index at each use — never through a held pointer — because
// the receive callback may Send, growing the slab.
func (m *Medium) arrive(rec delivery) {
	to := int(rec.to)
	// The receiver may have left or died while the frame was in
	// flight; radio waves do not chase nodes.
	if !m.up[to] {
		m.stats[to].LostDown++
		m.releaseFrame(rec.idx)
		return
	}
	size := m.frames[rec.idx].Size
	m.stats[to].RxFrames++
	m.stats[to].RxBytes += uint64(size)
	m.spendRx(to, size)
	if m.up[to] { // spendRx may have killed it
		m.recv[to](m.frames[rec.idx])
	}
	m.releaseFrame(rec.idx)
}

func (m *Medium) spendTx(id, size int) {
	if m.battery[id].SpendTx(size) {
		m.kill(id)
	}
}

func (m *Medium) spendRx(id, size int) {
	if m.battery[id].SpendRx(size) {
		m.kill(id)
	}
}

func (m *Medium) kill(id int) {
	if !m.up[id] {
		return
	}
	m.Leave(id)
	if m.onDeath != nil {
		m.onDeath(id)
	}
}
