// Package radio models the wireless medium as a unit-disc graph: two
// nodes can exchange link-layer frames iff their distance is at most the
// transmission range (the paper uses 10 m). Frames are delivered after a
// small per-hop latency with optional jitter and loss, and every transmit
// and receive debits the sender's/receiver's battery, which is what makes
// the paper's message-count metrics proxies for network lifetime.
//
// The medium deliberately omits MAC-level contention and capture effects:
// the paper's metrics are message counts and hop distances, which are
// insensitive to MAC timing (see EXPERIMENTS.md, substitutions).
package radio

import (
	"fmt"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

// BroadcastAddr addresses a frame to every node in range of the sender.
const BroadcastAddr = -1

// Frame is one link-layer transmission unit.
type Frame struct {
	Src     int // transmitting node
	Dst     int // receiving node or BroadcastAddr
	Size    int // bytes on air, for energy/traffic accounting
	Payload any // upper-layer packet; never inspected by the medium
}

// Receiver is the upper-layer hook invoked on frame arrival.
type Receiver func(f Frame)

// LinkFilter vets each would-be frame delivery; returning true drops it
// (counted in the receiver's Gated stat). Installed by the fault
// injector to gate links (partitions, flaps) or to stack extra loss
// (jamming, loss bursts) on top of the medium's own LossProb.
type LinkFilter func(src, dst int) bool

// Config sets the physical parameters of the medium.
type Config struct {
	Arena    geom.Rect // simulation area
	Range    float64   // transmission range, metres
	NumNodes int       // node IDs are [0, NumNodes)
	Latency  sim.Time  // fixed per-hop delivery delay
	Jitter   sim.Time  // extra uniform [0, Jitter] per delivery
	LossProb float64   // independent per-delivery drop probability
	Energy   EnergyConfig
}

// Validate reports a descriptive error for out-of-range parameters.
func (c Config) Validate() error {
	switch {
	case c.Arena.W <= 0 || c.Arena.H <= 0:
		return fmt.Errorf("radio: arena %vx%v not positive", c.Arena.W, c.Arena.H)
	case c.Range <= 0:
		return fmt.Errorf("radio: range %v not positive", c.Range)
	case c.NumNodes <= 0:
		return fmt.Errorf("radio: NumNodes %d not positive", c.NumNodes)
	case c.Latency < 0 || c.Jitter < 0:
		return fmt.Errorf("radio: negative latency/jitter")
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("radio: loss probability %v outside [0,1)", c.LossProb)
	}
	return nil
}

// Stats aggregates per-node medium usage.
type Stats struct {
	TxFrames uint64
	RxFrames uint64
	TxBytes  uint64
	RxBytes  uint64
	Dropped  uint64 // deliveries lost to LossProb
	Gated    uint64 // deliveries dropped by the installed LinkFilter
}

// Medium is the shared wireless channel. Not safe for concurrent use;
// one Medium belongs to one Sim.
type Medium struct {
	cfg  Config
	sim  *sim.Sim
	grid *geom.Grid
	rng  interface{ Float64() float64 }
	jrng interface{ Int63n(int64) int64 }

	recv    []Receiver
	filter  LinkFilter
	up      []bool
	stats   []Stats
	battery []*Battery
	onDeath func(id int)

	scratch []int
}

// NewMedium creates the medium; all nodes start down (not placed) until
// Join is called for them.
func NewMedium(s *sim.Sim, cfg Config) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Medium{
		cfg:     cfg,
		sim:     s,
		grid:    geom.NewGrid(cfg.Arena, cfg.Range, cfg.NumNodes),
		rng:     s.NewRand(),
		jrng:    s.NewRand(),
		recv:    make([]Receiver, cfg.NumNodes),
		up:      make([]bool, cfg.NumNodes),
		stats:   make([]Stats, cfg.NumNodes),
		battery: make([]*Battery, cfg.NumNodes),
	}
	for i := range m.battery {
		m.battery[i] = NewBattery(cfg.Energy)
	}
	return m, nil
}

// Join places node id at p and installs its receive callback. Joining a
// node that is already up panics.
func (m *Medium) Join(id int, p geom.Point, r Receiver) {
	if m.up[id] {
		panic(fmt.Sprintf("radio: Join of already-up node %d", id))
	}
	if r == nil {
		panic("radio: Join with nil receiver")
	}
	m.up[id] = true
	m.recv[id] = r
	m.grid.Insert(id, p)
}

// Leave removes node id from the air (death, churn). In-flight frames
// addressed to it are silently lost. Leaving a down node is a no-op.
func (m *Medium) Leave(id int) {
	if !m.up[id] {
		return
	}
	m.up[id] = false
	m.grid.Remove(id)
}

// Up reports whether node id is currently on the air.
func (m *Medium) Up(id int) bool { return m.up[id] }

// SetPos moves node id (driven by the mobility tick).
func (m *Medium) SetPos(id int, p geom.Point) {
	if m.up[id] {
		m.grid.Move(id, p)
	}
}

// Pos returns the last set position of node id.
func (m *Medium) Pos(id int) geom.Point { return m.grid.Pos(id) }

// InRange reports whether a and b are both up and within range.
func (m *Medium) InRange(a, b int) bool {
	return m.up[a] && m.up[b] && m.grid.Pos(a).Dist2(m.grid.Pos(b)) <= m.cfg.Range*m.cfg.Range
}

// Neighbors appends to dst the up nodes within range of id and returns
// the extended slice.
func (m *Medium) Neighbors(dst []int, id int) []int {
	if !m.up[id] {
		return dst
	}
	return m.grid.Near(dst, m.grid.Pos(id), m.cfg.Range, id)
}

// Degree reports the number of current radio neighbors of id.
func (m *Medium) Degree(id int) int {
	m.scratch = m.Neighbors(m.scratch[:0], id)
	return len(m.scratch)
}

// Stats returns medium usage counters for node id.
func (m *Medium) Stats(id int) Stats { return m.stats[id] }

// Battery returns node id's battery for inspection.
func (m *Medium) Battery(id int) *Battery { return m.battery[id] }

// OnDeath installs a callback invoked when a node's battery empties.
func (m *Medium) OnDeath(fn func(id int)) { m.onDeath = fn }

// SetLinkFilter installs (or, with nil, removes) the per-delivery gate.
// The filter runs at transmit time, once per receiver.
func (m *Medium) SetLinkFilter(f LinkFilter) { m.filter = f }

// Range returns the configured transmission range in metres.
func (m *Medium) Range() float64 { return m.cfg.Range }

// NumNodes returns the node-ID space size.
func (m *Medium) NumNodes() int { return m.cfg.NumNodes }

// Send transmits a frame. For unicast the destination must be in range at
// transmit time or the frame is lost (returns 0). For Dst ==
// BroadcastAddr the frame is delivered to every in-range node. It returns
// the number of receivers the frame was queued for (pre-loss). Sending
// from a down node is a silent no-op returning 0: protocol timers can
// race with churn, and that race is real in a MANET.
func (m *Medium) Send(f Frame) int {
	if f.Src < 0 || f.Src >= m.cfg.NumNodes || !m.up[f.Src] {
		return 0
	}
	if f.Size <= 0 {
		panic("radio: Send with non-positive frame size")
	}
	m.stats[f.Src].TxFrames++
	m.stats[f.Src].TxBytes += uint64(f.Size)
	m.spendTx(f.Src, f.Size)

	if f.Dst == BroadcastAddr {
		m.scratch = m.Neighbors(m.scratch[:0], f.Src)
		n := 0
		for _, nb := range m.scratch {
			m.deliver(f, nb)
			n++
		}
		return n
	}
	if f.Dst < 0 || f.Dst >= m.cfg.NumNodes || !m.InRange(f.Src, f.Dst) {
		return 0
	}
	m.deliver(f, f.Dst)
	return 1
}

// deliver queues the frame for arrival at node to after latency+jitter,
// applying the loss probability.
func (m *Medium) deliver(f Frame, to int) {
	if m.filter != nil && m.filter(f.Src, to) {
		m.stats[to].Gated++
		return
	}
	if m.cfg.LossProb > 0 && m.rng.Float64() < m.cfg.LossProb {
		m.stats[to].Dropped++
		return
	}
	delay := m.cfg.Latency
	if m.cfg.Jitter > 0 {
		delay += sim.Time(m.jrng.Int63n(int64(m.cfg.Jitter) + 1))
	}
	m.sim.Schedule(delay, func() {
		// The receiver may have left or died while the frame was in
		// flight; radio waves do not chase nodes.
		if !m.up[to] {
			return
		}
		m.stats[to].RxFrames++
		m.stats[to].RxBytes += uint64(f.Size)
		m.spendRx(to, f.Size)
		if m.up[to] { // spendRx may have killed it
			m.recv[to](f)
		}
	})
}

func (m *Medium) spendTx(id, size int) {
	if m.battery[id].SpendTx(size) {
		m.kill(id)
	}
}

func (m *Medium) spendRx(id, size int) {
	if m.battery[id].SpendRx(size) {
		m.kill(id)
	}
}

func (m *Medium) kill(id int) {
	if !m.up[id] {
		return
	}
	m.Leave(id)
	if m.onDeath != nil {
		m.onDeath(id)
	}
}
