package flood

import (
	"testing"

	"manetp2p/internal/netif/conformance"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// TestConformance runs the shared netif.Protocol contract suite. Flood
// keeps no routing state, so the only send it can prove undeliverable —
// and signal — is one attempted while the sender itself is down.
func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Factory{
		Name: "flood",
		New: func(id int, s *sim.Sim, med *radio.Medium) conformance.Router {
			return NewRouter(id, s, med, Config{SeenCacheCap: 512})
		},
		SenderDownFails: true,
	})
}
