// Package flood implements the strawman network layer: every unicast is
// a TTL-bounded duplicate-suppressed flood that only the destination
// delivers. It is the "no routing protocol" baseline for the routing
// sweep — maximal robustness, maximal cost — and doubles as a reference
// implementation against which the on-demand protocols' savings are
// measured.
package flood

import (
	"fmt"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

const (
	sizeHdr = 12
)

// packet is both the unicast and broadcast carrier: Dst < 0 means
// deliver everywhere.
type packet struct {
	Origin  int
	ID      uint32
	Dst     int // -1 = broadcast
	TTL     int
	Hops    int
	Size    int
	Payload any
}

// Config tunes the flooding layer.
type Config struct {
	UnicastTTL       int      // hop budget for unicast floods
	SeenCacheTimeout sim.Time // duplicate suppression window
}

// DefaultConfig matches the other substrates' reach.
func DefaultConfig() Config {
	return Config{UnicastTTL: 20, SeenCacheTimeout: 30 * sim.Second}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.UnicastTTL <= 0 {
		c.UnicastTTL = d.UnicastTTL
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	return c
}

// Stats counts flooding activity.
type Stats struct {
	Sent    uint64
	Relayed uint64
	Dup     uint64
}

type seenKey struct {
	origin int
	id     uint32
}

// Router is the per-node flooding instance; it satisfies netif.Protocol.
type Router struct {
	id   int
	sim  *sim.Sim
	med  *radio.Medium
	cfg  Config
	next uint32
	seen map[seenKey]sim.Time
	// lastHops remembers the hop distance of the last packet received
	// from each origin — the only distance estimate flooding has.
	lastHops map[int]int
	stats    Stats

	onBroadcast  func(netif.Delivery)
	onUnicast    func(netif.Delivery)
	onSendFailed func(dst int, payload any)

	// Bound once at construction so self-delivery schedules without a
	// per-call closure allocation.
	selfDeliverFn func(sim.Arg)
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the flooding layer for node id.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	r := &Router{
		id:       id,
		sim:      s,
		med:      med,
		cfg:      cfg.withDefaults(),
		seen:     make(map[seenKey]sim.Time),
		lastHops: make(map[int]int),
	}
	r.selfDeliverFn = r.selfDeliver
	return r
}

// selfDeliver completes a Send addressed to this node on the next
// event-loop turn.
func (r *Router) selfDeliver(a sim.Arg) {
	if r.onUnicast != nil {
		r.onUnicast(netif.Delivery{From: r.id, Hops: 0, Payload: a.X})
	}
}

// ID returns the node this router belongs to.
func (r *Router) ID() int { return r.id }

// Stats returns activity counters.
func (r *Router) Stats() Stats { return r.stats }

// OnBroadcast installs the flood delivery hook.
func (r *Router) OnBroadcast(fn func(netif.Delivery)) { r.onBroadcast = fn }

// OnUnicast installs the data delivery hook.
func (r *Router) OnUnicast(fn func(netif.Delivery)) { r.onUnicast = fn }

// OnSendFailed installs the undeliverable hook. Flooding gets no
// feedback, so it only fires for sends from a down node — silence is
// the usual failure mode.
func (r *Router) OnSendFailed(fn func(dst int, payload any)) { r.onSendFailed = fn }

// HopsTo reports the hop distance of the most recent packet received
// from dst, flooding's only distance estimate.
func (r *Router) HopsTo(dst int) (int, bool) {
	h, ok := r.lastHops[dst]
	return h, ok
}

// Broadcast floods payload within ttl hops.
func (r *Router) Broadcast(ttl, size int, payload any) {
	if ttl <= 0 {
		panic("flood: Broadcast with non-positive TTL")
	}
	r.emit(packet{Dst: -1, TTL: ttl, Size: size, Payload: payload})
}

// Send floods payload with the unicast TTL; only dst delivers it.
func (r *Router) Send(dst, size int, payload any) {
	if dst == r.id {
		r.sim.ScheduleArg(0, r.selfDeliverFn, sim.Arg{X: payload})
		return
	}
	r.emit(packet{Dst: dst, TTL: r.cfg.UnicastTTL, Size: size, Payload: payload})
}

func (r *Router) emit(pkt packet) {
	if !r.med.Up(r.id) {
		if pkt.Dst >= 0 && r.onSendFailed != nil {
			r.onSendFailed(pkt.Dst, pkt.Payload)
		}
		return
	}
	r.next++
	pkt.Origin = r.id
	pkt.ID = r.next
	r.markSeen(seenKey{r.id, pkt.ID})
	r.stats.Sent++
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: pkt.Size + sizeHdr, Payload: pkt})
}

// HandleFrame is the radio receive callback.
func (r *Router) HandleFrame(f radio.Frame) {
	pkt, ok := f.Payload.(packet)
	if !ok {
		panic(fmt.Sprintf("flood: unknown payload type %T", f.Payload))
	}
	if pkt.Origin == r.id {
		return
	}
	k := seenKey{pkt.Origin, pkt.ID}
	if r.haveSeen(k) {
		r.stats.Dup++
		return
	}
	r.markSeen(k)
	pkt.Hops++
	r.lastHops[pkt.Origin] = pkt.Hops
	switch {
	case pkt.Dst < 0:
		if r.onBroadcast != nil {
			r.onBroadcast(netif.Delivery{From: pkt.Origin, Hops: pkt.Hops, Payload: pkt.Payload})
		}
	case pkt.Dst == r.id:
		if r.onUnicast != nil {
			r.onUnicast(netif.Delivery{From: pkt.Origin, Hops: pkt.Hops, Payload: pkt.Payload})
		}
		return // the destination need not keep relaying
	}
	if pkt.TTL > 1 {
		pkt.TTL--
		r.stats.Relayed++
		r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: pkt.Size + sizeHdr, Payload: pkt})
	}
}

func (r *Router) haveSeen(k seenKey) bool {
	t, ok := r.seen[k]
	return ok && r.sim.Now()-t < r.cfg.SeenCacheTimeout
}

func (r *Router) markSeen(k seenKey) {
	if len(r.seen) > 8192 {
		cutoff := r.sim.Now() - r.cfg.SeenCacheTimeout
		for key, t := range r.seen {
			if t < cutoff {
				delete(r.seen, key)
			}
		}
	}
	r.seen[k] = r.sim.Now()
}
