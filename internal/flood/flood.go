// Package flood implements the strawman network layer: every unicast is
// a TTL-bounded duplicate-suppressed flood that only the destination
// delivers. It is the "no routing protocol" baseline for the routing
// sweep — maximal robustness, maximal cost — and doubles as a reference
// implementation against which the on-demand protocols' savings are
// measured.
package flood

import (
	"fmt"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/route"
	"manetp2p/internal/sim"
)

const (
	sizeHdr = 12
)

// Frames travel as netif.Packet values (no per-hop boxing). Flooded
// unicasts are PktData packets (Origin, ID for duplicate suppression,
// Dst, TTL, HopCount, Size, Msg) that only Dst delivers; controlled
// broadcasts are the shared PktBcast carrier.

// Config tunes the flooding layer.
type Config struct {
	UnicastTTL       int      // hop budget for unicast floods
	SeenCacheTimeout sim.Time // duplicate suppression window
	SeenCacheCap     int      // soft entry bound per duplicate cache
}

// DefaultConfig matches the other substrates' reach.
func DefaultConfig() Config {
	return Config{
		UnicastTTL:       20,
		SeenCacheTimeout: 30 * sim.Second,
		SeenCacheCap:     route.DefaultSoftCap,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.UnicastTTL <= 0 {
		c.UnicastTTL = d.UnicastTTL
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.SeenCacheCap <= 0 {
		c.SeenCacheCap = d.SeenCacheCap
	}
	return c
}

// Router is the per-node flooding instance; it satisfies netif.Protocol.
type Router struct {
	*route.Core
	med    *radio.Medium
	cfg    Config
	bcast  *route.Bcaster
	seen   *route.DupCache
	nextID uint32
	// lastHops remembers the hop distance of the last packet received
	// from each origin — the only distance estimate flooding has.
	lastHops map[int]int
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the flooding layer for node id.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	cfg = cfg.withDefaults()
	core := route.NewCore(id, s)
	cache := route.CacheConfig{Timeout: cfg.SeenCacheTimeout, SoftCap: cfg.SeenCacheCap}
	r := &Router{
		Core:     core,
		med:      med,
		cfg:      cfg,
		bcast:    route.NewBcaster(core, med, sizeHdr, 0, cache),
		seen:     route.NewDupCache(core, cache),
		lastHops: make(map[int]int),
	}
	r.bcast.Accept = r.acceptBcast
	return r
}

// acceptBcast records the hop distance broadcasts reveal.
func (r *Router) acceptBcast(prev int, b *netif.Packet) int {
	r.lastHops[b.Origin] = b.HopCount
	return b.HopCount
}

// HopsTo reports the hop distance of the most recent packet received
// from dst, flooding's only distance estimate.
func (r *Router) HopsTo(dst int) (int, bool) {
	h, ok := r.lastHops[dst]
	return h, ok
}

// Broadcast floods payload within ttl hops.
func (r *Router) Broadcast(ttl, size int, payload netif.Msg) {
	if ttl <= 0 {
		panic("flood: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.ID()) {
		return
	}
	r.bcast.Originate(ttl, size, payload, 0)
}

// Send floods payload with the unicast TTL; only dst delivers it.
// Flooding gets no failure feedback, so OnSendFailed only fires for
// sends from a down node — silence is the usual failure mode.
func (r *Router) Send(dst, size int, payload netif.Msg) {
	if dst == r.ID() {
		r.SelfDeliver(payload)
		return
	}
	r.Count.DataSent++
	if !r.med.Up(r.ID()) {
		r.FailSend(dst, payload)
		return
	}
	r.nextID++
	pkt := netif.Packet{Kind: netif.PktData, Origin: r.ID(), ID: r.nextID, Dst: dst, TTL: r.cfg.UnicastTTL, Size: size, Msg: payload}
	r.seen.Mark(route.Key{Origin: r.ID(), ID: pkt.ID})
	r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: pkt.Size + sizeHdr, Payload: pkt})
}

// HandleFrame is the radio receive callback.
func (r *Router) HandleFrame(f radio.Frame) {
	switch f.Payload.Kind {
	case netif.PktBcast:
		r.bcast.Handle(f.Src, f.Payload)
	case netif.PktData:
		r.handleUnicast(f.Payload)
	default:
		panic(fmt.Sprintf("flood: unknown packet kind %d", f.Payload.Kind))
	}
}

func (r *Router) handleUnicast(pkt netif.Packet) {
	if pkt.Origin == r.ID() {
		return
	}
	k := route.Key{Origin: pkt.Origin, ID: pkt.ID}
	if r.seen.Seen(k) {
		r.Count.DupHits++
		return
	}
	r.seen.Mark(k)
	pkt.HopCount++
	r.lastHops[pkt.Origin] = pkt.HopCount
	if pkt.Dst == r.ID() {
		r.DeliverUnicast(pkt.Origin, pkt.HopCount, pkt.Msg)
		return // the destination need not keep relaying
	}
	if pkt.TTL > 1 {
		pkt.TTL--
		r.Count.DataForwarded++
		r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: pkt.Size + sizeHdr, Payload: pkt})
	}
}
