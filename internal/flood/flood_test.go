package flood

import (
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

type testNet struct {
	s       *sim.Sim
	med     *radio.Medium
	routers []*Router
	unicast [][]netif.Delivery
	bcasts  [][]netif.Delivery
}

func newTestNet(t *testing.T, seed int64, pts []geom.Point, cfg Config) *testNet {
	t.Helper()
	s := sim.New(seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: len(pts),
		Latency:  2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{
		s:       s,
		med:     med,
		routers: make([]*Router, len(pts)),
		unicast: make([][]netif.Delivery, len(pts)),
		bcasts:  make([][]netif.Delivery, len(pts)),
	}
	for i, p := range pts {
		i := i
		r := NewRouter(i, s, med, cfg)
		r.OnUnicast(func(d netif.Delivery) { n.unicast[i] = append(n.unicast[i], d) })
		r.OnBroadcast(func(d netif.Delivery) { n.bcasts[i] = append(n.bcasts[i], d) })
		med.Join(i, p, r.HandleFrame)
		n.routers[i] = r
	}
	return n
}

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 5 + 8*float64(i), Y: 50}
	}
	return pts
}

func TestUnicastDeliveredByFlood(t *testing.T) {
	n := newTestNet(t, 1, line(5), Config{})
	n.routers[0].Send(4, 10, netif.TestMsg(1))
	n.s.Run(5 * sim.Second)
	if len(n.unicast[4]) != 1 || n.unicast[4][0].Hops != 4 {
		t.Fatalf("deliveries = %+v, want one at 4 hops", n.unicast[4])
	}
	// Non-destinations relay but never deliver.
	for i := 1; i < 4; i++ {
		if len(n.unicast[i]) != 0 {
			t.Errorf("relay %d delivered a unicast not addressed to it", i)
		}
	}
	// No routing state needed: HopsTo works only from received traffic.
	if _, ok := n.routers[0].HopsTo(4); ok {
		t.Error("origin has a distance estimate without receiving anything")
	}
	if h, ok := n.routers[4].HopsTo(0); !ok || h != 4 {
		t.Errorf("receiver HopsTo(0) = (%d,%v), want (4,true)", h, ok)
	}
}

func TestUnicastTTLBound(t *testing.T) {
	cfg := Config{UnicastTTL: 3}
	n := newTestNet(t, 2, line(6), cfg)
	n.routers[0].Send(5, 10, netif.TestMsg(2))
	n.s.Run(5 * sim.Second)
	if len(n.unicast[5]) != 0 {
		t.Error("flood delivered beyond its TTL")
	}
	n.routers[0].Send(3, 10, netif.TestMsg(3))
	n.s.Run(10 * sim.Second)
	if len(n.unicast[3]) != 1 {
		t.Error("flood within TTL not delivered")
	}
}

func TestBroadcastReach(t *testing.T) {
	n := newTestNet(t, 3, line(6), Config{})
	n.routers[0].Broadcast(2, 10, netif.TestMsg(4))
	n.s.Run(sim.Second)
	for i := 1; i <= 2; i++ {
		if len(n.bcasts[i]) != 1 || n.bcasts[i][0].Hops != i {
			t.Errorf("node %d = %+v, want one delivery at %d hops", i, n.bcasts[i], i)
		}
	}
	for i := 3; i < 6; i++ {
		if len(n.bcasts[i]) != 0 {
			t.Errorf("node %d beyond TTL reached", i)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	pts := make([]geom.Point, 9)
	for i := range pts {
		pts[i] = geom.Point{X: 50 + float64(i%3), Y: 50 + float64(i/3)}
	}
	n := newTestNet(t, 4, pts, Config{})
	n.routers[0].Send(8, 10, netif.TestMsg(5))
	n.s.Run(sim.Second)
	if len(n.unicast[8]) != 1 {
		t.Fatalf("deliveries = %d, want exactly 1 despite many paths", len(n.unicast[8]))
	}
	var dups uint64
	for _, r := range n.routers {
		dups += r.Stats().DupHits
	}
	if dups == 0 {
		t.Error("no duplicates suppressed in a clique")
	}
}

func TestDestinationDoesNotRelay(t *testing.T) {
	// Chain 0-1-2: when 1 is the destination, 2 must not receive the
	// packet at all (1 stops relaying).
	n := newTestNet(t, 5, line(3), Config{})
	n.routers[0].Send(1, 10, netif.TestMsg(6))
	n.s.Run(5 * sim.Second)
	if got := n.routers[2].Stats().DupHits + n.routers[2].Stats().DataForwarded; got != 0 {
		t.Errorf("node past the destination saw traffic (dup+relay=%d)", got)
	}
}

func TestSendToSelf(t *testing.T) {
	n := newTestNet(t, 6, line(2), Config{})
	n.routers[0].Send(0, 10, netif.TestMsg(7))
	n.s.Run(sim.Second)
	if len(n.unicast[0]) != 1 || n.unicast[0][0].Hops != 0 {
		t.Fatalf("self delivery = %+v", n.unicast[0])
	}
}

func TestDownNodeFailsSend(t *testing.T) {
	n := newTestNet(t, 7, line(2), Config{})
	failed := 0
	n.routers[0].OnSendFailed(func(int, netif.Msg) { failed++ })
	n.med.Leave(0)
	n.routers[0].Send(1, 10, netif.TestMsg(8))
	n.s.Run(sim.Second)
	if failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	if len(n.unicast[1]) != 0 {
		t.Error("down node transmitted")
	}
}
