// Package manet assembles one complete simulated world: a mobile ad-hoc
// network (mobility + radio + AODV) with a peer-to-peer overlay running
// one of the paper's four (re)configuration algorithms on a subset of
// the nodes. One Network is one replication; the paper's experiments run
// 33 of them (see the stats package and the root manetp2p package).
package manet

import (
	"fmt"
	"math/rand"

	"manetp2p/internal/aodv"
	"manetp2p/internal/dsdv"
	"manetp2p/internal/dsr"
	"manetp2p/internal/fault"
	"manetp2p/internal/flood"
	"manetp2p/internal/geom"
	"manetp2p/internal/graphs"
	"manetp2p/internal/invariant"
	"manetp2p/internal/mobility"
	"manetp2p/internal/netif"
	"manetp2p/internal/p2p"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/trace"
	"manetp2p/internal/workload"
)

// RoutingKind selects the network-layer protocol under the overlay.
type RoutingKind int

const (
	// RoutingAODV is the paper's choice (§4).
	RoutingAODV RoutingKind = iota
	// RoutingDSR is Dynamic Source Routing, the classic on-demand
	// comparator from the study the paper bases its choice on.
	RoutingDSR
	// RoutingFlood is the no-routing baseline: every unicast floods.
	RoutingFlood
	// RoutingDSDV is the proactive distance-vector protocol, the third
	// member of the classic MANET routing comparison.
	RoutingDSDV
)

// String names the routing protocol.
func (k RoutingKind) String() string {
	switch k {
	case RoutingAODV:
		return "AODV"
	case RoutingDSR:
		return "DSR"
	case RoutingFlood:
		return "Flood"
	case RoutingDSDV:
		return "DSDV"
	default:
		return fmt.Sprintf("routing(%d)", int(k))
	}
}

// NodeRouter is a routing instance bound to one node: the overlay-facing
// protocol plus the radio receive hook.
type NodeRouter interface {
	netif.Protocol
	HandleFrame(radio.Frame)
}

// MobilityKind selects the movement model.
type MobilityKind int

const (
	// MobilityWaypoint is the paper's Random Waypoint model.
	MobilityWaypoint MobilityKind = iota
	// MobilityStationary freezes all nodes (static-topology studies).
	MobilityStationary
	// MobilityWalk is a reflecting random walk (mobility sweeps).
	MobilityWalk
	// MobilityDirection is the Random Direction model (wall-to-wall
	// legs; avoids the waypoint center-density bias).
	MobilityDirection
	// MobilityGaussMarkov is the temporally correlated Gauss-Markov
	// model (smooth trajectories).
	MobilityGaussMarkov
)

// MobilityConfig parameterizes node movement. The paper's values:
// max speed 1.0 m/s, max pause 100 s.
type MobilityConfig struct {
	Kind     MobilityKind
	MinSpeed float64  // m/s; must be > 0 for moving models
	MaxSpeed float64  // m/s
	MaxPause sim.Time // waypoint only
	Tick     sim.Time // position-update period
}

// DefaultMobility returns the paper's mobility settings.
func DefaultMobility() MobilityConfig {
	return MobilityConfig{
		Kind:     MobilityWaypoint,
		MinSpeed: 0.1,
		MaxSpeed: 1.0,
		MaxPause: 100 * sim.Second,
		Tick:     500 * sim.Millisecond,
	}
}

// QualifierKind selects how hybrid qualifiers are assigned.
type QualifierKind int

const (
	// QualUniform draws each node's qualifier uniformly from [0,1) —
	// a heterogeneous population with a total order.
	QualUniform QualifierKind = iota
	// QualClasses draws from weighted device classes (e.g. phone, PDA,
	// notebook), the scenario §6.2 motivates.
	QualClasses
)

// QualClass is one device class for QualClasses.
type QualClass struct {
	Value  float64 // qualifier assigned to nodes of this class
	Weight float64 // relative frequency
}

// QualifierConfig parameterizes qualifier assignment.
type QualifierConfig struct {
	Kind    QualifierKind
	Classes []QualClass // used by QualClasses
}

// DefaultQualifiers returns uniform qualifiers.
func DefaultQualifiers() QualifierConfig { return QualifierConfig{Kind: QualUniform} }

// DeviceClasses returns the paper-motivated heterogeneous population:
// cellular phones, PDAs and notebooks (§1, §6.2).
func DeviceClasses() QualifierConfig {
	return QualifierConfig{Kind: QualClasses, Classes: []QualClass{
		{Value: 0.2, Weight: 0.5}, // phone
		{Value: 0.5, Weight: 0.3}, // PDA
		{Value: 0.9, Weight: 0.2}, // notebook
	}}
}

// ChurnConfig drives the death/birth process from the paper's future
// work: while enabled, every member alternates between up periods of
// mean MeanUptime and down periods of mean MeanDowntime (both
// exponential). Zero MeanUptime disables churn.
type ChurnConfig struct {
	MeanUptime   sim.Time
	MeanDowntime sim.Time
}

// Config describes one replication.
type Config struct {
	Seed           int64
	NumNodes       int
	MemberFraction float64 // fraction of nodes in the p2p overlay (0.75)
	Arena          geom.Rect
	Range          float64 // radio range, metres

	Algorithm p2p.Algorithm
	Params    p2p.Params
	Files     p2p.FileConfig
	NoQueries bool

	Mobility   MobilityConfig
	Qualifiers QualifierConfig
	Churn      ChurnConfig

	// Radio details.
	Latency  sim.Time
	Jitter   sim.Time
	LossProb float64
	Energy   radio.EnergyConfig

	// Routing.
	Routing RoutingKind
	AODV    aodv.Config
	DSR     dsr.Config
	Flood   flood.Config
	DSDV    dsdv.Config

	// TraceCapacity > 0 enables structured event tracing with the given
	// buffer size; the tracer is exposed as Network.Tracer.
	TraceCapacity int

	// TrafficBucket > 0 enables time-bucketed message-rate series in the
	// collector (Collector.Series), e.g. 60 s buckets.
	TrafficBucket sim.Time

	// Faults optionally scripts targeted failures (partitions, jamming,
	// loss bursts, correlated crashes, link flaps) executed by an
	// injector wired into the medium and the node lifecycle. The
	// injector draws from its own RNG stream, so same seed + same plan
	// reproduce the same failures.
	Faults fault.Plan

	// Workload optionally replaces the paper's built-in per-servent
	// query loop (uniform 15–45 s gaps, uniform picks) with the
	// scriptable demand engine: pluggable arrival processes, evolving
	// Zipf popularity, session classes composing with Churn, and a
	// phase timeline. Nil keeps runs bit-identical to older builds with
	// the same seed (the engine's RNG stream is gated on the plan, like
	// the fault injector's).
	Workload *workload.Plan

	// HealthEvery > 0 samples overlay health (largest-component
	// fraction, link count, cumulative per-class message totals) into
	// the Collector at this period — the resilience telemetry the
	// recovery metrics are derived from.
	HealthEvery sim.Time

	// Invariants optionally arms the runtime invariant checker
	// (internal/invariant). Off by default: a disabled checker wires no
	// events and costs nothing. The checker only observes, so enabling
	// it does not change the replication's results.
	Invariants invariant.Config
}

// DefaultConfig returns the paper's Table 2 scenario with n nodes.
func DefaultConfig(n int, alg p2p.Algorithm) Config {
	return Config{
		Seed:           1,
		NumNodes:       n,
		MemberFraction: 0.75,
		Arena:          geom.Rect{W: 100, H: 100},
		Range:          10,
		Algorithm:      alg,
		Params:         p2p.DefaultParams(),
		Files:          p2p.DefaultFileConfig(),
		Mobility:       DefaultMobility(),
		Qualifiers:     DefaultQualifiers(),
		Latency:        2 * sim.Millisecond,
		Jitter:         sim.Millisecond,
	}
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	switch {
	case c.NumNodes < 1:
		return fmt.Errorf("manet: NumNodes %d < 1", c.NumNodes)
	case c.MemberFraction <= 0 || c.MemberFraction > 1:
		return fmt.Errorf("manet: MemberFraction %v outside (0,1]", c.MemberFraction)
	case c.Arena.W <= 0 || c.Arena.H <= 0:
		return fmt.Errorf("manet: empty arena")
	case c.Range <= 0:
		return fmt.Errorf("manet: Range %v not positive", c.Range)
	case c.Mobility.Tick <= 0:
		return fmt.Errorf("manet: mobility tick %v not positive", c.Mobility.Tick)
	case c.Churn.MeanUptime < 0 || c.Churn.MeanDowntime < 0:
		return fmt.Errorf("manet: negative churn periods")
	case c.HealthEvery < 0:
		return fmt.Errorf("manet: HealthEvery %v negative", c.HealthEvery)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("manet: fault plan: %w", err)
	}
	if c.Workload != nil {
		if err := c.Workload.Validate(); err != nil {
			return fmt.Errorf("manet: workload plan: %w", err)
		}
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Invariants.Validate(); err != nil {
		return err
	}
	return c.Files.Validate()
}

// Network is one fully wired replication.
type Network struct {
	Cfg       Config
	Sim       *sim.Sim
	Medium    *radio.Medium
	Routers   []NodeRouter
	Servents  []*p2p.Servent // nil for nodes outside the overlay
	Collector *telemetry.Collector
	Tracer    *trace.Tracer      // nil unless Config.TraceCapacity > 0
	Injector  *fault.Injector    // nil unless Config.Faults has events
	Checker   *invariant.Checker // nil unless Config.Invariants.Enabled
	Demand    *workload.Engine   // nil unless Config.Workload is set

	models      []mobility.Model
	member      []bool
	membersList []int  // member ids in id order, fixed at Build (see Members)
	dead        []bool // battery-exhausted, never comes back
	churnRNG    *rand.Rand
	posTicker   *sim.Ticker
	churnEvents uint64 // churn departures executed (overlay repair-cost basis)

	// Overlay-snapshot scratch: the health sampler's analytics engine,
	// the peer-id buffer AppendOverlayAdjacency fills rows from, and the
	// member predicate bound once so per-tick sampling allocates nothing.
	analyzer graphs.Analyzer
	peerBuf  []int
	peerOff  []int32
	memberFn func(int) bool

	// Churn callbacks bound once so re-arming allocates nothing.
	churnDownFn func(sim.Arg)
	churnUpFn   func(sim.Arg)
}

// Build constructs and wires a Network; nodes are placed uniformly at
// random, members join at t=0 (with the servents' own small stagger).
func Build(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := sim.New(cfg.Seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    cfg.Arena,
		Range:    cfg.Range,
		NumNodes: cfg.NumNodes,
		Latency:  cfg.Latency,
		Jitter:   cfg.Jitter,
		LossProb: cfg.LossProb,
		Energy:   cfg.Energy,
	})
	if err != nil {
		return nil, err
	}
	n := &Network{
		Cfg:       cfg,
		Sim:       s,
		Medium:    med,
		Routers:   make([]NodeRouter, cfg.NumNodes),
		Servents:  make([]*p2p.Servent, cfg.NumNodes),
		Collector: telemetry.NewCollector(cfg.NumNodes),
		models:    make([]mobility.Model, cfg.NumNodes),
		member:    make([]bool, cfg.NumNodes),
		dead:      make([]bool, cfg.NumNodes),
		churnRNG:  s.NewRand(),
	}
	n.churnDownFn = n.churnDown
	n.churnUpFn = n.churnUp
	if cfg.TraceCapacity > 0 {
		n.Tracer = trace.New(s, cfg.TraceCapacity)
	}
	if cfg.TrafficBucket > 0 {
		n.Collector.SetClock(s.Now, cfg.TrafficBucket)
	}

	// Membership: a random MemberFraction of the nodes join the overlay.
	setupRNG := s.NewRand()
	perm := setupRNG.Perm(cfg.NumNodes)
	numMembers := int(float64(cfg.NumNodes)*cfg.MemberFraction + 0.5)
	if numMembers < 1 {
		numMembers = 1
	}
	for _, i := range perm[:numMembers] {
		n.member[i] = true
	}
	n.membersList = make([]int, 0, numMembers)
	for i, m := range n.member {
		if m {
			n.membersList = append(n.membersList, i)
		}
	}
	n.memberFn = n.IsMember

	// File placement over members only (ranks map member order).
	var held [][]bool
	if !cfg.NoQueries {
		held = cfg.Files.PlaceFiles(numMembers, setupRNG)
	}

	// Qualifiers.
	quals := assignQualifiers(cfg.Qualifiers, cfg.NumNodes, setupRNG)

	// Scripted demand. Gated on the plan (like the fault injector) so
	// plan-free runs create no extra RNG stream and stay bit-identical.
	if cfg.Workload != nil {
		n.Demand = workload.New(s, s.NewRand(), *cfg.Workload, cfg.NumNodes, cfg.Files.NumFiles, n.Tracer)
	}

	memberIdx := 0
	for i := 0; i < cfg.NumNodes; i++ {
		start := cfg.Arena.RandomPoint(setupRNG)
		n.models[i] = newModel(cfg.Mobility, cfg.Arena, start, s.NewRand())
		var rt NodeRouter
		switch cfg.Routing {
		case RoutingDSR:
			rt = dsr.NewRouter(i, s, med, cfg.DSR)
		case RoutingFlood:
			rt = flood.NewRouter(i, s, med, cfg.Flood)
		case RoutingDSDV:
			rt = dsdv.NewRouter(i, s, med, cfg.DSDV)
		default:
			rt = aodv.NewRouter(i, s, med, cfg.AODV)
		}
		n.Routers[i] = rt
		med.Join(i, start, rt.HandleFrame)
		if !n.member[i] {
			continue
		}
		opt := p2p.Options{
			Qualifier: quals[i],
			Collector: n.Collector,
			RNG:       s.NewRand(),
			NoQueries: cfg.NoQueries,
			Tracer:    n.Tracer,
		}
		if n.Demand != nil {
			// Guarded: assigning a nil *Engine would make a non-nil
			// interface and disable the built-in model.
			opt.Demand = n.Demand
		}
		if held != nil {
			opt.Files = held[memberIdx]
		}
		memberIdx++
		sv := p2p.NewServent(i, s, rt, cfg.Params, cfg.Algorithm, opt)
		rt.OnUnicast(sv.HandleUnicast)
		rt.OnBroadcast(sv.HandleBroadcast)
		n.Servents[i] = sv
	}

	// Battery deaths are permanent.
	med.OnDeath(func(id int) {
		n.dead[id] = true
		n.Tracer.Emit(trace.KindNode, id, -1, "battery death")
		if sv := n.Servents[id]; sv != nil {
			sv.Leave(false)
		}
	})

	// Mobility tick.
	n.posTicker = sim.NewTicker(s, cfg.Mobility.Tick, n.tickPositions)

	// Overlay join + churn processes.
	for i := 0; i < cfg.NumNodes; i++ {
		if sv := n.Servents[i]; sv != nil {
			sv.Join()
			if n.churnEnabled(i) {
				n.scheduleChurnDown(i)
			}
		}
	}

	// Resilience telemetry and scripted fault injection. Both are
	// gated so fault-free runs allocate no extra RNG streams and stay
	// bit-identical to earlier builds with the same seed.
	if cfg.HealthEvery > 0 {
		sim.NewTicker(s, cfg.HealthEvery, n.sampleHealth)
	}
	if !cfg.Faults.Empty() {
		n.Injector = fault.New(s, s.NewRand(), cfg.Faults, fault.Hooks{
			Pos:           med.Pos,
			Up:            med.Up,
			SetLinkFilter: func(f func(src, dst int) bool) { med.SetLinkFilter(f) },
			NodeDown:      n.ForceDown,
			NodeUp:        n.ForceUp,
			Members:       n.Members,
		})
		n.Injector.Arm()
	}
	if cfg.Invariants.Enabled {
		n.Checker = invariant.New(cfg.Invariants, invariant.Target{
			Sim:          s,
			Medium:       med,
			Collector:    n.Collector,
			Servents:     n.Servents,
			Algorithm:    cfg.Algorithm,
			Params:       cfg.Params,
			RoutingStats: func(i int) netif.Stats { return n.Routers[i].Stats() },
			Demand:       n.Demand,
			Adjacency:    n.AppendOverlayAdjacency,
		})
		n.Checker.Attach()
	}
	return n, nil
}

// RoutingStats snapshots every node's routing-effort counters — the
// unified netif.Stats contract all four substrates implement.
func (n *Network) RoutingStats() []netif.Stats {
	out := make([]netif.Stats, len(n.Routers))
	for i, rt := range n.Routers {
		out[i] = rt.Stats()
	}
	return out
}

// ForceDown crashes node i: its servent leaves the overlay and its
// radio goes silent. Used by the fault injector — distinct from churn,
// which draws its own schedule. Dead or already-down nodes are no-ops.
func (n *Network) ForceDown(i int) {
	if n.dead[i] || !n.Medium.Up(i) {
		return
	}
	n.Tracer.Emit(trace.KindNode, i, -1, "fault down")
	if sv := n.Servents[i]; sv != nil {
		sv.Leave(false)
	}
	n.Medium.Leave(i)
}

// ForceUp restarts a crashed node at its current mobility position.
// Battery-dead or already-up nodes are no-ops.
func (n *Network) ForceUp(i int) {
	if n.dead[i] || n.Medium.Up(i) {
		return
	}
	n.Tracer.Emit(trace.KindNode, i, -1, "fault up")
	n.Medium.Join(i, n.models[i].Pos(n.Sim.Now()), n.Routers[i].HandleFrame)
	if sv := n.Servents[i]; sv != nil {
		sv.Join()
	}
}

// sampleHealth records one resilience telemetry point: overlay
// connectivity plus the cumulative message totals. It serves both the
// HealthEvery telemetry and the fault plans' recovery metrics, and runs
// every few seconds — so it goes through the allocation-free Analyzer
// rather than rebuilding a graphs.Graph per sample.
func (n *Network) sampleHealth() {
	n.AppendOverlayAdjacency(&n.analyzer.S)
	m := n.analyzer.Analyze(n.memberFn)
	h := telemetry.HealthSample{
		At:          n.Sim.Now(),
		LargestComp: m.Largest,
		Links:       m.Edges,
	}
	for c := 0; c < telemetry.NumClasses; c++ {
		h.Received[c] = n.Collector.TotalReceived(telemetry.Class(c))
	}
	n.Collector.RecordHealth(h)
}

func newModel(cfg MobilityConfig, arena geom.Rect, start geom.Point, rng *rand.Rand) mobility.Model {
	switch cfg.Kind {
	case MobilityStationary:
		return mobility.Stationary{P: start}
	case MobilityWalk:
		return mobility.NewWalk(arena, start, cfg.MinSpeed, cfg.MaxSpeed, 20*sim.Second, rng)
	case MobilityDirection:
		return mobility.NewDirection(arena, start, cfg.MinSpeed, cfg.MaxSpeed, cfg.MaxPause, rng)
	case MobilityGaussMarkov:
		return mobility.NewGaussMarkov(arena, start, (cfg.MinSpeed+cfg.MaxSpeed)/2, 0.75, sim.Second, rng)
	default:
		return mobility.NewWaypoint(arena, start, cfg.MinSpeed, cfg.MaxSpeed, cfg.MaxPause, rng)
	}
}

func assignQualifiers(cfg QualifierConfig, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	switch cfg.Kind {
	case QualClasses:
		total := 0.0
		for _, c := range cfg.Classes {
			total += c.Weight
		}
		for i := range out {
			r := rng.Float64() * total
			for _, c := range cfg.Classes {
				if r < c.Weight {
					out[i] = c.Value
					break
				}
				r -= c.Weight
			}
		}
	default:
		for i := range out {
			out[i] = rng.Float64()
		}
	}
	return out
}

// tickPositions advances every live node's position.
func (n *Network) tickPositions() {
	now := n.Sim.Now()
	for i, m := range n.models {
		if n.Medium.Up(i) {
			n.Medium.SetPos(i, m.Pos(now))
		}
	}
}

// churnEnabled reports whether member i alternates up/down periods:
// either the scenario configures global churn, or the node's workload
// session class carries its own absolute churn means.
func (n *Network) churnEnabled(i int) bool {
	if n.Cfg.Churn.MeanUptime > 0 {
		return true
	}
	return n.Demand != nil && n.Demand.SessionChurn(i)
}

// churnMeans composes the scenario's churn means with member i's
// workload session class (absolute class means win; otherwise the class
// scales the base).
func (n *Network) churnMeans(i int) (up, down sim.Time) {
	up, down = n.Cfg.Churn.MeanUptime, n.Cfg.Churn.MeanDowntime
	if n.Demand != nil {
		up, down = n.Demand.ChurnMeans(i, up, down)
	}
	return up, down
}

// ChurnEvents counts churn departures executed so far — the
// denominator of the overlay repair-cost-per-churn-event telemetry.
func (n *Network) ChurnEvents() uint64 { return n.churnEvents }

// scheduleChurnDown arms the next departure for member i.
func (n *Network) scheduleChurnDown(i int) {
	up, _ := n.churnMeans(i)
	n.Sim.ScheduleArg(expDuration(n.churnRNG, up), n.churnDownFn, sim.Arg{I0: i})
}

func (n *Network) churnDown(a sim.Arg) {
	i := a.I0
	if n.dead[i] || !n.Medium.Up(i) {
		return
	}
	n.churnEvents++
	n.Tracer.Emit(trace.KindNode, i, -1, "churn down")
	if sv := n.Servents[i]; sv != nil {
		sv.Leave(false)
	}
	n.Medium.Leave(i)
	n.scheduleChurnUp(i)
}

// scheduleChurnUp arms the next return for member i.
func (n *Network) scheduleChurnUp(i int) {
	_, down := n.churnMeans(i)
	n.Sim.ScheduleArg(expDuration(n.churnRNG, down), n.churnUpFn, sim.Arg{I0: i})
}

func (n *Network) churnUp(a sim.Arg) {
	i := a.I0
	if n.dead[i] || n.Medium.Up(i) {
		return
	}
	n.Tracer.Emit(trace.KindNode, i, -1, "churn up")
	n.Medium.Join(i, n.models[i].Pos(n.Sim.Now()), n.Routers[i].HandleFrame)
	if sv := n.Servents[i]; sv != nil {
		sv.Join()
	}
	n.scheduleChurnDown(i)
}

// expDuration draws an exponential duration with the given mean,
// clamped to at least one second so churn cannot livelock the sim.
func expDuration(rng *rand.Rand, mean sim.Time) sim.Time {
	d := sim.FromSeconds(rng.ExpFloat64() * mean.Seconds())
	if d < sim.Second {
		d = sim.Second
	}
	return d
}

// Run advances the replication by d simulated time.
func (n *Network) Run(d sim.Time) {
	n.Sim.Run(n.Sim.Now() + d)
}

// Members returns the ids of overlay members, in id order. Membership
// is fixed at Build, so the slice is computed once and shared — callers
// must not mutate it (the snapshot ticker reads it every tick).
func (n *Network) Members() []int { return n.membersList }

// IsMember reports whether node i belongs to the overlay.
func (n *Network) IsMember(i int) bool { return n.member[i] }

// AppendOverlayAdjacency fills sc with the current overlay graph
// restricted to members: the allocation-free counterpart of
// OverlayAdjacency, feeding a graphs.Analyzer. The symmetric-link check
// runs against a link bitmap marked in one pass over all servents
// instead of scanning each peer's neighbor list per link (the O(deg²)
// cost of the naive path). Rows match graphs.New(n.OverlayAdjacency())
// exactly: sorted, deduplicated, self-free, mutual links only (Basic
// keeps its by-design asymmetric references).
func (n *Network) AppendOverlayAdjacency(sc *graphs.Scratch) {
	sc.Reset(n.Cfg.NumNodes)
	if n.Cfg.Algorithm == p2p.Basic {
		// Basic references are one-directional by design, so every live
		// connection is a row entry — one pass.
		for i, sv := range n.Servents {
			if sv == nil || !sv.Joined() {
				sc.EndRow()
				continue
			}
			n.peerBuf = sv.AppendPeers(n.peerBuf[:0])
			for _, p := range n.peerBuf {
				if p != i && n.joined(p) {
					sc.AppendNeighbor(p)
				}
			}
			sc.EndRow()
		}
		return
	}
	// Symmetric algorithms admit mutual links only: mark every raw
	// directed link in the scratch bitmap, then build rows with an O(1)
	// reverse-direction check. The first pass buffers each node's peer
	// ids so the second never re-iterates the servents' connection maps.
	n.peerBuf = n.peerBuf[:0]
	n.peerOff = append(n.peerOff[:0], 0)
	for i, sv := range n.Servents {
		if sv != nil && sv.Joined() {
			n.peerBuf = sv.AppendPeers(n.peerBuf)
			for _, p := range n.peerBuf[n.peerOff[i]:] {
				sc.MarkLink(i, p)
			}
		}
		n.peerOff = append(n.peerOff, int32(len(n.peerBuf)))
	}
	for i, sv := range n.Servents {
		if sv == nil || !sv.Joined() {
			sc.EndRow()
			continue
		}
		for _, p := range n.peerBuf[n.peerOff[i]:n.peerOff[i+1]] {
			if p != i && n.joined(p) && sc.HasLink(p, i) {
				sc.AppendNeighbor(p)
			}
		}
		sc.EndRow()
	}
}

// joined reports whether node id currently runs a joined servent.
func (n *Network) joined(id int) bool {
	sv := n.Servents[id]
	return sv != nil && sv.Joined()
}

// OverlayAdjacency returns the current overlay graph restricted to
// members, as adjacency lists keyed by node id (entries for non-members
// are nil). Only links acknowledged by both endpoints are included.
// This is the reference implementation; hot paths use
// AppendOverlayAdjacency with a reusable graphs.Scratch instead.
func (n *Network) OverlayAdjacency() [][]int {
	adj := make([][]int, n.Cfg.NumNodes)
	for i, sv := range n.Servents {
		if sv == nil || !sv.Joined() {
			continue
		}
		for _, p := range sv.Peers() {
			other := n.Servents[p]
			if other == nil || !other.Joined() {
				continue
			}
			mutual := false
			for _, q := range other.Peers() {
				if q == i {
					mutual = true
					break
				}
			}
			if mutual || n.Cfg.Algorithm == p2p.Basic {
				adj[i] = append(adj[i], p)
			}
		}
	}
	return adj
}

// AliveMembers counts members currently joined.
func (n *Network) AliveMembers() int {
	c := 0
	for _, sv := range n.Servents {
		if sv != nil && sv.Joined() {
			c++
		}
	}
	return c
}
