package manet

import (
	"sort"
	"testing"

	"manetp2p/internal/graphs"
	"manetp2p/internal/p2p"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

func smallConfig(alg p2p.Algorithm, seed int64) Config {
	cfg := DefaultConfig(30, alg)
	cfg.Seed = seed
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(50, p2p.Regular).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.NumNodes = 0 },
		func(c *Config) { c.MemberFraction = 0 },
		func(c *Config) { c.MemberFraction = 1.5 },
		func(c *Config) { c.Arena.W = 0 },
		func(c *Config) { c.Range = 0 },
		func(c *Config) { c.Mobility.Tick = 0 },
		func(c *Config) { c.Params.MaxNConn = 0 },
		func(c *Config) { c.Files.NumFiles = 0 },
	}
	for i, mutate := range bads {
		c := DefaultConfig(50, p2p.Regular)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBuildMembership(t *testing.T) {
	cfg := smallConfig(p2p.Regular, 1)
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	members := n.Members()
	want := int(float64(cfg.NumNodes)*cfg.MemberFraction + 0.5)
	if len(members) != want {
		t.Errorf("members = %d, want %d", len(members), want)
	}
	for i, sv := range n.Servents {
		if (sv != nil) != n.IsMember(i) {
			t.Errorf("node %d: servent presence inconsistent with membership", i)
		}
	}
}

func TestIntegrationRegularFormsOverlayAndAnswersQueries(t *testing.T) {
	cfg := smallConfig(p2p.Regular, 2)
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(10 * sim.Minute)
	// Overlay formed.
	connected := 0
	for _, sv := range n.Servents {
		if sv != nil && sv.ConnCount() > 0 {
			connected++
		}
	}
	if connected < len(n.Members())/2 {
		t.Errorf("only %d/%d members connected", connected, len(n.Members()))
	}
	// Queries ran and some found answers.
	reqs := n.Collector.Requests()
	if len(reqs) < 20 {
		t.Fatalf("only %d requests in 10 min", len(reqs))
	}
	found := 0
	for _, r := range reqs {
		if r.Found {
			found++
			if r.MinP2P < 1 {
				t.Errorf("found request with MinP2P %d < 1", r.MinP2P)
			}
		}
	}
	if found == 0 {
		t.Error("no request found its file")
	}
}

func TestIntegrationAllAlgorithmsRun(t *testing.T) {
	for _, alg := range p2p.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(alg, 3)
			if alg == p2p.Hybrid {
				cfg.Qualifiers = DeviceClasses()
			}
			n, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n.Run(10 * sim.Minute)
			// Someone received connect traffic.
			total := uint64(0)
			for _, id := range n.Members() {
				total += n.Collector.Received(id, 0)
			}
			if total == 0 {
				t.Error("no connect messages recorded")
			}
		})
	}
}

func TestRoutingSubstrates(t *testing.T) {
	// The overlay must form and answer queries over every routing
	// substrate, not just AODV.
	for _, kind := range []RoutingKind{RoutingAODV, RoutingDSR, RoutingFlood, RoutingDSDV} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(p2p.Regular, 10)
			cfg.Routing = kind
			n, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n.Run(10 * sim.Minute)
			connected := 0
			for _, sv := range n.Servents {
				if sv != nil && sv.ConnCount() > 0 {
					connected++
				}
			}
			if connected == 0 {
				t.Errorf("no overlay connections formed over %v", kind)
			}
			found := false
			for _, r := range n.Collector.Requests() {
				if r.Found {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no query answered over %v", kind)
			}
		})
	}
}

func TestTracerRecordsLifecycle(t *testing.T) {
	cfg := smallConfig(p2p.Regular, 12)
	cfg.TraceCapacity = 1 << 14
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5 * sim.Minute)
	if n.Tracer == nil {
		t.Fatal("tracer not created")
	}
	kinds := map[string]bool{}
	for _, e := range n.Tracer.Events() {
		kinds[e.Kind.String()] = true
	}
	if !kinds["conn"] || !kinds["query"] {
		t.Errorf("trace kinds seen = %v, want conn and query at least", kinds)
	}
}

func TestDeterministicReplication(t *testing.T) {
	run := func() (uint64, int) {
		cfg := smallConfig(p2p.Random, 7)
		n, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(5 * sim.Minute)
		var msgs uint64
		for i := 0; i < cfg.NumNodes; i++ {
			msgs += n.Medium.Stats(i).RxFrames
		}
		return msgs, len(n.Collector.Requests())
	}
	m1, r1 := run()
	m2, r2 := run()
	if m1 != m2 || r1 != r2 {
		t.Errorf("same seed diverged: frames %d vs %d, requests %d vs %d", m1, m2, r1, r2)
	}
}

func TestChurnNodesLeaveAndReturn(t *testing.T) {
	cfg := smallConfig(p2p.Regular, 4)
	cfg.Churn = ChurnConfig{MeanUptime: 2 * sim.Minute, MeanDowntime: 30 * sim.Second}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for i := 0; i < 30; i++ {
		n.Run(time30())
		if n.AliveMembers() < len(n.Members()) {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("churn never took a member down")
	}
	// The overlay must keep functioning: connections exist at the end.
	connected := 0
	for _, sv := range n.Servents {
		if sv != nil && sv.Joined() && sv.ConnCount() > 0 {
			connected++
		}
	}
	if connected == 0 {
		t.Error("overlay collapsed under churn")
	}
}

func time30() sim.Time { return 30 * sim.Second }

func TestEnergyDepletionKillsPermanently(t *testing.T) {
	cfg := smallConfig(p2p.Basic, 5) // Basic floods hardest
	cfg.Energy = radio.EnergyConfig{Capacity: 0.05, TxPerFrame: 1e-4, RxPerFrame: 1e-4, TxPerByte: 1e-6, RxPerByte: 1e-6}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(30 * sim.Minute)
	deaths := 0
	for i := 0; i < cfg.NumNodes; i++ {
		if n.dead[i] {
			deaths++
			if n.Medium.Up(i) {
				t.Errorf("dead node %d still on air", i)
			}
			if sv := n.Servents[i]; sv != nil && sv.Joined() {
				t.Errorf("dead node %d still joined", i)
			}
		}
	}
	if deaths == 0 {
		t.Error("no battery death under tiny budget with Basic flooding")
	}
}

func TestStationaryMobilityHoldsPositions(t *testing.T) {
	cfg := smallConfig(p2p.Regular, 6)
	cfg.Mobility.Kind = MobilityStationary
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, cfg.NumNodes)
	for i := range before {
		before[i] = n.Medium.Pos(i).X
	}
	n.Run(5 * sim.Minute)
	for i := range before {
		if n.Medium.Pos(i).X != before[i] {
			t.Fatalf("stationary node %d moved", i)
		}
	}
}

func TestOverlayAdjacencyMutual(t *testing.T) {
	cfg := smallConfig(p2p.Regular, 8)
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5 * sim.Minute)
	adj := n.OverlayAdjacency()
	for i, nbrs := range adj {
		for _, j := range nbrs {
			mutual := false
			for _, k := range adj[j] {
				if k == i {
					mutual = true
					break
				}
			}
			if !mutual {
				t.Errorf("adjacency not mutual: %d->%d", i, j)
			}
		}
	}
}

func TestExpDurationClampsAndVaries(t *testing.T) {
	n, err := Build(smallConfig(p2p.Regular, 2))
	if err != nil {
		t.Fatal(err)
	}
	rng := n.Sim.NewRand()
	distinct := map[sim.Time]bool{}
	for i := 0; i < 200; i++ {
		d := expDuration(rng, 10*sim.Second)
		if d < sim.Second {
			t.Fatalf("expDuration below the 1s clamp: %v", d)
		}
		distinct[d] = true
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct draws; not exponential", len(distinct))
	}
	// Tiny means always clamp.
	if d := expDuration(rng, sim.Microsecond); d != sim.Second {
		t.Errorf("clamped draw = %v, want 1s", d)
	}
}

func TestRoutingKindStrings(t *testing.T) {
	want := map[RoutingKind]string{
		RoutingAODV: "AODV", RoutingDSR: "DSR", RoutingFlood: "Flood", RoutingDSDV: "DSDV",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("String() = %q, want %q", k.String(), name)
		}
	}
}

func TestQualifierClasses(t *testing.T) {
	cfg := smallConfig(p2p.Hybrid, 9)
	cfg.NumNodes = 200
	cfg.Qualifiers = DeviceClasses()
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, sv := range n.Servents {
		if sv != nil {
			counts[sv.Qualifier()]++
		}
	}
	if len(counts) != 3 {
		t.Fatalf("distinct qualifiers = %d, want 3 classes", len(counts))
	}
	if counts[0.2] <= counts[0.9] {
		t.Errorf("phone class (%d) should outnumber notebook class (%d)", counts[0.2], counts[0.9])
	}
}

// TestAppendOverlayAdjacencyMatchesNaive pins the allocation-free fill
// against the reference OverlayAdjacency on a live network: the same
// nodes, the same neighbor sets. Rows are compared as sets because
// AppendOverlayAdjacency emits peers in map order while the naive path
// sorts.
func TestAppendOverlayAdjacencyMatchesNaive(t *testing.T) {
	for _, alg := range p2p.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(alg, 11)
			n, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n.Run(5 * sim.Minute)
			want := n.OverlayAdjacency()
			var sc graphs.Scratch
			n.AppendOverlayAdjacency(&sc)
			if sc.NumNodes() != len(want) {
				t.Fatalf("NumNodes = %d, want %d", sc.NumNodes(), len(want))
			}
			for i, row := range want {
				got := append([]int32(nil), sc.Row(i)...)
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				if len(got) != len(row) {
					t.Fatalf("node %d: degree %d, want %d", i, len(got), len(row))
				}
				for j, p := range row {
					if int(got[j]) != p {
						t.Fatalf("node %d: neighbors %v, want %v", i, got, row)
					}
				}
			}
		})
	}
}

// TestAnalyzerMatchesNaiveOnLiveNetwork checks the whole snapshot path
// end to end: the Analyzer over AppendOverlayAdjacency must reproduce
// the naive graphs.Graph metrics bit for bit, which is what keeps the
// golden fixtures byte-identical.
func TestAnalyzerMatchesNaiveOnLiveNetwork(t *testing.T) {
	for _, alg := range p2p.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(alg, 12)
			n, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n.Run(10 * sim.Minute)
			g := graphs.New(n.OverlayAdjacency())
			var an graphs.Analyzer
			n.AppendOverlayAdjacency(&an.S)
			m := an.Analyze(n.IsMember)
			if got, want := m.Clustering, g.ClusteringCoefficient(); got != want {
				t.Errorf("Clustering = %v, want %v", got, want)
			}
			wantPath, wantPairs := g.CharacteristicPathLength()
			if m.PathLength != wantPath || m.Pairs != wantPairs {
				t.Errorf("PathLength = (%v, %d), want (%v, %d)", m.PathLength, m.Pairs, wantPath, wantPairs)
			}
			if got, want := m.Largest, g.LargestComponentFraction(n.IsMember); got != want {
				t.Errorf("Largest = %v, want %v", got, want)
			}
			if got, want := m.Edges, g.NumEdges(); got != want {
				t.Errorf("Edges = %d, want %d", got, want)
			}
		})
	}
}

// TestMembersCached pins the Members contract: membership is fixed at
// Build, so repeated calls return the same slice instead of
// reallocating, and the ids come sorted.
func TestMembersCached(t *testing.T) {
	n, err := Build(smallConfig(p2p.Regular, 13))
	if err != nil {
		t.Fatal(err)
	}
	a, b := n.Members(), n.Members()
	if len(a) == 0 {
		t.Fatal("no members")
	}
	if &a[0] != &b[0] {
		t.Error("Members reallocated between calls")
	}
	if !sort.IntsAreSorted(a) {
		t.Errorf("Members not in id order: %v", a)
	}
}

// TestOverlaySnapshotSteadyStateAllocs guards the PR's core promise on
// the live path, not just the synthetic benchmark graph: once warm, a
// full fill+analyze snapshot allocates nothing.
func TestOverlaySnapshotSteadyStateAllocs(t *testing.T) {
	n, err := Build(smallConfig(p2p.Regular, 14))
	if err != nil {
		t.Fatal(err)
	}
	n.Run(10 * sim.Minute)
	var an graphs.Analyzer
	n.AppendOverlayAdjacency(&an.S)
	an.Analyze(n.IsMember)
	allocs := testing.AllocsPerRun(10, func() {
		n.AppendOverlayAdjacency(&an.S)
		an.Analyze(n.IsMember)
	})
	if allocs != 0 {
		t.Errorf("steady-state snapshot allocates %v per run, want 0", allocs)
	}
}
