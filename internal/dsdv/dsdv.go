// Package dsdv implements Destination-Sequenced Distance Vector
// routing (Perkins/Bhagwat), the proactive member of the classic MANET
// routing trio. Every node periodically advertises its full routing
// table to its radio neighbors; destination-generated even sequence
// numbers keep the vectors loop-free, and odd sequence numbers mark
// broken routes. Unlike the on-demand protocols, DSDV pays a constant
// background overhead but answers "do I have a route?" instantly —
// the trade-off the routing sweep quantifies.
package dsdv

import (
	"fmt"
	"sort"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

const (
	sizeUpdateBase = 8
	sizePerEntry   = 12
	sizeDataHdr    = 16
	sizeBcastHdr   = 16
	infinityMetric = 1 << 16
)

// advEntry is one advertised route.
type advEntry struct {
	Dst    int
	Metric int
	Seq    uint32
}

// update is a (single-hop) table advertisement.
type update struct {
	From    int
	Entries []advEntry
}

func (u update) size() int { return sizeUpdateBase + sizePerEntry*len(u.Entries) }

// data is an application packet routed hop-by-hop.
type data struct {
	Origin   int
	Dst      int
	HopCount int
	TTL      int
	Size     int
	Payload  any
}

// bcast is the shared controlled broadcast.
type bcast struct {
	Origin   int
	ID       uint32
	HopCount int
	TTL      int
	Size     int
	Payload  any
}

// route is one table row.
type route struct {
	nextHop int
	metric  int
	seq     uint32
	heard   sim.Time // last time this route was confirmed
}

// Config tunes the DSDV layer.
type Config struct {
	UpdatePeriod sim.Time // full-dump advertisement interval
	RouteTimeout sim.Time // routes unconfirmed for this long break
	SettlingTime sim.Time // how long data waits for a route to appear
	DataTTL      int
	BufferCap    int
}

// DefaultConfig mirrors the published DSDV parameters scaled to the
// paper's mobility (updates every 15 s, routes stale after 45 s).
func DefaultConfig() Config {
	return Config{
		UpdatePeriod: 15 * sim.Second,
		RouteTimeout: 45 * sim.Second,
		SettlingTime: 20 * sim.Second,
		DataTTL:      30,
		BufferCap:    16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.UpdatePeriod <= 0 {
		c.UpdatePeriod = d.UpdatePeriod
	}
	if c.RouteTimeout <= 0 {
		c.RouteTimeout = d.RouteTimeout
	}
	if c.SettlingTime <= 0 {
		c.SettlingTime = d.SettlingTime
	}
	if c.DataTTL <= 0 {
		c.DataTTL = d.DataTTL
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// Stats counts DSDV activity.
type Stats struct {
	UpdatesSent  uint64
	UpdatesRecv  uint64
	DataSent     uint64
	DataRelayed  uint64
	DataDropped  uint64
	BcastRelayed uint64
}

type seenKey struct {
	origin int
	id     uint32
}

// waiting is a packet parked until a route settles.
type waiting struct {
	pkt     data
	expires sim.Time
}

// Router is the per-node DSDV instance; it satisfies netif.Protocol.
type Router struct {
	id  int
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	table     map[int]*route
	seq       uint32 // own destination sequence number (even)
	bcastID   uint32
	seenBcast map[seenKey]sim.Time
	parked    map[int][]waiting
	stats     Stats
	ticker    *sim.Ticker

	onBroadcast  func(netif.Delivery)
	onUnicast    func(netif.Delivery)
	onSendFailed func(dst int, payload any)

	// Callbacks for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	selfDeliverFn  func(sim.Arg)
	expireParkedFn func(sim.Arg)
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the DSDV layer for node id and starts its periodic
// advertisements.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	r := &Router{
		id:        id,
		sim:       s,
		med:       med,
		cfg:       cfg.withDefaults(),
		table:     make(map[int]*route),
		seenBcast: make(map[seenKey]sim.Time),
		parked:    make(map[int][]waiting),
	}
	r.selfDeliverFn = r.selfDeliver
	r.expireParkedFn = r.expireParkedArg
	// Stagger first advertisements by node id so a freshly built network
	// does not emit all dumps in the same microsecond.
	first := r.cfg.UpdatePeriod/64*sim.Time(id%64) + sim.Millisecond
	s.Schedule(first, func() {
		r.advertise()
		r.ticker = sim.NewTicker(s, r.cfg.UpdatePeriod, r.advertise)
	})
	return r
}

// ID returns the node this router belongs to.
func (r *Router) ID() int { return r.id }

// Stats returns activity counters.
func (r *Router) Stats() Stats { return r.stats }

// OnBroadcast installs the flood delivery hook.
func (r *Router) OnBroadcast(fn func(netif.Delivery)) { r.onBroadcast = fn }

// OnUnicast installs the data delivery hook.
func (r *Router) OnUnicast(fn func(netif.Delivery)) { r.onUnicast = fn }

// OnSendFailed installs the undeliverable hook.
func (r *Router) OnSendFailed(fn func(dst int, payload any)) { r.onSendFailed = fn }

// HopsTo reports the table's metric for dst.
func (r *Router) HopsTo(dst int) (int, bool) {
	rt, ok := r.valid(dst)
	if !ok {
		return 0, false
	}
	return rt.metric, true
}

func (r *Router) valid(dst int) (*route, bool) {
	rt, ok := r.table[dst]
	if !ok || rt.metric >= infinityMetric || r.sim.Now()-rt.heard > r.cfg.RouteTimeout {
		return rt, false
	}
	return rt, true
}

// advertise broadcasts the full table to radio neighbors (single hop).
func (r *Router) advertise() {
	if !r.med.Up(r.id) {
		return
	}
	r.expireStale()
	r.seq += 2
	entries := []advEntry{{Dst: r.id, Metric: 0, Seq: r.seq}}
	dsts := make([]int, 0, len(r.table))
	for dst := range r.table {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		rt := r.table[dst]
		entries = append(entries, advEntry{Dst: dst, Metric: rt.metric, Seq: rt.seq})
	}
	u := update{From: r.id, Entries: entries}
	r.stats.UpdatesSent++
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: u.size(), Payload: u})
}

// expireStale marks routes unheard within the timeout as broken (odd
// sequence number, infinite metric), DSDV's substitute for link-layer
// feedback.
func (r *Router) expireStale() {
	now := r.sim.Now()
	for _, rt := range r.table {
		if rt.metric < infinityMetric && now-rt.heard > r.cfg.RouteTimeout {
			rt.metric = infinityMetric
			rt.seq++ // odd: destination did not generate this
		}
	}
}

// handleUpdate merges a neighbor's advertisement.
func (r *Router) handleUpdate(u update) {
	r.stats.UpdatesRecv++
	now := r.sim.Now()
	for _, e := range u.Entries {
		if e.Dst == r.id {
			continue
		}
		metric := e.Metric + 1
		if e.Metric >= infinityMetric {
			metric = infinityMetric
		}
		rt, ok := r.table[e.Dst]
		if !ok {
			if metric < infinityMetric {
				r.table[e.Dst] = &route{nextHop: u.From, metric: metric, seq: e.Seq, heard: now}
				r.unpark(e.Dst)
			}
			continue
		}
		newer := seqGreater(e.Seq, rt.seq)
		better := e.Seq == rt.seq && metric < rt.metric
		sameRoute := rt.nextHop == u.From
		switch {
		case newer, better:
			rt.nextHop = u.From
			rt.metric = metric
			rt.seq = e.Seq
			rt.heard = now
			if metric < infinityMetric {
				r.unpark(e.Dst)
			}
		case sameRoute && e.Seq == rt.seq:
			rt.heard = now // our current route reconfirmed
		}
	}
}

// seqGreater compares sequence numbers with wraparound.
func seqGreater(a, b uint32) bool { return int32(a-b) > 0 }

// Broadcast floods payload within ttl hops (controlled broadcast).
func (r *Router) Broadcast(ttl, size int, payload any) {
	if ttl <= 0 {
		panic("dsdv: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.id) {
		return
	}
	r.bcastID++
	pkt := bcast{Origin: r.id, ID: r.bcastID, TTL: ttl, Size: size, Payload: payload}
	r.markSeen(seenKey{r.id, pkt.ID})
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: size + sizeBcastHdr, Payload: pkt})
}

// Send routes payload to dst; with no route it parks the packet for the
// settling time (proactive protocols have no discovery to kick).
func (r *Router) Send(dst, size int, payload any) {
	if dst == r.id {
		r.sim.ScheduleArg(0, r.selfDeliverFn, sim.Arg{X: payload})
		return
	}
	if !r.med.Up(r.id) {
		return
	}
	r.stats.DataSent++
	pkt := data{Origin: r.id, Dst: dst, TTL: r.cfg.DataTTL, Size: size, Payload: payload}
	if _, ok := r.valid(dst); ok {
		r.forward(pkt)
		return
	}
	r.park(pkt)
}

// park holds a packet hoping an advertisement brings a route.
func (r *Router) park(pkt data) {
	q := r.parked[pkt.Dst]
	if len(q) >= r.cfg.BufferCap {
		r.stats.DataDropped++
		if r.onSendFailed != nil {
			r.onSendFailed(pkt.Dst, pkt.Payload)
		}
		return
	}
	w := waiting{pkt: pkt, expires: r.sim.Now() + r.cfg.SettlingTime}
	r.parked[pkt.Dst] = append(q, w)
	r.sim.ScheduleArg(r.cfg.SettlingTime+sim.Millisecond, r.expireParkedFn, sim.Arg{I0: pkt.Dst})
}

// selfDeliver completes a Send addressed to this node on the next
// event-loop turn.
func (r *Router) selfDeliver(a sim.Arg) {
	if r.onUnicast != nil {
		r.onUnicast(netif.Delivery{From: r.id, Hops: 0, Payload: a.X})
	}
}

// expireParkedArg unpacks the typed-arg timer payload for expireParked.
func (r *Router) expireParkedArg(a sim.Arg) { r.expireParked(a.I0) }

// expireParked fails packets whose settling window lapsed routeless.
func (r *Router) expireParked(dst int) {
	q := r.parked[dst]
	if len(q) == 0 {
		return
	}
	now := r.sim.Now()
	keep := q[:0]
	for _, w := range q {
		if w.expires <= now {
			r.stats.DataDropped++
			if r.onSendFailed != nil {
				r.onSendFailed(dst, w.pkt.Payload)
			}
			continue
		}
		keep = append(keep, w)
	}
	if len(keep) == 0 {
		delete(r.parked, dst)
	} else {
		r.parked[dst] = keep
	}
}

// unpark flushes parked packets once a route to dst appears.
func (r *Router) unpark(dst int) {
	q := r.parked[dst]
	if len(q) == 0 {
		return
	}
	delete(r.parked, dst)
	for _, w := range q {
		r.forward(w.pkt)
	}
}

// forward moves a packet one hop along the table.
func (r *Router) forward(pkt data) {
	rt, ok := r.valid(pkt.Dst)
	if !ok {
		if pkt.Origin == r.id {
			r.park(pkt)
		} else {
			r.stats.DataDropped++
		}
		return
	}
	if !r.med.InRange(r.id, rt.nextHop) {
		// Link gone: break the route now rather than at the next timeout.
		rt.metric = infinityMetric
		rt.seq++
		if pkt.Origin == r.id {
			r.park(pkt)
		} else {
			r.stats.DataDropped++
		}
		return
	}
	if pkt.Origin != r.id {
		r.stats.DataRelayed++
	}
	r.med.Send(radio.Frame{Src: r.id, Dst: rt.nextHop, Size: pkt.Size + sizeDataHdr, Payload: pkt})
}

// HandleFrame dispatches radio arrivals.
func (r *Router) HandleFrame(f radio.Frame) {
	switch pkt := f.Payload.(type) {
	case update:
		r.handleUpdate(pkt)
	case data:
		r.handleData(pkt)
	case bcast:
		r.handleBcast(pkt)
	default:
		panic(fmt.Sprintf("dsdv: unknown payload type %T", f.Payload))
	}
}

func (r *Router) handleData(pkt data) {
	pkt.HopCount++
	if pkt.Dst == r.id {
		if r.onUnicast != nil {
			r.onUnicast(netif.Delivery{From: pkt.Origin, Hops: pkt.HopCount, Payload: pkt.Payload})
		}
		return
	}
	if pkt.TTL <= 1 {
		r.stats.DataDropped++
		return
	}
	pkt.TTL--
	r.forward(pkt)
}

func (r *Router) handleBcast(b bcast) {
	if b.Origin == r.id || r.haveSeen(seenKey{b.Origin, b.ID}) {
		return
	}
	r.markSeen(seenKey{b.Origin, b.ID})
	b.HopCount++
	if r.onBroadcast != nil {
		r.onBroadcast(netif.Delivery{From: b.Origin, Hops: b.HopCount, Payload: b.Payload})
	}
	if b.TTL > 1 {
		b.TTL--
		r.stats.BcastRelayed++
		r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: b.Size + sizeBcastHdr, Payload: b})
	}
}

func (r *Router) haveSeen(k seenKey) bool {
	t, ok := r.seenBcast[k]
	return ok && r.sim.Now()-t < 30*sim.Second
}

func (r *Router) markSeen(k seenKey) {
	if len(r.seenBcast) > 4096 {
		cutoff := r.sim.Now() - 30*sim.Second
		for key, t := range r.seenBcast {
			if t < cutoff {
				delete(r.seenBcast, key)
			}
		}
	}
	r.seenBcast[k] = r.sim.Now()
}
