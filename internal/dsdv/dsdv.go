// Package dsdv implements Destination-Sequenced Distance Vector
// routing (Perkins/Bhagwat), the proactive member of the classic MANET
// routing trio. Every node periodically advertises its full routing
// table to its radio neighbors; destination-generated even sequence
// numbers keep the vectors loop-free, and odd sequence numbers mark
// broken routes. Unlike the on-demand protocols, DSDV pays a constant
// background overhead but answers "do I have a route?" instantly —
// the trade-off the routing sweep quantifies.
package dsdv

import (
	"fmt"
	"sort"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/route"
	"manetp2p/internal/sim"
)

const (
	sizeUpdateBase = 8
	sizePerEntry   = 12
	sizeDataHdr    = 16
	sizeBcastHdr   = 16
	infinityMetric = 1 << 16
)

// Frames travel as netif.Packet values (no per-hop boxing). DSDV uses:
//
//   - PktUpdate: Origin (the advertising neighbor), Entries (the
//     advertised routes).
//   - PktData: Origin, Dst, HopCount, TTL, Size, Msg.
//   - PktBcast: the shared route.Bcaster carrier.

// updateSize is the on-air size of an advertisement with n entries.
func updateSize(n int) int { return sizeUpdateBase + sizePerEntry*n }

// tableRow is one routing-table entry.
type tableRow struct {
	nextHop int
	metric  int
	seq     uint32
	heard   sim.Time // last time this route was confirmed
}

// Config tunes the DSDV layer.
type Config struct {
	UpdatePeriod     sim.Time // full-dump advertisement interval
	RouteTimeout     sim.Time // routes unconfirmed for this long break
	SettlingTime     sim.Time // how long data waits for a route to appear
	SeenCacheTimeout sim.Time // broadcast duplicate-suppression window
	SeenCacheCap     int      // soft entry bound for the duplicate cache
	DataTTL          int
	BufferCap        int
}

// DefaultConfig mirrors the published DSDV parameters scaled to the
// paper's mobility (updates every 15 s, routes stale after 45 s).
func DefaultConfig() Config {
	return Config{
		UpdatePeriod:     15 * sim.Second,
		RouteTimeout:     45 * sim.Second,
		SettlingTime:     20 * sim.Second,
		SeenCacheTimeout: 30 * sim.Second,
		SeenCacheCap:     route.DefaultSoftCap,
		DataTTL:          30,
		BufferCap:        16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.UpdatePeriod <= 0 {
		c.UpdatePeriod = d.UpdatePeriod
	}
	if c.RouteTimeout <= 0 {
		c.RouteTimeout = d.RouteTimeout
	}
	if c.SettlingTime <= 0 {
		c.SettlingTime = d.SettlingTime
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.SeenCacheCap <= 0 {
		c.SeenCacheCap = d.SeenCacheCap
	}
	if c.DataTTL <= 0 {
		c.DataTTL = d.DataTTL
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// waiting is a packet parked until a route settles.
type waiting struct {
	pkt     netif.Packet
	expires sim.Time
}

// Router is the per-node DSDV instance; it satisfies netif.Protocol.
// The shared control-plane mechanics come from internal/route; this
// file is the distance-vector state machine proper.
type Router struct {
	*route.Core
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	table  map[int]*tableRow
	seq    uint32 // own destination sequence number (even)
	bcast  *route.Bcaster
	parked *route.Pending[waiting]
	ticker *sim.Ticker

	// advScratch is the reused destination-sort buffer for advertise;
	// purely local to one call.
	advScratch []int

	// Callback for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	expireParkedFn func(sim.Arg)
}

var _ netif.Protocol = (*Router)(nil)

// NewRouter creates the DSDV layer for node id and starts its periodic
// advertisements.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	cfg = cfg.withDefaults()
	core := route.NewCore(id, s)
	cache := route.CacheConfig{Timeout: cfg.SeenCacheTimeout, SoftCap: cfg.SeenCacheCap}
	r := &Router{
		Core:   core,
		sim:    s,
		med:    med,
		cfg:    cfg,
		table:  make(map[int]*tableRow),
		bcast:  route.NewBcaster(core, med, sizeBcastHdr, 0, cache),
		parked: route.NewPending[waiting](cfg.BufferCap),
	}
	r.expireParkedFn = r.expireParkedArg
	// Stagger first advertisements by node id so a freshly built network
	// does not emit all dumps in the same microsecond.
	first := r.cfg.UpdatePeriod/64*sim.Time(id%64) + sim.Millisecond
	s.Schedule(first, func() {
		r.advertise()
		r.ticker = sim.NewTicker(s, r.cfg.UpdatePeriod, r.advertise)
	})
	return r
}

// HopsTo reports the table's metric for dst.
func (r *Router) HopsTo(dst int) (int, bool) {
	rt, ok := r.valid(dst)
	if !ok {
		return 0, false
	}
	return rt.metric, true
}

func (r *Router) valid(dst int) (*tableRow, bool) {
	rt, ok := r.table[dst]
	if !ok || rt.metric >= infinityMetric || r.sim.Now()-rt.heard > r.cfg.RouteTimeout {
		return rt, false
	}
	return rt, true
}

// advertise broadcasts the full table to radio neighbors (single hop).
func (r *Router) advertise() {
	if !r.med.Up(r.ID()) {
		return
	}
	r.expireStale()
	r.seq += 2
	// The entries slice must be freshly allocated each advertisement: it
	// rides inside the Packet shared by every queued delivery of this
	// frame, while the next advertisement is built before those arrive.
	entries := make([]netif.AdvEntry, 0, 1+len(r.table))
	entries = append(entries, netif.AdvEntry{Dst: r.ID(), Metric: 0, Seq: r.seq})
	dsts := r.advScratch[:0]
	for dst := range r.table {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	r.advScratch = dsts
	for _, dst := range dsts {
		rt := r.table[dst]
		entries = append(entries, netif.AdvEntry{Dst: dst, Metric: rt.metric, Seq: rt.seq})
	}
	u := netif.Packet{Kind: netif.PktUpdate, Origin: r.ID(), Entries: entries}
	r.Count.CtrlOrig++
	r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: updateSize(len(entries)), Payload: u})
}

// expireStale marks routes unheard within the timeout as broken (odd
// sequence number, infinite metric), DSDV's substitute for link-layer
// feedback.
func (r *Router) expireStale() {
	now := r.sim.Now()
	for _, rt := range r.table {
		if rt.metric < infinityMetric && now-rt.heard > r.cfg.RouteTimeout {
			rt.metric = infinityMetric
			rt.seq++ // odd: destination did not generate this
		}
	}
}

// handleUpdate merges a neighbor's advertisement.
func (r *Router) handleUpdate(u netif.Packet) {
	now := r.sim.Now()
	for _, e := range u.Entries {
		if e.Dst == r.ID() {
			continue
		}
		metric := e.Metric + 1
		if e.Metric >= infinityMetric {
			metric = infinityMetric
		}
		rt, ok := r.table[e.Dst]
		if !ok {
			if metric < infinityMetric {
				r.table[e.Dst] = &tableRow{nextHop: u.Origin, metric: metric, seq: e.Seq, heard: now}
				r.unpark(e.Dst)
			}
			continue
		}
		newer := seqGreater(e.Seq, rt.seq)
		better := e.Seq == rt.seq && metric < rt.metric
		sameRoute := rt.nextHop == u.Origin
		switch {
		case newer, better:
			rt.nextHop = u.Origin
			rt.metric = metric
			rt.seq = e.Seq
			rt.heard = now
			if metric < infinityMetric {
				r.unpark(e.Dst)
			}
		case sameRoute && e.Seq == rt.seq:
			rt.heard = now // our current route reconfirmed
		}
	}
}

// seqGreater compares sequence numbers with wraparound.
func seqGreater(a, b uint32) bool { return int32(a-b) > 0 }

// Broadcast floods payload within ttl hops (controlled broadcast).
func (r *Router) Broadcast(ttl, size int, payload netif.Msg) {
	if ttl <= 0 {
		panic("dsdv: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.ID()) {
		return
	}
	r.bcast.Originate(ttl, size, payload, 0)
}

// Send routes payload to dst; with no route it parks the packet for the
// settling time (proactive protocols have no discovery to kick).
func (r *Router) Send(dst, size int, payload netif.Msg) {
	if dst == r.ID() {
		r.SelfDeliver(payload)
		return
	}
	r.Count.DataSent++
	if !r.med.Up(r.ID()) {
		return
	}
	pkt := netif.Packet{Kind: netif.PktData, Origin: r.ID(), Dst: dst, TTL: r.cfg.DataTTL, Size: size, Msg: payload}
	if _, ok := r.valid(dst); ok {
		r.forward(pkt)
		return
	}
	r.park(pkt)
}

// park holds a packet hoping an advertisement brings a route.
func (r *Router) park(pkt netif.Packet) {
	d, ok := r.parked.Get(pkt.Dst)
	if !ok {
		d = r.parked.Start(pkt.Dst)
	}
	w := waiting{pkt: pkt, expires: r.sim.Now() + r.cfg.SettlingTime}
	if !r.parked.Push(d, w) {
		r.Count.DataDropped++
		r.FailSend(pkt.Dst, pkt.Msg)
		return
	}
	r.sim.ScheduleArg(r.cfg.SettlingTime+sim.Millisecond, r.expireParkedFn, sim.Arg{I0: pkt.Dst})
}

// expireParkedArg unpacks the typed-arg timer payload for expireParked.
func (r *Router) expireParkedArg(a sim.Arg) { r.expireParked(a.I0) }

// expireParked fails packets whose settling window lapsed routeless.
func (r *Router) expireParked(dst int) {
	d, ok := r.parked.Get(dst)
	if !ok || len(d.Queue) == 0 {
		return
	}
	now := r.sim.Now()
	keep := d.Queue[:0]
	for _, w := range d.Queue {
		if w.expires <= now {
			r.Count.DataDropped++
			r.FailSend(dst, w.pkt.Msg)
			continue
		}
		keep = append(keep, w)
	}
	if len(keep) == 0 {
		r.parked.Drop(dst)
	} else {
		d.Queue = keep
	}
}

// unpark flushes parked packets once a route to dst appears.
func (r *Router) unpark(dst int) {
	d, ok := r.parked.Get(dst)
	if !ok || len(d.Queue) == 0 {
		return
	}
	r.parked.Drop(dst)
	for _, w := range d.Queue {
		r.forward(w.pkt)
	}
}

// forward moves a packet one hop along the table.
func (r *Router) forward(pkt netif.Packet) {
	rt, ok := r.valid(pkt.Dst)
	if !ok {
		if pkt.Origin == r.ID() {
			r.park(pkt)
		} else {
			r.Count.DataDropped++
		}
		return
	}
	if !r.med.InRange(r.ID(), rt.nextHop) {
		// Link gone: break the route now rather than at the next timeout.
		rt.metric = infinityMetric
		rt.seq++
		if pkt.Origin == r.ID() {
			r.park(pkt)
		} else {
			r.Count.DataDropped++
		}
		return
	}
	if pkt.Origin != r.ID() {
		r.Count.DataForwarded++
	}
	r.med.Send(radio.Frame{Src: r.ID(), Dst: rt.nextHop, Size: pkt.Size + sizeDataHdr, Payload: pkt})
}

// HandleFrame dispatches radio arrivals on packet kind.
func (r *Router) HandleFrame(f radio.Frame) {
	switch f.Payload.Kind {
	case netif.PktUpdate:
		r.handleUpdate(f.Payload)
	case netif.PktData:
		r.handleData(f.Payload)
	case netif.PktBcast:
		r.bcast.Handle(f.Src, f.Payload)
	default:
		panic(fmt.Sprintf("dsdv: unknown packet kind %d", f.Payload.Kind))
	}
}

func (r *Router) handleData(pkt netif.Packet) {
	pkt.HopCount++
	if pkt.Dst == r.ID() {
		r.DeliverUnicast(pkt.Origin, pkt.HopCount, pkt.Msg)
		return
	}
	if pkt.TTL <= 1 {
		r.Count.DataDropped++
		return
	}
	pkt.TTL--
	r.forward(pkt)
}
