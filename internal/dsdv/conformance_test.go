package dsdv

import (
	"testing"

	"manetp2p/internal/netif/conformance"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// TestConformance runs the shared netif.Protocol contract suite. DSDV
// is proactive: the suite warms up past a few advertisement rounds
// before sending, and an unreachable destination is signalled once the
// parked payload's settling time expires.
func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Factory{
		Name: "dsdv",
		New: func(id int, s *sim.Sim, med *radio.Medium) conformance.Router {
			return NewRouter(id, s, med, Config{SeenCacheCap: 512})
		},
		WarmUp: 40 * sim.Second,
	})
}
