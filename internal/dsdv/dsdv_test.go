package dsdv

import (
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

type testNet struct {
	s       *sim.Sim
	med     *radio.Medium
	routers []*Router
	unicast [][]netif.Delivery
	bcasts  [][]netif.Delivery
	failed  [][]int
}

func newTestNet(t *testing.T, seed int64, pts []geom.Point, cfg Config) *testNet {
	t.Helper()
	s := sim.New(seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: len(pts),
		Latency:  2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{
		s:       s,
		med:     med,
		routers: make([]*Router, len(pts)),
		unicast: make([][]netif.Delivery, len(pts)),
		bcasts:  make([][]netif.Delivery, len(pts)),
		failed:  make([][]int, len(pts)),
	}
	for i, p := range pts {
		i := i
		r := NewRouter(i, s, med, cfg)
		r.OnUnicast(func(d netif.Delivery) { n.unicast[i] = append(n.unicast[i], d) })
		r.OnBroadcast(func(d netif.Delivery) { n.bcasts[i] = append(n.bcasts[i], d) })
		r.OnSendFailed(func(dst int, _ netif.Msg) { n.failed[i] = append(n.failed[i], dst) })
		med.Join(i, p, r.HandleFrame)
		n.routers[i] = r
	}
	return n
}

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 5 + 8*float64(i), Y: 50}
	}
	return pts
}

// settle runs long enough for routes to propagate end to end: the table
// spreads one hop per update period.
func settle(n *testNet, hops int) {
	n.s.Run(n.s.Now() + DefaultConfig().UpdatePeriod*sim.Time(hops+2))
}

func TestTablesConvergeOnChain(t *testing.T) {
	n := newTestNet(t, 1, line(5), Config{})
	settle(n, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			want := j - i
			if want < 0 {
				want = -want
			}
			got, ok := n.routers[i].HopsTo(j)
			if !ok || got != want {
				t.Errorf("HopsTo(%d->%d) = (%d,%v), want (%d,true)", i, j, got, ok, want)
			}
		}
	}
}

func TestDataDeliveredProactively(t *testing.T) {
	n := newTestNet(t, 2, line(5), Config{})
	settle(n, 5)
	n.routers[0].Send(4, 100, netif.TestMsg(1))
	n.s.Run(n.s.Now() + sim.Second)
	got := n.unicast[4]
	if len(got) != 1 || got[0].Hops != 4 || got[0].From != 0 {
		t.Fatalf("deliveries = %+v, want one from 0 at 4 hops", got)
	}
}

func TestSendBeforeConvergenceParksThenDelivers(t *testing.T) {
	// A send right at t=0 has no route yet; the settling buffer must
	// hold it until advertisements arrive, then deliver.
	n := newTestNet(t, 3, line(3), Config{SettlingTime: 40 * sim.Second})
	n.routers[0].Send(2, 10, netif.TestMsg(2))
	n.s.Run(n.s.Now() + 50*sim.Second)
	if len(n.unicast[2]) != 1 {
		t.Fatalf("deliveries = %d, want 1 (parked packet must flush)", len(n.unicast[2]))
	}
}

func TestUnreachableFailsAfterSettling(t *testing.T) {
	pts := append(line(2), geom.Point{X: 190, Y: 190})
	n := newTestNet(t, 4, pts, Config{SettlingTime: 10 * sim.Second})
	n.routers[0].Send(2, 10, netif.TestMsg(3))
	n.s.Run(n.s.Now() + sim.Minute)
	if len(n.failed[0]) != 1 || n.failed[0][0] != 2 {
		t.Fatalf("failed = %v, want [2]", n.failed[0])
	}
	if len(n.unicast[2]) != 0 {
		t.Error("unreachable node received data")
	}
}

func TestBrokenRouteHealsViaNewAdvertisements(t *testing.T) {
	// Diamond 0-1-3 / 0-2-3: kill the active relay; after a timeout the
	// route re-forms through the other relay.
	pts := []geom.Point{
		{X: 50, Y: 50}, {X: 58, Y: 44}, {X: 58, Y: 56}, {X: 66, Y: 50},
	}
	n := newTestNet(t, 5, pts, Config{})
	settle(n, 3)
	n.routers[0].Send(3, 10, netif.TestMsg(4))
	n.s.Run(n.s.Now() + sim.Second)
	if len(n.unicast[3]) != 1 {
		t.Fatal("initial delivery failed")
	}
	relay := 1
	if n.routers[2].Stats().DataForwarded > 0 {
		relay = 2
	}
	n.med.Leave(relay)
	// Wait out the route timeout plus a couple of update periods.
	n.s.Run(n.s.Now() + DefaultConfig().RouteTimeout + 4*DefaultConfig().UpdatePeriod)
	n.routers[0].Send(3, 10, netif.TestMsg(5))
	n.s.Run(n.s.Now() + 30*sim.Second)
	if len(n.unicast[3]) != 2 {
		t.Fatalf("deliveries = %d, want 2 (healed via alternate relay)", len(n.unicast[3]))
	}
}

func TestStaleRoutesExpire(t *testing.T) {
	n := newTestNet(t, 6, line(3), Config{})
	settle(n, 3)
	if _, ok := n.routers[0].HopsTo(2); !ok {
		t.Fatal("no route after convergence")
	}
	// Node 2 vanishes; after RouteTimeout node 0's entry must break.
	n.med.Leave(2)
	n.s.Run(n.s.Now() + DefaultConfig().RouteTimeout + 2*DefaultConfig().UpdatePeriod)
	if _, ok := n.routers[0].HopsTo(2); ok {
		t.Error("route to vanished node still valid")
	}
}

func TestPeriodicOverheadAccrues(t *testing.T) {
	// DSDV's signature: update traffic flows with zero application load.
	n := newTestNet(t, 7, line(4), Config{})
	n.s.Run(n.s.Now() + 5*sim.Minute)
	for i, r := range n.routers {
		if r.Stats().CtrlOrig < 10 {
			t.Errorf("node %d sent %d updates in 5 min, want >= 10", i, r.Stats().CtrlOrig)
		}
		if _, ok := r.HopsTo((i + 1) % 4); !ok {
			t.Errorf("node %d heard no updates (no route to neighbor)", i)
		}
	}
}

func TestBroadcastControlled(t *testing.T) {
	n := newTestNet(t, 8, line(6), Config{})
	n.routers[0].Broadcast(2, 10, netif.TestMsg(6))
	n.s.Run(n.s.Now() + sim.Second)
	for i := 1; i <= 2; i++ {
		if len(n.bcasts[i]) != 1 || n.bcasts[i][0].Hops != i {
			t.Errorf("node %d bcasts = %+v", i, n.bcasts[i])
		}
	}
	if len(n.bcasts[3]) != 0 {
		t.Error("broadcast exceeded TTL")
	}
}

func TestSendToSelf(t *testing.T) {
	n := newTestNet(t, 9, line(2), Config{})
	n.routers[0].Send(0, 10, netif.TestMsg(7))
	n.s.Run(n.s.Now() + sim.Second)
	if len(n.unicast[0]) != 1 || n.unicast[0][0].Hops != 0 {
		t.Fatalf("self delivery = %+v", n.unicast[0])
	}
}

func TestSeqGreaterWraparound(t *testing.T) {
	if !seqGreater(2, 1) || seqGreater(1, 2) || seqGreater(1, 1) {
		t.Error("basic ordering broken")
	}
	if !seqGreater(0, 0xffffffff) {
		t.Error("wraparound ordering broken")
	}
}
