// Package prof wires the standard Go profilers (pprof CPU and heap,
// runtime/trace execution traces) behind a common set of flags so every
// CLI in this repository exposes the same profiling surface.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the output paths requested on the command line; empty
// paths mean the corresponding profiler stays off.
type Flags struct {
	cpu  string
	mem  string
	exec string
}

// Register installs -cpuprofile, -memprofile and -exectrace on fs.
// The execution-trace flag is deliberately NOT named -trace: cmd/p2psim
// already uses that name for its JSON simulation event trace.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.mem, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&f.exec, "exectrace", "", "write a runtime/trace execution trace to this file")
	return f
}

// Start begins the requested profilers. The returned stop function
// flushes and closes them; call it (or defer it) before the process
// exits — profiles started but not stopped are truncated or empty.
func (f *Flags) Start() (stop func() error, err error) {
	var stops []func() error

	if f.cpu != "" {
		w, err := os.Create(f.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(w); err != nil {
			w.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return w.Close()
		})
	}
	if f.exec != "" {
		w, err := os.Create(f.exec)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(w); err != nil {
			w.Close()
			return nil, fmt.Errorf("exectrace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return w.Close()
		})
	}
	if f.mem != "" {
		path := f.mem
		stops = append(stops, func() error {
			w, err := os.Create(path)
			if err != nil {
				return err
			}
			defer w.Close()
			runtime.GC() // settle the heap so the profile shows live data
			return pprof.WriteHeapProfile(w)
		})
	}

	return func() error {
		var first error
		for _, s := range stops {
			if err := s(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
