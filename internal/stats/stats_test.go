package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v, want N=8 Mean=5", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ~2.138", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.StdDev != 0 || s.CI95() != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, sd=1: CI = 2.776 * 1/sqrt(5) = 1.2415.
	s := Summary{N: 5, StdDev: 1}
	if got := s.CI95(); math.Abs(got-1.2415) > 0.001 {
		t.Errorf("CI95 = %v, want 1.2415", got)
	}
	// Large n approaches the normal quantile.
	s = Summary{N: 10000, StdDev: 1}
	if got := s.CI95(); math.Abs(got-1.96/100) > 0.0005 {
		t.Errorf("large-n CI95 = %v, want ~0.0196", got)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df < 60; df++ {
		q := tQuantile975(df)
		if q > prev {
			t.Fatalf("t quantile not nonincreasing at df=%d", df)
		}
		prev = q
	}
	if tQuantile975(33) != 2.035 {
		t.Errorf("table lookup broken for df=33")
	}
}

func TestDescendingSeries(t *testing.T) {
	got := DescendingSeries([]uint64{3, 9, 1, 7})
	want := []float64{9, 7, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DescendingSeries = %v, want %v", got, want)
		}
	}
}

func TestMeanSeries(t *testing.T) {
	got := MeanSeries([][]float64{{10, 6, 2}, {20, 8, 4}})
	want := []float64{15, 7, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MeanSeries = %v, want %v", got, want)
		}
	}
	// Unequal lengths truncate.
	got = MeanSeries([][]float64{{1, 2, 3}, {5, 6}})
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("truncated MeanSeries = %v, want [3 4]", got)
	}
	if MeanSeries(nil) != nil {
		t.Error("MeanSeries(nil) != nil")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {12.5, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	if Percentile([]float64{7}, 90) != 7 {
		t.Error("single-element percentile")
	}
	// Out-of-range p clamps.
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 5 {
		t.Error("p clamping broken")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(xs, pa), Percentile(xs, pb)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return va <= vb+1e-9 && va >= lo-1e-9 && vb <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	// Degenerate range.
	h = NewHistogram([]float64{5, 5, 5}, 4)
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram = %v", h.Counts)
	}
	// Empty.
	h = NewHistogram(nil, 3)
	for _, c := range h.Counts {
		if c != 0 {
			t.Error("empty histogram has counts")
		}
	}
}

// Property: Summarize is invariant under permutation, and mean lies in
// [min, max].
func TestQuickSummarizeInvariants(t *testing.T) {
	f := func(xs []float64, seed int64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		a := Summarize(clean)
		shuffled := append([]float64(nil), clean...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := Summarize(shuffled)
		const eps = 1e-6
		return math.Abs(a.Mean-b.Mean) < eps*(1+math.Abs(a.Mean)) &&
			a.Mean >= a.Min-eps && a.Mean <= a.Max+eps &&
			a.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DescendingSeries output is sorted and is a permutation of
// the input.
func TestQuickDescendingSeries(t *testing.T) {
	f := func(xs []uint64) bool {
		got := DescendingSeries(xs)
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(got))) {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		want := make([]float64, len(xs))
		for i, x := range xs {
			want[i] = float64(x)
		}
		sort.Float64s(want)
		check := append([]float64(nil), got...)
		sort.Float64s(check)
		for i := range want {
			if want[i] != check[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
