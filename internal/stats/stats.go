// Package stats aggregates replication results the way the paper's
// figures do: means with 95% confidence intervals over repetitions, and
// per-node message-count series sorted in decreasing order (the x-axis
// of Figures 7–12 is "nodes, decreasingly ordered by # of received
// messages").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds simple descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics; an empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean, using Student's t quantiles (two-sided, df = N-1). Zero for
// samples of size < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return tQuantile975(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95())
}

// tQuantile975 returns the 0.975 quantile of Student's t distribution
// with df degrees of freedom (exact table for small df, asymptotic
// normal beyond).
func tQuantile975(df int) float64 {
	table := []float64{
		0, // df = 0 unused
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		2.040, 2.037, 2.035, 2.032, 2.030, 2.028, 2.026, 2.024, 2.023, 2.021,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// DescendingSeries sorts one replication's per-node counts in decreasing
// order — the transform the paper applies before plotting Figures 7–12.
func DescendingSeries(counts []uint64) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// MeanSeries averages several equally-ranked series element-wise: series
// from different replications are first sorted descending, then rank r
// of the result is the mean of rank r across replications. Series of
// unequal length are truncated to the shortest.
func MeanSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) < n {
			n = len(s)
		}
	}
	out := make([]float64, n)
	for r := 0; r < n; r++ {
		sum := 0.0
		for _, s := range series {
			sum += s[r]
		}
		out[r] = sum / float64(len(series))
	}
	return out
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between order statistics. It copies and sorts
// the input; an empty sample yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts values into k equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram bins xs into k cells; degenerate ranges collapse into a
// single cell.
func NewHistogram(xs []float64, k int) Histogram {
	if k < 1 {
		k = 1
	}
	h := Histogram{Counts: make([]int, k)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	width := (h.Max - h.Min) / float64(k)
	for _, x := range xs {
		i := 0
		if width > 0 {
			i = int((x - h.Min) / width)
			if i >= k {
				i = k - 1
			}
		}
		h.Counts[i]++
	}
	return h
}
