// Package aodv implements the network layer used by the paper's
// simulations: AODV on-demand routing (RREQ/RREP/RERR with destination
// sequence numbers and expanding-ring search, after the Perkins/Royer/Das
// draft the paper cites) plus the paper's "controlled broadcast" — a
// TTL-limited flood in which every node keeps a cache of recently seen
// broadcast IDs so no message is forwarded twice (§7 of the paper).
//
// Two deliberate simplifications relative to the full IETF draft, neither
// of which the paper's metrics are sensitive to:
//
//   - Link-layer feedback replaces HELLO beacons: a forwarding node checks
//     radio reachability of the next hop at transmit time (modelling an
//     802.11 ACK failure) and emits RERR on failure.
//   - RERR propagates as a 1-hop broadcast re-issued by nodes that lose
//     routes, rather than via per-route precursor lists.
package aodv

import "fmt"

// Nominal on-air packet sizes in bytes, used for traffic and energy
// accounting. Values follow the field layouts of the AODV draft.
const (
	sizeRREQ       = 24
	sizeRREP       = 20
	sizeRERRBase   = 4
	sizeRERRPerDst = 8
	sizeDataHdr    = 16
	sizeBcastHdr   = 16
)

// rreq is a route request, flooded with an expanding-ring TTL.
type rreq struct {
	Origin    int
	OriginSeq uint32
	ID        uint32 // per-origin broadcast id for duplicate suppression
	Dst       int
	DstSeq    uint32 // last known sequence number for Dst (0 = unknown)
	HopCount  int    // hops traveled so far
	TTL       int    // remaining hops the request may still travel
}

// rrep is a route reply, unicast hop-by-hop along the reverse route.
type rrep struct {
	Origin   int // the requester the reply travels to
	Dst      int // the destination the route leads to
	DstSeq   uint32
	HopCount int // hops from the replying node to Dst
}

// unreachable names one destination lost by a broken link.
type unreachable struct {
	Dst int
	Seq uint32
}

// rerr announces broken routes to upstream users of the link.
type rerr struct {
	Unreachable []unreachable
}

func (e rerr) size() int { return sizeRERRBase + sizeRERRPerDst*len(e.Unreachable) }

// data is an application packet routed hop-by-hop.
type data struct {
	Origin   int
	Dst      int
	HopCount int // hops traveled so far
	TTL      int // remaining hop budget; guards against (transient) loops
	Size     int // application payload size in bytes
	Payload  any
}

// The controlled-broadcast packet is the shared route.Bcast carrier;
// like an RREQ it carries the origin's sequence number, so forwarding it
// installs a reverse route to the origin — responders can answer by
// unicast without a fresh route discovery, exactly the pattern the
// paper's connect messages rely on (see Router's Accept hook).

func (p data) String() string {
	return fmt.Sprintf("data{%d->%d hops=%d ttl=%d}", p.Origin, p.Dst, p.HopCount, p.TTL)
}
