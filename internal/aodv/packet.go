// Package aodv implements the network layer used by the paper's
// simulations: AODV on-demand routing (RREQ/RREP/RERR with destination
// sequence numbers and expanding-ring search, after the Perkins/Royer/Das
// draft the paper cites) plus the paper's "controlled broadcast" — a
// TTL-limited flood in which every node keeps a cache of recently seen
// broadcast IDs so no message is forwarded twice (§7 of the paper).
//
// Two deliberate simplifications relative to the full IETF draft, neither
// of which the paper's metrics are sensitive to:
//
//   - Link-layer feedback replaces HELLO beacons: a forwarding node checks
//     radio reachability of the next hop at transmit time (modelling an
//     802.11 ACK failure) and emits RERR on failure.
//   - RERR propagates as a 1-hop broadcast re-issued by nodes that lose
//     routes, rather than via per-route precursor lists.
package aodv

// Nominal on-air packet sizes in bytes, used for traffic and energy
// accounting. Values follow the field layouts of the AODV draft.
const (
	sizeRREQ       = 24
	sizeRREP       = 20
	sizeRERRBase   = 4
	sizeRERRPerDst = 8
	sizeDataHdr    = 16
	sizeBcastHdr   = 16
)

// Frames travel as netif.Packet values (no per-hop boxing). AODV uses:
//
//   - PktRREQ: Origin, OriginSeq, ID (per-origin broadcast id for
//     duplicate suppression), Dst, DstSeq (last known sequence number
//     for Dst, 0 = unknown), HopCount, TTL (remaining expanding-ring
//     hops).
//   - PktRREP: Origin (the requester the reply travels to), Dst (the
//     destination the route leads to), DstSeq, HopCount (hops from the
//     replying node to Dst).
//   - PktRERR: Unreachable — the destinations lost by a broken link,
//     each with the sender's last known sequence number.
//   - PktData: Origin, Dst, HopCount, TTL (remaining hop budget;
//     guards against transient loops), Size, Msg.
//   - PktBcast: the shared route.Bcaster carrier; like an RREQ it
//     carries the origin's sequence number, so forwarding it installs a
//     reverse route to the origin — responders can answer by unicast
//     without a fresh route discovery, exactly the pattern the paper's
//     connect messages rely on (see Router's Accept hook).

// rerrSize is the on-air size of an RERR naming n destinations.
func rerrSize(n int) int { return sizeRERRBase + sizeRERRPerDst*n }
