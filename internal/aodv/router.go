package aodv

import (
	"fmt"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/route"
	"manetp2p/internal/sim"
)

// The router implements the pluggable network-layer interface.
var _ netif.Protocol = (*Router)(nil)

// Config tunes the routing layer. Zero fields are filled from defaults.
type Config struct {
	ActiveRouteTimeout  sim.Time // lifetime of an unused route
	SeenCacheTimeout    sim.Time // duplicate-suppression window for floods
	SeenCacheCap        int      // soft entry bound per duplicate cache
	MaxDiscoveryRetries int      // extra network-wide RREQ attempts
	TTLStart            int      // first expanding-ring radius
	TTLIncrement        int      // ring growth per attempt
	TTLMax              int      // network-wide search radius
	HopTraversal        sim.Time // per-hop time budget for discovery timers
	DataTTL             int      // hop budget for data packets
	BufferCap           int      // packets buffered per pending discovery

	// DisableBcastDupCache turns off the controlled broadcast's
	// duplicate suppression — the ablation of the paper's §7 ns-2
	// modification. With it off, every received copy of a flood is
	// re-forwarded (TTL-bounded broadcast storm).
	DisableBcastDupCache bool
}

// DefaultConfig returns the parameters used by the paper reproduction:
// AODV-draft-flavoured expanding ring over a network whose diameter is
// ~14 hops (100 m arena, 10 m range).
func DefaultConfig() Config {
	return Config{
		// Route staleness mostly manifests as a broken next hop, which
		// the link-layer InRange check catches on use; the timeout only
		// bounds silent staleness, so it can be generous.
		ActiveRouteTimeout:  30 * sim.Second,
		SeenCacheTimeout:    30 * sim.Second,
		SeenCacheCap:        route.DefaultSoftCap,
		MaxDiscoveryRetries: 2,
		TTLStart:            4,
		TTLIncrement:        4,
		TTLMax:              20,
		HopTraversal:        10 * sim.Millisecond,
		DataTTL:             30,
		BufferCap:           16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ActiveRouteTimeout <= 0 {
		c.ActiveRouteTimeout = d.ActiveRouteTimeout
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.SeenCacheCap <= 0 {
		c.SeenCacheCap = d.SeenCacheCap
	}
	if c.MaxDiscoveryRetries <= 0 {
		c.MaxDiscoveryRetries = d.MaxDiscoveryRetries
	}
	if c.TTLStart <= 0 {
		c.TTLStart = d.TTLStart
	}
	if c.TTLIncrement <= 0 {
		c.TTLIncrement = d.TTLIncrement
	}
	if c.TTLMax <= 0 {
		c.TTLMax = d.TTLMax
	}
	if c.HopTraversal <= 0 {
		c.HopTraversal = d.HopTraversal
	}
	if c.DataTTL <= 0 {
		c.DataTTL = d.DataTTL
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// Delivery is an upper-layer arrival: who originated the message, how
// many ad-hoc hops it traveled, and the payload.
type Delivery = netif.Delivery

// Router is the per-node network layer. It attaches to the shared medium
// as the node's frame receiver and exposes unicast (AODV) and controlled
// broadcast to the layer above. The shared control-plane mechanics —
// dispatch, counters, duplicate caches, the broadcast relay, the
// pending-send buffer — come from internal/route; this file is the AODV
// state machine proper.
type Router struct {
	*route.Core
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	table    *routeTable
	seq      uint32
	rreqID   uint32
	seenRREQ *route.DupCache
	bcast    *route.Bcaster
	pending  *route.Pending[netif.Packet]

	// Callback for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	discTimeoutFn func(sim.Arg)
}

// NewRouter creates the routing layer for node id. The caller must pass
// r.HandleFrame as the node's radio receiver when joining the medium.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	cfg = cfg.withDefaults()
	core := route.NewCore(id, s)
	cache := route.CacheConfig{Timeout: cfg.SeenCacheTimeout, SoftCap: cfg.SeenCacheCap}
	r := &Router{
		Core:     core,
		sim:      s,
		med:      med,
		cfg:      cfg,
		table:    newRouteTable(),
		seenRREQ: route.NewDupCache(core, cache),
		bcast:    route.NewBcaster(core, med, sizeBcastHdr, 0, cache),
		pending:  route.NewPending[netif.Packet](cfg.BufferCap),
	}
	r.bcast.Disable = cfg.DisableBcastDupCache
	r.bcast.Accept = r.acceptBcast
	r.discTimeoutFn = r.discTimeout
	return r
}

// HopsTo reports the current route-table distance to dst in ad-hoc hops,
// if a valid route exists. It does not trigger discovery.
func (r *Router) HopsTo(dst int) (int, bool) {
	e, ok := r.table.get(dst, r.sim.Now())
	if !ok {
		return 0, false
	}
	return e.hopCount, true
}

// Broadcast floods payload to every node within ttl ad-hoc hops using the
// controlled broadcast (duplicate-suppressed, TTL-limited).
func (r *Router) Broadcast(ttl, size int, payload netif.Msg) {
	if ttl <= 0 {
		panic("aodv: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.ID()) {
		return
	}
	r.seq++
	r.bcast.Originate(ttl, size, payload, r.seq)
}

// acceptBcast is the per-hop side effect of the controlled broadcast:
// like an RREQ, a broadcast teaches relays the way back to its origin,
// so responders can reply by unicast immediately.
func (r *Router) acceptBcast(prev int, b *netif.Packet) int {
	now := r.sim.Now()
	r.table.update(b.Origin, prev, b.HopCount, b.OriginSeq, true, now, r.cfg.ActiveRouteTimeout)
	if prev != b.Origin {
		r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	}
	return b.HopCount
}

// Send routes an application payload of the given size to dst,
// discovering a route on demand. Sending to self delivers locally with
// zero hops on the next event-loop turn.
func (r *Router) Send(dst, size int, payload netif.Msg) {
	if dst == r.ID() {
		r.SelfDeliver(payload)
		return
	}
	r.Count.DataSent++
	if !r.med.Up(r.ID()) {
		return
	}
	pkt := netif.Packet{Kind: netif.PktData, Origin: r.ID(), Dst: dst, HopCount: 0, TTL: r.cfg.DataTTL, Size: size, Msg: payload}
	if _, ok := r.table.get(dst, r.sim.Now()); ok {
		r.forwardData(pkt)
		return
	}
	r.enqueue(pkt)
}

// enqueue buffers pkt awaiting a route and kicks discovery if necessary.
// Transit packets (local repair) share the buffer with locally
// originated ones.
func (r *Router) enqueue(pkt netif.Packet) {
	d, inProgress := r.pending.Get(pkt.Dst)
	if !inProgress {
		d = r.pending.Start(pkt.Dst)
		d.TTL = r.cfg.TTLStart
		d.Repair = pkt.Origin != r.ID()
		r.Count.Discoveries++
		r.sendRREQ(pkt.Dst, d)
	} else if pkt.Origin == r.ID() {
		// A locally originated packet upgrades a repair discovery to a
		// full escalating search.
		d.Repair = false
	}
	if !r.pending.Push(d, pkt) {
		r.Count.DataDropped++
		if pkt.Origin == r.ID() {
			r.FailSend(pkt.Dst, pkt.Msg)
		}
	}
}

// sendRREQ emits one ring of the expanding-ring search and arms the
// retry timer.
func (r *Router) sendRREQ(dst int, d *route.Discovery[netif.Packet]) {
	r.rreqID++
	r.seq++
	var dstSeq uint32
	if e, ok := r.table.raw(dst); ok && e.haveSeq {
		dstSeq = e.seq
	}
	q := netif.Packet{Kind: netif.PktRREQ, Origin: r.ID(), OriginSeq: r.seq, ID: r.rreqID, Dst: dst, DstSeq: dstSeq, HopCount: 0, TTL: d.TTL}
	r.seenRREQ.Mark(route.Key{Origin: r.ID(), ID: q.ID})
	r.Count.CtrlOrig++
	r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: sizeRREQ, Payload: q})

	wait := 2 * sim.Time(d.TTL) * r.cfg.HopTraversal
	d.Timer = r.sim.ScheduleArg(wait, r.discTimeoutFn, sim.Arg{I0: dst, X: d})
}

// discTimeout unpacks the typed-arg timer payload for discoveryTimeout.
func (r *Router) discTimeout(a sim.Arg) {
	r.discoveryTimeout(a.I0, a.X.(*route.Discovery[netif.Packet]))
}

// discoveryTimeout escalates the ring or gives up.
func (r *Router) discoveryTimeout(dst int, d *route.Discovery[netif.Packet]) {
	if !r.pending.Current(dst, d) { // completed or superseded
		return
	}
	if d.Repair {
		// One bounded attempt only.
		d.Retries = r.cfg.MaxDiscoveryRetries + 1
	} else if d.TTL < r.cfg.TTLMax {
		d.TTL += r.cfg.TTLIncrement
		if d.TTL > r.cfg.TTLMax {
			d.TTL = r.cfg.TTLMax
		}
	} else {
		d.Retries++
	}
	if d.Retries > r.cfg.MaxDiscoveryRetries {
		r.pending.Drop(dst)
		r.Count.DiscoverFailed++
		announced := false
		for _, pkt := range d.Queue {
			r.Count.DataDropped++
			if pkt.Origin == r.ID() {
				r.FailSend(dst, pkt.Msg)
			} else if !announced {
				// Failed local repair: tell upstream users of the route.
				r.sendRERRFor(dst, r.sim.Now())
				announced = true
			}
		}
		return
	}
	r.sendRREQ(dst, d)
}

// completeDiscovery flushes packets buffered for dst.
func (r *Router) completeDiscovery(dst int) {
	d, ok := r.pending.Take(dst)
	if !ok {
		return
	}
	for _, pkt := range d.Queue {
		r.forwardData(pkt)
	}
}

// forwardData sends pkt one hop along the current route. A missing or
// broken route triggers re-discovery — also for transit packets (AODV's
// local repair, RFC 3561 §6.12): the relay buffers the packet and
// searches for the destination itself rather than dropping.
func (r *Router) forwardData(pkt netif.Packet) {
	now := r.sim.Now()
	e, ok := r.table.get(pkt.Dst, now)
	if !ok {
		r.enqueue(pkt)
		return
	}
	if !r.med.InRange(r.ID(), e.nextHop) {
		// Link-layer feedback: the hop is gone. Tear down everything
		// that used it, tell the neighborhood, then locally repair.
		r.linkBreak(e.nextHop, now)
		r.enqueue(pkt)
		return
	}
	if pkt.Origin != r.ID() {
		r.Count.DataForwarded++
	}
	r.table.refresh(pkt.Dst, now, r.cfg.ActiveRouteTimeout)
	r.table.refresh(pkt.Origin, now, r.cfg.ActiveRouteTimeout)
	r.med.Send(radio.Frame{Src: r.ID(), Dst: e.nextHop, Size: pkt.Size + sizeDataHdr, Payload: pkt})
}

// linkBreak invalidates all routes through via and broadcasts an RERR.
func (r *Router) linkBreak(via int, now sim.Time) {
	lost := r.table.invalidateVia(via, now)
	if len(lost) == 0 {
		return
	}
	r.emitRERR(lost, false)
}

// sendRERRFor reports a single unroutable destination.
func (r *Router) sendRERRFor(dst int, now sim.Time) {
	seq, _ := r.table.invalidate(dst, now)
	r.emitRERR([]netif.Unreachable{{Dst: dst, Seq: seq}}, false)
}

func (r *Router) emitRERR(lost []netif.Unreachable, relay bool) {
	if !r.med.Up(r.ID()) {
		return
	}
	e := netif.Packet{Kind: netif.PktRERR, Unreachable: lost}
	if relay {
		r.Count.CtrlRelayed++
	} else {
		r.Count.CtrlOrig++
	}
	r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: rerrSize(len(lost)), Payload: e})
}

// HandleFrame is the radio receive callback; it dispatches on packet kind.
func (r *Router) HandleFrame(f radio.Frame) {
	switch f.Payload.Kind {
	case netif.PktRREQ:
		r.handleRREQ(f.Src, f.Payload)
	case netif.PktRREP:
		r.handleRREP(f.Src, f.Payload)
	case netif.PktRERR:
		r.handleRERR(f.Src, f.Payload)
	case netif.PktData:
		r.handleData(f.Src, f.Payload)
	case netif.PktBcast:
		r.bcast.Handle(f.Src, f.Payload)
	default:
		panic(fmt.Sprintf("aodv: unknown packet kind %d", f.Payload.Kind))
	}
}

func (r *Router) handleRREQ(prev int, q netif.Packet) {
	if q.Origin == r.ID() {
		return
	}
	k := route.Key{Origin: q.Origin, ID: q.ID}
	if r.seenRREQ.Seen(k) {
		r.Count.DupHits++
		return
	}
	r.seenRREQ.Mark(k)
	now := r.sim.Now()
	q.HopCount++
	// Learn/refresh the reverse route to the requester.
	r.table.update(q.Origin, prev, q.HopCount, q.OriginSeq, true, now, r.cfg.ActiveRouteTimeout)
	if prev != q.Origin {
		r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	}

	if q.Dst == r.ID() {
		// We are the destination: answer with our own sequence number.
		if seqGreater(q.DstSeq, r.seq) {
			r.seq = q.DstSeq
		}
		r.seq++
		r.sendRREP(netif.Packet{Kind: netif.PktRREP, Origin: q.Origin, Dst: r.ID(), DstSeq: r.seq, HopCount: 0}, now, false)
		return
	}
	if e, ok := r.table.get(q.Dst, now); ok && e.haveSeq && !seqGreater(q.DstSeq, e.seq) {
		// Intermediate node with a route at least as fresh as requested.
		r.sendRREP(netif.Packet{Kind: netif.PktRREP, Origin: q.Origin, Dst: q.Dst, DstSeq: e.seq, HopCount: e.hopCount}, now, false)
		return
	}
	if q.TTL > 1 {
		q.TTL--
		r.Count.CtrlRelayed++
		r.med.Send(radio.Frame{Src: r.ID(), Dst: radio.BroadcastAddr, Size: sizeRREQ, Payload: q})
	}
}

// sendRREP unicasts a reply one hop toward the requester.
func (r *Router) sendRREP(p netif.Packet, now sim.Time, relay bool) {
	e, ok := r.table.get(p.Origin, now)
	if !ok || !r.med.InRange(r.ID(), e.nextHop) {
		return // reverse route already gone; the ring will retry
	}
	if relay {
		r.Count.CtrlRelayed++
	} else {
		r.Count.CtrlOrig++
	}
	r.table.refresh(p.Origin, now, r.cfg.ActiveRouteTimeout)
	r.med.Send(radio.Frame{Src: r.ID(), Dst: e.nextHop, Size: sizeRREP, Payload: p})
}

func (r *Router) handleRREP(prev int, p netif.Packet) {
	now := r.sim.Now()
	p.HopCount++
	// Learn the forward route to the replied-for destination.
	r.table.update(p.Dst, prev, p.HopCount, p.DstSeq, true, now, r.cfg.ActiveRouteTimeout)
	r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	if p.Origin == r.ID() {
		r.completeDiscovery(p.Dst)
		return
	}
	r.sendRREP(p, now, true)
}

func (r *Router) handleRERR(prev int, e netif.Packet) {
	now := r.sim.Now()
	var propagate []netif.Unreachable
	for _, u := range e.Unreachable {
		if ent, ok := r.table.get(u.Dst, now); ok && ent.nextHop == prev {
			seq, was := r.table.invalidate(u.Dst, now)
			if was {
				propagate = append(propagate, netif.Unreachable{Dst: u.Dst, Seq: seq})
			}
		}
	}
	if len(propagate) > 0 {
		r.emitRERR(propagate, true)
	}
}

func (r *Router) handleData(prev int, pkt netif.Packet) {
	now := r.sim.Now()
	pkt.HopCount++
	// Path accumulation: we now know a route back to the packet origin.
	r.table.update(pkt.Origin, prev, pkt.HopCount, 0, false, now, r.cfg.ActiveRouteTimeout)
	r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	if pkt.Dst == r.ID() {
		r.DeliverUnicast(pkt.Origin, pkt.HopCount, pkt.Msg)
		return
	}
	if pkt.TTL <= 1 {
		r.Count.DataDropped++
		return
	}
	pkt.TTL--
	r.forwardData(pkt)
}
