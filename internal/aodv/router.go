package aodv

import (
	"fmt"

	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// The router implements the pluggable network-layer interface.
var _ netif.Protocol = (*Router)(nil)

// Config tunes the routing layer. Zero fields are filled from defaults.
type Config struct {
	ActiveRouteTimeout  sim.Time // lifetime of an unused route
	SeenCacheTimeout    sim.Time // duplicate-suppression window for floods
	MaxDiscoveryRetries int      // extra network-wide RREQ attempts
	TTLStart            int      // first expanding-ring radius
	TTLIncrement        int      // ring growth per attempt
	TTLMax              int      // network-wide search radius
	HopTraversal        sim.Time // per-hop time budget for discovery timers
	DataTTL             int      // hop budget for data packets
	BufferCap           int      // packets buffered per pending discovery

	// DisableBcastDupCache turns off the controlled broadcast's
	// duplicate suppression — the ablation of the paper's §7 ns-2
	// modification. With it off, every received copy of a flood is
	// re-forwarded (TTL-bounded broadcast storm).
	DisableBcastDupCache bool
}

// DefaultConfig returns the parameters used by the paper reproduction:
// AODV-draft-flavoured expanding ring over a network whose diameter is
// ~14 hops (100 m arena, 10 m range).
func DefaultConfig() Config {
	return Config{
		// Route staleness mostly manifests as a broken next hop, which
		// the link-layer InRange check catches on use; the timeout only
		// bounds silent staleness, so it can be generous.
		ActiveRouteTimeout:  30 * sim.Second,
		SeenCacheTimeout:    30 * sim.Second,
		MaxDiscoveryRetries: 2,
		TTLStart:            4,
		TTLIncrement:        4,
		TTLMax:              20,
		HopTraversal:        10 * sim.Millisecond,
		DataTTL:             30,
		BufferCap:           16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ActiveRouteTimeout <= 0 {
		c.ActiveRouteTimeout = d.ActiveRouteTimeout
	}
	if c.SeenCacheTimeout <= 0 {
		c.SeenCacheTimeout = d.SeenCacheTimeout
	}
	if c.MaxDiscoveryRetries <= 0 {
		c.MaxDiscoveryRetries = d.MaxDiscoveryRetries
	}
	if c.TTLStart <= 0 {
		c.TTLStart = d.TTLStart
	}
	if c.TTLIncrement <= 0 {
		c.TTLIncrement = d.TTLIncrement
	}
	if c.TTLMax <= 0 {
		c.TTLMax = d.TTLMax
	}
	if c.HopTraversal <= 0 {
		c.HopTraversal = d.HopTraversal
	}
	if c.DataTTL <= 0 {
		c.DataTTL = d.DataTTL
	}
	if c.BufferCap <= 0 {
		c.BufferCap = d.BufferCap
	}
	return c
}

// Delivery is an upper-layer arrival: who originated the message, how
// many ad-hoc hops it traveled, and the payload.
type Delivery = netif.Delivery

// Stats counts routing-layer activity for one node.
type Stats struct {
	RREQSent     uint64
	RREQRelayed  uint64
	RREPSent     uint64
	RERRSent     uint64
	DataSent     uint64
	DataRelayed  uint64
	DataDropped  uint64 // no route / TTL exhausted / buffer overflow
	BcastSent    uint64
	BcastRelayed uint64
	BcastDup     uint64 // duplicates suppressed by the controlled-broadcast cache
	Discoveries  uint64
	DiscoverFail uint64
}

type seenKey struct {
	origin int
	id     uint32
}

// discovery tracks one in-progress route search. A repair discovery
// (started for a transit packet, RFC 3561 §6.12) stays at the initial
// ring radius and never retries — local repair is a cheap bounded
// attempt, not a network-wide search.
type discovery struct {
	ttl     int
	retries int
	repair  bool
	timer   sim.Handle
	queue   []data
}

// Router is the per-node network layer. It attaches to the shared medium
// as the node's frame receiver and exposes unicast (AODV) and controlled
// broadcast to the layer above.
type Router struct {
	id  int
	sim *sim.Sim
	med *radio.Medium
	cfg Config

	table     *routeTable
	seq       uint32
	rreqID    uint32
	bcastID   uint32
	seenRREQ  map[seenKey]sim.Time
	seenBcast map[seenKey]sim.Time
	pending   map[int]*discovery
	stats     Stats

	onBroadcast  func(Delivery)
	onUnicast    func(Delivery)
	onSendFailed func(dst int, payload any)

	// Callbacks for the typed scheduling API, bound once at construction
	// so the hot paths schedule without a per-call closure allocation.
	selfDeliverFn func(sim.Arg)
	discTimeoutFn func(sim.Arg)
}

// NewRouter creates the routing layer for node id. The caller must pass
// r.HandleFrame as the node's radio receiver when joining the medium.
func NewRouter(id int, s *sim.Sim, med *radio.Medium, cfg Config) *Router {
	r := &Router{
		id:        id,
		sim:       s,
		med:       med,
		cfg:       cfg.withDefaults(),
		table:     newRouteTable(),
		seenRREQ:  make(map[seenKey]sim.Time),
		seenBcast: make(map[seenKey]sim.Time),
		pending:   make(map[int]*discovery),
	}
	r.selfDeliverFn = r.selfDeliver
	r.discTimeoutFn = r.discTimeout
	return r
}

// ID returns the node this router belongs to.
func (r *Router) ID() int { return r.id }

// Stats returns the router's activity counters.
func (r *Router) Stats() Stats { return r.stats }

// OnBroadcast installs the controlled-broadcast upper-layer hook. Every
// node that receives a (deduplicated) broadcast sees it, member of the
// overlay or not — exactly like a promiscuous flood relay.
func (r *Router) OnBroadcast(fn func(Delivery)) { r.onBroadcast = fn }

// OnUnicast installs the upper-layer hook for data addressed to this node.
func (r *Router) OnUnicast(fn func(Delivery)) { r.onUnicast = fn }

// OnSendFailed installs a hook invoked when a packet is abandoned because
// route discovery failed or the buffer overflowed.
func (r *Router) OnSendFailed(fn func(dst int, payload any)) { r.onSendFailed = fn }

// HopsTo reports the current route-table distance to dst in ad-hoc hops,
// if a valid route exists. It does not trigger discovery.
func (r *Router) HopsTo(dst int) (int, bool) {
	e, ok := r.table.get(dst, r.sim.Now())
	if !ok {
		return 0, false
	}
	return e.hopCount, true
}

// Broadcast floods payload to every node within ttl ad-hoc hops using the
// controlled broadcast (duplicate-suppressed, TTL-limited).
func (r *Router) Broadcast(ttl, size int, payload any) {
	if ttl <= 0 {
		panic("aodv: Broadcast with non-positive TTL")
	}
	if !r.med.Up(r.id) {
		return
	}
	r.bcastID++
	r.seq++
	pkt := bcast{Origin: r.id, OriginSeq: r.seq, ID: r.bcastID, HopCount: 0, TTL: ttl, Size: size, Payload: payload}
	r.markSeen(r.seenBcast, seenKey{r.id, pkt.ID})
	r.stats.BcastSent++
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: size + sizeBcastHdr, Payload: pkt})
}

// Send routes an application payload of the given size to dst,
// discovering a route on demand. Sending to self delivers locally with
// zero hops on the next event-loop turn.
func (r *Router) Send(dst, size int, payload any) {
	if dst == r.id {
		r.sim.ScheduleArg(0, r.selfDeliverFn, sim.Arg{X: payload})
		return
	}
	if !r.med.Up(r.id) {
		return
	}
	pkt := data{Origin: r.id, Dst: dst, HopCount: 0, TTL: r.cfg.DataTTL, Size: size, Payload: payload}
	r.stats.DataSent++
	if _, ok := r.table.get(dst, r.sim.Now()); ok {
		r.forwardData(pkt)
		return
	}
	r.enqueue(pkt)
}

// enqueue buffers pkt awaiting a route and kicks discovery if necessary.
// Transit packets (local repair) share the buffer with locally
// originated ones.
func (r *Router) enqueue(pkt data) {
	d, inProgress := r.pending[pkt.Dst]
	if !inProgress {
		d = &discovery{ttl: r.cfg.TTLStart, repair: pkt.Origin != r.id}
		r.pending[pkt.Dst] = d
		r.sendRREQ(pkt.Dst, d)
	} else if pkt.Origin == r.id {
		// A locally originated packet upgrades a repair discovery to a
		// full escalating search.
		d.repair = false
	}
	if len(d.queue) >= r.cfg.BufferCap {
		r.stats.DataDropped++
		if pkt.Origin == r.id {
			r.failSend(pkt.Dst, pkt.Payload)
		}
		return
	}
	d.queue = append(d.queue, pkt)
}

func (r *Router) failSend(dst int, payload any) {
	if r.onSendFailed != nil {
		r.onSendFailed(dst, payload)
	}
}

// sendRREQ emits one ring of the expanding-ring search and arms the
// retry timer.
func (r *Router) sendRREQ(dst int, d *discovery) {
	r.rreqID++
	r.seq++
	var dstSeq uint32
	if e, ok := r.table.raw(dst); ok && e.haveSeq {
		dstSeq = e.seq
	}
	q := rreq{Origin: r.id, OriginSeq: r.seq, ID: r.rreqID, Dst: dst, DstSeq: dstSeq, HopCount: 0, TTL: d.ttl}
	r.markSeen(r.seenRREQ, seenKey{r.id, q.ID})
	r.stats.RREQSent++
	r.stats.Discoveries++
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: sizeRREQ, Payload: q})

	wait := 2 * sim.Time(d.ttl) * r.cfg.HopTraversal
	d.timer = r.sim.ScheduleArg(wait, r.discTimeoutFn, sim.Arg{I0: dst, X: d})
}

// selfDeliver completes a Send addressed to this node on the next
// event-loop turn.
func (r *Router) selfDeliver(a sim.Arg) {
	if r.onUnicast != nil {
		r.onUnicast(Delivery{From: r.id, Hops: 0, Payload: a.X})
	}
}

// discTimeout unpacks the typed-arg timer payload for discoveryTimeout.
func (r *Router) discTimeout(a sim.Arg) {
	r.discoveryTimeout(a.I0, a.X.(*discovery))
}

// discoveryTimeout escalates the ring or gives up.
func (r *Router) discoveryTimeout(dst int, d *discovery) {
	if r.pending[dst] != d { // completed or superseded
		return
	}
	if d.repair {
		// One bounded attempt only.
		d.retries = r.cfg.MaxDiscoveryRetries + 1
	} else if d.ttl < r.cfg.TTLMax {
		d.ttl += r.cfg.TTLIncrement
		if d.ttl > r.cfg.TTLMax {
			d.ttl = r.cfg.TTLMax
		}
	} else {
		d.retries++
	}
	if d.retries > r.cfg.MaxDiscoveryRetries {
		delete(r.pending, dst)
		r.stats.DiscoverFail++
		announced := false
		for _, pkt := range d.queue {
			r.stats.DataDropped++
			if pkt.Origin == r.id {
				r.failSend(dst, pkt.Payload)
			} else if !announced {
				// Failed local repair: tell upstream users of the route.
				r.sendRERRFor(dst, r.sim.Now())
				announced = true
			}
		}
		return
	}
	r.sendRREQ(dst, d)
}

// completeDiscovery flushes packets buffered for dst.
func (r *Router) completeDiscovery(dst int) {
	d, ok := r.pending[dst]
	if !ok {
		return
	}
	delete(r.pending, dst)
	d.timer.Cancel()
	for _, pkt := range d.queue {
		r.forwardData(pkt)
	}
}

// forwardData sends pkt one hop along the current route. A missing or
// broken route triggers re-discovery — also for transit packets (AODV's
// local repair, RFC 3561 §6.12): the relay buffers the packet and
// searches for the destination itself rather than dropping.
func (r *Router) forwardData(pkt data) {
	now := r.sim.Now()
	e, ok := r.table.get(pkt.Dst, now)
	if !ok {
		r.enqueue(pkt)
		return
	}
	if !r.med.InRange(r.id, e.nextHop) {
		// Link-layer feedback: the hop is gone. Tear down everything
		// that used it, tell the neighborhood, then locally repair.
		r.linkBreak(e.nextHop, now)
		r.enqueue(pkt)
		return
	}
	if pkt.Origin != r.id {
		r.stats.DataRelayed++
	}
	r.table.refresh(pkt.Dst, now, r.cfg.ActiveRouteTimeout)
	r.table.refresh(pkt.Origin, now, r.cfg.ActiveRouteTimeout)
	r.med.Send(radio.Frame{Src: r.id, Dst: e.nextHop, Size: pkt.Size + sizeDataHdr, Payload: pkt})
}

// linkBreak invalidates all routes through via and broadcasts an RERR.
func (r *Router) linkBreak(via int, now sim.Time) {
	lost := r.table.invalidateVia(via, now)
	if len(lost) == 0 {
		return
	}
	r.emitRERR(lost)
}

// sendRERRFor reports a single unroutable destination.
func (r *Router) sendRERRFor(dst int, now sim.Time) {
	seq, _ := r.table.invalidate(dst, now)
	r.emitRERR([]unreachable{{Dst: dst, Seq: seq}})
}

func (r *Router) emitRERR(lost []unreachable) {
	if !r.med.Up(r.id) {
		return
	}
	e := rerr{Unreachable: lost}
	r.stats.RERRSent++
	r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: e.size(), Payload: e})
}

// HandleFrame is the radio receive callback; it dispatches on packet type.
func (r *Router) HandleFrame(f radio.Frame) {
	switch pkt := f.Payload.(type) {
	case rreq:
		r.handleRREQ(f.Src, pkt)
	case rrep:
		r.handleRREP(f.Src, pkt)
	case rerr:
		r.handleRERR(f.Src, pkt)
	case data:
		r.handleData(f.Src, pkt)
	case bcast:
		r.handleBcast(f.Src, pkt)
	default:
		panic(fmt.Sprintf("aodv: unknown payload type %T", f.Payload))
	}
}

func (r *Router) handleRREQ(prev int, q rreq) {
	if q.Origin == r.id || r.haveSeen(r.seenRREQ, seenKey{q.Origin, q.ID}) {
		return
	}
	r.markSeen(r.seenRREQ, seenKey{q.Origin, q.ID})
	now := r.sim.Now()
	q.HopCount++
	// Learn/refresh the reverse route to the requester.
	r.table.update(q.Origin, prev, q.HopCount, q.OriginSeq, true, now, r.cfg.ActiveRouteTimeout)
	if prev != q.Origin {
		r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	}

	if q.Dst == r.id {
		// We are the destination: answer with our own sequence number.
		if seqGreater(q.DstSeq, r.seq) {
			r.seq = q.DstSeq
		}
		r.seq++
		r.sendRREP(rrep{Origin: q.Origin, Dst: r.id, DstSeq: r.seq, HopCount: 0}, now)
		return
	}
	if e, ok := r.table.get(q.Dst, now); ok && e.haveSeq && !seqGreater(q.DstSeq, e.seq) {
		// Intermediate node with a route at least as fresh as requested.
		r.sendRREP(rrep{Origin: q.Origin, Dst: q.Dst, DstSeq: e.seq, HopCount: e.hopCount}, now)
		return
	}
	if q.TTL > 1 {
		q.TTL--
		r.stats.RREQRelayed++
		r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: sizeRREQ, Payload: q})
	}
}

// sendRREP unicasts a reply one hop toward the requester.
func (r *Router) sendRREP(p rrep, now sim.Time) {
	e, ok := r.table.get(p.Origin, now)
	if !ok || !r.med.InRange(r.id, e.nextHop) {
		return // reverse route already gone; the ring will retry
	}
	r.stats.RREPSent++
	r.table.refresh(p.Origin, now, r.cfg.ActiveRouteTimeout)
	r.med.Send(radio.Frame{Src: r.id, Dst: e.nextHop, Size: sizeRREP, Payload: p})
}

func (r *Router) handleRREP(prev int, p rrep) {
	now := r.sim.Now()
	p.HopCount++
	// Learn the forward route to the replied-for destination.
	r.table.update(p.Dst, prev, p.HopCount, p.DstSeq, true, now, r.cfg.ActiveRouteTimeout)
	r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	if p.Origin == r.id {
		r.completeDiscovery(p.Dst)
		return
	}
	r.sendRREP(p, now)
}

func (r *Router) handleRERR(prev int, e rerr) {
	now := r.sim.Now()
	var propagate []unreachable
	for _, u := range e.Unreachable {
		if ent, ok := r.table.get(u.Dst, now); ok && ent.nextHop == prev {
			seq, was := r.table.invalidate(u.Dst, now)
			if was {
				propagate = append(propagate, unreachable{Dst: u.Dst, Seq: seq})
			}
		}
	}
	if len(propagate) > 0 {
		r.emitRERR(propagate)
	}
}

func (r *Router) handleData(prev int, pkt data) {
	now := r.sim.Now()
	pkt.HopCount++
	// Path accumulation: we now know a route back to the packet origin.
	r.table.update(pkt.Origin, prev, pkt.HopCount, 0, false, now, r.cfg.ActiveRouteTimeout)
	r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	if pkt.Dst == r.id {
		if r.onUnicast != nil {
			r.onUnicast(Delivery{From: pkt.Origin, Hops: pkt.HopCount, Payload: pkt.Payload})
		}
		return
	}
	if pkt.TTL <= 1 {
		r.stats.DataDropped++
		return
	}
	pkt.TTL--
	r.forwardData(pkt)
}

func (r *Router) handleBcast(prev int, b bcast) {
	if b.Origin == r.id {
		return
	}
	dup := r.haveSeen(r.seenBcast, seenKey{b.Origin, b.ID})
	if dup {
		r.stats.BcastDup++
		if !r.cfg.DisableBcastDupCache {
			return
		}
	}
	r.markSeen(r.seenBcast, seenKey{b.Origin, b.ID})
	now := r.sim.Now()
	b.HopCount++
	// Like an RREQ, a controlled broadcast teaches relays the way back to
	// its origin, so responders can reply by unicast immediately.
	r.table.update(b.Origin, prev, b.HopCount, b.OriginSeq, true, now, r.cfg.ActiveRouteTimeout)
	if prev != b.Origin {
		r.table.update(prev, prev, 1, 0, false, now, r.cfg.ActiveRouteTimeout)
	}
	if r.onBroadcast != nil {
		r.onBroadcast(Delivery{From: b.Origin, Hops: b.HopCount, Payload: b.Payload})
	}
	if b.TTL > 1 {
		b.TTL--
		r.stats.BcastRelayed++
		r.med.Send(radio.Frame{Src: r.id, Dst: radio.BroadcastAddr, Size: b.Size + sizeBcastHdr, Payload: b})
	}
}

// haveSeen reports whether key is in the duplicate cache and still fresh.
func (r *Router) haveSeen(cache map[seenKey]sim.Time, k seenKey) bool {
	t, ok := cache[k]
	return ok && r.sim.Now()-t < r.cfg.SeenCacheTimeout
}

// markSeen records key, sweeping expired entries when the cache grows.
func (r *Router) markSeen(cache map[seenKey]sim.Time, k seenKey) {
	if len(cache) > 4096 {
		cutoff := r.sim.Now() - r.cfg.SeenCacheTimeout
		for key, t := range cache {
			if t < cutoff {
				delete(cache, key)
			}
		}
	}
	cache[k] = r.sim.Now()
}
