package aodv

import (
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// lossyNet builds a line topology over a lossy medium.
func lossyNet(t *testing.T, seed int64, n int, loss float64) *testNet {
	t.Helper()
	s := sim.New(seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: n,
		Latency:  2 * sim.Millisecond,
		Jitter:   sim.Millisecond,
		LossProb: loss,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := &testNet{
		s:       s,
		med:     med,
		routers: make([]*Router, n),
		unicast: make([][]Delivery, n),
		bcasts:  make([][]Delivery, n),
		failed:  make([][]int, n),
	}
	for i := 0; i < n; i++ {
		i := i
		r := NewRouter(i, s, med, Config{})
		r.OnUnicast(func(d Delivery) { net.unicast[i] = append(net.unicast[i], d) })
		r.OnBroadcast(func(d Delivery) { net.bcasts[i] = append(net.bcasts[i], d) })
		r.OnSendFailed(func(dst int, _ netif.Msg) { net.failed[i] = append(net.failed[i], dst) })
		med.Join(i, geom.Point{X: 5 + 8*float64(i), Y: 50}, r.HandleFrame)
		net.routers[i] = r
	}
	return net
}

func TestDiscoveryTolerates10PercentLoss(t *testing.T) {
	// With 10% frame loss over a 4-hop chain the per-packet ceiling is
	// 0.9^4 ≈ 66% (data frames are not retransmitted), further reduced
	// by lossy discoveries. The property under test is that the router
	// keeps functioning — a solid fraction of packets still arrives and
	// the pipeline never wedges.
	n := lossyNet(t, 1, 5, 0.10)
	for i := 0; i < 20; i++ {
		i := i
		n.s.At(sim.Time(i)*10*sim.Second, func() {
			n.routers[0].Send(4, 32, netif.TestMsg(uint32(i)))
		})
	}
	n.s.Run(5 * sim.Minute)
	if got := len(n.unicast[4]); got < 4 {
		t.Errorf("delivered %d/20 under 10%% loss, want >= 4", got)
	}
	// Lossless control: the same workload without loss delivers ~all.
	ctl := lossyNet(t, 1, 5, 0)
	for i := 0; i < 20; i++ {
		i := i
		ctl.s.At(sim.Time(i)*10*sim.Second, func() {
			ctl.routers[0].Send(4, 32, netif.TestMsg(uint32(i)))
		})
	}
	ctl.s.Run(5 * sim.Minute)
	if got := len(ctl.unicast[4]); got < 19 {
		t.Errorf("lossless control delivered %d/20, want >= 19", got)
	}
}

func TestFloodRedundancyBeatsLossForBroadcast(t *testing.T) {
	// A controlled broadcast in a clique has many redundant paths; even
	// at 30% loss nearly every node should hear it.
	s := sim.New(2)
	const nodes = 10
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 100, H: 100},
		Range:    10,
		NumNodes: nodes,
		Latency:  2 * sim.Millisecond,
		LossProb: 0.30,
	})
	if err != nil {
		t.Fatal(err)
	}
	reached := make([]bool, nodes)
	routers := make([]*Router, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		routers[i] = NewRouter(i, s, med, Config{})
		routers[i].OnBroadcast(func(Delivery) { reached[i] = true })
		med.Join(i, geom.Point{X: 50 + float64(i%3)*2, Y: 50 + float64(i/3)*2}, routers[i].HandleFrame)
	}
	// Several rounds: each is an independent flood.
	hits := 0
	const rounds = 10
	for round := 0; round < rounds; round++ {
		for i := range reached {
			reached[i] = false
		}
		routers[0].Broadcast(4, 16, netif.TestMsg(uint32(round)))
		s.Run(s.Now() + sim.Second)
		for i := 1; i < nodes; i++ {
			if reached[i] {
				hits++
			}
		}
	}
	total := rounds * (nodes - 1)
	if hits < total*8/10 {
		t.Errorf("flood reached %d/%d node-rounds at 30%% loss, want >= 80%%", hits, total)
	}
}

func TestMobilityChurnDoesNotPanicRouting(t *testing.T) {
	// Stress: nodes teleport randomly every second while traffic flows;
	// the routing layer must stay consistent (no panics, no stuck
	// state), even though many packets die.
	n := lossyNet(t, 3, 12, 0.05)
	rng := n.s.NewRand()
	arena := geom.Rect{W: 60, H: 60}
	sim.NewTicker(n.s, sim.Second, func() {
		id := rng.Intn(12)
		if n.med.Up(id) {
			n.med.SetPos(id, arena.RandomPoint(rng))
		}
	})
	sim.NewTicker(n.s, 3*sim.Second, func() {
		src, dst := rng.Intn(12), rng.Intn(12)
		n.routers[src].Send(dst, 24, netif.TestMsg(9))
	})
	// Also cycle a node off and on.
	sim.NewTicker(n.s, 45*sim.Second, func() {
		if n.med.Up(11) {
			n.med.Leave(11)
		} else {
			n.med.Join(11, arena.RandomPoint(rng), n.routers[11].HandleFrame)
		}
	})
	n.s.Run(10 * sim.Minute)
	delivered := 0
	for i := range n.unicast {
		delivered += len(n.unicast[i])
	}
	if delivered == 0 {
		t.Error("no packet delivered in 10 minutes of churn — routing wedged")
	}
}
