package aodv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// testNet wires a static topology of routers over one medium.
type testNet struct {
	s       *sim.Sim
	med     *radio.Medium
	routers []*Router
	// unicast[i] and bcasts[i] collect deliveries at node i.
	unicast [][]Delivery
	bcasts  [][]Delivery
	failed  [][]int // per node: destinations whose sends failed
}

func newTestNet(t *testing.T, seed int64, pts []geom.Point, cfg Config) *testNet {
	t.Helper()
	s := sim.New(seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: len(pts),
		Latency:  2 * sim.Millisecond,
		Jitter:   sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{
		s:       s,
		med:     med,
		routers: make([]*Router, len(pts)),
		unicast: make([][]Delivery, len(pts)),
		bcasts:  make([][]Delivery, len(pts)),
		failed:  make([][]int, len(pts)),
	}
	for i, p := range pts {
		i := i
		r := NewRouter(i, s, med, cfg)
		r.OnUnicast(func(d Delivery) { n.unicast[i] = append(n.unicast[i], d) })
		r.OnBroadcast(func(d Delivery) { n.bcasts[i] = append(n.bcasts[i], d) })
		r.OnSendFailed(func(dst int, _ netif.Msg) { n.failed[i] = append(n.failed[i], dst) })
		med.Join(i, p, r.HandleFrame)
		n.routers[i] = r
	}
	return n
}

// line returns n points spaced 8 m apart on a row (range is 10 m, so each
// node reaches exactly its neighbors).
func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 5 + 8*float64(i), Y: 50}
	}
	return pts
}

func TestUnicastOverMultipleHops(t *testing.T) {
	n := newTestNet(t, 1, line(5), Config{})
	n.routers[0].Send(4, 100, netif.TestMsg(11))
	n.s.Run(10 * sim.Second)
	got := n.unicast[4]
	if len(got) != 1 {
		t.Fatalf("node 4 deliveries = %v, want 1", got)
	}
	if got[0].From != 0 || got[0].Hops != 4 || got[0].Payload != netif.TestMsg(11) {
		t.Errorf("delivery = %+v, want from 0, 4 hops", got[0])
	}
	// Subsequent sends reuse the route: no new discovery.
	before := n.routers[0].Stats().Discoveries
	n.routers[0].Send(4, 100, netif.TestMsg(12))
	n.s.Run(20 * sim.Second)
	if len(n.unicast[4]) != 2 {
		t.Fatal("second packet not delivered")
	}
	if n.routers[0].Stats().Discoveries != before {
		t.Error("second send triggered a new discovery despite valid route")
	}
}

func TestSendToSelf(t *testing.T) {
	n := newTestNet(t, 1, line(2), Config{})
	n.routers[0].Send(0, 10, netif.TestMsg(1))
	n.s.Run(sim.Second)
	if len(n.unicast[0]) != 1 || n.unicast[0][0].Hops != 0 {
		t.Fatalf("self delivery = %v, want one with 0 hops", n.unicast[0])
	}
}

func TestHopsToAfterDiscovery(t *testing.T) {
	n := newTestNet(t, 1, line(4), Config{})
	if _, ok := n.routers[0].HopsTo(3); ok {
		t.Fatal("HopsTo valid before any discovery")
	}
	n.routers[0].Send(3, 10, netif.TestMsg(2))
	n.s.Run(10 * sim.Second)
	h, ok := n.routers[0].HopsTo(3)
	if !ok || h != 3 {
		t.Fatalf("HopsTo(3) = (%d,%v), want (3,true)", h, ok)
	}
	// The destination also learned the reverse route.
	h, ok = n.routers[3].HopsTo(0)
	if !ok || h != 3 {
		t.Fatalf("reverse HopsTo(0) = (%d,%v), want (3,true)", h, ok)
	}
}

func TestExpandingRingEscalates(t *testing.T) {
	cfg := Config{TTLStart: 2, TTLIncrement: 2, TTLMax: 10}
	n := newTestNet(t, 1, line(8), cfg) // 7 hops away: needs 3 rings
	n.routers[0].Send(7, 10, netif.TestMsg(3))
	n.s.Run(30 * sim.Second)
	if len(n.unicast[7]) != 1 {
		t.Fatalf("far node deliveries = %v, want 1", n.unicast[7])
	}
	if got := n.routers[0].Stats().CtrlOrig; got < 3 {
		t.Errorf("RREQSent = %d, want >= 3 (ring escalation)", got)
	}
}

func TestDiscoveryFailureNotifies(t *testing.T) {
	// Node 2 is unreachable (far corner).
	pts := append(line(2), geom.Point{X: 190, Y: 190})
	n := newTestNet(t, 1, pts, Config{TTLStart: 2, TTLIncrement: 4, TTLMax: 8, MaxDiscoveryRetries: 1})
	n.routers[0].Send(2, 10, netif.TestMsg(4))
	n.s.Run(2 * sim.Minute)
	if len(n.failed[0]) != 1 || n.failed[0][0] != 2 {
		t.Fatalf("failed = %v, want [2]", n.failed[0])
	}
	if n.routers[0].Stats().DiscoverFailed != 1 {
		t.Errorf("DiscoverFail = %d, want 1", n.routers[0].Stats().DiscoverFailed)
	}
	if len(n.unicast[2]) != 0 {
		t.Error("unreachable node received data")
	}
}

func TestBroadcastTTLLimitsReach(t *testing.T) {
	n := newTestNet(t, 1, line(6), Config{})
	n.routers[0].Broadcast(2, 50, netif.TestMsg(5))
	n.s.Run(sim.Second)
	wantHops := []int{0, 1, 2, 0, 0, 0} // 0 means not reached (origin gets nothing)
	for i := 1; i < 6; i++ {
		got := n.bcasts[i]
		if wantHops[i] == 0 {
			if len(got) != 0 {
				t.Errorf("node %d beyond TTL received %v", i, got)
			}
			continue
		}
		if len(got) != 1 {
			t.Fatalf("node %d deliveries = %v, want 1", i, got)
		}
		if got[0].Hops != wantHops[i] || got[0].From != 0 {
			t.Errorf("node %d delivery = %+v, want hops %d from 0", i, got[0], wantHops[i])
		}
	}
	if len(n.bcasts[0]) != 0 {
		t.Error("origin delivered its own broadcast")
	}
}

// clique returns n points all within range of each other.
func clique(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 50 + float64(i%3), Y: 50 + float64(i/3)}
	}
	return pts
}

func TestBroadcastDedupInClique(t *testing.T) {
	n := newTestNet(t, 1, clique(8), Config{})
	n.routers[0].Broadcast(6, 50, netif.TestMsg(6))
	n.s.Run(sim.Second)
	for i := 1; i < 8; i++ {
		if len(n.bcasts[i]) != 1 {
			t.Errorf("node %d delivered %d copies, want exactly 1", i, len(n.bcasts[i]))
		}
	}
	// Duplicates were suppressed somewhere.
	var dups uint64
	for _, r := range n.routers {
		dups += r.Stats().DupHits
	}
	if dups == 0 {
		t.Error("no duplicate suppression in a clique flood")
	}
}

func TestBroadcastInstallsReverseRoute(t *testing.T) {
	n := newTestNet(t, 1, line(4), Config{})
	n.routers[0].Broadcast(6, 50, netif.TestMsg(7))
	n.s.Run(sim.Second)
	// Node 3 heard the flood 3 hops out; it can unicast back without any
	// route discovery of its own.
	n.routers[3].Send(0, 20, netif.TestMsg(8))
	n.s.Run(2 * sim.Second)
	if len(n.unicast[0]) != 1 || n.unicast[0][0].From != 3 {
		t.Fatalf("reply not delivered: %v", n.unicast[0])
	}
	if got := n.routers[3].Stats().CtrlOrig; got != 0 {
		t.Errorf("responder sent %d RREQs; reverse route from bcast not used", got)
	}
}

func TestLinkBreakRecoversViaAlternatePath(t *testing.T) {
	// Diamond: 0 - 1 - 3 and 0 - 2 - 3 (1 is the shorter-established hop).
	pts := []geom.Point{
		{X: 50, Y: 50},
		{X: 58, Y: 44},
		{X: 58, Y: 56},
		{X: 66, Y: 50},
	}
	n := newTestNet(t, 1, pts, Config{})
	n.routers[0].Send(3, 10, netif.TestMsg(13))
	n.s.Run(5 * sim.Second)
	if len(n.unicast[3]) != 1 {
		t.Fatal("initial packet not delivered")
	}
	// Find which relay carried it and move that relay out of range.
	relay := 1
	if n.routers[2].Stats().DataForwarded > 0 {
		relay = 2
	}
	n.med.SetPos(relay, geom.Point{X: 150, Y: 150})
	n.routers[0].Send(3, 10, netif.TestMsg(14))
	n.s.Run(60 * sim.Second)
	if len(n.unicast[3]) != 2 {
		t.Fatalf("deliveries = %d, want 2 (recovery via alternate relay)", len(n.unicast[3]))
	}
	if n.unicast[3][1].Payload != netif.TestMsg(14) {
		t.Errorf("second delivery = %+v", n.unicast[3][1])
	}
}

func TestRERRPropagates(t *testing.T) {
	// Chain 0-1-2-3; traffic 0->3 establishes routes at 1 and 2. Then 3
	// vanishes; next packet from 0 must trigger RERRs that invalidate the
	// stale route at node 1 as well.
	n := newTestNet(t, 1, line(4), Config{})
	n.routers[0].Send(3, 10, netif.TestMsg(15))
	n.s.Run(5 * sim.Second)
	n.med.Leave(3)
	n.routers[0].Send(3, 10, netif.TestMsg(16))
	n.s.Run(10 * sim.Second)
	var rerrs uint64
	for _, r := range n.routers[:3] {
		rerrs += r.Stats().CtrlOrig
	}
	if rerrs == 0 {
		t.Error("no RERR emitted after next-hop loss")
	}
	if _, ok := n.routers[1].HopsTo(3); ok {
		t.Error("stale route to dead node still valid at relay after RERR")
	}
}

func TestIntermediateNodeReplies(t *testing.T) {
	n := newTestNet(t, 1, line(5), Config{})
	// Establish 4's route knowledge at relay nodes via 0->4 traffic.
	n.routers[0].Send(4, 10, netif.TestMsg(17))
	n.s.Run(5 * sim.Second)
	// New requester 1 discovers 4: node 1..3 have fresh routes, so an
	// intermediate RREP should answer without the RREQ reaching 4 — but
	// either way the data must arrive.
	n.routers[1].Send(4, 10, netif.TestMsg(18))
	n.s.Run(10 * sim.Second)
	if len(n.unicast[4]) != 2 {
		t.Fatalf("deliveries at 4 = %d, want 2", len(n.unicast[4]))
	}
}

func TestDataTTLExhaustionDrops(t *testing.T) {
	cfg := Config{DataTTL: 2} // 2 hops max; target is 3 hops away
	n := newTestNet(t, 1, line(4), cfg)
	n.routers[0].Send(3, 10, netif.TestMsg(19))
	n.s.Run(20 * sim.Second)
	if len(n.unicast[3]) != 0 {
		t.Fatal("packet delivered despite TTL < path length")
	}
}

func TestBroadcastFromDownNodeIsNoop(t *testing.T) {
	n := newTestNet(t, 1, line(3), Config{})
	n.med.Leave(0)
	n.routers[0].Broadcast(3, 10, netif.TestMsg(20))
	n.routers[0].Send(2, 10, netif.TestMsg(21))
	n.s.Run(5 * sim.Second)
	if len(n.bcasts[1])+len(n.unicast[2]) != 0 {
		t.Fatal("down node transmitted")
	}
}

func TestBufferOverflowFailsSend(t *testing.T) {
	pts := append(line(2), geom.Point{X: 190, Y: 190})
	cfg := Config{BufferCap: 2, TTLStart: 2, TTLIncrement: 2, TTLMax: 4, MaxDiscoveryRetries: 1}
	n := newTestNet(t, 1, pts, cfg)
	for i := 0; i < 5; i++ {
		n.routers[0].Send(2, 10, netif.TestMsg(uint32(i)))
	}
	// 3 of 5 must fail immediately on buffer overflow; the other 2 fail
	// when discovery gives up.
	n.s.Run(2 * sim.Minute)
	if len(n.failed[0]) != 5 {
		t.Fatalf("failed count = %d, want 5", len(n.failed[0]))
	}
}

func TestDisabledDupCacheCausesStorm(t *testing.T) {
	// The ablation switch: without duplicate suppression a clique flood
	// re-forwards every received copy (bounded only by TTL).
	run := func(disable bool) uint64 {
		s := sim.New(9)
		med, err := radio.NewMedium(s, radio.Config{
			Arena: geom.Rect{W: 100, H: 100}, Range: 10, NumNodes: 8,
			Latency: 2 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		routers := make([]*Router, 8)
		for i := 0; i < 8; i++ {
			routers[i] = NewRouter(i, s, med, Config{DisableBcastDupCache: disable})
			med.Join(i, geom.Point{X: 50 + float64(i%3), Y: 50 + float64(i/3)}, routers[i].HandleFrame)
		}
		routers[0].Broadcast(4, 16, netif.TestMsg(23))
		s.Run(10 * sim.Second)
		var rx uint64
		for i := 0; i < 8; i++ {
			rx += med.Stats(i).RxFrames
		}
		return rx
	}
	cached, naive := run(false), run(true)
	if naive < 4*cached {
		t.Errorf("storm factor = %.1f (rx %d vs %d), want >= 4x without the cache",
			float64(naive)/float64(cached), naive, cached)
	}
}

// Property: on a random connected static topology, any pair completes a
// round trip, and the delivered hop count is at least the BFS distance.
func TestQuickUnicastOnRandomTopology(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 25
		arena := geom.Rect{W: 60, H: 60}
		pts := make([]geom.Point, nodes)
		for i := range pts {
			pts[i] = arena.RandomPoint(rng)
		}
		adj := adjacency(pts, 10)
		dist := bfs(adj, 0)
		// Pick the farthest reachable node; skip disconnected layouts.
		target, best := -1, 0
		for i, d := range dist {
			if d > best && d < 1<<30 {
				target, best = i, d
			}
		}
		if target < 0 {
			return true
		}
		n := newTestNet(t, seed, pts, Config{})
		n.routers[0].Send(target, 10, netif.TestMsg(22))
		n.s.Run(time30s())
		if len(n.unicast[target]) != 1 {
			return false
		}
		d := n.unicast[target][0]
		return d.Hops >= best && d.Hops <= DefaultConfig().DataTTL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func time30s() sim.Time { return 30 * sim.Second }

func adjacency(pts []geom.Point, r float64) [][]int {
	adj := make([][]int, len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= r {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

func bfs(adj [][]int, src int) []int {
	const inf = 1 << 30
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Property: a TTL-k controlled broadcast reaches exactly the nodes whose
// BFS distance is within k (static topology, no loss).
func TestQuickBroadcastReach(t *testing.T) {
	f := func(seed int64, ttlRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ttl := 1 + int(ttlRaw%6)
		const nodes = 20
		arena := geom.Rect{W: 50, H: 50}
		pts := make([]geom.Point, nodes)
		for i := range pts {
			pts[i] = arena.RandomPoint(rng)
		}
		dist := bfs(adjacency(pts, 10), 0)
		n := newTestNet(t, seed, pts, Config{})
		n.routers[0].Broadcast(ttl, 10, netif.TestMsg(24))
		n.s.Run(time30s())
		for i := 1; i < nodes; i++ {
			reached := len(n.bcasts[i]) > 0
			want := dist[i] <= ttl
			if reached != want {
				return false
			}
			if reached && n.bcasts[i][0].Hops != dist[i] {
				// The first copy travels a shortest path in a
				// synchronized flood... but jitter can make a longer
				// path win; allow hops >= dist.
				if n.bcasts[i][0].Hops < dist[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
