package aodv

import (
	"testing"

	"manetp2p/internal/sim"
)

func TestSeqGreaterWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{1, 1, false},
		{0, 0xffffffff, true}, // wrapped: 0 is "greater" than max
		{0xffffffff, 0, false},
		{0x80000001, 1, false}, // more than half the space apart
	}
	for _, c := range cases {
		if got := seqGreater(c.a, c.b); got != c.want {
			t.Errorf("seqGreater(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteTableInstallAndExpiry(t *testing.T) {
	rt := newRouteTable()
	const life = 10 * sim.Second
	if !rt.update(5, 2, 3, 7, true, 0, life) {
		t.Fatal("fresh install rejected")
	}
	e, ok := rt.get(5, 5*sim.Second)
	if !ok || e.nextHop != 2 || e.hopCount != 3 {
		t.Fatalf("get = %+v ok=%v, want valid route via 2", e, ok)
	}
	if _, ok := rt.get(5, 11*sim.Second); ok {
		t.Fatal("expired route still valid")
	}
	// An expired route must accept any replacement.
	if !rt.update(5, 9, 8, 1, true, 12*sim.Second, life) {
		t.Fatal("replacement of expired route rejected")
	}
}

func TestRouteTableFreshnessRules(t *testing.T) {
	rt := newRouteTable()
	const life = 100 * sim.Second
	rt.update(5, 2, 3, 10, true, 0, life)
	// Older sequence number: reject.
	if rt.update(5, 4, 1, 9, true, 0, life) {
		t.Error("stale-seq update accepted")
	}
	// Same seq, longer path: reject.
	if rt.update(5, 4, 5, 10, true, 0, life) {
		t.Error("same-seq longer-path update accepted")
	}
	// Same seq, shorter path: accept.
	if !rt.update(5, 4, 2, 10, true, 0, life) {
		t.Error("same-seq shorter-path update rejected")
	}
	// Newer seq, even if longer: accept.
	if !rt.update(5, 7, 9, 11, true, 0, life) {
		t.Error("fresher-seq update rejected")
	}
	e, _ := rt.get(5, 0)
	if e.nextHop != 7 || e.hopCount != 9 || e.seq != 11 {
		t.Errorf("entry = %+v, want via 7 hops 9 seq 11", e)
	}
	// Seqless update against seq-bearing valid route: only shorter wins.
	if rt.update(5, 8, 12, 0, false, 0, life) {
		t.Error("seqless longer update accepted")
	}
	if !rt.update(5, 8, 3, 0, false, 0, life) {
		t.Error("seqless shorter update rejected")
	}
}

func TestRouteTableInvalidateBumpsSeq(t *testing.T) {
	rt := newRouteTable()
	rt.update(5, 2, 3, 10, true, 0, 100*sim.Second)
	seq, was := rt.invalidate(5, 0)
	if !was || seq != 11 {
		t.Fatalf("invalidate = (%d,%v), want (11,true)", seq, was)
	}
	if _, ok := rt.get(5, 0); ok {
		t.Fatal("invalidated route still valid")
	}
	// A route with the bumped seq must now be acceptable again.
	if !rt.update(5, 3, 4, 11, true, 0, 100*sim.Second) {
		t.Fatal("route with bumped seq rejected after invalidate")
	}
}

func TestRouteTableInvalidateVia(t *testing.T) {
	rt := newRouteTable()
	const life = 100 * sim.Second
	rt.update(5, 2, 3, 10, true, 0, life)
	rt.update(6, 2, 4, 20, true, 0, life)
	rt.update(7, 3, 1, 30, true, 0, life)
	lost := rt.invalidateVia(2, 0)
	if len(lost) != 2 {
		t.Fatalf("invalidateVia lost %v, want 2 destinations", lost)
	}
	if _, ok := rt.get(7, 0); !ok {
		t.Error("route via different hop was torn down")
	}
	for _, u := range lost {
		if u.Dst != 5 && u.Dst != 6 {
			t.Errorf("unexpected lost destination %d", u.Dst)
		}
	}
}

func TestRouteTableRefresh(t *testing.T) {
	rt := newRouteTable()
	rt.update(5, 2, 3, 10, true, 0, 10*sim.Second)
	rt.refresh(5, 8*sim.Second, 10*sim.Second)
	if _, ok := rt.get(5, 15*sim.Second); !ok {
		t.Fatal("refreshed route expired at original deadline")
	}
	// Refreshing an invalid route is a no-op.
	rt.invalidate(5, 15*sim.Second)
	rt.refresh(5, 15*sim.Second, 10*sim.Second)
	if _, ok := rt.get(5, 16*sim.Second); ok {
		t.Fatal("refresh resurrected an invalid route")
	}
}
