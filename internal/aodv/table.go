package aodv

import (
	"cmp"
	"slices"

	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
)

// routeEntry is one row of the per-node routing table.
type routeEntry struct {
	nextHop    int
	hopCount   int
	seq        uint32
	validUntil sim.Time
	valid      bool
	haveSeq    bool // seq is meaningful (learned, not guessed)
}

// routeTable maps destination -> entry. Expiry is lazy: lookups treat
// entries past validUntil as invalid.
type routeTable struct {
	entries map[int]*routeEntry
}

func newRouteTable() *routeTable {
	return &routeTable{entries: make(map[int]*routeEntry)}
}

// get returns the entry for dst if it is valid at time now.
func (t *routeTable) get(dst int, now sim.Time) (*routeEntry, bool) {
	e, ok := t.entries[dst]
	if !ok || !e.valid || e.validUntil < now {
		return e, false
	}
	return e, true
}

// raw returns the entry regardless of validity (for sequence numbers).
func (t *routeTable) raw(dst int) (*routeEntry, bool) {
	e, ok := t.entries[dst]
	return e, ok
}

// update installs a route to dst if it is fresher (higher seq), or equally
// fresh but shorter, or if no valid route exists. It reports whether the
// table changed.
func (t *routeTable) update(dst, nextHop, hopCount int, seq uint32, haveSeq bool, now, lifetime sim.Time) bool {
	e, ok := t.entries[dst]
	if !ok {
		t.entries[dst] = &routeEntry{
			nextHop: nextHop, hopCount: hopCount, seq: seq,
			validUntil: now + lifetime, valid: true, haveSeq: haveSeq,
		}
		return true
	}
	currentValid := e.valid && e.validUntil >= now
	accept := false
	switch {
	case !currentValid:
		accept = true
	case haveSeq && e.haveSeq && seqGreater(seq, e.seq):
		accept = true
	case haveSeq && e.haveSeq && seq == e.seq && hopCount < e.hopCount:
		accept = true
	case haveSeq && !e.haveSeq:
		accept = true
	case !haveSeq && hopCount < e.hopCount:
		accept = true
	}
	if !accept {
		return false
	}
	e.nextHop = nextHop
	e.hopCount = hopCount
	if haveSeq {
		// Never move a sequence number backwards.
		if !e.haveSeq || seqGreater(seq, e.seq) || seq == e.seq {
			e.seq = seq
		}
		e.haveSeq = true
	}
	e.validUntil = now + lifetime
	e.valid = true
	return true
}

// refresh extends the lifetime of an existing valid route (route used).
func (t *routeTable) refresh(dst int, now, lifetime sim.Time) {
	if e, ok := t.get(dst, now); ok {
		e.validUntil = now + lifetime
	}
}

// invalidate marks the route to dst broken and bumps its sequence number
// so stale information cannot resurrect it. It reports the entry's last
// sequence number (for RERR) and whether a valid route was actually torn
// down.
func (t *routeTable) invalidate(dst int, now sim.Time) (uint32, bool) {
	e, ok := t.entries[dst]
	if !ok {
		return 0, false
	}
	wasValid := e.valid && e.validUntil >= now
	e.valid = false
	if e.haveSeq {
		e.seq++
	}
	return e.seq, wasValid
}

// invalidateVia tears down all valid routes whose next hop is via and
// returns the affected destinations (in id order, so identical runs emit
// identical RERRs) with their bumped sequence numbers.
func (t *routeTable) invalidateVia(via int, now sim.Time) []netif.Unreachable {
	var out []netif.Unreachable
	for dst, e := range t.entries {
		if e.valid && e.validUntil >= now && e.nextHop == via {
			seq, _ := t.invalidate(dst, now)
			out = append(out, netif.Unreachable{Dst: dst, Seq: seq})
		}
	}
	// slices.SortFunc, not sort.Slice: the latter's reflection-based
	// swapper allocates per call, and teardown runs on every link break.
	slices.SortFunc(out, func(a, b netif.Unreachable) int { return cmp.Compare(a.Dst, b.Dst) })
	return out
}

// seqGreater compares sequence numbers with wraparound (RFC 3561 §6.1).
func seqGreater(a, b uint32) bool { return int32(a-b) > 0 }
