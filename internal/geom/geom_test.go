package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Errorf("Dist(self) = %v, want 0", got)
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestPointAddSub(t *testing.T) {
	p := Point{1, 2}.Add(3, 4)
	if p != (Point{4, 6}) {
		t.Errorf("Add = %v, want (4,6)", p)
	}
	if d := p.Sub(Point{1, 2}); d != (Point{3, 4}) {
		t.Errorf("Sub = %v, want (3,4)", d)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{100, 50}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 50}) {
		t.Error("corners must be contained")
	}
	if r.Contains(Point{-0.01, 0}) || r.Contains(Point{0, 50.01}) {
		t.Error("outside points reported contained")
	}
	if got := r.Clamp(Point{-5, 60}); got != (Point{0, 50}) {
		t.Errorf("Clamp = %v, want (0,50)", got)
	}
	if got := r.Clamp(Point{42, 7}); got != (Point{42, 7}) {
		t.Errorf("Clamp of inside point = %v, want unchanged", got)
	}
}

func TestRectRandomPointUniform(t *testing.T) {
	r := Rect{100, 100}
	rng := rand.New(rand.NewSource(1))
	// Chi-square-ish check: count points per quadrant.
	var quad [4]int
	const n = 40000
	for i := 0; i < n; i++ {
		p := r.RandomPoint(rng)
		if !r.Contains(p) {
			t.Fatalf("RandomPoint outside arena: %v", p)
		}
		q := 0
		if p.X > 50 {
			q |= 1
		}
		if p.Y > 50 {
			q |= 2
		}
		quad[q]++
	}
	for q, c := range quad {
		if c < n/4-n/20 || c > n/4+n/20 {
			t.Errorf("quadrant %d count %d far from uniform %d", q, c, n/4)
		}
	}
}

func TestRectDiagonal(t *testing.T) {
	if got := (Rect{3, 4}).Diagonal(); got != 5 {
		t.Errorf("Diagonal = %v, want 5", got)
	}
}

func TestGridInsertMoveRemove(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10, 4)
	g.Insert(0, Point{5, 5})
	g.Insert(1, Point{6, 5})
	g.Insert(2, Point{95, 95})
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	got := g.Near(nil, Point{5, 5}, 3, -1)
	if len(got) != 2 {
		t.Fatalf("Near = %v, want ids 0 and 1", got)
	}
	// Move 1 far away.
	g.Move(1, Point{50, 50})
	got = g.Near(nil, Point{5, 5}, 3, -1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Near after Move = %v, want [0]", got)
	}
	got = g.Near(nil, Point{50, 50}, 1, -1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Near at new position = %v, want [1]", got)
	}
	g.Remove(1)
	if g.Present(1) {
		t.Error("Present(1) after Remove")
	}
	if got = g.Near(nil, Point{50, 50}, 1, -1); len(got) != 0 {
		t.Fatalf("Near after Remove = %v, want empty", got)
	}
}

func TestGridExclude(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10, 2)
	g.Insert(0, Point{5, 5})
	g.Insert(1, Point{5, 6})
	got := g.Near(nil, Point{5, 5}, 5, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Near excluding 0 = %v, want [1]", got)
	}
}

func TestGridBoundaryPositions(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10, 3)
	// Exactly on the far edges and corners must not panic or be lost.
	g.Insert(0, Point{100, 100})
	g.Insert(1, Point{0, 100})
	g.Insert(2, Point{100, 0})
	got := g.Near(nil, Point{100, 100}, 0.5, -1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Near corner = %v, want [0]", got)
	}
}

func TestGridRadiusInclusive(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10, 2)
	g.Insert(0, Point{10, 10})
	g.Insert(1, Point{20, 10})
	// Distance exactly equal to the radius counts as in range.
	got := g.Near(nil, Point{10, 10}, 10, 0)
	if len(got) != 1 {
		t.Fatalf("item at exactly radius distance excluded: %v", got)
	}
}

func TestGridDuplicateInsertPanics(t *testing.T) {
	g := NewGrid(Rect{10, 10}, 1, 1)
	g.Insert(0, Point{1, 1})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Insert did not panic")
		}
	}()
	g.Insert(0, Point{2, 2})
}

func TestGridRemoveAbsentPanics(t *testing.T) {
	g := NewGrid(Rect{10, 10}, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Remove of absent id did not panic")
		}
	}()
	g.Remove(0)
}

// bruteNear is the reference implementation for the property test.
func bruteNear(pos []Point, alive []bool, p Point, radius float64, exclude int) map[int]bool {
	out := map[int]bool{}
	for id := range pos {
		if !alive[id] || id == exclude {
			continue
		}
		if pos[id].Dist2(p) <= radius*radius {
			out[id] = true
		}
	}
	return out
}

// Property: Grid.Near agrees with the brute-force scan under random
// insert/move/remove workloads and random queries.
func TestQuickGridMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arena := Rect{100, 100}
		const n = 60
		g := NewGrid(arena, 10, n)
		pos := make([]Point, n)
		alive := make([]bool, n)
		for step := 0; step < 300; step++ {
			id := rng.Intn(n)
			switch {
			case !alive[id]:
				pos[id] = arena.RandomPoint(rng)
				alive[id] = true
				g.Insert(id, pos[id])
			case rng.Intn(4) == 0:
				alive[id] = false
				g.Remove(id)
			default:
				pos[id] = arena.RandomPoint(rng)
				g.Move(id, pos[id])
			}
			if step%10 == 0 {
				q := arena.RandomPoint(rng)
				radius := rng.Float64() * 30
				exclude := rng.Intn(n+1) - 1
				got := g.Near(nil, q, radius, exclude)
				want := bruteNear(pos, alive, q, radius, exclude)
				if len(got) != len(want) {
					return false
				}
				for _, id := range got {
					if !want[id] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Lerp never leaves the segment's bounding box for t in [0,1].
func TestQuickLerpWithinBox(t *testing.T) {
	f := func(ax, ay, bx, by, tt float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) || math.IsNaN(tt) {
			return true
		}
		// Constrain coordinates to arena-like magnitudes; astronomic values
		// only probe float overflow, not the interpolation logic.
		clamp := func(v float64) float64 { return math.Mod(v, 1e4) }
		ax, ay, bx, by = clamp(ax), clamp(ay), clamp(bx), clamp(by)
		frac := math.Abs(tt) - math.Floor(math.Abs(tt)) // into [0,1)
		a, b := Point{ax, ay}, Point{bx, by}
		p := a.Lerp(b, frac)
		lox, hix := math.Min(ax, bx), math.Max(ax, bx)
		loy, hiy := math.Min(ay, by), math.Max(ay, by)
		const eps = 1e-9
		return p.X >= lox-eps && p.X <= hix+eps && p.Y >= loy-eps && p.Y <= hiy+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewGridValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewGrid(Rect{100, 100}, 0, 1) },
		func() { NewGrid(Rect{0, 100}, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewGrid did not panic")
				}
			}()
			bad()
		}()
	}
}
