package geom

import (
	"fmt"
	"math"
)

// Grid is a uniform-cell spatial index over integer item IDs. With the
// cell size set to the radio range, a range query touches at most the 3×3
// block of cells around the query point, making neighbor discovery O(k)
// in the number of nearby items instead of O(n) over all nodes.
//
// Items are dense small integers (node IDs); the index stores positions
// itself so callers update positions through it.
type Grid struct {
	arena    Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]int32 // cell -> item IDs, unordered
	pos      []Point   // item ID -> position
	cellOf   []int32   // item ID -> cell index, -1 if absent
	present  []bool    // item ID -> inserted?
	scratch  []int32   // reused by Near to avoid per-query allocation
}

// NewGrid creates an index over arena with the given cell size (typically
// the radio range) and capacity for n items with IDs in [0, n).
func NewGrid(arena Rect, cellSize float64, n int) *Grid {
	if cellSize <= 0 {
		panic("geom: NewGrid with non-positive cell size")
	}
	if arena.W <= 0 || arena.H <= 0 {
		panic("geom: NewGrid with empty arena")
	}
	cols := int(math.Ceil(arena.W/cellSize)) + 1
	rows := int(math.Ceil(arena.H/cellSize)) + 1
	g := &Grid{
		arena:    arena,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
		pos:      make([]Point, n),
		cellOf:   make([]int32, n),
		present:  make([]bool, n),
	}
	for i := range g.cellOf {
		g.cellOf[i] = -1
	}
	return g
}

func (g *Grid) cellIndex(p Point) int32 {
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return int32(cy*g.cols + cx)
}

// Insert adds item id at position p. Inserting an existing id panics;
// use Move.
func (g *Grid) Insert(id int, p Point) {
	if g.present[id] {
		panic(fmt.Sprintf("geom: Insert of already-present id %d", id))
	}
	g.present[id] = true
	g.pos[id] = p
	c := g.cellIndex(p)
	g.cellOf[id] = c
	g.cells[c] = append(g.cells[c], int32(id))
}

// Remove deletes item id from the index. Removing an absent id panics.
func (g *Grid) Remove(id int) {
	if !g.present[id] {
		panic(fmt.Sprintf("geom: Remove of absent id %d", id))
	}
	g.removeFromCell(id, g.cellOf[id])
	g.present[id] = false
	g.cellOf[id] = -1
}

func (g *Grid) removeFromCell(id int, c int32) {
	cell := g.cells[c]
	for i, v := range cell {
		if v == int32(id) {
			cell[i] = cell[len(cell)-1]
			g.cells[c] = cell[:len(cell)-1]
			return
		}
	}
	panic(fmt.Sprintf("geom: id %d not found in its cell", id))
}

// Move updates the position of item id, rebinning only if it changed cell.
func (g *Grid) Move(id int, p Point) {
	if !g.present[id] {
		panic(fmt.Sprintf("geom: Move of absent id %d", id))
	}
	g.pos[id] = p
	c := g.cellIndex(p)
	if old := g.cellOf[id]; c != old {
		g.removeFromCell(id, old)
		g.cellOf[id] = c
		g.cells[c] = append(g.cells[c], int32(id))
	}
}

// Pos returns the stored position of item id.
func (g *Grid) Pos(id int) Point { return g.pos[id] }

// Present reports whether item id is in the index.
func (g *Grid) Present(id int) bool { return id >= 0 && id < len(g.present) && g.present[id] }

// Near appends to dst the IDs of all items within radius of p, excluding
// exclude (pass -1 to exclude nothing), and returns the extended slice.
// The result order is unspecified. The returned slice aliases dst's
// backing array when capacity allows.
func (g *Grid) Near(dst []int, p Point, radius float64, exclude int) []int {
	if radius <= 0 {
		return dst
	}
	r2 := radius * radius
	cx0 := int((p.X - radius) / g.cellSize)
	cx1 := int((p.X + radius) / g.cellSize)
	cy0 := int((p.Y - radius) / g.cellSize)
	cy1 := int((p.Y + radius) / g.cellSize)
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 >= g.cols {
		cx1 = g.cols - 1
	}
	if cy1 >= g.rows {
		cy1 = g.rows - 1
	}
	for cy := cy0; cy <= cy1; cy++ {
		base := cy * g.cols
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range g.cells[base+cx] {
				if int(id) == exclude {
					continue
				}
				if g.pos[id].Dist2(p) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// Len reports how many items are currently indexed.
func (g *Grid) Len() int {
	n := 0
	for _, p := range g.present {
		if p {
			n++
		}
	}
	return n
}
