// Package geom provides the 2-D geometry primitives and the uniform-grid
// spatial index used by the wireless medium for O(k) range queries.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in metres on the simulation plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by the vector (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Sub returns the vector from q to p as a Point.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance between p and q; cheaper than Dist
// when only comparisons against a squared radius are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q; t outside
// [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [0,W] × [0,H] anchored at the origin —
// the simulation arena. The paper uses 100 m × 100 m.
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{math.Min(math.Max(p.X, 0), r.W), math.Min(math.Max(p.Y, 0), r.H)}
}

// RandomPoint returns a point uniformly distributed over the rectangle.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{rng.Float64() * r.W, rng.Float64() * r.H}
}

// Diagonal returns the length of the rectangle's diagonal, an upper bound
// on any distance within the arena.
func (r Rect) Diagonal() float64 { return math.Hypot(r.W, r.H) }
