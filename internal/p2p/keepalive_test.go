package p2p

import (
	"testing"

	"manetp2p/internal/netif"
	"manetp2p/internal/telemetry"
)

// pairWorld builds two adjacent Regular servents with a pre-installed
// symmetric connection (node 0 initiator).
func pairWorld(t *testing.T, seed int64) *world {
	t.Helper()
	w := newWorld(t, worldSpec{
		seed: seed,
		pts:  cliquePts(2),
		alg:  Regular,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	forceLink(w.svs[0], w.svs[1], false)
	return w
}

func TestKeepaliveRoundTrips(t *testing.T) {
	w := pairWorld(t, 50)
	par := DefaultParams()
	w.run(3*par.PingInterval + time(5))
	// Only the initiator pings; the responder answers.
	if got := w.col.Received(1, telemetry.Ping); got < 2 {
		t.Errorf("responder received %d pings, want >= 2", got)
	}
	if got := w.col.Received(0, telemetry.Ping); got != 0 {
		t.Errorf("initiator received %d pings, want 0 (one-sided probing)", got)
	}
	if got := w.col.Received(0, telemetry.Pong); got < 2 {
		t.Errorf("initiator received %d pongs, want >= 2", got)
	}
	// The connection is still alive.
	if w.svs[0].ConnCount() != 1 || w.svs[1].ConnCount() != 1 {
		t.Error("healthy connection torn down")
	}
}

func TestStalePongSeqIgnored(t *testing.T) {
	w := pairWorld(t, 51)
	sv := w.svs[0]
	c := sv.conns[1]
	// Fabricate an awaited probe, then deliver a pong with a stale seq.
	c.awaitPong = true
	c.awaitingSeq = 7
	sv.onPong(1, Msg{Kind: msgPong, Seq: 3}, 1)
	if !c.awaitPong {
		t.Error("stale pong cleared the awaiting flag")
	}
	sv.onPong(1, Msg{Kind: msgPong, Seq: 7}, 1)
	if c.awaitPong {
		t.Error("matching pong not accepted")
	}
}

func TestPongFromStrangerIgnored(t *testing.T) {
	w := pairWorld(t, 52)
	sv := w.svs[0]
	before := sv.ConnCount()
	sv.onPong(9, Msg{Kind: msgPong, Seq: 1}, 1) // no such connection
	if sv.ConnCount() != before {
		t.Error("stranger pong mutated connections")
	}
}

func TestPingFromStrangerGetsBye(t *testing.T) {
	// A symmetric-algorithm node receiving a ping for a connection it
	// does not have must answer with a bye so the peer drops its stale
	// half. Simulate: node 1 keeps a conn to 0, but 0 has no state.
	w := newWorld(t, worldSpec{
		seed: 53,
		pts:  cliquePts(2),
		alg:  Regular,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	// Fill node 0 with placeholder connections so it cannot re-offer a
	// legitimate connection after the bye (the protocol otherwise heals
	// the pair immediately, which is correct but not what this test
	// isolates).
	for p := 10; p < 13; p++ {
		w.svs[0].conns[p] = &conn{peer: p}
	}
	// Install only node 1's half (initiator so it pings).
	w.svs[1].installConn(&conn{peer: 0, initiator: true})
	par := DefaultParams()
	w.run(par.PingInterval + time(5))
	if got := w.svs[1].ConnCount(); got != 0 {
		t.Errorf("stale half-connection survived: %d conns", got)
	}
	if got := w.col.Received(1, telemetry.Bye); got == 0 {
		t.Error("no bye received by the stale side")
	}
}

func TestBasicPingStateless(t *testing.T) {
	// In Basic, the pinged node holds no connection state yet answers.
	w := newWorld(t, worldSpec{
		seed: 54,
		pts:  cliquePts(2),
		alg:  Basic,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	// Asymmetric reference: only node 0 knows node 1.
	w.svs[0].installConn(&conn{peer: 1, initiator: true})
	par := DefaultParams()
	w.run(2*par.PingInterval + time(5))
	if w.svs[0].ConnCount() != 1 {
		t.Error("basic reference dropped despite responsive peer")
	}
	if got := w.col.Received(0, telemetry.Pong); got == 0 {
		t.Error("stateless peer did not pong")
	}
}

func TestHandshakeTimeoutReleasesSlot(t *testing.T) {
	// Node 0 sends an accept into the void (peer leaves right away);
	// after HandshakeWait the pending slot must be reusable.
	w := newWorld(t, worldSpec{
		seed: 55,
		pts:  cliquePts(3),
		alg:  Regular,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	w.med.Leave(1) // peer 1 is unreachable
	sv.acceptOffer(1, false, false)
	if len(sv.pending) != 1 {
		t.Fatal("no pending handshake")
	}
	w.run(DefaultParams().HandshakeWait + time(20))
	if len(sv.pending) != 0 {
		t.Error("pending handshake not released after timeout")
	}
}

func TestRejectReleasesSlot(t *testing.T) {
	w := newWorld(t, worldSpec{
		seed: 56,
		pts:  cliquePts(2),
		alg:  Regular,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	// Fill node 1 so it rejects.
	for p := 10; p < 13; p++ {
		w.svs[1].conns[p] = &conn{peer: p}
	}
	sv.acceptOffer(1, false, false)
	w.run(time(2))
	if len(sv.pending) != 0 {
		t.Error("reject did not release the pending slot")
	}
	if sv.ConnCount() != 0 {
		t.Error("connection formed despite reject")
	}
}

func TestStrayConfirmGetsBye(t *testing.T) {
	// A confirm for a handshake we no longer track must trigger a bye
	// so the responder tears down its half.
	w := newWorld(t, worldSpec{
		seed: 57,
		pts:  cliquePts(2),
		alg:  Regular,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	// Block node 0 from re-offering after the bye (see
	// TestPingFromStrangerGetsBye).
	for p := 10; p < 13; p++ {
		w.svs[0].conns[p] = &conn{peer: p}
	}
	// Node 1 has installed its half (as if it accepted long ago) and
	// sends the final handshake step; node 0 no longer tracks it.
	w.svs[1].installConn(&conn{peer: 0, initiator: false})
	w.svs[1].send(0, Msg{Kind: msgConfirm})
	w.run(time(2))
	if w.svs[1].ConnCount() != 0 {
		t.Error("responder's half not torn down after stray confirm")
	}
}

func TestMessageClassification(t *testing.T) {
	cases := map[telemetry.Class][]netif.MsgKind{
		telemetry.Connect: {
			msgDiscover, msgReply, msgSolicit, msgOffer, msgAccept,
			msgConfirm, msgReject, msgCapture, msgEnslaveReq,
			msgEnslaveAccept, msgEnslaveConfirm, msgEnslaveReject,
		},
		telemetry.Ping:     {msgPing},
		telemetry.Pong:     {msgPong},
		telemetry.Query:    {msgQuery},
		telemetry.QueryHit: {msgQueryHit},
		telemetry.Bye:      {msgBye},
	}
	for class, kinds := range cases {
		for _, k := range kinds {
			if got := classOf(k); got != class {
				t.Errorf("classOf(%v) = %v, want %v", k, got, class)
			}
			if sizeOf(k) <= 0 {
				t.Errorf("sizeOf(%v) not positive", k)
			}
		}
	}
}

func TestClassOfUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("classOf(unknown) did not panic")
		}
	}()
	classOf(netif.MsgKind(42))
}
