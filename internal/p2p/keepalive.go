package p2p

import "manetp2p/internal/sim"

// This file implements connection maintenance (figs. 1 and 2 of the
// paper). For the symmetric algorithms only the initiator probes ("the
// number of pings and pongs was cut half"); the responder answers pongs
// and watches a ping deadline. Pong arrivals double as distance probes:
// the pong's ad-hoc hop count is checked against MAXDIST (2·MAXDIST for
// random connections) and the link is closed if the peer strayed.

// startPinging arms the initiator-side keepalive loop for c.
func (sv *Servent) startPinging(c *conn) {
	c.pingTimer = sim.NewTimer(sv.s, func() { sv.pingTick(c) })
	c.pingTimer.Reset(sv.par.PingInterval)
}

// pingTick fires both to send the next ping and as the pong deadline.
func (sv *Servent) pingTick(c *conn) {
	if sv.conns[c.peer] != c || !sv.joined {
		return
	}
	if c.awaitPong {
		// No pong within PongTimeout: "the lack (of a pong) means the
		// neighbor is not reachable anymore and the connection is over."
		sv.closeConn(c.peer, false)
		return
	}
	c.awaitingSeq++
	c.awaitPong = true
	sv.send(c.peer, Msg{Kind: msgPing, Seq: c.awaitingSeq})
	c.pingTimer.Reset(sv.par.PongTimeout)
}

// onPing answers a keepalive probe.
func (sv *Servent) onPing(from int, m Msg) {
	c, ok := sv.conns[from]
	if !ok {
		if sv.alg == Basic {
			// Basic references are asymmetric: the pinged node holds no
			// state and simply answers (§6.1.1).
			sv.send(from, Msg{Kind: msgPong, Seq: m.Seq})
		} else {
			// A symmetric-algorithm ping for a connection we do not
			// have: tell the peer to drop its stale half.
			sv.send(from, Msg{Kind: msgBye})
		}
		return
	}
	sv.send(from, Msg{Kind: msgPong, Seq: m.Seq})
	if c.deadline != nil {
		c.deadline.Reset(sv.deadlineWindow())
	}
}

// onPong completes a probe round trip; adhocHops is the distance the
// pong traveled, i.e. the current ad-hoc distance to the peer.
func (sv *Servent) onPong(from int, m Msg, adhocHops int) {
	c, ok := sv.conns[from]
	if !ok || !c.awaitPong || m.Seq != c.awaitingSeq {
		return
	}
	c.awaitPong = false
	if sv.alg != Basic {
		limit := sv.par.MaxDist
		if c.random {
			limit = 2 * sv.par.MaxDist
		}
		if adhocHops > limit {
			// "if the node is nearer than MAXDIST, wait before next
			// ping; else close this connection" (fig. 2).
			sv.closeConn(c.peer, true)
			return
		}
	}
	c.pingTimer.Reset(sv.par.PingInterval)
}

// startDeadline arms the responder-side expected-ping watchdog.
func (sv *Servent) startDeadline(c *conn) {
	c.deadline = sim.NewTimer(sv.s, func() {
		if sv.conns[c.peer] != c || !sv.joined {
			return
		}
		sv.closeConn(c.peer, false)
	})
	c.deadline.Reset(sv.deadlineWindow())
}

// deadlineWindow is how long a responder waits for the next ping before
// declaring the initiator gone: one full ping period plus the pong
// timeout, doubled for slack against routing delays.
func (sv *Servent) deadlineWindow() sim.Time {
	return 2 * (sv.par.PingInterval + sv.par.PongTimeout)
}
