package p2p

import (
	"fmt"
	"math/rand"
	"sort"

	"manetp2p/internal/netif"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/trace"
)

// HybridState is a Hybrid-algorithm servent's role (§6.2).
type HybridState int

const (
	// StateInitial means the peer is still looking for a master or slaves.
	StateInitial HybridState = iota
	// StateMaster means the peer coordinates a subnet of slaves and
	// participates in the master mesh.
	StateMaster
	// StateSlave means the peer communicates only with its master.
	StateSlave
	// StateReserved is the transitional state during an enslavement
	// handshake.
	StateReserved
)

// String returns the paper's name for the state.
func (s HybridState) String() string {
	switch s {
	case StateInitial:
		return "initial"
	case StateMaster:
		return "master"
	case StateSlave:
		return "slave"
	case StateReserved:
		return "reserved"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// conn is one overlay connection (a reference, possibly half of a
// symmetric pair).
type conn struct {
	peer      int
	random    bool // the Random algorithm's long-range link
	initiator bool // we asked for it, so we send the pings
	toMaster  bool // hybrid: peer is our master
	toSlave   bool // hybrid: peer is one of our slaves
	master    bool // hybrid: master-mesh link

	awaitingSeq uint32
	awaitPong   bool
	pingTimer   *sim.Timer // initiator: next ping / pong deadline
	deadline    *sim.Timer // responder: expected-ping deadline
	since       sim.Time   // established time, for lifetime statistics
}

// handshake is a solicitor-side in-flight three-way handshake (we sent
// accept and hold a reserved slot until confirm or timeout).
type handshake struct {
	peer    int
	random  bool
	master  bool
	timeout sim.Handle
}

// offerInfo is a response collected during the Random algorithm's
// farthest-responder window.
type offerInfo struct {
	peer      int
	bcastHops int
}

// Options configures a Servent beyond the protocol parameters.
type Options struct {
	Qualifier   float64 // hybrid device qualifier (higher = more capable)
	Files       []bool  // file holdings by rank; may be nil
	Collector   *telemetry.Collector
	RNG         *rand.Rand    // deterministic per-node stream; required
	NoQueries   bool          // disable the query workload (protocol-only tests)
	NoEstablish bool          // disable the establishment cycle (query-only tests)
	Tracer      *trace.Tracer // optional event tracing; nil = off
	Demand      Demand        // scripted workload engine; nil = the paper's built-in model
}

// Servent is one peer of the overlay: it runs one of the four
// (re)configuration algorithms plus the shared maintenance and query
// machinery.
type Servent struct {
	id  int
	s   *sim.Sim
	rt  netif.Protocol
	par Params
	alg Algorithm
	opt Options

	joined bool
	conns  map[int]*conn

	// Establishment state (decentralized algorithms and the hybrid
	// master mesh / initial capture cycle share this ring machinery).
	nhops        int
	timer        sim.Time
	cycleEv      sim.Handle
	cycleRunning bool
	pending      map[int]*handshake

	// Random algorithm offer collection.
	collecting bool
	offers     []offerInfo

	// Hybrid state.
	state        HybridState
	reservedWith int
	noSlave      *sim.Timer
	reservedEv   sim.Handle

	// Query engine.
	nextQID uint32
	seen    map[queryKey]struct{}
	curReq  *request
	queryEv sim.Handle

	// Download extension.
	xfer      *xfer
	downloads uint64

	// Peer-cache extension.
	peerCache map[int]*cacheEntry

	// Local statistics (per-servent, complementing the Collector).
	established uint64 // connections successfully formed
	closed      uint64 // connections torn down

	// skipClose is the invariant-checker mutation hook: closeConn toward
	// this peer becomes a no-op (-1 = disabled). See SkipCloseForTest.
	skipClose int

	// Callbacks bound once at construction: the establishment cycle and
	// query engine re-schedule these constantly, and a method value passed
	// directly to Schedule would allocate a fresh closure every call.
	ensureCycleFn func()
	cycleStepFn   func()
	runQueryFn    func()
	finishQueryFn func()
	endCollectFn  func()
	hsTimeoutFn   func(sim.Arg)
	reservedExpFn func(sim.Arg)
	peersScratch  []int // sorted-peer buffer for hot iteration paths; see sortedPeers
	cacheScratch  []int // sorted peer-cache id buffer; see cachedPeerIDs
}

type queryKey struct {
	origin int
	qid    uint32
}

type request struct {
	qid      uint32
	file     int
	answers  int
	minP2P   int
	minAdhoc int
	holder   int // nearest answering holder (download extension)
}

// NewServent creates a servent for node id running alg. The router's
// upper-layer hooks must be wired to HandleUnicast/HandleBroadcast by
// the caller (the manet node does this).
func NewServent(id int, s *sim.Sim, rt netif.Protocol, par Params, alg Algorithm, opt Options) *Servent {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	par.Download = par.Download.withDefaults()
	par.PeerCache = par.PeerCache.withDefaults()
	if opt.RNG == nil {
		panic("p2p: Options.RNG is required")
	}
	sv := &Servent{
		id:        id,
		s:         s,
		rt:        rt,
		par:       par,
		alg:       alg,
		opt:       opt,
		conns:     make(map[int]*conn),
		pending:   make(map[int]*handshake),
		seen:      make(map[queryKey]struct{}),
		state:     StateInitial,
		skipClose: -1,
	}
	sv.ensureCycleFn = sv.ensureCycle
	sv.cycleStepFn = sv.cycleStep
	sv.runQueryFn = sv.runQuery
	sv.finishQueryFn = sv.finishQuery
	sv.endCollectFn = sv.endRandomCollect
	sv.hsTimeoutFn = sv.handshakeTimeout
	sv.reservedExpFn = sv.reservedExpired
	return sv
}

// sortedPeers fills the servent's scratch buffer with the connected peer
// ids in ascending order — the same content Peers returns, without the
// allocation. Only leaf messaging paths (query fan-out) may use it: the
// buffer is invalidated by the next sortedPeers call, so callers must not
// re-enter any code that could call it again while iterating.
func (sv *Servent) sortedPeers() []int {
	out := sv.peersScratch[:0]
	for p := range sv.conns { // sorted below: keeps runs reproducible
		out = append(out, p)
	}
	sort.Ints(out)
	sv.peersScratch = out
	return out
}

// ID returns the node id.
func (sv *Servent) ID() int { return sv.id }

// Algorithm returns the configured algorithm.
func (sv *Servent) Algorithm() Algorithm { return sv.alg }

// Qualifier returns the hybrid device qualifier.
func (sv *Servent) Qualifier() float64 { return sv.opt.Qualifier }

// Joined reports whether the servent is participating in the overlay.
func (sv *Servent) Joined() bool { return sv.joined }

// State returns the hybrid role (meaningful only for the Hybrid
// algorithm; decentralized servents stay in StateInitial).
func (sv *Servent) State() HybridState { return sv.state }

// Master returns the current master's id for a slave, or -1.
func (sv *Servent) Master() int {
	for _, c := range sv.conns { // commutative: at most one conn has toMaster set
		if c.toMaster {
			return c.peer
		}
	}
	return -1
}

// Slaves returns the ids of this master's slaves, sorted.
func (sv *Servent) Slaves() []int {
	var out []int
	for _, c := range sv.conns { // sorted below: keeps runs reproducible
		if c.toSlave {
			out = append(out, c.peer)
		}
	}
	sort.Ints(out)
	return out
}

// Peers returns the ids of all connected peers, sorted.
func (sv *Servent) Peers() []int {
	out := make([]int, 0, len(sv.conns))
	for p := range sv.conns { // sorted below: keeps runs reproducible
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// AppendPeers appends the connected peer ids to dst and returns it —
// the same contents Peers returns, without the allocation once dst's
// capacity is warm, in arbitrary (map) order. The overlay-snapshot
// fill path (manet.Network.AppendOverlayAdjacency) runs it per node
// per tick; every metric downstream is set- or count-based, so callers
// must not rely on the order.
func (sv *Servent) AppendPeers(dst []int) []int {
	for p := range sv.conns { // commutative: contract above forbids order-dependent callers
		dst = append(dst, p)
	}
	return dst
}

// ConnCount returns the number of live connections (references).
func (sv *Servent) ConnCount() int { return len(sv.conns) }

// HasRandomConn reports whether a Random-algorithm long link is live.
func (sv *Servent) HasRandomConn() bool {
	for _, c := range sv.conns { // commutative: pure any-match
		if c.random {
			return true
		}
	}
	return false
}

// ConnIsRandom reports whether the link to peer is a random connection.
func (sv *Servent) ConnIsRandom(peer int) bool {
	c, ok := sv.conns[peer]
	return ok && c.random
}

// HasFile reports whether this servent holds file rank r.
func (sv *Servent) HasFile(r int) bool {
	return sv.opt.Files != nil && r >= 0 && r < len(sv.opt.Files) && sv.opt.Files[r]
}

// OpenQuery reports whether a query collection window is currently open
// (the invariant checker cross-checks this against the workload engine's
// in-flight count).
func (sv *Servent) OpenQuery() bool { return sv.curReq != nil }

// Established returns how many connections this servent has formed.
func (sv *Servent) Established() uint64 { return sv.established }

// Closed returns how many connections this servent has torn down.
func (sv *Servent) Closed() uint64 { return sv.closed }

// Join starts participation: the establishment cycle begins after a
// small random stagger, and (unless disabled) the query workload starts.
func (sv *Servent) Join() {
	if sv.joined {
		return
	}
	sv.joined = true
	sv.state = StateInitial
	sv.nhops = sv.par.NHopsInitial
	sv.timer = sv.par.TimerInitial
	stagger := sim.UniformDuration(sv.opt.RNG, 0, sv.par.JoinStaggerMax)
	if !sv.opt.NoEstablish {
		sv.s.Schedule(stagger, sv.ensureCycleFn)
	}
	if !sv.opt.NoQueries {
		first := stagger + sv.par.QueryCollect + sv.queryGap()
		sv.queryEv = sv.s.Schedule(first, sv.runQueryFn)
	}
}

// Leave stops participation. If graceful, best-effort bye messages tell
// peers immediately; otherwise they discover the loss via keepalives —
// the death model of the churn experiments.
func (sv *Servent) Leave(graceful bool) {
	if !sv.joined {
		return
	}
	sv.joined = false
	for _, peer := range sv.Peers() { // sorted: keeps runs reproducible
		sv.closeConn(peer, graceful)
	}
	for _, h := range sv.pending { // commutative: cancels every entry
		h.timeout.Cancel()
	}
	sv.pending = make(map[int]*handshake)
	sv.cycleEv.Cancel()
	sv.cycleEv = sim.Handle{}
	sv.cycleRunning = false
	sv.queryEv.Cancel()
	sv.queryEv = sim.Handle{}
	if sv.curReq != nil {
		if d := sv.opt.Demand; d != nil {
			d.Aborted(sv.id)
		}
	}
	sv.curReq = nil
	if sv.xfer != nil {
		sv.xfer.timeout.Stop()
		sv.xfer = nil
	}
	sv.collecting = false
	sv.offers = nil
	sv.reservedEv.Cancel()
	sv.reservedEv = sim.Handle{}
	if sv.noSlave != nil {
		sv.noSlave.Stop()
	}
	sv.state = StateInitial
}

// count records a received message in the collector.
func (sv *Servent) count(k netif.MsgKind) {
	if sv.opt.Collector != nil {
		sv.opt.Collector.Recv(sv.id, classOf(k))
	}
}

// send unicasts a p2p message to peer through the ad-hoc network.
func (sv *Servent) send(peer int, m Msg) {
	sv.rt.Send(peer, sizeOf(m.Kind), m)
}

// broadcast floods a p2p message within ttl ad-hoc hops.
func (sv *Servent) broadcast(ttl int, m Msg) {
	sv.rt.Broadcast(ttl, sizeOf(m.Kind), m)
}

// HandleBroadcast is the router's controlled-broadcast upper hook.
func (sv *Servent) HandleBroadcast(d netif.Delivery) {
	if !sv.joined || d.From == sv.id {
		return
	}
	sv.count(d.Payload.Kind)
	m := d.Payload
	switch m.Kind {
	case msgDiscover:
		sv.onDiscover(d.From)
	case msgSolicit:
		sv.onSolicit(d.From, m, d.Hops)
	case msgCapture:
		sv.onCapture(d.From, m)
	}
}

// HandleUnicast is the router's unicast upper hook.
func (sv *Servent) HandleUnicast(d netif.Delivery) {
	if !sv.joined {
		return
	}
	sv.count(d.Payload.Kind)
	m := d.Payload
	switch m.Kind {
	case msgReply:
		sv.onReply(d.From)
	case msgSolicit:
		// Unicast solicitation: the peer-cache extension's direct
		// reconnect attempt. Same willingness rules as the broadcast.
		sv.onSolicit(d.From, m, d.Hops)
	case msgOffer:
		sv.rememberPeer(d.From)
		sv.onOffer(d.From, m)
	case msgAccept:
		sv.onAccept(d.From, m)
	case msgConfirm:
		sv.onConfirm(d.From, m)
	case msgReject:
		sv.onReject(d.From)
	case msgCapture:
		sv.onCaptureReply(d.From, m)
	case msgEnslaveReq:
		sv.onEnslaveReq(d.From, m)
	case msgEnslaveAccept:
		sv.onEnslaveAccept(d.From)
	case msgEnslaveConfirm:
		sv.onEnslaveConfirm(d.From)
	case msgEnslaveReject:
		sv.onEnslaveReject(d.From)
	case msgPing:
		sv.onPing(d.From, m)
	case msgPong:
		sv.onPong(d.From, m, d.Hops)
	case msgBye:
		sv.onBye(d.From)
	case msgQuery:
		sv.onQuery(d.From, m)
	case msgQueryHit:
		sv.onQueryHit(d.From, m, d.Hops)
	case msgFetchReq:
		sv.onFetchReq(d.From, m)
	case msgChunk:
		sv.onChunk(d.From, m)
	default:
		panic(fmt.Sprintf("p2p: unexpected unicast payload kind %d", m.Kind))
	}
}

// reservedSlots counts slots held by in-flight outgoing handshakes.
func (sv *Servent) reservedSlots() int { return len(sv.pending) }

// installConn finalizes a connection and starts its keepalive machinery.
func (sv *Servent) installConn(c *conn) {
	if _, dup := sv.conns[c.peer]; dup {
		return
	}
	sv.conns[c.peer] = c
	sv.established++
	c.since = sv.s.Now()
	sv.rememberPeer(c.peer)
	sv.opt.Tracer.Emit(trace.KindConn, sv.id, c.peer,
		"established random=%v master=%v toMaster=%v toSlave=%v", c.random, c.master, c.toMaster, c.toSlave)
	// "Whenever a connection is done, the timer is reset to its initial
	// value" (§6.1.3).
	sv.timer = sv.par.TimerInitial
	if c.initiator {
		sv.startPinging(c)
	} else {
		sv.startDeadline(c)
	}
}

// closeConn tears down the connection to peer, optionally notifying it.
func (sv *Servent) closeConn(peer int, notify bool) {
	if peer == sv.skipClose {
		return // seeded mutation for invariant-checker tests
	}
	c, ok := sv.conns[peer]
	if !ok {
		return
	}
	delete(sv.conns, peer)
	sv.closed++
	if sv.opt.Collector != nil && c.initiator {
		// Counted at the initiator only, so each symmetric pair
		// contributes one sample (Basic references are all initiator).
		sv.opt.Collector.RecordLifetime((sv.s.Now() - c.since).Seconds())
	}
	sv.opt.Tracer.Emit(trace.KindConn, sv.id, peer, "closed notify=%v", notify)
	if c.pingTimer != nil {
		c.pingTimer.Stop()
	}
	if c.deadline != nil {
		c.deadline.Stop()
	}
	if notify && sv.alg != Basic {
		sv.send(peer, Msg{Kind: msgBye})
	}
	if !sv.joined {
		return
	}
	sv.onConnClosed(c)
}

// onConnClosed applies the algorithm-specific reconfiguration reaction.
func (sv *Servent) onConnClosed(c *conn) {
	switch sv.alg {
	case Hybrid:
		switch {
		case c.toMaster:
			// "...and, if it is a slave, the peer resets its state to
			// initial. It then tries to contact other peers" (§6.2).
			sv.state = StateInitial
			sv.nhops = sv.par.NHopsInitial
			sv.timer = sv.par.TimerInitial
			sv.ensureCycle()
		case c.toSlave:
			if sv.state == StateMaster && len(sv.Slaves()) == 0 {
				sv.armNoSlaveTimer()
			}
		default: // master-mesh link
			sv.ensureCycle()
		}
	default:
		sv.ensureCycle()
	}
}

// onBye handles a peer's teardown notice.
func (sv *Servent) onBye(peer int) {
	sv.closeConn(peer, false)
}
