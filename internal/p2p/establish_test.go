package p2p

import (
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

func TestBasicPairEstablishesReferences(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 1, pts: cliquePts(2), alg: Basic})
	w.joinAll()
	w.run(time(60))
	// Basic references are asymmetric but both nodes discover each other.
	for i := 0; i < 2; i++ {
		if w.svs[i].ConnCount() != 1 {
			t.Errorf("node %d conns = %d, want 1", i, w.svs[i].ConnCount())
		}
	}
}

func time(sec int) sim.Time { return sim.Time(sec) * sim.Second }

func TestBasicRespectsMaxNConn(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 2, pts: cliquePts(10), alg: Basic})
	w.joinAll()
	w.run(time(120))
	par := DefaultParams()
	w.checkCapacity(t, par)
	for i, sv := range w.svs {
		if sv.ConnCount() != par.MaxNConn {
			t.Errorf("node %d conns = %d, want full table %d in a clique", i, sv.ConnCount(), par.MaxNConn)
		}
	}
}

func TestBasicRepliesEvenWhenFull(t *testing.T) {
	// "Every node that listens to this message answers it": a latecomer
	// joining a saturated clique must still fill its table, because the
	// full nodes keep answering discoveries.
	pts := cliquePts(11)
	w := newWorld(t, worldSpec{seed: 3, pts: pts, alg: Basic})
	for i := 0; i < 10; i++ {
		w.svs[i].Join()
	}
	w.run(time(120))
	for i := 0; i < 10; i++ {
		if w.svs[i].ConnCount() != DefaultParams().MaxNConn {
			t.Skip("clique did not saturate; topology assumption broken")
		}
	}
	w.svs[10].Join()
	w.run(time(60))
	if got := w.svs[10].ConnCount(); got != DefaultParams().MaxNConn {
		t.Errorf("latecomer conns = %d, want %d (full nodes must still reply)",
			got, DefaultParams().MaxNConn)
	}
	w.checkCapacity(t, DefaultParams())
}

func TestRegularPairSymmetric(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 4, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(60))
	if w.svs[0].ConnCount() != 1 || w.svs[1].ConnCount() != 1 {
		t.Fatalf("conns = %d,%d want 1,1", w.svs[0].ConnCount(), w.svs[1].ConnCount())
	}
	w.checkSymmetric(t)
}

func TestRegularCliqueInvariants(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 5, pts: cliquePts(12), alg: Regular})
	w.joinAll()
	w.run(time(300))
	par := DefaultParams()
	w.checkCapacity(t, par)
	w.checkSymmetric(t)
	// In a clique with plenty of partners, everyone should fill up.
	for i, sv := range w.svs {
		if sv.ConnCount() != par.MaxNConn {
			t.Errorf("node %d conns = %d, want %d", i, sv.ConnCount(), par.MaxNConn)
		}
	}
}

func TestRegularExpandingRingConnectsOverDistance(t *testing.T) {
	// Two members 3 ad-hoc hops apart (relays are not overlay members):
	// the first nhops=2 sweep misses, the nhops=4 sweep connects.
	pts := linePts(4)
	member := []bool{true, false, false, true}
	w := newWorld(t, worldSpec{seed: 6, pts: pts, member: member, alg: Regular})
	w.joinAll()
	w.run(time(120))
	if w.svs[0].ConnCount() != 1 || w.svs[3].ConnCount() != 1 {
		t.Fatalf("conns = %d,%d want 1,1 (via expanding ring)",
			w.svs[0].ConnCount(), w.svs[3].ConnCount())
	}
	w.checkSymmetric(t)
}

func TestRegularTimerBacksOffWhenIsolated(t *testing.T) {
	// A lone member has no one to connect to; after each full sweep its
	// retry timer doubles up to MAXTIMER.
	w := newWorld(t, worldSpec{seed: 7, pts: cliquePts(1), alg: Regular})
	w.joinAll()
	w.run(time(1200))
	sv := w.svs[0]
	if sv.ConnCount() != 0 {
		t.Fatal("lone node connected to someone")
	}
	if sv.timer != DefaultParams().MaxTimer {
		t.Errorf("timer = %v, want backed off to MAXTIMER %v", sv.timer, DefaultParams().MaxTimer)
	}
	// Connect-message traffic must flatten out: count broadcasts in two
	// consecutive windows.
	a := w.rts[0].Stats().BcastOrig
	w.run(time(300))
	b := w.rts[0].Stats().BcastOrig - a
	w.run(time(300))
	c := w.rts[0].Stats().BcastOrig - a - b
	if c > b+2 {
		t.Errorf("broadcast rate still rising after backoff: %d then %d", b, c)
	}
}

func TestTimerResetOnNewConnection(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 8, pts: cliquePts(2), alg: Regular})
	w.svs[0].Join()
	// Let node 0 back off alone first.
	w.run(time(400))
	if w.svs[0].timer == DefaultParams().TimerInitial {
		t.Fatal("precondition: timer did not back off")
	}
	w.svs[1].Join()
	// Poll in 1 s steps: right after the connection forms, the timer has
	// been reset to TIMER_INITIAL (it may lawfully double again on later
	// sweeps while the node remains unsatisfied).
	for i := 0; i < 200 && w.svs[0].ConnCount() == 0; i++ {
		w.run(time(1))
	}
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("connection not formed after partner joined")
	}
	if w.svs[0].timer > 2*DefaultParams().TimerInitial {
		t.Errorf("timer = %v right after connect, want reset near %v",
			w.svs[0].timer, DefaultParams().TimerInitial)
	}
}

func TestPingTimeoutClosesConnection(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 9, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(60))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("precondition: no connection")
	}
	// Node 1 dies abruptly (radio off, no bye).
	w.med.Leave(1)
	w.svs[1].Leave(false)
	par := DefaultParams()
	w.run(2*(par.PingInterval+par.PongTimeout) + time(30))
	if w.svs[0].ConnCount() != 0 {
		t.Error("connection to dead peer not closed by keepalive")
	}
}

func TestMaxDistClosesStretchedConnection(t *testing.T) {
	// Members at the ends of a relay chain, initially adjacent; then the
	// far member moves 8 hops away. Pongs still arrive (relays route)
	// but distance exceeds MAXDIST=6, so the connection must close.
	pts := linePts(10)
	pts[9] = geom.Point{X: pts[0].X + 4, Y: pts[0].Y} // member 9 starts next to member 0
	member := make([]bool, 10)
	member[0], member[9] = true, true
	w := newWorld(t, worldSpec{seed: 10, pts: pts, member: member, alg: Regular})
	w.joinAll()
	w.run(time(60))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("precondition: no connection while adjacent")
	}
	// Teleport member 9 to the end of the chain: 8 hops from node 0.
	w.med.SetPos(9, geom.Point{X: 5 + 8*8, Y: 150})
	w.run(time(120))
	if w.svs[0].ConnCount() != 0 || w.svs[9].ConnCount() != 0 {
		t.Errorf("stretched connection survived: conns %d,%d",
			w.svs[0].ConnCount(), w.svs[9].ConnCount())
	}
}

func TestRandomAlgorithmLinkMix(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 11, pts: cliquePts(12), alg: Random})
	w.joinAll()
	w.run(time(300))
	par := DefaultParams()
	w.checkCapacity(t, par)
	w.checkSymmetric(t)
	withRandom := 0
	for _, sv := range w.svs {
		if sv.HasRandomConn() {
			withRandom++
		}
	}
	if withRandom == 0 {
		t.Error("no node formed a random connection")
	}
}

func TestRandomPicksFarthestResponder(t *testing.T) {
	// White-box: drive one offer-collection window with responders at
	// different broadcast distances; the farthest must win the accept.
	par := DefaultParams()
	par.MaxNConn = 1
	pts := linePts(7)
	member := []bool{true, true, false, true, false, false, true}
	w := newWorld(t, worldSpec{seed: 12, pts: pts, member: member, alg: Random, par: par})
	for _, i := range []int{0, 1, 3, 6} {
		w.svs[i].Join()
	}
	sv := w.svs[0]
	sv.collecting = true
	sv.offers = []offerInfo{{peer: 1, bcastHops: 1}, {peer: 6, bcastHops: 6}, {peer: 3, bcastHops: 3}}
	sv.endRandomCollect()
	h, ok := sv.pending[6]
	if !ok || !h.random {
		t.Fatalf("pending after collect = %+v; want random handshake with farthest responder 6", sv.pending)
	}
	if len(sv.pending) != 1 {
		t.Errorf("pending = %d handshakes, want 1 (only the farthest)", len(sv.pending))
	}
	// End-to-end: the accept was sent; node 6 confirms; the link forms.
	w.run(time(30))
	if sv.ConnCount() != 1 || !sv.ConnIsRandom(6) {
		t.Errorf("conns = %v (random to 6? %v), want random link to 6", sv.Peers(), sv.ConnIsRandom(6))
	}
}

func TestRandomLinkFormsEndToEnd(t *testing.T) {
	// Black-box companion: with MaxNConn=1, a random link forms to some
	// member via the full solicit/collect/handshake path.
	par := DefaultParams()
	par.MaxNConn = 1
	pts := linePts(7)
	member := []bool{true, true, false, true, false, false, true}
	w := newWorld(t, worldSpec{seed: 12, pts: pts, member: member, alg: Random, par: par})
	for _, i := range []int{0, 1, 3, 6} {
		w.svs[i].Join()
	}
	w.run(time(300))
	sv := w.svs[0]
	if sv.ConnCount() != 1 {
		t.Fatalf("conns = %d, want 1", sv.ConnCount())
	}
	if !sv.ConnIsRandom(sv.Peers()[0]) {
		t.Error("the only link is not flagged random")
	}
}

func TestRandomLinkReplacedAfterLoss(t *testing.T) {
	// With MaxNConn=1 a 4-clique settles into two random-link pairs.
	// Killing node 0's peer plus one member of the other pair leaves two
	// widowed nodes that must re-pair: "whenever it goes down, it must
	// be replaced by another random connection" (§6.1.4).
	par := DefaultParams()
	par.MaxNConn = 1
	w := newWorld(t, worldSpec{seed: 13, pts: cliquePts(4), alg: Random, par: par})
	w.joinAll()
	w.run(time(300))
	sv := w.svs[0]
	if !sv.HasRandomConn() {
		t.Fatal("precondition: no random link formed")
	}
	peer := sv.Peers()[0]
	victim := -1
	for i := 1; i < 4; i++ {
		if i != peer {
			victim = i
			break
		}
	}
	for _, dead := range []int{peer, victim} {
		w.med.Leave(dead)
		w.svs[dead].Leave(false)
	}
	w.run(time(600))
	if !sv.HasRandomConn() {
		t.Fatal("random connection not replaced after loss")
	}
	if got := sv.Peers()[0]; got == peer || got == victim {
		t.Errorf("replacement random link points at dead node %d", got)
	}
}

func TestLeaveGracefulTearsDownBothSides(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 14, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(60))
	if w.svs[1].ConnCount() != 1 {
		t.Fatal("precondition failed")
	}
	w.svs[0].Leave(true)
	w.run(time(5))
	if w.svs[1].ConnCount() != 0 {
		t.Error("bye did not tear down the peer's half")
	}
	if w.svs[0].ConnCount() != 0 || w.svs[0].Joined() {
		t.Error("leaver retained state")
	}
}

func TestRejoinAfterLeave(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 15, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(60))
	w.svs[0].Leave(true)
	w.run(time(30))
	w.svs[0].Join()
	w.run(time(120))
	if w.svs[0].ConnCount() != 1 || w.svs[1].ConnCount() != 1 {
		t.Errorf("conns after rejoin = %d,%d want 1,1",
			w.svs[0].ConnCount(), w.svs[1].ConnCount())
	}
	w.checkSymmetric(t)
}

func TestRingRadiusProgression(t *testing.T) {
	// The paper's radius sequence: 2, 4, 6, 0, 2, ... with the timer
	// doubling exactly on the 0 step.
	w := newWorld(t, worldSpec{seed: 80, pts: cliquePts(1), alg: Regular,
		opts: func(i int, o *Options) { o.NoEstablish = true }})
	w.joinAll()
	sv := w.svs[0]
	sv.nhops = sv.par.NHopsInitial
	sv.timer = sv.par.TimerInitial
	wantHops := []int{2, 4, 6, 0, 2, 4, 6, 0}
	for i, want := range wantHops {
		if sv.nhops != want {
			t.Fatalf("step %d: nhops = %d, want %d", i, sv.nhops, want)
		}
		before := sv.timer
		sv.ringStep()
		if want == 0 && sv.timer != 2*before {
			t.Errorf("step %d: timer %v after 0-step, want doubled %v", i, sv.timer, 2*before)
		}
		if want != 0 && sv.timer != before {
			t.Errorf("step %d: timer changed on non-0 step", i)
		}
		sv.cycleEv.Cancel() // drive the steps manually
	}
	// The timer caps at MAXTIMER.
	sv.timer = sv.par.MaxTimer
	sv.nhops = 0
	sv.ringStep()
	sv.cycleEv.Cancel()
	if sv.timer != sv.par.MaxTimer {
		t.Errorf("timer %v exceeded MAXTIMER", sv.timer)
	}
}

func TestMeshInvariantsOnRandomTopology(t *testing.T) {
	// 25 members scattered over a 60x60 box; after settling, all
	// capacity and symmetry invariants must hold for each algorithm.
	for _, alg := range []Algorithm{Basic, Regular, Random} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rngPts := sim.New(100 + int64(alg)).NewRand()
			pts := make([]geom.Point, 25)
			for i := range pts {
				pts[i] = geom.Point{X: 120 + rngPts.Float64()*60, Y: 120 + rngPts.Float64()*60}
			}
			w := newWorld(t, worldSpec{seed: 16 + int64(alg), pts: pts, alg: alg})
			w.joinAll()
			w.run(time(600))
			par := DefaultParams()
			w.checkCapacity(t, par)
			if alg != Basic {
				w.checkSymmetric(t)
			}
			connected := 0
			for _, sv := range w.svs {
				if sv.ConnCount() > 0 {
					connected++
				}
			}
			if connected < len(pts)/2 {
				t.Errorf("only %d/%d nodes have any connection", connected, len(pts))
			}
		})
	}
}
