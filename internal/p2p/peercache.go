package p2p

// This file implements the peer-cache optimization (an extension beyond
// the paper): servents remember peers they have successfully talked to
// and, when a connection slot opens, first try a *unicast* solicitation
// toward a cached peer before paying for a discovery broadcast. In a
// network where the same nodes drift in and out of MAXDIST range, most
// reconfigurations can reuse a known address — the ablation bench
// quantifies the saved connect traffic.

import "manetp2p/internal/sim"

// PeerCacheConfig tunes the optimization. Disabled by default: the
// paper's algorithms always broadcast.
type PeerCacheConfig struct {
	Enabled bool
	Size    int      // max remembered peers (default 8)
	TTL     sim.Time // cache entry lifetime (default 300 s)
	Tries   int      // direct solicitations per cycle step (default 2)
}

// WithDefaults returns the configuration with unset fields resolved to
// their defaults — the effective values a servent runs with. The
// invariant checker uses it to validate the cache cap.
func (c PeerCacheConfig) WithDefaults() PeerCacheConfig { return c.withDefaults() }

func (c PeerCacheConfig) withDefaults() PeerCacheConfig {
	if c.Size <= 0 {
		c.Size = 8
	}
	if c.TTL <= 0 {
		c.TTL = 300 * sim.Second
	}
	if c.Tries <= 0 {
		c.Tries = 2
	}
	return c
}

// cacheEntry is one remembered peer.
type cacheEntry struct {
	seen     sim.Time // last positive contact
	tried    sim.Time // last direct solicitation
	hasTried bool     // tried is meaningful; t=0 is a legal try time
}

// rememberPeer records positive contact with a peer.
func (sv *Servent) rememberPeer(peer int) {
	if !sv.par.PeerCache.Enabled || peer == sv.id {
		return
	}
	if sv.peerCache == nil {
		sv.peerCache = make(map[int]*cacheEntry)
	}
	if e, ok := sv.peerCache[peer]; ok {
		e.seen = sv.s.Now()
		return
	}
	if len(sv.peerCache) >= sv.par.PeerCache.Size {
		// Evict the stalest entry. Equal seen-times (two pongs in the same
		// tick) break by ascending peer id: if map-iteration order picked
		// the victim, a resumed run could evict a different peer than the
		// uninterrupted one and the overlays would silently diverge.
		worst, worstSeen := -1, sim.MaxTime
		for p, e := range sv.peerCache { // commutative: min-reduction, id tie-break
			if e.seen < worstSeen || (e.seen == worstSeen && (worst < 0 || p < worst)) {
				worst, worstSeen = p, e.seen
			}
		}
		if worst >= 0 {
			delete(sv.peerCache, worst)
		}
	}
	sv.peerCache[peer] = &cacheEntry{seen: sv.s.Now()}
}

// tryCachedPeers sends direct (unicast) solicitations to up to Tries
// fresh cached peers and reports whether any was sent — in which case
// the caller skips this step's broadcast.
func (sv *Servent) tryCachedPeers() bool {
	cfg := sv.par.PeerCache
	if !cfg.Enabled || len(sv.peerCache) == 0 {
		return false
	}
	now := sv.s.Now()
	sent := 0
	// Deterministic order: ascending peer id.
	for _, peer := range sv.cachedPeerIDs() {
		if sent >= cfg.Tries {
			break
		}
		e := sv.peerCache[peer]
		if now-e.seen > cfg.TTL {
			delete(sv.peerCache, peer)
			continue
		}
		if e.hasTried && now-e.tried < cfg.TTL/4 {
			continue // recently tried; let it rest
		}
		if _, dup := sv.conns[peer]; dup {
			continue
		}
		if _, pend := sv.pending[peer]; pend {
			continue
		}
		e.tried = now
		e.hasTried = true
		sv.send(peer, Msg{Kind: msgSolicit})
		sent++
	}
	return sent > 0
}

// cachedPeerIDs returns cache keys in ascending order. The returned
// slice aliases a scratch buffer on the servent — it runs every cycle
// step on the establishment hot path and must not allocate.
func (sv *Servent) cachedPeerIDs() []int {
	ids := sv.cacheScratch[:0]
	for p := range sv.peerCache { // sorted below: keeps runs reproducible
		ids = append(ids, p)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: tiny slices
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	sv.cacheScratch = ids
	return ids
}
