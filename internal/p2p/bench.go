package p2p

// Benchmark hooks: narrow entry points for the root package's tracked
// benchmark suite (benchsuite.go), which cannot reach the unexported
// send/query internals. They bypass the establishment handshake the
// same way the white-box test harness does, so a benchmark can build a
// known overlay and drive the hot messaging paths directly.

// BenchLink installs a symmetric established connection between a and b
// without running the handshake (a is the initiator and pings).
func BenchLink(a, b *Servent) {
	a.installConn(&conn{peer: b.id, initiator: true})
	b.installConn(&conn{peer: a.id, initiator: false})
}

// BenchSend drives one overlay unicast send toward peer — the
// kind-indexed size lookup and the router handoff, i.e. the exact path
// every protocol message leaves a servent on. A stale pong is used so
// the receive side exercises the full classification and dispatch
// switch and then drops the message without touching any timer (a
// per-op deadline reset would grow the event queue with far-future
// tombstones and dominate the measurement).
func (sv *Servent) BenchSend(peer int) {
	sv.send(peer, Msg{Kind: msgPong, Seq: 1<<32 - 1})
}

// BenchQuery floods one query for file from this servent: a fresh QID
// fanned out to every overlay neighbor, exactly as runQuery does it,
// minus the collection-window scheduling (the benchmark drains
// deliveries itself).
func (sv *Servent) BenchQuery(file int) {
	sv.nextQID++
	sv.curReq = &request{qid: sv.nextQID, file: file}
	sv.seen[queryKey{sv.id, sv.nextQID}] = struct{}{}
	q := Msg{Kind: msgQuery, Origin: sv.id, Seq: sv.nextQID, File: file, TTL: sv.par.QueryTTL}
	for _, peer := range sv.sortedPeers() { // sorted: keeps runs reproducible
		sv.send(peer, q)
	}
}

// BenchAnswers reports the answers accumulated by the open request.
func (sv *Servent) BenchAnswers() int {
	if sv.curReq == nil {
		return 0
	}
	return sv.curReq.answers
}

// BenchResetQuery clears the per-query duplicate-suppression state so a
// benchmark can replay floods without unbounded map growth.
func (sv *Servent) BenchResetQuery() {
	clear(sv.seen)
	sv.curReq = nil
}
