package p2p

// This file reproduces Table 1 of the paper: the qualitative comparison
// of p2p topology families (derived from Minar's "Distributed Systems
// Topologies"). It is data, not measurement — exposed so cmd/repro can
// print the table alongside the simulated results.

// Topology is a p2p organization family from §2.
type Topology int

// The three families compared by Table 1.
const (
	Centralized Topology = iota
	Decentralized
	HybridTopology
)

// String returns the paper's column label.
func (t Topology) String() string {
	switch t {
	case Centralized:
		return "Centralized"
	case Decentralized:
		return "Decentralized"
	case HybridTopology:
		return "Hybrid"
	default:
		return "Unknown"
	}
}

// TopologyTrait is one row of Table 1.
type TopologyTrait struct {
	Property string
	Values   [3]string // indexed by Topology
}

// Table1 returns the paper's Table 1 verbatim.
func Table1() []TopologyTrait {
	return []TopologyTrait{
		{Property: "Manageable", Values: [3]string{"yes", "no", "no"}},
		{Property: "Extensible", Values: [3]string{"no", "yes", "yes"}},
		{Property: "Fault-Tolerant", Values: [3]string{"no", "yes", "yes"}},
		{Property: "Secure", Values: [3]string{"yes", "no", "no"}},
		{Property: "Lawsuit-proof", Values: [3]string{"no", "yes", "yes"}},
		{Property: "Scalable", Values: [3]string{"depend", "maybe", "apparently"}},
	}
}

// TopologyOf maps each implemented algorithm to its Table 1 family. All
// four run without a central entity; Hybrid is the paper's
// centralized+decentralized blend.
func TopologyOf(a Algorithm) Topology {
	if a == Hybrid {
		return HybridTopology
	}
	return Decentralized
}
