package p2p

import "testing"

func TestTable1Contents(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 rows = %d, want 6", len(rows))
	}
	byName := map[string][3]string{}
	for _, r := range rows {
		byName[r.Property] = r.Values
	}
	// Spot checks against the paper's table.
	if v := byName["Manageable"]; v != [3]string{"yes", "no", "no"} {
		t.Errorf("Manageable = %v", v)
	}
	if v := byName["Scalable"]; v != [3]string{"depend", "maybe", "apparently"} {
		t.Errorf("Scalable = %v", v)
	}
	if v := byName["Fault-Tolerant"]; v[0] != "no" || v[1] != "yes" {
		t.Errorf("Fault-Tolerant = %v", v)
	}
}

func TestTopologyMapping(t *testing.T) {
	for _, alg := range []Algorithm{Basic, Regular, Random} {
		if TopologyOf(alg) != Decentralized {
			t.Errorf("TopologyOf(%v) != Decentralized", alg)
		}
	}
	if TopologyOf(Hybrid) != HybridTopology {
		t.Error("TopologyOf(Hybrid) != HybridTopology")
	}
	names := map[Topology]string{
		Centralized: "Centralized", Decentralized: "Decentralized", HybridTopology: "Hybrid",
	}
	for topo, want := range names {
		if topo.String() != want {
			t.Errorf("String() = %q, want %q", topo.String(), want)
		}
	}
	if Topology(99).String() != "Unknown" {
		t.Error("out-of-range topology name")
	}
}

func TestServentAccessors(t *testing.T) {
	w := newWorld(t, worldSpec{
		seed:  81,
		pts:   cliquePts(2),
		alg:   Regular,
		quals: []float64{0.3, 0.7},
	})
	sv := w.svs[1]
	if sv.ID() != 1 {
		t.Errorf("ID = %d", sv.ID())
	}
	if sv.Algorithm() != Regular {
		t.Errorf("Algorithm = %v", sv.Algorithm())
	}
	if sv.Qualifier() != 0.7 {
		t.Errorf("Qualifier = %v", sv.Qualifier())
	}
	w.joinAll()
	w.run(time(120))
	if sv.Established() == 0 {
		t.Error("Established = 0 after pairing")
	}
	w.svs[0].Leave(true)
	w.run(time(5))
	if sv.Closed() == 0 {
		t.Error("Closed = 0 after peer left")
	}
}
