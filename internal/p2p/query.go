package p2p

import (
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
	"manetp2p/internal/trace"
)

// This file implements the Gnutella-based query system of §7.2. A
// servent sends a query to all its overlay neighbors, waits 30 s for
// answers, then waits a random 15–45 s before the next query. Forwarding
// rules: each node forwards or responds to a query at most once, never
// back to the neighbor it came from, and never to the original requirer.
// A node holding the file answers the requirer directly (ad-hoc unicast)
// and still forwards the query.

// queryGap draws the inter-query pause: the scripted workload engine's
// when one is attached, else the paper's uniform 15–45 s.
func (sv *Servent) queryGap() sim.Time {
	if d := sv.opt.Demand; d != nil {
		return d.NextGap(sv.id)
	}
	return sim.UniformDuration(sv.opt.RNG, sv.par.QueryGapMin, sv.par.QueryGapMax)
}

// pickFile chooses a file to request: the workload engine's popularity
// model when one is attached, else uniformly among files this node does
// not hold (a peer does not search for content it already has). Returns
// -1 if there is nothing to request.
func (sv *Servent) pickFile() int {
	n := len(sv.opt.Files)
	if n == 0 {
		return -1
	}
	if d := sv.opt.Demand; d != nil {
		return d.PickFile(sv.id, sv.opt.Files)
	}
	// Count misses first so the draw is exact, not rejection-sampled.
	missing := 0
	for _, held := range sv.opt.Files {
		if !held {
			missing++
		}
	}
	if missing == 0 {
		return -1
	}
	k := sv.opt.RNG.Intn(missing)
	for f, held := range sv.opt.Files {
		if held {
			continue
		}
		if k == 0 {
			return f
		}
		k--
	}
	return -1
}

// runQuery issues one file search.
func (sv *Servent) runQuery() {
	sv.queryEv = sim.Handle{}
	if !sv.joined {
		return
	}
	if d := sv.opt.Demand; d != nil {
		d.Offered(sv.id)
	}
	file := sv.pickFile()
	if file < 0 || len(sv.conns) == 0 {
		// Nothing to ask or no one to ask: try again later.
		sv.queryEv = sv.s.Schedule(sv.queryGap(), sv.runQueryFn)
		return
	}
	sv.nextQID++
	sv.opt.Tracer.Emit(trace.KindQuery, sv.id, -1, "query qid=%d file=%d", sv.nextQID, file)
	sv.curReq = &request{qid: sv.nextQID, file: file}
	sv.seen[queryKey{sv.id, sv.nextQID}] = struct{}{}
	switch sv.par.QueryMode {
	case QueryRandomWalk:
		// Launch k walkers on random neighbors (distinct when possible).
		q := Msg{Kind: msgQuery, Origin: sv.id, Seq: sv.nextQID, File: file, TTL: sv.par.WalkTTL, Walk: true}
		peers := sv.sortedPeers()
		sv.opt.RNG.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
		for w := 0; w < sv.par.Walkers; w++ {
			sv.send(peers[w%len(peers)], q)
		}
	default:
		q := Msg{Kind: msgQuery, Origin: sv.id, Seq: sv.nextQID, File: file, TTL: sv.par.QueryTTL, Hops: 0}
		for _, peer := range sv.sortedPeers() { // sorted: keeps runs reproducible
			sv.send(peer, q)
		}
	}
	if d := sv.opt.Demand; d != nil {
		d.Issued(sv.id)
	}
	sv.queryEv = sv.s.Schedule(sv.par.QueryCollect, sv.finishQueryFn)
}

// finishQuery closes the 30 s collection window, records the outcome and
// schedules the next query.
func (sv *Servent) finishQuery() {
	sv.queryEv = sim.Handle{}
	if r := sv.curReq; r != nil {
		sv.opt.Tracer.Emit(trace.KindQuery, sv.id, -1,
			"done qid=%d file=%d answers=%d minP2P=%d", r.qid, r.file, r.answers, r.minP2P)
	}
	if r := sv.curReq; r != nil && sv.opt.Collector != nil {
		sv.opt.Collector.Record(telemetry.Request{
			Node:     sv.id,
			File:     r.file,
			Answers:  r.answers,
			MinP2P:   r.minP2P,
			MinAdhoc: r.minAdhoc,
			Found:    r.answers > 0,
		})
	}
	r := sv.curReq
	sv.curReq = nil
	if r != nil {
		if d := sv.opt.Demand; d != nil {
			d.Done(sv.id, r.answers > 0)
		}
	}
	if !sv.joined {
		return
	}
	if r != nil && r.answers > 0 {
		sv.maybeStartDownload(r.file, r.holder)
	}
	sv.queryEv = sv.s.Schedule(sv.queryGap(), sv.runQueryFn)
}

// onQuery applies the paper's three forwarding rules and answers if this
// node holds the file. Random-walk queries relax rule 1: a walker may
// revisit a node (it keeps walking), but the node answers at most once.
func (sv *Servent) onQuery(prev int, q Msg) {
	if q.Origin == sv.id {
		return
	}
	if q.Walk {
		sv.onWalkQuery(prev, q)
		return
	}
	k := queryKey{q.Origin, q.Seq}
	if _, dup := sv.seen[k]; dup {
		return // rule 1: forward or respond at most once
	}
	sv.seen[k] = struct{}{}
	myDist := q.Hops + 1
	if sv.HasFile(q.File) {
		// "it sends a response directly to the requirer."
		sv.send(q.Origin, Msg{Kind: msgQueryHit, Seq: q.Seq, File: q.File, Holder: sv.id, Hops: myDist})
	}
	if q.TTL <= 1 {
		return
	}
	fwd := Msg{Kind: msgQuery, Origin: q.Origin, Seq: q.Seq, File: q.File, TTL: q.TTL - 1, Hops: myDist}
	for _, peer := range sv.sortedPeers() { // sorted: keeps runs reproducible
		if peer == prev || peer == q.Origin {
			continue // rules 2 and 3
		}
		sv.send(peer, fwd)
	}
}

// onWalkQuery advances one random walker: answer once if we hold the
// file, then hand the walker to a random neighbor (avoiding an
// immediate bounce when any alternative exists).
func (sv *Servent) onWalkQuery(prev int, q Msg) {
	myDist := q.Hops + 1
	k := queryKey{q.Origin, q.Seq}
	if _, answered := sv.seen[k]; !answered {
		sv.seen[k] = struct{}{}
		if sv.HasFile(q.File) {
			sv.send(q.Origin, Msg{Kind: msgQueryHit, Seq: q.Seq, File: q.File, Holder: sv.id, Hops: myDist})
		}
	}
	if q.TTL <= 1 {
		return
	}
	var candidates []int
	for _, peer := range sv.Peers() {
		if peer != prev && peer != q.Origin {
			candidates = append(candidates, peer)
		}
	}
	if len(candidates) == 0 {
		if _, back := sv.conns[prev]; back && prev != q.Origin {
			candidates = append(candidates, prev) // dead end: bounce
		} else {
			return
		}
	}
	next := candidates[sv.opt.RNG.Intn(len(candidates))]
	fwd := q
	fwd.TTL--
	fwd.Hops = myDist
	sv.send(next, fwd)
}

// onQueryHit accumulates an answer into the open request, tracking the
// minimum p2p and ad-hoc distances to a holder.
func (sv *Servent) onQueryHit(_ int, h Msg, adhocHops int) {
	r := sv.curReq
	if r == nil || h.Seq != r.qid {
		return // late answer: the window closed
	}
	r.answers++
	if r.answers == 1 {
		if d := sv.opt.Demand; d != nil {
			d.FirstAnswer(sv.id)
		}
	}
	if r.minP2P == 0 || h.Hops < r.minP2P {
		r.minP2P = h.Hops
		r.holder = h.Holder
	}
	if r.minAdhoc == 0 || adhocHops < r.minAdhoc {
		r.minAdhoc = adhocHops
	}
}
