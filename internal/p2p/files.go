package p2p

import (
	"fmt"
	"math/rand"
)

// FileConfig describes the shared-content model of §7.2: NumFiles
// distinct searchable files distributed over the servents so that file
// rank i (0-based) is held by MaxFreq/(i+1) of the nodes — the Zipf law
// with the paper's MAXFREQ = 40%.
type FileConfig struct {
	NumFiles int     // distinct searchable files (20)
	MaxFreq  float64 // fraction of nodes holding the most popular file (0.40)
}

// DefaultFileConfig returns the paper's content parameters.
func DefaultFileConfig() FileConfig {
	return FileConfig{NumFiles: 20, MaxFreq: 0.40}
}

// Validate reports a descriptive error for inconsistent parameters.
func (c FileConfig) Validate() error {
	switch {
	case c.NumFiles < 1:
		return fmt.Errorf("p2p: NumFiles %d < 1", c.NumFiles)
	case c.MaxFreq <= 0 || c.MaxFreq > 1:
		return fmt.Errorf("p2p: MaxFreq %v outside (0,1]", c.MaxFreq)
	}
	return nil
}

// Frequency returns the fraction of servents expected to hold file rank
// (0-based): MaxFreq / (rank+1).
func (c FileConfig) Frequency(rank int) float64 {
	return c.MaxFreq / float64(rank+1)
}

// PlaceFiles assigns files to each of n servents: servent i holds file r
// with independent probability Frequency(r). The return value indexes
// holdings as held[servent][rank]. Every file is guaranteed at least one
// holder (re-rolled onto a random servent if the draw left it orphaned),
// so every query target exists somewhere in the network.
func (c FileConfig) PlaceFiles(n int, rng *rand.Rand) [][]bool {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	held := make([][]bool, n)
	for i := range held {
		held[i] = make([]bool, c.NumFiles)
	}
	for r := 0; r < c.NumFiles; r++ {
		freq := c.Frequency(r)
		holders := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < freq {
				held[i][r] = true
				holders++
			}
		}
		if holders == 0 && n > 0 {
			held[rng.Intn(n)][r] = true
		}
	}
	return held
}
