package p2p

import "manetp2p/internal/sim"

// Demand is the pluggable workload engine behind the query loop
// (implemented by internal/workload.Engine; defined here so p2p does
// not depend on it). With Options.Demand nil the servent keeps the
// paper's built-in model — uniform 15–45 s gaps and uniform picks among
// unheld files — byte-identically to builds before this interface
// existed.
//
// NextGap and PickFile replace the built-in draws; the remaining hooks
// are telemetry, called at well-defined points of the query lifecycle:
// Offered when a demand arrival fires (including retries while demand
// is unserved), Issued when a query is actually sent, FirstAnswer on
// the first hit of the open window, Done when the collection window
// closes, and Aborted when leaving the overlay cuts a window short.
type Demand interface {
	NextGap(node int) sim.Time
	PickFile(node int, held []bool) int
	Offered(node int)
	Issued(node int)
	FirstAnswer(node int)
	Done(node int, found bool)
	Aborted(node int)
}
