package p2p

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFileConfigValidate(t *testing.T) {
	if err := DefaultFileConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []FileConfig{
		{NumFiles: 0, MaxFreq: 0.4},
		{NumFiles: 20, MaxFreq: 0},
		{NumFiles: 20, MaxFreq: 1.5},
	}
	for _, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestZipfFrequency(t *testing.T) {
	c := DefaultFileConfig()
	// "the most popular file will be present in 40% of all nodes, the
	// second most popular one in 20%, the third in 40%/3, and so on."
	if got := c.Frequency(0); got != 0.40 {
		t.Errorf("Frequency(0) = %v, want 0.40", got)
	}
	if got := c.Frequency(1); got != 0.20 {
		t.Errorf("Frequency(1) = %v, want 0.20", got)
	}
	if got := c.Frequency(3); got != 0.10 {
		t.Errorf("Frequency(3) = %v, want 0.10", got)
	}
}

func TestPlaceFilesMatchesZipf(t *testing.T) {
	c := DefaultFileConfig()
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	held := c.PlaceFiles(n, rng)
	for r := 0; r < c.NumFiles; r++ {
		holders := 0
		for i := 0; i < n; i++ {
			if held[i][r] {
				holders++
			}
		}
		want := c.Frequency(r) * n
		if float64(holders) < want*0.85 || float64(holders) > want*1.15 {
			t.Errorf("file %d holders = %d, want ~%.0f", r, holders, want)
		}
	}
}

func TestPlaceFilesEveryFileHasHolder(t *testing.T) {
	c := FileConfig{NumFiles: 40, MaxFreq: 0.05} // rare files on few nodes
	rng := rand.New(rand.NewSource(2))
	held := c.PlaceFiles(8, rng)
	for r := 0; r < c.NumFiles; r++ {
		holders := 0
		for i := range held {
			if held[i][r] {
				holders++
			}
		}
		if holders == 0 {
			t.Errorf("file %d has no holder", r)
		}
	}
}

// Property: holdings matrix is well-formed and popularity is (in
// expectation) nonincreasing with rank for large n.
func TestQuickPlaceFilesShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := DefaultFileConfig()
		const n = 3000
		held := c.PlaceFiles(n, rng)
		if len(held) != n {
			return false
		}
		counts := make([]int, c.NumFiles)
		for i := range held {
			if len(held[i]) != c.NumFiles {
				return false
			}
			for r, h := range held[i] {
				if h {
					counts[r]++
				}
			}
		}
		// Allow sampling noise: rank 0 must clearly beat rank 4, rank 4
		// must beat rank 19.
		return counts[0] > counts[4] && counts[4] > counts[19] && counts[19] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.MaxNConn = 0 },
		func(p *Params) { p.NHopsInitial = 0 },
		func(p *Params) { p.NHopsInitial = p.MaxNHops + 1 },
		func(p *Params) { p.NHopsBasic = 0 },
		func(p *Params) { p.MaxDist = 0 },
		func(p *Params) { p.MaxNSlaves = 0 },
		func(p *Params) { p.QueryTTL = 0 },
		func(p *Params) { p.TimerInitial = 0 },
		func(p *Params) { p.MaxTimer = p.TimerInitial / 2 },
		func(p *Params) { p.PingInterval = 0 },
		func(p *Params) { p.QueryGapMax = p.QueryGapMin - 1 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{Basic: "Basic", Regular: "Regular", Random: "Random", Hybrid: "Hybrid"}
	for alg, name := range want {
		if alg.String() != name {
			t.Errorf("String() = %q, want %q", alg.String(), name)
		}
	}
	if len(Algorithms()) != 4 {
		t.Error("Algorithms() must list all four")
	}
}

func TestHybridStateString(t *testing.T) {
	for st, name := range map[HybridState]string{
		StateInitial: "initial", StateMaster: "master", StateSlave: "slave", StateReserved: "reserved",
	} {
		if st.String() != name {
			t.Errorf("String() = %q, want %q", st.String(), name)
		}
	}
}
