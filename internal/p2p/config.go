// Package p2p implements the paper's contribution: four algorithms that
// configure, maintain and reorganize a peer-to-peer overlay on top of a
// mobile ad-hoc network — Basic, Regular, Random and Hybrid (§6 of the
// paper) — together with the Gnutella-style query system used to evaluate
// them (§7.2).
//
// "Connections" here are references, as the paper stresses: a node keeps
// the addresses of peers it believes reachable; symmetrical connections
// are reference pairs maintained by one-sided pings.
package p2p

import (
	"fmt"

	"manetp2p/internal/sim"
)

// Algorithm selects one of the paper's four (re)configuration algorithms.
type Algorithm int

const (
	// Basic is the fixed-radius, asymmetric-reference baseline (§6.1.1).
	Basic Algorithm = iota
	// Regular is the expanding-ring, symmetric-connection algorithm (§6.1.3).
	Regular
	// Random is Regular plus one long-range "random" connection meant to
	// induce small-world structure (§6.1.4).
	Random
	// Hybrid is the master/slave clustering algorithm for heterogeneous
	// networks (§6.2).
	Hybrid
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Basic:
		return "Basic"
	case Regular:
		return "Regular"
	case Random:
		return "Random"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists all four in the paper's presentation order.
func Algorithms() []Algorithm { return []Algorithm{Basic, Regular, Random, Hybrid} }

// QueryMode selects how searches propagate over the overlay.
type QueryMode int

const (
	// QueryFlood is the paper's Gnutella-style TTL-limited flood (§7.2).
	QueryFlood QueryMode = iota
	// QueryRandomWalk replaces the flood with k parallel random walkers
	// — the classic bandwidth-vs-latency alternative from the
	// Gnutella-scalability debate the paper reviews in §5.
	QueryRandomWalk
)

// String names the query mode.
func (m QueryMode) String() string {
	switch m {
	case QueryFlood:
		return "flood"
	case QueryRandomWalk:
		return "randomwalk"
	default:
		return fmt.Sprintf("querymode(%d)", int(m))
	}
}

// Params collects every protocol constant from Table 2 of the paper plus
// the timing constants the paper uses but does not tabulate (marked).
type Params struct {
	// Table 2 values.
	MaxNConn     int // MAXNCONN: max connections per node (3)
	NHopsInitial int // NHOPS_INITIAL: first discovery radius, ad-hoc hops (2)
	MaxNHops     int // MAXNHOPS: largest discovery radius (6)
	NHopsBasic   int // NHOPS: Basic algorithm's fixed radius (6)
	MaxDist      int // MAXDIST: max ad-hoc distance between connected peers (6)
	MaxNSlaves   int // MAXNSLAVES: slaves per master (3)
	QueryTTL     int // TTL for queries, p2p hops (6)

	// Query-propagation extension (§5 discussion; default = the paper's
	// flooding).
	QueryMode QueryMode
	Walkers   int // random-walk mode: parallel walkers per request
	WalkTTL   int // random-walk mode: hop budget per walker

	// Download extension: fetch found files and replicate them locally
	// (off by default — the paper's simulations stop at query hits).
	Download DownloadConfig

	// PeerCache extension: try unicast reconnects to remembered peers
	// before broadcasting (off by default — the paper always floods).
	PeerCache PeerCacheConfig

	// Timing constants (not tabulated in the paper; see DESIGN.md).
	TimerBasic     sim.Time // Basic's fixed retry interval
	TimerInitial   sim.Time // TIMER_INITIAL: first retry interval
	MaxTimer       sim.Time // MAXTIMER: retry-interval ceiling
	PingInterval   sim.Time // keepalive period
	PongTimeout    sim.Time // wait for pong before closing
	HandshakeWait  sim.Time // wait for accept/confirm before abandoning
	OfferWindow    sim.Time // Random: how long to collect offers before picking the farthest
	MasterIdle     sim.Time // MAXTIMERMASTER: slaveless master reverts to initial
	QueryCollect   sim.Time // answer collection window per request (30 s, §7.2)
	QueryGapMin    sim.Time // min extra wait before the next query (15 s)
	QueryGapMax    sim.Time // max extra wait before the next query (45 s)
	JoinStaggerMax sim.Time // random start offset to avoid lockstep
}

// DefaultParams returns Table 2 of the paper plus this reproduction's
// timing defaults.
func DefaultParams() Params {
	return Params{
		MaxNConn:     3,
		NHopsInitial: 2,
		MaxNHops:     6,
		NHopsBasic:   6,
		MaxDist:      6,
		MaxNSlaves:   3,
		QueryTTL:     6,
		QueryMode:    QueryFlood,
		Walkers:      2,
		WalkTTL:      16,

		// Chosen so the per-node-per-hour message magnitudes land in the
		// range the paper's Figures 7-12 report (see EXPERIMENTS.md):
		// sparse 50-node networks rarely saturate MAXNCONN, so nodes
		// keep retrying for the whole run and the retry/keepalive
		// periods dominate the counts.
		// TIMER (Basic) equals TIMER_INITIAL: the paper presents the
		// Regular algorithm's doubling timer as an improvement over
		// Basic's fixed one, so both start from the same interval.
		TimerBasic:     30 * sim.Second,
		TimerInitial:   30 * sim.Second,
		MaxTimer:       240 * sim.Second,
		PingInterval:   60 * sim.Second,
		PongTimeout:    15 * sim.Second,
		HandshakeWait:  10 * sim.Second,
		OfferWindow:    5 * sim.Second,
		MasterIdle:     120 * sim.Second,
		QueryCollect:   30 * sim.Second,
		QueryGapMin:    15 * sim.Second,
		QueryGapMax:    45 * sim.Second,
		JoinStaggerMax: 5 * sim.Second,
	}
}

// Validate reports a descriptive error for inconsistent parameters.
func (p Params) Validate() error {
	switch {
	case p.MaxNConn < 1:
		return fmt.Errorf("p2p: MaxNConn %d < 1", p.MaxNConn)
	case p.NHopsInitial < 1 || p.NHopsInitial > p.MaxNHops:
		return fmt.Errorf("p2p: NHopsInitial %d outside [1, MaxNHops=%d]", p.NHopsInitial, p.MaxNHops)
	case p.MaxNHops%2 != 0:
		// The expanding ring advances by 2 modulo MaxNHops+2; an odd
		// ceiling never hits 0 and the sweep emits radii above MAXNHOPS.
		return fmt.Errorf("p2p: MaxNHops %d must be even", p.MaxNHops)
	case p.NHopsInitial%2 != 0:
		// Same sequence argument: an odd start walks the odd residues and
		// overshoots MaxNHops before wrapping.
		return fmt.Errorf("p2p: NHopsInitial %d must be even", p.NHopsInitial)
	case p.NHopsBasic < 1:
		return fmt.Errorf("p2p: NHopsBasic %d < 1", p.NHopsBasic)
	case p.MaxDist < 1:
		return fmt.Errorf("p2p: MaxDist %d < 1", p.MaxDist)
	case p.MaxNSlaves < 1:
		return fmt.Errorf("p2p: MaxNSlaves %d < 1", p.MaxNSlaves)
	case p.QueryTTL < 1:
		return fmt.Errorf("p2p: QueryTTL %d < 1", p.QueryTTL)
	case p.TimerBasic <= 0 || p.TimerInitial <= 0 || p.MaxTimer < p.TimerInitial:
		return fmt.Errorf("p2p: timer configuration invalid")
	case p.PingInterval <= 0 || p.PongTimeout <= 0:
		return fmt.Errorf("p2p: keepalive configuration invalid")
	case p.HandshakeWait <= 0:
		return fmt.Errorf("p2p: HandshakeWait %v not positive", p.HandshakeWait)
	case p.OfferWindow <= 0:
		return fmt.Errorf("p2p: OfferWindow %v not positive", p.OfferWindow)
	case p.MasterIdle <= 0:
		return fmt.Errorf("p2p: MasterIdle %v not positive", p.MasterIdle)
	case p.JoinStaggerMax < 0:
		return fmt.Errorf("p2p: JoinStaggerMax %v negative", p.JoinStaggerMax)
	case p.QueryCollect <= 0 || p.QueryGapMin < 0 || p.QueryGapMax < p.QueryGapMin:
		return fmt.Errorf("p2p: query timing invalid")
	case p.QueryMode == QueryRandomWalk && (p.Walkers < 1 || p.WalkTTL < 1):
		return fmt.Errorf("p2p: random-walk query configuration invalid")
	}
	return nil
}
