package p2p

import (
	"manetp2p/internal/telemetry"
	"testing"

	"manetp2p/internal/geom"
)

// hybridWorld builds a clique of n hybrid servents with the given
// qualifiers.
func hybridWorld(t *testing.T, seed int64, quals []float64) *world {
	t.Helper()
	return newWorld(t, worldSpec{
		seed:  seed,
		pts:   cliquePts(len(quals)),
		alg:   Hybrid,
		quals: quals,
	})
}

// checkHybridInvariants verifies the master/slave structural rules.
func checkHybridInvariants(t *testing.T, w *world) {
	t.Helper()
	for _, sv := range w.svs {
		if sv == nil || !sv.Joined() {
			continue
		}
		switch sv.State() {
		case StateSlave:
			m := sv.Master()
			if m < 0 {
				t.Errorf("slave %d has no master link", sv.id)
				continue
			}
			master := w.svs[m]
			if master.State() != StateMaster {
				t.Errorf("slave %d's master %d is in state %v", sv.id, m, master.State())
			}
			found := false
			for _, s := range master.Slaves() {
				if s == sv.id {
					found = true
				}
			}
			if !found {
				t.Errorf("master %d does not list slave %d", m, sv.id)
			}
			// "The slaves can only communicate to their master."
			if sv.ConnCount() != 1 {
				t.Errorf("slave %d has %d conns, want exactly 1 (its master)", sv.id, sv.ConnCount())
			}
		case StateMaster:
			if n := sv.slaveCount(); n > DefaultParams().MaxNSlaves {
				t.Errorf("master %d has %d slaves > MAXNSLAVES", sv.id, n)
			}
			for _, s := range sv.Slaves() {
				if w.svs[s].State() != StateSlave {
					t.Errorf("master %d lists %d (state %v) as slave", sv.id, s, w.svs[s].State())
				}
			}
		}
	}
}

func TestHybridMastersOutrankTheirSlaves(t *testing.T) {
	// Enslavement is first-come ("try to become a slave of the sender"),
	// so the global best master is not guaranteed — but every slave's
	// master must outrank it, and the lowest-qualified node must end up
	// a slave in a clique.
	quals := []float64{0.1, 0.5, 0.9}
	w := hybridWorld(t, 20, quals)
	w.joinAll()
	w.run(time(300))
	checkHybridInvariants(t, w)
	if got := w.svs[0].State(); got != StateSlave {
		t.Errorf("lowest-qualifier node state = %v, want slave", got)
	}
	for i, sv := range w.svs {
		if sv.State() != StateSlave {
			continue
		}
		m := sv.Master()
		if quals[m] < quals[i] {
			t.Errorf("slave %d (q=%.2f) serves master %d (q=%.2f): master must outrank",
				i, quals[i], m, quals[m])
		}
	}
	masters := 0
	for _, sv := range w.svs {
		if sv.State() == StateMaster {
			masters++
		}
	}
	if masters == 0 {
		t.Error("no master emerged")
	}
}

func TestHybridMaxNSlavesRespected(t *testing.T) {
	// Six low-qualified nodes cannot all enslave to the single star node:
	// MAXNSLAVES=3 forces a second subnet to emerge.
	quals := []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.99}
	w := hybridWorld(t, 21, quals)
	w.joinAll()
	w.run(time(600))
	checkHybridInvariants(t, w)
	masters, slaves := 0, 0
	for _, sv := range w.svs {
		switch sv.State() {
		case StateMaster:
			masters++
		case StateSlave:
			slaves++
		}
	}
	if masters < 2 {
		t.Errorf("masters = %d, want >= 2 (MAXNSLAVES must force a second subnet)", masters)
	}
	if masters+slaves != len(quals) {
		t.Errorf("masters+slaves = %d, want %d (no one left initial/reserved)", masters+slaves, len(quals))
	}
}

func TestHybridLoneNodeBecomesMaster(t *testing.T) {
	w := hybridWorld(t, 22, []float64{0.5})
	w.joinAll()
	w.run(time(120))
	if got := w.svs[0].State(); got != StateMaster {
		t.Errorf("lone node state = %v, want master (self-entitled after sweep)", got)
	}
}

func TestHybridMastersInterconnect(t *testing.T) {
	// Two clusters far apart, joined by relays: their masters must link
	// up via the regular algorithm over the mesh solicitations.
	pts := []geom.Point{
		// Cluster A around (100,150).
		{X: 100, Y: 150}, {X: 102, Y: 150}, {X: 104, Y: 150},
		// Relays every 8 m.
		{X: 112, Y: 150}, {X: 120, Y: 150},
		// Cluster B around (128,150).
		{X: 128, Y: 150}, {X: 130, Y: 150}, {X: 132, Y: 150},
	}
	member := []bool{true, true, true, false, false, true, true, true}
	quals := []float64{0.9, 0.2, 0.3, 0, 0, 0.8, 0.1, 0.4}
	w := newWorld(t, worldSpec{seed: 23, pts: pts, member: member, alg: Hybrid, quals: quals})
	w.joinAll()
	w.run(time(600))
	checkHybridInvariants(t, w)
	ma, mb := w.svs[0], w.svs[5]
	if ma.State() != StateMaster || mb.State() != StateMaster {
		t.Fatalf("cluster heads states = %v,%v want master,master", ma.State(), mb.State())
	}
	if ma.masterLinkCount() == 0 || mb.masterLinkCount() == 0 {
		t.Error("masters did not interconnect over the mesh")
	}
}

func TestHybridSlavelessMasterReverts(t *testing.T) {
	// A master whose slaves all die must revert to initial after
	// MAXTIMERMASTER and try to become someone's slave.
	w := hybridWorld(t, 24, []float64{0.2, 0.9, 0.95})
	w.joinAll()
	w.run(time(180))
	// Expect: node 2 master; 0 and 1 slaves of 2 (1 despite high qual,
	// since 2 outranks it), or 1 became master of 0. Find a master and
	// kill its slaves.
	var master *Servent
	for _, sv := range w.svs {
		if sv.State() == StateMaster && sv.slaveCount() > 0 {
			master = sv
			break
		}
	}
	if master == nil {
		t.Fatal("no master with slaves formed")
	}
	for _, s := range master.Slaves() {
		w.med.Leave(s)
		w.svs[s].Leave(false)
	}
	// The master must pass through initial at some point (a lone node
	// lawfully re-entitles itself master afterwards, so poll).
	reverted := false
	deadline := DefaultParams().MasterIdle + time(200)
	for elapsed := time(0); elapsed < deadline; elapsed += time(5) {
		w.run(time(5))
		if st := master.State(); st == StateInitial || st == StateReserved || st == StateSlave {
			reverted = true
			break
		}
	}
	if !reverted {
		t.Error("slaveless master never left master state after MAXTIMERMASTER")
	}
}

func TestHybridStrayedSlaveRejoins(t *testing.T) {
	// A slave dragged beyond MAXDIST from its master must drop the link
	// and find a new master in its neighborhood.
	pts := linePts(12)
	member := make([]bool, 12)
	quals := make([]float64, 12)
	// Members: 0 (master-grade) and 1 (slave-grade) adjacent; 11 is
	// another master-grade node at the far end.
	member[0], member[1], member[11] = true, true, true
	quals[0], quals[1], quals[11] = 0.9, 0.1, 0.95
	w := newWorld(t, worldSpec{seed: 25, pts: pts, member: member, alg: Hybrid, quals: quals})
	w.joinAll()
	w.run(time(200))
	if w.svs[1].State() != StateSlave || w.svs[1].Master() != 0 {
		t.Fatalf("precondition: node 1 state=%v master=%d, want slave of 0",
			w.svs[1].State(), w.svs[1].Master())
	}
	// Drag the slave to the far end: 8+ hops from master 0, adjacent to 11.
	w.med.SetPos(1, geom.Point{X: pts[11].X - 4, Y: pts[11].Y})
	w.run(time(600))
	if got := w.svs[1].Master(); got != 11 {
		t.Errorf("strayed slave's master = %d, want 11 (re-enslaved nearby)", got)
	}
	checkHybridInvariants(t, w)
}

func TestHybridCaptureReplyPath(t *testing.T) {
	// A low-qualifier node's capture is answered by a higher-qualifier
	// node's capture *reply*, which must trigger enslavement toward the
	// replier — the "new peers always get some feedback" guarantee.
	w := hybridWorld(t, 28, []float64{0.1, 0.9})
	// Only the low node broadcasts (the high node's cycle is disabled),
	// so the enslavement can only happen via the reply path.
	w.svs[1].opt.NoEstablish = true
	w.joinAll()
	w.run(time(120))
	if got := w.svs[0].State(); got != StateSlave {
		t.Fatalf("low node state = %v, want slave via capture reply", got)
	}
	if got := w.svs[0].Master(); got != 1 {
		t.Errorf("master = %d, want 1", got)
	}
	if got := w.svs[1].State(); got != StateMaster {
		t.Errorf("replier state = %v, want master", got)
	}
}

func TestHybridEnslaveRejectWhenFull(t *testing.T) {
	w := hybridWorld(t, 29, []float64{0.9, 0.1})
	w.joinAll()
	w.run(time(60))
	master := w.svs[0]
	if master.State() != StateMaster {
		t.Skip("node 0 did not become master in this topology")
	}
	// Saturate the master with placeholder slaves.
	for p := 10; p < 10+DefaultParams().MaxNSlaves; p++ {
		master.conns[p] = &conn{peer: p, toSlave: true}
	}
	// A fresh candidate must be rejected and return to initial.
	before := master.slaveCount()
	master.onEnslaveReq(5, Msg{Kind: msgEnslaveReq, Qualifier: 0.05})
	w.run(time(5))
	if master.slaveCount() != before {
		t.Error("full master accepted another slave")
	}
}

func TestHybridQualifierTieBreaksById(t *testing.T) {
	w := hybridWorld(t, 26, []float64{0.5, 0.5})
	w.joinAll()
	w.run(time(300))
	s0, s1 := w.svs[0].State(), w.svs[1].State()
	if !(s0 == StateSlave && s1 == StateMaster) {
		t.Errorf("states = %v,%v; want id tie-break making 1 master, 0 slave", s0, s1)
	}
}

func TestHybridQueriesFlowThroughMaster(t *testing.T) {
	// Star: master 0 with slaves 1 and 2. Slave 1 holds the file; a
	// query from slave 2 can only reach it through the master.
	par := DefaultParams()
	w := newWorld(t, worldSpec{
		seed:  90,
		pts:   cliquePts(3),
		alg:   Hybrid,
		par:   par,
		quals: []float64{0.9, 0.1, 0.2},
		files: fileSets(3, 2, map[int][]int{0: {1}, 1: {2}}),
		opts: func(i int, o *Options) {
			o.NoEstablish = true
			o.NoQueries = true
		},
	})
	w.joinAll()
	master, s1, s2 := w.svs[0], w.svs[1], w.svs[2]
	master.state = StateMaster
	s1.state = StateSlave
	s2.state = StateSlave
	master.installConn(&conn{peer: 1, toSlave: true, initiator: false})
	s1.installConn(&conn{peer: 0, toMaster: true, initiator: true})
	master.installConn(&conn{peer: 2, toSlave: true, initiator: false})
	s2.installConn(&conn{peer: 0, toMaster: true, initiator: true})

	s2.runQuery() // can only pick file 0 (holds file 1)
	w.run(par.QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 || !reqs[0].Found {
		t.Fatalf("requests = %+v, want found via master relay", reqs)
	}
	if reqs[0].MinP2P != 2 {
		t.Errorf("MinP2P = %d, want 2 (slave -> master -> slave)", reqs[0].MinP2P)
	}
	// The master relayed exactly one query copy to slave 1.
	if got := w.col.Received(0, telemetry.Query); got != 1 {
		t.Errorf("master received %d queries, want 1", got)
	}
	if got := w.col.Received(1, telemetry.Query); got != 1 {
		t.Errorf("holder slave received %d queries, want 1", got)
	}
}

func TestHybridInvariantsOnScatteredTopology(t *testing.T) {
	rng := newWorld(t, worldSpec{seed: 1, pts: cliquePts(1), alg: Hybrid, quals: []float64{0}}).s.NewRand()
	pts := make([]geom.Point, 30)
	quals := make([]float64, 30)
	for i := range pts {
		pts[i] = geom.Point{X: 120 + rng.Float64()*60, Y: 120 + rng.Float64()*60}
		quals[i] = rng.Float64()
	}
	w := newWorld(t, worldSpec{seed: 27, pts: pts, alg: Hybrid, quals: quals})
	w.joinAll()
	w.run(time(900))
	checkHybridInvariants(t, w)
	w.checkCapacity(t, DefaultParams())
	settled := 0
	for _, sv := range w.svs {
		if st := sv.State(); st == StateMaster || st == StateSlave {
			settled++
		}
	}
	if settled < len(pts)*3/4 {
		t.Errorf("only %d/%d nodes settled into master/slave roles", settled, len(pts))
	}
}
