package p2p

import (
	"testing"

	"manetp2p/internal/aodv"
	"manetp2p/internal/geom"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
)

// world assembles servents over a shared medium for white-box protocol
// tests. Entries of svs may be nil: those nodes relay at the ad-hoc
// layer but do not participate in the overlay.
type world struct {
	s   *sim.Sim
	med *radio.Medium
	rts []*aodv.Router
	svs []*Servent
	col *telemetry.Collector
}

// worldSpec configures newWorld.
type worldSpec struct {
	seed   int64
	pts    []geom.Point
	member []bool // nil = all members
	alg    Algorithm
	par    Params // zero = DefaultParams
	files  [][]bool
	quals  []float64
	opts   func(i int, o *Options) // optional per-node tweaks
}

func newWorld(t *testing.T, spec worldSpec) *world {
	t.Helper()
	if spec.par == (Params{}) {
		spec.par = DefaultParams()
	}
	s := sim.New(spec.seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 300, H: 300},
		Range:    10,
		NumNodes: len(spec.pts),
		Latency:  2 * sim.Millisecond,
		Jitter:   sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{
		s:   s,
		med: med,
		rts: make([]*aodv.Router, len(spec.pts)),
		svs: make([]*Servent, len(spec.pts)),
		col: telemetry.NewCollector(len(spec.pts)),
	}
	for i, p := range spec.pts {
		rt := aodv.NewRouter(i, s, med, aodv.Config{})
		w.rts[i] = rt
		med.Join(i, p, rt.HandleFrame)
		if spec.member != nil && !spec.member[i] {
			continue
		}
		opt := Options{Collector: w.col, RNG: s.NewRand(), NoQueries: true}
		if spec.files != nil {
			opt.Files = spec.files[i]
			opt.NoQueries = false
		}
		if spec.quals != nil {
			opt.Qualifier = spec.quals[i]
		}
		if spec.opts != nil {
			spec.opts(i, &opt)
		}
		sv := NewServent(i, s, rt, spec.par, spec.alg, opt)
		rt.OnUnicast(sv.HandleUnicast)
		rt.OnBroadcast(sv.HandleBroadcast)
		w.svs[i] = sv
	}
	return w
}

func (w *world) joinAll() {
	for _, sv := range w.svs {
		if sv != nil {
			sv.Join()
		}
	}
}

// run advances the simulation by d.
func (w *world) run(d sim.Time) { w.s.Run(w.s.Now() + d) }

// linePts returns n points spaced 8 m apart (range 10 m: a chain).
func linePts(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 5 + 8*float64(i), Y: 150}
	}
	return pts
}

// cliquePts returns n points all mutually in range.
func cliquePts(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 150 + float64(i%3)*2, Y: 150 + float64(i/3)*2}
	}
	return pts
}

// forceLink installs a symmetric established connection, bypassing the
// handshake — used to build known overlays for query tests.
func forceLink(a, b *Servent, random bool) {
	a.installConn(&conn{peer: b.id, random: random, initiator: true})
	b.installConn(&conn{peer: a.id, random: random, initiator: false})
}

// checkSymmetric verifies that (for symmetric algorithms) every live
// connection has a live counterpart, with exactly one initiator.
func (w *world) checkSymmetric(t *testing.T) {
	t.Helper()
	for _, sv := range w.svs {
		if sv == nil {
			continue
		}
		for peer, c := range sv.conns { // commutative: per-link symmetry check
			other := w.svs[peer]
			if other == nil {
				t.Errorf("node %d connected to non-member %d", sv.id, peer)
				continue
			}
			oc, ok := other.conns[sv.id]
			if !ok {
				t.Errorf("asymmetric link: %d has %d, reverse missing", sv.id, peer)
				continue
			}
			if c.initiator == oc.initiator {
				t.Errorf("link %d<->%d: both/neither initiator", sv.id, peer)
			}
			if c.random != oc.random {
				t.Errorf("link %d<->%d: random flag mismatch", sv.id, peer)
			}
		}
	}
}

// checkCapacity verifies per-algorithm connection caps.
func (w *world) checkCapacity(t *testing.T, par Params) {
	t.Helper()
	for _, sv := range w.svs {
		if sv == nil {
			continue
		}
		switch sv.alg {
		case Basic, Regular:
			if n := len(sv.conns); n > par.MaxNConn {
				t.Errorf("node %d has %d conns > MAXNCONN %d", sv.id, n, par.MaxNConn)
			}
		case Random:
			reg, rnd := 0, 0
			for _, c := range sv.conns { // commutative: pure count
				if c.random {
					rnd++
				} else {
					reg++
				}
			}
			if reg > par.MaxNConn-1 {
				t.Errorf("node %d has %d regular conns > MAXNCONN-1", sv.id, reg)
			}
			if rnd > 1 {
				t.Errorf("node %d has %d random conns > 1", sv.id, rnd)
			}
		case Hybrid:
			if n := sv.slaveCount(); n > par.MaxNSlaves {
				t.Errorf("master %d has %d slaves > MAXNSLAVES %d", sv.id, n, par.MaxNSlaves)
			}
			if n := sv.masterLinkCount(); n > par.MaxNConn {
				t.Errorf("master %d has %d mesh links > MAXNCONN", sv.id, n)
			}
		}
		if _, self := sv.conns[sv.id]; self {
			t.Errorf("node %d connected to itself", sv.id)
		}
	}
}
