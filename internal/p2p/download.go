package p2p

// This file implements the optional download/replication extension.
// The paper stops at query hits ("the file properly said, which is
// transferred directly between the peers" — §2), and its simulations
// never move file bytes. With Downloads enabled, a requester whose
// collection window closed with answers picks the nearest holder,
// fetches the file in chunks over the ad-hoc unicast path, and — as in
// real Gnutella — becomes a holder itself, so popular files replicate
// toward demand over the run.

import (
	"manetp2p/internal/sim"
	"manetp2p/internal/trace"
)

// Download protocol message sizes.
const (
	sizeFetchReq = 12
	sizeChunk    = 512 // file payload chunk on the air
)

// xfer tracks one in-progress download at the requester.
type xfer struct {
	file    int
	holder  int
	next    int // next chunk index expected
	chunks  int // total, learned from the first chunk
	timeout *sim.Timer
}

// DownloadConfig tunes the transfer extension.
type DownloadConfig struct {
	Enabled    bool
	FileChunks int      // chunks per file (default 8)
	ChunkWait  sim.Time // per-chunk stall timeout (default 10 s)
}

// downloadDefaults fills zero fields.
func (c DownloadConfig) withDefaults() DownloadConfig {
	if c.FileChunks <= 0 {
		c.FileChunks = 8
	}
	if c.ChunkWait <= 0 {
		c.ChunkWait = 10 * sim.Second
	}
	return c
}

// Downloaded reports how many files this servent fetched successfully.
func (sv *Servent) Downloaded() uint64 { return sv.downloads }

// maybeStartDownload begins a fetch after a successful request if the
// extension is on and we still lack the file.
func (sv *Servent) maybeStartDownload(file, holder int) {
	if !sv.par.Download.Enabled || sv.xfer != nil || sv.HasFile(file) || holder == sv.id {
		return
	}
	x := &xfer{file: file, holder: holder}
	x.timeout = sim.NewTimer(sv.s, func() { sv.abortDownload(x) })
	x.timeout.Reset(sv.par.Download.ChunkWait)
	sv.xfer = x
	sv.opt.Tracer.Emit(trace.KindQuery, sv.id, holder, "download start file=%d", file)
	sv.send(holder, Msg{Kind: msgFetchReq, File: file, Chunk: 0})
}

// abortDownload gives up on a stalled transfer.
func (sv *Servent) abortDownload(x *xfer) {
	if sv.xfer != x {
		return
	}
	sv.opt.Tracer.Emit(trace.KindQuery, sv.id, x.holder, "download abort file=%d at chunk %d", x.file, x.next)
	x.timeout.Stop()
	sv.xfer = nil
}

// onFetchReq serves one chunk if we hold the file.
func (sv *Servent) onFetchReq(from int, m Msg) {
	if !sv.par.Download.Enabled || !sv.HasFile(m.File) {
		return
	}
	cfg := sv.par.Download
	if m.Chunk < 0 || m.Chunk >= cfg.FileChunks {
		return
	}
	sv.send(from, Msg{Kind: msgChunk, File: m.File, Chunk: m.Chunk, Chunks: cfg.FileChunks})
}

// onChunk advances the requester's transfer; on completion the file is
// installed locally (replication).
func (sv *Servent) onChunk(from int, m Msg) {
	x := sv.xfer
	if x == nil || x.holder != from || x.file != m.File || m.Chunk != x.next {
		return // stale, duplicate or out-of-order chunk
	}
	x.chunks = m.Chunks
	x.next++
	x.timeout.Reset(sv.par.Download.ChunkWait)
	if x.next < x.chunks {
		sv.send(from, Msg{Kind: msgFetchReq, File: x.file, Chunk: x.next})
		return
	}
	// Complete: we now hold (and serve) the file.
	x.timeout.Stop()
	sv.xfer = nil
	if x.file >= 0 && x.file < len(sv.opt.Files) {
		sv.opt.Files[x.file] = true
		sv.downloads++
		sv.opt.Tracer.Emit(trace.KindQuery, sv.id, from, "download done file=%d", x.file)
	}
}
