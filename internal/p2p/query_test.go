package p2p

import (
	"testing"

	"manetp2p/internal/telemetry"
)

// queryWorld builds a clique of servents with NoEstablish and a manual
// overlay, so query mechanics are tested in isolation.
func queryWorld(t *testing.T, seed int64, n int, files [][]bool) *world {
	t.Helper()
	w := newWorld(t, worldSpec{
		seed:  seed,
		pts:   cliquePts(n),
		alg:   Regular,
		files: files,
		opts: func(i int, o *Options) {
			o.NoEstablish = true
			o.NoQueries = true // queries driven manually per test
		},
	})
	w.joinAll()
	return w
}

// fileSets builds holdings: holders[f] lists the servents holding file f.
func fileSets(n, numFiles int, holders map[int][]int) [][]bool {
	files := make([][]bool, n)
	for i := range files {
		files[i] = make([]bool, numFiles)
	}
	for f, hs := range holders {
		for _, h := range hs {
			files[h][f] = true
		}
	}
	return files
}

// chainOverlay links servents 0-1-2-...-n-1.
func chainOverlay(w *world) {
	for i := 0; i+1 < len(w.svs); i++ {
		forceLink(w.svs[i], w.svs[i+1], false)
	}
}

func TestQueryFindsFileAndRecordsDistance(t *testing.T) {
	// Chain 0-1-2-3; file 0 held by node 3 (3 p2p hops from 0). Node 0
	// holds file 1, so the only possible request is file 0.
	w := queryWorld(t, 30, 4, fileSets(4, 2, map[int][]int{0: {3}, 1: {0}}))
	chainOverlay(w)
	w.svs[0].runQuery()
	if w.svs[0].curReq == nil {
		t.Fatal("no request open after runQuery")
	}
	w.run(DefaultParams().QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 {
		t.Fatalf("requests recorded = %d, want 1", len(reqs))
	}
	r := reqs[0]
	if !r.Found || r.Answers < 1 {
		t.Fatalf("request = %+v, want found with answers", r)
	}
	if w.svs[0].HasFile(r.File) {
		t.Error("node requested a file it already holds")
	}
}

func TestQueryMinDistanceIsNearestHolder(t *testing.T) {
	// Chain 0-1-2-3-4; file 0 at nodes 2 (2 hops) and 4 (4 hops).
	w := queryWorld(t, 31, 5, fileSets(5, 1, map[int][]int{0: {2, 4}}))
	chainOverlay(w)
	w.svs[0].runQuery()
	w.run(DefaultParams().QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 {
		t.Fatalf("requests = %d, want 1", len(reqs))
	}
	r := reqs[0]
	if r.Answers != 2 {
		t.Errorf("answers = %d, want 2 (both holders)", r.Answers)
	}
	if r.MinP2P != 2 {
		t.Errorf("MinP2P = %d, want 2 (nearest holder)", r.MinP2P)
	}
}

func TestQueryTTLBoundsReach(t *testing.T) {
	// Chain of 9; TTL 6 means holders at p2p distance > 6 are invisible.
	par := DefaultParams()
	w := queryWorld(t, 32, 9, fileSets(9, 1, map[int][]int{0: {8}}))
	chainOverlay(w)
	if par.QueryTTL != 6 {
		t.Fatalf("unexpected default TTL %d", par.QueryTTL)
	}
	w.svs[0].runQuery()
	w.run(par.QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 || reqs[0].Found {
		t.Errorf("requests = %+v, want one unfound (holder at 8 > TTL 6)", reqs)
	}
}

func TestQueryForwardOnceRule(t *testing.T) {
	// Triangle 0-1, 1-2, 0-2 with an extra chain: each node must process
	// a query exactly once despite multiple arrival paths.
	w := queryWorld(t, 33, 3, fileSets(3, 1, map[int][]int{0: {1, 2}}))
	forceLink(w.svs[0], w.svs[1], false)
	forceLink(w.svs[1], w.svs[2], false)
	forceLink(w.svs[0], w.svs[2], false)
	w.svs[0].runQuery()
	w.run(DefaultParams().QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 {
		t.Fatalf("requests = %d, want 1", len(reqs))
	}
	// Each holder answers exactly once ("only responds once").
	if reqs[0].Answers != 2 {
		t.Errorf("answers = %d, want exactly 2 (one per holder, no duplicates)", reqs[0].Answers)
	}
	// Query messages received: node 1 gets it from 0 and (possibly) a
	// forward from 2; forwarding back to the sender is forbidden, so in
	// a triangle each of 1,2 receives at most 2 copies: one from origin,
	// one forwarded by the other — but never echoes back to origin.
	if got := w.col.Received(0, telemetry.Query); got != 0 {
		t.Errorf("origin received %d query copies, want 0 (rule 3)", got)
	}
}

func TestQueryHolderStillForwards(t *testing.T) {
	// Chain 0-1-2; node 1 holds the file and node 2 holds it too: the
	// paper says a holder "processes and forwards the message even if it
	// has the file", so node 2 must also answer.
	w := queryWorld(t, 34, 3, fileSets(3, 1, map[int][]int{0: {1, 2}}))
	chainOverlay(w)
	w.svs[0].runQuery()
	w.run(DefaultParams().QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 || reqs[0].Answers != 2 {
		t.Fatalf("requests = %+v, want 2 answers (holder must forward)", reqs)
	}
}

func TestLateAnswersIgnoredAfterWindow(t *testing.T) {
	w := queryWorld(t, 35, 2, fileSets(2, 1, map[int][]int{0: {1}}))
	chainOverlay(w)
	sv := w.svs[0]
	sv.runQuery()
	w.run(DefaultParams().QueryCollect + time(5))
	if n := len(w.col.Requests()); n != 1 {
		t.Fatalf("requests = %d, want 1", n)
	}
	recorded := w.col.Requests()[0].Answers
	// Inject a late hit for the already-closed request.
	sv.onQueryHit(1, Msg{Kind: msgQueryHit, Seq: 1, File: 0, Holder: 1, Hops: 1}, 1)
	if len(w.col.Requests()) != 1 || w.col.Requests()[0].Answers != recorded {
		t.Error("late answer mutated a closed request")
	}
}

func TestQueryLoopSchedulesContinuously(t *testing.T) {
	// With the workload enabled, a servent issues queries repeatedly at
	// the paper's cadence (~30 s collect + 15–45 s gap).
	files := fileSets(2, 4, map[int][]int{0: {0}, 1: {1}})
	w := newWorld(t, worldSpec{
		seed:  36,
		pts:   cliquePts(2),
		alg:   Regular,
		files: files,
	})
	w.joinAll()
	w.run(time(1200))
	perNode := map[int]int{}
	for _, r := range w.col.Requests() {
		perNode[r.Node]++
	}
	// Expected cadence: one request every ~45–75 s → ≥ 10 in 1200 s.
	for i := 0; i < 2; i++ {
		if perNode[i] < 10 {
			t.Errorf("node %d issued %d requests in 1200s, want >= 10", i, perNode[i])
		}
	}
}

func TestPickFileNeverPicksHeld(t *testing.T) {
	w := queryWorld(t, 37, 1, nil)
	sv := w.svs[0]
	sv.opt.Files = []bool{true, false, true, false, true}
	for i := 0; i < 200; i++ {
		f := sv.pickFile()
		if f != 1 && f != 3 {
			t.Fatalf("pickFile = %d, want 1 or 3", f)
		}
	}
	sv.opt.Files = []bool{true, true}
	if f := sv.pickFile(); f != -1 {
		t.Errorf("pickFile with all held = %d, want -1", f)
	}
	sv.opt.Files = nil
	if f := sv.pickFile(); f != -1 {
		t.Errorf("pickFile with no content model = %d, want -1", f)
	}
}

func TestRandomWalkQueryFindsFileOnChain(t *testing.T) {
	// Chain 0-1-2-3: a walker has no choices, so it must reach the
	// holder at the end deterministically.
	par := DefaultParams()
	par.QueryMode = QueryRandomWalk
	par.Walkers = 1
	par.WalkTTL = 8
	w := newWorld(t, worldSpec{
		seed:  40,
		pts:   cliquePts(4),
		alg:   Regular,
		par:   par,
		files: fileSets(4, 2, map[int][]int{0: {3}, 1: {0}}),
		opts: func(i int, o *Options) {
			o.NoEstablish = true
			o.NoQueries = true
		},
	})
	w.joinAll()
	chainOverlay(w)
	w.svs[0].runQuery()
	w.run(par.QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 || !reqs[0].Found {
		t.Fatalf("requests = %+v, want found via random walk", reqs)
	}
	if reqs[0].MinP2P != 3 {
		t.Errorf("MinP2P = %d, want 3", reqs[0].MinP2P)
	}
}

func TestRandomWalkAnswersAtMostOnce(t *testing.T) {
	// Triangle with long TTL: walkers revisit nodes, but each holder
	// answers exactly once.
	par := DefaultParams()
	par.QueryMode = QueryRandomWalk
	par.Walkers = 1
	par.WalkTTL = 30
	w := newWorld(t, worldSpec{
		seed:  41,
		pts:   cliquePts(3),
		alg:   Regular,
		par:   par,
		files: fileSets(3, 2, map[int][]int{0: {1, 2}, 1: {0}}),
		opts: func(i int, o *Options) {
			o.NoEstablish = true
			o.NoQueries = true
		},
	})
	w.joinAll()
	forceLink(w.svs[0], w.svs[1], false)
	forceLink(w.svs[1], w.svs[2], false)
	forceLink(w.svs[0], w.svs[2], false)
	w.svs[0].runQuery()
	w.run(par.QueryCollect + time(5))
	reqs := w.col.Requests()
	if len(reqs) != 1 {
		t.Fatalf("requests = %d, want 1", len(reqs))
	}
	if reqs[0].Answers != 2 {
		t.Errorf("answers = %d, want exactly 2 despite 30-hop revisiting walker", reqs[0].Answers)
	}
}

func TestRandomWalkCheaperThanFloodInClique(t *testing.T) {
	// A 12-clique: flooding one query touches everyone; two walkers of
	// TTL 16 send at most 32 messages but a flood with TTL 6 on a
	// complete graph costs ~n per node. Compare total query messages.
	runMode := func(mode QueryMode) uint64 {
		par := DefaultParams()
		par.QueryMode = mode
		w := newWorld(t, worldSpec{
			seed:  42,
			pts:   cliquePts(12),
			alg:   Regular,
			par:   par,
			files: fileSets(12, 2, map[int][]int{0: {11}, 1: {0}}),
			opts: func(i int, o *Options) {
				o.NoEstablish = true
				o.NoQueries = true
			},
		})
		w.joinAll()
		// Full mesh overlay.
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				forceLink(w.svs[i], w.svs[j], false)
			}
		}
		w.svs[0].runQuery()
		w.run(par.QueryCollect + time(5))
		var total uint64
		for i := 0; i < 12; i++ {
			total += w.col.Received(i, telemetry.Query)
		}
		return total
	}
	flood := runMode(QueryFlood)
	walk := runMode(QueryRandomWalk)
	if walk >= flood {
		t.Errorf("random walk cost %d >= flood cost %d; walkers must be cheaper on dense overlays", walk, flood)
	}
}

func TestQueryModeValidation(t *testing.T) {
	p := DefaultParams()
	p.QueryMode = QueryRandomWalk
	p.Walkers = 0
	if err := p.Validate(); err == nil {
		t.Error("walkers=0 accepted")
	}
	p = DefaultParams()
	p.QueryMode = QueryRandomWalk
	p.WalkTTL = 0
	if err := p.Validate(); err == nil {
		t.Error("walkTTL=0 accepted")
	}
	if QueryFlood.String() != "flood" || QueryRandomWalk.String() != "randomwalk" {
		t.Error("QueryMode names wrong")
	}
}

func TestQueryMessagesCounted(t *testing.T) {
	w := queryWorld(t, 38, 3, fileSets(3, 1, map[int][]int{0: {2}}))
	chainOverlay(w)
	w.svs[0].runQuery()
	w.run(DefaultParams().QueryCollect + time(5))
	if got := w.col.Received(1, telemetry.Query); got != 1 {
		t.Errorf("relay received %d query messages, want 1", got)
	}
	if got := w.col.Received(2, telemetry.Query); got != 1 {
		t.Errorf("holder received %d query messages, want 1", got)
	}
	if got := w.col.Received(0, telemetry.QueryHit); got != 1 {
		t.Errorf("origin received %d hits, want 1", got)
	}
}
