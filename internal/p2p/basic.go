package p2p

// This file implements the Basic algorithm (§6.1.1): fixed-radius
// discovery broadcasts every TIMER, asymmetric references created the
// moment a reply arrives, no handshake, no distance rule.

// basicStep broadcasts one discovery round and reschedules itself.
func (sv *Servent) basicStep() {
	sv.broadcast(sv.par.NHopsBasic, Msg{Kind: msgDiscover})
	sv.scheduleCycle(sv.par.TimerBasic)
}

// onDiscover answers a Basic discovery broadcast. "Every node that
// listens to this message answers it" — capacity is not checked, which
// is part of why Basic floods the network (fig. 7/8 of the paper).
func (sv *Servent) onDiscover(from int) {
	if sv.alg != Basic {
		return
	}
	sv.send(from, Msg{Kind: msgReply})
}

// onReply turns a discovery answer into an asymmetric reference: only
// the discoverer holds state; the replier is not even told.
func (sv *Servent) onReply(from int) {
	if sv.alg != Basic || len(sv.conns) >= sv.par.MaxNConn {
		return
	}
	if _, dup := sv.conns[from]; dup {
		return
	}
	sv.installConn(&conn{peer: from, initiator: true})
}
