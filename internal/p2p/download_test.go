package p2p

import (
	"testing"

	"manetp2p/internal/telemetry"
)

// downloadWorld: two adjacent servents with a manual link; node 1 holds
// file 0, node 0 holds file 1 (so it can only request file 0).
func downloadWorld(t *testing.T, seed int64, dl DownloadConfig) *world {
	t.Helper()
	par := DefaultParams()
	par.Download = dl
	w := newWorld(t, worldSpec{
		seed:  seed,
		pts:   cliquePts(2),
		alg:   Regular,
		par:   par,
		files: fileSets(2, 2, map[int][]int{0: {1}, 1: {0}}),
		opts: func(i int, o *Options) {
			o.NoEstablish = true
			o.NoQueries = true
		},
	})
	w.joinAll()
	forceLink(w.svs[0], w.svs[1], false)
	return w
}

func TestDownloadReplicatesFile(t *testing.T) {
	w := downloadWorld(t, 60, DownloadConfig{Enabled: true, FileChunks: 4})
	w.svs[0].runQuery()
	w.run(DefaultParams().QueryCollect + time(30))
	if !w.svs[0].HasFile(0) {
		t.Fatal("requester did not replicate the found file")
	}
	if w.svs[0].Downloaded() != 1 {
		t.Errorf("Downloaded = %d, want 1", w.svs[0].Downloaded())
	}
	// The transfer moved fetch/chunk messages.
	if got := w.col.Received(1, telemetry.Transfer); got < 4 {
		t.Errorf("holder received %d transfer messages, want >= 4 fetch requests", got)
	}
	if got := w.col.Received(0, telemetry.Transfer); got != 4 {
		t.Errorf("requester received %d chunks, want 4", got)
	}
}

func TestDownloadDisabledByDefault(t *testing.T) {
	w := downloadWorld(t, 61, DownloadConfig{})
	w.svs[0].runQuery()
	w.run(DefaultParams().QueryCollect + time(30))
	if w.svs[0].HasFile(0) {
		t.Error("file replicated with downloads disabled")
	}
	if got := w.col.Received(0, telemetry.Transfer) + w.col.Received(1, telemetry.Transfer); got != 0 {
		t.Errorf("transfer traffic %d with downloads disabled", got)
	}
}

func TestDownloadAbortsWhenHolderDies(t *testing.T) {
	w := downloadWorld(t, 62, DownloadConfig{Enabled: true, FileChunks: 8, ChunkWait: time(5)})
	w.svs[0].runQuery()
	// Let the query hit arrive, then kill the holder just BEFORE the
	// collection window closes: the download starts toward a dead node
	// and must stall out.
	w.run(DefaultParams().QueryCollect - time(1))
	w.med.Leave(1)
	w.svs[1].Leave(false)
	w.run(time(61))
	if w.svs[0].HasFile(0) {
		t.Error("file replicated from a dead holder")
	}
	if w.svs[0].xfer != nil {
		t.Error("stalled transfer never aborted")
	}
}

func TestReplicatedFileAnswersLaterQueries(t *testing.T) {
	// Chain 0-1-2: only node 2 holds file 0. Node 1 fetches it; then a
	// query from node 0 must be answered by node 1 as well (2 answers).
	par := DefaultParams()
	par.Download = DownloadConfig{Enabled: true, FileChunks: 2}
	w := newWorld(t, worldSpec{
		seed:  63,
		pts:   cliquePts(3),
		alg:   Regular,
		par:   par,
		files: fileSets(3, 2, map[int][]int{0: {2}, 1: {0, 1}}),
		opts: func(i int, o *Options) {
			o.NoEstablish = true
			o.NoQueries = true
		},
	})
	w.joinAll()
	chainOverlay(w)
	w.svs[1].runQuery() // node 1 requests file 0, gets it from 2, replicates
	w.run(DefaultParams().QueryCollect + time(30))
	if !w.svs[1].HasFile(0) {
		t.Fatal("node 1 did not replicate file 0")
	}
	w.svs[0].runQuery() // node 0 now asks; holders: 1 (1 hop) and 2 (2 hops)
	w.run(DefaultParams().QueryCollect + time(5))
	reqs := w.col.Requests()
	last := reqs[len(reqs)-1]
	if last.Node != 0 || last.Answers != 2 {
		t.Errorf("second request = %+v, want 2 answers (replica + original)", last)
	}
	if last.MinP2P != 1 {
		t.Errorf("MinP2P = %d, want 1 (the replica is closer)", last.MinP2P)
	}
}

func TestFetchReqForUnheldFileIgnored(t *testing.T) {
	w := downloadWorld(t, 64, DownloadConfig{Enabled: true, FileChunks: 2})
	// Node 1 holds file 0 but not file 1.
	w.svs[0].send(1, Msg{Kind: msgFetchReq, File: 1, Chunk: 0})
	w.svs[0].send(1, Msg{Kind: msgFetchReq, File: 0, Chunk: 99}) // out of range
	w.run(time(5))
	if got := w.col.Received(0, telemetry.Transfer); got != 0 {
		t.Errorf("requester received %d chunks for invalid fetches", got)
	}
}
