package p2p

import (
	"testing"

	"manetp2p/internal/sim"
)

func TestPeerCacheReconnectsWithoutBroadcast(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true}
	par.MaxNConn = 1 // the pair saturates, so no background soliciting
	w := newWorld(t, worldSpec{seed: 70, pts: cliquePts(2), alg: Regular, par: par})
	w.joinAll()
	w.run(time(90))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("precondition: pair not connected")
	}
	bcastBefore := w.rts[0].Stats().BcastOrig + w.rts[1].Stats().BcastOrig
	// Tear the link down gracefully; both sides should reconnect via
	// their caches without a single new discovery broadcast.
	w.svs[0].closeConn(1, true)
	w.run(time(120))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("pair did not reconnect")
	}
	bcastAfter := w.rts[0].Stats().BcastOrig + w.rts[1].Stats().BcastOrig
	// Allow pings' route discoveries etc. — but no p2p solicit floods.
	// Router-level broadcasts also include RREQs, so compare solicit
	// deliveries instead: broadcast count must not grow by more than
	// the routing layer's needs (<= 2).
	if bcastAfter-bcastBefore > 2 {
		t.Errorf("broadcasts grew by %d during cached reconnect, want <= 2",
			bcastAfter-bcastBefore)
	}
}

func TestPeerCacheDisabledStillBroadcasts(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 71, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(90))
	sv := w.svs[0]
	if sv.peerCache != nil && len(sv.peerCache) > 0 {
		t.Error("peer cache populated while disabled")
	}
	if sv.tryCachedPeers() {
		t.Error("tryCachedPeers returned true while disabled")
	}
}

func TestPeerCacheEviction(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, Size: 3}
	w := newWorld(t, worldSpec{
		seed: 72, pts: cliquePts(1), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	// Remember 5 peers with increasing times: only the 3 freshest stay.
	for p := 1; p <= 5; p++ {
		w.run(time(1))
		sv.rememberPeer(p)
	}
	if len(sv.peerCache) != 3 {
		t.Fatalf("cache size = %d, want 3", len(sv.peerCache))
	}
	for _, p := range []int{3, 4, 5} {
		if _, ok := sv.peerCache[p]; !ok {
			t.Errorf("fresh peer %d evicted", p)
		}
	}
	ids := sv.cachedPeerIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("cachedPeerIDs not sorted: %v", ids)
		}
	}
}

func TestPeerCacheTTLExpiry(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, TTL: 30 * sim.Second}
	w := newWorld(t, worldSpec{
		seed: 73, pts: cliquePts(2), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	sv.rememberPeer(1)
	w.run(time(60)) // past TTL
	if sv.tryCachedPeers() {
		t.Error("expired cache entry was tried")
	}
	if _, ok := sv.peerCache[1]; ok {
		t.Error("expired entry not purged")
	}
}

func TestPeerCacheRateLimitAtTimeZero(t *testing.T) {
	// Regression: the try rate-limit used tried != 0 as its "ever tried"
	// sentinel, so a solicitation sent at t=0 was treated as never sent
	// and the peer was hammered again on the very next step.
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, TTL: 300 * sim.Second}
	w := newWorld(t, worldSpec{
		seed: 74, pts: cliquePts(2), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	sv.rememberPeer(1)
	sv.peerCache[1].seen = 0 // pretend contact happened at t=0 too

	if w.s.Now() != 0 {
		t.Fatalf("precondition: now = %v, want 0", w.s.Now())
	}
	if !sv.tryCachedPeers() {
		t.Fatal("first try at t=0 did not solicit")
	}
	e := sv.peerCache[1]
	if !e.hasTried || e.tried != 0 {
		t.Fatalf("entry after t=0 try: hasTried=%v tried=%v", e.hasTried, e.tried)
	}
	// Drop the handshake reservation so only the rate limit can block a
	// second solicitation.
	for p, h := range sv.pending {
		h.timeout.Cancel()
		delete(sv.pending, p)
	}
	if sv.tryCachedPeers() {
		t.Error("peer re-solicited within TTL/4 of a t=0 try")
	}
	// Past the TTL/4 rest period the peer is fair game again.
	w.run(par.PeerCache.WithDefaults().TTL/4 + sim.Second)
	for p, h := range sv.pending {
		h.timeout.Cancel()
		delete(sv.pending, p)
	}
	// The t=0 solicit may have completed a handshake meanwhile; drop the
	// link so only the rate limit decides.
	if c, ok := sv.conns[1]; ok {
		if c.pingTimer != nil {
			c.pingTimer.Stop()
		}
		if c.deadline != nil {
			c.deadline.Stop()
		}
		delete(sv.conns, 1)
	}
	if !sv.tryCachedPeers() {
		t.Error("peer not re-solicited after the rest period")
	}
}
