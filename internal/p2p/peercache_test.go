package p2p

import (
	"testing"

	"manetp2p/internal/sim"
)

func TestPeerCacheReconnectsWithoutBroadcast(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true}
	par.MaxNConn = 1 // the pair saturates, so no background soliciting
	w := newWorld(t, worldSpec{seed: 70, pts: cliquePts(2), alg: Regular, par: par})
	w.joinAll()
	w.run(time(90))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("precondition: pair not connected")
	}
	bcastBefore := w.rts[0].Stats().BcastOrig + w.rts[1].Stats().BcastOrig
	// Tear the link down gracefully; both sides should reconnect via
	// their caches without a single new discovery broadcast.
	w.svs[0].closeConn(1, true)
	w.run(time(120))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("pair did not reconnect")
	}
	bcastAfter := w.rts[0].Stats().BcastOrig + w.rts[1].Stats().BcastOrig
	// Allow pings' route discoveries etc. — but no p2p solicit floods.
	// Router-level broadcasts also include RREQs, so compare solicit
	// deliveries instead: broadcast count must not grow by more than
	// the routing layer's needs (<= 2).
	if bcastAfter-bcastBefore > 2 {
		t.Errorf("broadcasts grew by %d during cached reconnect, want <= 2",
			bcastAfter-bcastBefore)
	}
}

func TestPeerCacheDisabledStillBroadcasts(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 71, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(90))
	sv := w.svs[0]
	if sv.peerCache != nil && len(sv.peerCache) > 0 {
		t.Error("peer cache populated while disabled")
	}
	if sv.tryCachedPeers() {
		t.Error("tryCachedPeers returned true while disabled")
	}
}

func TestPeerCacheEviction(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, Size: 3}
	w := newWorld(t, worldSpec{
		seed: 72, pts: cliquePts(1), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	// Remember 5 peers with increasing times: only the 3 freshest stay.
	for p := 1; p <= 5; p++ {
		w.run(time(1))
		sv.rememberPeer(p)
	}
	if len(sv.peerCache) != 3 {
		t.Fatalf("cache size = %d, want 3", len(sv.peerCache))
	}
	for _, p := range []int{3, 4, 5} {
		if _, ok := sv.peerCache[p]; !ok {
			t.Errorf("fresh peer %d evicted", p)
		}
	}
	ids := sv.cachedPeerIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("cachedPeerIDs not sorted: %v", ids)
		}
	}
}

func TestPeerCacheTTLExpiry(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, TTL: 30 * sim.Second}
	w := newWorld(t, worldSpec{
		seed: 73, pts: cliquePts(2), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	sv.rememberPeer(1)
	w.run(time(60)) // past TTL
	if sv.tryCachedPeers() {
		t.Error("expired cache entry was tried")
	}
	if _, ok := sv.peerCache[1]; ok {
		t.Error("expired entry not purged")
	}
}

func TestPeerCacheRateLimitAtTimeZero(t *testing.T) {
	// Regression: the try rate-limit used tried != 0 as its "ever tried"
	// sentinel, so a solicitation sent at t=0 was treated as never sent
	// and the peer was hammered again on the very next step.
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, TTL: 300 * sim.Second}
	w := newWorld(t, worldSpec{
		seed: 74, pts: cliquePts(2), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	sv.rememberPeer(1)
	sv.peerCache[1].seen = 0 // pretend contact happened at t=0 too

	if w.s.Now() != 0 {
		t.Fatalf("precondition: now = %v, want 0", w.s.Now())
	}
	if !sv.tryCachedPeers() {
		t.Fatal("first try at t=0 did not solicit")
	}
	e := sv.peerCache[1]
	if !e.hasTried || e.tried != 0 {
		t.Fatalf("entry after t=0 try: hasTried=%v tried=%v", e.hasTried, e.tried)
	}
	// Drop the handshake reservation so only the rate limit can block a
	// second solicitation.
	for p, h := range sv.pending { // commutative: cancels every entry
		h.timeout.Cancel()
		delete(sv.pending, p)
	}
	if sv.tryCachedPeers() {
		t.Error("peer re-solicited within TTL/4 of a t=0 try")
	}
	// Past the TTL/4 rest period the peer is fair game again.
	w.run(par.PeerCache.WithDefaults().TTL/4 + sim.Second)
	for p, h := range sv.pending { // commutative: cancels every entry
		h.timeout.Cancel()
		delete(sv.pending, p)
	}
	// The t=0 solicit may have completed a handshake meanwhile; drop the
	// link so only the rate limit decides.
	if c, ok := sv.conns[1]; ok {
		if c.pingTimer != nil {
			c.pingTimer.Stop()
		}
		if c.deadline != nil {
			c.deadline.Stop()
		}
		delete(sv.conns, 1)
	}
	if !sv.tryCachedPeers() {
		t.Error("peer not re-solicited after the rest period")
	}
}

// Regression (ISSUE 8): the eviction victim among equal-seen entries was
// chosen by map-iteration order, so an uninterrupted run and a resumed
// run (fresh process, fresh map layout) could evict different peers and
// silently diverge. Ties must break by ascending peer id. Each trial
// uses a fresh map so Go's per-iteration randomization gets every chance
// to expose an order-dependent victim; pre-fix this fails with
// probability 1 - (1/4)^48.
func TestPeerCacheEvictionDeterministic(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, Size: 4}
	w := newWorld(t, worldSpec{
		seed: 75, pts: cliquePts(1), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	if w.s.Now() != 0 {
		t.Fatalf("precondition: now = %v, want 0", w.s.Now())
	}
	for trial := 0; trial < 48; trial++ {
		sv.peerCache = nil // fresh map: fresh iteration order
		for _, p := range []int{7, 3, 9, 5} {
			sv.rememberPeer(p) // all at t=0: four-way seen tie
		}
		sv.rememberPeer(11) // full cache: one of the tied four is evicted
		if _, gone := sv.peerCache[3]; gone {
			t.Fatalf("trial %d: tie-break evicted %v, want lowest id 3 gone",
				trial, sv.cachedPeerIDs())
		}
		want := []int{5, 7, 9, 11}
		ids := sv.cachedPeerIDs()
		for i, p := range want {
			if i >= len(ids) || ids[i] != p {
				t.Fatalf("trial %d: cache = %v, want %v", trial, ids, want)
			}
		}
	}
}

// Alloc guard (ISSUE 8): the peer-cache scan a cache-enabled cycle step
// performs (ringStep -> tryCachedPeers -> cachedPeerIDs) must not
// allocate once the servent's scratch buffer is warm — it runs every
// establishment step for the whole simulation. The step's other halves
// (event re-scheduling, broadcast/unicast send) are covered by the
// guards in internal/sim and internal/radio.
func TestPeerCacheCycleStepScanZeroAllocs(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, Size: 8}
	w := newWorld(t, worldSpec{
		seed: 76, pts: cliquePts(1), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	now := w.s.Now()
	for p := 1; p <= 8; p++ {
		sv.rememberPeer(p)
		// Rate-limit every entry so the scan walks the whole cache and
		// sends nothing — the steady state of a saturated servent.
		sv.peerCache[p].tried = now
		sv.peerCache[p].hasTried = true
	}
	sv.cachedPeerIDs() // warm the scratch buffer
	allocs := testing.AllocsPerRun(1000, func() {
		if sv.tryCachedPeers() {
			t.Fatal("rate-limited entry was solicited")
		}
	})
	if allocs != 0 {
		t.Errorf("cycle-step cache scan allocates %.1f allocs/op, want 0", allocs)
	}
}
