package p2p

import (
	"testing"

	"manetp2p/internal/sim"
)

func TestPeerCacheReconnectsWithoutBroadcast(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true}
	par.MaxNConn = 1 // the pair saturates, so no background soliciting
	w := newWorld(t, worldSpec{seed: 70, pts: cliquePts(2), alg: Regular, par: par})
	w.joinAll()
	w.run(time(90))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("precondition: pair not connected")
	}
	bcastBefore := w.rts[0].Stats().BcastSent + w.rts[1].Stats().BcastSent
	// Tear the link down gracefully; both sides should reconnect via
	// their caches without a single new discovery broadcast.
	w.svs[0].closeConn(1, true)
	w.run(time(120))
	if w.svs[0].ConnCount() != 1 {
		t.Fatal("pair did not reconnect")
	}
	bcastAfter := w.rts[0].Stats().BcastSent + w.rts[1].Stats().BcastSent
	// Allow pings' route discoveries etc. — but no p2p solicit floods.
	// Router-level broadcasts also include RREQs, so compare solicit
	// deliveries instead: broadcast count must not grow by more than
	// the routing layer's needs (<= 2).
	if bcastAfter-bcastBefore > 2 {
		t.Errorf("broadcasts grew by %d during cached reconnect, want <= 2",
			bcastAfter-bcastBefore)
	}
}

func TestPeerCacheDisabledStillBroadcasts(t *testing.T) {
	w := newWorld(t, worldSpec{seed: 71, pts: cliquePts(2), alg: Regular})
	w.joinAll()
	w.run(time(90))
	sv := w.svs[0]
	if sv.peerCache != nil && len(sv.peerCache) > 0 {
		t.Error("peer cache populated while disabled")
	}
	if sv.tryCachedPeers() {
		t.Error("tryCachedPeers returned true while disabled")
	}
}

func TestPeerCacheEviction(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, Size: 3}
	w := newWorld(t, worldSpec{
		seed: 72, pts: cliquePts(1), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	// Remember 5 peers with increasing times: only the 3 freshest stay.
	for p := 1; p <= 5; p++ {
		w.run(time(1))
		sv.rememberPeer(p)
	}
	if len(sv.peerCache) != 3 {
		t.Fatalf("cache size = %d, want 3", len(sv.peerCache))
	}
	for _, p := range []int{3, 4, 5} {
		if _, ok := sv.peerCache[p]; !ok {
			t.Errorf("fresh peer %d evicted", p)
		}
	}
	ids := sv.cachedPeerIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("cachedPeerIDs not sorted: %v", ids)
		}
	}
}

func TestPeerCacheTTLExpiry(t *testing.T) {
	par := DefaultParams()
	par.PeerCache = PeerCacheConfig{Enabled: true, TTL: 30 * sim.Second}
	w := newWorld(t, worldSpec{
		seed: 73, pts: cliquePts(2), alg: Regular, par: par,
		opts: func(i int, o *Options) { o.NoEstablish = true },
	})
	w.joinAll()
	sv := w.svs[0]
	sv.rememberPeer(1)
	w.run(time(60)) // past TTL
	if sv.tryCachedPeers() {
		t.Error("expired cache entry was tried")
	}
	if _, ok := sv.peerCache[1]; ok {
		t.Error("expired entry not purged")
	}
}
