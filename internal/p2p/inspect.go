package p2p

import "manetp2p/internal/sim"

// This file is the read-only introspection surface the runtime invariant
// checker (internal/invariant) validates servents through. The servent's
// protocol state is deliberately unexported; Inspect copies a structural
// snapshot into caller-owned buffers so the checker can verify
// cross-servent invariants (symmetry, role consistency, caps) without
// reaching into — or being able to perturb — live protocol state.

// ConnView is one live connection as seen by the invariant checker.
type ConnView struct {
	Peer      int
	Random    bool
	Initiator bool
	ToMaster  bool
	ToSlave   bool
	Master    bool
	Since     sim.Time
	// Exactly one keepalive timer guards every connection: the initiator
	// pings, the responder watches a ping deadline. A connection with
	// neither armed can never detect peer loss and leaks forever.
	PingArmed     bool
	DeadlineArmed bool
}

// PendingView is one in-flight solicitor-side handshake reservation.
type PendingView struct {
	Peer         int
	Random       bool
	Master       bool
	TimeoutArmed bool
}

// CacheView is one peer-cache entry (the checkpoint digest folds these
// in: eviction order is part of the deterministic-replay contract).
type CacheView struct {
	Peer     int
	Seen     sim.Time
	Tried    sim.Time
	HasTried bool
}

// View is a structural snapshot of one servent. Slices are reused across
// Inspect calls on the same View, so a checker can sweep a whole network
// every sampling interval without steady-state allocation.
type View struct {
	Joined        bool
	State         HybridState
	ReservedWith  int  // peer of the in-flight enslavement, when Reserved
	ReservedArmed bool // the reservation's expiry timer is pending
	Conns         []ConnView
	Pending       []PendingView
	CacheLen      int // peer-cache population

	// Protocol counters and timers folded into the checkpoint digest
	// (internal/checkpoint): any two runs that agree on all of these for
	// every servent are in the same replication state.
	NHops        int
	Timer        sim.Time
	CycleRunning bool
	Collecting   bool
	Offers       int
	NextQID      uint32
	OpenQuery    bool
	Established  uint64
	Closed       uint64
	Downloads    uint64
	SeenQueries  int
	Cache        []CacheView
}

// Inspect fills v with this servent's current structural state. Conns
// and Pending are sorted by peer id so violation reports are
// deterministic.
func (sv *Servent) Inspect(v *View) {
	v.Joined = sv.joined
	v.State = sv.state
	v.ReservedWith = sv.reservedWith
	v.ReservedArmed = sv.reservedEv.Pending()
	v.CacheLen = len(sv.peerCache)
	v.NHops = sv.nhops
	v.Timer = sv.timer
	v.CycleRunning = sv.cycleRunning
	v.Collecting = sv.collecting
	v.Offers = len(sv.offers)
	v.NextQID = sv.nextQID
	v.OpenQuery = sv.curReq != nil
	v.Established = sv.established
	v.Closed = sv.closed
	v.Downloads = sv.downloads
	v.SeenQueries = len(sv.seen)

	v.Cache = v.Cache[:0]
	for p, e := range sv.peerCache { // sorted below: keeps the digest deterministic
		v.Cache = append(v.Cache, CacheView{Peer: p, Seen: e.seen, Tried: e.tried, HasTried: e.hasTried})
	}
	for i := 1; i < len(v.Cache); i++ { // insertion sort: tiny slices
		for j := i; j > 0 && v.Cache[j].Peer < v.Cache[j-1].Peer; j-- {
			v.Cache[j], v.Cache[j-1] = v.Cache[j-1], v.Cache[j]
		}
	}

	v.Conns = v.Conns[:0]
	for _, c := range sv.conns { // sorted below: keeps violation reports deterministic
		v.Conns = append(v.Conns, ConnView{
			Peer:          c.peer,
			Random:        c.random,
			Initiator:     c.initiator,
			ToMaster:      c.toMaster,
			ToSlave:       c.toSlave,
			Master:        c.master,
			Since:         c.since,
			PingArmed:     c.pingTimer != nil && c.pingTimer.Armed(),
			DeadlineArmed: c.deadline != nil && c.deadline.Armed(),
		})
	}
	for i := 1; i < len(v.Conns); i++ { // insertion sort: tiny slices
		for j := i; j > 0 && v.Conns[j].Peer < v.Conns[j-1].Peer; j-- {
			v.Conns[j], v.Conns[j-1] = v.Conns[j-1], v.Conns[j]
		}
	}

	v.Pending = v.Pending[:0]
	for _, h := range sv.pending { // sorted below: keeps violation reports deterministic
		v.Pending = append(v.Pending, PendingView{
			Peer:         h.peer,
			Random:       h.random,
			Master:       h.master,
			TimeoutArmed: h.timeout.Pending(),
		})
	}
	for i := 1; i < len(v.Pending); i++ {
		for j := i; j > 0 && v.Pending[j].Peer < v.Pending[j-1].Peer; j-- {
			v.Pending[j], v.Pending[j-1] = v.Pending[j-1], v.Pending[j]
		}
	}
}

// SkipCloseForTest makes every closeConn toward peer a silent no-op on
// this servent — the seeded mutation of the invariant checker's
// detection tests: a protocol implementation that forgets one side of a
// teardown leaves an asymmetric "symmetric" connection behind, which
// must surface as a checker violation, never as silently skewed message
// counts. Production code never calls this.
func (sv *Servent) SkipCloseForTest(peer int) { sv.skipClose = peer }
