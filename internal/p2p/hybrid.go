package p2p

import (
	"manetp2p/internal/sim"
	"manetp2p/internal/trace"
)

// This file implements the Hybrid algorithm (§6.2): peers carry a
// qualifier (energy level, processor power, ...); higher-qualified peers
// become masters of small subnets, lower-qualified peers their slaves.
// Masters interconnect with the Regular algorithm. The network
// reorganizes itself when a master stays slaveless too long or a slave
// strays too far from its master.

// hybridStep is one establishment-cycle iteration; its behavior depends
// on the peer's state.
func (sv *Servent) hybridStep() {
	switch sv.state {
	case StateInitial:
		if sv.nhops != 0 {
			sv.broadcast(sv.nhops, Msg{Kind: msgCapture, Qualifier: sv.opt.Qualifier})
			wait := sv.timer
			sv.advanceNHops()
			sv.scheduleCycle(wait)
			return
		}
		// Swept every radius without finding anyone to serve or obey:
		// entitle ourselves master (§6.2).
		sv.becomeMaster()
		sv.scheduleCycle(0)
	case StateMaster:
		// "use the regular algorithm to contact other masters".
		if sv.nhops != 0 {
			if sv.needMasterLink() {
				sv.broadcast(sv.nhops, Msg{Kind: msgSolicit, MasterOnly: true})
			}
			wait := sv.timer
			sv.advanceNHops()
			sv.scheduleCycle(wait)
			return
		}
		sv.doubleTimer()
		sv.advanceNHops()
		sv.scheduleCycle(0)
	default:
		// Slaves and reserved peers do not solicit.
		sv.cycleRunning = false
	}
}

// becomeMaster promotes the peer and arms the slaveless-reversion timer.
func (sv *Servent) becomeMaster() {
	sv.opt.Tracer.Emit(trace.KindState, sv.id, -1, "%v->master", sv.state)
	sv.state = StateMaster
	sv.nhops = sv.par.NHopsInitial
	sv.timer = sv.par.TimerInitial
	sv.armNoSlaveTimer()
}

// armNoSlaveTimer starts the MAXTIMERMASTER countdown: a master that
// owns no slave for that long "could, potentially, be another peer's
// slave" and reverts to initial.
func (sv *Servent) armNoSlaveTimer() {
	if sv.noSlave == nil {
		sv.noSlave = sim.NewTimer(sv.s, sv.noSlaveExpired)
	}
	sv.noSlave.Reset(sv.par.MasterIdle)
}

func (sv *Servent) noSlaveExpired() {
	if !sv.joined || sv.state != StateMaster || sv.slaveCount() > 0 {
		return
	}
	sv.revertToInitial()
}

// revertToInitial demotes a master: all mesh links are dropped and the
// capture cycle restarts.
func (sv *Servent) revertToInitial() {
	sv.opt.Tracer.Emit(trace.KindState, sv.id, -1, "master->initial (slaveless)")
	sv.state = StateInitial
	for _, peer := range sv.Peers() { // sorted: keeps runs reproducible
		if c := sv.conns[peer]; c != nil && (c.master || c.toSlave) {
			sv.closeConn(peer, true)
		}
	}
	sv.nhops = sv.par.NHopsInitial
	sv.timer = sv.par.TimerInitial
	sv.ensureCycle()
}

// outranks reports whether this peer's (qualifier, id) exceeds the
// other's — ids break qualifier ties so two equal devices still order.
func (sv *Servent) outranks(peerQual float64, peerID int) bool {
	if sv.opt.Qualifier != peerQual {
		return sv.opt.Qualifier > peerQual
	}
	return sv.id > peerID
}

// onCapture handles the hybrid discovery broadcast: lower-qualified
// initial peers try to enslave themselves to the sender; higher-
// qualified initial peers and masters advertise back.
func (sv *Servent) onCapture(from int, m Msg) {
	if sv.alg != Hybrid {
		return
	}
	switch {
	case sv.state == StateInitial && !sv.outranks(m.Qualifier, from):
		sv.tryEnslaveTo(from)
	case (sv.state == StateInitial || sv.state == StateMaster) && sv.outranks(m.Qualifier, from):
		sv.send(from, Msg{Kind: msgCapture, Qualifier: sv.opt.Qualifier, Reply: true})
	}
}

// onCaptureReply handles a higher-qualified peer's advertisement.
func (sv *Servent) onCaptureReply(from int, m Msg) {
	if sv.alg != Hybrid || !m.Reply {
		return
	}
	if sv.state == StateInitial && !sv.outranks(m.Qualifier, from) {
		sv.tryEnslaveTo(from)
	}
}

// tryEnslaveTo starts the enslavement handshake toward a prospective
// master, moving through the transitional reserved state.
func (sv *Servent) tryEnslaveTo(master int) {
	if sv.state != StateInitial {
		return
	}
	sv.state = StateReserved
	sv.reservedWith = master
	sv.send(master, Msg{Kind: msgEnslaveReq, Qualifier: sv.opt.Qualifier})
	sv.reservedEv.Cancel()
	sv.reservedEv = sv.s.ScheduleArg(sv.par.HandshakeWait, sv.reservedExpFn, sim.Arg{I0: master})
}

// reservedExpired returns a reserved slave candidate to initial when the
// prospective master never answered.
func (sv *Servent) reservedExpired(a sim.Arg) {
	if sv.joined && sv.state == StateReserved && sv.reservedWith == a.I0 {
		sv.state = StateInitial
		sv.ensureCycle()
	}
}

// onEnslaveReq is the master side of the enslavement handshake. An
// initial peer that receives one becomes a master on the spot.
func (sv *Servent) onEnslaveReq(from int, _ Msg) {
	if sv.alg != Hybrid {
		return
	}
	acceptable := (sv.state == StateInitial || sv.state == StateMaster) &&
		sv.slaveCount() < sv.par.MaxNSlaves
	if _, dup := sv.conns[from]; dup {
		acceptable = false
	}
	if !acceptable {
		sv.send(from, Msg{Kind: msgEnslaveReject})
		return
	}
	if sv.state == StateInitial {
		sv.becomeMaster()
		sv.ensureCycle() // start the master-mesh cycle
	}
	sv.send(from, Msg{Kind: msgEnslaveAccept})
}

// onEnslaveAccept is the slave finalizing: install the master link and
// confirm.
func (sv *Servent) onEnslaveAccept(from int) {
	if sv.alg != Hybrid || sv.state != StateReserved || sv.reservedWith != from {
		return
	}
	sv.reservedEv.Cancel()
	sv.reservedEv = sim.Handle{}
	sv.opt.Tracer.Emit(trace.KindState, sv.id, from, "reserved->slave")
	sv.state = StateSlave
	sv.installConn(&conn{peer: from, toMaster: true, initiator: true})
	sv.send(from, Msg{Kind: msgEnslaveConfirm})
	// A slave abandons any half-done mesh business.
	sv.cycleEv.Cancel()
	sv.cycleEv = sim.Handle{}
	sv.cycleRunning = false
}

// onEnslaveConfirm is the master finalizing a new slave.
func (sv *Servent) onEnslaveConfirm(from int) {
	if sv.alg != Hybrid || sv.state != StateMaster {
		// We are no longer able to serve; let the slave's keepalive
		// discover it quickly.
		sv.send(from, Msg{Kind: msgBye})
		return
	}
	if _, dup := sv.conns[from]; dup {
		return
	}
	if sv.slaveCount() >= sv.par.MaxNSlaves {
		sv.send(from, Msg{Kind: msgBye})
		return
	}
	sv.installConn(&conn{peer: from, toSlave: true, initiator: false})
	if sv.noSlave != nil {
		sv.noSlave.Stop()
	}
}

// onEnslaveReject returns a spurned slave candidate to initial.
func (sv *Servent) onEnslaveReject(from int) {
	if sv.alg != Hybrid || sv.state != StateReserved || sv.reservedWith != from {
		return
	}
	sv.reservedEv.Cancel()
	sv.reservedEv = sim.Handle{}
	sv.state = StateInitial
	sv.ensureCycle()
}
