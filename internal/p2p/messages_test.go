package p2p

import (
	"testing"

	"manetp2p/internal/netif"
	"manetp2p/internal/telemetry"
)

// wireKinds are the message kinds the overlay puts on the wire — every
// netif kind except the reserved zero value and the test-only tag
// carrier. If a kind is added to netif without entries in the p2p
// class/size tables, TestEveryWireKindClassifiedAndSized fails; if it
// is deliberately not a wire message, add it to the exclusions here.
func wireKinds() []netif.MsgKind {
	kinds := make([]netif.MsgKind, 0, netif.NumMsgKinds)
	for k := netif.MsgKind(0); int(k) < netif.NumMsgKinds; k++ {
		if k == netif.MsgNone || k == netif.MsgTest {
			continue
		}
		kinds = append(kinds, k)
	}
	return kinds
}

// TestEveryWireKindClassifiedAndSized is the kind-coverage check: every
// wire kind must resolve through classOf and sizeOf without panicking,
// with a positive size and a class within telemetry's range. Growing
// the netif kind enum without extending the tables trips this
// immediately.
func TestEveryWireKindClassifiedAndSized(t *testing.T) {
	kinds := wireKinds()
	// 19 wire kinds today; this count only grows. A shrinking count
	// means kinds were removed without updating the exclusions above.
	if len(kinds) < 19 {
		t.Fatalf("only %d wire kinds enumerated, want >= 19", len(kinds))
	}
	for _, k := range kinds {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("kind %d: classOf/sizeOf panicked: %v", k, r)
				}
			}()
			if c := classOf(k); int(c) < 0 || int(c) >= telemetry.NumClasses {
				t.Errorf("classOf(%d) = %v, outside telemetry's class range", k, c)
			}
			if s := sizeOf(k); s <= 0 {
				t.Errorf("sizeOf(%d) = %d, want positive", k, s)
			}
		}()
	}
}

// TestUnclassifiedKindsPanic makes the classOf/sizeOf panic arms
// reachable-by-test: the reserved zero kind, the test-only kind, and an
// out-of-range kind must all refuse classification and sizing.
func TestUnclassifiedKindsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	for _, k := range []netif.MsgKind{netif.MsgNone, netif.MsgTest, netif.MsgKind(netif.NumMsgKinds), netif.MsgKind(250)} {
		k := k
		mustPanic("classOf", func() { classOf(k) })
		mustPanic("sizeOf", func() { sizeOf(k) })
	}
}

// TestClassTableMatchesSwitchSemantics pins the table contents against
// the classification the old type switch implemented: all twelve
// connection-management kinds count as Connect, the keepalive pair as
// Ping/Pong, teardown as Bye, the search pair as Query/QueryHit, and
// the download pair as Transfer.
func TestClassTableMatchesSwitchSemantics(t *testing.T) {
	want := map[netif.MsgKind]telemetry.Class{
		msgDiscover: telemetry.Connect, msgReply: telemetry.Connect,
		msgSolicit: telemetry.Connect, msgOffer: telemetry.Connect,
		msgAccept: telemetry.Connect, msgConfirm: telemetry.Connect,
		msgReject: telemetry.Connect, msgCapture: telemetry.Connect,
		msgEnslaveReq: telemetry.Connect, msgEnslaveAccept: telemetry.Connect,
		msgEnslaveConfirm: telemetry.Connect, msgEnslaveReject: telemetry.Connect,
		msgPing: telemetry.Ping, msgPong: telemetry.Pong,
		msgBye: telemetry.Bye, msgQuery: telemetry.Query,
		msgQueryHit: telemetry.QueryHit,
		msgFetchReq: telemetry.Transfer, msgChunk: telemetry.Transfer,
	}
	if len(want) != len(wireKinds()) {
		t.Fatalf("expectation table covers %d kinds, wire has %d", len(want), len(wireKinds()))
	}
	for k, class := range want {
		if got := classOf(k); got != class {
			t.Errorf("classOf(%v) = %v, want %v", k, got, class)
		}
	}
}
