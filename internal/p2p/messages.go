package p2p

import "manetp2p/internal/telemetry"

// Nominal p2p message sizes in bytes for traffic/energy accounting.
const (
	sizeDiscover = 16
	sizeReply    = 12
	sizeSolicit  = 16
	sizeOffer    = 16
	sizeAccept   = 12
	sizeConfirm  = 12
	sizeReject   = 12
	sizeCapture  = 16
	sizeEnslave  = 12
	sizePing     = 8
	sizePong     = 8
	sizeBye      = 8
	sizeQuery    = 24
	sizeQueryHit = 20
)

// msgDiscover is the Basic algorithm's discovery broadcast.
type msgDiscover struct{}

// msgReply is the Basic algorithm's answer to a discover: "every node
// that listens to this message answers it" (§6.1.1). Receipt immediately
// creates an asymmetric reference at the discoverer.
type msgReply struct{}

// msgSolicit is the Regular/Random establishment broadcast ("looking for
// establishing connections", §6.1.3). For the Hybrid algorithm, masters
// solicit other masters with MasterOnly set.
type msgSolicit struct {
	Rand       bool // this solicitation seeks the Random algorithm's long link
	MasterOnly bool // only masters may respond (Hybrid master mesh)
}

// msgOffer opens the three-way handshake: the responder is willing to
// form a symmetric connection. BcastHops echoes how many ad-hoc hops the
// solicitation traveled, which the Random algorithm uses to pick the
// farthest responder.
type msgOffer struct {
	Rand       bool
	MasterOnly bool
	BcastHops  int
}

// msgAccept is the solicitor's second handshake step, committing a slot.
type msgAccept struct {
	Rand   bool
	Master bool
}

// msgConfirm is the responder's final handshake step; on receipt both
// ends consider the symmetric connection established.
type msgConfirm struct {
	Rand   bool
	Master bool
}

// msgReject aborts a handshake whose responder ran out of capacity.
type msgReject struct{}

// msgCapture is the Hybrid algorithm's discovery message carrying the
// sender's qualifier (§6.2). Reply=false for the initial broadcast;
// a higher-qualified receiver answers with Reply=true.
type msgCapture struct {
	Qualifier float64
	Reply     bool
}

// msgEnslaveReq asks the receiver to become the sender's master.
type msgEnslaveReq struct {
	Qualifier float64
}

// msgEnslaveAccept grants a slave slot (master side of the handshake).
type msgEnslaveAccept struct{}

// msgEnslaveConfirm finalizes enslavement (slave side).
type msgEnslaveConfirm struct{}

// msgEnslaveReject denies a slave slot.
type msgEnslaveReject struct{}

// msgPing is the keepalive probe. Seq matches pongs to pings.
type msgPing struct {
	Seq uint32
}

// msgPong answers a ping.
type msgPong struct {
	Seq uint32
}

// msgBye is a best-effort teardown notice so the remote side need not
// wait for a keepalive timeout. The paper relies on timeouts alone; Bye
// is an optimization that does not affect the counted message classes.
type msgBye struct{}

// msgQuery is a Gnutella-style file search flooded over overlay links
// (§7.2): TTL-limited, forwarded at most once per node, never back to
// the sender or to the original requirer.
type msgQuery struct {
	Origin  int    // the requirer
	QID     uint32 // per-origin query id for duplicate suppression
	File    int    // requested file rank
	TTL     int    // remaining p2p hops
	P2PHops int    // overlay hops traveled so far
	Walk    bool   // random-walk propagation instead of flooding
}

// msgQueryHit is sent directly (ad-hoc unicast) to the requirer by a
// node holding the file.
type msgQueryHit struct {
	QID     uint32
	File    int
	Holder  int
	P2PHops int // overlay hops the query traveled to reach the holder
}

// classOf maps a message to the paper's counting classes.
func classOf(m any) telemetry.Class {
	switch m.(type) {
	case msgDiscover, msgReply, msgSolicit, msgOffer, msgAccept, msgConfirm, msgReject,
		msgCapture, msgEnslaveReq, msgEnslaveAccept, msgEnslaveConfirm, msgEnslaveReject:
		return telemetry.Connect
	case msgPing:
		return telemetry.Ping
	case msgPong:
		return telemetry.Pong
	case msgQuery:
		return telemetry.Query
	case msgQueryHit:
		return telemetry.QueryHit
	case msgBye:
		return telemetry.Bye
	case msgFetchReq, msgChunk:
		return telemetry.Transfer
	default:
		panic("p2p: unclassified message")
	}
}

// sizeOf returns the nominal wire size of a message.
func sizeOf(m any) int {
	switch m.(type) {
	case msgDiscover:
		return sizeDiscover
	case msgReply:
		return sizeReply
	case msgSolicit:
		return sizeSolicit
	case msgOffer:
		return sizeOffer
	case msgAccept:
		return sizeAccept
	case msgConfirm:
		return sizeConfirm
	case msgReject:
		return sizeReject
	case msgCapture:
		return sizeCapture
	case msgEnslaveReq, msgEnslaveAccept, msgEnslaveConfirm, msgEnslaveReject:
		return sizeEnslave
	case msgPing:
		return sizePing
	case msgPong:
		return sizePong
	case msgBye:
		return sizeBye
	case msgQuery:
		return sizeQuery
	case msgQueryHit:
		return sizeQueryHit
	case msgFetchReq:
		return sizeFetchReq
	case msgChunk:
		return sizeChunk
	default:
		panic("p2p: unsized message")
	}
}
