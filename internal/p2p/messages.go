package p2p

import (
	"manetp2p/internal/netif"
	"manetp2p/internal/telemetry"
)

// Msg is the overlay message: netif's value-typed tagged union. It
// crosses the network interface by value, so sending, relaying, and
// delivering a message never boxes it onto the heap.
type Msg = netif.Msg

// The kind constants alias netif's, named after the message they tag so
// protocol code reads the way the paper does. The overlay vocabulary:
//
//   - msgDiscover: the Basic algorithm's discovery broadcast.
//   - msgReply: the Basic algorithm's answer to a discover — "every
//     node that listens to this message answers it" (§6.1.1). Receipt
//     immediately creates an asymmetric reference at the discoverer.
//   - msgSolicit: the Regular/Random establishment broadcast ("looking
//     for establishing connections", §6.1.3). Rand marks the Random
//     algorithm's long-link solicitation; for the Hybrid algorithm,
//     masters solicit other masters with MasterOnly set.
//   - msgOffer: opens the three-way handshake — the responder is
//     willing to form a symmetric connection. Hops echoes how many
//     ad-hoc hops the solicitation traveled, which the Random algorithm
//     uses to pick the farthest responder.
//   - msgAccept: the solicitor's second handshake step, committing a
//     slot (Master when connecting as a hybrid master).
//   - msgConfirm: the responder's final handshake step; on receipt both
//     ends consider the symmetric connection established.
//   - msgReject: aborts a handshake whose responder ran out of
//     capacity.
//   - msgCapture: the Hybrid algorithm's discovery message carrying the
//     sender's Qualifier (§6.2). Reply=false for the initial broadcast;
//     a higher-qualified receiver answers with Reply=true.
//   - msgEnslaveReq/Accept/Confirm/Reject: the enslave handshake — a
//     node asks a better-qualified master (Qualifier) to adopt it.
//   - msgPing/msgPong: the keepalive pair; Seq matches pongs to pings.
//   - msgBye: a best-effort teardown notice so the remote side need not
//     wait for a keepalive timeout. The paper relies on timeouts alone;
//     Bye is an optimization that does not affect the counted classes.
//   - msgQuery: a Gnutella-style file search flooded over overlay links
//     (§7.2): TTL-limited, forwarded at most once per node, never back
//     to the sender or the original requirer. Origin is the requirer,
//     Seq the per-origin query id for duplicate suppression, File the
//     requested rank, Hops the overlay hops traveled so far, Walk the
//     random-walk propagation mode.
//   - msgQueryHit: sent directly (ad-hoc unicast) to the requirer by a
//     node holding the file; Seq echoes the query id, Hops the overlay
//     hops the query traveled to reach Holder.
//   - msgFetchReq/msgChunk: the optional download extension's transfer
//     pair (see download.go).
const (
	msgDiscover       = netif.MsgDiscover
	msgReply          = netif.MsgReply
	msgSolicit        = netif.MsgSolicit
	msgOffer          = netif.MsgOffer
	msgAccept         = netif.MsgAccept
	msgConfirm        = netif.MsgConfirm
	msgReject         = netif.MsgReject
	msgCapture        = netif.MsgCapture
	msgEnslaveReq     = netif.MsgEnslaveReq
	msgEnslaveAccept  = netif.MsgEnslaveAccept
	msgEnslaveConfirm = netif.MsgEnslaveConfirm
	msgEnslaveReject  = netif.MsgEnslaveReject
	msgPing           = netif.MsgPing
	msgPong           = netif.MsgPong
	msgBye            = netif.MsgBye
	msgQuery          = netif.MsgQuery
	msgQueryHit       = netif.MsgQueryHit
	msgFetchReq       = netif.MsgFetchReq
	msgChunk          = netif.MsgChunk
)

// Nominal p2p message sizes in bytes for traffic/energy accounting.
const (
	sizeDiscover = 16
	sizeReply    = 12
	sizeSolicit  = 16
	sizeOffer    = 16
	sizeAccept   = 12
	sizeConfirm  = 12
	sizeReject   = 12
	sizeCapture  = 16
	sizeEnslave  = 12
	sizePing     = 8
	sizePong     = 8
	sizeBye      = 8
	sizeQuery    = 24
	sizeQueryHit = 20
)

// The class and size tables are indexed by message kind — one bounds
// check and one load on the hot send path, where the old any-typed
// type switches boxed every message they touched. A kind missing from
// a table (MsgNone, MsgTest, or a newly added kind without entries)
// panics exactly like the switches' default arms did; the coverage
// test in messages_test.go keeps the tables and the kind enum in sync.
var classTable = [netif.NumMsgKinds]telemetry.Class{
	msgDiscover:       telemetry.Connect,
	msgReply:          telemetry.Connect,
	msgSolicit:        telemetry.Connect,
	msgOffer:          telemetry.Connect,
	msgAccept:         telemetry.Connect,
	msgConfirm:        telemetry.Connect,
	msgReject:         telemetry.Connect,
	msgCapture:        telemetry.Connect,
	msgEnslaveReq:     telemetry.Connect,
	msgEnslaveAccept:  telemetry.Connect,
	msgEnslaveConfirm: telemetry.Connect,
	msgEnslaveReject:  telemetry.Connect,
	msgPing:           telemetry.Ping,
	msgPong:           telemetry.Pong,
	msgBye:            telemetry.Bye,
	msgQuery:          telemetry.Query,
	msgQueryHit:       telemetry.QueryHit,
	msgFetchReq:       telemetry.Transfer,
	msgChunk:          telemetry.Transfer,
}

// classKnown marks kinds with a class assignment: telemetry.Connect is
// the zero Class, so the table alone cannot tell "Connect" from
// "missing".
var classKnown = [netif.NumMsgKinds]bool{
	msgDiscover:       true,
	msgReply:          true,
	msgSolicit:        true,
	msgOffer:          true,
	msgAccept:         true,
	msgConfirm:        true,
	msgReject:         true,
	msgCapture:        true,
	msgEnslaveReq:     true,
	msgEnslaveAccept:  true,
	msgEnslaveConfirm: true,
	msgEnslaveReject:  true,
	msgPing:           true,
	msgPong:           true,
	msgBye:            true,
	msgQuery:          true,
	msgQueryHit:       true,
	msgFetchReq:       true,
	msgChunk:          true,
}

// sizeTable gives each kind's nominal wire size; 0 means unsized (the
// kind is not a wire message).
var sizeTable = [netif.NumMsgKinds]int{
	msgDiscover:       sizeDiscover,
	msgReply:          sizeReply,
	msgSolicit:        sizeSolicit,
	msgOffer:          sizeOffer,
	msgAccept:         sizeAccept,
	msgConfirm:        sizeConfirm,
	msgReject:         sizeReject,
	msgCapture:        sizeCapture,
	msgEnslaveReq:     sizeEnslave,
	msgEnslaveAccept:  sizeEnslave,
	msgEnslaveConfirm: sizeEnslave,
	msgEnslaveReject:  sizeEnslave,
	msgPing:           sizePing,
	msgPong:           sizePong,
	msgBye:            sizeBye,
	msgQuery:          sizeQuery,
	msgQueryHit:       sizeQueryHit,
	msgFetchReq:       sizeFetchReq,
	msgChunk:          sizeChunk,
}

// classOf maps a message kind to the paper's counting classes.
func classOf(k netif.MsgKind) telemetry.Class {
	if int(k) >= netif.NumMsgKinds || !classKnown[k] {
		panic("p2p: unclassified message")
	}
	return classTable[k]
}

// sizeOf returns the nominal wire size of a message kind.
func sizeOf(k netif.MsgKind) int {
	if int(k) >= netif.NumMsgKinds || sizeTable[k] == 0 {
		panic("p2p: unsized message")
	}
	return sizeTable[k]
}
