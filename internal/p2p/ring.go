package p2p

import "manetp2p/internal/sim"

// This file implements the establishment cycle shared by all four
// algorithms: a self-rescheduling step that broadcasts discovery messages
// with the paper's expanding-ring radius sequence
// nhops = NHOPS_INITIAL, +2, ..., MAXNHOPS, 0, NHOPS_INITIAL, ...
// and the exponential timer backoff applied on each completed sweep.

// ensureCycle (re)starts the establishment loop if it is needed and not
// already running — called at join, after a connection closes, and after
// a handshake fails.
func (sv *Servent) ensureCycle() {
	if !sv.joined || sv.cycleRunning || !sv.needEstablish() {
		return
	}
	sv.cycleRunning = true
	sv.scheduleCycle(0)
}

func (sv *Servent) scheduleCycle(d sim.Time) {
	sv.cycleEv.Cancel()
	sv.cycleEv = sv.s.Schedule(d, sv.cycleStepFn)
}

func (sv *Servent) cycleStep() {
	sv.cycleEv = sim.Handle{}
	if !sv.joined || !sv.needEstablish() {
		sv.cycleRunning = false
		return
	}
	switch sv.alg {
	case Basic:
		sv.basicStep()
	case Regular, Random:
		sv.ringStep()
	case Hybrid:
		sv.hybridStep()
	}
}

// advanceNHops applies the paper's radius progression: (nhops+2) mod
// (MAXNHOPS+2), i.e. 2, 4, 6, 0, 2, ...
func (sv *Servent) advanceNHops() {
	sv.nhops = (sv.nhops + 2) % (sv.par.MaxNHops + 2)
}

// doubleTimer applies "timer = min(timer × 2, MAXTIMER)".
func (sv *Servent) doubleTimer() {
	sv.timer *= 2
	if sv.timer > sv.par.MaxTimer {
		sv.timer = sv.par.MaxTimer
	}
}

// ringStep is one iteration of the Regular (fig. 2) or Random (fig. 3)
// establishment loop.
func (sv *Servent) ringStep() {
	if sv.nhops != 0 {
		if sv.needRegularSlot() {
			// Peer-cache extension: a unicast retry toward a known peer
			// replaces this step's broadcast when possible.
			if !sv.tryCachedPeers() {
				sv.broadcast(sv.nhops, Msg{Kind: msgSolicit})
			}
		}
		if sv.alg == Random && sv.needRandomLink() {
			sv.startRandomSolicit()
		}
		wait := sv.timer
		sv.advanceNHops()
		sv.scheduleCycle(wait)
		return
	}
	// nhops == 0: a full sweep failed to fill the table — back off.
	sv.doubleTimer()
	if sv.alg == Random && sv.needRandomLink() {
		sv.startRandomSolicit()
	}
	sv.advanceNHops()
	sv.scheduleCycle(0)
}

// needEstablish reports whether the algorithm still wants connections.
func (sv *Servent) needEstablish() bool {
	switch sv.alg {
	case Basic:
		return len(sv.conns) < sv.par.MaxNConn
	case Regular:
		return len(sv.conns)+sv.reservedSlots() < sv.par.MaxNConn
	case Random:
		return sv.needRegularSlot() || sv.needRandomLink()
	case Hybrid:
		switch sv.state {
		case StateInitial:
			return true
		case StateMaster:
			return sv.needMasterLink()
		default:
			return false
		}
	}
	return false
}

// needRegularSlot reports whether a non-random connection slot is open,
// respecting the Random algorithm's MAXNCONN−1 cap on regular links and
// the Hybrid algorithm's master-mesh accounting.
func (sv *Servent) needRegularSlot() bool {
	switch sv.alg {
	case Regular:
		return len(sv.conns)+sv.reservedSlots() < sv.par.MaxNConn
	case Random:
		return sv.regularCount()+sv.pendingRegular() < sv.par.MaxNConn-1
	case Hybrid:
		return sv.needMasterLink()
	default:
		return false
	}
}

// lacksRandomLink reports whether the Random algorithm's long link is
// missing and not being negotiated. Used for responder-side willingness:
// a node that is still collecting its own offers must not refuse an
// incoming random link, or synchronized solicitation cycles reject each
// other forever.
func (sv *Servent) lacksRandomLink() bool {
	if sv.alg != Random {
		return false
	}
	if sv.HasRandomConn() {
		return false
	}
	for _, h := range sv.pending { // commutative: pure any-match
		if h.random {
			return false
		}
	}
	return true
}

// needRandomLink additionally requires that no offer collection is in
// flight; it gates starting a new solicitation.
func (sv *Servent) needRandomLink() bool {
	return !sv.collecting && sv.lacksRandomLink()
}

// needMasterLink reports whether a Hybrid master wants more mesh links.
func (sv *Servent) needMasterLink() bool {
	return sv.state == StateMaster &&
		sv.masterLinkCount()+sv.pendingMaster() < sv.par.MaxNConn
}

// regularCount counts live non-random overlay links (excluding hybrid
// slave/master-role links).
func (sv *Servent) regularCount() int {
	n := 0
	for _, c := range sv.conns { // commutative: pure count
		if !c.random && !c.toMaster && !c.toSlave {
			n++
		}
	}
	return n
}

// masterLinkCount counts live master-mesh links.
func (sv *Servent) masterLinkCount() int {
	n := 0
	for _, c := range sv.conns { // commutative: pure count
		if c.master {
			n++
		}
	}
	return n
}

// slaveCount counts this master's live slaves.
func (sv *Servent) slaveCount() int {
	n := 0
	for _, c := range sv.conns { // commutative: pure count
		if c.toSlave {
			n++
		}
	}
	return n
}

func (sv *Servent) pendingRegular() int {
	n := 0
	for _, h := range sv.pending { // commutative: pure count
		if !h.random {
			n++
		}
	}
	return n
}

func (sv *Servent) pendingMaster() int {
	n := 0
	for _, h := range sv.pending { // commutative: pure count
		if h.master {
			n++
		}
	}
	return n
}
