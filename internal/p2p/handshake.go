package p2p

// This file implements the three-way handshake that establishes the
// symmetric connections of the Regular, Random and Hybrid algorithms:
//
//	solicitor --(solicit, broadcast)--> responders
//	responder --(offer)--> solicitor     [willing to connect]
//	solicitor --(accept)--> responder    [slot committed, reserved]
//	responder --(confirm | reject)--> solicitor
//
// plus the Random algorithm's farthest-responder offer collection.

import "manetp2p/internal/sim"

// onSolicit decides whether to offer a connection to the solicitor.
func (sv *Servent) onSolicit(from int, m Msg, bcastHops int) {
	if !sv.willingToConnect(from, m.Rand, m.MasterOnly) {
		return
	}
	sv.send(from, Msg{Kind: msgOffer, Rand: m.Rand, MasterOnly: m.MasterOnly, Hops: bcastHops})
}

// willingToConnect applies the responder-side capacity rules.
func (sv *Servent) willingToConnect(from int, random, masterOnly bool) bool {
	if from == sv.id {
		return false
	}
	if _, dup := sv.conns[from]; dup {
		return false
	}
	if _, pend := sv.pending[from]; pend {
		return false
	}
	switch sv.alg {
	case Regular:
		if masterOnly {
			return false
		}
		return len(sv.conns)+sv.reservedSlots() < sv.par.MaxNConn
	case Random:
		if masterOnly {
			return false
		}
		if random {
			// A random link fills our own random slot.
			return sv.lacksRandomLink() &&
				len(sv.conns)+sv.reservedSlots() < sv.par.MaxNConn
		}
		return sv.needRegularSlot()
	case Hybrid:
		// Only masters answer mesh solicitations; slaves talk to no one
		// but their master (§6.2).
		return masterOnly && sv.state == StateMaster && sv.needMasterLink()
	default: // Basic uses discover/reply, never solicit.
		return false
	}
}

// onOffer is the solicitor receiving a willing responder.
func (sv *Servent) onOffer(from int, m Msg) {
	if m.Rand {
		// Random-link offers are collected, not accepted eagerly.
		if sv.collecting {
			sv.offers = append(sv.offers, offerInfo{peer: from, bcastHops: m.Hops})
		}
		return
	}
	if m.MasterOnly {
		if sv.alg != Hybrid || sv.state != StateMaster || !sv.needMasterLink() {
			return
		}
	} else if !sv.needRegularSlot() {
		return
	}
	if _, dup := sv.conns[from]; dup {
		return
	}
	if _, pend := sv.pending[from]; pend {
		return
	}
	sv.acceptOffer(from, false, m.MasterOnly)
}

// acceptOffer commits a slot and sends the accept (second handshake step).
func (sv *Servent) acceptOffer(peer int, random, master bool) {
	h := &handshake{peer: peer, random: random, master: master}
	h.timeout = sv.s.ScheduleArg(sv.par.HandshakeWait, sv.hsTimeoutFn, sim.Arg{I0: peer, X: h})
	sv.pending[peer] = h
	sv.send(peer, Msg{Kind: msgAccept, Rand: random, Master: master})
}

// handshakeTimeout releases a reserved slot whose confirm never arrived.
func (sv *Servent) handshakeTimeout(a sim.Arg) {
	peer, h := a.I0, a.X.(*handshake)
	if sv.pending[peer] == h {
		delete(sv.pending, peer)
		sv.ensureCycle()
	}
}

// onAccept is the responder committing its half of the connection.
func (sv *Servent) onAccept(from int, m Msg) {
	if h, cross := sv.pending[from]; cross {
		// Crossing handshake: both ends solicited each other and both
		// sent accepts. Without a tie-break the two accepts reject each
		// other forever. The higher id keeps its solicitor role; the
		// lower id yields and answers as responder.
		if from < sv.id {
			sv.send(from, Msg{Kind: msgReject})
			return
		}
		delete(sv.pending, from)
		h.timeout.Cancel()
	}
	if !sv.willingToConnect(from, m.Rand, m.Master) {
		sv.send(from, Msg{Kind: msgReject})
		return
	}
	sv.installConn(&conn{peer: from, random: m.Rand, master: m.Master, initiator: false})
	sv.send(from, Msg{Kind: msgConfirm, Rand: m.Rand, Master: m.Master})
}

// onConfirm finalizes the solicitor's half.
func (sv *Servent) onConfirm(from int, m Msg) {
	h, ok := sv.pending[from]
	if !ok {
		// Our reservation timed out (or we left and rejoined); the
		// responder installed state we will never maintain — tear it
		// down explicitly rather than leaving it to keepalive timeouts.
		sv.send(from, Msg{Kind: msgBye})
		return
	}
	delete(sv.pending, from)
	h.timeout.Cancel()
	sv.installConn(&conn{peer: from, random: h.random, master: h.master, initiator: true})
}

// onReject releases the solicitor's reserved slot.
func (sv *Servent) onReject(from int) {
	h, ok := sv.pending[from]
	if !ok {
		return
	}
	delete(sv.pending, from)
	h.timeout.Cancel()
	sv.ensureCycle()
}

// startRandomSolicit begins the Random algorithm's long-link search
// (fig. 3): broadcast with randhops ∈ [nhops, 2·MAXNHOPS], collect the
// offers for a window, then continue the handshake with the farthest
// responder only.
func (sv *Servent) startRandomSolicit() {
	lo, hi := sv.nhops, 2*sv.par.MaxNHops
	if lo < 1 {
		lo = 1
	}
	randhops := lo + sv.opt.RNG.Intn(hi-lo+1)
	sv.collecting = true
	sv.offers = sv.offers[:0]
	sv.broadcast(randhops, Msg{Kind: msgSolicit, Rand: true})
	sv.s.Schedule(sv.par.OfferWindow, sv.endCollectFn)
}

// endRandomCollect picks the farthest responder and accepts it.
func (sv *Servent) endRandomCollect() {
	if !sv.collecting {
		return
	}
	sv.collecting = false
	if !sv.joined || !sv.lacksRandomLink() {
		return
	}
	best := -1
	for i, o := range sv.offers {
		if _, dup := sv.conns[o.peer]; dup {
			continue
		}
		if _, pend := sv.pending[o.peer]; pend {
			continue
		}
		if best < 0 || o.bcastHops > sv.offers[best].bcastHops {
			best = i
		}
	}
	if best < 0 {
		return // no takers this round; the cycle will try again
	}
	sv.acceptOffer(sv.offers[best].peer, true, false)
}
