package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

func allKindsPlan() Plan {
	return Plan{Events: []Event{
		PartitionEvent(600*sim.Second, 60*sim.Second, AxisX, 50),
		JamEvent(900*sim.Second, 120*sim.Second, geom.Point{X: 25, Y: 75}, 20, 0.9),
		LossBurstEvent(1200*sim.Second, 30*sim.Second, 0.5),
		CrashGroupEvent(1500*sim.Second, 300*sim.Second, 10),
		LinkFlapEvent(1800*sim.Second, 240*sim.Second, 20*sim.Second, 5*sim.Second),
	}}
}

func TestPlanValidate(t *testing.T) {
	if err := allKindsPlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("empty plan rejected: %v", err)
	}
	bads := []Event{
		{Kind: Partition, At: -sim.Second, Duration: sim.Second},
		{Kind: Partition, At: 0, Duration: 0},
		{Kind: Partition, At: 0, Duration: sim.Second, Axis: Axis(7)},
		{Kind: Jam, At: 0, Duration: sim.Second, Radius: 0, Loss: 0.5},
		{Kind: Jam, At: 0, Duration: sim.Second, Radius: 5, Loss: 1.5},
		{Kind: LossBurst, At: 0, Duration: sim.Second, Loss: 0},
		{Kind: CrashGroup, At: 0, Duration: sim.Second, Count: -1},
		{Kind: CrashGroup, At: 0, Duration: sim.Second, Count: 0, Fraction: 0},
		{Kind: LinkFlap, At: 0, Duration: sim.Second, Period: 0},
		{Kind: LinkFlap, At: 0, Duration: sim.Second, Period: sim.Second, DownFor: 2 * sim.Second},
		{Kind: Kind(99), At: 0, Duration: sim.Second},
	}
	for i, ev := range bads {
		if err := (Plan{Events: []Event{ev}}).Validate(); err == nil {
			t.Errorf("bad event %d accepted: %+v", i, ev)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := allKindsPlan()
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var got Plan
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, got) {
		t.Errorf("round trip changed plan:\n got %+v\nwant %+v", got, plan)
	}
	// Times serialize as seconds, the hand-authored unit.
	if !strings.Contains(string(data), `"at":600`) {
		t.Errorf("partition At not in seconds: %s", data)
	}
}

func TestPlanJSONUnknownType(t *testing.T) {
	var p Plan
	err := json.Unmarshal([]byte(`{"events":[{"type":"meteor","at":1,"duration":1}]}`), &p)
	if err == nil {
		t.Fatal("unknown event type accepted")
	}
	for _, want := range KindNames() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list valid type %q", err, want)
		}
	}
}

func TestPlanJSONBadAxis(t *testing.T) {
	var p Plan
	err := json.Unmarshal([]byte(`{"events":[{"type":"partition","at":1,"duration":1,"axis":"z"}]}`), &p)
	if err == nil || !strings.Contains(err.Error(), "axis") {
		t.Fatalf("bad axis not rejected clearly: %v", err)
	}
}

// world is a minimal Hooks target: static node positions, an up set and
// a crash log.
type world struct {
	pos    []geom.Point
	up     []bool
	filter func(src, dst int) bool
	downs  []int
	ups    []int
}

func newWorld(pos []geom.Point) *world {
	w := &world{pos: pos, up: make([]bool, len(pos))}
	for i := range w.up {
		w.up[i] = true
	}
	return w
}

func (w *world) hooks() Hooks {
	return Hooks{
		Pos:           func(id int) geom.Point { return w.pos[id] },
		Up:            func(id int) bool { return w.up[id] },
		SetLinkFilter: func(f func(src, dst int) bool) { w.filter = f },
		NodeDown:      func(id int) { w.up[id] = false; w.downs = append(w.downs, id) },
		NodeUp:        func(id int) { w.up[id] = true; w.ups = append(w.ups, id) },
		Members: func() []int {
			out := make([]int, len(w.pos))
			for i := range out {
				out[i] = i
			}
			return out
		},
	}
}

func (w *world) gated(src, dst int) bool { return w.filter != nil && w.filter(src, dst) }

func TestPartitionGatesCrossSideOnly(t *testing.T) {
	s := sim.New(1)
	w := newWorld([]geom.Point{{X: 10, Y: 50}, {X: 90, Y: 50}, {X: 20, Y: 50}})
	plan := Plan{Events: []Event{PartitionEvent(100*sim.Second, 50*sim.Second, AxisX, 50)}}
	New(s, s.NewRand(), plan, w.hooks()).Arm()

	s.Run(99 * sim.Second)
	if w.gated(0, 1) {
		t.Error("gated before the partition started")
	}
	s.Run(120 * sim.Second)
	if !w.gated(0, 1) || !w.gated(1, 0) {
		t.Error("cross-side delivery not gated during partition")
	}
	if w.gated(0, 2) {
		t.Error("same-side delivery gated during partition")
	}
	s.Run(151 * sim.Second)
	if w.gated(0, 1) {
		t.Error("still gated after the partition cleared")
	}
}

func TestJamAndBurstLoss(t *testing.T) {
	s := sim.New(1)
	// Node 0 inside the jam disc, nodes 1 and 2 far outside.
	w := newWorld([]geom.Point{{X: 5, Y: 5}, {X: 80, Y: 80}, {X: 90, Y: 90}})
	plan := Plan{Events: []Event{
		JamEvent(10*sim.Second, 10*sim.Second, geom.Point{X: 0, Y: 0}, 10, 1),
		LossBurstEvent(40*sim.Second, 10*sim.Second, 1),
	}}
	New(s, s.NewRand(), plan, w.hooks()).Arm()

	s.Run(15 * sim.Second)
	if !w.gated(0, 1) || !w.gated(1, 0) {
		t.Error("delivery touching the jammed region not dropped at loss=1")
	}
	if w.gated(1, 2) {
		t.Error("delivery outside the jammed region dropped")
	}
	s.Run(45 * sim.Second)
	if !w.gated(1, 2) {
		t.Error("lossburst at loss=1 did not drop a delivery")
	}
	s.Run(60 * sim.Second)
	if w.gated(1, 2) {
		t.Error("still dropping after the burst cleared")
	}
}

func TestLinkFlapToggles(t *testing.T) {
	s := sim.New(1)
	w := newWorld([]geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}})
	plan := Plan{Events: []Event{
		LinkFlapEvent(10*sim.Second, 40*sim.Second, 20*sim.Second, 5*sim.Second),
	}}
	New(s, s.NewRand(), plan, w.hooks()).Arm()

	s.Run(12 * sim.Second) // inside first down window [10,15)
	if !w.gated(0, 1) {
		t.Error("links not down in the first flap window")
	}
	s.Run(17 * sim.Second) // between windows
	if w.gated(0, 1) {
		t.Error("links down between flap windows")
	}
	s.Run(32 * sim.Second) // second window [30,35)
	if !w.gated(0, 1) {
		t.Error("links not down in the second flap window")
	}
	s.Run(60 * sim.Second) // event over
	if w.gated(0, 1) {
		t.Error("links down after the flap event cleared")
	}
}

func TestCrashGroupDownsAndRestarts(t *testing.T) {
	s := sim.New(7)
	pos := make([]geom.Point, 20)
	w := newWorld(pos)
	plan := Plan{Events: []Event{CrashGroupEvent(50*sim.Second, 100*sim.Second, 5)}}
	New(s, s.NewRand(), plan, w.hooks()).Arm()

	s.Run(60 * sim.Second)
	if len(w.downs) != 5 {
		t.Fatalf("crashed %d nodes, want 5", len(w.downs))
	}
	down := 0
	for _, up := range w.up {
		if !up {
			down++
		}
	}
	if down != 5 {
		t.Errorf("%d nodes down during the event, want 5", down)
	}
	s.Run(200 * sim.Second)
	if !reflect.DeepEqual(w.downs, w.ups) {
		t.Errorf("restarted %v, crashed %v", w.ups, w.downs)
	}
	for i, up := range w.up {
		if !up {
			t.Errorf("node %d still down after restart", i)
		}
	}
}

func TestCrashFraction(t *testing.T) {
	s := sim.New(3)
	w := newWorld(make([]geom.Point, 40))
	plan := Plan{Events: []Event{CrashFractionEvent(10*sim.Second, 20*sim.Second, 0.25)}}
	New(s, s.NewRand(), plan, w.hooks()).Arm()
	s.Run(15 * sim.Second)
	if len(w.downs) != 10 {
		t.Errorf("crashed %d nodes, want 10 (25%% of 40)", len(w.downs))
	}
}

func TestCrashDeterminism(t *testing.T) {
	run := func() []int {
		s := sim.New(42)
		w := newWorld(make([]geom.Point, 30))
		plan := Plan{Events: []Event{CrashGroupEvent(5*sim.Second, 10*sim.Second, 8)}}
		New(s, s.NewRand(), plan, w.hooks()).Arm()
		s.Run(6 * sim.Second)
		return w.downs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed chose different victims: %v vs %v", a, b)
	}
}
