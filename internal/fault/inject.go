package fault

import (
	"math/rand"
	"sort"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

// Hooks are the injector's levers into the simulated world. The fault
// package stays dependency-light on purpose: it never imports the radio
// or manet packages, it only pulls these callbacks.
type Hooks struct {
	// Pos returns the current position of a node (radio grid).
	Pos func(id int) geom.Point
	// Up reports whether a node is currently on the air.
	Up func(id int) bool
	// SetLinkFilter installs the per-delivery gate on the medium. The
	// filter returns true to drop a delivery from src to dst.
	SetLinkFilter func(filter func(src, dst int) bool)
	// NodeDown forces a node off the air (crash — distinct from churn).
	NodeDown func(id int)
	// NodeUp restarts a crashed node.
	NodeUp func(id int)
	// Members lists the overlay member ids (CrashGroup victims are
	// drawn from these).
	Members func() []int
}

// active tracks one currently-effective gating event; removal is by
// pointer identity so duplicate events in a plan stay independent.
type active struct{ ev Event }

// Injector executes a Plan against one replication. It must be armed
// before the simulation runs; all its draws come from the rng handed to
// New, so same seed + same plan reproduce the same failures.
type Injector struct {
	s   *sim.Sim
	rng *rand.Rand
	h   Hooks

	plan       Plan
	partitions []*active
	jams       []*active
	bursts     []*active
	flapsDown  int // link-flap windows currently gating all links
}

// New builds an injector for plan. The rng must be dedicated to the
// injector (take a fresh sim.NewRand stream) so fault draws never
// perturb the rest of the simulation.
func New(s *sim.Sim, rng *rand.Rand, plan Plan, h Hooks) *Injector {
	return &Injector{s: s, rng: rng, h: h, plan: plan}
}

// Arm schedules every plan event on the simulator and, if any event
// gates deliveries, installs the link filter. Call once, before Run.
func (inj *Injector) Arm() {
	gating := false
	for _, ev := range inj.plan.Events {
		ev := ev
		switch ev.Kind {
		case Partition:
			gating = true
			inj.s.At(ev.At, func() { inj.activate(&inj.partitions, ev) })
		case Jam:
			gating = true
			inj.s.At(ev.At, func() { inj.activate(&inj.jams, ev) })
		case LossBurst:
			gating = true
			inj.s.At(ev.At, func() { inj.activate(&inj.bursts, ev) })
		case LinkFlap:
			gating = true
			inj.s.At(ev.At, func() { inj.flapCycle(ev, ev.At) })
		case CrashGroup:
			inj.s.At(ev.At, func() { inj.crash(ev) })
		}
	}
	if gating && inj.h.SetLinkFilter != nil {
		inj.h.SetLinkFilter(inj.filter)
	}
}

// activate adds ev to a live list and schedules its removal at clear.
func (inj *Injector) activate(list *[]*active, ev Event) {
	a := &active{ev}
	*list = append(*list, a)
	inj.s.Schedule(ev.Duration, func() {
		for i, x := range *list {
			if x == a {
				*list = append((*list)[:i], (*list)[i+1:]...)
				return
			}
		}
	})
}

// flapCycle runs one period of a link flap starting at start: links are
// down for DownFor, then up until the next period boundary.
func (inj *Injector) flapCycle(ev Event, start sim.Time) {
	end := ev.Clears()
	if start >= end {
		return
	}
	inj.flapsDown++
	downEnd := start + ev.DownFor
	if downEnd > end {
		downEnd = end
	}
	inj.s.At(downEnd, func() {
		inj.flapsDown--
		next := start + ev.Period
		if next < end {
			inj.s.At(next, func() { inj.flapCycle(ev, next) })
		}
	})
}

// crash takes the event's victim group down and schedules the restart.
// Victims are the first Count (or Fraction of membership) currently-up
// members of a deterministic shuffle.
func (inj *Injector) crash(ev Event) {
	ids := append([]int(nil), inj.h.Members()...)
	sort.Ints(ids) // canonical order before shuffling: determinism
	inj.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	count := ev.Count
	if count == 0 {
		count = int(ev.Fraction*float64(len(ids)) + 0.5)
	}
	var victims []int
	for _, id := range ids {
		if len(victims) >= count {
			break
		}
		if inj.h.Up(id) {
			inj.h.NodeDown(id)
			victims = append(victims, id)
		}
	}
	inj.s.Schedule(ev.Duration, func() {
		for _, id := range victims {
			inj.h.NodeUp(id)
		}
	})
}

// ActiveGates reports how many fault windows are currently gating
// deliveries, per kind (link flaps as the count of down windows). The
// checkpoint digest folds these in so a resumed replication must agree
// with the uninterrupted one about which faults are live.
func (inj *Injector) ActiveGates() (partitions, jams, bursts, flapsDown int) {
	return len(inj.partitions), len(inj.jams), len(inj.bursts), inj.flapsDown
}

// filter is the per-delivery gate installed on the medium. It runs on
// the hot path, so the common no-active-fault case returns immediately.
func (inj *Injector) filter(src, dst int) bool {
	if inj.flapsDown > 0 {
		return true
	}
	for _, a := range inj.partitions {
		if a.ev.side(inj.h.Pos(src)) != a.ev.side(inj.h.Pos(dst)) {
			return true
		}
	}
	loss := 0.0
	for _, a := range inj.bursts {
		loss = combineLoss(loss, a.ev.Loss)
	}
	if len(inj.jams) > 0 {
		ps, pd := inj.h.Pos(src), inj.h.Pos(dst)
		for _, a := range inj.jams {
			if a.ev.inRegion(ps) || a.ev.inRegion(pd) {
				loss = combineLoss(loss, a.ev.Loss)
			}
		}
	}
	if loss <= 0 {
		return false
	}
	return loss >= 1 || inj.rng.Float64() < loss
}

// combineLoss stacks independent drop probabilities.
func combineLoss(p, q float64) float64 { return 1 - (1-p)*(1-q) }
