package fault

import (
	"encoding/json"
	"fmt"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

// Plan JSON is the hand-authored surface of the subsystem
// (cmd/p2psim -faults plan.json), so unlike the rest of the scenario
// JSON — which serializes sim.Time as integer microseconds — fault
// events use floating-point *seconds* for every time field:
//
//	{"events": [
//	  {"type": "partition", "at": 600, "duration": 60, "axis": "x", "pos": 50},
//	  {"type": "jam", "at": 900, "duration": 120, "x": 25, "y": 25,
//	   "radius": 20, "loss": 0.9},
//	  {"type": "lossburst", "at": 1200, "duration": 30, "loss": 0.5},
//	  {"type": "crashgroup", "at": 1500, "duration": 300, "count": 10},
//	  {"type": "linkflap", "at": 1800, "duration": 240,
//	   "period": 20, "downFor": 5}
//	]}
//
// Unknown event types are rejected with an error listing the valid ones.

// eventJSON is the wire shape of an Event; times are seconds.
type eventJSON struct {
	Type     string  `json:"type"`
	At       float64 `json:"at"`
	Duration float64 `json:"duration"`
	Axis     string  `json:"axis,omitempty"`
	Pos      float64 `json:"pos,omitempty"`
	X        float64 `json:"x,omitempty"`
	Y        float64 `json:"y,omitempty"`
	Radius   float64 `json:"radius,omitempty"`
	Loss     float64 `json:"loss,omitempty"`
	Count    int     `json:"count,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Period   float64 `json:"period,omitempty"`
	DownFor  float64 `json:"downFor,omitempty"`
}

// MarshalJSON renders the event with its type tag and only the fields
// its kind uses.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		Type:     e.Kind.String(),
		At:       e.At.Seconds(),
		Duration: e.Duration.Seconds(),
	}
	switch e.Kind {
	case Partition:
		j.Axis = e.Axis.String()
		j.Pos = e.Pos
	case Jam:
		j.X, j.Y = e.Center.X, e.Center.Y
		j.Radius = e.Radius
		j.Loss = e.Loss
	case LossBurst:
		j.Loss = e.Loss
	case CrashGroup:
		j.Count = e.Count
		j.Fraction = e.Fraction
	case LinkFlap:
		j.Period = e.Period.Seconds()
		j.DownFor = e.DownFor.Seconds()
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the type tag and the kind's fields, rejecting
// unknown types with a clear error.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("fault: parsing event: %w", err)
	}
	kind, err := ParseKind(j.Type)
	if err != nil {
		return err
	}
	*e = Event{
		Kind:     kind,
		At:       sim.FromSeconds(j.At),
		Duration: sim.FromSeconds(j.Duration),
	}
	switch kind {
	case Partition:
		switch j.Axis {
		case "x", "":
			e.Axis = AxisX
		case "y":
			e.Axis = AxisY
		default:
			return fmt.Errorf("fault: partition axis %q invalid (valid: x, y)", j.Axis)
		}
		e.Pos = j.Pos
	case Jam:
		e.Center = geom.Point{X: j.X, Y: j.Y}
		e.Radius = j.Radius
		e.Loss = j.Loss
	case LossBurst:
		e.Loss = j.Loss
	case CrashGroup:
		e.Count = j.Count
		e.Fraction = j.Fraction
	case LinkFlap:
		e.Period = sim.FromSeconds(j.Period)
		e.DownFor = sim.FromSeconds(j.DownFor)
	}
	return nil
}
