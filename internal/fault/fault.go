// Package fault provides a deterministic, scenario-scriptable
// fault-injection subsystem for the MANET simulator. A Plan is a
// timeline of typed events — arena partitions, regional jamming, global
// loss bursts, correlated node crashes and periodic link flaps — that an
// Injector executes against hooks into the radio medium (per-delivery
// gating and loss overrides) and the node lifecycle (forced down/up,
// distinct from churn). All randomness flows from one *rand.Rand handed
// in by the caller, so the same seed and the same plan reproduce the
// same failures bit for bit.
//
// The paper's contribution is (re)configuration — overlays that heal
// when the network underneath them breaks — and the events here script
// exactly the correlated failure regimes (IPDPS 2003 §§5–7 motivates)
// that homogeneous Poisson churn cannot express.
package fault

import (
	"fmt"

	"manetp2p/internal/geom"
	"manetp2p/internal/sim"
)

// Kind identifies a fault event type.
type Kind int

// The fault event types.
const (
	// Partition splits the arena along an axis-aligned line for the
	// event's duration: no frame crosses the line.
	Partition Kind = iota
	// Jam elevates packet loss for every delivery touching a circular
	// region (either endpoint inside).
	Jam
	// LossBurst adds a global loss probability to every delivery.
	LossBurst
	// CrashGroup takes a correlated group of member nodes down at once
	// and restarts them when the event clears.
	CrashGroup
	// LinkFlap gates all radio links down periodically: every Period,
	// links are dead for DownFor.
	LinkFlap
	numKinds
)

// String names the kind as it appears in plan JSON and reports.
func (k Kind) String() string {
	switch k {
	case Partition:
		return "partition"
	case Jam:
		return "jam"
	case LossBurst:
		return "lossburst"
	case CrashGroup:
		return "crashgroup"
	case LinkFlap:
		return "linkflap"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindNames lists the valid plan-JSON type strings in declaration order.
func KindNames() []string {
	out := make([]string, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k.String())
	}
	return out
}

// ParseKind maps a plan-JSON type string back to its Kind.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown event type %q (valid: %s)",
		s, joinNames())
}

func joinNames() string {
	out := ""
	for i, n := range KindNames() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Axis selects the orientation of a partition cut.
type Axis int

// Partition cut orientations.
const (
	// AxisX cuts along the vertical line X = Pos.
	AxisX Axis = iota
	// AxisY cuts along the horizontal line Y = Pos.
	AxisY
)

// String names the axis as it appears in plan JSON.
func (a Axis) String() string {
	if a == AxisY {
		return "y"
	}
	return "x"
}

// Event is one entry of a fault Plan. Only the fields of its Kind are
// meaningful; the rest stay zero.
type Event struct {
	Kind     Kind
	At       sim.Time // activation instant
	Duration sim.Time // active window length

	// Partition: the cut line Axis = Pos.
	Axis Axis
	Pos  float64

	// Jam: the jammed disc.
	Center geom.Point
	Radius float64

	// Jam and LossBurst: added per-delivery drop probability (1 kills
	// every delivery outright).
	Loss float64

	// CrashGroup: how many members crash — an absolute Count, or a
	// Fraction of the membership when Count is zero.
	Count    int
	Fraction float64

	// LinkFlap: every Period within the window, links are gated down
	// for DownFor.
	Period  sim.Time
	DownFor sim.Time
}

// Clears returns the instant the event's effect ends.
func (e Event) Clears() sim.Time { return e.At + e.Duration }

// Label returns a compact identifier for reports, e.g. "partition@600s".
func (e Event) Label() string {
	return fmt.Sprintf("%s@%.0fs", e.Kind, e.At.Seconds())
}

// Validate reports a descriptive error for an inconsistent event.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("fault: %s At %v negative", e.Kind, e.At)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("fault: %s Duration %v not positive", e.Kind, e.Duration)
	}
	switch e.Kind {
	case Partition:
		if e.Axis != AxisX && e.Axis != AxisY {
			return fmt.Errorf("fault: partition axis %d invalid (want x or y)", int(e.Axis))
		}
	case Jam:
		if e.Radius <= 0 {
			return fmt.Errorf("fault: jam radius %v not positive", e.Radius)
		}
		if e.Loss <= 0 || e.Loss > 1 {
			return fmt.Errorf("fault: jam loss %v outside (0,1]", e.Loss)
		}
	case LossBurst:
		if e.Loss <= 0 || e.Loss > 1 {
			return fmt.Errorf("fault: lossburst loss %v outside (0,1]", e.Loss)
		}
	case CrashGroup:
		if e.Count < 0 {
			return fmt.Errorf("fault: crashgroup count %d negative", e.Count)
		}
		if e.Count == 0 && (e.Fraction <= 0 || e.Fraction > 1) {
			return fmt.Errorf("fault: crashgroup needs Count > 0 or Fraction in (0,1], got count %d fraction %v",
				e.Count, e.Fraction)
		}
	case LinkFlap:
		if e.Period <= 0 {
			return fmt.Errorf("fault: linkflap period %v not positive", e.Period)
		}
		if e.DownFor <= 0 || e.DownFor > e.Period {
			return fmt.Errorf("fault: linkflap DownFor %v outside (0, period=%v]", e.DownFor, e.Period)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	return nil
}

// side reports which half of a partition cut p falls on.
func (e Event) side(p geom.Point) bool {
	if e.Axis == AxisY {
		return p.Y < e.Pos
	}
	return p.X < e.Pos
}

// inRegion reports whether p lies inside a jam disc.
func (e Event) inRegion(p geom.Point) bool {
	return p.Dist2(e.Center) <= e.Radius*e.Radius
}

// Plan is a timeline of fault events. The zero Plan injects nothing.
type Plan struct {
	Events []Event `json:"events,omitempty"`
}

// Empty reports whether the plan has no events.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Validate reports the first invalid event.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// PartitionEvent scripts an arena split along axis = pos for dur
// starting at at.
func PartitionEvent(at, dur sim.Time, axis Axis, pos float64) Event {
	return Event{Kind: Partition, At: at, Duration: dur, Axis: axis, Pos: pos}
}

// JamEvent scripts a circular jammed region with the given added loss
// probability.
func JamEvent(at, dur sim.Time, center geom.Point, radius, loss float64) Event {
	return Event{Kind: Jam, At: at, Duration: dur, Center: center, Radius: radius, Loss: loss}
}

// LossBurstEvent scripts a global loss spike of the given probability.
func LossBurstEvent(at, dur sim.Time, loss float64) Event {
	return Event{Kind: LossBurst, At: at, Duration: dur, Loss: loss}
}

// CrashGroupEvent scripts a correlated crash of count members, restarted
// when the event clears.
func CrashGroupEvent(at, dur sim.Time, count int) Event {
	return Event{Kind: CrashGroup, At: at, Duration: dur, Count: count}
}

// CrashFractionEvent scripts a correlated crash of a fraction of the
// membership, restarted when the event clears.
func CrashFractionEvent(at, dur sim.Time, fraction float64) Event {
	return Event{Kind: CrashGroup, At: at, Duration: dur, Fraction: fraction}
}

// LinkFlapEvent scripts periodic link outages: within [at, at+dur),
// every period starts with downFor of dead air.
func LinkFlapEvent(at, dur, period, downFor sim.Time) Event {
	return Event{Kind: LinkFlap, At: at, Duration: dur, Period: period, DownFor: downFor}
}
