package telemetry

// SafeRatio returns a/b, or 0 when b is 0 — the one shared guard for
// every derived report ratio (routing control/delivered and send-fail
// rates, workload success and repair rates), so degenerate runs render
// 0 instead of NaN/Inf.
func SafeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
