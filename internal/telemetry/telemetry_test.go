package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"manetp2p/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestSeriesBound(t *testing.T) {
	s := NewSeries(3)
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 3 || s.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", s.Len(), s.Dropped())
	}
	if tt, v := s.At(2); tt != 2 || v != 4 {
		t.Fatalf("At(2) = (%v,%v), want (2,4)", tt, v)
	}
	s.Reset()
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Fatalf("after Reset len=%d dropped=%d", s.Len(), s.Dropped())
	}
	s.Append(9, 9)
	if s.Len() != 1 {
		t.Fatalf("append after reset: len=%d", s.Len())
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	a := l.Define("alpha")
	b := l.Define("beta")
	if again := l.Define("alpha"); again != a {
		t.Fatalf("re-Define alpha = %d, want %d", again, a)
	}
	l.Inc(a)
	l.Add(b, 3)
	if l.Count(a) != 1 || l.Count(b) != 3 {
		t.Fatalf("counts = %d/%d, want 1/3", l.Count(a), l.Count(b))
	}
	if got := l.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("names = %v", got)
	}
}

// The record hot path must not allocate: these probes sit inside the
// per-event code of the simulator.
func TestRecordPathZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	s := NewSeries(1024)
	var l Ledger
	id := l.Define("ev")
	col := NewCollector(8)
	i := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(i)
		s.Append(i, i)
		l.Inc(id)
		col.Recv(3, Query)
		i++
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v/op, want 0", allocs)
	}
}

func TestCollectorAbsorbedBehavior(t *testing.T) {
	c := NewCollector(3)
	c.Recv(0, Connect)
	c.Recv(0, Connect)
	c.Recv(2, Query)
	if c.Received(0, Connect) != 2 || c.Received(2, Query) != 1 || c.Received(1, Ping) != 0 {
		t.Fatal("per-node counts wrong")
	}
	if c.TotalReceived(Connect) != 2 || c.TotalReceived(Query) != 1 {
		t.Fatal("totals wrong")
	}
	if got := c.ReceivedAll(Connect); len(got) != 3 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("ReceivedAll = %v", got)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	c.RecordLifetime(12.5)
	if lt := c.Lifetimes(); len(lt) != 1 || lt[0] != 12.5 {
		t.Fatalf("lifetimes = %v", lt)
	}
	c.Record(Request{Node: 1, File: 0, Answers: 2, Found: true})
	if rq := c.Requests(); len(rq) != 1 || rq[0].Answers != 2 {
		t.Fatalf("requests = %v", rq)
	}
	c.RecordHealth(HealthSample{At: 10, LargestComp: 1, Links: 4})
	if h := c.Health(); len(h) != 1 || h[0].Links != 4 {
		t.Fatalf("health = %v", h)
	}
}

func TestCollectorBucketedSeries(t *testing.T) {
	var now sim.Time
	c := NewCollector(2)
	if c.Series(Query) != nil {
		t.Fatal("series should be nil before SetClock")
	}
	c.SetClock(func() sim.Time { return now }, 10)
	now = 3
	c.Recv(0, Query)
	now = 14
	c.Recv(1, Query)
	c.Recv(1, Query)
	now = 25
	c.Recv(0, Ping)
	q := c.Series(Query)
	if len(q) != 2 || q[0] != 1 || q[1] != 2 {
		t.Fatalf("query series = %v, want [1 2]", q)
	}
	p := c.Series(Ping)
	if len(p) != 3 || p[2] != 1 {
		t.Fatalf("ping series = %v, want [0 0 1]", p)
	}
}

func TestSafeRatioTable(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{5, 0, 0},
		{-3, 0, 0},
		{math.Inf(1), 0, 0},
		{6, 3, 2},
		{1, 4, 0.25},
		{-6, 3, -2},
		{0, 7, 0},
	}
	for _, tc := range cases {
		if got := SafeRatio(tc.a, tc.b); got != tc.want {
			t.Errorf("SafeRatio(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

type testRep struct{ v float64 }
type testOut struct {
	sum   float64
	lines []string
}

func testRegistry() *Registry[float64, string, *testRep, *testOut] {
	g := &Registry[float64, string, *testRep, *testOut]{}
	g.Register(Section[float64, string, *testRep, *testOut]{
		Name:    "alpha",
		Collect: func(src float64, r *testRep) { r.v = src * 2 },
		Pool: func(sc string, reps []*testRep, out *testOut) {
			for _, r := range reps {
				out.sum += r.v
			}
		},
		Render: func(w io.Writer, out *testOut) { fmt.Fprintf(w, "alpha %g\n", out.sum) },
		Stream: func(sc string, rep int, r *testRep, emit func(Point)) {
			emit(Point{Rep: rep, T: 1, Section: "alpha", Name: "v", Value: r.v})
		},
	})
	g.Register(Section[float64, string, *testRep, *testOut]{
		Name:   "beta",
		Render: func(w io.Writer, out *testOut) { fmt.Fprintln(w, "beta") },
	})
	return g
}

func TestRegistryWalksInOrder(t *testing.T) {
	g := testRegistry()
	if got := g.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("names = %v", got)
	}
	r1, r2 := &testRep{}, &testRep{}
	g.Collect(3, r1)
	g.Collect(5, r2)
	out := &testOut{}
	g.Pool("sc", []*testRep{r1, r2}, out)
	if out.sum != 16 {
		t.Fatalf("pooled sum = %g, want 16", out.sum)
	}
	var buf bytes.Buffer
	g.Render(&buf, out)
	if buf.String() != "alpha 16\nbeta\n" {
		t.Fatalf("render = %q", buf.String())
	}
	var pts []Point
	g.Stream("sc", 1, r2, func(p Point) { pts = append(pts, p) })
	if len(pts) != 1 || pts[0].Value != 10 || pts[0].Rep != 1 {
		t.Fatalf("stream = %+v", pts)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	g := testRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	g.Register(Section[float64, string, *testRep, *testOut]{Name: "alpha"})
}

func TestManifestRoundTrip(t *testing.T) {
	g := testRegistry()
	m := g.Manifest()
	if err := g.CheckManifest(m); err != nil {
		t.Fatalf("self manifest rejected: %v", err)
	}
	other := &Registry[float64, string, *testRep, *testOut]{}
	other.Register(Section[float64, string, *testRep, *testOut]{Name: "alpha"})
	if err := other.CheckManifest(m); err == nil {
		t.Fatal("missing-section manifest accepted")
	}
	other.Register(Section[float64, string, *testRep, *testOut]{Name: "gamma"})
	if err := other.CheckManifest(m); err == nil {
		t.Fatal("renamed-section manifest accepted")
	}
	if err := g.CheckManifest([]byte("not json")); err == nil {
		t.Fatal("garbage manifest accepted")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Point{Rep: 0, T: 10, Section: "radio", Name: "rx", Value: 42})
	s.Emit(Point{Rep: 1, T: 0.5, Section: "workload", Name: "offered", Value: 1e6})
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var p Point
	if err := json.Unmarshal([]byte(lines[0]), &p); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if p != (Point{Rep: 0, T: 10, Section: "radio", Name: "rx", Value: 42}) {
		t.Fatalf("round-trip = %+v", p)
	}
	if err := json.Unmarshal([]byte(lines[1]), &p); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if p.Value != 1e6 {
		t.Fatalf("big value round-trip = %+v", p)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("disk full")
}

func TestJSONLSinkLatchesError(t *testing.T) {
	s := NewJSONLSink(&failWriter{})
	for i := 0; i < 100_000; i++ { // enough to overflow the bufio buffer
		s.Emit(Point{Rep: i, Section: "x", Name: "y"})
	}
	if err := s.Close(); err == nil {
		t.Fatal("write error not surfaced by Close")
	}
}
