package telemetry

// The paper's measurement quantities, absorbed from the former
// internal/metrics package: per-node received-message counts by class
// (connect, ping, query — Figures 7–12), per-request outcomes (minimum
// distance to the file and number of answers — Figures 5–6), optional
// time-bucketed traffic series, connection lifetimes and the periodic
// resilience health samples.

import (
	"fmt"

	"manetp2p/internal/sim"
)

// Class partitions p2p-layer messages the way the paper's figures do.
type Class int

const (
	// Connect covers every message of the establishment phase: discovery
	// broadcasts (discover/solicit/capture) and handshake unicasts
	// (offer/accept/confirm/reject, enslave handshake, replies).
	Connect Class = iota
	// Ping is a keepalive probe.
	Ping
	// Pong is a keepalive answer.
	Pong
	// Query is a file search message.
	Query
	// QueryHit is an answer to a query.
	QueryHit
	// Bye is a best-effort connection teardown notice.
	Bye
	// Transfer covers the optional download extension's fetch/chunk
	// messages (not part of the paper's counted classes).
	Transfer
	numClasses
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case Connect:
		return "connect"
	case Ping:
		return "ping"
	case Pong:
		return "pong"
	case Query:
		return "query"
	case QueryHit:
		return "queryhit"
	case Bye:
		return "bye"
	case Transfer:
		return "transfer"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// NumClasses is the number of message classes tracked.
const NumClasses = int(numClasses)

// Request records the outcome of one file search: how many answers
// arrived within the paper's 30 s collection window and the minimum
// distance (in p2p overlay hops and in ad-hoc hops) among them.
type Request struct {
	Node     int  // requesting servent
	File     int  // file rank, 0 = most popular
	Answers  int  // query hits received in the window
	MinP2P   int  // min p2p hops among answers; 0 if none
	MinAdhoc int  // min ad-hoc hops among answers; 0 if none
	Found    bool // at least one answer arrived
}

// HealthSample is one point of the resilience telemetry: a periodic
// low-overhead reading of overlay health from which recovery metrics
// (time-to-reheal, residual disconnection, message cost of recovery)
// are derived after the run.
type HealthSample struct {
	At          sim.Time
	LargestComp float64            // largest-component fraction of the membership
	Links       int                // overlay link count
	Received    [NumClasses]uint64 // cumulative network-wide received counts
}

// Collector accumulates one replication's measurements on the probe
// primitives: one flat Counter block for the per-node per-class receive
// counts (the event hot path — Recv is zero-allocation when bucketing
// is off, and allocation-amortized when on). It is not safe for
// concurrent use: one Collector per Sim.
type Collector struct {
	recv     []Counter // [node*NumClasses + class]
	requests []Request

	// Optional time bucketing.
	clock   func() sim.Time
	bucketW sim.Time
	buckets [][]uint64 // [class][bucket]

	lifetimes []float64      // overlay connection lifetimes, seconds
	health    []HealthSample // periodic resilience telemetry
}

// NewCollector sizes the collector for n nodes.
func NewCollector(n int) *Collector {
	return &Collector{recv: make([]Counter, n*NumClasses)}
}

// SetClock enables time-bucketed totals: every Recv is also counted
// into a bucket of the given width according to the clock. Call before
// the simulation starts.
func (c *Collector) SetClock(clock func() sim.Time, bucket sim.Time) {
	if clock == nil || bucket <= 0 {
		panic("telemetry: SetClock requires a clock and a positive bucket width")
	}
	c.clock = clock
	c.bucketW = bucket
	c.buckets = make([][]uint64, NumClasses)
}

// Recv counts one received message of the given class at node.
func (c *Collector) Recv(node int, class Class) {
	c.recv[node*NumClasses+int(class)].Inc()
	if c.clock != nil {
		b := int(c.clock() / c.bucketW)
		row := c.buckets[class]
		for len(row) <= b {
			row = append(row, 0)
		}
		row[b]++
		c.buckets[class] = row
	}
}

// Series returns the bucketed totals for a class (nil when bucketing is
// off): element i counts messages received network-wide during
// [i·bucket, (i+1)·bucket).
func (c *Collector) Series(class Class) []uint64 {
	if c.buckets == nil {
		return nil
	}
	return c.buckets[class]
}

// Received returns the per-class count for one node.
func (c *Collector) Received(node int, class Class) uint64 {
	return c.recv[node*NumClasses+int(class)].Value()
}

// TotalReceived sums the class count over all nodes — the cumulative
// totals the health sampler snapshots.
func (c *Collector) TotalReceived(class Class) uint64 {
	var t uint64
	for i := int(class); i < len(c.recv); i += NumClasses {
		t += c.recv[i].Value()
	}
	return t
}

// RecordHealth appends one resilience telemetry sample.
func (c *Collector) RecordHealth(h HealthSample) { c.health = append(c.health, h) }

// Health returns the recorded telemetry samples in time order.
func (c *Collector) Health() []HealthSample { return c.health }

// ReceivedAll returns the count of class messages for every node.
func (c *Collector) ReceivedAll(class Class) []uint64 {
	n := c.NumNodes()
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = c.Received(i, class)
	}
	return out
}

// RecordLifetime stores one closed connection's lifetime in seconds —
// the churn the (re)configuration algorithms exist to manage.
func (c *Collector) RecordLifetime(seconds float64) {
	c.lifetimes = append(c.lifetimes, seconds)
}

// Lifetimes returns all recorded connection lifetimes (seconds).
func (c *Collector) Lifetimes() []float64 { return c.lifetimes }

// Record stores a completed request outcome.
func (c *Collector) Record(r Request) { c.requests = append(c.requests, r) }

// Requests returns all recorded request outcomes.
func (c *Collector) Requests() []Request { return c.requests }

// NumNodes reports the node capacity of the collector.
func (c *Collector) NumNodes() int { return len(c.recv) / NumClasses }
