package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Section is one layer's registration with the telemetry plane. The
// type parameters are owned by the embedding application: Src is the
// live per-replication source (the running simulation), Rep the
// per-replication record Collect fills, Sc the scenario/configuration,
// and Out the pooled cross-replication result Pool fills.
//
// All hooks are optional; a nil hook is skipped. Registration order is
// significant: Collect, Pool, Render and Stream walks visit sections in
// the order they were registered, which fixes both the report layout
// and the sink's point order.
type Section[Src, Sc, Rep, Out any] struct {
	// Name identifies the section in the registry manifest, the
	// checkpoint container and sink points. Must be unique.
	Name string

	// Collect harvests the section's measurements from a finished
	// replication into the per-replication record.
	Collect func(Src, Rep)

	// Pool aggregates the section across all replications of a scenario
	// into the pooled result (typically via stats.Summarize).
	Pool func(Sc, []Rep, Out)

	// Render writes the section's human-readable summary lines.
	Render func(io.Writer, Out)

	// Report writes the section's detailed stand-alone report (TSV
	// tables etc.), invoked individually via Registry.Report.
	Report func(io.Writer, Out) error

	// Stream emits the section's time-series points for one replication
	// to a sink. rep is the replication index (0-based).
	Stream func(sc Sc, rep int, r Rep, emit func(Point))
}

// Registry is an ordered collection of named sections. The zero value
// is ready to use. Registries are assembled once at init time and read
// concurrently afterwards; Register is not safe to race with the walks.
type Registry[Src, Sc, Rep, Out any] struct {
	sections []Section[Src, Sc, Rep, Out]
	index    map[string]int
}

// Register appends a section. It panics on an empty or duplicate name:
// both are programmer errors in the one-time registration block, not
// runtime conditions.
func (g *Registry[Src, Sc, Rep, Out]) Register(s Section[Src, Sc, Rep, Out]) {
	if s.Name == "" {
		panic("telemetry: Register with empty section name")
	}
	if _, dup := g.index[s.Name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate section %q", s.Name))
	}
	if g.index == nil {
		g.index = make(map[string]int)
	}
	g.index[s.Name] = len(g.sections)
	g.sections = append(g.sections, s)
}

// Names returns the section names in registration order.
func (g *Registry[Src, Sc, Rep, Out]) Names() []string {
	out := make([]string, len(g.sections))
	for i, s := range g.sections {
		out[i] = s.Name
	}
	return out
}

// Len returns the number of registered sections.
func (g *Registry[Src, Sc, Rep, Out]) Len() int { return len(g.sections) }

// Collect runs every section's Collect hook against one finished
// replication.
func (g *Registry[Src, Sc, Rep, Out]) Collect(src Src, rep Rep) {
	for _, s := range g.sections {
		if s.Collect != nil {
			s.Collect(src, rep)
		}
	}
}

// Pool runs every section's Pool hook over the finished replications.
func (g *Registry[Src, Sc, Rep, Out]) Pool(sc Sc, reps []Rep, out Out) {
	for _, s := range g.sections {
		if s.Pool != nil {
			s.Pool(sc, reps, out)
		}
	}
}

// Render runs every section's Render hook against the pooled result.
func (g *Registry[Src, Sc, Rep, Out]) Render(w io.Writer, out Out) {
	for _, s := range g.sections {
		if s.Render != nil {
			s.Render(w, out)
		}
	}
}

// Report runs the named section's detailed report hook. Sections
// without one are a no-op; an unknown name is an error.
func (g *Registry[Src, Sc, Rep, Out]) Report(w io.Writer, name string, out Out) error {
	i, ok := g.index[name]
	if !ok {
		return fmt.Errorf("telemetry: no section %q", name)
	}
	if s := g.sections[i]; s.Report != nil {
		return s.Report(w, out)
	}
	return nil
}

// Stream emits every section's time-series points for one replication.
// Within a replication, points appear in section registration order.
func (g *Registry[Src, Sc, Rep, Out]) Stream(sc Sc, rep int, r Rep, emit func(Point)) {
	for _, s := range g.sections {
		if s.Stream != nil {
			s.Stream(sc, rep, r, emit)
		}
	}
}

// manifest is the versioned wire form of the registry's shape, stored
// as a named checkpoint section so resume can detect a telemetry-plane
// drift between the writing and reading binaries.
type manifest struct {
	Version  int      `json:"version"`
	Sections []string `json:"sections"`
}

// manifestVersion bumps when the manifest encoding itself changes.
const manifestVersion = 1

// Manifest returns the registry's versioned JSON manifest: the section
// names in registration order.
func (g *Registry[Src, Sc, Rep, Out]) Manifest() []byte {
	b, err := json.Marshal(manifest{Version: manifestVersion, Sections: g.Names()})
	if err != nil {
		panic(err) // cannot fail: fixed struct of strings
	}
	return b
}

// CheckManifest verifies that a manifest written earlier (by Manifest)
// matches this registry, returning a descriptive error on drift.
func (g *Registry[Src, Sc, Rep, Out]) CheckManifest(b []byte) error {
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("telemetry manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("telemetry manifest version %d, want %d", m.Version, manifestVersion)
	}
	names := g.Names()
	if len(m.Sections) != len(names) {
		return fmt.Errorf("telemetry manifest has %d sections %v, registry has %d %v",
			len(m.Sections), m.Sections, len(names), names)
	}
	for i, n := range names {
		if m.Sections[i] != n {
			return fmt.Errorf("telemetry manifest section %d is %q, registry has %q", i, m.Sections[i], n)
		}
	}
	return nil
}
