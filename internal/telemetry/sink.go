package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// Point is one time-series sample emitted to a sink. Field order is
// the JSONL column order.
type Point struct {
	Rep     int     `json:"rep"`
	T       float64 `json:"t"`
	Section string  `json:"section"`
	Name    string  `json:"name"`
	Value   float64 `json:"value"`
}

// Sink receives time-series points as replications complete. Sinks are
// driven from a single goroutine after all replications have finished,
// in ascending replication order with sections in registration order,
// so output is deterministic regardless of worker scheduling.
type Sink interface {
	Emit(Point)
	// Close flushes the sink and reports the first write error
	// encountered, if any.
	Close() error
}

// JSONLSink streams points as JSON Lines. Writes are buffered; errors
// are latched and reported by Close.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // closed by Close when the target is a Closer we own
	err error
}

// NewJSONLSink wraps w in a buffered JSONL sink. If w is an io.Closer
// it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one point as a JSON line. The fixed-schema encoding is
// done with Fprintf rather than encoding/json to keep the per-point
// cost flat (section/name are interned labels, never user input
// needing escaping).
func (s *JSONLSink) Emit(p Point) {
	if s.err != nil {
		return
	}
	_, err := fmt.Fprintf(s.w, `{"rep":%d,"t":%g,"section":%q,"name":%q,"value":%g}`+"\n",
		p.Rep, p.T, p.Section, p.Name, p.Value)
	if err != nil {
		s.err = err
	}
}

// Close flushes buffered points, closes the underlying writer when
// owned, and returns the first error seen.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
	}
	return s.err
}
