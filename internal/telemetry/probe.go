// Package telemetry is the unified observability core: one
// registry-driven collection → aggregation → reporting pipeline shared
// by every layer of the reproduction (radio, routing, p2p servents,
// manet health, workload demand, fault resilience).
//
// The package has three parts:
//
//   - probe/recorder primitives (this file): typed counters, gauges,
//     bounded time-series and a labeled event ledger, all with
//     zero-allocation record paths (BenchmarkTelemetryProbe pins this);
//   - the Collector (collector.go): the paper's measurement quantities,
//     absorbed from the former internal/metrics package and rebuilt on
//     the probe primitives;
//   - the section Registry (registry.go) and Sink (sink.go): each layer
//     registers one named section, and per-replication collection,
//     cross-replication pooling and report rendering are driven
//     generically off the registry instead of per-subsystem code.
package telemetry

// Counter is a monotonically increasing event count. The zero value is
// ready to use; Inc/Add never allocate.
type Counter uint64

// Inc counts one event.
func (c *Counter) Inc() { *c++ }

// Add counts n events at once.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Gauge is a last-value-wins measurement. The zero value is ready to
// use; Set never allocates.
type Gauge float64

// Set records the current value.
func (g *Gauge) Set(v float64) { *g = Gauge(v) }

// Value returns the last recorded value.
func (g Gauge) Value() float64 { return float64(g) }

// Series is a bounded time series: (t, v) points appended in time order
// into storage allocated once at construction. Appends past the bound
// are counted, not stored, so a runaway producer degrades telemetry
// instead of memory. Append on a non-full series is zero-allocation.
type Series struct {
	ts, vs  []float64
	dropped uint64
}

// NewSeries allocates a series bounded at max points (min 1).
func NewSeries(max int) *Series {
	if max < 1 {
		max = 1
	}
	return &Series{ts: make([]float64, 0, max), vs: make([]float64, 0, max)}
}

// Append records one point, or counts it as dropped when the series is
// at its bound.
func (s *Series) Append(t, v float64) {
	if len(s.ts) == cap(s.ts) {
		s.dropped++
		return
	}
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// Len returns the number of stored points.
func (s *Series) Len() int { return len(s.ts) }

// At returns the i-th stored point.
func (s *Series) At(i int) (t, v float64) { return s.ts[i], s.vs[i] }

// Values returns the stored values in append order. The slice aliases
// the series' storage; callers must not mutate it.
func (s *Series) Values() []float64 { return s.vs }

// Dropped counts points discarded at the bound.
func (s *Series) Dropped() uint64 { return s.dropped }

// Reset empties the series, keeping its storage and bound.
func (s *Series) Reset() {
	s.ts = s.ts[:0]
	s.vs = s.vs[:0]
	s.dropped = 0
}

// Ledger is a labeled event ledger: a fixed set of named counters whose
// labels are interned once (Define) so the record path (Inc/Add by id)
// is integer-indexed and zero-allocation.
type Ledger struct {
	names  []string
	counts []uint64
	index  map[string]int
}

// Define interns a label and returns its id; defining the same label
// twice returns the same id.
func (l *Ledger) Define(name string) int {
	if id, ok := l.index[name]; ok {
		return id
	}
	if l.index == nil {
		l.index = make(map[string]int)
	}
	id := len(l.names)
	l.index[name] = id
	l.names = append(l.names, name)
	l.counts = append(l.counts, 0)
	return id
}

// Inc counts one event under the label id.
func (l *Ledger) Inc(id int) { l.counts[id]++ }

// Add counts n events under the label id.
func (l *Ledger) Add(id int, n uint64) { l.counts[id] += n }

// Count returns the label id's count.
func (l *Ledger) Count(id int) uint64 { return l.counts[id] }

// Names returns the defined labels in definition order. The slice
// aliases the ledger's storage; callers must not mutate it.
func (l *Ledger) Names() []string { return l.names }
