package metrics

import (
	"testing"

	"manetp2p/internal/sim"
)

func TestRecvCounts(t *testing.T) {
	c := NewCollector(3)
	c.Recv(0, Connect)
	c.Recv(0, Connect)
	c.Recv(1, Ping)
	c.Recv(2, Query)
	if got := c.Received(0, Connect); got != 2 {
		t.Errorf("Received(0, Connect) = %d, want 2", got)
	}
	if got := c.Received(0, Ping); got != 0 {
		t.Errorf("Received(0, Ping) = %d, want 0", got)
	}
	all := c.ReceivedAll(Connect)
	if len(all) != 3 || all[0] != 2 || all[1] != 0 {
		t.Errorf("ReceivedAll = %v", all)
	}
	if c.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
}

func TestRequestsRecorded(t *testing.T) {
	c := NewCollector(1)
	c.Record(Request{Node: 0, File: 3, Answers: 2, MinP2P: 1, MinAdhoc: 4, Found: true})
	c.Record(Request{Node: 0, File: 7})
	reqs := c.Requests()
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2", len(reqs))
	}
	if reqs[0].File != 3 || !reqs[0].Found || reqs[1].Found {
		t.Errorf("requests = %+v", reqs)
	}
}

func TestTimeBucketedSeries(t *testing.T) {
	c := NewCollector(2)
	var now sim.Time
	c.SetClock(func() sim.Time { return now }, 10*sim.Second)
	c.Recv(0, Connect)
	now = 5 * sim.Second
	c.Recv(1, Connect)
	now = 25 * sim.Second
	c.Recv(0, Connect)
	c.Recv(0, Ping)
	got := c.Series(Connect)
	want := []uint64{2, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("Series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
	if p := c.Series(Ping); len(p) != 3 || p[2] != 1 {
		t.Errorf("ping series = %v", p)
	}
	// Totals unaffected by bucketing.
	if c.Received(0, Connect) != 2 {
		t.Error("totals broken under bucketing")
	}
}

func TestSeriesNilWithoutClock(t *testing.T) {
	c := NewCollector(1)
	c.Recv(0, Connect)
	if c.Series(Connect) != nil {
		t.Error("Series non-nil without SetClock")
	}
}

func TestSetClockValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetClock(nil) did not panic")
		}
	}()
	NewCollector(1).SetClock(nil, sim.Second)
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Connect: "connect", Ping: "ping", Pong: "pong",
		Query: "query", QueryHit: "queryhit", Bye: "bye", Transfer: "transfer",
	}
	for class, name := range want {
		if class.String() != name {
			t.Errorf("String(%d) = %q, want %q", int(class), class.String(), name)
		}
	}
	if NumClasses != len(want) {
		t.Errorf("NumClasses = %d, want %d", NumClasses, len(want))
	}
}
