// Package conformance is the executable contract behind netif.Protocol:
// a reusable suite of behavioral tests every routing substrate must
// pass, run from a small per-package test file (see conformance_test.go
// in aodv, dsr, dsdv and flood). The suite pins the semantics the p2p
// overlay relies on but the interface alone cannot express —
// controlled-broadcast TTL reach, asynchronous self-delivery, HopsTo
// never triggering discovery, OnSendFailed firing exactly once per
// abandoned payload, hooks that may reenter the router, and duplicate
// caches that stay bounded under a broadcast storm.
package conformance

import (
	"testing"

	"manetp2p/internal/geom"
	"manetp2p/internal/netif"
	"manetp2p/internal/radio"
	"manetp2p/internal/sim"
)

// Router is what the suite drives: the netif.Protocol surface plus the
// radio receive path and the duplicate-cache observables every router
// inherits from route.Core.
type Router interface {
	netif.Protocol
	HandleFrame(f radio.Frame)
	SeenEntries() int
	SeenBound() int
}

// Factory describes one routing substrate to the suite.
type Factory struct {
	// Name labels failure output; use the package name.
	Name string
	// New builds node id's router on the shared simulator and medium.
	// Configure small duplicate-cache caps here if the default storm
	// test is too slow for the protocol.
	New func(id int, s *sim.Sim, med *radio.Medium) Router
	// SenderDownFails selects how the abandoned-payload test provokes a
	// failure: true means a Send from a down node signals OnSendFailed
	// (flood's semantics); false means a Send to an unreachable
	// destination is signalled once discovery or settling gives up
	// (aodv, dsr, dsdv).
	SenderDownFails bool
	// WarmUp is simulated time to run before the suite starts sending,
	// so proactive protocols can advertise routes. Zero for reactive
	// protocols.
	WarmUp sim.Time
	// FailDeadline bounds how long the substrate may take to signal an
	// abandoned payload; 0 defaults to 120 s (covers DSDV settling and
	// AODV/DSR full retry schedules with wide margin).
	FailDeadline sim.Time
}

// net is one assembled test network: a simulator, a medium, and a
// router per position with its deliveries recorded.
type net struct {
	s       *sim.Sim
	med     *radio.Medium
	routers []Router
	unicast [][]netif.Delivery
	bcasts  [][]netif.Delivery
}

// newNet builds the network. Positions closer than 10 m are in radio
// range of each other; frames take 2 ms per hop.
func newNet(t *testing.T, f Factory, seed int64, pts []geom.Point) *net {
	t.Helper()
	s := sim.New(seed)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: len(pts),
		Latency:  2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &net{
		s:       s,
		med:     med,
		routers: make([]Router, len(pts)),
		unicast: make([][]netif.Delivery, len(pts)),
		bcasts:  make([][]netif.Delivery, len(pts)),
	}
	for i, p := range pts {
		i := i
		r := f.New(i, s, med)
		if r.ID() != i {
			t.Fatalf("%s: NewRouter(%d).ID() = %d", f.Name, i, r.ID())
		}
		r.OnUnicast(func(d netif.Delivery) { n.unicast[i] = append(n.unicast[i], d) })
		r.OnBroadcast(func(d netif.Delivery) { n.bcasts[i] = append(n.bcasts[i], d) })
		med.Join(i, p, r.HandleFrame)
		n.routers[i] = r
	}
	if f.WarmUp > 0 {
		s.Run(f.WarmUp)
	}
	return n
}

// line places n nodes 8 m apart on a row: each node reaches exactly its
// neighbors, so hop counts equal index distance.
func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 5 + 8*float64(i), Y: 50}
	}
	return pts
}

// clique places n nodes within mutual range.
func clique(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 50 + float64(i%3), Y: 50 + float64(i/3)}
	}
	return pts
}

// Run executes the full conformance suite against one substrate.
func Run(t *testing.T, f Factory) {
	t.Run("BroadcastTTL", func(t *testing.T) { testBroadcastTTL(t, f) })
	t.Run("SelfDelivery", func(t *testing.T) { testSelfDelivery(t, f) })
	t.Run("HopsToNoDiscovery", func(t *testing.T) { testHopsToNoDiscovery(t, f) })
	t.Run("SendFailedOnce", func(t *testing.T) { testSendFailedOnce(t, f) })
	t.Run("HookReentrancy", func(t *testing.T) { testHookReentrancy(t, f) })
	t.Run("DupCacheBounded", func(t *testing.T) { testDupCacheBounded(t, f) })
}

// testBroadcastTTL pins the controlled-broadcast reach contract: a
// Broadcast with ttl t reaches every node within t hops exactly once,
// with Hops equal to the chain distance, and nothing beyond — and the
// origin never delivers its own broadcast to itself.
func testBroadcastTTL(t *testing.T, f Factory) {
	n := newNet(t, f, 1, line(6))
	base := make([]int, 6)
	for i := range base {
		base[i] = len(n.bcasts[i]) // proactive warm-up traffic, if any
	}
	n.routers[0].Broadcast(2, 10, netif.TestMsg(201))
	n.s.Run(n.s.Now() + 5*sim.Second)
	for i := 1; i <= 2; i++ {
		got := n.bcasts[i][base[i]:]
		if len(got) != 1 || got[0].Hops != i || got[0].From != 0 {
			t.Errorf("node %d broadcast deliveries = %+v, want one from 0 at %d hops", i, got, i)
		}
	}
	for i := 3; i < 6; i++ {
		if got := n.bcasts[i][base[i]:]; len(got) != 0 {
			t.Errorf("node %d beyond ttl=2 reached: %+v", i, got)
		}
	}
	if got := n.bcasts[0][base[0]:]; len(got) != 0 {
		t.Errorf("origin delivered its own broadcast: %+v", got)
	}

	for i := range base {
		base[i] = len(n.bcasts[i])
	}
	n.routers[0].Broadcast(1, 10, netif.TestMsg(101))
	n.s.Run(n.s.Now() + 5*sim.Second)
	if got := n.bcasts[1][base[1]:]; len(got) != 1 || got[0].Hops != 1 {
		t.Errorf("ttl=1 neighbor deliveries = %+v, want one at 1 hop", got)
	}
	for i := 2; i < 6; i++ {
		if got := n.bcasts[i][base[i]:]; len(got) != 0 {
			t.Errorf("ttl=1 broadcast relayed to node %d: %+v", i, got)
		}
	}
}

// testSelfDelivery pins that a Send addressed to the local node arrives
// like any other delivery: asynchronously (never from inside Send), as
// a unicast from self at zero hops, exactly once.
func testSelfDelivery(t *testing.T, f Factory) {
	n := newNet(t, f, 2, line(2))
	before := len(n.unicast[0])
	n.routers[0].Send(0, 10, netif.TestMsg(7))
	if got := len(n.unicast[0]); got != before {
		t.Fatal("self delivery dispatched synchronously from inside Send")
	}
	n.s.Run(n.s.Now() + sim.Second)
	got := n.unicast[0][before:]
	if len(got) != 1 || got[0].From != 0 || got[0].Hops != 0 {
		t.Fatalf("self deliveries = %+v, want one from 0 at 0 hops", got)
	}
}

// testHopsToNoDiscovery pins that HopsTo is a passive table lookup: it
// reports no estimate on a freshly built node, changes no counter, and
// never starts a route discovery.
func testHopsToNoDiscovery(t *testing.T, f Factory) {
	s := sim.New(3)
	med, err := radio.NewMedium(s, radio.Config{
		Arena:    geom.Rect{W: 200, H: 200},
		Range:    10,
		NumNodes: 3,
		Latency:  2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Joined but never run: no traffic has populated any table.
	var routers []Router
	for i, p := range line(3) {
		r := f.New(i, s, med)
		med.Join(i, p, r.HandleFrame)
		routers = append(routers, r)
	}
	r0 := routers[0]
	before := r0.Stats()
	if h, ok := r0.HopsTo(2); ok {
		t.Errorf("fresh node has a distance estimate: (%d, true)", h)
	}
	if after := r0.Stats(); after != before {
		t.Errorf("HopsTo changed counters: %+v -> %+v", before, after)
	}
	s.Run(5 * sim.Second)
	if got := r0.Stats().Discoveries; got != 0 {
		t.Errorf("HopsTo triggered %d route discoveries", got)
	}
}

// testSendFailedOnce pins the abandoned-payload contract: a payload
// that cannot be delivered is reported through OnSendFailed exactly
// once, with the destination and payload the caller passed, and counted
// once in SendFailed.
func testSendFailedOnce(t *testing.T, f Factory) {
	deadline := f.FailDeadline
	if deadline <= 0 {
		deadline = 120 * sim.Second
	}
	// Two nodes out of range of each other.
	pts := []geom.Point{{X: 10, Y: 50}, {X: 150, Y: 50}}
	n := newNet(t, f, 4, pts)
	type failure struct {
		dst     int
		payload netif.Msg
	}
	doomed := netif.TestMsg(13)
	var fails []failure
	n.routers[0].OnSendFailed(func(dst int, payload netif.Msg) {
		fails = append(fails, failure{dst, payload})
	})
	if f.SenderDownFails {
		n.med.Leave(0)
	}
	n.routers[0].Send(1, 10, doomed)
	n.s.Run(n.s.Now() + deadline)
	if len(fails) != 1 {
		t.Fatalf("OnSendFailed fired %d times, want exactly 1 (%+v)", len(fails), fails)
	}
	if fails[0].dst != 1 || fails[0].payload != doomed {
		t.Errorf("failure = %+v, want dst=1 payload=%+v", fails[0], doomed)
	}
	if got := n.routers[0].Stats().SendFailed; got != 1 {
		t.Errorf("SendFailed = %d, want 1", got)
	}
	if len(n.unicast[1]) != 0 {
		t.Error("abandoned payload was also delivered")
	}
}

// testHookReentrancy pins that delivery hooks may call back into the
// router: an OnUnicast handler that immediately Sends a reply must not
// corrupt dispatch, and the reply must arrive.
func testHookReentrancy(t *testing.T, f Factory) {
	n := newNet(t, f, 5, line(2))
	ping, pong := netif.TestMsg(1), netif.TestMsg(2)
	replied := false
	n.routers[1].OnUnicast(func(d netif.Delivery) {
		n.unicast[1] = append(n.unicast[1], d)
		if !replied { // reply to the first arrival only
			replied = true
			n.routers[1].Send(d.From, 10, pong)
		}
	})
	n.routers[0].Send(1, 10, ping)
	n.s.Run(n.s.Now() + 60*sim.Second)
	if len(n.unicast[1]) != 1 || n.unicast[1][0].Payload != ping {
		t.Fatalf("request deliveries = %+v", n.unicast[1])
	}
	if len(n.unicast[0]) != 1 || n.unicast[0][0].Payload != pong {
		t.Fatalf("reply sent from inside the delivery hook never arrived: %+v", n.unicast[0])
	}
}

// testDupCacheBounded pins satellite invariant of the shared DupCache:
// after a 10k-broadcast storm from one origin, every node's duplicate
// caches hold no more than their configured hard caps, and the storm
// was actually delivered (the cap evicts history, not live traffic).
func testDupCacheBounded(t *testing.T, f Factory) {
	const storm = 10_000
	n := newNet(t, f, 6, clique(4))
	bound := n.routers[0].SeenBound()
	if bound <= 0 {
		t.Fatalf("SeenBound() = %d, want positive", bound)
	}
	base := len(n.bcasts[1])
	for i := 0; i < storm; i++ {
		n.routers[0].Broadcast(2, 8, netif.TestMsg(uint32(i)))
		// Drain in slices so in-flight frames do not accumulate without
		// bound inside the medium.
		if i%500 == 499 {
			n.s.Run(n.s.Now() + 100*sim.Millisecond)
		}
	}
	n.s.Run(n.s.Now() + 5*sim.Second)
	for i, r := range n.routers {
		if got := r.SeenEntries(); got > r.SeenBound() {
			t.Errorf("node %d duplicate caches hold %d entries, bound %d", i, got, r.SeenBound())
		}
	}
	if got := len(n.bcasts[1]) - base; got != storm {
		t.Errorf("neighbor delivered %d of %d storm broadcasts", got, storm)
	}
}
