package netif

// MsgKind discriminates the overlay message union. The kinds mirror the
// paper's protocol vocabulary one to one: the establishment phase
// (discover/reply for the basic algorithm, solicit/offer/accept/confirm/
// reject for the random and regular variants, capture/enslave for the
// hybrid master election), the keepalive pair, the Gnutella-style
// query/queryhit search, the bye teardown notice, and the optional
// download extension's fetch/chunk transfer pair.
type MsgKind uint8

const (
	// MsgNone is the zero value: no message. It is never sent; seeing it
	// in a frame or a size/class table lookup is a programming error.
	MsgNone MsgKind = iota
	// MsgDiscover is the basic algorithm's connection-discovery broadcast.
	MsgDiscover
	// MsgReply answers a discover: the sender is willing to connect.
	MsgReply
	// MsgSolicit asks for connection offers. Rand marks the random
	// algorithm's long-range solicitation; MasterOnly restricts answers
	// to hybrid masters.
	MsgSolicit
	// MsgOffer answers a solicit with an offer to connect. Hops carries
	// the broadcast hop distance the solicit traveled.
	MsgOffer
	// MsgAccept opens the two-way handshake on a chosen offer.
	MsgAccept
	// MsgConfirm completes the handshake begun by an accept.
	MsgConfirm
	// MsgReject declines an accept.
	MsgReject
	// MsgCapture is the hybrid algorithm's master-election probe; Reply
	// distinguishes the unicast answer from the broadcast probe.
	MsgCapture
	// MsgEnslaveReq asks a better-qualified master to adopt the sender.
	MsgEnslaveReq
	// MsgEnslaveAccept grants an enslave request.
	MsgEnslaveAccept
	// MsgEnslaveConfirm completes the enslave handshake.
	MsgEnslaveConfirm
	// MsgEnslaveReject declines an enslave request.
	MsgEnslaveReject
	// MsgPing is a keepalive probe; Seq matches it to its pong.
	MsgPing
	// MsgPong answers a ping, echoing its Seq.
	MsgPong
	// MsgBye is a best-effort teardown notice for an overlay connection.
	MsgBye
	// MsgQuery is a file search flooded (or random-walked, when Walk is
	// set) over the overlay. Seq carries the query ID, Hops the overlay
	// hop count so far.
	MsgQuery
	// MsgQueryHit answers a query: Holder has File. Seq echoes the query
	// ID, Hops the overlay distance from the holder.
	MsgQueryHit
	// MsgFetchReq asks the holder for one chunk of a file.
	MsgFetchReq
	// MsgChunk delivers one chunk; Chunks tells the fetcher the total.
	MsgChunk
	// MsgTest is reserved for tests and the netif conformance suite; the
	// overlay never sends it and assigns it no size or class.
	MsgTest
	// NumMsgKinds bounds kind-indexed tables.
	NumMsgKinds int = iota
)

// Msg is the overlay message: a compact value-typed tagged union of
// every kind's fields. It crosses the netif boundary by value — no
// interface boxing, no per-hop heap allocation — and is comparable, so
// tests can assert on whole messages. Only the fields of the active
// Kind are meaningful; the rest stay zero.
//
// Field sharing across kinds: Seq carries the ping/pong sequence
// number, the query ID of query/queryhit, and the tag of MsgTest; Hops
// carries the offer's broadcast hop distance and the overlay hop count
// of query/queryhit.
type Msg struct {
	Kind MsgKind

	Rand       bool // solicit/offer: random-algorithm long link wanted
	MasterOnly bool // solicit/offer: only hybrid masters may answer
	Master     bool // accept/confirm: connecting as master
	Reply      bool // capture: unicast answer, not broadcast probe
	Walk       bool // query: random walk instead of flood

	Seq       uint32  // ping/pong seq; query/queryhit ID; test tag
	Origin    int     // query: originating servent
	File      int     // query/queryhit/fetchreq/chunk: file rank
	TTL       int     // query: remaining overlay hops
	Hops      int     // offer: bcast hops; query/queryhit: overlay hops
	Holder    int     // queryhit: node holding File
	Chunk     int     // fetchreq/chunk: chunk index
	Chunks    int     // chunk: total chunks in the file
	Qualifier float64 // capture/enslavereq: hybrid master qualifier
}

// TestMsg returns a tagged MsgTest value for tests and the conformance
// suite, which need distinguishable payloads without overlay semantics.
func TestMsg(tag uint32) Msg { return Msg{Kind: MsgTest, Seq: tag} }
