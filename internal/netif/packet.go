package netif

// PacketKind discriminates the router frame union: what a routing
// protocol actually puts on the air. Control kinds are shared across
// protocols where the shape coincides (an AODV RREQ and a DSR RREQ are
// both PktRREQ; the protocol owning the Medium decides the semantics),
// which keeps the union small and the per-hop path allocation-free.
type PacketKind uint8

const (
	// PktNone is the zero value: no packet. Seeing it on the air is a
	// programming error.
	PktNone PacketKind = iota
	// PktBcast is the controlled-broadcast relay frame (route.Bcaster):
	// an overlay message flooded with duplicate suppression and a TTL.
	PktBcast
	// PktData is a unicast data frame carrying an overlay message.
	PktData
	// PktRREQ is a route request (AODV expanding ring, DSR source
	// route collection — Path accumulates the traversed route).
	PktRREQ
	// PktRREP is a route reply.
	PktRREP
	// PktRERR is a route error reporting broken links or lost
	// destinations.
	PktRERR
	// PktUpdate is a DSDV full-table advertisement.
	PktUpdate
	// NumPacketKinds bounds kind-indexed tables.
	NumPacketKinds int = iota
)

// Unreachable names one lost destination in a PktRERR, with the
// sender's last known sequence number for it.
type Unreachable struct {
	Dst int
	Seq uint32
}

// AdvEntry is one row of a PktUpdate table advertisement.
type AdvEntry struct {
	Dst    int
	Metric int
	Seq    uint32
}

// Packet is the router frame: a value-typed tagged union of every
// protocol's control and data frames. radio.Frame carries it by value,
// so relaying a frame allocates nothing. Only the fields of the active
// Kind are meaningful.
//
// Field use by kind:
//
//	PktBcast:  Origin, OriginSeq, ID, HopCount, TTL, Size, Path (DSR
//	           route accumulation), Msg
//	PktData:   Origin, Dst, TTL|Pos+Path, HopCount, Size, Msg
//	PktRREQ:   Origin, Dst, ID|OriginSeq+DstSeq, HopCount, TTL, Path
//	PktRREP:   Origin, Dst, DstSeq, HopCount, Path, Pos
//	PktRERR:   Unreachable (AODV) or Origin, BadA, BadB, Path, Pos (DSR)
//	PktUpdate: Origin, Entries
type Packet struct {
	Kind PacketKind

	Origin    int    // originating node
	Dst       int    // unicast destination / requested destination
	ID        uint32 // per-origin frame id (bcast, rreq)
	OriginSeq uint32 // origin's sequence number
	DstSeq    uint32 // destination sequence number (AODV)
	HopCount  int    // hops traveled so far
	TTL       int    // remaining hops
	Pos       int    // source-route cursor (DSR)
	Size      int    // nominal payload size in bytes
	BadA      int    // broken link endpoints (DSR RERR)
	BadB      int

	Path        []int         // source route / traversed route
	Unreachable []Unreachable // lost destinations (AODV RERR)
	Entries     []AdvEntry    // table advertisement rows (DSDV)

	Msg Msg // overlay payload (bcast, data)
}
