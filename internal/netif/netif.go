// Package netif defines the network-layer interface between the p2p
// overlay and the routing protocols beneath it. The paper runs its
// overlay over AODV, chosen after a companion routing-protocol study
// (Oliveira/Siqueira/Loureiro, cited as [13]); this interface lets the
// reproduction swap routing substrates — AODV, DSR, or plain flooding —
// and repeat that comparison under the same overlay workload.
package netif

// Delivery is an upper-layer arrival: who originated the message, how
// many ad-hoc hops it traveled, and the payload.
type Delivery struct {
	From    int
	Hops    int
	Payload any
}

// Protocol is the per-node network layer the overlay talks to.
type Protocol interface {
	// ID returns the node this protocol instance belongs to.
	ID() int
	// Send routes an application payload of the given nominal size to
	// dst, discovering a route on demand if the protocol needs one.
	Send(dst, size int, payload any)
	// Broadcast floods the payload to every node within ttl ad-hoc hops.
	Broadcast(ttl, size int, payload any)
	// HopsTo reports the protocol's current distance estimate to dst in
	// ad-hoc hops, if it has one. It must not trigger discovery.
	HopsTo(dst int) (int, bool)
	// OnUnicast installs the hook for data addressed to this node.
	OnUnicast(fn func(Delivery))
	// OnBroadcast installs the hook for flood deliveries.
	OnBroadcast(fn func(Delivery))
	// OnSendFailed installs the hook invoked when a payload is
	// abandoned undeliverable.
	OnSendFailed(fn func(dst int, payload any))
}
