// Package netif defines the network-layer interface between the p2p
// overlay and the routing protocols beneath it. The paper runs its
// overlay over AODV, chosen after a companion routing-protocol study
// (Oliveira/Siqueira/Loureiro, cited as [13]); this interface lets the
// reproduction swap routing substrates — AODV, DSR, or plain flooding —
// and repeat that comparison under the same overlay workload.
package netif

// Delivery is an upper-layer arrival: who originated the message, how
// many ad-hoc hops it traveled, and the payload.
type Delivery struct {
	From    int
	Hops    int
	Payload Msg
}

// Stats is the unified routing-effort counter block every Protocol
// implements — the contract that lets a cross-protocol sweep compare
// what the routing layer spent, not just what the overlay received.
// Counters are per node and cumulative over a replication.
//
// "Control" frames are the protocol's own signalling (RREQ/RREP/RERR,
// DSDV table advertisements); the paper's controlled broadcast is
// counted separately because it carries overlay payloads. "Orig" counts
// frames this node put on the air first; "Relayed" counts
// re-transmissions on behalf of other nodes. DataSent counts every
// locally originated unicast attempt, including ones later buffered and
// abandoned, so SendFailed ≤ DataSent holds per node.
type Stats struct {
	CtrlOrig       uint64 // protocol control frames originated
	CtrlRelayed    uint64 // protocol control frames re-forwarded
	BcastOrig      uint64 // controlled broadcasts originated
	BcastRelayed   uint64 // controlled broadcasts re-forwarded
	DataSent       uint64 // locally originated data packets (attempts)
	DataForwarded  uint64 // transit data packets relayed
	DataDropped    uint64 // data abandoned: no route, TTL exhausted, overflow
	Delivered      uint64 // upper-layer deliveries dispatched (unicast + broadcast)
	Discoveries    uint64 // route discoveries started (0 for proactive protocols)
	DiscoverFailed uint64 // discoveries abandoned after all retries
	SendFailed     uint64 // payloads reported undeliverable to the overlay
	DupHits        uint64 // duplicate-cache suppressions
}

// Frames returns the total frames this node put on the air, origination
// and relay combined — the denominator of air-time effort comparisons.
func (s Stats) Frames() uint64 {
	return s.CtrlOrig + s.CtrlRelayed + s.BcastOrig + s.BcastRelayed +
		s.DataSent + s.DataForwarded
}

// Add accumulates other into s, for network-wide totals.
func (s *Stats) Add(other Stats) {
	s.CtrlOrig += other.CtrlOrig
	s.CtrlRelayed += other.CtrlRelayed
	s.BcastOrig += other.BcastOrig
	s.BcastRelayed += other.BcastRelayed
	s.DataSent += other.DataSent
	s.DataForwarded += other.DataForwarded
	s.DataDropped += other.DataDropped
	s.Delivered += other.Delivered
	s.Discoveries += other.Discoveries
	s.DiscoverFailed += other.DiscoverFailed
	s.SendFailed += other.SendFailed
	s.DupHits += other.DupHits
}

// Protocol is the per-node network layer the overlay talks to.
type Protocol interface {
	// ID returns the node this protocol instance belongs to.
	ID() int
	// Send routes an application payload of the given nominal size to
	// dst, discovering a route on demand if the protocol needs one.
	Send(dst, size int, payload Msg)
	// Broadcast floods the payload to every node within ttl ad-hoc hops.
	Broadcast(ttl, size int, payload Msg)
	// HopsTo reports the protocol's current distance estimate to dst in
	// ad-hoc hops, if it has one. It must not trigger discovery.
	HopsTo(dst int) (int, bool)
	// OnUnicast installs the hook for data addressed to this node.
	OnUnicast(fn func(Delivery))
	// OnBroadcast installs the hook for flood deliveries.
	OnBroadcast(fn func(Delivery))
	// OnSendFailed installs the hook invoked when a payload is
	// abandoned undeliverable.
	OnSendFailed(fn func(dst int, payload Msg))
	// Stats returns the routing-effort counters accumulated so far.
	Stats() Stats
}
