package manetp2p

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestRatiosFiniteOnDegenerateResults is the regression test for the
// report-layer division guards: a replication set where nothing was
// delivered, sent, offered, or churned must yield 0 for every derived
// ratio — never NaN or ±Inf — both in the accessors and in the
// rendered reports.
func TestRatiosFiniteOnDegenerateResults(t *testing.T) {
	rt := &RoutingStats{Protocol: "aodv"} // all counters zero
	if got := rt.ControlPerDelivered(); got != 0 {
		t.Errorf("ControlPerDelivered with zero delivered = %v, want 0", got)
	}
	if got := rt.SendFailRate(); got != 0 {
		t.Errorf("SendFailRate with zero sent = %v, want 0", got)
	}
	var nilStats *RoutingStats
	if nilStats.ControlPerDelivered() != 0 || nilStats.SendFailRate() != 0 {
		t.Error("nil RoutingStats ratios not 0")
	}

	r := &Result{
		Scenario: DefaultScenario(10, Regular),
		Routing:  rt,
		Workload: &WorkloadStats{}, // zero offered, zero churn
	}
	for _, v := range []float64{r.Workload.SuccessRate, r.Workload.RepairPerChurn} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("degenerate workload ratio is %v, want finite", v)
		}
	}

	var buf bytes.Buffer
	WriteSummary(&buf, r)
	if err := WriteWorkload(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("degenerate result renders %s:\n%s", bad, out)
		}
	}
}
