package manetp2p

// One benchmark per table and figure of the paper (§7), plus ablation
// benches for the design choices DESIGN.md calls out. The figure
// benches run scaled-down replications (1 rep, shortened horizon) so
// `go test -bench=.` completes in minutes; cmd/repro regenerates the
// full-fidelity numbers. Each bench reports the figure's headline
// quantity via b.ReportMetric, so the paper-shape comparison is visible
// directly in the bench output.

import (
	"io"
	"testing"

	"manetp2p/internal/aodv"
	"manetp2p/internal/geom"
	"manetp2p/internal/manet"
	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
	"manetp2p/internal/telemetry"
)

// benchScenario is the scaled-down figure workload: one replication of
// the paper's Table 2 setup.
func benchScenario(nodes int, alg Algorithm, duration Duration) Scenario {
	sc := DefaultScenario(nodes, alg)
	sc.Replications = 1
	sc.Duration = duration
	sc.SnapshotEvery = 0
	return sc
}

func runScenario(b *testing.B, sc Scenario) *Result {
	b.Helper()
	res, err := Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- Tables ---

func BenchmarkTable1Topologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WriteTable1(io.Discard)
	}
}

func BenchmarkTable2Parameters(b *testing.B) {
	sc := DefaultScenario(50, Regular)
	for i := 0; i < b.N; i++ {
		WriteTable2(io.Discard, sc)
	}
}

// --- Figures 5-6: distance to the file and answers per request ---

func benchFileCurves(b *testing.B, nodes int, duration Duration) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var dist, answers float64
		for _, alg := range Algorithms() {
			sc := benchScenario(nodes, alg, duration)
			res := runScenario(b, sc)
			fc := res.PerFile[0]
			dist += fc.Distance.Mean
			answers += fc.Answers.Mean
		}
		b.ReportMetric(dist/4, "dist_file1")
		b.ReportMetric(answers/4, "answers_file1")
	}
}

func BenchmarkFig5QueryDistance50(b *testing.B)  { benchFileCurves(b, 50, 900*sim.Second) }
func BenchmarkFig6QueryDistance150(b *testing.B) { benchFileCurves(b, 150, 300*sim.Second) }

// --- Figures 7-12: per-node message series ---

func benchNodeSeries(b *testing.B, nodes int, duration Duration, class telemetry.Class) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		perAlg := map[string]float64{}
		for _, alg := range Algorithms() {
			sc := benchScenario(nodes, alg, duration)
			res := runScenario(b, sc)
			perAlg[alg.String()] = res.Totals[class].Mean
		}
		b.ReportMetric(perAlg["Basic"], "basic_msgs/node")
		b.ReportMetric(perAlg["Regular"], "regular_msgs/node")
		b.ReportMetric(perAlg["Random"], "random_msgs/node")
		b.ReportMetric(perAlg["Hybrid"], "hybrid_msgs/node")
	}
}

func BenchmarkFig7Connect50(b *testing.B) {
	benchNodeSeries(b, 50, 900*sim.Second, telemetry.Connect)
}

func BenchmarkFig8Connect150(b *testing.B) {
	benchNodeSeries(b, 150, 300*sim.Second, telemetry.Connect)
}

func BenchmarkFig9Ping50(b *testing.B) {
	benchNodeSeries(b, 50, 900*sim.Second, telemetry.Ping)
}

func BenchmarkFig10Ping150(b *testing.B) {
	benchNodeSeries(b, 150, 300*sim.Second, telemetry.Ping)
}

func BenchmarkFig11Query50(b *testing.B) {
	benchNodeSeries(b, 50, 900*sim.Second, telemetry.Query)
}

func BenchmarkFig12Query150(b *testing.B) {
	benchNodeSeries(b, 150, 300*sim.Second, telemetry.Query)
}

// --- Ablations ---

// BenchmarkAblationDupCache quantifies the paper's controlled-broadcast
// modification: the same Basic workload with and without the duplicate
// cache, comparing radio receive traffic.
func BenchmarkAblationDupCache(b *testing.B) {
	run := func(disable bool) float64 {
		cfg := manet.DefaultConfig(50, p2p.Basic)
		cfg.Seed = 11
		cfg.AODV = aodv.Config{DisableBcastDupCache: disable}
		cfg.NoQueries = true
		net, err := manet.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(600 * sim.Second)
		var rx float64
		for i := 0; i < cfg.NumNodes; i++ {
			rx += float64(net.Medium.Stats(i).RxFrames)
		}
		return rx / float64(cfg.NumNodes)
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		b.ReportMetric(with, "rx/node_cached")
		b.ReportMetric(without, "rx/node_naive")
		b.ReportMetric(without/with, "storm_factor")
	}
}

// BenchmarkAblationExpandingRing isolates improvement #1 of §6.1.3: the
// progressive discovery radius versus Basic's fixed NHOPS, holding the
// retry timer equal.
func BenchmarkAblationExpandingRing(b *testing.B) {
	run := func(alg p2p.Algorithm) float64 {
		cfg := manet.DefaultConfig(50, alg)
		cfg.Seed = 12
		cfg.NoQueries = true
		// Disable Regular's backoff so only the radius progression
		// differs: MaxTimer equal to the fixed timer.
		cfg.Params.TimerBasic = 60 * sim.Second
		cfg.Params.TimerInitial = 60 * sim.Second
		cfg.Params.MaxTimer = 60 * sim.Second
		net, err := manet.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(1200 * sim.Second)
		var conn float64
		members := net.Members()
		for _, id := range members {
			conn += float64(net.Collector.Received(id, telemetry.Connect))
		}
		return conn / float64(len(members))
	}
	for i := 0; i < b.N; i++ {
		fixed := run(p2p.Basic)
		ring := run(p2p.Regular)
		b.ReportMetric(fixed, "connect/node_fixed")
		b.ReportMetric(ring, "connect/node_ring")
	}
}

// BenchmarkAblationOneSidedPing isolates improvement #3 of §6.1.3: the
// symmetric algorithms' one-sided keepalive halves ping traffic
// relative to Basic's per-reference probing.
func BenchmarkAblationOneSidedPing(b *testing.B) {
	run := func(alg p2p.Algorithm) float64 {
		cfg := manet.DefaultConfig(50, alg)
		cfg.Seed = 13
		cfg.NoQueries = true
		net, err := manet.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(1200 * sim.Second)
		var pings float64
		members := net.Members()
		for _, id := range members {
			pings += float64(net.Collector.Received(id, telemetry.Ping) +
				net.Collector.Received(id, telemetry.Pong))
		}
		return pings / float64(len(members))
	}
	for i := 0; i < b.N; i++ {
		basic := run(p2p.Basic)
		regular := run(p2p.Regular)
		b.ReportMetric(basic, "pingpong/node_basic")
		b.ReportMetric(regular, "pingpong/node_regular")
	}
}

// BenchmarkAblationPeerCache measures the peer-cache extension: connect
// traffic with and without cached unicast reconnects under the paper's
// mobile 50-node scenario.
func BenchmarkAblationPeerCache(b *testing.B) {
	run := func(enabled bool) float64 {
		cfg := manet.DefaultConfig(50, p2p.Regular)
		cfg.Seed = 17
		cfg.NoQueries = true
		cfg.Params.PeerCache = p2p.PeerCacheConfig{Enabled: enabled}
		net, err := manet.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(1800 * sim.Second)
		var conn float64
		members := net.Members()
		for _, id := range members {
			conn += float64(net.Collector.Received(id, telemetry.Connect))
		}
		return conn / float64(len(members))
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "connect/node_bcast")
		b.ReportMetric(run(true), "connect/node_cached")
	}
}

// BenchmarkExtDownloadReplication measures the download extension's
// effect: with replication on, later queries find files nearer and more
// often.
func BenchmarkExtDownloadReplication(b *testing.B) {
	run := func(enabled bool) (found, dist float64) {
		sc := benchScenario(50, Regular, 1800*sim.Second)
		sc.Seed = 18
		sc.Params.Download = p2p.DownloadConfig{Enabled: enabled}
		res := runScenario(b, sc)
		total, hits, dsum, dn := 0, 0.0, 0.0, 0
		for _, fc := range res.PerFile {
			total += fc.Requests
			hits += fc.FoundRate * float64(fc.Requests)
			if fc.Distance.N > 0 {
				dsum += fc.Distance.Mean
				dn++
			}
		}
		if total > 0 {
			found = hits / float64(total)
		}
		if dn > 0 {
			dist = dsum / float64(dn)
		}
		return found, dist
	}
	for i := 0; i < b.N; i++ {
		f0, d0 := run(false)
		f1, d1 := run(true)
		b.ReportMetric(f0*100, "found%_plain")
		b.ReportMetric(f1*100, "found%_replicating")
		b.ReportMetric(d0, "dist_plain")
		b.ReportMetric(d1, "dist_replicating")
	}
}

// BenchmarkExtRoutingComparison repeats the routing-protocol study the
// paper bases its AODV choice on: the same Regular-algorithm overlay
// workload over AODV, DSR and plain flooding, comparing total radio
// traffic per node (the study's cost axis).
func BenchmarkExtRoutingComparison(b *testing.B) {
	run := func(kind manet.RoutingKind) float64 {
		cfg := manet.DefaultConfig(50, p2p.Regular)
		cfg.Seed = 21
		cfg.Routing = kind
		net, err := manet.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(1200 * sim.Second)
		var rx float64
		for i := 0; i < cfg.NumNodes; i++ {
			rx += float64(net.Medium.Stats(i).RxFrames)
		}
		return rx / float64(cfg.NumNodes)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(manet.RoutingAODV), "rx/node_aodv")
		b.ReportMetric(run(manet.RoutingDSR), "rx/node_dsr")
		b.ReportMetric(run(manet.RoutingFlood), "rx/node_flood")
		b.ReportMetric(run(manet.RoutingDSDV), "rx/node_dsdv")
	}
}

// BenchmarkExtQueryStrategies compares the paper's Gnutella flood
// against k-random-walk search (the §5 scalability debate): per-node
// query traffic and success rate under the same overlay.
func BenchmarkExtQueryStrategies(b *testing.B) {
	run := func(mode p2p.QueryMode) (msgs, found float64) {
		sc := benchScenario(50, Regular, 1200*sim.Second)
		sc.Seed = 31
		sc.Params.QueryMode = mode
		res := runScenario(b, sc)
		total, hits := 0, 0.0
		for _, fc := range res.PerFile {
			total += fc.Requests
			hits += fc.FoundRate * float64(fc.Requests)
		}
		if total > 0 {
			found = hits / float64(total)
		}
		return res.Totals[telemetry.Query].Mean, found
	}
	for i := 0; i < b.N; i++ {
		fm, ff := run(p2p.QueryFlood)
		wm, wf := run(p2p.QueryRandomWalk)
		b.ReportMetric(fm, "qmsgs/node_flood")
		b.ReportMetric(wm, "qmsgs/node_walk")
		b.ReportMetric(ff*100, "found%_flood")
		b.ReportMetric(wf*100, "found%_walk")
	}
}

// BenchmarkAblationRunnerScaling measures the replication runner's
// parallel speedup: the same 8-replication batch with 1 worker versus
// all cores.
func BenchmarkAblationRunnerScaling(b *testing.B) {
	base := DefaultScenario(50, Regular)
	base.Replications = 8
	base.Duration = 600 * sim.Second
	base.SnapshotEvery = 0
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			sc := base
			sc.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Microbenchmarks of the hot substrate paths ---
//
// The tracked ones delegate to benchsuite.go so that `go test -bench`
// and cmd/bench (which writes BENCH_<n>.json) measure identical code.

func BenchmarkSimEventQueue(b *testing.B) { benchSimEventQueue(b) }

func BenchmarkGridNear(b *testing.B) { benchGridNear(b) }

func BenchmarkGridNearBruteForce(b *testing.B) {
	// The comparison baseline for BenchmarkGridNear: O(n) scan.
	arena := geom.Rect{W: 100, H: 100}
	s := sim.New(2)
	rng := s.NewRand()
	pts := make([]geom.Point, 150)
	for i := range pts {
		pts[i] = arena.RandomPoint(rng)
	}
	buf := make([]int, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := arena.RandomPoint(rng)
		buf = buf[:0]
		for id, p := range pts {
			if p.Dist2(q) <= 100 {
				buf = append(buf, id)
			}
		}
	}
}

func BenchmarkWaypointPos(b *testing.B) {
	s := sim.New(3)
	cfg := manet.DefaultMobility()
	net, err := manet.Build(manet.Config{
		Seed: 3, NumNodes: 1, MemberFraction: 1,
		Arena: geom.Rect{W: 100, H: 100}, Range: 10,
		Algorithm: p2p.Regular, Params: p2p.DefaultParams(),
		Files: p2p.DefaultFileConfig(), Mobility: cfg, NoQueries: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = net
	_ = s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(sim.Second)
	}
}

// Cost of one cold route discovery over a 10-hop chain.
func BenchmarkAODVDiscovery(b *testing.B) { benchAODVDiscovery(b) }

// Cost of one controlled broadcast flooded down a 16-node line through
// the shared route.Bcaster relay path.
func BenchmarkBcastRelay(b *testing.B) { benchBcastRelay(b) }

// Cost of one overlay unicast send between linked servents; must report
// 0 allocs/op once warm.
func BenchmarkServentSend(b *testing.B) { benchServentSend(b) }

// Cost of one Gnutella-style query flooded down an 8-servent overlay
// chain, including the query-hit reply.
func BenchmarkQueryFlood(b *testing.B) { benchQueryFlood(b) }

// Cost of the workload engine's per-query hot path (NextGap + PickFile)
// with every feature armed; must report 0 allocs/op.
func BenchmarkWorkloadArrivals(b *testing.B) { benchWorkloadArrivals(b) }

// Cost of the naive all-pairs BFS pathlength on a fixed 256-node random
// graph (tracks the bfsFrom queue-reuse fix).
func BenchmarkPathLength(b *testing.B) { benchPathLength(b) }

// Cost of one full overlay snapshot through the allocation-free
// analytics engine; must report 0 allocs/op.
func BenchmarkOverlaySnapshot(b *testing.B) { benchOverlaySnapshot(b) }

// The same snapshot through the reference graphs.Graph path — the
// baseline BenchmarkOverlaySnapshot is compared against.
func BenchmarkOverlaySnapshotNaive(b *testing.B) { benchOverlaySnapshotNaive(b) }

// BenchmarkFullReplication measures one end-to-end paper replication
// (50 nodes, 3600 s, Regular): the unit of work the runner parallelizes.
func BenchmarkFullReplication(b *testing.B) { benchFullReplication(b, false) }

// BenchmarkFullReplicationChecked is the same replication with the
// runtime invariant checker armed (Every = 30 s default); compare with
// BenchmarkFullReplication to read the checker's overhead.
func BenchmarkFullReplicationChecked(b *testing.B) { benchFullReplication(b, true) }

func BenchmarkTelemetryProbe(b *testing.B) { benchTelemetryProbe(b) }
