// Smallworld: the paper's §6.1.2 analysis — does the Random algorithm's
// long-range link turn the overlay into a small-world graph (high
// clustering, short pathlength)? The paper could not detect the effect
// (§7.4) and offered two explanations: (a) too few nodes relative to
// the number of connections, and (b) "due to the dynamics of the
// network, the random connections go down before the nodes could
// benefit from them."
//
// This example reproduces the null result at paper scale and then
// isolates explanation (b): with mobility frozen, the long links
// survive and Random's pathlength advantage appears.
//
//	go run ./examples/smallworld
package main

import (
	"fmt"
	"log"

	"manetp2p"
	"manetp2p/internal/graphs"
)

func main() {
	fmt.Println("overlay graph structure: Regular vs Random algorithm")
	fmt.Println()

	fmt.Println("(1) Paper scale — 50 nodes, 100x100 m, mobile (sparse, partitioned):")
	compare(50, 100, false)
	fmt.Println()
	fmt.Println("(2) Denser and mobile — 150 nodes, 70x70 m:")
	compare(150, 70, false)
	fmt.Println()
	fmt.Println("(3) Denser and STATIC — same, mobility frozen:")
	compare(150, 70, true)
	fmt.Println()
	fmt.Println("Cases (1) and (2) reproduce the paper's null result. The paper's")
	fmt.Println("second explanation — mobility tears random links down before they")
	fmt.Println("help — is what case (3) isolates: without mobility the long links")
	fmt.Println("persist, and the Random overlay's pathlength drops toward the")
	fmt.Println("log n / log k random-graph reference.")
}

func compare(nodes int, area float64, static bool) {
	fmt.Println("    alg      clustering  pathlength  largest-comp  degree")
	for _, alg := range []manetp2p.Algorithm{manetp2p.Regular, manetp2p.Random} {
		sc := manetp2p.DefaultScenario(nodes, alg)
		sc.AreaSide = area
		sc.Replications = 2
		sc.Duration = manetp2p.Seconds(1200)
		sc.SnapshotEvery = manetp2p.Seconds(300)
		sc.Stationary = static
		res, err := manetp2p.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-8s %10.3f  %10.3f  %12.2f  %6.2f\n",
			alg,
			res.Overlay.Clustering.Mean,
			res.Overlay.PathLength.Mean,
			res.Overlay.LargestComponent.Mean,
			res.Overlay.MeanDegree.Mean)
	}
	n := int(float64(nodes) * 0.75)
	k := 3
	fmt.Printf("    reference: L_regular(n=%d,k=%d)=%.1f, L_random=%.2f\n",
		n, k, graphs.RegularPathLength(n, k), graphs.RandomPathLength(n, k))
}
