// Rescue: an emergency-operation MANET (§4 motivates ad-hoc networks
// for exactly this) hit by the correlated failures a real disaster
// brings — a scripted fault plan splits the operation area in two
// (a collapsed building line) and later crashes a wave of responders'
// radios at once. Compares how the Basic and Regular algorithms
// re-heal the overlay: time-to-reheal, residual disconnection and the
// message cost of recovery, on top of the battery drain the original
// churn study measured.
//
//	go run ./examples/rescue
package main

import (
	"fmt"
	"log"

	"manetp2p"
	"manetp2p/internal/telemetry"
)

func main() {
	fmt.Println("rescue scenario: 50 responders, 2 J batteries, scripted faults:")
	fmt.Println("  t=1200s  the arena splits along x=50 for 120 s (collapsed building line)")
	fmt.Println("  t=2400s  a crash wave takes 10 responders down for 300 s")
	fmt.Println()
	fmt.Println("alg      deaths/rep  connect/node  reheal-s  rehealed%  residual  recovery-msgs")
	for _, alg := range []manetp2p.Algorithm{manetp2p.Basic, manetp2p.Regular} {
		sc := manetp2p.DefaultScenario(50, alg)
		sc.Replications = 5
		sc.Energy = manetp2p.DefaultEnergy(2.0)
		sc.Faults = manetp2p.FaultPlan{Events: []manetp2p.FaultEvent{
			manetp2p.PartitionFault(manetp2p.Seconds(1200), manetp2p.Seconds(120), manetp2p.AxisX, sc.AreaSide/2),
			manetp2p.CrashGroupFault(manetp2p.Seconds(2400), manetp2p.Seconds(300), 10),
		}}
		res, err := manetp2p.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		reheal, rehealed, residual, cost := 0.0, 0.0, 0.0, 0.0
		for _, ev := range res.Resilience.Events {
			reheal += ev.RehealSeconds.Mean
			rehealed += ev.RehealedFraction
			residual += ev.ResidualDisconnect.Mean
			cost += ev.RecoveryMessages.Mean
		}
		n := float64(len(res.Resilience.Events))
		fmt.Printf("%-8s %10.1f  %12.1f  %8.1f  %8.0f%%  %8.3f  %13.1f\n",
			alg, res.Deaths.Mean, res.Totals[telemetry.Connect].Mean,
			reheal/n, 100*rehealed/n, residual/n, cost/n)
	}
	fmt.Println()
	fmt.Println("Both algorithms re-heal the overlay once the faults clear — the paper's")
	fmt.Println("(re)configuration claim — but Basic pays for it with far more connect")
	fmt.Println("messages, draining batteries the operation cannot recharge (§7.4).")
}
