// Rescue: an emergency-operation MANET (§4 motivates ad-hoc networks
// for exactly this) under the stresses from the paper's future-work
// list — finite batteries and node churn. Compares how the Basic and
// Regular algorithms age the network: Basic's indiscriminate flooding
// drains batteries and kills nodes sooner.
//
//	go run ./examples/rescue
package main

import (
	"fmt"
	"log"

	"manetp2p"
	"manetp2p/internal/metrics"
)

func main() {
	fmt.Println("rescue scenario: 50 responders, 2 J batteries, churn (radios cycle off/on)")
	fmt.Println()
	fmt.Println("alg      deaths/rep  energy-J/node  connect/node  found%")
	for _, alg := range []manetp2p.Algorithm{manetp2p.Basic, manetp2p.Regular} {
		sc := manetp2p.DefaultScenario(50, alg)
		sc.Replications = 5
		sc.Energy = manetp2p.DefaultEnergy(2.0)
		sc.Churn = manetp2p.ChurnConfig{
			MeanUptime:   manetp2p.Seconds(900),
			MeanDowntime: manetp2p.Seconds(120),
		}
		res, err := manetp2p.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		found, reqs := 0.0, 0
		for _, fc := range res.PerFile {
			reqs += fc.Requests
			found += fc.FoundRate * float64(fc.Requests)
		}
		pct := 0.0
		if reqs > 0 {
			pct = 100 * found / float64(reqs)
		}
		fmt.Printf("%-8s %10.1f  %13.3f  %12.1f  %5.1f\n",
			alg, res.Deaths.Mean, res.EnergySpent.Mean,
			res.Totals[metrics.Connect].Mean, pct)
	}
	fmt.Println()
	fmt.Println("The Basic algorithm's fixed-radius broadcasts burn more energy per node,")
	fmt.Println("killing more responders' radios — the paper's network-lifetime argument (§7.4).")
}
