// Conference: the paper's motivating scenario for the Hybrid algorithm
// (§4, §6.2) — a meeting room full of heterogeneous devices (phones,
// PDAs, notebooks) that organize themselves into master/slave subnets,
// with the notebooks carrying the load.
//
// The example drives a single live simulation step by step and reports
// how the hierarchy evolves, then shows that high-qualifier devices
// absorb most of the traffic (the paper's Figures 11–12 argument).
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"log"

	"manetp2p"
	"manetp2p/internal/p2p"
	"manetp2p/internal/telemetry"
)

func main() {
	sc := manetp2p.DefaultScenario(60, manetp2p.Hybrid)
	sc.Quals = manetp2p.DeviceClasses() // phones 0.2, PDAs 0.5, notebooks 0.9
	sc.AreaSide = 60                    // a dense conference venue
	sc.Replications = 1

	s, err := manetp2p.NewSimulation(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time     masters  slaves  initial  mesh-links")
	for minute := 1; minute <= 30; minute++ {
		s.Step(manetp2p.Seconds(60))
		if minute%3 != 0 {
			continue
		}
		masters, slaves, initial, mesh := census(s)
		fmt.Printf("%4dmin  %7d  %6d  %7d  %10d\n", minute, masters, slaves, initial, mesh)
	}

	// Load by device class: masters (mostly notebooks) should receive
	// far more queries and pings than slaves.
	byClass := map[float64][]float64{}
	for id, sv := range s.Net.Servents {
		if sv == nil {
			continue
		}
		load := float64(s.Net.Collector.Received(id, telemetry.Query) +
			s.Net.Collector.Received(id, telemetry.Ping))
		byClass[sv.Qualifier()] = append(byClass[sv.Qualifier()], load)
	}
	fmt.Println("\nmean received query+ping load by device class:")
	for _, class := range []struct {
		q    float64
		name string
	}{{0.2, "phone"}, {0.5, "PDA"}, {0.9, "notebook"}} {
		loads := byClass[class.q]
		if len(loads) == 0 {
			continue
		}
		sum := 0.0
		for _, l := range loads {
			sum += l
		}
		fmt.Printf("  %-9s (q=%.1f): %6.1f messages over %d devices\n",
			class.name, class.q, sum/float64(len(loads)), len(loads))
	}

	// The Gini coefficient makes the skew explicit: hybrid concentrates
	// load by design ("a higher load to nodes with higher capacity").
	var all []float64
	for _, loads := range byClass {
		all = append(all, loads...)
	}
	fmt.Printf("\nload Gini coefficient: %.2f (0 = even, 1 = concentrated)\n",
		manetp2p.GiniCoefficient(all))
}

// census counts hybrid roles and master-mesh links.
func census(s *manetp2p.Simulation) (masters, slaves, initial, mesh int) {
	for _, sv := range s.Net.Servents {
		if sv == nil || !sv.Joined() {
			continue
		}
		switch sv.State() {
		case p2p.StateMaster:
			masters++
			for _, peer := range sv.Peers() {
				if other := s.Net.Servents[peer]; other != nil && other.State() == p2p.StateMaster {
					mesh++
				}
			}
		case p2p.StateSlave:
			slaves++
		default:
			initial++
		}
	}
	mesh /= 2 // each mesh link counted at both ends
	return
}
