// Flashcrowd: the paper's query model assumes every servent asks at a
// steady uniform pace (§7.1, one query every 15–45 s). Real file-sharing
// demand is nothing like that: arrivals are bursty, popularity follows a
// drifting Zipf law, and a release event can point most of the network
// at a handful of hot files at once — while free-riders query hard and
// contribute little, and transient peers churn through the overlay.
//
// This example scripts exactly that with a workload plan — bursty OnOff
// arrivals, rotating Zipf popularity, the seeder/free-rider/transient
// session mix, and a mid-run flash crowd onto three hot keys — and
// compares how the four (re)configuration algorithms hold up: offered
// vs resolved demand, success rate, time-to-first-result, and the
// connect-message cost of repairing the overlay after each churn event.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"manetp2p"
)

func main() {
	fmt.Println("flash crowd: 50 peers, bursty arrivals, Zipf popularity, session churn;")
	fmt.Println("  t=0s     ramp at half rate while the overlay forms")
	fmt.Println("  t=600s   steady state")
	fmt.Println("  t=1800s  flash crowd: 3x rate, 80% of queries hit 3 hot files")
	fmt.Println("  t=3000s  drain at quarter rate")
	fmt.Println()
	fmt.Println("alg      offered  resolved  success%  ttfr-s  churn/rep  repair-msgs/event")
	for _, alg := range manetp2p.Algorithms() {
		sc := manetp2p.DefaultScenario(50, alg)
		sc.Replications = 5
		sc.Workload = &manetp2p.WorkloadPlan{
			Arrival:    manetp2p.WorkloadArrival{Process: manetp2p.ArrivalOnOff, Rate: 0.1},
			Popularity: manetp2p.WorkloadPopularity{Skew: 1.2, RotateEvery: manetp2p.Seconds(600)},
			Sessions:   manetp2p.DefaultWorkloadSessions(),
			Phases: []manetp2p.WorkloadPhase{
				{Name: "ramp", RateScale: 0.5},
				{Name: "steady", Start: manetp2p.Seconds(600)},
				{Name: "flash", Start: manetp2p.Seconds(1800), RateScale: 3, HotFiles: 3, HotBoost: 0.8},
				{Name: "drain", Start: manetp2p.Seconds(3000), RateScale: 0.25},
			},
		}
		res, err := manetp2p.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		ws := res.Workload
		fmt.Printf("%-8s %7.0f  %8.0f  %7.1f%%  %6.2f  %9.1f  %17.1f\n",
			alg, ws.Offered.Mean, ws.Resolved.Mean, 100*ws.SuccessRate,
			ws.TTFR.Mean, ws.ChurnEvents.Mean, ws.RepairPerChurn)
	}
	fmt.Println()
	fmt.Println("The flash crowd concentrates demand on files many peers already hold,")
	fmt.Println("so hit rates rise even as transient peers churn; the repair column is")
	fmt.Println("what each departure costs the overlay in connect traffic to re-heal.")
}
