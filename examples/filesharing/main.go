// Filesharing: the full Gnutella loop the paper describes but does not
// simulate — query, download, replicate (§2: the file "is transferred
// directly between the peers"). With replication on, popular content
// spreads toward demand, so over the run queries succeed more often and
// find files fewer hops away.
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	"manetp2p"
	"manetp2p/internal/p2p"
)

func main() {
	fmt.Println("filesharing: query -> download -> replicate (50 nodes, Regular algorithm)")
	fmt.Println()
	fmt.Println("mode          found%   answers/req   min-dist(p2p hops)")
	for _, enabled := range []bool{false, true} {
		sc := manetp2p.DefaultScenario(50, manetp2p.Regular)
		sc.Replications = 3
		sc.Params.Download = p2p.DownloadConfig{Enabled: enabled}
		res, err := manetp2p.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		total, hits, answers := 0, 0.0, 0.0
		dsum, dn := 0.0, 0
		for _, fc := range res.PerFile {
			total += fc.Requests
			hits += fc.FoundRate * float64(fc.Requests)
			answers += fc.Answers.Mean * float64(fc.Requests)
			if fc.Distance.N > 0 {
				dsum += fc.Distance.Mean
				dn++
			}
		}
		name := "plain"
		if enabled {
			name = "replicating"
		}
		fmt.Printf("%-12s  %5.1f   %11.2f   %17.2f\n",
			name, 100*hits/float64(total), answers/float64(total), dsum/float64(dn))
	}
	fmt.Println()
	fmt.Println("Replication raises availability exactly where demand is: downloaded")
	fmt.Println("copies answer later queries from fewer hops away.")
}
