// Quickstart: run the paper's 50-node scenario with the Regular
// algorithm for a few replications and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"manetp2p"
)

func main() {
	// The paper's Table 2 setup: 100 m x 100 m arena, 10 m radio range,
	// 75% of nodes in the overlay, Random Waypoint mobility.
	sc := manetp2p.DefaultScenario(50, manetp2p.Regular)
	sc.Replications = 5 // the paper uses 33; 5 keeps the demo snappy
	sc.Duration = manetp2p.Seconds(1800)

	res, err := manetp2p.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	manetp2p.WriteSummary(os.Stdout, res)

	fmt.Println("\nMost-loaded nodes by received connect messages (Figure 7 shape):")
	for rank, v := range res.ConnectSeries {
		if rank >= 5 {
			break
		}
		fmt.Printf("  rank %d: %.1f messages\n", rank, v)
	}

	fmt.Println("\nQuery outcomes by file popularity (Figure 5 shape):")
	for f := 0; f < 5; f++ {
		fc := res.PerFile[f]
		fmt.Printf("  file %2d: %.2f answers/request, min distance %.2f p2p hops (found %.0f%%)\n",
			f+1, fc.Answers.Mean, fc.Distance.Mean, fc.FoundRate*100)
	}
}
