package manetp2p

import (
	"bytes"
	"fmt"
	"testing"

	"manetp2p/internal/sim"
)

// faultScenario is a dense little network (so the overlay is actually
// connected before the fault) with a 60 s mid-run partition.
func faultScenario(alg Algorithm) Scenario {
	sc := DefaultScenario(24, alg)
	sc.AreaSide = 50
	sc.Range = 15
	sc.Duration = 1500 * sim.Second
	sc.Replications = 2
	sc.SnapshotEvery = 0
	sc.HealthEvery = 20 * sim.Second
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(300*sim.Second, 60*sim.Second, AxisX, 25),
	}}
	return sc
}

// TestPartitionReheals asserts the paper's core claim for all four
// algorithms: after a mid-run partition clears, the overlay re-heals —
// its largest-component fraction returns to within 10 % of the
// pre-fault value.
func TestPartitionReheals(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(faultScenario(alg))
			if err != nil {
				t.Fatal(err)
			}
			r := res.Resilience
			if r == nil {
				t.Fatal("Resilience nil despite a fault plan")
			}
			if len(r.Times) == 0 || len(r.LargestComp) != len(r.Times) {
				t.Fatalf("telemetry series malformed: %d times, %d largest-comp",
					len(r.Times), len(r.LargestComp))
			}
			if len(r.Events) != 1 {
				t.Fatalf("got %d recovery events, want 1", len(r.Events))
			}
			ev := r.Events[0]
			if ev.Baseline.Mean <= 0.5 {
				t.Errorf("pre-fault overlay too fragmented for the test to mean anything: baseline %.3f",
					ev.Baseline.Mean)
			}
			if ev.RehealedFraction < 1 {
				t.Errorf("only %.0f%% of replications re-healed after the partition (reheal %s s, residual %s)",
					100*ev.RehealedFraction, ev.RehealSeconds, ev.ResidualDisconnect)
			}
			if ev.Trough.Mean >= ev.Baseline.Mean {
				t.Errorf("partition left no trace: trough %.3f >= baseline %.3f",
					ev.Trough.Mean, ev.Baseline.Mean)
			}
		})
	}
}

// TestResilienceDeterminism asserts the acceptance criterion: identical
// seeds and plans yield byte-identical Resilience sections and health
// series, even with every fault type in the plan.
func TestResilienceDeterminism(t *testing.T) {
	sc := faultScenario(Regular)
	sc.Duration = 900 * sim.Second
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(200*sim.Second, 60*sim.Second, AxisY, 25),
		JamFault(300*sim.Second, 60*sim.Second, 25, 25, 15, 0.8),
		LossBurstFault(400*sim.Second, 30*sim.Second, 0.5),
		CrashGroupFault(500*sim.Second, 120*sim.Second, 6),
		LinkFlapFault(700*sim.Second, 60*sim.Second, 20*sim.Second, 5*sim.Second),
	}}
	render := func() string {
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteResilience(&buf, res); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v\n%s", *res.Resilience, buf.String())
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same seed + same plan produced different resilience output:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestFaultFreeRunHasNoResilience pins the gating: without a plan or an
// explicit HealthEvery, no telemetry is collected.
func TestFaultFreeRunHasNoResilience(t *testing.T) {
	sc := quickScenario(Regular, 12)
	sc.Replications = 1
	sc.Duration = 120 * sim.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience != nil {
		t.Errorf("fault-free run grew a Resilience section: %+v", res.Resilience)
	}
}
