package manetp2p

import (
	"math"

	"manetp2p/internal/stats"
	"manetp2p/internal/telemetry"
)

// This file derives the recovery metrics from the resilience telemetry
// the health sampler records during fault-injected runs: for every
// scripted fault, how long the overlay took to re-heal after the fault
// cleared, how much connectivity never came back, and how many connect
// messages the re-healing cost. The numbers quantify exactly the
// property the paper's (re)configuration algorithms exist to provide.

// rehealFraction: the overlay counts as re-healed once its
// largest-component fraction returns to within 10 % of the pre-fault
// baseline.
const rehealFraction = 0.9

// EventRecovery aggregates one scripted fault's recovery behaviour over
// all replications.
type EventRecovery struct {
	Label        string  // e.g. "partition@600s"
	ClearSeconds float64 // when the fault's effect ended

	Baseline stats.Summary // largest-component fraction just before the fault
	Trough   stats.Summary // minimum largest-component fraction until re-heal

	// RehealSeconds is the time from fault clearance until the largest
	// component returns to within 10 % of the baseline, over the
	// replications that re-healed at all.
	RehealSeconds    stats.Summary
	RehealedFraction float64 // share of replications that re-healed

	// ResidualDisconnect is how far below the baseline the largest
	// component still sat at the end of the run (0 = fully recovered).
	ResidualDisconnect stats.Summary

	// RecoveryMessages counts connect-class messages received per
	// member between fault clearance and re-heal — the message cost of
	// recovery (re-healed replications only).
	RecoveryMessages stats.Summary
}

// Resilience is the fault-injection section of a Result: the averaged
// health time series plus per-event recovery telemetry. Nil when
// telemetry was off (no faults and no explicit HealthEvery).
type Resilience struct {
	SampleEvery float64 // seconds between samples

	// Time series averaged rank-wise across replications.
	Times       []float64 // sample instants, seconds
	LargestComp []float64 // largest-component fraction of members
	Links       []float64 // overlay link count
	ConnectRate []float64 // connect messages received per member per second

	Events []EventRecovery
}

// computeResilience folds the per-replication health series into the
// Result's resilience section. Everything here is deterministic in the
// replication data, so equal seeds and plans give byte-identical output.
func computeResilience(sc Scenario, reps []*repResult) *Resilience {
	period := sc.healthEvery()
	if period <= 0 {
		return nil
	}
	res := &Resilience{SampleEvery: period.Seconds()}

	var largest, links, connRate [][]float64
	for _, rr := range reps {
		if len(rr.health) == 0 {
			continue
		}
		if res.Times == nil {
			for _, h := range rr.health {
				res.Times = append(res.Times, h.At.Seconds())
			}
		}
		lc := make([]float64, len(rr.health))
		lk := make([]float64, len(rr.health))
		cr := make([]float64, len(rr.health))
		prev := uint64(0)
		for i, h := range rr.health {
			lc[i] = h.LargestComp
			lk[i] = float64(h.Links)
			if rr.members > 0 {
				cr[i] = float64(h.Received[telemetry.Connect]-prev) /
					float64(rr.members) / period.Seconds()
			}
			prev = h.Received[telemetry.Connect]
		}
		largest = append(largest, lc)
		links = append(links, lk)
		connRate = append(connRate, cr)
	}
	res.LargestComp = stats.MeanSeries(largest)
	res.Links = stats.MeanSeries(links)
	res.ConnectRate = stats.MeanSeries(connRate)

	for _, ev := range sc.Faults.Events {
		er := EventRecovery{Label: ev.Label(), ClearSeconds: ev.Clears().Seconds()}
		var baselines, troughs, reheals, residuals, costs []float64
		rehealed, n := 0, 0
		for _, rr := range reps {
			h := rr.health
			if len(h) == 0 {
				continue
			}
			n++

			// Baseline: the last sample at or before the fault starts.
			bi := 0
			for i, s := range h {
				if s.At > ev.At {
					break
				}
				bi = i
			}
			baseline := h[bi].LargestComp
			baselines = append(baselines, baseline)

			// Re-heal: the first post-clearance sample back within 10 %
			// of the baseline; ci is the first post-clearance sample.
			clear := ev.Clears()
			ri, ci := -1, -1
			for i, s := range h {
				if s.At < clear {
					continue
				}
				if ci < 0 {
					ci = i
				}
				if s.LargestComp >= rehealFraction*baseline {
					ri = i
					break
				}
			}

			// Trough: the worst connectivity between fault start and
			// re-heal (or the end of the run).
			hi := len(h)
			if ri >= 0 {
				hi = ri + 1
			}
			trough := baseline
			for _, s := range h[bi:hi] {
				if s.At >= ev.At && s.LargestComp < trough {
					trough = s.LargestComp
				}
			}
			troughs = append(troughs, trough)

			last := h[len(h)-1].LargestComp
			residuals = append(residuals, math.Max(0, baseline-last))

			if ri >= 0 {
				rehealed++
				reheals = append(reheals, (h[ri].At - clear).Seconds())
				if rr.members > 0 {
					cost := float64(h[ri].Received[telemetry.Connect]-h[ci].Received[telemetry.Connect]) /
						float64(rr.members)
					costs = append(costs, cost)
				}
			}
		}
		if n == 0 {
			continue
		}
		er.Baseline = stats.Summarize(baselines)
		er.Trough = stats.Summarize(troughs)
		er.RehealSeconds = stats.Summarize(reheals)
		er.RehealedFraction = float64(rehealed) / float64(n)
		er.ResidualDisconnect = stats.Summarize(residuals)
		er.RecoveryMessages = stats.Summarize(costs)
		res.Events = append(res.Events, er)
	}
	return res
}
